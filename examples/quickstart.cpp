// Quickstart: the ioSnap API in one page.
//
// Creates a simulated flash device with the ioSnap FTL, writes a few blocks, takes a
// snapshot, diverges the active volume, then activates the snapshot and reads the
// point-in-time data back.
//
// Build & run:  cmake -B build -G Ninja && ninja -C build && ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/core/ftl.h"

using namespace iosnap;

namespace {

// Writes a one-line string into a block (padded to the page size).
uint64_t WriteString(Ftl* ftl, uint64_t lba, const std::string& text, uint64_t now) {
  std::vector<uint8_t> page(ftl->config().nand.page_size_bytes, 0);
  std::copy(text.begin(), text.end(), page.begin());
  auto io = ftl->Write(lba, page, now);
  IOSNAP_CHECK_OK(io.status());
  return io->CompletionNs();
}

std::string ReadString(Ftl* ftl, uint32_t view, uint64_t lba, uint64_t now) {
  std::vector<uint8_t> page;
  auto io = ftl->ReadView(view, lba, now, &page);
  IOSNAP_CHECK_OK(io.status());
  return std::string(reinterpret_cast<const char*>(page.data()));
}

}  // namespace

int main() {
  // A small simulated device: 128 MiB, 4 KiB pages. `store_data = true` keeps payloads
  // in memory so we can read our strings back.
  FtlConfig config;
  config.nand.page_size_bytes = 4096;
  config.nand.pages_per_segment = 256;
  config.nand.num_segments = 128;
  config.nand.store_data = true;

  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  uint64_t now = 0;

  std::printf("device: %llu blocks of %llu bytes\n",
              (unsigned long long)ftl->LbaCount(),
              (unsigned long long)config.nand.page_size_bytes);

  // 1. Write some data.
  now = WriteString(ftl.get(), 0, "alpha v1", now);
  now = WriteString(ftl.get(), 1, "bravo v1", now);

  // 2. Take a snapshot — constant time, one note on the log (~50 us).
  auto snap = ftl->CreateSnapshot("before-upgrade", now);
  IOSNAP_CHECK_OK(snap.status());
  now = snap->io.CompletionNs();
  std::printf("snapshot %u created in %.1f us\n", snap->snap_id,
              NsToUs(snap->io.LatencyNs()));

  // 3. Diverge the live volume.
  now = WriteString(ftl.get(), 0, "alpha v2", now);
  auto trim = ftl->Trim(1, 1, now);
  IOSNAP_CHECK_OK(trim.status());
  now = trim->CompletionNs();

  // 4. Activate the snapshot: a rate-limitable background scan builds its forward map.
  uint64_t finish = now;
  auto view = ftl->ActivateBlocking(snap->snap_id, now, /*writable=*/false, &finish);
  IOSNAP_CHECK_OK(view.status());
  std::printf("activation took %.2f ms\n", NsToMs(finish - now));
  now = finish;

  // 5. Read both timelines.
  std::printf("live    block 0: \"%s\"\n", ReadString(ftl.get(), kPrimaryView, 0, now).c_str());
  std::printf("snap    block 0: \"%s\"\n", ReadString(ftl.get(), *view, 0, now).c_str());
  std::printf("live    block 1: %s\n",
              ftl->IsMapped(1) ? "mapped" : "trimmed (reads zeroes)");
  std::printf("snap    block 1: \"%s\"\n", ReadString(ftl.get(), *view, 1, now).c_str());

  // 6. Clean up: deactivate the view, delete the snapshot (space reclaimed lazily by
  //    the segment cleaner).
  IOSNAP_CHECK_OK(ftl->Deactivate(*view, now));
  IOSNAP_CHECK_OK(ftl->DeleteSnapshot(snap->snap_id, now).status());
  std::printf("done. stats: %llu user writes, %llu pages programmed total\n",
              (unsigned long long)ftl->stats().user_writes,
              (unsigned long long)ftl->stats().total_pages_programmed);
  return 0;
}
