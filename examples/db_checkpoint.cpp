// Database-style checkpointing + audit trail on ioSnap — the high-IOPS use case the
// paper's §3 motivates: flash fills fast, so snapshots are taken often to capture
// intermediate state, and the system must tolerate crashes.
//
// A tiny fixed-slot KV table lives on the block device. Every "transaction batch" ends
// with a snapshot, giving a consistent restore point per batch. We then crash the
// device mid-batch (no checkpoint), reopen it (full log recovery, §5.5), and roll the
// table back to the last durable batch by activating its snapshot — demonstrating that
// snapshots and their lineage survive crashes.

#include <cstdio>
#include <map>
#include <string>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/core/ftl.h"

using namespace iosnap;

namespace {

constexpr uint64_t kTableSlots = 1024;

// One KV slot per block: "key=<k> value=<v> batch=<b>".
std::vector<uint8_t> Record(uint64_t page_bytes, uint64_t key, uint64_t value,
                            int batch) {
  std::vector<uint8_t> page(page_bytes, 0);
  std::snprintf(reinterpret_cast<char*>(page.data()), page.size(),
                "key=%llu value=%llu batch=%d", (unsigned long long)key,
                (unsigned long long)value, batch);
  return page;
}

}  // namespace

int main() {
  FtlConfig config;
  config.nand.page_size_bytes = 4096;
  config.nand.pages_per_segment = 128;
  config.nand.num_segments = 128;
  config.nand.store_data = true;

  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  uint64_t now = 0;

  // Run three committed transaction batches; snapshot after each.
  std::map<int, uint32_t> batch_snapshots;
  std::map<uint64_t, uint64_t> committed_values;  // As of the last committed batch.
  for (int batch = 1; batch <= 3; ++batch) {
    for (uint64_t i = 0; i < 200; ++i) {
      const uint64_t key = (static_cast<uint64_t>(batch) * 37 + i * 11) % kTableSlots;
      const uint64_t value = static_cast<uint64_t>(batch) * 1000 + i;
      auto io = ftl->Write(key, Record(4096, key, value, batch), now);
      IOSNAP_CHECK_OK(io.status());
      now = io->CompletionNs();
      committed_values[key] = value;
    }
    auto snap = ftl->CreateSnapshot("batch-" + std::to_string(batch), now);
    IOSNAP_CHECK_OK(snap.status());
    now = snap->io.CompletionNs();
    batch_snapshots[batch] = snap->snap_id;
    std::printf("batch %d committed, snapshot %u\n", batch, snap->snap_id);
  }

  // Batch 4 starts writing but crashes midway — these writes must not survive a
  // rollback, and the device must reopen cleanly without a checkpoint.
  for (uint64_t i = 0; i < 77; ++i) {
    const uint64_t key = (4 * 37 + i * 11) % kTableSlots;
    auto io = ftl->Write(key, Record(4096, key, 9999, 4), now);
    IOSNAP_CHECK_OK(io.status());
    now = io->CompletionNs();
  }
  std::printf("\n*** power failure mid-batch-4 ***\n");
  std::unique_ptr<NandDevice> media = ftl->ReleaseDevice();

  uint64_t recovered_at = now;
  auto reopened = Ftl::Open(config, std::move(media), now, &recovered_at);
  IOSNAP_CHECK(reopened.ok());
  ftl = std::move(reopened).value();
  now = recovered_at;
  std::printf("device reopened via log recovery in %.2f ms; %zu snapshots survived\n",
              NsToMs(recovered_at), ftl->snapshot_tree().LiveSnapshotIds().size());

  // Roll back: activate the batch-3 snapshot and copy every differing slot over the
  // (partially written) live table.
  const uint32_t snap3 = batch_snapshots[3];
  uint64_t finish = now;
  auto view = ftl->ActivateBlocking(snap3, now, /*writable=*/false, &finish);
  IOSNAP_CHECK_OK(view.status());
  now = finish;

  uint64_t rolled_back = 0;
  for (uint64_t key = 0; key < kTableSlots; ++key) {
    std::vector<uint8_t> live;
    std::vector<uint8_t> snap_page;
    IOSNAP_CHECK_OK(ftl->Read(key, now, &live).status());
    IOSNAP_CHECK_OK(ftl->ReadView(*view, key, now, &snap_page).status());
    if (live != snap_page) {
      auto io = ftl->Write(key, snap_page, now);
      IOSNAP_CHECK_OK(io.status());
      now = io->CompletionNs();
      ++rolled_back;
    }
  }
  IOSNAP_CHECK_OK(ftl->Deactivate(*view, now));
  std::printf("rolled back %llu dirty slots to batch 3\n",
              (unsigned long long)rolled_back);

  // Verify the table matches the committed state exactly.
  for (uint64_t key = 0; key < kTableSlots; ++key) {
    std::vector<uint8_t> page;
    IOSNAP_CHECK_OK(ftl->Read(key, now, &page).status());
    auto it = committed_values.find(key);
    if (it == committed_values.end()) {
      IOSNAP_CHECK(page == std::vector<uint8_t>(4096, 0));
    } else {
      const std::string text(reinterpret_cast<const char*>(page.data()));
      IOSNAP_CHECK(text.find("value=" + std::to_string(it->second) + " ") !=
                   std::string::npos);
    }
  }
  std::printf("table verified against committed state — audit trail intact:\n");
  for (const auto& [batch, snap_id] : batch_snapshots) {
    auto info = ftl->snapshot_tree().Get(snap_id);
    IOSNAP_CHECK_OK(info.status());
    std::printf("  snapshot %u (\"%s\") epoch %u depth %d\n", snap_id,
                info->name.c_str(), info->epoch, ftl->snapshot_tree().SnapshotDepth(snap_id));
  }
  return 0;
}
