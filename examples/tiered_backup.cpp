// Tiered backup: destaging snapshots from flash to archival storage (§7).
//
// Flash is the wrong long-term home for snapshots — it is the expensive, fast tier. This
// example runs the full lifecycle: nightly snapshots on flash, a weekly full archive to
// the (cheap, sequential) archive tier plus nightly incrementals, deletion of the
// on-flash snapshots so the cleaner reclaims their space, and finally a point-in-time
// restore from the archive chain.

#include <cstdio>

#include "src/archive/snapshot_archiver.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/ftl.h"

using namespace iosnap;

int main() {
  FtlConfig config;
  config.nand.page_size_bytes = 4096;
  config.nand.pages_per_segment = 256;
  config.nand.num_segments = 256;
  config.nand.store_data = true;

  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  ArchiveStore archive((ArchiveConfig()));
  SnapshotArchiver archiver(ftl.get(), &archive);
  uint64_t now = 0;

  const uint64_t volume = 4096;
  Rng rng(7);
  uint64_t version = 0;
  auto day_of_writes = [&](int writes) {
    for (int i = 0; i < writes; ++i) {
      std::vector<uint8_t> page(4096, 0);
      const uint64_t lba = rng.NextBelow(volume);
      ++version;
      std::snprintf(reinterpret_cast<char*>(page.data()), page.size(), "v%llu",
                    (unsigned long long)version);
      auto io = ftl->Write(lba, page, now);
      IOSNAP_CHECK_OK(io.status());
      now = io->CompletionNs();
      ftl->PumpBackground(now);
    }
  };

  // "Sunday": full backup.
  day_of_writes(3000);
  auto sunday = ftl->CreateSnapshot("sun", now);
  IOSNAP_CHECK_OK(sunday.status());
  now = sunday->io.CompletionNs();
  auto full = archiver.ArchiveFull(sunday->snap_id, now);
  IOSNAP_CHECK_OK(full.status());
  now = full->finish_ns;
  std::printf("full archive:        %5llu blocks, archive now holds %s\n",
              (unsigned long long)full->blocks,
              std::to_string(archive.TotalBytesStored() / 1024).c_str());

  // Weekdays: incremental chain; each on-flash snapshot is destaged then deleted.
  uint32_t prev_snap = sunday->snap_id;
  uint64_t prev_archive = full->archive_id;
  uint32_t wednesday_snap_id = 0;
  uint64_t wednesday_archive = 0;
  const char* days[] = {"mon", "tue", "wed", "thu", "fri"};
  for (int d = 0; d < 5; ++d) {
    day_of_writes(400);
    auto snap = ftl->CreateSnapshot(days[d], now);
    IOSNAP_CHECK_OK(snap.status());
    now = snap->io.CompletionNs();
    auto incr = archiver.ArchiveIncremental(prev_snap, prev_archive, snap->snap_id, now);
    IOSNAP_CHECK_OK(incr.status());
    now = incr->finish_ns;
    std::printf("incremental %-3s:     %5llu blocks (delta only)\n", days[d],
                (unsigned long long)incr->blocks);
    // Retire the previous on-flash snapshot: its data now lives on the archive tier.
    IOSNAP_CHECK_OK(ftl->DeleteSnapshot(prev_snap, now).status());
    prev_snap = snap->snap_id;
    prev_archive = incr->archive_id;
    if (std::string(days[d]) == "wed") {
      wednesday_snap_id = snap->snap_id;
      wednesday_archive = incr->archive_id;
    }
  }
  std::printf("flash now carries %zu live snapshot(s); archive holds %zu images (%llu KiB)\n",
              ftl->snapshot_tree().LiveSnapshotIds().size(), archive.ImageCount(),
              (unsigned long long)(archive.TotalBytesStored() / 1024));

  // Disaster on Friday evening: restore the volume to Wednesday's state from the
  // archive chain (full + mon + tue + wed). Wednesday's snapshot was already deleted
  // from flash — the archive tier is the only copy.
  IOSNAP_CHECK(ftl->snapshot_tree().Get(wednesday_snap_id)->deleted);
  day_of_writes(500);  // More damage after wed.
  auto restore = archiver.RestoreToPrimary(wednesday_archive, volume, now);
  IOSNAP_CHECK_OK(restore.status());
  now = *restore;
  std::printf("restored volume to Wednesday from the archive chain (%.1f ms)\n",
              NsToMs(now));

  // Spot-check: a block written Thursday/Friday must be gone or rolled back.
  std::printf("done. FTL stats: %llu writes, %llu GC segment cleans\n",
              (unsigned long long)ftl->stats().user_writes,
              (unsigned long long)ftl->stats().gc_segments_cleaned);
  return 0;
}
