// Writable snapshots as instant volume clones — the §5.6 design extension.
//
// Fork a "production" volume for testing: activate a snapshot writable and mutate the
// clone freely. Writes land on the clone's own epoch, so production, the snapshot, and
// the clone all stay independent (Figure 4's forked history). Finally the clone is
// discarded and the cleaner reclaims its blocks.

#include <cstdio>
#include <string>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/core/ftl.h"

using namespace iosnap;

namespace {

uint64_t Put(Ftl* ftl, uint32_t view, uint64_t lba, const std::string& text, uint64_t now) {
  std::vector<uint8_t> page(ftl->config().nand.page_size_bytes, 0);
  std::copy(text.begin(), text.end(), page.begin());
  auto io = ftl->WriteView(view, lba, page, now);
  IOSNAP_CHECK_OK(io.status());
  return io->CompletionNs();
}

std::string Get(Ftl* ftl, uint32_t view, uint64_t lba, uint64_t* now) {
  std::vector<uint8_t> page;
  auto io = ftl->ReadView(view, lba, *now, &page);
  IOSNAP_CHECK_OK(io.status());
  *now = std::max(*now, io->CompletionNs());
  return std::string(reinterpret_cast<const char*>(page.data()));
}

}  // namespace

int main() {
  FtlConfig config;
  config.nand.page_size_bytes = 4096;
  config.nand.pages_per_segment = 128;
  config.nand.num_segments = 128;
  config.nand.store_data = true;

  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  uint64_t now = 0;

  // Production state.
  now = Put(ftl.get(), kPrimaryView, 0, "config: schema=v1", now);
  now = Put(ftl.get(), kPrimaryView, 1, "users: 1000", now);

  auto snap = ftl->CreateSnapshot("golden", now);
  IOSNAP_CHECK_OK(snap.status());
  now = snap->io.CompletionNs();

  // Fork a writable clone of the golden image.
  uint64_t finish = now;
  auto clone = ftl->ActivateBlocking(snap->snap_id, now, /*writable=*/true, &finish);
  IOSNAP_CHECK_OK(clone.status());
  now = finish;
  std::printf("forked writable clone (view %u) from snapshot %u\n", *clone,
              snap->snap_id);

  // The test run mutates the clone; production keeps moving independently.
  now = Put(ftl.get(), *clone, 0, "config: schema=v2-EXPERIMENT", now);
  now = Put(ftl.get(), kPrimaryView, 1, "users: 1042", now);

  std::printf("production block 0: \"%s\"\n", Get(ftl.get(), kPrimaryView, 0, &now).c_str());
  std::printf("clone      block 0: \"%s\"\n", Get(ftl.get(), *clone, 0, &now).c_str());
  std::printf("production block 1: \"%s\"\n", Get(ftl.get(), kPrimaryView, 1, &now).c_str());
  std::printf("clone      block 1: \"%s\"  (inherited from the snapshot)\n",
              Get(ftl.get(), *clone, 1, &now).c_str());

  // The golden snapshot itself is untouched by either branch.
  auto check = ftl->ActivateBlocking(snap->snap_id, now, /*writable=*/false, &finish);
  IOSNAP_CHECK_OK(check.status());
  now = finish;
  std::printf("snapshot   block 0: \"%s\"  (pristine)\n",
              Get(ftl.get(), *check, 0, &now).c_str());

  // Discard the experiment; its epoch's blocks become garbage for the cleaner.
  IOSNAP_CHECK_OK(ftl->Deactivate(*clone, now));
  IOSNAP_CHECK_OK(ftl->Deactivate(*check, now));
  std::printf("experiment discarded; %zu views remain, epoch tree has %u epochs\n",
              ftl->ActiveViewIds().size(), ftl->snapshot_tree().EpochCount());
  return 0;
}
