// Backup & disaster recovery — the paper's motivating snapshot use case (§2).
//
// A workload continuously updates a volume while a background policy takes a snapshot
// every N operations (cheap: one note each). When the "application" corrupts a swath of
// blocks, the operator activates the last good snapshot with rate limiting (so the
// still-running foreground traffic barely notices, §5.7) and restores the damaged range
// by copying blocks from the snapshot view back into the live volume.

#include <cstdio>
#include <map>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/core/ftl.h"

using namespace iosnap;

namespace {

std::vector<uint8_t> Payload(uint64_t page_bytes, uint64_t lba, uint64_t version) {
  std::vector<uint8_t> page(page_bytes, 0);
  std::snprintf(reinterpret_cast<char*>(page.data()), page.size(), "lba=%llu v=%llu",
                (unsigned long long)lba, (unsigned long long)version);
  return page;
}

}  // namespace

int main() {
  FtlConfig config;
  config.nand.page_size_bytes = 4096;
  config.nand.pages_per_segment = 256;
  config.nand.num_segments = 256;  // 256 MiB.
  config.nand.store_data = true;

  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  uint64_t now = 0;

  const uint64_t volume = 4096;  // 16 MiB of user blocks.
  std::map<uint64_t, uint64_t> versions;
  Rng rng(2024);
  uint64_t version = 0;
  uint32_t last_good_snapshot = 0;
  std::map<uint64_t, uint64_t> snapshot_versions;

  // Phase 1: workload with periodic snapshots (every 2000 writes).
  for (int i = 0; i < 10000; ++i) {
    const uint64_t lba = rng.NextBelow(volume);
    ++version;
    auto io = ftl->Write(lba, Payload(4096, lba, version), now);
    IOSNAP_CHECK_OK(io.status());
    now = io->CompletionNs();
    versions[lba] = version;
    ftl->PumpBackground(now);

    if ((i + 1) % 2000 == 0) {
      auto snap = ftl->CreateSnapshot("backup-" + std::to_string(i + 1), now);
      IOSNAP_CHECK_OK(snap.status());
      now = snap->io.CompletionNs();
      last_good_snapshot = snap->snap_id;
      snapshot_versions = versions;
      std::printf("backup snapshot %u taken at op %d (%.1f us)\n", snap->snap_id, i + 1,
                  NsToUs(snap->io.LatencyNs()));
    }
  }

  // Phase 2: disaster — a bug scribbles garbage over blocks [100, 600).
  std::printf("\n*** bug corrupts blocks [100, 600) ***\n");
  for (uint64_t lba = 100; lba < 600; ++lba) {
    std::vector<uint8_t> garbage(4096, 0xde);
    auto io = ftl->Write(lba, garbage, now);
    IOSNAP_CHECK_OK(io.status());
    now = io->CompletionNs();
  }

  // Phase 3: activate the last good snapshot, rate-limited so concurrent reads keep
  // their latency; the foreground keeps reading elsewhere meanwhile.
  std::printf("activating snapshot %u with 200us/10ms rate limiting...\n",
              last_good_snapshot);
  auto view_or = ftl->BeginActivation(last_good_snapshot, RateLimit::Of(200, 10), now);
  IOSNAP_CHECK_OK(view_or.status());
  const uint32_t view = *view_or;
  OnlineStats read_latency;
  while (!ftl->ActivationDone(view)) {
    const uint64_t lba = 1000 + rng.NextBelow(volume - 1000);
    auto io = ftl->Read(lba, now, nullptr);
    IOSNAP_CHECK_OK(io.status());
    read_latency.Add(NsToUs(io->LatencyNs()));
    now = io->CompletionNs();
    ftl->PumpBackground(now);
  }
  std::printf("activation done; foreground reads averaged %.1f us meanwhile\n",
              read_latency.mean());

  // Phase 4: restore the damaged range from the snapshot.
  uint64_t restored = 0;
  for (uint64_t lba = 100; lba < 600; ++lba) {
    std::vector<uint8_t> page;
    auto read = ftl->ReadView(view, lba, now, &page);
    IOSNAP_CHECK_OK(read.status());
    now = read->CompletionNs();
    auto write = ftl->Write(lba, page, now);
    IOSNAP_CHECK_OK(write.status());
    now = write->CompletionNs();
    ++restored;
  }
  IOSNAP_CHECK_OK(ftl->Deactivate(view, now));
  std::printf("restored %llu blocks from snapshot %u\n", (unsigned long long)restored,
              last_good_snapshot);

  // Phase 5: verify every block matches: snapshot state for the restored range, the
  // live latest version elsewhere.
  uint64_t verified = 0;
  for (uint64_t lba = 0; lba < volume; ++lba) {
    const bool restored_range = lba >= 100 && lba < 600;
    const auto& expect_map = restored_range ? snapshot_versions : versions;
    auto it = expect_map.find(lba);
    std::vector<uint8_t> page;
    auto read = ftl->Read(lba, now, &page);
    IOSNAP_CHECK_OK(read.status());
    now = read->CompletionNs();
    const std::vector<uint8_t> expected =
        it == expect_map.end() ? std::vector<uint8_t>(4096, 0)
                               : Payload(4096, lba, it->second);
    IOSNAP_CHECK(page == expected);
    ++verified;
  }
  std::printf("verified %llu blocks OK — disaster recovered.\n",
              (unsigned long long)verified);
  return 0;
}
