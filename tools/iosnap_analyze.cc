// iosnap_analyze — offline tail-latency attribution reports.
//
// Reads the per-op span CSV written by --spans_out (iosnap_sim / attribution tests)
// and, optionally, the CSV flight-recorder trace written by --trace_out=*.csv, and
// prints where the latency went:
//
//   * a hard re-check of the exactness invariant (every row's spans sum to total_ns),
//   * end-to-end percentiles per op kind,
//   * aggregate span shares over the foreground ops (gc_copy rows — cleaner copyback
//     relocations, whose on-die variant legitimately carries bus=0 — are reported in
//     their own section so they don't skew the foreground shares),
//   * GC/background interference share (ops affected, tail among affected),
//   * the top-K slowest foreground ops with their full breakdowns,
//   * with --trace: per-queue aggregation (spans joined to queue_complete events on
//     (lba, issue_ns, complete_ns)) and overlap buckets against GC / activation
//     windows from the trace,
//   * with --metrics: per-bus utilization (nand.bus_busy_frac.*) and copyback
//     counters from a --metrics_out JSON dump.
//
// Exit codes: 0 report printed; 1 I/O or invariant failure; 2 bad flags.
//
// Examples:
//   iosnap_sim --ops=200000 --spans_out=spans.csv --trace_out=trace.csv
//   iosnap_analyze --spans=spans.csv --trace=trace.csv --top=10

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/flags.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/obs/latency.h"

using namespace iosnap;

namespace {

constexpr const char* kUsage = R"(iosnap_analyze: tail-latency attribution reports

  --spans=PATH   per-op span CSV from --spans_out            (required)
  --trace=PATH   CSV trace from --trace_out=*.csv            (optional)
  --metrics=PATH flat metrics JSON from --metrics_out; adds
                 per-bus utilization + copyback counters     (optional)
  --top=N        slowest ops to list with breakdowns         (default 10)
  --help         this text
)";

const std::vector<std::string> kKnownFlags = {"spans", "trace", "metrics", "top",
                                              "help"};

// RFC 4180 field splitter (the trace CSV quotes fields containing , " or newlines;
// the span CSV never needs quoting but parses identically).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

struct SpanRow {
  uint64_t seq = 0;
  std::string kind;
  uint64_t lba = 0;
  uint64_t issue_ns = 0;
  uint64_t complete_ns = 0;
  uint64_t total_ns = 0;
  uint64_t span[kNumLatencySpans] = {};
};

// Span CSV column order after the six id columns; must match LatencyAttributor::ToCsv.
const char* const kSpanColumns[kNumLatencySpans] = {
    "queue_wait_ns", "gc_wait_ns", "bus_ns", "cell_ns", "map_ns", "cow_ns",
    "host_other_ns"};

bool ParseSpansCsv(const std::string& path, std::vector<SpanRow>* rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open --spans=%s\n", path.c_str());
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) {
    std::fprintf(stderr, "%s: empty file\n", path.c_str());
    return false;
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  std::vector<std::string> expected = {"seq",         "kind",     "lba",
                                       "issue_ns",    "complete_ns", "total_ns"};
  for (const char* col : kSpanColumns) {
    expected.push_back(col);
  }
  if (header != expected) {
    std::fprintf(stderr, "%s: unexpected header (not a --spans_out file?)\n",
                 path.c_str());
    return false;
  }
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> f = SplitCsvLine(line);
    if (f.size() != expected.size()) {
      std::fprintf(stderr, "%s:%zu: %zu fields, want %zu\n", path.c_str(), lineno,
                   f.size(), expected.size());
      return false;
    }
    SpanRow row;
    row.seq = std::strtoull(f[0].c_str(), nullptr, 10);
    row.kind = f[1];
    row.lba = std::strtoull(f[2].c_str(), nullptr, 10);
    row.issue_ns = std::strtoull(f[3].c_str(), nullptr, 10);
    row.complete_ns = std::strtoull(f[4].c_str(), nullptr, 10);
    row.total_ns = std::strtoull(f[5].c_str(), nullptr, 10);
    for (size_t s = 0; s < kNumLatencySpans; ++s) {
      row.span[s] = std::strtoull(f[6 + s].c_str(), nullptr, 10);
    }
    rows->push_back(std::move(row));
  }
  return true;
}

struct TraceRow {
  std::string type;
  std::string category;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
};

bool ParseTraceCsv(const std::string& path, std::vector<TraceRow>* rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open --trace=%s\n", path.c_str());
    return false;
  }
  std::string line;
  if (!std::getline(in, line) ||
      SplitCsvLine(line) !=
          std::vector<std::string>{"type", "category", "start_ns", "end_ns", "arg0",
                                   "arg1", "arg2", "arg_names"}) {
    std::fprintf(stderr, "%s: not a --trace_out=*.csv file\n", path.c_str());
    return false;
  }
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> f = SplitCsvLine(line);
    if (f.size() != 8) {
      std::fprintf(stderr, "%s: malformed row\n", path.c_str());
      return false;
    }
    TraceRow row;
    row.type = f[0];
    row.category = f[1];
    row.start_ns = std::strtoull(f[2].c_str(), nullptr, 10);
    row.end_ns = std::strtoull(f[3].c_str(), nullptr, 10);
    row.arg0 = std::strtoull(f[4].c_str(), nullptr, 10);
    row.arg1 = std::strtoull(f[5].c_str(), nullptr, 10);
    row.arg2 = std::strtoull(f[6].c_str(), nullptr, 10);
    rows->push_back(std::move(row));
  }
  return true;
}

// Flat {"name":number,...} JSON as written by --metrics_out. Not a general JSON
// parser: names never contain escapes and values are bare numbers, so scanning
// quoted-string/colon/number triples is exact for this producer.
bool ParseMetricsJson(const std::string& path, std::map<std::string, double>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open --metrics=%s\n", path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const size_t name_end = text.find('"', pos + 1);
    if (name_end == std::string::npos) {
      break;
    }
    const std::string name = text.substr(pos + 1, name_end - pos - 1);
    size_t colon = name_end + 1;
    while (colon < text.size() && (text[colon] == ' ' || text[colon] == ':')) {
      ++colon;
    }
    (*out)[name] = std::strtod(text.c_str() + colon, nullptr);
    pos = name_end + 1;
  }
  if (out->empty()) {
    std::fprintf(stderr, "%s: no metrics parsed (not a --metrics_out file?)\n",
                 path.c_str());
    return false;
  }
  return true;
}

void PrintPercentileLine(const char* label, const LatencyHistogram& h) {
  std::printf("  %-7s %8llu ops  mean %8.1f  p50 %8.1f  p90 %8.1f  p99 %8.1f  "
              "p99.9 %8.1f  max %8.1f us\n",
              label, (unsigned long long)h.count(), h.MeanNs() / 1000.0,
              NsToUs(h.PercentileNs(50)), NsToUs(h.PercentileNs(90)),
              NsToUs(h.PercentileNs(99)), NsToUs(h.PercentileNs(99.9)),
              NsToUs(h.MaxNs()));
}

// Merged, sorted busy windows from trace events of one category; Overlaps() then
// answers "did this op's [issue, complete) intersect any of them".
class WindowSet {
 public:
  void Add(uint64_t start_ns, uint64_t end_ns) {
    if (end_ns > start_ns) {
      raw_.emplace_back(start_ns, end_ns);
    }
  }
  void Seal() {
    std::sort(raw_.begin(), raw_.end());
    for (const auto& [s, e] : raw_) {
      if (!merged_.empty() && s <= merged_.back().second) {
        merged_.back().second = std::max(merged_.back().second, e);
      } else {
        merged_.emplace_back(s, e);
      }
    }
    raw_.clear();
  }
  bool Overlaps(uint64_t start_ns, uint64_t end_ns) const {
    auto it = std::upper_bound(merged_.begin(), merged_.end(),
                               std::make_pair(end_ns, UINT64_MAX));
    if (it == merged_.begin()) {
      return false;
    }
    --it;
    return it->second > start_ns;
  }
  size_t size() const { return merged_.size(); }
  uint64_t TotalNs() const {
    uint64_t total = 0;
    for (const auto& [s, e] : merged_) {
      total += e - s;
    }
    return total;
  }

 private:
  std::vector<std::pair<uint64_t, uint64_t>> raw_;
  std::vector<std::pair<uint64_t, uint64_t>> merged_;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  const auto unknown = flags.UnknownFlags(kKnownFlags);
  if (!unknown.empty()) {
    for (const auto& name : unknown) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string spans_path = flags.GetString("spans", "");
  if (spans_path.empty()) {
    std::fprintf(stderr, "--spans=PATH is required\n%s", kUsage);
    return 2;
  }
  const std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const size_t top_k = (size_t)flags.GetInt("top", 10);

  std::vector<SpanRow> rows;
  if (!ParseSpansCsv(spans_path, &rows)) {
    return 1;
  }
  if (rows.empty()) {
    std::printf("%s: no span records\n", spans_path.c_str());
    return 0;
  }

  // The invariant the attribution layer promises: spans sum bit-exactly to the
  // end-to-end latency. A violation means the producer is broken — fail hard so CI
  // catches it.
  size_t violations = 0;
  for (const SpanRow& row : rows) {
    uint64_t sum = 0;
    for (uint64_t s : row.span) {
      sum += s;
    }
    if (sum != row.total_ns || row.total_ns != row.complete_ns - row.issue_ns) {
      if (++violations <= 5) {
        std::fprintf(stderr,
                     "span-sum violation at seq=%llu: spans sum %llu, total %llu\n",
                     (unsigned long long)row.seq, (unsigned long long)sum,
                     (unsigned long long)row.total_ns);
      }
    }
  }
  std::printf("== span-sum check: %zu records, %zu violations ==\n", rows.size(),
              violations);
  if (violations > 0) {
    return 1;
  }

  // gc_copy rows are cleaner copyback relocations, not host ops. Their on-die
  // variant carries bus=0 by design (the transfer never leaves the die), so folding
  // them into the foreground aggregates would both dilute the bus share and count
  // device-side background work as host latency. They get their own section below.
  std::vector<const SpanRow*> fg;
  std::vector<const SpanRow*> copyback;
  for (const SpanRow& row : rows) {
    (row.kind == "gc_copy" ? copyback : fg).push_back(&row);
  }

  uint64_t first_issue = UINT64_MAX;
  uint64_t last_complete = 0;
  uint64_t grand_total = 0;
  uint64_t span_total[kNumLatencySpans] = {};
  std::map<std::string, LatencyHistogram> by_kind;
  for (const SpanRow& row : rows) {
    first_issue = std::min(first_issue, row.issue_ns);
    last_complete = std::max(last_complete, row.complete_ns);
    by_kind[row.kind].Add(row.total_ns);
  }
  for (const SpanRow* row : fg) {
    grand_total += row->total_ns;
    for (size_t s = 0; s < kNumLatencySpans; ++s) {
      span_total[s] += row->span[s];
    }
  }

  std::printf("\n== end-to-end latency (%zu ops over %.3f virtual s) ==\n", rows.size(),
              NsToSec(last_complete - first_issue));
  for (const auto& [kind, hist] : by_kind) {
    PrintPercentileLine(kind.c_str(), hist);
  }

  std::printf("\n== where the latency went (foreground span shares, %zu ops) ==\n",
              fg.size());
  for (size_t s = 0; s < kNumLatencySpans; ++s) {
    std::printf("  %-11s %12.2f ms  %5.1f%%\n",
                LatencySpanName(static_cast<LatencySpan>(s)), NsToMs(span_total[s]),
                grand_total > 0 ? 100.0 * (double)span_total[s] / (double)grand_total
                                : 0.0);
  }

  // GC interference: kGcWait is the share of device wait spent behind background
  // work (cleaner copies/erases, activation scans) rather than other foreground ops.
  const size_t gc_idx = static_cast<size_t>(LatencySpan::kGcWait);
  size_t gc_affected = 0;
  LatencyHistogram gc_wait_hist;
  for (const SpanRow* row : fg) {
    if (row->span[gc_idx] > 0) {
      ++gc_affected;
      gc_wait_hist.Add(row->span[gc_idx]);
    }
  }
  std::printf("\n== background (GC/activation) interference ==\n");
  std::printf("  ops delayed by background work  %zu / %zu (%.2f%%)\n", gc_affected,
              fg.size(), fg.empty() ? 0.0 : 100.0 * (double)gc_affected / (double)fg.size());
  std::printf("  share of foreground latency     %.2f%%\n",
              grand_total > 0 ? 100.0 * (double)span_total[gc_idx] / (double)grand_total
                              : 0.0);
  if (gc_affected > 0) {
    PrintPercentileLine("gc_wait", gc_wait_hist);
  }

  // Copyback relocations: bus=0 means the copy stayed on-die; bus>0 means the
  // same-channel constraint failed and the copy fell back to read+program across
  // the bus. The split shows how well the cleaner's channel-matched ordering works.
  if (!copyback.empty()) {
    size_t on_die = 0;
    uint64_t cb_bus_ns = 0;
    uint64_t cb_device_ns = 0;
    LatencyHistogram cb_hist;
    for (const SpanRow* row : copyback) {
      if (row->span[static_cast<size_t>(LatencySpan::kBus)] == 0) {
        ++on_die;
      }
      cb_bus_ns += row->span[static_cast<size_t>(LatencySpan::kBus)];
      cb_device_ns += row->total_ns;
      cb_hist.Add(row->total_ns);
    }
    std::printf("\n== copyback relocations (gc_copy, reported separately) ==\n");
    std::printf("  pages relocated                 %zu (on-die %zu, cross-channel "
                "fallback %zu)\n",
                copyback.size(), on_die, copyback.size() - on_die);
    std::printf("  bus time consumed               %.2f ms (fallbacks only)\n",
                NsToMs(cb_bus_ns));
    std::printf("  device time consumed            %.2f ms\n", NsToMs(cb_device_ns));
    PrintPercentileLine("gc_copy", cb_hist);
  }

  std::vector<size_t> order(fg.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  const size_t k = std::min(top_k, fg.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](size_t a, size_t b) { return fg[a]->total_ns > fg[b]->total_ns; });
  std::printf("\n== top %zu slowest foreground ops ==\n", k);
  std::printf("  %-5s %-10s %10s %9s | %9s %9s %9s %9s %7s %7s %7s (us)\n", "kind",
              "lba", "issue_us", "total_us", "q_wait", "gc_wait", "bus", "cell", "map",
              "cow", "other");
  for (size_t i = 0; i < k; ++i) {
    const SpanRow& r = *fg[order[i]];
    std::printf("  %-5s %-10llu %10.1f %9.1f | %9.1f %9.1f %9.1f %9.1f %7.1f %7.1f "
                "%7.1f\n",
                r.kind.c_str(), (unsigned long long)r.lba, NsToUs(r.issue_ns),
                NsToUs(r.total_ns), NsToUs(r.span[0]), NsToUs(r.span[1]),
                NsToUs(r.span[2]), NsToUs(r.span[3]), NsToUs(r.span[4]),
                NsToUs(r.span[5]), NsToUs(r.span[6]));
  }

  if (!metrics_path.empty()) {
    std::map<std::string, double> metrics;
    if (!ParseMetricsJson(metrics_path, &metrics)) {
      return 1;
    }
    std::map<uint64_t, double> bus_frac;
    for (const auto& [name, value] : metrics) {
      constexpr const char* kPrefix = "nand.bus_busy_frac.";
      if (name.rfind(kPrefix, 0) == 0) {
        bus_frac[std::strtoull(name.c_str() + std::strlen(kPrefix), nullptr, 10)] =
            value;
      }
    }
    std::printf("\n== per-bus utilization (%s) ==\n", metrics_path.c_str());
    if (bus_frac.empty()) {
      std::printf("  no nand.bus_busy_frac.* gauges in the metrics dump\n");
    }
    for (const auto& [bus, frac] : bus_frac) {
      std::printf("  bus %-3llu busy %5.1f%%  |%-40s|\n", (unsigned long long)bus,
                  100.0 * frac,
                  std::string((size_t)std::min(40.0, 40.0 * frac), '#').c_str());
    }
    const auto cb_pages = metrics.find("nand.copyback_pages");
    const auto cb_fallbacks = metrics.find("nand.copyback_fallbacks");
    if (cb_pages != metrics.end()) {
      std::printf("  copyback pages %.0f (cross-channel fallbacks %.0f)\n",
                  cb_pages->second,
                  cb_fallbacks != metrics.end() ? cb_fallbacks->second : 0.0);
    }
  }

  if (trace_path.empty()) {
    return 0;
  }
  std::vector<TraceRow> trace;
  if (!ParseTraceCsv(trace_path, &trace)) {
    return 1;
  }

  // Per-queue aggregation: queue_complete events carry (queue, op_id, lba) and span the
  // op's [issue, complete) window — (lba, issue_ns, complete_ns) is the join key back
  // to span rows. The trace ring may have dropped older events, so a partial join is
  // expected; the unmatched count says how partial.
  struct QueueAgg {
    LatencyHistogram latency;
    uint64_t span_total[kNumLatencySpans] = {};
    uint64_t total_ns = 0;
  };
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, uint64_t> complete_to_queue;
  for (const TraceRow& e : trace) {
    if (e.type == "queue_complete") {
      complete_to_queue[{e.arg2, e.start_ns, e.end_ns}] = e.arg0;
    }
  }
  if (!complete_to_queue.empty()) {
    std::map<uint64_t, QueueAgg> queues;
    size_t joined = 0;
    for (const SpanRow& row : rows) {
      const auto it = complete_to_queue.find({row.lba, row.issue_ns, row.complete_ns});
      if (it == complete_to_queue.end()) {
        continue;
      }
      ++joined;
      QueueAgg& agg = queues[it->second];
      agg.latency.Add(row.total_ns);
      agg.total_ns += row.total_ns;
      for (size_t s = 0; s < kNumLatencySpans; ++s) {
        agg.span_total[s] += row.span[s];
      }
    }
    std::printf("\n== per-queue attribution (%zu of %zu ops joined to %zu "
                "queue_complete events) ==\n",
                joined, rows.size(), complete_to_queue.size());
    for (const auto& [queue, agg] : queues) {
      char label[32];
      std::snprintf(label, sizeof(label), "queue %llu", (unsigned long long)queue);
      PrintPercentileLine(label, agg.latency);
      std::printf("          shares:");
      for (size_t s = 0; s < kNumLatencySpans; ++s) {
        std::printf(" %s %.1f%%", LatencySpanName(static_cast<LatencySpan>(s)),
                    agg.total_ns > 0
                        ? 100.0 * (double)agg.span_total[s] / (double)agg.total_ns
                        : 0.0);
      }
      std::printf("\n");
    }
  }

  // Phase overlap: bucket ops by whether they ran while the cleaner (gc category) or
  // an activation scan had the device busy.
  WindowSet gc_windows;
  WindowSet activation_windows;
  for (const TraceRow& e : trace) {
    if (e.category == "gc") {
      gc_windows.Add(e.start_ns, e.end_ns);
    } else if (e.category == "activation") {
      activation_windows.Add(e.start_ns, e.end_ns);
    }
  }
  gc_windows.Seal();
  activation_windows.Seal();
  struct PhaseAgg {
    const char* label;
    LatencyHistogram latency;
    uint64_t gc_wait_ns = 0;
    uint64_t total_ns = 0;
  };
  PhaseAgg phases[3] = {{"quiet", {}}, {"gc", {}}, {"activation", {}}};
  for (const SpanRow* row : fg) {
    const bool in_gc = gc_windows.Overlaps(row->issue_ns, row->complete_ns);
    const bool in_act = activation_windows.Overlaps(row->issue_ns, row->complete_ns);
    PhaseAgg& agg = phases[in_act ? 2 : (in_gc ? 1 : 0)];
    agg.latency.Add(row->total_ns);
    agg.gc_wait_ns += row->span[gc_idx];
    agg.total_ns += row->total_ns;
  }
  std::printf("\n== phase overlap (gc: %zu windows, %.2f ms busy; activation: %zu "
              "windows, %.2f ms busy) ==\n",
              gc_windows.size(), NsToMs(gc_windows.TotalNs()), activation_windows.size(),
              NsToMs(activation_windows.TotalNs()));
  for (const PhaseAgg& agg : phases) {
    if (agg.latency.count() == 0) {
      continue;
    }
    PrintPercentileLine(agg.label, agg.latency);
    std::printf("          gc_wait share %.2f%%\n",
                agg.total_ns > 0 ? 100.0 * (double)agg.gc_wait_ns / (double)agg.total_ns
                                 : 0.0);
  }
  return 0;
}
