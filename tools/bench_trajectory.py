#!/usr/bin/env python3
"""Collect BENCH_*.json files into one perf-trajectory record.

Benchmarks emit machine-readable output in two shapes:
  * ``--metrics_out=BENCH_<name>.json`` from the virtual-time paper benches — a flat
    ``{"metric": value}`` dict of FtlStats/NandStats/ValidityStats counters.
  * ``--benchmark_out=BENCH_<name>.json --benchmark_out_format=json`` from the
    google-benchmark host-structure microbenches.

This script normalizes both into a single trajectory point::

    {
      "commit": "<git sha>", "branch": "...", "timestamp": "...",
      "benches": {
        "<name>": {"kind": "metrics"|"google_benchmark", "metrics": {...}}
      }
    }

so CI can upload one artifact per run and a later pass (or a human with jq) can diff
runs commit-over-commit. Appending to a history file keeps a local trajectory across
rebuilds.

Usage:
    tools/bench_trajectory.py [--dir DIR] [--out FILE] [--append-history FILE]
"""

import argparse
import glob
import json
import os
import subprocess
import sys
from datetime import datetime, timezone


def git(*args):
    try:
        return subprocess.check_output(
            ["git", *args], stderr=subprocess.DEVNULL, text=True
        ).strip()
    except (subprocess.CalledProcessError, OSError):
        return ""


def parse_google_benchmark(doc):
    """Flatten a google-benchmark JSON document to {bench_name: items_per_second|real_time}."""
    metrics = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate duplicates unless only aggregates are present.
        if bench.get("run_type") == "aggregate" and bench.get("aggregate_name") != "mean":
            continue
        name = bench.get("name", "?")
        if "items_per_second" in bench:
            metrics[f"{name}.items_per_second"] = bench["items_per_second"]
        if "real_time" in bench:
            metrics[f"{name}.real_time_{bench.get('time_unit', 'ns')}"] = bench["real_time"]
    return metrics


def collect(directory):
    benches = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        if isinstance(doc, dict) and "benchmarks" in doc:
            benches[name] = {
                "kind": "google_benchmark",
                "metrics": parse_google_benchmark(doc),
            }
        elif isinstance(doc, dict):
            benches[name] = {"kind": "metrics", "metrics": doc}
        else:
            print(f"warning: {path}: unrecognized shape", file=sys.stderr)
    return benches


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json files")
    parser.add_argument("--out", default="bench_trajectory.json", help="output file")
    parser.add_argument(
        "--append-history",
        default="",
        help="also append the point to this JSON-lines history file",
    )
    args = parser.parse_args()

    benches = collect(args.dir)
    if not benches:
        print(f"error: no BENCH_*.json files in {args.dir}", file=sys.stderr)
        return 1

    point = {
        "commit": git("rev-parse", "HEAD"),
        "branch": git("rev-parse", "--abbrev-ref", "HEAD"),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "benches": benches,
    }
    with open(args.out, "w") as f:
        json.dump(point, f, indent=2, sort_keys=True)
        f.write("\n")
    if args.append_history:
        with open(args.append_history, "a") as f:
            f.write(json.dumps(point, sort_keys=True) + "\n")
    total = sum(len(b["metrics"]) for b in benches.values())
    print(f"trajectory: {len(benches)} benches, {total} metrics -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
