#!/usr/bin/env python3
"""Collect BENCH_*.json files into one perf-trajectory record.

Benchmarks emit machine-readable output in two shapes:
  * ``--metrics_out=BENCH_<name>.json`` from the virtual-time paper benches — a flat
    ``{"metric": value}`` dict of FtlStats/NandStats/ValidityStats counters.
  * ``--benchmark_out=BENCH_<name>.json --benchmark_out_format=json`` from the
    google-benchmark host-structure microbenches.

This script normalizes both into a single trajectory point::

    {
      "commit": "<git sha>", "branch": "...", "timestamp": "...",
      "benches": {
        "<name>": {"kind": "metrics"|"google_benchmark", "metrics": {...}}
      }
    }

so CI can upload one artifact per run and a later pass (or a human with jq) can diff
runs commit-over-commit. Appending to a history file keeps a local trajectory across
rebuilds.

``--check`` turns the script into a perf-regression gate: the freshly collected point
is compared against a committed baseline trajectory (``--baseline``, defaulting to the
highest-numbered ``BENCH_<n>.json`` at the repo root). Only deterministic virtual-time
metrics — names starting with ``bench.`` — are gated; wall-clock metrics (the
google-benchmark microbenches, ``*_ns`` counters) vary with host load and are reported
but never fail the gate. A gated metric regresses when it drops more than
``--threshold`` (default 10%) below the baseline; any regression exits nonzero.

Usage:
    tools/bench_trajectory.py [--dir DIR] [--out FILE] [--append-history FILE]
                              [--check] [--baseline FILE] [--threshold 0.10]
"""

import argparse
import glob
import json
import os
import subprocess
import sys
from datetime import datetime, timezone


def git(*args):
    try:
        return subprocess.check_output(
            ["git", *args], stderr=subprocess.DEVNULL, text=True
        ).strip()
    except (subprocess.CalledProcessError, OSError):
        return ""


def parse_google_benchmark(doc):
    """Flatten a google-benchmark JSON document to {bench_name: items_per_second|real_time}."""
    metrics = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate duplicates unless only aggregates are present.
        if bench.get("run_type") == "aggregate" and bench.get("aggregate_name") != "mean":
            continue
        name = bench.get("name", "?")
        if "items_per_second" in bench:
            metrics[f"{name}.items_per_second"] = bench["items_per_second"]
        if "real_time" in bench:
            metrics[f"{name}.real_time_{bench.get('time_unit', 'ns')}"] = bench["real_time"]
    return metrics


def collect(directory):
    benches = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        if isinstance(doc, dict) and "benchmarks" in doc:
            benches[name] = {
                "kind": "google_benchmark",
                "metrics": parse_google_benchmark(doc),
            }
        elif isinstance(doc, dict):
            benches[name] = {"kind": "metrics", "metrics": doc}
        else:
            print(f"warning: {path}: unrecognized shape", file=sys.stderr)
    return benches


def find_default_baseline():
    """Latest committed trajectory snapshot: highest-numbered BENCH_<n>.json in cwd."""
    best, best_n = "", -1
    for path in glob.glob("BENCH_*.json"):
        stem = os.path.basename(path)[len("BENCH_"):-len(".json")]
        if stem.isdigit() and int(stem) > best_n:
            best, best_n = path, int(stem)
    return best


def check_against_baseline(point, baseline_path, threshold):
    """Gate bench.* metrics of `point` against the baseline trajectory. Returns the
    number of regressions (0 = pass)."""
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read baseline {baseline_path}: {err}", file=sys.stderr)
        return 1
    base_benches = baseline.get("benches", {})
    print(f"gate: comparing against {baseline_path} "
          f"(commit {baseline.get('commit', '?')[:12]}, threshold {threshold:.0%})")
    regressions = 0
    compared = 0
    for name, bench in sorted(point["benches"].items()):
        base = base_benches.get(name)
        if base is None:
            print(f"  {name}: new bench, no baseline — skipped")
            continue
        for metric, value in sorted(bench["metrics"].items()):
            if not metric.startswith("bench."):
                continue  # Wall-clock or raw counter: informational only.
            base_value = base["metrics"].get(metric)
            if base_value is None:
                print(f"  {name}/{metric}: new metric, no baseline — skipped")
                continue
            compared += 1
            if base_value <= 0:
                continue
            delta = (value - base_value) / base_value
            if delta < -threshold:
                regressions += 1
                print(f"  REGRESSION {name}/{metric}: "
                      f"{base_value:.2f} -> {value:.2f} ({delta:+.1%})")
            elif abs(delta) > threshold:
                print(f"  improved {name}/{metric}: "
                      f"{base_value:.2f} -> {value:.2f} ({delta:+.1%})")
    if compared == 0:
        print("gate: baseline has no bench.* metrics to compare — nothing gated")
    elif regressions == 0:
        print(f"gate: {compared} metrics within {threshold:.0%} of baseline")
    else:
        print(f"gate: {regressions} of {compared} metrics regressed more than "
              f"{threshold:.0%}", file=sys.stderr)
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json files")
    parser.add_argument("--out", default="bench_trajectory.json", help="output file")
    parser.add_argument(
        "--append-history",
        default="",
        help="also append the point to this JSON-lines history file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate deterministic bench.* metrics against a committed baseline",
    )
    parser.add_argument(
        "--baseline",
        default="",
        help="baseline trajectory file (default: highest-numbered BENCH_<n>.json in cwd)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="maximum allowed fractional drop for gated metrics (default 0.10)",
    )
    args = parser.parse_args()

    benches = collect(args.dir)
    if not benches:
        print(f"error: no BENCH_*.json files in {args.dir}", file=sys.stderr)
        return 1

    point = {
        "commit": git("rev-parse", "HEAD"),
        "branch": git("rev-parse", "--abbrev-ref", "HEAD"),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "benches": benches,
    }
    with open(args.out, "w") as f:
        json.dump(point, f, indent=2, sort_keys=True)
        f.write("\n")
    if args.append_history:
        with open(args.append_history, "a") as f:
            f.write(json.dumps(point, sort_keys=True) + "\n")
    total = sum(len(b["metrics"]) for b in benches.values())
    print(f"trajectory: {len(benches)} benches, {total} metrics -> {args.out}")

    if args.check:
        baseline = args.baseline or find_default_baseline()
        if not baseline:
            print("error: --check set but no baseline BENCH_<n>.json found "
                  "(pass --baseline)", file=sys.stderr)
            return 1
        if check_against_baseline(point, baseline, args.threshold) > 0:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
