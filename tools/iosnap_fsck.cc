// iosnap_fsck — offline consistency checker for ioSnap NAND images.
//
// Checks an at-rest image (written by iosnap_sim --image_out) the way a filesystem
// fsck checks a disk: a raw scan of every programmed page (including CRC-failing ones
// the online read path would hide) is cross-checked against a full crash recovery.
// See src/core/fsck.h for the exact invariants and the lost-data triage rule.
//
// With --repair the tool opens a real FTL over the image and replays the patrol
// scrubber's full-sweep logic (Ftl::ScrubAllBlocking): decayed-but-readable pages are
// rewritten, unreadable live pages are dropped from all metadata, and segments that
// held corrupt pages are evacuated and erased so the damage is physically expunged.
// The repaired media is written back to the image and re-checked.
//
// Exit codes (CI-gateable):
//   0  image is clean (or became clean after --repair)
//   1  inconsistencies found (and not repaired)
//   2  usage error, I/O error, or the check/repair itself could not run

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/status.h"
#include "src/core/fsck.h"
#include "src/core/ftl.h"
#include "src/core/ftl_config.h"
#include "src/nand/nand_device.h"
#include "src/nand/nand_image.h"
#include "src/nand/page_header.h"

namespace iosnap {
namespace {

constexpr char kUsage[] =
    R"(iosnap_fsck: offline consistency checker for ioSnap NAND images

Usage: iosnap_fsck --image=PATH [--repair]

  --image=PATH        NAND image to check (written by iosnap_sim --image_out).
  --repair            If the image is dirty, run one full patrol-scrubber sweep
                      (rewrite decayed pages, drop unreadable live pages, evacuate
                      and erase segments holding corrupt pages), write the repaired
                      media back to PATH, and re-check.
  --overprovision=F   Overprovisioning fraction the image was created with
                      (default 0.25). Only used by --repair to size the LBA space.
  --parity_stripe=N   XOR-parity stripe width the image was written with. Corrupt
                      data pages a stripe reconstruction can recover are triaged as
                      rebuilt (repairable) instead of lost, and --repair rebuilds
                      them instead of dropping them. Default 0 infers the width from
                      the parity pages found on the media.
  --help              Show this message.

Exit codes: 0 = clean, 1 = inconsistencies found, 2 = usage or I/O error.
)";

const std::vector<std::string> kKnownFlags = {
    "image",
    "repair",
    "overprovision",
    "parity_stripe",
    "help",
};

// The patrol scrubber only evacuates *closed* segments (an open segment cannot be
// erased under the write head). Before the repair FTL is opened, fill every
// partially-programmed segment with pad records so recovery closes it and the sweep
// can reach any corruption in the former log tail. Pads carry no state: recovery
// skips them and evacuation drops them.
Status CloseOutPartialSegments(NandDevice* device) {
  const NandConfig& config = device->config();
  for (uint64_t segment = 0; segment < config.num_segments; ++segment) {
    if (device->IsBadSegment(segment) || !device->SegmentErased(segment)) {
      continue;
    }
    uint64_t next = device->NextFreePage(segment);
    if (next == 0 || next >= config.pages_per_segment) {
      continue;  // Untouched or already full.
    }
    PageHeader pad;
    pad.type = RecordType::kPad;
    while (device->NextFreePage(segment) < config.pages_per_segment) {
      uint64_t paddr = 0;
      StatusOr<NandOp> op = device->ProgramPage(segment, pad, {}, 0, &paddr);
      if (!op.ok()) {
        return op.status();
      }
    }
  }
  return OkStatus();
}

// Opens an FTL over the (dirty) media, runs one unpaced patrol sweep, and returns
// the repaired device. The FtlConfig only needs the image's NAND geometry plus the
// LBA-space split; patrol/degraded knobs are irrelevant to ScrubAllBlocking.
StatusOr<std::unique_ptr<NandDevice>> RepairDevice(std::unique_ptr<NandDevice> device,
                                                   double overprovision,
                                                   uint64_t parity_stripe) {
  RETURN_IF_ERROR(CloseOutPartialSegments(device.get()));
  FtlConfig config;
  config.nand = device->config();
  config.overprovision = overprovision;
  // With the stripe width known the sweep rebuilds unreadable pages from parity
  // before falling back to dropping them.
  config.parity_stripe = parity_stripe;
  ASSIGN_OR_RETURN(std::unique_ptr<Ftl> ftl, Ftl::Open(config, std::move(device), 0));
  RETURN_IF_ERROR(ftl->ScrubAllBlocking(0).status());
  return ftl->ReleaseDevice();
}

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const std::vector<std::string> unknown = flags.UnknownFlags(kKnownFlags);
  if (!unknown.empty()) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "iosnap_fsck: unknown flag --%s\n", name.c_str());
    }
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string image = flags.GetString("image", "");
  if (image.empty()) {
    std::fprintf(stderr, "iosnap_fsck: --image=PATH is required\n\n");
    std::fputs(kUsage, stderr);
    return 2;
  }

  StatusOr<std::unique_ptr<NandDevice>> device = LoadNandImage(image);
  if (!device.ok()) {
    std::fprintf(stderr, "iosnap_fsck: cannot load %s: %s\n", image.c_str(),
                 device.status().ToString().c_str());
    return 2;
  }

  const uint64_t parity_stripe =
      static_cast<uint64_t>(flags.GetInt("parity_stripe", 0));
  StatusOr<FsckReport> report = FsckDevice(device->get(), parity_stripe);
  if (!report.ok()) {
    std::fprintf(stderr, "iosnap_fsck: check failed: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s: %s", image.c_str(), FormatFsckReport(*report).c_str());
  if (report->Clean()) {
    return 0;
  }
  if (!flags.GetBool("repair", false)) {
    return 1;
  }

  std::printf("\nrepair: running full patrol sweep over %s\n", image.c_str());
  StatusOr<std::unique_ptr<NandDevice>> repaired =
      RepairDevice(std::move(*device), flags.GetDouble("overprovision", 0.25),
                   report->parity_stripe);
  if (!repaired.ok()) {
    std::fprintf(stderr, "iosnap_fsck: repair failed: %s\n",
                 repaired.status().ToString().c_str());
    return 2;
  }
  Status saved = SaveNandImage(**repaired, image);
  if (!saved.ok()) {
    std::fprintf(stderr, "iosnap_fsck: cannot write repaired image %s: %s\n",
                 image.c_str(), saved.ToString().c_str());
    return 2;
  }
  StatusOr<FsckReport> recheck = FsckDevice(repaired->get(), report->parity_stripe);
  if (!recheck.ok()) {
    std::fprintf(stderr, "iosnap_fsck: post-repair check failed: %s\n",
                 recheck.status().ToString().c_str());
    return 2;
  }
  std::printf("\nafter repair %s: %s", image.c_str(),
              FormatFsckReport(*recheck).c_str());
  return recheck->Clean() ? 0 : 1;
}

}  // namespace
}  // namespace iosnap

int main(int argc, char** argv) { return iosnap::Run(argc, argv); }
