// iosnap_sim — interactive exploration of the ioSnap FTL from the command line.
//
// Builds a simulated device from flags, runs a workload with optional snapshot cadence,
// and prints a full statistics report: throughput, latency percentiles, GC and
// snapshot-machinery counters, write amplification, wear, and memory footprints.
//
// Examples:
//   iosnap_sim --workload=randwrite --ops=500000 --snapshot_every=50000
//   iosnap_sim --device_mib=1024 --workload=zipf --policy=colocate --timeline
//   iosnap_sim --workload=mixed --read_frac=0.7 --crash_and_recover
//   iosnap_sim --vanilla --workload=seqwrite      # snapshots compiled out of the path

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/sim_clock.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/core/ftl.h"
#include "src/obs/latency.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_bindings.h"
#include "src/obs/metrics_sampler.h"
#include "src/nand/nand_image.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/workload/runner.h"
#include "src/workload/workload.h"

using namespace iosnap;

namespace {

constexpr const char* kUsage = R"(iosnap_sim: drive the ioSnap FTL simulator

Device:
  --device_mib=N         device capacity in MiB               (default 1024)
  --page_kib=N           page size in KiB                     (default 4)
  --segment_pages=N      pages per erase segment              (default 1024)
  --channels=N           flash channels                       (default 16)
  --buses=N              independent transfer buses; channels
                         stripe across them (1 = the classic
                         single shared bus)                   (default 1)
  --copyback=0|1         GC copy-forward via on-die copyback  (default 0)
  --copyback_scrub=0|1   verify source CRC inside copyback    (default 1)
  --overprovision=F      reserved physical fraction           (default 0.25)
  --chunk_bits=N         validity chunk granularity           (default 8192)
  --policy=NAME          greedy | costbenefit | colocate      (default greedy)
  --parity_stripe=N      XOR-parity stripe width: one parity page per N appended
                         pages; unreadable pages are rebuilt from the stripe
                         instead of dropped                   (default 0 = off)
  --wear_leveling_threshold=N  recycle a cold segment once its erase count falls
                         N behind the most-worn segment       (default 0 = off)
  --vanilla              disable the snapshot machinery
  --vanilla_gc_rate      use the snapshot-unaware GC pacing estimate

Workload:
  --workload=NAME        seqwrite | randwrite | randread | mixed | zipf (default randwrite)
  --ops=N                operations to run                    (default 200000)
  --lba_frac=F           fraction of the LBA space used       (default 0.75)
  --read_frac=F          read fraction for mixed              (default 0.5)
  --zipf_theta=F         skew for zipf                        (default 0.9)
  --qd=N                 queue depth                          (default 1)
  --batch=N              ops per vectored submission; 1 = scalar path (default 1)
  --queues=N             multi-queue mode: N submission queues (default 0 = off)
  --iodepth=N            in-flight submissions per queue      (default 1)
  --seed=N               workload RNG seed                    (default 42)

Snapshots:
  --snapshot_every=N     create a snapshot every N ops        (default 0 = never)
  --snapshots=N          spread N snapshots evenly over the run
  --keep_snapshots=N     live-snapshot rotation window        (default 4)
  --activate_last        activate + verify the newest snapshot at the end

Lifecycle:
  --crash_and_recover    crash (no checkpoint) and reopen at the end
  --checkpoint           clean shutdown + reopen at the end
  --timeline             print a latency timeline CSV (100 ms buckets)

Fault injection (all rates in failures per million ops; 0 = disabled):
  --fault_seed=N         RNG seed for fault draws              (default 1)
  --fault_program_ppm=N  page program failure rate             (default 0)
  --fault_erase_ppm=N    segment erase failure rate            (default 0)
  --fault_read_ppm=N     transient read failure rate           (default 0)
  --fault_corrupt_ppm=N  silent bit-corruption rate            (default 0)
  --crash_after_op=N     device goes offline after the Nth op  (default 0 = never)
  --read_retry_limit=N   total attempts per page read before a transient failure
                         surfaces to the caller                (default 3)

Media reliability (wear model rates 0 = disabled):
  --read_disturb_ppm_per_k_reads=N  per-read corruption rate scaled by the segment's
                         reads-since-erase / 1000               (default 0)
  --retention_ppm_per_sec=N  per-read corruption rate scaled by page age in
                         virtual seconds since program          (default 0)
  --patrol               enable the background patrol scrubber
  --patrol_pages_per_step=N  pages verified per patrol burst    (default 8)
  --patrol_sleep_ms=N    sleep between patrol bursts            (default 10)
  --patrol_refresh_reads=N   preemptively rewrite live pages once their segment
                         absorbed N reads since erase           (default 0 = off)
  --patrol_refresh_age_ms=N  ... or once the page is older than N virtual ms
                                                                (default 0 = off)
  --degraded_free_floor=N    enter read-only mode below N free segments (0 = off)
  --degraded_retired_floor=N ... or at N retired segments       (default 0 = off)
  --degraded_exit_free=N     free segments needed to exit       (default 0 = floor)
  --image_out=PATH       save the at-rest media image for iosnap_fsck; implies
                         --store_data=1
  --store_data=0|1       simulate page payloads (slower; lets wear corruption land
                         in payloads so fsck triage is exact)   (default 0)

Observability:
  --trace_out=PATH       write a flight-recorder trace; .csv for CSV, anything
                         else for Chrome trace-event JSON (load in Perfetto)
  --trace_capacity=N     trace ring-buffer capacity in events    (default 262144)
  --metrics_out=PATH     dump every FTL/NAND/validity counter; .csv or JSON
  --spans_out=PATH       write per-op latency attribution CSV (one row per op with
                         queue_wait/gc_wait/bus/cell/map/cow/host_other spans that
                         sum exactly to the end-to-end latency); also adds lat.*
                         span histograms to --metrics_out
  --metrics_interval_ns=N  sample every registered counter each N virtual ns
                         during the measured run (default 0 = off)
  --metrics_series_out=PATH  write the sampled time series as wide CSV
  --log_level=NAME       debug | info | warning | error          (default info)
  --help                 this text
)";

const std::vector<std::string> kKnownFlags = {
    "device_mib", "page_kib", "segment_pages", "channels", "buses", "copyback",
    "copyback_scrub", "overprovision",
    "chunk_bits", "policy", "vanilla", "vanilla_gc_rate", "workload", "ops",
    "lba_frac", "read_frac", "zipf_theta", "qd", "batch", "queues", "iodepth", "seed",
    "snapshot_every",
    "snapshots",
    "keep_snapshots", "activate_last", "crash_and_recover", "checkpoint", "timeline",
    "parity_stripe", "wear_leveling_threshold",
    "fault_seed", "fault_program_ppm", "fault_erase_ppm", "fault_read_ppm",
    "fault_corrupt_ppm", "crash_after_op", "read_retry_limit",
    "read_disturb_ppm_per_k_reads", "retention_ppm_per_sec",
    "patrol", "patrol_pages_per_step", "patrol_sleep_ms", "patrol_refresh_reads",
    "patrol_refresh_age_ms",
    "degraded_free_floor", "degraded_retired_floor", "degraded_exit_free",
    "image_out", "store_data",
    "trace_out", "trace_capacity", "metrics_out", "spans_out", "metrics_interval_ns",
    "metrics_series_out", "log_level", "help"};

void PrintFaultStats(const Ftl& ftl) {
  const NandStats& n = ftl.device().stats();
  const LogStats& l = ftl.log_manager().stats();
  if (n.program_failures + n.erase_failures + n.read_failures + n.crc_errors +
          n.pages_corrupted + n.read_disturb_corruptions + n.retention_corruptions +
          l.segments_retired ==
      0) {
    return;
  }
  std::printf("--- faults -----------------------------------------------\n");
  std::printf("program/erase/read fail %llu / %llu / %llu\n",
              (unsigned long long)n.program_failures,
              (unsigned long long)n.erase_failures,
              (unsigned long long)n.read_failures);
  std::printf("crc errors / corrupted  %llu / %llu (retries %llu)\n",
              (unsigned long long)n.crc_errors, (unsigned long long)n.pages_corrupted,
              (unsigned long long)n.read_retries);
  if (n.read_disturb_corruptions + n.retention_corruptions > 0) {
    std::printf("wear: disturb/retention %llu / %llu pages corrupted\n",
                (unsigned long long)n.read_disturb_corruptions,
                (unsigned long long)n.retention_corruptions);
  }
  std::printf("segments retired        %12llu (append reroutes %llu)\n",
              (unsigned long long)l.segments_retired,
              (unsigned long long)l.append_reroutes);
}

void PrintStats(const Ftl& ftl, const RunResult& result) {
  const FtlStats& s = ftl.stats();
  const NandStats& n = ftl.device().stats();
  std::printf("\n--- run summary ------------------------------------------\n");
  std::printf("ops                     %12llu\n", (unsigned long long)result.ops);
  std::printf("virtual elapsed         %12.3f s\n", NsToSec(result.ElapsedNs()));
  std::printf("throughput              %12.1f MB/s\n",
              MbPerSec(result.bytes, result.ElapsedNs()));
  std::printf("latency mean/p50/p99    %9.1f / %.1f / %.1f us\n",
              result.latency.MeanNs() / 1000.0, NsToUs(result.latency.PercentileNs(50)),
              NsToUs(result.latency.PercentileNs(99)));
  std::printf("latency max             %12.1f us\n", NsToUs(result.latency.MaxNs()));
  std::printf("--- ftl --------------------------------------------------\n");
  std::printf("user writes/reads/trims %llu / %llu / %llu\n",
              (unsigned long long)s.user_writes, (unsigned long long)s.user_reads,
              (unsigned long long)s.user_trims);
  if (s.user_writes > 0) {
    std::printf("write amplification     %12.3f\n",
                (double)s.total_pages_programmed / (double)s.user_writes);
  }
  std::printf("snapshots create/del    %llu / %llu (rollbacks %llu, activations %llu)\n",
              (unsigned long long)s.snapshots_created,
              (unsigned long long)s.snapshots_deleted, (unsigned long long)s.rollbacks,
              (unsigned long long)s.activations);
  std::printf("validity CoW            %llu events, %llu bytes\n",
              (unsigned long long)s.validity_cow_events,
              (unsigned long long)s.validity_cow_bytes);
  std::printf("--- cleaner ----------------------------------------------\n");
  std::printf("segments cleaned        %12llu\n", (unsigned long long)s.gc_segments_cleaned);
  std::printf("pages copied forward    %12llu\n", (unsigned long long)s.gc_pages_copied);
  std::printf("notes copied/dropped    %llu / %llu (summaries %llu)\n",
              (unsigned long long)s.gc_notes_copied,
              (unsigned long long)s.gc_notes_dropped,
              (unsigned long long)s.gc_summaries_written);
  std::printf("inline write stalls     %12llu\n", (unsigned long long)s.gc_inline_stalls);
  std::printf("validity merge host     %12.2f ms\n", NsToMs(s.gc_merge_host_ns));
  if (s.patrol_pages_scanned > 0) {
    std::printf("--- patrol -----------------------------------------------\n");
    std::printf("pages scanned           %12llu (%llu full sweeps)\n",
                (unsigned long long)s.patrol_pages_scanned,
                (unsigned long long)s.patrol_sweeps);
    std::printf("rewritten / dropped     %llu / %llu (segments evacuated %llu)\n",
                (unsigned long long)s.patrol_pages_rewritten,
                (unsigned long long)s.patrol_pages_dropped,
                (unsigned long long)s.patrol_segments_evacuated);
  }
  const LogStats& l = ftl.log_manager().stats();
  if (l.parity_pages_written + s.pages_rebuilt + s.pages_rebuild_failed +
          s.pages_lost_forever + s.pages_superseded >
      0) {
    std::printf("--- parity & rebuild -------------------------------------\n");
    std::printf("parity pages written    %12llu\n",
                (unsigned long long)l.parity_pages_written);
    std::printf("rebuilt / failed        %llu / %llu\n",
                (unsigned long long)s.pages_rebuilt,
                (unsigned long long)s.pages_rebuild_failed);
    std::printf("lost forever/superseded %llu / %llu\n",
                (unsigned long long)s.pages_lost_forever,
                (unsigned long long)s.pages_superseded);
  }
  if (s.degraded_entries + s.degraded_writes_rejected > 0 || ftl.degraded()) {
    std::printf("--- degraded mode ----------------------------------------\n");
    std::printf("state                   %12s\n",
                ftl.degraded() ? "READ-ONLY" : "writable");
    std::printf("entries / exits         %llu / %llu (writes rejected %llu)\n",
                (unsigned long long)s.degraded_entries,
                (unsigned long long)s.degraded_exits,
                (unsigned long long)s.degraded_writes_rejected);
  }
  std::printf("--- device -----------------------------------------------\n");
  std::printf("pages programmed/read   %llu / %llu\n",
              (unsigned long long)n.pages_programmed, (unsigned long long)n.pages_read);
  std::printf("segments erased         %12llu\n", (unsigned long long)n.segments_erased);
  if (n.copyback_pages > 0) {
    std::printf("copyback pages          %12llu (%llu cross-channel fallbacks)\n",
                (unsigned long long)n.copyback_pages,
                (unsigned long long)n.copyback_fallbacks);
  }
  for (uint32_t bus = 0; bus < ftl.device().NumBuses(); ++bus) {
    std::printf("bus %u busy fraction     %12.3f\n", bus, ftl.device().BusBusyFrac(bus));
  }
  PrintFaultStats(ftl);
  uint64_t max_wear = 0;
  uint64_t total_wear = 0;
  for (uint64_t seg = 0; seg < ftl.config().nand.num_segments; ++seg) {
    const uint64_t wear = ftl.device().EraseCount(seg);
    max_wear = std::max(max_wear, wear);
    total_wear += wear;
  }
  std::printf("wear mean/max           %.2f / %llu erases per segment\n",
              (double)total_wear / (double)ftl.config().nand.num_segments,
              (unsigned long long)max_wear);
  std::printf("--- memory -----------------------------------------------\n");
  std::printf("forward map             %12llu bytes (%llu entries)\n",
              (unsigned long long)*ftl.ViewMapMemoryBytes(kPrimaryView),
              (unsigned long long)*ftl.ViewMapEntryCount(kPrimaryView));
  std::printf("validity maps           %12llu bytes (%zu distinct chunks)\n",
              (unsigned long long)ftl.validity().MemoryBytes(),
              ftl.validity().DistinctChunkCount());
  if (result.queue_stats.submissions > 0) {
    const IoQueueStats& q = result.queue_stats;
    std::printf("--- queues -----------------------------------------------\n");
    std::printf("submissions / ops       %llu / %llu (flushes %llu, merged runs %llu)\n",
                (unsigned long long)q.submissions, (unsigned long long)q.ops_submitted,
                (unsigned long long)q.flushes, (unsigned long long)q.merged_runs);
    std::printf("completed / failed      %llu / %llu (max inflight ops %llu)\n",
                (unsigned long long)q.ops_completed, (unsigned long long)q.ops_failed,
                (unsigned long long)q.max_inflight_ops);
    for (size_t i = 0; i < result.per_queue.size(); ++i) {
      const IoQueueLayer::PerQueueStats& pq = result.per_queue[i];
      std::printf("  queue %zu: %llu subs, %llu ops, %llu completed, max depth %llu\n", i,
                  (unsigned long long)pq.submissions,
                  (unsigned long long)pq.ops_submitted,
                  (unsigned long long)pq.ops_completed,
                  (unsigned long long)pq.max_inflight_subs);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  const auto unknown = flags.UnknownFlags(kKnownFlags);
  if (!unknown.empty()) {
    for (const auto& name : unknown) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
    }
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  const std::string log_level = flags.GetString("log_level", "info");
  const std::optional<LogLevel> parsed_level = ParseLogLevel(log_level);
  if (!parsed_level.has_value()) {
    std::fprintf(stderr, "unknown --log_level=%s\n", log_level.c_str());
    return 2;
  }
  SetLogLevel(*parsed_level);

  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");
  std::unique_ptr<TraceRecorder> trace;
  if (!trace_out.empty()) {
    trace = std::make_unique<TraceRecorder>(
        (size_t)flags.GetInt("trace_capacity", TraceRecorder::kDefaultCapacity));
  }

  FtlConfig config;
  config.nand.page_size_bytes = (uint64_t)flags.GetInt("page_kib", 4) * kKiB;
  config.nand.pages_per_segment = (uint64_t)flags.GetInt("segment_pages", 1024);
  const uint64_t device_bytes = (uint64_t)flags.GetInt("device_mib", 1024) * kMiB;
  config.nand.num_segments = std::max<uint64_t>(
      8, device_bytes / (config.nand.page_size_bytes * config.nand.pages_per_segment));
  config.nand.num_channels = (uint32_t)flags.GetInt("channels", 16);
  config.nand.buses = (uint32_t)flags.GetInt("buses", 1);
  config.nand.copyback_scrub = flags.GetBool("copyback_scrub", true);
  config.gc_copyback = flags.GetBool("copyback", false);
  // Payloads are not simulated by default (headers alone carry the FTL state).
  // Saving an image turns them on so wear corruption lands in payloads, keeping
  // headers parseable for iosnap_fsck's exact lost-data triage.
  const std::string image_out = flags.GetString("image_out", "");
  config.nand.store_data = flags.GetBool("store_data", !image_out.empty());
  config.overprovision = flags.GetDouble("overprovision", 0.25);
  config.validity_chunk_bits = (uint64_t)flags.GetInt("chunk_bits", 8192);
  config.snapshots_enabled = !flags.GetBool("vanilla", false);
  config.snapshot_aware_gc_rate = !flags.GetBool("vanilla_gc_rate", false);
  config.nand.fault.seed = (uint64_t)flags.GetInt("fault_seed", 1);
  config.nand.fault.program_fail_ppm = (uint32_t)flags.GetInt("fault_program_ppm", 0);
  config.nand.fault.erase_fail_ppm = (uint32_t)flags.GetInt("fault_erase_ppm", 0);
  config.nand.fault.read_fail_ppm = (uint32_t)flags.GetInt("fault_read_ppm", 0);
  config.nand.fault.corrupt_ppm = (uint32_t)flags.GetInt("fault_corrupt_ppm", 0);
  config.nand.fault.crash_after_op = (uint64_t)flags.GetInt("crash_after_op", 0);
  config.nand.fault.read_disturb_ppm_per_k_reads =
      (uint32_t)flags.GetInt("read_disturb_ppm_per_k_reads", 0);
  config.nand.fault.retention_ppm_per_sec =
      (uint32_t)flags.GetInt("retention_ppm_per_sec", 0);
  config.patrol_enabled = flags.GetBool("patrol", false);
  config.patrol_pages_per_step = (uint64_t)flags.GetInt("patrol_pages_per_step", 8);
  config.patrol_sleep_ms = (uint64_t)flags.GetInt("patrol_sleep_ms", 10);
  config.patrol_refresh_reads = (uint64_t)flags.GetInt("patrol_refresh_reads", 0);
  config.patrol_refresh_age_ms = (uint64_t)flags.GetInt("patrol_refresh_age_ms", 0);
  config.degraded_free_floor = (uint64_t)flags.GetInt("degraded_free_floor", 0);
  config.degraded_retired_floor = (uint64_t)flags.GetInt("degraded_retired_floor", 0);
  config.degraded_exit_free = (uint64_t)flags.GetInt("degraded_exit_free", 0);
  config.parity_stripe = (uint64_t)flags.GetInt("parity_stripe", 0);
  config.wear_leveling_threshold =
      (uint64_t)flags.GetInt("wear_leveling_threshold", 0);
  config.read_retry_limit = (uint32_t)flags.GetInt("read_retry_limit", 3);
  const bool faults_armed = config.nand.fault.AnyFaultConfigured();

  const std::string policy = flags.GetString("policy", "greedy");
  if (policy == "costbenefit") {
    config.cleaner_policy = CleanerPolicy::kCostBenefit;
  } else if (policy == "colocate") {
    config.cleaner_policy = CleanerPolicy::kEpochColocate;
    config.gc_reserve_segments = 8;
    config.gc_low_free_segments = 20;
    config.gc_high_free_segments = 36;
  } else if (policy != "greedy") {
    std::fprintf(stderr, "unknown --policy=%s\n", policy.c_str());
    return 2;
  }

  auto ftl_or = Ftl::Create(config);
  if (!ftl_or.ok()) {
    std::fprintf(stderr, "Ftl::Create: %s\n", ftl_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  ftl->SetTraceRecorder(trace.get());
  SimClock clock;

  const uint64_t lba_space = std::max<uint64_t>(
      1, (uint64_t)((double)ftl->LbaCount() * flags.GetDouble("lba_frac", 0.75)));
  const uint64_t ops = (uint64_t)flags.GetInt("ops", 200000);
  const uint64_t seed = (uint64_t)flags.GetInt("seed", 42);
  const std::string workload_name = flags.GetString("workload", "randwrite");

  std::unique_ptr<Workload> workload;
  if (workload_name == "seqwrite") {
    workload = std::make_unique<SequentialWorkload>(IoKind::kWrite, 0, lba_space, true);
  } else if (workload_name == "randwrite") {
    workload = std::make_unique<RandomWorkload>(IoKind::kWrite, lba_space, seed);
  } else if (workload_name == "randread") {
    workload = std::make_unique<RandomWorkload>(IoKind::kRead, lba_space, seed);
  } else if (workload_name == "mixed") {
    workload = std::make_unique<MixedWorkload>(flags.GetDouble("read_frac", 0.5),
                                               lba_space, seed);
  } else if (workload_name == "zipf") {
    workload = std::make_unique<ZipfWorkload>(IoKind::kWrite, lba_space,
                                              flags.GetDouble("zipf_theta", 0.9), seed);
  } else {
    std::fprintf(stderr, "unknown --workload=%s\n", workload_name.c_str());
    return 2;
  }

  if (workload_name == "randread" || workload_name == "mixed") {
    std::printf("prefilling %llu blocks for reads...\n", (unsigned long long)lba_space);
    FtlTarget target(ftl.get());
    Runner prefill(&target, &clock, config.nand.page_size_bytes);
    SequentialWorkload fill(IoKind::kWrite, 0, lba_space);
    RunOptions fill_options;
    fill_options.queue_depth = 16;
    auto filled = prefill.Run(&fill, lba_space, fill_options);
    IOSNAP_CHECK(filled.ok());
    clock.AdvanceTo(filled->drain_end_ns);
  }

  // Latency attribution records per-op span breakdowns; attached after the prefill so
  // the CSV covers only the measured workload. The attributor outlives the ftl (it is
  // a passive sink), so a crash/reopen at the end leaves the records intact.
  const std::string spans_out = flags.GetString("spans_out", "");
  std::unique_ptr<LatencyAttributor> attributor;
  if (!spans_out.empty()) {
    attributor = std::make_unique<LatencyAttributor>();
    ftl->SetLatencyAttributor(attributor.get());
  }

  // Periodic time-series sampling: the registry binds pointers into this ftl's stats
  // structs, so it is built before the run and only sampled while this ftl is alive
  // (samples copy the values out, so writing the CSV after a reopen is safe).
  const uint64_t metrics_interval_ns = (uint64_t)flags.GetInt("metrics_interval_ns", 0);
  const std::string metrics_series_out = flags.GetString("metrics_series_out", "");
  MetricsRegistry live_registry;
  std::unique_ptr<MetricsSampler> sampler;
  if (metrics_interval_ns > 0) {
    RegisterFtlStats(&live_registry, ftl->stats());
    RegisterNandStats(&live_registry, ftl->device().stats());
    RegisterNandBusGauges(&live_registry, ftl->device());
    RegisterValidityStats(&live_registry, ftl->validity().stats());
    RegisterLogStats(&live_registry, ftl->log_manager().stats());
    sampler = std::make_unique<MetricsSampler>(&live_registry, metrics_interval_ns);
  }

  // Snapshot cadence + rotation via the runner's per-op hook. --snapshots=N is
  // shorthand for "spread N snapshots evenly over the run".
  uint64_t snapshot_every = (uint64_t)flags.GetInt("snapshot_every", 0);
  const uint64_t snapshot_count = (uint64_t)flags.GetInt("snapshots", 0);
  if (snapshot_count > 0) {
    if (snapshot_every != 0) {
      std::fprintf(stderr, "pass either --snapshots or --snapshot_every, not both\n");
      return 2;
    }
    snapshot_every = std::max<uint64_t>(1, ops / snapshot_count);
  }
  const size_t keep = (size_t)flags.GetInt("keep_snapshots", 4);
  std::vector<uint32_t> live_snaps;
  RunOptions options;
  options.queue_depth = (uint64_t)flags.GetInt("qd", 1);
  options.batch = (uint64_t)flags.GetInt("batch", 1);
  options.queues = (uint32_t)flags.GetInt("queues", 0);
  options.iodepth = (uint32_t)flags.GetInt("iodepth", 1);
  options.record_timeline = flags.GetBool("timeline", false);
  options.sampler = sampler.get();
  if (snapshot_every > 0 && config.snapshots_enabled) {
    options.after_op = [&](uint64_t index, uint64_t now_ns) {
      if ((index + 1) % snapshot_every != 0) {
        return;
      }
      while (live_snaps.size() >= keep) {
        auto deleted = ftl->DeleteSnapshot(live_snaps.front(), now_ns);
        if (!deleted.ok()) {
          if (!faults_armed) {
            IOSNAP_CHECK_OK(deleted.status());
          }
          return;  // Injected fault; leave the rotation as-is.
        }
        live_snaps.erase(live_snaps.begin());
      }
      auto snap = ftl->CreateSnapshot("auto-" + std::to_string(index + 1), now_ns);
      if (!snap.ok()) {
        if (!faults_armed) {
          IOSNAP_CHECK_OK(snap.status());
        }
        return;
      }
      live_snaps.push_back(snap->snap_id);
    };
  }

  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);
  auto result = runner.Run(workload.get(), ops, options);
  if (!result.ok()) {
    if (!faults_armed) {
      std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    // With injection armed, a mid-run abort is an expected outcome: report what
    // happened and continue to recovery / stats so the degraded path is exercised.
    std::printf("workload aborted by injected fault: %s\n",
                result.status().ToString().c_str());
  }

  if (result.ok()) {
    PrintStats(*ftl, *result);
  } else {
    // The per-run latency summary needs a completed RunResult, but the fault
    // counters are most interesting on exactly the runs that aborted.
    PrintFaultStats(*ftl);
  }
  if (!live_snaps.empty()) {
    std::printf("--- live snapshots ---------------------------------------\n");
    for (uint32_t snap : live_snaps) {
      auto space = ftl->SnapshotSpaceReport(snap);
      auto info = ftl->snapshot_tree().Get(snap);
      IOSNAP_CHECK(space.ok() && info.ok());
      std::printf("  %u (\"%s\"): %llu referenced, %llu exclusive pages\n", snap,
                  info->name.c_str(), (unsigned long long)space->referenced_pages,
                  (unsigned long long)space->exclusive_pages);
    }
  }

  if (flags.GetBool("activate_last", false) && !live_snaps.empty()) {
    const uint64_t start = clock.NowNs();
    uint64_t finish = start;
    auto view = ftl->ActivateBlocking(live_snaps.back(), start, false, &finish);
    if (!view.ok()) {
      if (!faults_armed) {
        IOSNAP_CHECK_OK(view.status());
      }
      std::printf("activation failed under injected faults: %s\n",
                  view.status().ToString().c_str());
    } else {
      clock.AdvanceTo(finish);
      std::printf("activated snapshot %u in %.2f ms (%llu map entries)\n",
                  live_snaps.back(), NsToMs(finish - start),
                  (unsigned long long)*ftl->ViewMapEntryCount(*view));
      IOSNAP_CHECK_OK(ftl->Deactivate(*view, clock.NowNs()));
    }
  }

  if (flags.GetBool("timeline", false) && result.ok()) {
    std::printf("\nlatency timeline (100 ms buckets):\n%s",
                result->timeline.ToCsv(MsToNs(100), "t_sec", "lat_us").c_str());
  }

  if (flags.GetBool("crash_and_recover", false)) {
    std::printf("\nsimulating crash + reopen...\n");
    std::unique_ptr<NandDevice> media = ftl->ReleaseDevice();
    // A power cycle brings the device back online; media damage (bad blocks,
    // corrupted pages) persists but the injection schedule is disarmed.
    media->ClearFaults();
    const uint64_t start = clock.NowNs();
    uint64_t finish = start;
    auto reopened = Ftl::Open(config, std::move(media), start, &finish, trace.get());
    IOSNAP_CHECK(reopened.ok());
    ftl = std::move(reopened).value();
    std::printf("recovered in %.2f ms: %llu mapped blocks, %zu live snapshots\n",
                NsToMs(finish - start),
                (unsigned long long)*ftl->ViewMapEntryCount(kPrimaryView),
                ftl->snapshot_tree().LiveSnapshotIds().size());
  } else if (flags.GetBool("checkpoint", false)) {
    std::printf("\ncheckpoint + clean reopen...\n");
    Status checkpointed = ftl->CheckpointAndClose(clock.NowNs());
    if (!checkpointed.ok()) {
      if (!faults_armed) {
        IOSNAP_CHECK_OK(checkpointed);
      }
      // Fall back to crash-style recovery: the reopen below takes the full-scan path.
      std::printf("checkpoint failed under injected faults: %s\n",
                  checkpointed.ToString().c_str());
    }
    std::unique_ptr<NandDevice> media = ftl->ReleaseDevice();
    media->ClearFaults();
    const uint64_t start = clock.NowNs();
    uint64_t finish = start;
    auto reopened = Ftl::Open(config, std::move(media), start, &finish, trace.get());
    IOSNAP_CHECK(reopened.ok());
    ftl = std::move(reopened).value();
    std::printf("reopened from checkpoint in %.2f ms\n", NsToMs(finish - start));
  }

  if (trace != nullptr) {
    if (WriteTraceFile(*trace, trace_out)) {
      std::printf("\ntrace: %llu events to %s (%llu recorded, %llu dropped)\n",
                  (unsigned long long)trace->size(), trace_out.c_str(),
                  (unsigned long long)trace->total_recorded(),
                  (unsigned long long)trace->dropped());
    } else {
      std::fprintf(stderr, "failed to write --trace_out=%s\n", trace_out.c_str());
      return 1;
    }
  }
  if (attributor != nullptr) {
    if (attributor->WriteCsvFile(spans_out)) {
      std::printf("spans: %zu ops to %s (%llu dropped)\n", attributor->size(),
                  spans_out.c_str(), (unsigned long long)attributor->dropped());
    } else {
      std::fprintf(stderr, "failed to write --spans_out=%s\n", spans_out.c_str());
      return 1;
    }
  }
  if (sampler != nullptr && !metrics_series_out.empty()) {
    if (sampler->WriteCsvFile(metrics_series_out)) {
      std::printf("metrics series: %zu samples to %s\n", sampler->samples(),
                  metrics_series_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write --metrics_series_out=%s\n",
                   metrics_series_out.c_str());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    MetricsRegistry registry;
    RegisterFtlStats(&registry, ftl->stats());
    RegisterNandStats(&registry, ftl->device().stats());
    RegisterNandBusGauges(&registry, ftl->device());
    RegisterValidityStats(&registry, ftl->validity().stats());
    RegisterLogStats(&registry, ftl->log_manager().stats());
    RegisterIoQueueStats(&registry, GlobalIoQueueStats());
    registry.RegisterHistogram("io_queue.completion_latency",
                               &GlobalQueueCompletionHistogram());
    if (result.ok()) {
      registry.RegisterHistogram("run.latency", &result->latency);
    }
    if (attributor != nullptr) {
      attributor->RegisterMetrics(&registry);
    }
    if (registry.WriteFile(metrics_out)) {
      std::printf("metrics: %zu metrics to %s\n", registry.MetricCount(),
                  metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write --metrics_out=%s\n", metrics_out.c_str());
      return 1;
    }
  }
  if (!image_out.empty()) {
    // At-rest media snapshot for iosnap_fsck: taken after any crash/checkpoint
    // reopen above, so the image reflects exactly what a restarted host would see.
    Status saved = SaveNandImage(ftl->device(), image_out);
    if (!saved.ok()) {
      std::fprintf(stderr, "failed to write --image_out=%s: %s\n", image_out.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("image: media saved to %s\n", image_out.c_str());
  }
  return 0;
}
