file(REMOVE_RECURSE
  "CMakeFiles/iosnap_baseline.dir/cow_store.cc.o"
  "CMakeFiles/iosnap_baseline.dir/cow_store.cc.o.d"
  "libiosnap_baseline.a"
  "libiosnap_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosnap_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
