file(REMOVE_RECURSE
  "libiosnap_baseline.a"
)
