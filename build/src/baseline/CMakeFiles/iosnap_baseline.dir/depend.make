# Empty dependencies file for iosnap_baseline.
# This may be replaced when dependencies are built.
