# Empty dependencies file for iosnap_common.
# This may be replaced when dependencies are built.
