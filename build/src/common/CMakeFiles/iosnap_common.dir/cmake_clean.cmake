file(REMOVE_RECURSE
  "CMakeFiles/iosnap_common.dir/bitmap.cc.o"
  "CMakeFiles/iosnap_common.dir/bitmap.cc.o.d"
  "CMakeFiles/iosnap_common.dir/flags.cc.o"
  "CMakeFiles/iosnap_common.dir/flags.cc.o.d"
  "CMakeFiles/iosnap_common.dir/logging.cc.o"
  "CMakeFiles/iosnap_common.dir/logging.cc.o.d"
  "CMakeFiles/iosnap_common.dir/rng.cc.o"
  "CMakeFiles/iosnap_common.dir/rng.cc.o.d"
  "CMakeFiles/iosnap_common.dir/stats.cc.o"
  "CMakeFiles/iosnap_common.dir/stats.cc.o.d"
  "CMakeFiles/iosnap_common.dir/status.cc.o"
  "CMakeFiles/iosnap_common.dir/status.cc.o.d"
  "libiosnap_common.a"
  "libiosnap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosnap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
