file(REMOVE_RECURSE
  "libiosnap_common.a"
)
