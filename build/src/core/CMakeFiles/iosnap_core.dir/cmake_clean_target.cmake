file(REMOVE_RECURSE
  "libiosnap_core.a"
)
