file(REMOVE_RECURSE
  "CMakeFiles/iosnap_core.dir/activation.cc.o"
  "CMakeFiles/iosnap_core.dir/activation.cc.o.d"
  "CMakeFiles/iosnap_core.dir/checkpoint.cc.o"
  "CMakeFiles/iosnap_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/iosnap_core.dir/ftl.cc.o"
  "CMakeFiles/iosnap_core.dir/ftl.cc.o.d"
  "CMakeFiles/iosnap_core.dir/recovery.cc.o"
  "CMakeFiles/iosnap_core.dir/recovery.cc.o.d"
  "CMakeFiles/iosnap_core.dir/segment_cleaner.cc.o"
  "CMakeFiles/iosnap_core.dir/segment_cleaner.cc.o.d"
  "CMakeFiles/iosnap_core.dir/snapshot_tree.cc.o"
  "CMakeFiles/iosnap_core.dir/snapshot_tree.cc.o.d"
  "CMakeFiles/iosnap_core.dir/trim_summary.cc.o"
  "CMakeFiles/iosnap_core.dir/trim_summary.cc.o.d"
  "libiosnap_core.a"
  "libiosnap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosnap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
