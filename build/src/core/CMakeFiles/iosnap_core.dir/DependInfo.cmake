
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activation.cc" "src/core/CMakeFiles/iosnap_core.dir/activation.cc.o" "gcc" "src/core/CMakeFiles/iosnap_core.dir/activation.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/iosnap_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/iosnap_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/ftl.cc" "src/core/CMakeFiles/iosnap_core.dir/ftl.cc.o" "gcc" "src/core/CMakeFiles/iosnap_core.dir/ftl.cc.o.d"
  "/root/repo/src/core/recovery.cc" "src/core/CMakeFiles/iosnap_core.dir/recovery.cc.o" "gcc" "src/core/CMakeFiles/iosnap_core.dir/recovery.cc.o.d"
  "/root/repo/src/core/segment_cleaner.cc" "src/core/CMakeFiles/iosnap_core.dir/segment_cleaner.cc.o" "gcc" "src/core/CMakeFiles/iosnap_core.dir/segment_cleaner.cc.o.d"
  "/root/repo/src/core/snapshot_tree.cc" "src/core/CMakeFiles/iosnap_core.dir/snapshot_tree.cc.o" "gcc" "src/core/CMakeFiles/iosnap_core.dir/snapshot_tree.cc.o.d"
  "/root/repo/src/core/trim_summary.cc" "src/core/CMakeFiles/iosnap_core.dir/trim_summary.cc.o" "gcc" "src/core/CMakeFiles/iosnap_core.dir/trim_summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iosnap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/iosnap_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/iosnap_ftl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
