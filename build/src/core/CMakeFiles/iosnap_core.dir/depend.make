# Empty dependencies file for iosnap_core.
# This may be replaced when dependencies are built.
