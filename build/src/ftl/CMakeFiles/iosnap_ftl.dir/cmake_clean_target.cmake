file(REMOVE_RECURSE
  "libiosnap_ftl.a"
)
