file(REMOVE_RECURSE
  "CMakeFiles/iosnap_ftl.dir/btree.cc.o"
  "CMakeFiles/iosnap_ftl.dir/btree.cc.o.d"
  "CMakeFiles/iosnap_ftl.dir/log_manager.cc.o"
  "CMakeFiles/iosnap_ftl.dir/log_manager.cc.o.d"
  "CMakeFiles/iosnap_ftl.dir/validity_map.cc.o"
  "CMakeFiles/iosnap_ftl.dir/validity_map.cc.o.d"
  "libiosnap_ftl.a"
  "libiosnap_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosnap_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
