# Empty dependencies file for iosnap_ftl.
# This may be replaced when dependencies are built.
