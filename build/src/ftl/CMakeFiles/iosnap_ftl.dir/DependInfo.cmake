
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/btree.cc" "src/ftl/CMakeFiles/iosnap_ftl.dir/btree.cc.o" "gcc" "src/ftl/CMakeFiles/iosnap_ftl.dir/btree.cc.o.d"
  "/root/repo/src/ftl/log_manager.cc" "src/ftl/CMakeFiles/iosnap_ftl.dir/log_manager.cc.o" "gcc" "src/ftl/CMakeFiles/iosnap_ftl.dir/log_manager.cc.o.d"
  "/root/repo/src/ftl/validity_map.cc" "src/ftl/CMakeFiles/iosnap_ftl.dir/validity_map.cc.o" "gcc" "src/ftl/CMakeFiles/iosnap_ftl.dir/validity_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iosnap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/iosnap_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
