# Empty compiler generated dependencies file for iosnap_archive.
# This may be replaced when dependencies are built.
