file(REMOVE_RECURSE
  "libiosnap_archive.a"
)
