file(REMOVE_RECURSE
  "CMakeFiles/iosnap_archive.dir/archive_store.cc.o"
  "CMakeFiles/iosnap_archive.dir/archive_store.cc.o.d"
  "CMakeFiles/iosnap_archive.dir/snapshot_archiver.cc.o"
  "CMakeFiles/iosnap_archive.dir/snapshot_archiver.cc.o.d"
  "libiosnap_archive.a"
  "libiosnap_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosnap_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
