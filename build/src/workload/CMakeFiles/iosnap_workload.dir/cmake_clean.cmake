file(REMOVE_RECURSE
  "CMakeFiles/iosnap_workload.dir/runner.cc.o"
  "CMakeFiles/iosnap_workload.dir/runner.cc.o.d"
  "CMakeFiles/iosnap_workload.dir/workload.cc.o"
  "CMakeFiles/iosnap_workload.dir/workload.cc.o.d"
  "libiosnap_workload.a"
  "libiosnap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosnap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
