# Empty dependencies file for iosnap_workload.
# This may be replaced when dependencies are built.
