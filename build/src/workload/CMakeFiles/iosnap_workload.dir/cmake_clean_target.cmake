file(REMOVE_RECURSE
  "libiosnap_workload.a"
)
