file(REMOVE_RECURSE
  "libiosnap_nand.a"
)
