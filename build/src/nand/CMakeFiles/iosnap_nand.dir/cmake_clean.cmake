file(REMOVE_RECURSE
  "CMakeFiles/iosnap_nand.dir/nand_device.cc.o"
  "CMakeFiles/iosnap_nand.dir/nand_device.cc.o.d"
  "libiosnap_nand.a"
  "libiosnap_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosnap_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
