# Empty compiler generated dependencies file for iosnap_nand.
# This may be replaced when dependencies are built.
