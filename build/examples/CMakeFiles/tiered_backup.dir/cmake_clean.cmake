file(REMOVE_RECURSE
  "CMakeFiles/tiered_backup.dir/tiered_backup.cpp.o"
  "CMakeFiles/tiered_backup.dir/tiered_backup.cpp.o.d"
  "tiered_backup"
  "tiered_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
