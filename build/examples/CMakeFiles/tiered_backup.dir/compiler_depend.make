# Empty compiler generated dependencies file for tiered_backup.
# This may be replaced when dependencies are built.
