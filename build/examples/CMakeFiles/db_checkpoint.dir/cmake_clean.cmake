file(REMOVE_RECURSE
  "CMakeFiles/db_checkpoint.dir/db_checkpoint.cpp.o"
  "CMakeFiles/db_checkpoint.dir/db_checkpoint.cpp.o.d"
  "db_checkpoint"
  "db_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
