# Empty compiler generated dependencies file for db_checkpoint.
# This may be replaced when dependencies are built.
