file(REMOVE_RECURSE
  "CMakeFiles/volume_fork.dir/volume_fork.cpp.o"
  "CMakeFiles/volume_fork.dir/volume_fork.cpp.o.d"
  "volume_fork"
  "volume_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
