# Empty compiler generated dependencies file for volume_fork.
# This may be replaced when dependencies are built.
