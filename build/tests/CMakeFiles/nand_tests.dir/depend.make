# Empty dependencies file for nand_tests.
# This may be replaced when dependencies are built.
