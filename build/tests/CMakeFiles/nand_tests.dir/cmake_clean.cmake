file(REMOVE_RECURSE
  "CMakeFiles/nand_tests.dir/nand/nand_device_test.cc.o"
  "CMakeFiles/nand_tests.dir/nand/nand_device_test.cc.o.d"
  "nand_tests"
  "nand_tests.pdb"
  "nand_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
