file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/activation_test.cc.o"
  "CMakeFiles/core_tests.dir/core/activation_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/cleaner_test.cc.o"
  "CMakeFiles/core_tests.dir/core/cleaner_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/ftl_basic_test.cc.o"
  "CMakeFiles/core_tests.dir/core/ftl_basic_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/geometry_test.cc.o"
  "CMakeFiles/core_tests.dir/core/geometry_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/recovery_test.cc.o"
  "CMakeFiles/core_tests.dir/core/recovery_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/rollback_test.cc.o"
  "CMakeFiles/core_tests.dir/core/rollback_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/snapshot_test.cc.o"
  "CMakeFiles/core_tests.dir/core/snapshot_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/snapshot_tree_test.cc.o"
  "CMakeFiles/core_tests.dir/core/snapshot_tree_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/trim_summary_test.cc.o"
  "CMakeFiles/core_tests.dir/core/trim_summary_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/wear_leveling_test.cc.o"
  "CMakeFiles/core_tests.dir/core/wear_leveling_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
