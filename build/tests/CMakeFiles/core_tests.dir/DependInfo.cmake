
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/activation_test.cc" "tests/CMakeFiles/core_tests.dir/core/activation_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/activation_test.cc.o.d"
  "/root/repo/tests/core/cleaner_test.cc" "tests/CMakeFiles/core_tests.dir/core/cleaner_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cleaner_test.cc.o.d"
  "/root/repo/tests/core/ftl_basic_test.cc" "tests/CMakeFiles/core_tests.dir/core/ftl_basic_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ftl_basic_test.cc.o.d"
  "/root/repo/tests/core/geometry_test.cc" "tests/CMakeFiles/core_tests.dir/core/geometry_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/geometry_test.cc.o.d"
  "/root/repo/tests/core/recovery_test.cc" "tests/CMakeFiles/core_tests.dir/core/recovery_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/recovery_test.cc.o.d"
  "/root/repo/tests/core/rollback_test.cc" "tests/CMakeFiles/core_tests.dir/core/rollback_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rollback_test.cc.o.d"
  "/root/repo/tests/core/snapshot_test.cc" "tests/CMakeFiles/core_tests.dir/core/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/snapshot_test.cc.o.d"
  "/root/repo/tests/core/snapshot_tree_test.cc" "tests/CMakeFiles/core_tests.dir/core/snapshot_tree_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/snapshot_tree_test.cc.o.d"
  "/root/repo/tests/core/trim_summary_test.cc" "tests/CMakeFiles/core_tests.dir/core/trim_summary_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/trim_summary_test.cc.o.d"
  "/root/repo/tests/core/wear_leveling_test.cc" "tests/CMakeFiles/core_tests.dir/core/wear_leveling_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/wear_leveling_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/iosnap_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/iosnap_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/iosnap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iosnap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/iosnap_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/iosnap_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iosnap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
