file(REMOVE_RECURSE
  "CMakeFiles/ftl_tests.dir/ftl/btree_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/btree_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/log_manager_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/log_manager_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/rate_limiter_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/rate_limiter_test.cc.o.d"
  "CMakeFiles/ftl_tests.dir/ftl/validity_map_test.cc.o"
  "CMakeFiles/ftl_tests.dir/ftl/validity_map_test.cc.o.d"
  "ftl_tests"
  "ftl_tests.pdb"
  "ftl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
