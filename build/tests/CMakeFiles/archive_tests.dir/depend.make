# Empty dependencies file for archive_tests.
# This may be replaced when dependencies are built.
