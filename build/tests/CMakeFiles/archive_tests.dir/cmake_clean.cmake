file(REMOVE_RECURSE
  "CMakeFiles/archive_tests.dir/archive/archive_test.cc.o"
  "CMakeFiles/archive_tests.dir/archive/archive_test.cc.o.d"
  "archive_tests"
  "archive_tests.pdb"
  "archive_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
