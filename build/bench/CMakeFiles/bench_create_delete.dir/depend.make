# Empty dependencies file for bench_create_delete.
# This may be replaced when dependencies are built.
