file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_activation_ratelimit.dir/bench_fig9_activation_ratelimit.cc.o"
  "CMakeFiles/bench_fig9_activation_ratelimit.dir/bench_fig9_activation_ratelimit.cc.o.d"
  "bench_fig9_activation_ratelimit"
  "bench_fig9_activation_ratelimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_activation_ratelimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
