# Empty compiler generated dependencies file for bench_fig9_activation_ratelimit.
# This may be replaced when dependencies are built.
