# Empty dependencies file for bench_fig11_create_latency_vs_btrfs.
# This may be replaced when dependencies are built.
