file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_create_latency_vs_btrfs.dir/bench_fig11_create_latency_vs_btrfs.cc.o"
  "CMakeFiles/bench_fig11_create_latency_vs_btrfs.dir/bench_fig11_create_latency_vs_btrfs.cc.o.d"
  "bench_fig11_create_latency_vs_btrfs"
  "bench_fig11_create_latency_vs_btrfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_create_latency_vs_btrfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
