file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cleaning.dir/bench_table4_cleaning.cc.o"
  "CMakeFiles/bench_table4_cleaning.dir/bench_table4_cleaning.cc.o.d"
  "bench_table4_cleaning"
  "bench_table4_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
