# Empty dependencies file for bench_host_structures.
# This may be replaced when dependencies are built.
