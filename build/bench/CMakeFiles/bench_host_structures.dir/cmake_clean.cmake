file(REMOVE_RECURSE
  "CMakeFiles/bench_host_structures.dir/bench_host_structures.cc.o"
  "CMakeFiles/bench_host_structures.dir/bench_host_structures.cc.o.d"
  "bench_host_structures"
  "bench_host_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
