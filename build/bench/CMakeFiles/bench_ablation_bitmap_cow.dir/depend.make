# Empty dependencies file for bench_ablation_bitmap_cow.
# This may be replaced when dependencies are built.
