file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bitmap_cow.dir/bench_ablation_bitmap_cow.cc.o"
  "CMakeFiles/bench_ablation_bitmap_cow.dir/bench_ablation_bitmap_cow.cc.o.d"
  "bench_ablation_bitmap_cow"
  "bench_ablation_bitmap_cow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bitmap_cow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
