# Empty compiler generated dependencies file for bench_archive_destage.
# This may be replaced when dependencies are built.
