file(REMOVE_RECURSE
  "CMakeFiles/bench_archive_destage.dir/bench_archive_destage.cc.o"
  "CMakeFiles/bench_archive_destage.dir/bench_archive_destage.cc.o.d"
  "bench_archive_destage"
  "bench_archive_destage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_archive_destage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
