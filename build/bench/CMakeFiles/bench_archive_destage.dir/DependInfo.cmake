
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_archive_destage.cc" "bench/CMakeFiles/bench_archive_destage.dir/bench_archive_destage.cc.o" "gcc" "bench/CMakeFiles/bench_archive_destage.dir/bench_archive_destage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/archive/CMakeFiles/iosnap_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/iosnap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iosnap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/iosnap_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/iosnap_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iosnap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
