
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_regular_ops.cc" "bench/CMakeFiles/bench_table2_regular_ops.dir/bench_table2_regular_ops.cc.o" "gcc" "bench/CMakeFiles/bench_table2_regular_ops.dir/bench_table2_regular_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/iosnap_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/iosnap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iosnap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/iosnap_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/iosnap_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iosnap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
