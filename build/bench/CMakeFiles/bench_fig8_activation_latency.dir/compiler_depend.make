# Empty compiler generated dependencies file for bench_fig8_activation_latency.
# This may be replaced when dependencies are built.
