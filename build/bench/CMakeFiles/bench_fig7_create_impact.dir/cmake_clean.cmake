file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_create_impact.dir/bench_fig7_create_impact.cc.o"
  "CMakeFiles/bench_fig7_create_impact.dir/bench_fig7_create_impact.cc.o.d"
  "bench_fig7_create_impact"
  "bench_fig7_create_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_create_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
