# Empty dependencies file for bench_fig7_create_impact.
# This may be replaced when dependencies are built.
