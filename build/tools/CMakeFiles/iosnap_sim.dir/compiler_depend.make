# Empty compiler generated dependencies file for iosnap_sim.
# This may be replaced when dependencies are built.
