file(REMOVE_RECURSE
  "CMakeFiles/iosnap_sim.dir/iosnap_sim.cc.o"
  "CMakeFiles/iosnap_sim.dir/iosnap_sim.cc.o.d"
  "iosnap_sim"
  "iosnap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosnap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
