// Closed-loop workload runner on the virtual clock.
//
// The runner is the "foreground application" of the paper's experiments: it issues one
// operation after another (optionally at queue depth > 1), gives the FTL's background
// machinery a chance to run between operations, advances the shared SimClock to each
// completion, and records per-op latency timelines — the raw material of Figures 7 and
// 9-12.
//
// It drives any BlockTarget: the ioSnap FTL (primary view or an activated view) and the
// Btrfs-like baseline store both implement the interface, so comparison benchmarks run
// the identical loop.

#ifndef SRC_WORKLOAD_RUNNER_H_
#define SRC_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/sim_clock.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/core/ftl.h"
#include "src/core/io_queue.h"
#include "src/obs/metrics_sampler.h"
#include "src/workload/workload.h"

namespace iosnap {

// Device abstraction the runner drives.
class BlockTarget {
 public:
  virtual ~BlockTarget() = default;
  virtual StatusOr<IoResult> DoOp(const IoOp& op, uint64_t issue_ns) = 0;
  // Vectored submission: all ops issued at `issue_ns`, one result appended per op in
  // submission order. The default loops over DoOp; targets with a native vectored path
  // (FtlTarget) override it.
  virtual Status DoOpV(std::span<const IoOp> ops, uint64_t issue_ns,
                       std::vector<IoResult>* results);
  // Advance background work to `now_ns` (default: nothing).
  virtual void Pump(uint64_t now_ns) {}
  virtual uint64_t LbaCount() const = 0;
  // Earliest time all queued device work completes (throughput accounting).
  virtual uint64_t DrainNs() const = 0;
  // The Ftl to drive through an IoQueueLayer for multi-queue runs, or nullptr when
  // the target has no queued path (baseline store, snapshot views).
  virtual Ftl* QueueFtl() { return nullptr; }
};

// Adapts an Ftl view (default: primary) to BlockTarget.
class FtlTarget : public BlockTarget {
 public:
  explicit FtlTarget(Ftl* ftl, uint32_t view_id = kPrimaryView)
      : ftl_(ftl), view_id_(view_id) {}

  StatusOr<IoResult> DoOp(const IoOp& op, uint64_t issue_ns) override;
  // Splits the ops into maximal same-kind runs and submits each through the FTL's
  // vectored entry points (WriteV/ReadV/TrimV).
  Status DoOpV(std::span<const IoOp> ops, uint64_t issue_ns,
               std::vector<IoResult>* results) override;
  void Pump(uint64_t now_ns) override { ftl_->PumpBackground(now_ns); }
  uint64_t LbaCount() const override { return ftl_->LbaCount(); }
  uint64_t DrainNs() const override { return ftl_->device().DrainTimeNs(); }
  // Queued submission only drives the primary view.
  Ftl* QueueFtl() override { return view_id_ == kPrimaryView ? ftl_ : nullptr; }

 private:
  Ftl* ftl_;
  uint32_t view_id_;
};

struct RunOptions {
  uint64_t queue_depth = 1;   // Ops issued with a shared issue time per batch.
  // Ops per vectored submission. 1 (the default) drives the scalar DoOp path — the
  // pre-batching loop, bit for bit. Larger values group `batch` ops into one DoOpV
  // call issued at a shared time (queue_depth is subsumed: the batch *is* the queue).
  uint64_t batch = 1;
  // Multi-queue submission: queues > 0 drives the target's Ftl through an
  // IoQueueLayer with that many queue pairs, `iodepth` in-flight submissions per
  // queue, and `batch` ops per submission. queues=1, iodepth=1 reproduces the batch
  // mode bit for bit; deeper settings pipeline submissions so ops admitted at
  // different times share one ordered commit.
  uint32_t queues = 0;
  uint32_t iodepth = 1;
  bool record_timeline = false;
  // Invoked after each completed op with (op index, virtual now). Benchmarks use this to
  // create snapshots on a cadence, start activations, etc.
  std::function<void(uint64_t index, uint64_t now_ns)> after_op;
  // Optional periodic metric sampler, offered each op's completion time (virtual
  // clock); nullptr (the default) disables time-series sampling.
  MetricsSampler* sampler = nullptr;
};

struct RunResult {
  uint64_t ops = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;           // Clock when the last op completed.
  uint64_t drain_end_ns = 0;     // Device fully idle (>= end_ns).
  LatencyHistogram latency;
  Timeline timeline;             // (issue time, latency in usec) when recorded.
  uint64_t bytes = 0;
  // Multi-queue runs only: the layer's counters and per-queue breakdown.
  IoQueueStats queue_stats;
  std::vector<IoQueueLayer::PerQueueStats> per_queue;

  uint64_t ElapsedNs() const { return drain_end_ns > start_ns ? drain_end_ns - start_ns : 0; }
};

class Runner {
 public:
  Runner(BlockTarget* target, SimClock* clock, uint64_t page_bytes)
      : target_(target), clock_(clock), page_bytes_(page_bytes) {}

  // Runs `ops` operations from `workload` (or fewer if it is exhausted).
  StatusOr<RunResult> Run(Workload* workload, uint64_t ops, const RunOptions& options);

 private:
  StatusOr<RunResult> RunQueued(Workload* workload, uint64_t ops,
                                const RunOptions& options);
  BlockTarget* target_;
  SimClock* clock_;
  uint64_t page_bytes_;
};

}  // namespace iosnap

#endif  // SRC_WORKLOAD_RUNNER_H_
