// Workload generators: streams of block-level operations used by benchmarks, examples and
// integration tests. Generators are deterministic given an Rng seed.

#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/common/rng.h"

namespace iosnap {

enum class IoKind : uint8_t { kRead, kWrite, kTrim };

struct IoOp {
  IoKind kind = IoKind::kWrite;
  uint64_t lba = 0;
  uint64_t count = 1;  // Only used by kTrim.
};

// A (possibly infinite) stream of operations.
class Workload {
 public:
  virtual ~Workload() = default;
  // Next operation, or nullopt when the workload is exhausted.
  virtual std::optional<IoOp> Next() = 0;
};

// lba, lba+1, ..., lba+count-1 (wrapping if wrap=true), as reads or writes.
class SequentialWorkload : public Workload {
 public:
  SequentialWorkload(IoKind kind, uint64_t start_lba, uint64_t count, bool wrap = false);
  std::optional<IoOp> Next() override;

 private:
  IoKind kind_;
  uint64_t start_lba_;
  uint64_t count_;
  bool wrap_;
  uint64_t issued_ = 0;
};

// Uniformly random LBAs in [0, lba_space).
class RandomWorkload : public Workload {
 public:
  RandomWorkload(IoKind kind, uint64_t lba_space, uint64_t seed);
  std::optional<IoOp> Next() override;

 private:
  IoKind kind_;
  uint64_t lba_space_;
  Rng rng_;
};

// Random mix of reads and writes (read_fraction in [0,1]) over [0, lba_space).
class MixedWorkload : public Workload {
 public:
  MixedWorkload(double read_fraction, uint64_t lba_space, uint64_t seed);
  std::optional<IoOp> Next() override;

 private:
  double read_fraction_;
  uint64_t lba_space_;
  Rng rng_;
};

// Zipfian-skewed writes/reads over [0, lba_space): a hot subset of blocks dominates, the
// classic "hot/cold" pattern that segment-cleaning policies care about.
class ZipfWorkload : public Workload {
 public:
  ZipfWorkload(IoKind kind, uint64_t lba_space, double theta, uint64_t seed);
  std::optional<IoOp> Next() override;

 private:
  uint64_t Sample();

  IoKind kind_;
  uint64_t lba_space_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Rng rng_;
};

}  // namespace iosnap

#endif  // SRC_WORKLOAD_WORKLOAD_H_
