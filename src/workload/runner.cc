#include "src/workload/runner.h"

#include <algorithm>
#include <vector>

#include "src/common/units.h"

namespace iosnap {

StatusOr<IoResult> FtlTarget::DoOp(const IoOp& op, uint64_t issue_ns) {
  switch (op.kind) {
    case IoKind::kRead:
      if (view_id_ == kPrimaryView) {
        return ftl_->Read(op.lba, issue_ns, nullptr);
      }
      return ftl_->ReadView(view_id_, op.lba, issue_ns, nullptr);
    case IoKind::kWrite:
      if (view_id_ == kPrimaryView) {
        return ftl_->Write(op.lba, {}, issue_ns);
      }
      return ftl_->WriteView(view_id_, op.lba, {}, issue_ns);
    case IoKind::kTrim:
      return ftl_->Trim(op.lba, op.count, issue_ns);
  }
  return InvalidArgument("unknown op kind");
}

StatusOr<RunResult> Runner::Run(Workload* workload, uint64_t ops, const RunOptions& options) {
  RunResult result;
  result.start_ns = clock_->NowNs();

  const uint64_t queue_depth = std::max<uint64_t>(1, options.queue_depth);
  uint64_t issued = 0;
  while (issued < ops) {
    const uint64_t now = clock_->NowNs();
    target_->Pump(now);

    // Issue a batch of queue_depth ops at the same instant; they queue per channel in the
    // device, modeling a multi-threaded submitter. The clock advances to the slowest
    // completion.
    const uint64_t batch = std::min(queue_depth, ops - issued);
    uint64_t batch_end = now;
    for (uint64_t i = 0; i < batch; ++i) {
      const std::optional<IoOp> op = workload->Next();
      if (!op.has_value()) {
        issued = ops;  // Workload exhausted.
        break;
      }
      ASSIGN_OR_RETURN(IoResult io, target_->DoOp(*op, now));
      const uint64_t latency = io.LatencyNs();
      result.latency.Add(latency);
      if (options.record_timeline) {
        result.timeline.Add(now, NsToUs(latency));
      }
      result.bytes += page_bytes_;
      batch_end = std::max(batch_end, io.CompletionNs());
      ++result.ops;
      ++issued;
      if (options.after_op) {
        options.after_op(result.ops - 1, batch_end);
      }
    }
    clock_->AdvanceTo(batch_end);
  }

  result.end_ns = clock_->NowNs();
  result.drain_end_ns = std::max(result.end_ns, target_->DrainNs());
  return result;
}

}  // namespace iosnap
