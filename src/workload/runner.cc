#include "src/workload/runner.h"

#include <algorithm>
#include <vector>

#include "src/common/units.h"

namespace iosnap {

Status BlockTarget::DoOpV(std::span<const IoOp> ops, uint64_t issue_ns,
                          std::vector<IoResult>* results) {
  for (const IoOp& op : ops) {
    ASSIGN_OR_RETURN(IoResult io, DoOp(op, issue_ns));
    results->push_back(io);
  }
  return OkStatus();
}

StatusOr<IoResult> FtlTarget::DoOp(const IoOp& op, uint64_t issue_ns) {
  switch (op.kind) {
    case IoKind::kRead:
      if (view_id_ == kPrimaryView) {
        return ftl_->Read(op.lba, issue_ns, nullptr);
      }
      return ftl_->ReadView(view_id_, op.lba, issue_ns, nullptr);
    case IoKind::kWrite:
      if (view_id_ == kPrimaryView) {
        return ftl_->Write(op.lba, {}, issue_ns);
      }
      return ftl_->WriteView(view_id_, op.lba, {}, issue_ns);
    case IoKind::kTrim:
      return ftl_->Trim(op.lba, op.count, issue_ns);
  }
  return InvalidArgument("unknown op kind");
}

Status FtlTarget::DoOpV(std::span<const IoOp> ops, uint64_t issue_ns,
                        std::vector<IoResult>* results) {
  std::vector<uint64_t> lbas;
  std::vector<WriteRequest> writes;
  std::vector<TrimRequest> trims;
  size_t i = 0;
  while (i < ops.size()) {
    const IoKind kind = ops[i].kind;
    size_t j = i;
    while (j < ops.size() && ops[j].kind == kind) {
      ++j;
    }
    switch (kind) {
      case IoKind::kRead: {
        lbas.clear();
        for (size_t k = i; k < j; ++k) {
          lbas.push_back(ops[k].lba);
        }
        ASSIGN_OR_RETURN(std::vector<IoResult> ios,
                         view_id_ == kPrimaryView
                             ? ftl_->ReadV(lbas, issue_ns, nullptr)
                             : ftl_->ReadViewV(view_id_, lbas, issue_ns, nullptr));
        results->insert(results->end(), ios.begin(), ios.end());
        break;
      }
      case IoKind::kWrite: {
        writes.clear();
        for (size_t k = i; k < j; ++k) {
          writes.push_back({ops[k].lba, {}});
        }
        ASSIGN_OR_RETURN(std::vector<IoResult> ios,
                         view_id_ == kPrimaryView
                             ? ftl_->WriteV(writes, issue_ns)
                             : ftl_->WriteViewV(view_id_, writes, issue_ns));
        results->insert(results->end(), ios.begin(), ios.end());
        break;
      }
      case IoKind::kTrim: {
        trims.clear();
        for (size_t k = i; k < j; ++k) {
          trims.push_back({ops[k].lba, ops[k].count});
        }
        ASSIGN_OR_RETURN(std::vector<IoResult> ios, ftl_->TrimV(trims, issue_ns));
        results->insert(results->end(), ios.begin(), ios.end());
        break;
      }
    }
    i = j;
  }
  return OkStatus();
}

StatusOr<RunResult> Runner::Run(Workload* workload, uint64_t ops, const RunOptions& options) {
  RunResult result;
  result.start_ns = clock_->NowNs();

  if (options.batch > 1) {
    // Vectored mode: groups of `batch` ops go down the target's DoOpV path in one
    // submission. Completion bookkeeping mirrors the scalar loop exactly.
    std::vector<IoOp> batch_ops;
    std::vector<IoResult> ios;
    uint64_t issued = 0;
    bool exhausted = false;
    while (issued < ops && !exhausted) {
      const uint64_t now = clock_->NowNs();
      target_->Pump(now);

      batch_ops.clear();
      while (batch_ops.size() < options.batch && issued + batch_ops.size() < ops) {
        const std::optional<IoOp> op = workload->Next();
        if (!op.has_value()) {
          exhausted = true;
          break;
        }
        batch_ops.push_back(*op);
      }
      if (batch_ops.empty()) {
        break;
      }
      ios.clear();
      RETURN_IF_ERROR(target_->DoOpV(batch_ops, now, &ios));

      uint64_t batch_end = now;
      for (const IoResult& io : ios) {
        const uint64_t latency = io.LatencyNs();
        result.latency.Add(latency);
        if (options.record_timeline) {
          result.timeline.Add(now, NsToUs(latency));
        }
        result.bytes += page_bytes_;
        batch_end = std::max(batch_end, io.CompletionNs());
        ++result.ops;
        ++issued;
        if (options.after_op) {
          options.after_op(result.ops - 1, batch_end);
        }
      }
      clock_->AdvanceTo(batch_end);
    }
    result.end_ns = clock_->NowNs();
    result.drain_end_ns = std::max(result.end_ns, target_->DrainNs());
    return result;
  }

  const uint64_t queue_depth = std::max<uint64_t>(1, options.queue_depth);
  uint64_t issued = 0;
  while (issued < ops) {
    const uint64_t now = clock_->NowNs();
    target_->Pump(now);

    // Issue a batch of queue_depth ops at the same instant; they queue per channel in the
    // device, modeling a multi-threaded submitter. The clock advances to the slowest
    // completion.
    const uint64_t batch = std::min(queue_depth, ops - issued);
    uint64_t batch_end = now;
    for (uint64_t i = 0; i < batch; ++i) {
      const std::optional<IoOp> op = workload->Next();
      if (!op.has_value()) {
        issued = ops;  // Workload exhausted.
        break;
      }
      ASSIGN_OR_RETURN(IoResult io, target_->DoOp(*op, now));
      const uint64_t latency = io.LatencyNs();
      result.latency.Add(latency);
      if (options.record_timeline) {
        result.timeline.Add(now, NsToUs(latency));
      }
      result.bytes += page_bytes_;
      batch_end = std::max(batch_end, io.CompletionNs());
      ++result.ops;
      ++issued;
      if (options.after_op) {
        options.after_op(result.ops - 1, batch_end);
      }
    }
    clock_->AdvanceTo(batch_end);
  }

  result.end_ns = clock_->NowNs();
  result.drain_end_ns = std::max(result.end_ns, target_->DrainNs());
  return result;
}

}  // namespace iosnap
