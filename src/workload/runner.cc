#include "src/workload/runner.h"

#include <algorithm>
#include <vector>

#include "src/common/units.h"

namespace iosnap {

Status BlockTarget::DoOpV(std::span<const IoOp> ops, uint64_t issue_ns,
                          std::vector<IoResult>* results) {
  for (const IoOp& op : ops) {
    ASSIGN_OR_RETURN(IoResult io, DoOp(op, issue_ns));
    results->push_back(io);
  }
  return OkStatus();
}

StatusOr<IoResult> FtlTarget::DoOp(const IoOp& op, uint64_t issue_ns) {
  switch (op.kind) {
    case IoKind::kRead:
      if (view_id_ == kPrimaryView) {
        return ftl_->Read(op.lba, issue_ns, nullptr);
      }
      return ftl_->ReadView(view_id_, op.lba, issue_ns, nullptr);
    case IoKind::kWrite:
      if (view_id_ == kPrimaryView) {
        return ftl_->Write(op.lba, {}, issue_ns);
      }
      return ftl_->WriteView(view_id_, op.lba, {}, issue_ns);
    case IoKind::kTrim:
      return ftl_->Trim(op.lba, op.count, issue_ns);
  }
  return InvalidArgument("unknown op kind");
}

Status FtlTarget::DoOpV(std::span<const IoOp> ops, uint64_t issue_ns,
                        std::vector<IoResult>* results) {
  std::vector<uint64_t> lbas;
  std::vector<WriteRequest> writes;
  std::vector<TrimRequest> trims;
  size_t i = 0;
  while (i < ops.size()) {
    const IoKind kind = ops[i].kind;
    size_t j = i;
    while (j < ops.size() && ops[j].kind == kind) {
      ++j;
    }
    switch (kind) {
      case IoKind::kRead: {
        lbas.clear();
        for (size_t k = i; k < j; ++k) {
          lbas.push_back(ops[k].lba);
        }
        ASSIGN_OR_RETURN(std::vector<IoResult> ios,
                         view_id_ == kPrimaryView
                             ? ftl_->ReadV(lbas, issue_ns, nullptr)
                             : ftl_->ReadViewV(view_id_, lbas, issue_ns, nullptr));
        results->insert(results->end(), ios.begin(), ios.end());
        break;
      }
      case IoKind::kWrite: {
        writes.clear();
        for (size_t k = i; k < j; ++k) {
          writes.push_back({ops[k].lba, {}});
        }
        ASSIGN_OR_RETURN(std::vector<IoResult> ios,
                         view_id_ == kPrimaryView
                             ? ftl_->WriteV(writes, issue_ns)
                             : ftl_->WriteViewV(view_id_, writes, issue_ns));
        results->insert(results->end(), ios.begin(), ios.end());
        break;
      }
      case IoKind::kTrim: {
        trims.clear();
        for (size_t k = i; k < j; ++k) {
          trims.push_back({ops[k].lba, ops[k].count});
        }
        ASSIGN_OR_RETURN(std::vector<IoResult> ios, ftl_->TrimV(trims, issue_ns));
        results->insert(results->end(), ios.begin(), ios.end());
        break;
      }
    }
    i = j;
  }
  return OkStatus();
}

StatusOr<RunResult> Runner::RunQueued(Workload* workload, uint64_t ops,
                                      const RunOptions& options) {
  Ftl* ftl = target_->QueueFtl();
  if (ftl == nullptr) {
    return InvalidArgument("runner: target has no queued submission path");
  }
  IoQueueLayer::Options qopts;
  qopts.queues = options.queues;
  qopts.iodepth = std::max<uint32_t>(1, options.iodepth);
  IoQueueLayer layer(ftl, qopts);
  const uint64_t batch = std::max<uint64_t>(1, options.batch);

  RunResult result;
  result.start_ns = clock_->NowNs();
  Status io_error;
  const auto account = [&](const IoCompletion& c) {
    if (!c.status.ok()) {
      if (io_error.ok()) {
        io_error = c.status;
      }
      return;
    }
    const uint64_t latency = c.result.LatencyNs();
    result.latency.Add(latency);
    if (options.record_timeline) {
      result.timeline.Add(c.result.op.issue_ns, NsToUs(latency));
    }
    result.bytes += page_bytes_;
    ++result.ops;
    if (options.after_op) {
      options.after_op(result.ops - 1, c.CompletionNs());
    }
    if (options.sampler != nullptr) {
      options.sampler->MaybeSample(c.CompletionNs());
    }
  };

  uint64_t issued = 0;
  bool exhausted = false;
  uint32_t rr = 0;  // Round-robin queue cursor.
  std::vector<QueueOp> sub;
  const auto any_free_slot = [&] {
    for (uint32_t q = 0; q < qopts.queues; ++q) {
      if (layer.CanSubmit(q)) {
        return true;
      }
    }
    return false;
  };
  while (io_error.ok()) {
    const uint64_t now = clock_->NowNs();
    // Pump only when about to admit work, mirroring the batch loop's cadence:
    // completions delivered mid-submission do not trigger background work on their own.
    if (!exhausted && issued < ops && any_free_slot()) {
      target_->Pump(now);
    }
    // Fill every free slot round-robin with `batch`-op submissions at `now`.
    while (!exhausted && issued < ops) {
      uint32_t queue = 0;
      bool found = false;
      for (uint32_t k = 0; k < qopts.queues; ++k) {
        const uint32_t cand = (rr + k) % qopts.queues;
        if (layer.CanSubmit(cand)) {
          queue = cand;
          found = true;
          break;
        }
      }
      if (!found) {
        break;
      }
      sub.clear();
      while (sub.size() < batch && issued + sub.size() < ops) {
        const std::optional<IoOp> op = workload->Next();
        if (!op.has_value()) {
          exhausted = true;
          break;
        }
        QueueOp qop;
        switch (op->kind) {
          case IoKind::kRead:
            qop.kind = QueueOpKind::kRead;
            break;
          case IoKind::kWrite:
            qop.kind = QueueOpKind::kWrite;
            break;
          case IoKind::kTrim:
            qop.kind = QueueOpKind::kTrim;
            qop.count = op->count;
            break;
        }
        qop.lba = op->lba;
        sub.push_back(qop);
      }
      if (sub.empty()) {
        break;
      }
      RETURN_IF_ERROR(layer.Submit(queue, sub, now).status());
      issued += sub.size();
      rr = (queue + 1) % qopts.queues;
    }

    const std::optional<uint64_t> next = layer.NextCompletionNs();
    if (!next.has_value()) {
      break;  // Nothing in flight and nothing left to admit.
    }
    clock_->AdvanceTo(*next);
    for (const IoCompletion& c : layer.PollCompletions(clock_->NowNs())) {
      account(c);
    }
  }
  for (const IoCompletion& c : layer.Drain()) {
    account(c);
    clock_->AdvanceTo(c.CompletionNs());
  }
  if (!io_error.ok()) {
    return io_error;
  }
  result.queue_stats = layer.stats();
  result.per_queue = layer.per_queue();
  result.end_ns = clock_->NowNs();
  result.drain_end_ns = std::max(result.end_ns, target_->DrainNs());
  return result;
}

StatusOr<RunResult> Runner::Run(Workload* workload, uint64_t ops, const RunOptions& options) {
  if (options.queues > 0) {
    return RunQueued(workload, ops, options);
  }

  RunResult result;
  result.start_ns = clock_->NowNs();

  if (options.batch > 1) {
    // Vectored mode: groups of `batch` ops go down the target's DoOpV path in one
    // submission. Completion bookkeeping mirrors the scalar loop exactly.
    std::vector<IoOp> batch_ops;
    std::vector<IoResult> ios;
    uint64_t issued = 0;
    bool exhausted = false;
    while (issued < ops && !exhausted) {
      const uint64_t now = clock_->NowNs();
      target_->Pump(now);

      batch_ops.clear();
      while (batch_ops.size() < options.batch && issued + batch_ops.size() < ops) {
        const std::optional<IoOp> op = workload->Next();
        if (!op.has_value()) {
          exhausted = true;
          break;
        }
        batch_ops.push_back(*op);
      }
      if (batch_ops.empty()) {
        break;
      }
      ios.clear();
      RETURN_IF_ERROR(target_->DoOpV(batch_ops, now, &ios));

      uint64_t batch_end = now;
      for (const IoResult& io : ios) {
        const uint64_t latency = io.LatencyNs();
        result.latency.Add(latency);
        if (options.record_timeline) {
          result.timeline.Add(now, NsToUs(latency));
        }
        result.bytes += page_bytes_;
        batch_end = std::max(batch_end, io.CompletionNs());
        ++result.ops;
        ++issued;
        if (options.after_op) {
          options.after_op(result.ops - 1, batch_end);
        }
        if (options.sampler != nullptr) {
          options.sampler->MaybeSample(io.CompletionNs());
        }
      }
      clock_->AdvanceTo(batch_end);
    }
    result.end_ns = clock_->NowNs();
    result.drain_end_ns = std::max(result.end_ns, target_->DrainNs());
    return result;
  }

  const uint64_t queue_depth = std::max<uint64_t>(1, options.queue_depth);
  uint64_t issued = 0;
  while (issued < ops) {
    const uint64_t now = clock_->NowNs();
    target_->Pump(now);

    // Issue a batch of queue_depth ops at the same instant; they queue per channel in the
    // device, modeling a multi-threaded submitter. The clock advances to the slowest
    // completion.
    const uint64_t batch = std::min(queue_depth, ops - issued);
    uint64_t batch_end = now;
    for (uint64_t i = 0; i < batch; ++i) {
      const std::optional<IoOp> op = workload->Next();
      if (!op.has_value()) {
        issued = ops;  // Workload exhausted.
        break;
      }
      ASSIGN_OR_RETURN(IoResult io, target_->DoOp(*op, now));
      const uint64_t latency = io.LatencyNs();
      result.latency.Add(latency);
      if (options.record_timeline) {
        result.timeline.Add(now, NsToUs(latency));
      }
      result.bytes += page_bytes_;
      batch_end = std::max(batch_end, io.CompletionNs());
      ++result.ops;
      ++issued;
      if (options.after_op) {
        options.after_op(result.ops - 1, batch_end);
      }
      if (options.sampler != nullptr) {
        options.sampler->MaybeSample(io.CompletionNs());
      }
    }
    clock_->AdvanceTo(batch_end);
  }

  result.end_ns = clock_->NowNs();
  result.drain_end_ns = std::max(result.end_ns, target_->DrainNs());
  return result;
}

}  // namespace iosnap
