#include "src/workload/workload.h"

#include <cmath>

#include "src/common/logging.h"

namespace iosnap {

SequentialWorkload::SequentialWorkload(IoKind kind, uint64_t start_lba, uint64_t count,
                                       bool wrap)
    : kind_(kind), start_lba_(start_lba), count_(count), wrap_(wrap) {}

std::optional<IoOp> SequentialWorkload::Next() {
  if (!wrap_ && issued_ >= count_) {
    return std::nullopt;
  }
  IoOp op;
  op.kind = kind_;
  op.lba = start_lba_ + (issued_ % count_);
  ++issued_;
  return op;
}

RandomWorkload::RandomWorkload(IoKind kind, uint64_t lba_space, uint64_t seed)
    : kind_(kind), lba_space_(lba_space), rng_(seed) {
  IOSNAP_CHECK(lba_space > 0);
}

std::optional<IoOp> RandomWorkload::Next() {
  IoOp op;
  op.kind = kind_;
  op.lba = rng_.NextBelow(lba_space_);
  return op;
}

MixedWorkload::MixedWorkload(double read_fraction, uint64_t lba_space, uint64_t seed)
    : read_fraction_(read_fraction), lba_space_(lba_space), rng_(seed) {
  IOSNAP_CHECK(lba_space > 0);
}

std::optional<IoOp> MixedWorkload::Next() {
  IoOp op;
  op.kind = rng_.NextBool(read_fraction_) ? IoKind::kRead : IoKind::kWrite;
  op.lba = rng_.NextBelow(lba_space_);
  return op;
}

ZipfWorkload::ZipfWorkload(IoKind kind, uint64_t lba_space, double theta, uint64_t seed)
    : kind_(kind), lba_space_(lba_space), theta_(theta), rng_(seed) {
  IOSNAP_CHECK(lba_space > 0);
  IOSNAP_CHECK(theta > 0.0 && theta < 1.0);
  // Gray et al. quick Zipf generator setup.
  zetan_ = 0.0;
  for (uint64_t i = 1; i <= lba_space_; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = 1.0 + std::pow(0.5, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(lba_space_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfWorkload::Sample() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(lba_space_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= lba_space_ ? lba_space_ - 1 : rank;
}

std::optional<IoOp> ZipfWorkload::Next() {
  IoOp op;
  op.kind = kind_;
  // Scramble ranks so hot blocks are scattered across the LBA space.
  const uint64_t rank = Sample();
  op.lba = (rank * 0x9e3779b97f4a7c15ULL) % lba_space_;
  return op;
}

}  // namespace iosnap
