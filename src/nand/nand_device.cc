#include "src/nand/nand_device.h"

#include <algorithm>

#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/nand/parity.h"

namespace iosnap {

namespace {

// kind codes for kFaultInjected trace events.
constexpr uint64_t kFaultKindProgram = 0;
constexpr uint64_t kFaultKindErase = 1;
constexpr uint64_t kFaultKindRead = 2;
constexpr uint64_t kFaultKindCorrupt = 3;
constexpr uint64_t kFaultKindReadDisturb = 4;
constexpr uint64_t kFaultKindRetention = 5;

}  // namespace

uint32_t ComputePageCrc(const PageHeader& header, std::span<const uint8_t> data) {
  uint8_t buf[kPageHeaderCrcFieldBytes];
  SerializePageHeaderFields(header, buf);
  return Crc32Extend(Crc32(std::span<const uint8_t>(buf, sizeof(buf))), data);
}

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kInvalid:
      return "invalid";
    case RecordType::kData:
      return "data";
    case RecordType::kTrim:
      return "trim";
    case RecordType::kSnapCreate:
      return "snap-create";
    case RecordType::kSnapDelete:
      return "snap-delete";
    case RecordType::kSnapActivate:
      return "snap-activate";
    case RecordType::kSnapDeactivate:
      return "snap-deactivate";
    case RecordType::kRollback:
      return "rollback";
    case RecordType::kTreeSummary:
      return "tree-summary";
    case RecordType::kTrimSummary:
      return "trim-summary";
    case RecordType::kCheckpoint:
      return "checkpoint";
    case RecordType::kPad:
      return "pad";
    case RecordType::kParity:
      return "parity";
  }
  return "?";
}

NandDevice::NandDevice(const NandConfig& config)
    : config_(config),
      fault_(config.fault),
      pages_(config.TotalPages()),
      segments_(config.num_segments),
      channel_busy_until_(config.num_channels, 0),
      bus_busy_until_(config.buses, 0),
      channel_bg_until_(config.num_channels, 0),
      bus_bg_until_(config.buses, 0),
      bus_active_ns_(config.buses, 0) {
  IOSNAP_CHECK(config.num_channels > 0);
  IOSNAP_CHECK(config.buses > 0);
  IOSNAP_CHECK(config.pages_per_segment > 0);
  IOSNAP_CHECK(config.num_segments > 0);
  // NAND ships factory-erased: first programs need no erase. (Erases after that are
  // charged wherever they happen — normally in the cleaner's release path.)
  for (SegmentState& seg : segments_) {
    seg.erased = true;
  }
}

NandOp NandDevice::Occupy(uint32_t channel, uint64_t issue_ns, uint64_t bus_ns,
                          uint64_t cell_ns) {
  NandOp op;
  op.issue_ns = issue_ns;
  op.bus_ns = bus_ns;
  op.cell_ns = cell_ns;

  const uint64_t chan_start = std::max(issue_ns, channel_busy_until_[channel]);
  op.chan_wait_ns = chan_start - issue_ns;
  // Background share of the channel wait: time spent before the channel's
  // background horizon passed. Clamped arithmetic only — timing is untouched.
  op.bg_wait_ns =
      std::min(chan_start, std::max(issue_ns, channel_bg_until_[channel])) - issue_ns;

  uint64_t start = chan_start;
  if (bus_ns > 0) {
    const uint32_t bus = BusOfChannel(channel);
    const uint64_t bus_start = std::max(start, bus_busy_until_[bus]);
    op.bus_wait_ns = bus_start - start;
    op.bg_wait_ns +=
        std::min(bus_start, std::max(start, bus_bg_until_[bus])) - start;
    bus_busy_until_[bus] = bus_start + bus_ns;
    bus_active_ns_[bus] += bus_ns;
    if (background_depth_ > 0) {
      bus_bg_until_[bus] = bus_busy_until_[bus];
    }
    start = bus_start + bus_ns;
  }
  const uint64_t finish = start + cell_ns;
  channel_busy_until_[channel] = finish;
  if (background_depth_ > 0) {
    channel_bg_until_[channel] = finish;
  }
  op.finish_ns = finish;
  return op;
}

StatusOr<NandOp> NandDevice::ProgramPage(uint64_t segment, const PageHeader& header,
                                         std::span<const uint8_t> data, uint64_t issue_ns,
                                         uint64_t* paddr_out) {
  if (segment >= config_.num_segments) {
    return OutOfRange("program: segment " + std::to_string(segment) + " out of range");
  }
  SegmentState& seg = segments_[segment];
  if (seg.bad) {
    return DataLoss("program: segment " + std::to_string(segment) +
                    " is a grown bad block");
  }
  if (!seg.erased) {
    return FailedPrecondition("program: segment " + std::to_string(segment) +
                              " was never erased");
  }
  if (seg.next_page >= config_.pages_per_segment) {
    return ResourceExhausted("program: segment " + std::to_string(segment) + " is full");
  }
  if (!data.empty() && data.size() > MaxPayloadBytes(header.type)) {
    return InvalidArgument("program: payload larger than a page");
  }
  return ProgramCommit(segment, header, data, issue_ns, paddr_out);
}

StatusOr<NandOp> NandDevice::ProgramCommit(uint64_t segment, const PageHeader& header,
                                           std::span<const uint8_t> data, uint64_t issue_ns,
                                           uint64_t* paddr_out) {
  RETURN_IF_ERROR(fault_.BeginOp());
  SegmentState& seg = segments_[segment];
  const uint64_t paddr = FirstPageOf(segment) + seg.next_page;
  ++seg.next_page;

  if (fault_.DrawProgramFail()) {
    // The failed attempt consumes the page slot (it is left unprogrammed) and the
    // whole block is retired, matching how real flash reports program failures.
    MarkBad(segment);
    ++stats_.program_failures;
    Occupy(ChannelOfPage(paddr), issue_ns, config_.bus_ns_per_page, config_.program_ns);
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kFaultInjected, issue_ns, issue_ns,
                     kFaultKindProgram, segment, fault_.ops());
    }
    return DataLoss("program: injected failure in segment " + std::to_string(segment));
  }

  PageState& page = pages_[paddr];
  IOSNAP_CHECK(!page.programmed);
  page.programmed = true;
  page.programmed_at_ns = issue_ns;
  page.header = header;
  // Metadata payloads (checkpoints, summaries, snapshot names, parity images) are
  // always retained: header-only benchmarking mode must still support restarts, note
  // consolidation, and stripe rebuilds.
  if ((config_.store_data || PayloadAlwaysStored(header.type)) && !data.empty()) {
    page.data.assign(data.begin(), data.end());
  } else {
    page.data.clear();
  }
  // The CRC covers the payload as actually stored, so header-only mode stays
  // self-consistent on read-back.
  page.header.crc = ComputePageCrc(page.header, page.data);

  if (fault_.DrawCorrupt()) {
    FlipStoredBit(paddr);
    ++stats_.pages_corrupted;
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kFaultInjected, issue_ns, issue_ns,
                     kFaultKindCorrupt, paddr, fault_.ops());
    }
  }

  ++stats_.pages_programmed;
  stats_.bytes_programmed += config_.page_size_bytes;

  const NandOp op =
      Occupy(ChannelOfPage(paddr), issue_ns, config_.bus_ns_per_page, config_.program_ns);
  if (paddr_out != nullptr) {
    *paddr_out = paddr;
  }
  return op;
}

Status NandDevice::ProgramBatch(uint64_t segment, std::span<const ProgramRequest> requests,
                                uint64_t issue_ns, std::vector<uint64_t>* paddrs_out,
                                std::vector<NandOp>* ops_out,
                                std::span<const uint64_t> issue_at) {
  IOSNAP_CHECK(issue_at.empty() || issue_at.size() == requests.size());
  if (segment >= config_.num_segments) {
    return OutOfRange("program-batch: segment " + std::to_string(segment) +
                      " out of range");
  }
  const SegmentState& seg = segments_[segment];
  if (seg.bad) {
    return DataLoss("program-batch: segment " + std::to_string(segment) +
                    " is a grown bad block");
  }
  if (!seg.erased) {
    return FailedPrecondition("program-batch: segment " + std::to_string(segment) +
                              " was never erased");
  }
  if (seg.next_page + requests.size() > config_.pages_per_segment) {
    return ResourceExhausted("program-batch: batch of " +
                             std::to_string(requests.size()) + " overflows segment " +
                             std::to_string(segment));
  }
  for (const ProgramRequest& request : requests) {
    if (!request.data.empty() &&
        request.data.size() > MaxPayloadBytes(request.header.type)) {
      return InvalidArgument("program-batch: payload larger than a page");
    }
  }

  if (paddrs_out != nullptr) {
    paddrs_out->reserve(paddrs_out->size() + requests.size());
  }
  if (ops_out != nullptr) {
    ops_out->reserve(ops_out->size() + requests.size());
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    const ProgramRequest& request = requests[i];
    uint64_t paddr = 0;
    // A fault or crash mid-batch tears the batch: the prefix already pushed to the
    // out-vectors is durable, the rest was never programmed.
    StatusOr<NandOp> op = ProgramCommit(segment, request.header, request.data,
                                        issue_at.empty() ? issue_ns : issue_at[i],
                                        &paddr);
    if (!op.ok()) {
      return op.status();
    }
    if (paddrs_out != nullptr) {
      paddrs_out->push_back(paddr);
    }
    if (ops_out != nullptr) {
      ops_out->push_back(*op);
    }
  }
  return OkStatus();
}

StatusOr<NandOp> NandDevice::ReadPage(uint64_t paddr, uint64_t issue_ns,
                                      PageHeader* header_out, std::vector<uint8_t>* data_out) {
  if (paddr >= config_.TotalPages()) {
    return OutOfRange("read: paddr out of range");
  }
  if (!pages_[paddr].programmed) {
    return FailedPrecondition("read: page " + std::to_string(paddr) + " is not programmed");
  }
  return ReadCommit(paddr, issue_ns, header_out, data_out);
}

StatusOr<NandOp> NandDevice::ReadCommit(uint64_t paddr, uint64_t issue_ns,
                                        PageHeader* header_out,
                                        std::vector<uint8_t>* data_out) {
  RETURN_IF_ERROR(fault_.BeginOp());
  // The sense itself wears the media: count it against the segment and roll the
  // state-dependent corruption dice before any verification below.
  ApplyReadWear(paddr, issue_ns);
  const PageState& page = pages_[paddr];

  if (fault_.DrawReadFail()) {
    ++stats_.read_failures;
    // The failed attempt still occupied the channel and bus.
    Occupy(ChannelOfPage(paddr), issue_ns, config_.bus_ns_per_page, config_.read_ns);
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kFaultInjected, issue_ns, issue_ns, kFaultKindRead,
                     paddr, fault_.ops());
    }
    return Unavailable("read: transient failure at paddr " + std::to_string(paddr));
  }
  if (!PageCrcOk(page)) {
    ++stats_.crc_errors;
    Occupy(ChannelOfPage(paddr), issue_ns, config_.bus_ns_per_page, config_.read_ns);
    return DataLoss("read: CRC mismatch at paddr " + std::to_string(paddr));
  }

  if (header_out != nullptr) {
    *header_out = page.header;
  }
  if (data_out != nullptr) {
    *data_out = page.data;
  }

  ++stats_.pages_read;
  stats_.bytes_read += config_.page_size_bytes;

  // Read: cell sense first, then bus transfer; modeled as serialized occupancy.
  return Occupy(ChannelOfPage(paddr), issue_ns, config_.bus_ns_per_page, config_.read_ns);
}

Status NandDevice::ReadBatch(std::span<const uint64_t> paddrs, uint64_t issue_ns,
                             std::vector<PageHeader>* headers_out,
                             std::vector<std::vector<uint8_t>>* data_out,
                             std::vector<NandOp>* ops_out,
                             std::span<const uint64_t> issue_at) {
  IOSNAP_CHECK(issue_at.empty() || issue_at.size() == paddrs.size());
  for (uint64_t paddr : paddrs) {
    if (paddr >= config_.TotalPages()) {
      return OutOfRange("read-batch: paddr out of range");
    }
    if (!pages_[paddr].programmed) {
      return FailedPrecondition("read-batch: page " + std::to_string(paddr) +
                                " is not programmed");
    }
  }

  if (headers_out != nullptr) {
    headers_out->reserve(headers_out->size() + paddrs.size());
  }
  if (data_out != nullptr) {
    data_out->reserve(data_out->size() + paddrs.size());
  }
  if (ops_out != nullptr) {
    ops_out->reserve(ops_out->size() + paddrs.size());
  }
  for (size_t i = 0; i < paddrs.size(); ++i) {
    const uint64_t paddr = paddrs[i];
    PageHeader header;
    std::vector<uint8_t> data;
    StatusOr<NandOp> op = ReadCommit(paddr, issue_at.empty() ? issue_ns : issue_at[i],
                                     headers_out != nullptr ? &header : nullptr,
                                     data_out != nullptr ? &data : nullptr);
    if (!op.ok()) {
      // The prefix already read stays in the out-vectors; the caller can fall back to
      // per-page retries for the remainder.
      return op.status();
    }
    if (headers_out != nullptr) {
      headers_out->push_back(header);
    }
    if (data_out != nullptr) {
      data_out->push_back(std::move(data));
    }
    if (ops_out != nullptr) {
      ops_out->push_back(*op);
    }
  }
  return OkStatus();
}

StatusOr<NandOp> NandDevice::CopybackPage(uint64_t src_paddr, uint64_t dst_segment,
                                          uint64_t issue_ns, uint64_t* paddr_out) {
  if (src_paddr >= config_.TotalPages()) {
    return OutOfRange("copyback: src paddr out of range");
  }
  if (!pages_[src_paddr].programmed) {
    return FailedPrecondition("copyback: page " + std::to_string(src_paddr) +
                              " is not programmed");
  }
  if (dst_segment >= config_.num_segments) {
    return OutOfRange("copyback: segment " + std::to_string(dst_segment) +
                      " out of range");
  }
  const SegmentState& seg = segments_[dst_segment];
  if (seg.bad) {
    return DataLoss("copyback: segment " + std::to_string(dst_segment) +
                    " is a grown bad block");
  }
  if (!seg.erased) {
    return FailedPrecondition("copyback: segment " + std::to_string(dst_segment) +
                              " was never erased");
  }
  if (seg.next_page >= config_.pages_per_segment) {
    return ResourceExhausted("copyback: segment " + std::to_string(dst_segment) +
                             " is full");
  }
  return CopybackCommit(src_paddr, dst_segment, issue_ns, paddr_out);
}

StatusOr<NandOp> NandDevice::CopybackCommit(uint64_t src_paddr, uint64_t dst_segment,
                                            uint64_t issue_ns, uint64_t* paddr_out) {
  RETURN_IF_ERROR(fault_.BeginOp());
  SegmentState& seg = segments_[dst_segment];
  const uint64_t dst_paddr = FirstPageOf(dst_segment) + seg.next_page;
  const uint32_t src_chan = ChannelOfPage(src_paddr);
  const uint32_t dst_chan = ChannelOfPage(dst_paddr);
  const bool on_die = src_chan == dst_chan;
  const uint64_t leg_bus_ns = on_die ? 0 : config_.bus_ns_per_page;

  // The internal source sense is still a data read: it disturbs the source segment.
  ApplyReadWear(src_paddr, issue_ns);
  const PageState& src = pages_[src_paddr];
  if (fault_.DrawReadFail()) {
    // The failed internal read still occupied the source channel (and, on the
    // cross-channel fallback, its bus). Retryable; the destination slot survives.
    ++stats_.read_failures;
    Occupy(src_chan, issue_ns, leg_bus_ns, config_.read_ns);
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kFaultInjected, issue_ns, issue_ns, kFaultKindRead,
                     src_paddr, fault_.ops());
    }
    return Unavailable("copyback: transient read failure at paddr " +
                       std::to_string(src_paddr));
  }
  if (config_.copyback_scrub && !PageCrcOk(src)) {
    // Scrub-on-copyback: the on-die move would otherwise relocate corruption without
    // any host CRC check. Caught here, the page is dropped by the caller's normal
    // unreadable-page path and nothing is programmed.
    ++stats_.crc_errors;
    Occupy(src_chan, issue_ns, leg_bus_ns, config_.read_ns);
    return DataLoss("copyback: CRC mismatch at paddr " + std::to_string(src_paddr));
  }

  ++seg.next_page;
  if (fault_.DrawProgramFail()) {
    MarkBad(dst_segment);
    ++stats_.program_failures;
    if (on_die) {
      Occupy(src_chan, issue_ns, 0, config_.read_ns + config_.program_ns);
    } else {
      const NandOp read_op = Occupy(src_chan, issue_ns, leg_bus_ns, config_.read_ns);
      Occupy(dst_chan, read_op.finish_ns, leg_bus_ns, config_.program_ns);
    }
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kFaultInjected, issue_ns, issue_ns,
                     kFaultKindProgram, dst_segment, fault_.ops());
    }
    return DataLoss("copyback: injected program failure in segment " +
                    std::to_string(dst_segment));
  }

  PageState& dst = pages_[dst_paddr];
  IOSNAP_CHECK(!dst.programmed);
  dst.programmed = true;
  dst.programmed_at_ns = issue_ns;
  // The stored bytes move verbatim — header with its original CRC plus payload — so a
  // corruption that slipped past a disabled scrub still fails verification at the new
  // address instead of being laundered by a recomputed checksum.
  dst.header = src.header;
  dst.data = src.data;

  if (fault_.DrawCorrupt()) {
    FlipStoredBit(dst_paddr);
    ++stats_.pages_corrupted;
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kFaultInjected, issue_ns, issue_ns,
                     kFaultKindCorrupt, dst_paddr, fault_.ops());
    }
  }

  ++stats_.pages_programmed;
  stats_.bytes_programmed += config_.page_size_bytes;
  ++stats_.copyback_pages;

  NandOp op;
  if (on_die) {
    // The move never leaves the die: one channel occupancy covering sense + program,
    // zero bus time.
    op = Occupy(src_chan, issue_ns, 0, config_.read_ns + config_.program_ns);
  } else {
    // Cross-channel fallback: an internal read on the source channel chained into a
    // program on the destination channel. Reported as one combined op; because the
    // program is issued exactly at the read's finish, summing the two legs' spans
    // preserves the chan_wait+bus_wait+bus+cell == finish-issue invariant bit-exactly.
    ++stats_.copyback_fallbacks;
    const NandOp read_op = Occupy(src_chan, issue_ns, leg_bus_ns, config_.read_ns);
    const NandOp prog_op =
        Occupy(dst_chan, read_op.finish_ns, leg_bus_ns, config_.program_ns);
    op.issue_ns = issue_ns;
    op.finish_ns = prog_op.finish_ns;
    op.chan_wait_ns = read_op.chan_wait_ns + prog_op.chan_wait_ns;
    op.bus_wait_ns = read_op.bus_wait_ns + prog_op.bus_wait_ns;
    op.bus_ns = read_op.bus_ns + prog_op.bus_ns;
    op.cell_ns = read_op.cell_ns + prog_op.cell_ns;
    op.bg_wait_ns = read_op.bg_wait_ns + prog_op.bg_wait_ns;
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kNandCopyback, op.issue_ns, op.finish_ns, src_paddr,
                   dst_paddr, on_die ? 1 : 0);
  }
  if (paddr_out != nullptr) {
    *paddr_out = dst_paddr;
  }
  return op;
}

Status NandDevice::CopybackBatch(std::span<const uint64_t> src_paddrs,
                                 uint64_t dst_segment, uint64_t issue_ns,
                                 std::vector<uint64_t>* paddrs_out,
                                 std::vector<NandOp>* ops_out) {
  if (dst_segment >= config_.num_segments) {
    return OutOfRange("copyback-batch: segment " + std::to_string(dst_segment) +
                      " out of range");
  }
  const SegmentState& seg = segments_[dst_segment];
  if (seg.bad) {
    return DataLoss("copyback-batch: segment " + std::to_string(dst_segment) +
                    " is a grown bad block");
  }
  if (!seg.erased) {
    return FailedPrecondition("copyback-batch: segment " + std::to_string(dst_segment) +
                              " was never erased");
  }
  if (seg.next_page + src_paddrs.size() > config_.pages_per_segment) {
    return ResourceExhausted("copyback-batch: batch of " +
                             std::to_string(src_paddrs.size()) + " overflows segment " +
                             std::to_string(dst_segment));
  }
  for (uint64_t src_paddr : src_paddrs) {
    if (src_paddr >= config_.TotalPages()) {
      return OutOfRange("copyback-batch: src paddr out of range");
    }
    if (!pages_[src_paddr].programmed) {
      return FailedPrecondition("copyback-batch: page " + std::to_string(src_paddr) +
                                " is not programmed");
    }
  }

  if (paddrs_out != nullptr) {
    paddrs_out->reserve(paddrs_out->size() + src_paddrs.size());
  }
  if (ops_out != nullptr) {
    ops_out->reserve(ops_out->size() + src_paddrs.size());
  }
  for (uint64_t src_paddr : src_paddrs) {
    uint64_t dst_paddr = 0;
    StatusOr<NandOp> op = CopybackCommit(src_paddr, dst_segment, issue_ns, &dst_paddr);
    if (!op.ok()) {
      // Torn batch: the committed prefix stays in the out-vectors.
      return op.status();
    }
    if (paddrs_out != nullptr) {
      paddrs_out->push_back(dst_paddr);
    }
    if (ops_out != nullptr) {
      ops_out->push_back(*op);
    }
  }
  return OkStatus();
}

StatusOr<NandOp> NandDevice::ReadPageWithRetry(uint64_t paddr, uint64_t issue_ns,
                                               PageHeader* header_out,
                                               std::vector<uint8_t>* data_out,
                                               uint32_t max_attempts) {
  if (max_attempts == 0) {
    max_attempts = 1;
  }
  StatusOr<NandOp> result = ReadPage(paddr, issue_ns, header_out, data_out);
  for (uint32_t attempt = 1; attempt < max_attempts; ++attempt) {
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      break;  // Success, or a permanent error retries cannot fix.
    }
    ++stats_.read_retries;
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kReadRetry, issue_ns, issue_ns, paddr, attempt);
    }
    result = ReadPage(paddr, issue_ns, header_out, data_out);
  }
  return result;
}

StatusOr<NandOp> NandDevice::ReadHeader(uint64_t paddr, uint64_t issue_ns,
                                        PageHeader* header_out) {
  if (paddr >= config_.TotalPages()) {
    return OutOfRange("read-header: paddr out of range");
  }
  const PageState& page = pages_[paddr];
  if (!page.programmed) {
    return FailedPrecondition("read-header: page not programmed");
  }
  RETURN_IF_ERROR(fault_.BeginOp());
  if (fault_.DrawReadFail()) {
    ++stats_.read_failures;
    Occupy(ChannelOfPage(paddr), issue_ns, 0, config_.read_ns);
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kFaultInjected, issue_ns, issue_ns, kFaultKindRead,
                     paddr, fault_.ops());
    }
    return Unavailable("read-header: transient failure at paddr " + std::to_string(paddr));
  }
  if (!PageCrcOk(page)) {
    ++stats_.crc_errors;
    Occupy(ChannelOfPage(paddr), issue_ns, 0, config_.read_ns);
    return DataLoss("read-header: CRC mismatch at paddr " + std::to_string(paddr));
  }
  if (header_out != nullptr) {
    *header_out = page.header;
  }
  ++stats_.headers_scanned;

  // A single OOB read still pays a cell sense but no page-size bus transfer.
  return Occupy(ChannelOfPage(paddr), issue_ns, 0, config_.read_ns);
}

StatusOr<NandOp> NandDevice::ScanSegmentHeaders(
    uint64_t segment, uint64_t issue_ns, std::vector<std::pair<uint64_t, PageHeader>>* out) {
  if (segment >= config_.num_segments) {
    return OutOfRange("scan: segment out of range");
  }
  RETURN_IF_ERROR(fault_.BeginOp());
  const SegmentState& seg = segments_[segment];
  const uint64_t first = FirstPageOf(segment);
  if (out != nullptr) {
    out->reserve(out->size() + seg.next_page);
  }
  uint64_t scanned = 0;
  for (uint64_t i = 0; i < seg.next_page; ++i) {
    const PageState& page = pages_[first + i];
    if (!page.programmed) {
      continue;
    }
    ++scanned;
    if (!PageCrcOk(page)) {
      // Torn or corrupted page: the scan read it (time is charged) but drops it, so
      // recovery and activation never see a record that fails its checksum.
      ++stats_.crc_errors;
      continue;
    }
    if (out != nullptr) {
      out->emplace_back(first + i, page.header);
    }
  }
  stats_.headers_scanned += scanned;

  return Occupy(ChannelOfSegment(segment), issue_ns, 0,
                scanned * config_.header_scan_ns_per_page);
}

StatusOr<NandOp> NandDevice::EraseSegment(uint64_t segment, uint64_t issue_ns) {
  if (segment >= config_.num_segments) {
    return OutOfRange("erase: segment out of range");
  }
  SegmentState& seg = segments_[segment];
  if (seg.bad) {
    return DataLoss("erase: segment " + std::to_string(segment) +
                    " is a grown bad block");
  }
  RETURN_IF_ERROR(fault_.BeginOp());
  if (seg.erase_count >= config_.max_erase_count) {
    // Worn out: the block can no longer hold charge reliably; retire it.
    MarkBad(segment);
    ++stats_.erase_failures;
    return ResourceExhausted("erase: segment " + std::to_string(segment) + " is worn out");
  }
  if (fault_.EraseScheduledToFail(segment, seg.erase_count + 1) || fault_.DrawEraseFail()) {
    // Grown bad block: the erase fails and the pages keep their old contents.
    MarkBad(segment);
    ++stats_.erase_failures;
    Occupy(ChannelOfSegment(segment), issue_ns, 0, config_.erase_ns);
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kFaultInjected, issue_ns, issue_ns, kFaultKindErase,
                     segment, fault_.ops());
    }
    return DataLoss("erase: injected failure in segment " + std::to_string(segment));
  }

  const uint64_t first = FirstPageOf(segment);
  for (uint64_t i = 0; i < config_.pages_per_segment; ++i) {
    PageState& page = pages_[first + i];
    page.programmed = false;
    page.data.clear();
    page.header = PageHeader{};
    page.programmed_at_ns = 0;
  }
  seg.erased = true;
  seg.next_page = 0;
  // Erase resets both wear-model terms: a fresh block carries no read disturb and
  // its pages restart their retention clocks at the next program.
  seg.read_count = 0;
  ++seg.erase_count;
  max_erase_count_ = std::max(max_erase_count_, seg.erase_count);
  ++stats_.segments_erased;

  const NandOp op = Occupy(ChannelOfSegment(segment), issue_ns, 0, config_.erase_ns);
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kNandErase, op.issue_ns, op.finish_ns, segment,
                   seg.erase_count);
  }
  return op;
}

void NandDevice::ApplyReadWear(uint64_t paddr, uint64_t now_ns) {
  SegmentState& seg = segments_[SegmentOf(paddr)];
  // The counter advances unconditionally (pure state, no RNG), so enabling the
  // knobs mid-run sees the true accumulated read traffic.
  ++seg.read_count;
  const FaultConfig& fc = fault_.config();
  if (fc.read_disturb_ppm_per_k_reads == 0 && fc.retention_ppm_per_sec == 0) {
    return;
  }
  PageState& page = pages_[paddr];
  if (!page.programmed) {
    return;
  }
  if (fc.read_disturb_ppm_per_k_reads != 0) {
    const uint64_t effective_ppm =
        fc.read_disturb_ppm_per_k_reads * (seg.read_count / 1000);
    if (fault_.DrawWear(effective_ppm)) {
      FlipStoredBit(paddr);
      ++stats_.read_disturb_corruptions;
      if (trace_ != nullptr) {
        trace_->Record(TraceEventType::kFaultInjected, now_ns, now_ns,
                       kFaultKindReadDisturb, paddr, seg.read_count);
      }
    }
  }
  if (fc.retention_ppm_per_sec != 0) {
    const uint64_t age_sec =
        (now_ns > page.programmed_at_ns ? now_ns - page.programmed_at_ns : 0) /
        1000000000ull;
    const uint64_t effective_ppm = fc.retention_ppm_per_sec * age_sec;
    if (fault_.DrawWear(effective_ppm)) {
      FlipStoredBit(paddr);
      ++stats_.retention_corruptions;
      if (trace_ != nullptr) {
        trace_->Record(TraceEventType::kFaultInjected, now_ns, now_ns,
                       kFaultKindRetention, paddr, age_sec);
      }
    }
  }
}

void NandDevice::MarkBad(uint64_t segment) {
  SegmentState& seg = segments_[segment];
  if (seg.bad) {
    return;
  }
  seg.bad = true;
  if (seg.erase_count >= max_erase_count_) {
    // The retired block may have been holding the maximum; re-derive it over the
    // usable segments only so wear-leveling never anchors on an unusable block.
    max_erase_count_ = 0;
    for (const SegmentState& other : segments_) {
      if (!other.bad) {
        max_erase_count_ = std::max(max_erase_count_, other.erase_count);
      }
    }
  }
}

bool NandDevice::PageCrcOk(const PageState& page) const {
  return page.header.crc == ComputePageCrc(page.header, page.data);
}

void NandDevice::FlipStoredBit(uint64_t paddr) {
  PageState& page = pages_[paddr];
  if (!page.data.empty()) {
    const uint64_t bit = fault_.PickBit(page.data.size() * 8);
    page.data[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  } else {
    // Header-only page: corrupt an OOB field instead.
    page.header.lba ^= uint64_t{1} << fault_.PickBit(48);
  }
}

void NandDevice::CorruptPageForTesting(uint64_t paddr) {
  IOSNAP_CHECK(paddr < config_.TotalPages());
  IOSNAP_CHECK(pages_[paddr].programmed);
  FlipStoredBit(paddr);
  ++stats_.pages_corrupted;
}

bool NandDevice::IsBadSegment(uint64_t segment) const {
  IOSNAP_CHECK(segment < config_.num_segments);
  return segments_[segment].bad;
}

bool NandDevice::PageCrcIntact(uint64_t paddr) const {
  IOSNAP_CHECK(paddr < config_.TotalPages());
  IOSNAP_CHECK(pages_[paddr].programmed);
  return PageCrcOk(pages_[paddr]);
}

bool NandDevice::IsProgrammed(uint64_t paddr) const {
  IOSNAP_CHECK(paddr < config_.TotalPages());
  return pages_[paddr].programmed;
}

const PageHeader& NandDevice::PeekHeader(uint64_t paddr) const {
  IOSNAP_CHECK(paddr < config_.TotalPages());
  IOSNAP_CHECK(pages_[paddr].programmed);
  return pages_[paddr].header;
}

std::span<const uint8_t> NandDevice::PeekPageData(uint64_t paddr) const {
  IOSNAP_CHECK(paddr < config_.TotalPages());
  IOSNAP_CHECK(pages_[paddr].programmed);
  return pages_[paddr].data;
}

uint64_t NandDevice::MaxPayloadBytes(RecordType type) const {
  return config_.page_size_bytes +
         (type == RecordType::kParity ? kParityImagePrefixBytes : 0);
}

uint64_t NandDevice::ProgrammedPages(uint64_t segment) const {
  IOSNAP_CHECK(segment < config_.num_segments);
  const uint64_t first = FirstPageOf(segment);
  uint64_t count = 0;
  for (uint64_t i = 0; i < segments_[segment].next_page; ++i) {
    if (pages_[first + i].programmed) {
      ++count;
    }
  }
  return count;
}

uint64_t NandDevice::NextFreePage(uint64_t segment) const {
  IOSNAP_CHECK(segment < config_.num_segments);
  return segments_[segment].next_page;
}

bool NandDevice::SegmentErased(uint64_t segment) const {
  IOSNAP_CHECK(segment < config_.num_segments);
  return segments_[segment].erased;
}

uint64_t NandDevice::EraseCount(uint64_t segment) const {
  IOSNAP_CHECK(segment < config_.num_segments);
  return segments_[segment].erase_count;
}

uint64_t NandDevice::SegmentReadCount(uint64_t segment) const {
  IOSNAP_CHECK(segment < config_.num_segments);
  return segments_[segment].read_count;
}

uint64_t NandDevice::PageProgrammedAtNs(uint64_t paddr) const {
  IOSNAP_CHECK(paddr < config_.TotalPages());
  return pages_[paddr].programmed_at_ns;
}

NandDevice::PageInspection NandDevice::InspectPage(uint64_t paddr) const {
  IOSNAP_CHECK(paddr < config_.TotalPages());
  const PageState& page = pages_[paddr];
  PageInspection out;
  out.programmed = page.programmed;
  if (page.programmed) {
    out.crc_ok = PageCrcOk(page);
    out.header = page.header;
  }
  return out;
}

uint64_t NandDevice::DrainTimeNs() const {
  uint64_t t = 0;
  for (uint64_t busy : bus_busy_until_) {
    t = std::max(t, busy);
  }
  for (uint64_t busy : channel_busy_until_) {
    t = std::max(t, busy);
  }
  return t;
}

double NandDevice::BusBusyFrac(uint32_t bus) const {
  IOSNAP_CHECK(bus < bus_active_ns_.size());
  const uint64_t span = DrainTimeNs();
  if (span == 0) {
    return 0.0;
  }
  return static_cast<double>(bus_active_ns_[bus]) / static_cast<double>(span);
}

}  // namespace iosnap
