#include "src/nand/parity.h"

#include <string>

#include "src/common/logging.h"

namespace iosnap {

namespace {

uint32_t GetLe32(const uint8_t* src) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(src[i]) << (8 * i);
  }
  return v;
}

uint64_t GetLe64(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(src[i]) << (8 * i);
  }
  return v;
}

void PutLe32(uint8_t* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

}  // namespace

void XorMemberImage(std::span<uint8_t> image, const PageHeader& header,
                    std::span<const uint8_t> stored_payload, uint64_t page_size_bytes) {
  IOSNAP_CHECK(image.size() == ParityImageSize(page_size_bytes));
  IOSNAP_CHECK(stored_payload.size() <= page_size_bytes);
  uint8_t prefix[kParityImagePrefixBytes];
  SerializePageHeaderFields(header, prefix);
  PutLe32(prefix + kPageHeaderCrcFieldBytes, header.crc);
  PutLe32(prefix + kPageHeaderCrcFieldBytes + 4,
          static_cast<uint32_t>(stored_payload.size()));
  for (size_t i = 0; i < kParityImagePrefixBytes; ++i) {
    image[i] ^= prefix[i];
  }
  // The payload region past stored_payload.size() stays untouched: XOR with the
  // implicit zero padding is the identity.
  for (size_t i = 0; i < stored_payload.size(); ++i) {
    image[kParityImagePrefixBytes + i] ^= stored_payload[i];
  }
}

StatusOr<DecodedMember> DecodeMemberImage(std::span<const uint8_t> image,
                                          uint64_t page_size_bytes) {
  if (image.size() != ParityImageSize(page_size_bytes)) {
    return DataLoss("parity rebuild: image size " + std::to_string(image.size()) +
                    " does not match geometry");
  }
  DecodedMember out;
  out.header.type = static_cast<RecordType>(image[0]);
  out.header.lba = GetLe64(image.data() + 1);
  out.header.epoch = GetLe32(image.data() + 9);
  out.header.seq = GetLe64(image.data() + 13);
  out.header.snap_id = GetLe32(image.data() + 21);
  out.header.trim_count = GetLe32(image.data() + 25);
  out.header.payload_len = GetLe32(image.data() + 29);
  out.header.crc = GetLe32(image.data() + kPageHeaderCrcFieldBytes);
  const uint32_t stored_len = GetLe32(image.data() + kPageHeaderCrcFieldBytes + 4);
  if (stored_len > page_size_bytes) {
    return DataLoss("parity rebuild: decoded payload length " +
                    std::to_string(stored_len) + " exceeds page size");
  }
  out.payload.assign(image.begin() + kParityImagePrefixBytes,
                     image.begin() + kParityImagePrefixBytes + stored_len);
  if (ComputePageCrc(out.header, out.payload) != out.header.crc) {
    return DataLoss("parity rebuild: reconstructed page fails CRC (second fault in "
                    "stripe?)");
  }
  return out;
}

}  // namespace iosnap
