// Geometry and timing parameters of the simulated NAND device.
//
// Defaults are calibrated so that an FTL on top of this device lands in the same performance
// regime as the paper's Fusion-io ioMemory testbed (§6): ~1.3 GB/s sequential writes,
// ~1.2 GB/s sequential reads (bus-limited), ~300 MB/s random 4K reads at queue depth 2,
// and millisecond-class segment erases.

#ifndef SRC_NAND_NAND_CONFIG_H_
#define SRC_NAND_NAND_CONFIG_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/nand/fault_injector.h"

namespace iosnap {

struct NandConfig {
  // --- Geometry ---
  uint64_t page_size_bytes = 4 * kKiB;  // One flash page == one FTL block.
  uint64_t pages_per_segment = 1024;    // Segment = erase unit (4 MiB with 4K pages).
  uint64_t num_segments = 256;          // Total capacity = 1 GiB by default.
  uint32_t num_channels = 16;           // Independently busy flash channels.

  // --- Cell timings ---
  uint64_t read_ns = UsToNs(20);     // Page read (cell sense).
  uint64_t program_ns = UsToNs(50);  // Page program.
  uint64_t erase_ns = MsToNs(2);     // Segment erase ("a few milliseconds", §5.2.3).

  // --- Transfer path ---
  // Shared bus transfer per full page (serializes channels; caps aggregate bandwidth).
  uint64_t bus_ns_per_page = UsToNs(3);
  // Number of independent transfer buses. Channels stripe across buses
  // (bus = channel % buses), so buses=1 is the classic single shared bus —
  // bit-identical to the pre-multi-bus device — while buses=N lifts the aggregate
  // transfer ceiling N-fold (until the channels themselves saturate).
  uint32_t buses = 1;
  // When true, copyback ops re-verify the source page's CRC inside the die before
  // programming the copy ("scrub on copyback"). Copyback skips the host DMA that
  // normally verifies CRCs on read, so without the scrub a corrupted page would be
  // relocated verbatim and only caught on the next host read.
  bool copyback_scrub = true;
  // Out-of-band header read during bulk scans (activation, recovery). Much cheaper than a
  // data read: the paper scans an 8 GB log in ~600 ms, i.e. ~0.3 us per page.
  uint64_t header_scan_ns_per_page = 300;

  // --- Endurance ---
  // Segments erased more than this many times report wear-out (kResourceExhausted).
  uint64_t max_erase_count = 100000;

  // When false the device keeps only page headers, not payload bytes. Benchmarks run
  // header-only to bound host memory; correctness tests run with data retained.
  bool store_data = true;

  // --- Fault injection ---
  // All rates default to zero: the device is then bit-identical to a faultless build.
  FaultConfig fault;

  uint64_t TotalPages() const { return pages_per_segment * num_segments; }
  uint64_t CapacityBytes() const { return TotalPages() * page_size_bytes; }
};

}  // namespace iosnap

#endif  // SRC_NAND_NAND_CONFIG_H_
