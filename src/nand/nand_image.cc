#include "src/nand/nand_image.h"

#include <fstream>
#include <utility>
#include <vector>

#include "src/common/serde.h"

namespace iosnap {

namespace {

// "IOSNAPIM" little-endian.
constexpr uint64_t kImageMagic = 0x4d4950414e534f49ull;
constexpr uint32_t kImageVersion = 1;

void PutHeader(std::vector<uint8_t>* out, const PageHeader& h) {
  PutU8(out, static_cast<uint8_t>(h.type));
  PutU64(out, h.lba);
  PutU32(out, h.epoch);
  PutU64(out, h.seq);
  PutU32(out, h.snap_id);
  PutU32(out, h.trim_count);
  PutU32(out, h.payload_len);
  PutU32(out, h.crc);
}

Status GetHeader(const std::vector<uint8_t>& in, size_t* offset, PageHeader* h) {
  uint8_t type = 0;
  RETURN_IF_ERROR(GetU8(in, offset, &type));
  h->type = static_cast<RecordType>(type);
  RETURN_IF_ERROR(GetU64(in, offset, &h->lba));
  RETURN_IF_ERROR(GetU32(in, offset, &h->epoch));
  RETURN_IF_ERROR(GetU64(in, offset, &h->seq));
  RETURN_IF_ERROR(GetU32(in, offset, &h->snap_id));
  RETURN_IF_ERROR(GetU32(in, offset, &h->trim_count));
  RETURN_IF_ERROR(GetU32(in, offset, &h->payload_len));
  RETURN_IF_ERROR(GetU32(in, offset, &h->crc));
  return OkStatus();
}

}  // namespace

void NandDevice::SerializeTo(std::vector<uint8_t>* out) const {
  PutU64(out, kImageMagic);
  PutU32(out, kImageVersion);
  // Geometry + timings: enough to rebuild an identical device (minus fault config).
  PutU64(out, config_.page_size_bytes);
  PutU64(out, config_.pages_per_segment);
  PutU64(out, config_.num_segments);
  PutU32(out, config_.num_channels);
  PutU64(out, config_.read_ns);
  PutU64(out, config_.program_ns);
  PutU64(out, config_.erase_ns);
  PutU64(out, config_.bus_ns_per_page);
  PutU32(out, config_.buses);
  PutU8(out, config_.copyback_scrub ? 1 : 0);
  PutU64(out, config_.header_scan_ns_per_page);
  PutU64(out, config_.max_erase_count);
  PutU8(out, config_.store_data ? 1 : 0);
  for (uint64_t s = 0; s < config_.num_segments; ++s) {
    const SegmentState& seg = segments_[s];
    PutU8(out, seg.erased ? 1 : 0);
    PutU8(out, seg.bad ? 1 : 0);
    PutU64(out, seg.next_page);
    PutU64(out, seg.erase_count);
    PutU64(out, seg.read_count);
    const uint64_t first = FirstPageOf(s);
    // Only slots below next_page can be programmed; each records its programmed
    // flag (failed programs leave holes below next_page).
    for (uint64_t i = 0; i < seg.next_page; ++i) {
      const PageState& page = pages_[first + i];
      PutU8(out, page.programmed ? 1 : 0);
      if (!page.programmed) {
        continue;
      }
      PutHeader(out, page.header);
      PutU64(out, page.programmed_at_ns);
      PutU32(out, static_cast<uint32_t>(page.data.size()));
      out->insert(out->end(), page.data.begin(), page.data.end());
    }
  }
}

StatusOr<std::unique_ptr<NandDevice>> NandDevice::Deserialize(
    const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  uint64_t magic = 0;
  RETURN_IF_ERROR(GetU64(bytes, &offset, &magic));
  if (magic != kImageMagic) {
    return InvalidArgument("nand-image: bad magic (not an ioSnap image)");
  }
  uint32_t version = 0;
  RETURN_IF_ERROR(GetU32(bytes, &offset, &version));
  if (version != kImageVersion) {
    return InvalidArgument("nand-image: unsupported version " + std::to_string(version));
  }
  NandConfig config;
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.page_size_bytes));
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.pages_per_segment));
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.num_segments));
  RETURN_IF_ERROR(GetU32(bytes, &offset, &config.num_channels));
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.read_ns));
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.program_ns));
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.erase_ns));
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.bus_ns_per_page));
  RETURN_IF_ERROR(GetU32(bytes, &offset, &config.buses));
  uint8_t flag = 0;
  RETURN_IF_ERROR(GetU8(bytes, &offset, &flag));
  config.copyback_scrub = flag != 0;
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.header_scan_ns_per_page));
  RETURN_IF_ERROR(GetU64(bytes, &offset, &config.max_erase_count));
  RETURN_IF_ERROR(GetU8(bytes, &offset, &flag));
  config.store_data = flag != 0;
  if (config.pages_per_segment == 0 || config.num_segments == 0 ||
      config.num_channels == 0 || config.buses == 0) {
    return DataLoss("nand-image: degenerate geometry");
  }
  // config.fault stays default (all rates zero): images load disarmed.
  auto device = std::make_unique<NandDevice>(config);
  for (uint64_t s = 0; s < config.num_segments; ++s) {
    SegmentState& seg = device->segments_[s];
    RETURN_IF_ERROR(GetU8(bytes, &offset, &flag));
    seg.erased = flag != 0;
    RETURN_IF_ERROR(GetU8(bytes, &offset, &flag));
    seg.bad = flag != 0;
    RETURN_IF_ERROR(GetU64(bytes, &offset, &seg.next_page));
    RETURN_IF_ERROR(GetU64(bytes, &offset, &seg.erase_count));
    RETURN_IF_ERROR(GetU64(bytes, &offset, &seg.read_count));
    if (seg.next_page > config.pages_per_segment) {
      return DataLoss("nand-image: segment next_page out of range");
    }
    const uint64_t first = device->FirstPageOf(s);
    for (uint64_t i = 0; i < seg.next_page; ++i) {
      RETURN_IF_ERROR(GetU8(bytes, &offset, &flag));
      if (flag == 0) {
        continue;
      }
      PageState& page = device->pages_[first + i];
      page.programmed = true;
      RETURN_IF_ERROR(GetHeader(bytes, &offset, &page.header));
      RETURN_IF_ERROR(GetU64(bytes, &offset, &page.programmed_at_ns));
      uint32_t len = 0;
      RETURN_IF_ERROR(GetU32(bytes, &offset, &len));
      if (offset + len > bytes.size()) {
        return DataLoss("nand-image: truncated page payload");
      }
      // Parity pages legitimately exceed the page size: their payload is the XOR
      // member image (header-prefix + payload), so bound by the per-type limit.
      if (len > device->MaxPayloadBytes(page.header.type)) {
        return DataLoss("nand-image: payload larger than a page");
      }
      page.data.assign(bytes.begin() + offset, bytes.begin() + offset + len);
      offset += len;
    }
    if (!seg.bad) {
      device->max_erase_count_ = std::max(device->max_erase_count_, seg.erase_count);
    }
  }
  if (offset != bytes.size()) {
    return DataLoss("nand-image: trailing bytes after image payload");
  }
  return device;
}

Status SaveNandImage(const NandDevice& device, const std::string& path) {
  std::vector<uint8_t> bytes;
  device.SerializeTo(&bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Internal("nand-image: cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return Internal("nand-image: short write to " + path);
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<NandDevice>> LoadNandImage(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return NotFound("nand-image: cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return DataLoss("nand-image: short read from " + path);
  }
  return NandDevice::Deserialize(bytes);
}

}  // namespace iosnap
