// At-rest NAND image files ("a flash drive in a file").
//
// An image captures everything the media remembers when powered off: geometry and
// timing config, per-segment wear state (erase/read counters, grown-bad flags), and
// every programmed page verbatim — stored header *including the stored CRC* plus the
// stored payload bytes, so latent corruption survives the round trip and remains
// detectable by the offline checker. Busy horizons and fault-injection state are
// deliberately not captured: an image is inspected on a healthy host, starting idle.
//
// Producers: iosnap_sim --image_out=PATH. Consumers: tools/iosnap_fsck.

#ifndef SRC_NAND_NAND_IMAGE_H_
#define SRC_NAND_NAND_IMAGE_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/nand/nand_device.h"

namespace iosnap {

// Serializes `device`'s media state into `path`. Overwrites an existing file.
Status SaveNandImage(const NandDevice& device, const std::string& path);

// Loads an image written by SaveNandImage. The returned device starts with all
// fault injection disarmed and idle channel/bus horizons.
StatusOr<std::unique_ptr<NandDevice>> LoadNandImage(const std::string& path);

}  // namespace iosnap

#endif  // SRC_NAND_NAND_IMAGE_H_
