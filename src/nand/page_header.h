// The out-of-band (OOB) metadata written alongside every page.
//
// ioSnap's central trick (§5.3.2) is that snapshot membership is *embedded in the log*:
// every page carries the epoch in which it was written plus a global sequence number, so
// snapshot state can be reconstructed by scanning headers alone — no per-snapshot map is
// maintained online.

#ifndef SRC_NAND_PAGE_HEADER_H_
#define SRC_NAND_PAGE_HEADER_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace iosnap {

// Record types that can appear on the log.
enum class RecordType : uint8_t {
  kInvalid = 0,
  kData,            // User block write; lba/epoch/seq valid.
  kTrim,            // TRIM note: lba range discarded; lba + trim_count valid.
  kSnapCreate,      // Snapshot-create note (§5.8): snap_id, epoch = frozen epoch,
                    // lba = id of the successor epoch.
  kSnapDelete,      // Snapshot-delete note; snap_id valid.
  kSnapActivate,    // Snapshot-activate note: snap_id, lba = id of the view's epoch.
  kSnapDeactivate,  // Snapshot-deactivate note; snap_id + epoch (view epoch) valid.
  kRollback,        // Primary rolled back to a snapshot: snap_id, epoch = the snapshot's
                    // epoch, lba = the primary's fresh epoch id.
  kTreeSummary,     // Consolidated snapshot-tree record written by the cleaner; payload
                    // holds the serialized tree. Supersedes all earlier snapshot notes
                    // (and earlier summaries), which lets the cleaner drop them instead
                    // of copying them forward forever. Grouping fields as kCheckpoint.
  kTrimSummary,     // Dense batch of trim entries (src/core/trim_summary.h) written by
                    // the cleaner in place of copying single-page trim notes 1:1.
  kCheckpoint,      // Clean-shutdown checkpoint payload page. snap_id = group id,
                    // lba = page index within the group, trim_count = group page count.
  kPad,             // Filler written to close out a segment.
  kParity,          // Intra-segment XOR parity page (src/nand/parity.h). lba = paddr of
                    // the stripe's first member slot, trim_count = member count (0 when
                    // the accumulator was poisoned by an unreadable reopen), payload =
                    // the XOR image over the members' stored bytes. Never carries user
                    // identity: recovery and activation skip it like kPad.
};

const char* RecordTypeName(RecordType type);

// Record types whose payload is stored verbatim even when NandConfig::store_data is
// false: their bytes *are* the record (checkpoints, summaries, parity images), not a
// shadow of host data the simulator can elide.
inline constexpr bool PayloadAlwaysStored(RecordType type) {
  return type == RecordType::kCheckpoint || type == RecordType::kTreeSummary ||
         type == RecordType::kTrimSummary || type == RecordType::kSnapCreate ||
         type == RecordType::kParity;
}

// Fixed-size header stored in each page's OOB area.
struct PageHeader {
  RecordType type = RecordType::kInvalid;
  uint64_t lba = 0;         // Logical block address (kData), or range start (kTrim).
  uint32_t epoch = 0;       // Epoch the record logically belongs to (survives GC moves).
  uint64_t seq = 0;         // Global write sequence number; preserved by copy-forward.
  uint32_t snap_id = 0;     // Snapshot id for snapshot notes.
  uint32_t trim_count = 0;  // Number of LBAs trimmed (kTrim).
  uint32_t payload_len = 0; // Bytes of payload stored in the page (checkpoint chaining).
  uint32_t crc = 0;         // CRC-32 of (header fields above + stored payload). Stamped
                            // by the device at program time, verified on every read and
                            // header scan, so silent corruption and torn tails surface
                            // as kDataLoss / dropped pages instead of bad data.

  bool IsSnapshotNote() const {
    return type == RecordType::kSnapCreate || type == RecordType::kSnapDelete ||
           type == RecordType::kSnapActivate || type == RecordType::kSnapDeactivate ||
           type == RecordType::kRollback;
  }
};

// Serialized OOB footprint charged by the device model (bytes per page of header traffic).
inline constexpr uint64_t kPageHeaderBytes = 44;

// Bytes of the fixed little-endian serialization of the header's logical fields
// (everything except `crc`): type(1) + lba(8) + epoch(4) + seq(8) + snap_id(4) +
// trim_count(4) + payload_len(4).
inline constexpr size_t kPageHeaderCrcFieldBytes = 33;

// Serializes the CRC-covered header fields into `out` in the fixed layout above. Both
// ComputePageCrc and the parity member image (src/nand/parity.h) are defined over this
// one serialization, so a header XOR-recovered from parity re-verifies against the
// same CRC the device stamped.
inline void SerializePageHeaderFields(const PageHeader& header,
                                      uint8_t out[kPageHeaderCrcFieldBytes]) {
  const auto le32 = [](uint8_t* dst, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      dst[i] = static_cast<uint8_t>(v >> (8 * i));
    }
  };
  const auto le64 = [](uint8_t* dst, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      dst[i] = static_cast<uint8_t>(v >> (8 * i));
    }
  };
  out[0] = static_cast<uint8_t>(header.type);
  le64(out + 1, header.lba);
  le32(out + 9, header.epoch);
  le64(out + 13, header.seq);
  le32(out + 21, header.snap_id);
  le32(out + 25, header.trim_count);
  le32(out + 29, header.payload_len);
}

// CRC-32 over the header's logical fields (everything except `crc` itself)
// extended with the payload bytes as stored on the page.
uint32_t ComputePageCrc(const PageHeader& header, std::span<const uint8_t> data);

}  // namespace iosnap

#endif  // SRC_NAND_PAGE_HEADER_H_
