#include "src/nand/fault_injector.h"

namespace iosnap {

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {
  for (const auto& [segment, ordinal] : config_.bad_block_schedule) {
    erase_fail_at_.emplace(segment, ordinal);
  }
}

Status FaultInjector::BeginOp() {
  if (crashed_ || (config_.crash_after_op != 0 && ops_ >= config_.crash_after_op)) {
    crashed_ = true;
    return Unavailable("nand: simulated power loss (device offline)");
  }
  ++ops_;
  return OkStatus();
}

bool FaultInjector::EraseScheduledToFail(uint64_t segment, uint64_t ordinal) const {
  auto it = erase_fail_at_.find(segment);
  return it != erase_fail_at_.end() && it->second == ordinal;
}

void FaultInjector::Disarm() {
  config_.program_fail_ppm = 0;
  config_.erase_fail_ppm = 0;
  config_.read_fail_ppm = 0;
  config_.corrupt_ppm = 0;
  config_.read_disturb_ppm_per_k_reads = 0;
  config_.retention_ppm_per_sec = 0;
  config_.crash_after_op = 0;
  config_.bad_block_schedule.clear();
  erase_fail_at_.clear();
  crashed_ = false;
}

}  // namespace iosnap
