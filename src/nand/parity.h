// Intra-segment XOR parity: stripe geometry and the member-image encoding.
//
// Every open segment is divided into stripes of `parity_stripe` data-page slots
// followed by one parity slot; the parity page's payload is the XOR of its members'
// *member images* (header fields + stored CRC + stored payload length + zero-padded
// payload). XOR is linear, so a single unreadable member is exactly the XOR of the
// parity image with the surviving members' images — including the member's own header,
// CRC, and payload length, which is what lets the rebuild path re-verify the
// reconstructed page against the CRC the device originally stamped before trusting it.
//
// Geometry is a pure function of the in-segment page index (no on-media stripe map):
// with stripe width s, slot i is a parity slot iff i % (s+1) == s, and additionally
// the segment's final page is always a parity slot so a closing segment never leaves
// a tail of unprotected members. A parity slot covers exactly the member slots from
// the preceding stripe boundary up to itself. Because the mapping is positional it
// survives crashes and reopens with no metadata, and fsck can re-infer the stripe
// width from the smallest parity-page index it finds on the media.
//
// Choose `parity_stripe` so (s+1) divides pages_per_segment: otherwise the final
// stripe is short (fine) or — when pages_per_segment % (s+1) == 1 — the last page is
// a parity slot with zero members, written with trim_count = 0 and an all-zero image.

#ifndef SRC_NAND_PARITY_H_
#define SRC_NAND_PARITY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/nand/page_header.h"

namespace iosnap {

// Member-image prefix: the 33 CRC-covered header field bytes, the stored CRC (4), and
// the stored payload length (4). The payload follows, zero-padded to page_size.
inline constexpr size_t kParityImagePrefixBytes = kPageHeaderCrcFieldBytes + 4 + 4;

// Bytes in a parity page's payload (uniform for every stripe, so short tail stripes
// XOR the same-sized images).
inline constexpr size_t ParityImageSize(uint64_t page_size_bytes) {
  return kParityImagePrefixBytes + static_cast<size_t>(page_size_bytes);
}

// True iff in-segment slot `index` holds parity under stripe width `stripe`.
inline constexpr bool IsParitySlot(uint64_t index, uint64_t stripe,
                                   uint64_t pages_per_segment) {
  if (stripe == 0) {
    return false;
  }
  return index % (stripe + 1) == stripe || index == pages_per_segment - 1;
}

// First member slot of the stripe containing `index` (member or parity slot alike).
inline constexpr uint64_t StripeStartIndex(uint64_t index, uint64_t stripe) {
  return index - index % (stripe + 1);
}

// The parity slot covering member slot `index`. `index` must not itself be a parity
// slot. The result is the next regular parity position, clamped to the segment's
// final page (which is always a parity slot).
inline constexpr uint64_t ParitySlotFor(uint64_t index, uint64_t stripe,
                                        uint64_t pages_per_segment) {
  const uint64_t regular = StripeStartIndex(index, stripe) + stripe;
  return regular < pages_per_segment ? regular : pages_per_segment - 1;
}

// XORs the member image of (header, stored_payload) into `image`, which must be
// ParityImageSize(page_size) bytes. `stored_payload` is the payload exactly as stored
// on the page (empty when the device elided it), at most page_size bytes.
void XorMemberImage(std::span<uint8_t> image, const PageHeader& header,
                    std::span<const uint8_t> stored_payload, uint64_t page_size_bytes);

// A member page decoded back out of a fully-XORed image (parity XOR all surviving
// members): its header (with the originally stamped CRC) and stored payload.
struct DecodedMember {
  PageHeader header;
  std::vector<uint8_t> payload;
};

// Decodes `image` into the missing member and verifies the reconstruction: the stored
// payload length must fit the page and ComputePageCrc over the decoded header +
// payload must equal the decoded stored CRC. A mismatch means a second corrupt member
// leaked into the XOR — the stripe cannot be rebuilt (kDataLoss).
StatusOr<DecodedMember> DecodeMemberImage(std::span<const uint8_t> image,
                                          uint64_t page_size_bytes);

}  // namespace iosnap

#endif  // SRC_NAND_PARITY_H_
