// Deterministic, seeded fault injection for the simulated NAND device.
//
// The fault model covers the failures real flash produces (grown bad blocks,
// program/erase failures, transient read failures, silent bit corruption) plus
// scripted whole-device crashes ("power fails after the Nth device op"), which
// is how the crash-consistency sweep places torn-write points inside batched
// programs and cleaner copy-forward.
//
// Everything is off by default: with a zero-rate config the injector only
// counts device ops, so the device behaves bit-identically to a build without
// the fault layer.

#ifndef SRC_NAND_FAULT_INJECTOR_H_
#define SRC_NAND_FAULT_INJECTOR_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace iosnap {

// Fault-injection knobs, embedded in NandConfig. Rates are parts-per-million
// per device operation; zero disables the draw entirely.
struct FaultConfig {
  uint64_t seed = 1;               // Seed for the injector's private RNG stream.
  uint32_t program_fail_ppm = 0;   // Page program fails; block becomes a grown bad block.
  uint32_t erase_fail_ppm = 0;     // Segment erase fails; block becomes a grown bad block.
  uint32_t read_fail_ppm = 0;      // Transient read failure (kUnavailable; retryable).
  uint32_t corrupt_ppm = 0;        // Silent bit flip in the stored page (caught by CRC).
  // --- Wear model (state-dependent corruption; PR 9) ---
  // Read disturb: every data read of a page rolls a corruption die whose rate is
  //   read_disturb_ppm_per_k_reads * (segment_read_count / 1000)
  // capped at 1,000,000 ppm, where segment_read_count is the number of data reads
  // the page's segment has absorbed since its last erase.
  uint32_t read_disturb_ppm_per_k_reads = 0;
  // Retention loss: every data read additionally rolls a die at
  //   retention_ppm_per_sec * page_age_seconds
  // (capped at 1,000,000 ppm) where age is virtual-clock time since the page was
  // programmed. Erase resets both terms (fresh oxide, zero read count).
  uint32_t retention_ppm_per_sec = 0;
  // 0 = never crash. Otherwise the first N device operations succeed and every
  // operation after that returns kUnavailable with no state change, modeling
  // power loss mid-workload (including mid-batch torn writes).
  uint64_t crash_after_op = 0;
  // Scripted grown-bad-block schedule: (segment, erase ordinal). The segment's
  // Nth erase (1-based) fails and retires the block, deterministically.
  std::vector<std::pair<uint64_t, uint64_t>> bad_block_schedule;

  bool AnyFaultConfigured() const {
    return program_fail_ppm != 0 || erase_fail_ppm != 0 || read_fail_ppm != 0 ||
           corrupt_ppm != 0 || read_disturb_ppm_per_k_reads != 0 ||
           retention_ppm_per_sec != 0 || crash_after_op != 0 ||
           !bad_block_schedule.empty();
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  // Crash gate + op counter. Called once per timed device operation (per page
  // for batches, which is what makes torn batches possible). Returns
  // kUnavailable once the scripted crash point has been reached; otherwise
  // counts the op and returns OK. The counter always advances so crash points
  // can be scheduled against a no-fault baseline run.
  Status BeginOp();

  bool DrawProgramFail() { return Draw(config_.program_fail_ppm); }
  bool DrawEraseFail() { return Draw(config_.erase_fail_ppm); }
  bool DrawReadFail() { return Draw(config_.read_fail_ppm); }
  bool DrawCorrupt() { return Draw(config_.corrupt_ppm); }

  // Wear-model draw at a pre-scaled effective rate (read-disturb or retention).
  // A zero rate consumes no randomness, preserving the bit-identity guarantee
  // for runs with the wear knobs off.
  bool DrawWear(uint64_t effective_ppm) {
    return effective_ppm != 0 &&
           rng_.NextBelow(1000000) < std::min<uint64_t>(effective_ppm, 1000000);
  }

  // True if the segment's erase at `ordinal` (1-based) is scheduled to fail.
  bool EraseScheduledToFail(uint64_t segment, uint64_t ordinal) const;

  // Deterministic choice of which bit to flip when corrupting a page.
  uint64_t PickBit(uint64_t bound) { return rng_.NextBelow(bound); }

  // Disables all future fault behavior (rates — including the wear-model
  // rates — schedules, crash gate) while keeping the op counter running.
  //
  // Contract: Disarm() only stops *injecting new* faults. Media damage already
  // done persists in the device:
  //   - grown bad blocks stay bad,
  //   - pages whose stored bits were flipped keep failing CRC on every
  //     subsequent read until their segment is erased.
  // This models replacing the fault scenario with a healthy power supply, e.g.
  // before crash recovery. The patrol scrubber's repair loop depends on this:
  // after Disarm() it can still *find* corrupted pages (reads keep returning
  // kDataLoss) and drop/evacuate them; disarming must never silently "heal"
  // the media. Pinned by NandFaultTest.DisarmKeepsCorruptedMedia.
  void Disarm();

  uint64_t ops() const { return ops_; }
  bool crashed() const { return crashed_; }
  const FaultConfig& config() const { return config_; }

 private:
  bool Draw(uint32_t ppm) { return ppm != 0 && rng_.NextBelow(1000000) < ppm; }

  FaultConfig config_;
  Rng rng_;
  // segment -> erase ordinal that fails (first scheduled entry per segment wins).
  std::unordered_map<uint64_t, uint64_t> erase_fail_at_;
  uint64_t ops_ = 0;
  bool crashed_ = false;
};

}  // namespace iosnap

#endif  // SRC_NAND_FAULT_INJECTOR_H_
