// In-memory NAND flash device model.
//
// This substitutes for the paper's Fusion-io ioMemory hardware. It models:
//   * segment (erase-block) geometry with erase-before-program and strictly sequential
//     page programming within a segment — the constraints that force log structuring;
//   * per-channel busy horizons plus one or more transfer buses (channels stripe
//     across NandConfig::buses; buses=1 is the classic single shared bus), on a
//     virtual clock, so that background traffic (GC, snapshot activation) visibly
//     delays foreground I/O exactly as device-bandwidth contention does in the
//     paper's Figures 9 and 10;
//   * an on-die copyback path (CopybackPage/CopybackBatch) that relocates a page
//     without crossing a bus when source and destination share a channel — the GC
//     copy-forward primitive that keeps cleaning traffic off the transfer path;
//   * wear accounting per segment;
//   * cheap bulk header scans (the OOB area) used by activation and crash recovery.
//
// The device never touches the global clock: callers pass the issue time and receive the
// completion time, then decide how to advance their own notion of time (the workload
// runner advances for foreground ops; background tasks track a private horizon).

#ifndef SRC_NAND_NAND_DEVICE_H_
#define SRC_NAND_NAND_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/nand/fault_injector.h"
#include "src/nand/nand_config.h"
#include "src/nand/page_header.h"
#include "src/obs/trace.h"

namespace iosnap {

// Completion report for a single device operation. Besides the issue/finish pair the
// device decomposes where the time went; the four span fields are filled inside
// Occupy() from the same arithmetic that produces finish_ns, so
//   chan_wait_ns + bus_wait_ns + bus_ns + cell_ns == finish_ns - issue_ns
// holds bit-exactly for every op. `bg_wait_ns` is the portion of the two wait spans
// that was spent behind background traffic (GC, activation, rate-limited bursts); it
// is always <= chan_wait_ns + bus_wait_ns. Synthetic ops (issue == finish) carry
// all-zero spans.
struct NandOp {
  uint64_t issue_ns = 0;   // When the caller issued the op.
  uint64_t finish_ns = 0;  // When the device completed it.

  uint64_t chan_wait_ns = 0;  // Queued behind earlier ops on the same channel.
  uint64_t bus_wait_ns = 0;   // Queued for the shared transfer bus.
  uint64_t bus_ns = 0;        // Actual bus transfer time.
  uint64_t cell_ns = 0;       // Cell program/read/erase/scan time.
  uint64_t bg_wait_ns = 0;    // Share of the waits caused by background occupancy.

  uint64_t LatencyNs() const { return finish_ns - issue_ns; }
  // Foreground contention share of the wait (other user ops on the channel/bus).
  uint64_t FgWaitNs() const { return chan_wait_ns + bus_wait_ns - bg_wait_ns; }
};

// Cumulative device counters.
struct NandStats {
  uint64_t pages_programmed = 0;
  uint64_t pages_read = 0;
  uint64_t headers_scanned = 0;
  uint64_t segments_erased = 0;
  uint64_t bytes_programmed = 0;
  uint64_t bytes_read = 0;
  // Fault-path counters; all stay zero when injection is disabled.
  uint64_t program_failures = 0;  // Injected program failures (block retired).
  uint64_t erase_failures = 0;    // Injected/scheduled/wear-out erase failures.
  uint64_t read_failures = 0;     // Injected transient read failures.
  uint64_t crc_errors = 0;        // Pages whose stored CRC failed verification.
  uint64_t pages_corrupted = 0;   // Pages silently corrupted at program time.
  uint64_t read_retries = 0;      // Extra attempts made by ReadPageWithRetry.
  // Copyback path (on-die GC copy-forward). Zero unless CopybackPage/Batch is used.
  uint64_t copyback_pages = 0;      // Pages relocated via CopybackPage/CopybackBatch.
  uint64_t copyback_fallbacks = 0;  // Copybacks that crossed channels (read+program).
  // Wear model (read-disturb / retention-age corruption). Zero unless the
  // read_disturb_ppm_per_k_reads / retention_ppm_per_sec knobs are live.
  uint64_t read_disturb_corruptions = 0;  // Bit flips injected by read disturb.
  uint64_t retention_corruptions = 0;     // Bit flips injected by retention loss.
};

class NandDevice {
 public:
  explicit NandDevice(const NandConfig& config);

  const NandConfig& config() const { return config_; }

  // --- Address helpers ---
  uint64_t SegmentOf(uint64_t paddr) const { return paddr / config_.pages_per_segment; }
  uint64_t PageInSegment(uint64_t paddr) const { return paddr % config_.pages_per_segment; }
  uint64_t FirstPageOf(uint64_t segment) const { return segment * config_.pages_per_segment; }

  // --- Timed operations ---

  // Programs the next free page of `segment`. Pages within a segment must be programmed in
  // order, so the device (not the caller) picks the page; the chosen physical address is
  // returned through `paddr_out`. `data` may be empty (header-only benchmarking mode).
  // Fails with kResourceExhausted if the segment is full and kFailedPrecondition if it has
  // never been erased.
  StatusOr<NandOp> ProgramPage(uint64_t segment, const PageHeader& header,
                               std::span<const uint8_t> data, uint64_t issue_ns,
                               uint64_t* paddr_out);

  // One page of a vectored program: header plus optional payload.
  struct ProgramRequest {
    PageHeader header;
    std::span<const uint8_t> data;
  };

  // Programs `requests.size()` consecutive next-free pages of `segment`, all issued at
  // `issue_ns` in one virtual-clock pass: consecutive paddrs round-robin the channels,
  // so the batch overlaps across them exactly as the same pages issued independently at
  // the same instant would. Appends one chosen paddr and one completion op per request.
  // The whole batch is validated up front, so a validation error programs nothing; an
  // injected fault or crash mid-batch, however, leaves the committed prefix behind (a
  // torn batch) — the out-vectors then hold exactly the pages that were programmed.
  // `issue_at` (empty, or one non-decreasing time per request) issues request i at
  // issue_at[i] instead of the shared `issue_ns` — the multi-queue staggered path.
  Status ProgramBatch(uint64_t segment, std::span<const ProgramRequest> requests,
                      uint64_t issue_ns, std::vector<uint64_t>* paddrs_out,
                      std::vector<NandOp>* ops_out,
                      std::span<const uint64_t> issue_at = {});

  // Reads a programmed page. `data_out` may be nullptr to skip payload copying.
  StatusOr<NandOp> ReadPage(uint64_t paddr, uint64_t issue_ns, PageHeader* header_out,
                            std::vector<uint8_t>* data_out);

  // Reads a batch of programmed pages, all issued at `issue_ns` (one virtual-clock
  // pass). Out-vectors, when non-null, receive one element per paddr in order. The
  // whole batch is validated up front; a validation error reads nothing, while an
  // injected fault mid-batch leaves the successfully read prefix in the out-vectors.
  // `issue_at` as in ProgramBatch: per-paddr issue times for the multi-queue path.
  Status ReadBatch(std::span<const uint64_t> paddrs, uint64_t issue_ns,
                   std::vector<PageHeader>* headers_out,
                   std::vector<std::vector<uint8_t>>* data_out,
                   std::vector<NandOp>* ops_out,
                   std::span<const uint64_t> issue_at = {});

  // On-die copyback: relocates the stored bytes of `src_paddr` (header + payload,
  // verbatim — the stored CRC travels with the page, so latent corruption stays
  // detectable) into the next free page of `dst_segment` without a host DMA. When
  // source and destination land on the same channel the move happens inside the die
  // and occupies only that channel (bus_ns == 0); across channels the device falls
  // back to an internal read + program that pays both bus transfers, reported as one
  // combined NandOp (the span invariant still holds bit-exactly). With
  // `config.copyback_scrub` the source CRC is re-verified first and a mismatch
  // returns kDataLoss without programming anything. Fault gates mirror
  // ReadCommit/ProgramCommit: transient read failures return kUnavailable (retryable),
  // program failures retire the destination block and return kDataLoss.
  StatusOr<NandOp> CopybackPage(uint64_t src_paddr, uint64_t dst_segment,
                                uint64_t issue_ns, uint64_t* paddr_out);

  // Copies `src_paddrs.size()` pages into consecutive next-free pages of
  // `dst_segment`, all issued at `issue_ns` in one virtual-clock pass. Validated up
  // front (a validation error copies nothing); a fault mid-batch leaves the committed
  // prefix in the out-vectors, like ProgramBatch.
  Status CopybackBatch(std::span<const uint64_t> src_paddrs, uint64_t dst_segment,
                       uint64_t issue_ns, std::vector<uint64_t>* paddrs_out,
                       std::vector<NandOp>* ops_out);

  // ReadPage with bounded retry: transient failures (kUnavailable) are retried up to
  // `max_attempts` total attempts; permanent errors (CRC mismatch -> kDataLoss,
  // structural errors) return immediately. Each retry re-charges device time.
  StatusOr<NandOp> ReadPageWithRetry(uint64_t paddr, uint64_t issue_ns,
                                     PageHeader* header_out,
                                     std::vector<uint8_t>* data_out,
                                     uint32_t max_attempts);

  // Reads just the OOB header of one page (used by targeted metadata lookups).
  StatusOr<NandOp> ReadHeader(uint64_t paddr, uint64_t issue_ns, PageHeader* header_out);

  // Bulk-scans the OOB headers of every programmed page in `segment`, appending
  // (paddr, header) pairs to `out`. This is the primitive behind snapshot activation and
  // crash recovery; it costs header_scan_ns_per_page per programmed page.
  StatusOr<NandOp> ScanSegmentHeaders(uint64_t segment, uint64_t issue_ns,
                                      std::vector<std::pair<uint64_t, PageHeader>>* out);

  // Erases a whole segment, freeing all of its pages.
  StatusOr<NandOp> EraseSegment(uint64_t segment, uint64_t issue_ns);

  // --- Untimed inspection (tests, internal bookkeeping; not part of the device timing) ---

  bool IsProgrammed(uint64_t paddr) const;
  // Header of a programmed page without charging device time. CHECK-fails on free pages.
  const PageHeader& PeekHeader(uint64_t paddr) const;
  // Stored payload bytes of a programmed page, untimed and fault-free. Models the
  // on-die data path parity accumulation taps during copyback (the bytes never cross
  // the transfer bus) and backs fsck's offline stripe reconstruction. CHECK-fails on
  // free pages. May return corrupted bytes — callers that need integrity must check
  // PageCrcIntact first.
  std::span<const uint8_t> PeekPageData(uint64_t paddr) const;
  // Number of programmed pages in a segment.
  uint64_t ProgrammedPages(uint64_t segment) const;
  // Next page index to be programmed in a segment (== pages_per_segment when full).
  uint64_t NextFreePage(uint64_t segment) const;
  bool SegmentErased(uint64_t segment) const;
  uint64_t EraseCount(uint64_t segment) const;
  // Highest per-segment erase count among *usable* segments, maintained incrementally
  // so wear checks need not rescan every segment. Grown bad blocks are excluded: their
  // frozen erase counts must not anchor wear-leveling decisions.
  uint64_t MaxEraseCount() const { return max_erase_count_; }
  // True once the segment has become a grown bad block (failed program/erase, scheduled
  // bad block, or wear-out). Bad segments refuse further programs and erases.
  bool IsBadSegment(uint64_t segment) const;
  // Untimed CRC verification of a programmed page. Error-path triage (e.g. deciding
  // whether a copyback kDataLoss blamed the source or the destination); charges no
  // device time.
  bool PageCrcIntact(uint64_t paddr) const;
  // Data reads a segment has absorbed since its last erase (read-disturb input; also
  // the patrol scrubber's refresh trigger).
  uint64_t SegmentReadCount(uint64_t segment) const;
  // Virtual-clock instant the page was programmed (retention-age input). 0 for free
  // pages.
  uint64_t PageProgrammedAtNs(uint64_t paddr) const;

  // Raw page inspection for offline checking (iosnap_fsck). Unlike the timed read
  // path and ScanSegmentHeaders — which silently drop CRC-failing pages — this
  // surfaces the stored header of *every* programmed page together with its CRC
  // verdict, charges no device time, and draws no faults.
  struct PageInspection {
    bool programmed = false;
    bool crc_ok = false;
    PageHeader header;  // Raw stored header (may itself be the corrupted part).
  };
  PageInspection InspectPage(uint64_t paddr) const;

  const NandStats& stats() const { return stats_; }

  // --- Fault injection ---

  const FaultInjector& fault() const { return fault_; }
  // Disables all future fault behavior while preserving media damage already done
  // (bad blocks, corrupted pages) and the running op counter. Crash-recovery harnesses
  // call this between the simulated power loss and reopening the FTL.
  void ClearFaults() { fault_.Disarm(); }
  // Flips one bit of a programmed page (payload if stored, header otherwise) so its
  // CRC no longer verifies. Test hook for torn-tail / corruption scenarios.
  void CorruptPageForTesting(uint64_t paddr);

  // Optional flight-recorder hook (erase events); nullptr (the default) disables it.
  void SetTraceRecorder(TraceRecorder* trace) { trace_ = trace; }

  // --- Image serialization (offline inspection; see src/nand/nand_image.h) ---

  // Serializes the at-rest media state: geometry/timing config, per-segment wear
  // counters, and every programmed page with its stored header (including the stored
  // CRC, so latent corruption survives a save/load round trip) and payload. Busy
  // horizons are not captured — an image is powered-off media.
  void SerializeTo(std::vector<uint8_t>* out) const;
  // Rebuilds a device from SerializeTo() bytes. The loaded device has all fault
  // injection disarmed: images are inspected and repaired on a healthy host, and
  // latent damage is already baked into the stored bits.
  static StatusOr<std::unique_ptr<NandDevice>> Deserialize(
      const std::vector<uint8_t>& bytes);

  // --- Background-op classification (latency attribution) ---
  //
  // While a BackgroundScope is alive, every op the device serves is classified as
  // background traffic: its occupancy extends per-channel and bus *background* busy
  // horizons (shadow copies of the real horizons — they never influence timing).
  // Foreground ops later split their waits against those horizons into a
  // GC/activation-interference share (NandOp::bg_wait_ns). Pure bookkeeping: issue
  // and finish times are identical whether or not any scope was ever opened.
  class BackgroundScope {
   public:
    explicit BackgroundScope(NandDevice* device) : device_(device) {
      if (device_ != nullptr) ++device_->background_depth_;
    }
    ~BackgroundScope() {
      if (device_ != nullptr) --device_->background_depth_;
    }
    BackgroundScope(const BackgroundScope&) = delete;
    BackgroundScope& operator=(const BackgroundScope&) = delete;

   private:
    NandDevice* device_;
  };
  bool InBackgroundScope() const { return background_depth_ > 0; }

  // Earliest time at which the whole device is idle (max over channels and bus). Workload
  // drivers use this to convert a stream of async writes into sustained bandwidth.
  uint64_t DrainTimeNs() const;

  // --- Per-bus utilization (metrics) ---

  uint32_t NumBuses() const { return static_cast<uint32_t>(bus_busy_until_.size()); }
  // Cumulative transfer time carried by one bus over the whole run.
  uint64_t BusActiveNs(uint32_t bus) const { return bus_active_ns_[bus]; }
  // Fraction of the run (up to DrainTimeNs) the bus spent transferring; the quantity
  // whose saturation at ~1.0 marks the transfer-path throughput ceiling.
  double BusBusyFrac(uint32_t bus) const;

 private:
  struct PageState {
    bool programmed = false;
    PageHeader header;
    std::vector<uint8_t> data;
    uint64_t programmed_at_ns = 0;  // Virtual clock at program time (retention age).
  };

  struct SegmentState {
    bool erased = false;          // True after first erase; programming requires it.
    bool bad = false;             // Grown bad block: no further programs or erases.
    uint64_t next_page = 0;       // Next in-order page to program.
    uint64_t erase_count = 0;
    uint64_t read_count = 0;      // Data reads since last erase (read-disturb input).
  };

  uint32_t ChannelOfPage(uint64_t paddr) const {
    return static_cast<uint32_t>(paddr % config_.num_channels);
  }
  uint32_t ChannelOfSegment(uint64_t segment) const {
    return static_cast<uint32_t>(segment % config_.num_channels);
  }
  // Channels stripe across the transfer buses.
  uint32_t BusOfChannel(uint32_t channel) const {
    return channel % static_cast<uint32_t>(bus_busy_until_.size());
  }

  // Serializes an op through a channel and (optionally) that channel's transfer bus.
  // Returns the completed NandOp with its span decomposition filled in (see NandOp).
  NandOp Occupy(uint32_t channel, uint64_t issue_ns, uint64_t bus_ns, uint64_t cell_ns);

  // Post-validation single-page bodies shared by the scalar and batch entry points.
  // These run the fault gates: crash check, injected program/read failures, silent
  // corruption, and CRC verification on reads.
  StatusOr<NandOp> ProgramCommit(uint64_t segment, const PageHeader& header,
                                 std::span<const uint8_t> data, uint64_t issue_ns,
                                 uint64_t* paddr_out);
  StatusOr<NandOp> ReadCommit(uint64_t paddr, uint64_t issue_ns, PageHeader* header_out,
                              std::vector<uint8_t>* data_out);
  StatusOr<NandOp> CopybackCommit(uint64_t src_paddr, uint64_t dst_segment,
                                  uint64_t issue_ns, uint64_t* paddr_out);

  // Wear model: counts a data read against `paddr`'s segment and, when the
  // read-disturb / retention knobs are live, rolls their corruption dice (rates
  // scale with the segment's read count and the page's age at `now_ns`). Called
  // from the data-read paths only — header scans never disturb the media. With
  // both knobs zero this touches no RNG state, preserving bit-identity.
  void ApplyReadWear(uint64_t paddr, uint64_t now_ns);

  // Marks a segment as a grown bad block and re-derives MaxEraseCount if the segment
  // was holding the maximum.
  void MarkBad(uint64_t segment);
  void FlipStoredBit(uint64_t paddr);
  bool PageCrcOk(const PageState& page) const;
  // Payload-size ceiling per record type: parity pages carry the member-image prefix
  // on top of a full page of XORed payload bytes.
  uint64_t MaxPayloadBytes(RecordType type) const;

  NandConfig config_;
  FaultInjector fault_;
  std::vector<PageState> pages_;
  std::vector<SegmentState> segments_;
  std::vector<uint64_t> channel_busy_until_;
  // One busy horizon per transfer bus (config.buses entries; buses=1 reproduces the
  // single shared bus bit-identically).
  std::vector<uint64_t> bus_busy_until_;
  // Shadow horizons advanced only by ops served under a BackgroundScope; read-only
  // inputs to the bg_wait_ns attribution of foreground ops. Never affect timing.
  std::vector<uint64_t> channel_bg_until_;
  std::vector<uint64_t> bus_bg_until_;
  // Cumulative transfer time per bus; feeds the nand.bus_busy_frac gauges.
  std::vector<uint64_t> bus_active_ns_;
  uint64_t background_depth_ = 0;
  uint64_t max_erase_count_ = 0;
  NandStats stats_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace iosnap

#endif  // SRC_NAND_NAND_DEVICE_H_
