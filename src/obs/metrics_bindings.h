// Bindings that register the FTL's cumulative stat structs into a MetricsRegistry.
//
// Every field of FtlStats, NandStats, and ValidityStats is registered by const pointer
// under a dotted name ("ftl.user_writes", "nand.pages_read", ...). tests/obs checks the
// field counts, so a newly added stat field that is not bound here fails the build's
// test suite rather than silently vanishing from metric dumps.

#ifndef SRC_OBS_METRICS_BINDINGS_H_
#define SRC_OBS_METRICS_BINDINGS_H_

#include "src/core/ftl_stats.h"
#include "src/core/io_queue.h"
#include "src/ftl/log_manager.h"
#include "src/ftl/validity_map.h"
#include "src/nand/nand_device.h"
#include "src/obs/metrics.h"

namespace iosnap {

// Number of fields each binding registers; keep in sync with the structs (test-checked).
inline constexpr size_t kFtlStatsMetricCount = 41;
inline constexpr size_t kNandStatsMetricCount = 16;
inline constexpr size_t kValidityStatsMetricCount = 7;
inline constexpr size_t kLogStatsMetricCount = 3;
inline constexpr size_t kIoQueueStatsMetricCount = 9;

inline void RegisterFtlStats(MetricsRegistry* registry, const FtlStats& s,
                             const std::string& prefix = "ftl.") {
  const auto add = [&](const char* name, const uint64_t* v) {
    registry->RegisterCounter(prefix + name, v);
  };
  add("user_writes", &s.user_writes);
  add("user_reads", &s.user_reads);
  add("user_trims", &s.user_trims);
  add("user_bytes_written", &s.user_bytes_written);
  add("user_bytes_read", &s.user_bytes_read);
  add("snapshots_created", &s.snapshots_created);
  add("snapshots_deleted", &s.snapshots_deleted);
  add("activations", &s.activations);
  add("deactivations", &s.deactivations);
  add("rollbacks", &s.rollbacks);
  add("gc_segments_cleaned", &s.gc_segments_cleaned);
  add("gc_pages_copied", &s.gc_pages_copied);
  add("gc_notes_copied", &s.gc_notes_copied);
  add("gc_notes_dropped", &s.gc_notes_dropped);
  add("gc_summaries_written", &s.gc_summaries_written);
  add("gc_inline_stalls", &s.gc_inline_stalls);
  add("gc_wear_level_cleans", &s.gc_wear_level_cleans);
  add("gc_victim_selections", &s.gc_victim_selections);
  add("gc_merge_host_ns", &s.gc_merge_host_ns);
  add("gc_total_host_ns", &s.gc_total_host_ns);
  add("gc_device_busy_ns", &s.gc_device_busy_ns);
  add("validity_cow_events", &s.validity_cow_events);
  add("validity_cow_bytes", &s.validity_cow_bytes);
  add("activation_segments_scanned", &s.activation_segments_scanned);
  add("activation_segments_skipped", &s.activation_segments_skipped);
  add("activation_entries", &s.activation_entries);
  add("total_pages_programmed", &s.total_pages_programmed);
  add("user_read_errors", &s.user_read_errors);
  add("gc_pages_lost", &s.gc_pages_lost);
  add("pages_rebuilt", &s.pages_rebuilt);
  add("pages_rebuild_failed", &s.pages_rebuild_failed);
  add("pages_lost_forever", &s.pages_lost_forever);
  add("pages_superseded", &s.pages_superseded);
  add("patrol_sweeps", &s.patrol_sweeps);
  add("patrol_pages_scanned", &s.patrol_pages_scanned);
  add("patrol_pages_rewritten", &s.patrol_pages_rewritten);
  add("patrol_pages_dropped", &s.patrol_pages_dropped);
  add("patrol_segments_evacuated", &s.patrol_segments_evacuated);
  add("degraded_entries", &s.degraded_entries);
  add("degraded_exits", &s.degraded_exits);
  add("degraded_writes_rejected", &s.degraded_writes_rejected);
}

inline void RegisterNandStats(MetricsRegistry* registry, const NandStats& s,
                              const std::string& prefix = "nand.") {
  const auto add = [&](const char* name, const uint64_t* v) {
    registry->RegisterCounter(prefix + name, v);
  };
  add("pages_programmed", &s.pages_programmed);
  add("pages_read", &s.pages_read);
  add("headers_scanned", &s.headers_scanned);
  add("segments_erased", &s.segments_erased);
  add("bytes_programmed", &s.bytes_programmed);
  add("bytes_read", &s.bytes_read);
  add("program_failures", &s.program_failures);
  add("erase_failures", &s.erase_failures);
  add("read_failures", &s.read_failures);
  add("crc_errors", &s.crc_errors);
  add("pages_corrupted", &s.pages_corrupted);
  add("read_retries", &s.read_retries);
  add("copyback_pages", &s.copyback_pages);
  add("copyback_fallbacks", &s.copyback_fallbacks);
  add("read_disturb_corruptions", &s.read_disturb_corruptions);
  add("retention_corruptions", &s.retention_corruptions);
}

// Per-bus utilization gauges: "nand.bus_busy_frac.<i>" for each transfer bus. These
// need the device itself (busy horizons live outside NandStats), so they are a
// separate registration from RegisterNandStats; `device` must outlive the registry.
inline void RegisterNandBusGauges(MetricsRegistry* registry, const NandDevice& device,
                                  const std::string& prefix = "nand.") {
  for (uint32_t bus = 0; bus < device.NumBuses(); ++bus) {
    const NandDevice* d = &device;
    registry->RegisterGauge(prefix + "bus_busy_frac." + std::to_string(bus),
                            [d, bus] { return d->BusBusyFrac(bus); });
  }
}

inline void RegisterValidityStats(MetricsRegistry* registry, const ValidityStats& s,
                                  const std::string& prefix = "validity.") {
  const auto add = [&](const char* name, const uint64_t* v) {
    registry->RegisterCounter(prefix + name, v);
  };
  add("cow_chunk_copies", &s.cow_chunk_copies);
  add("cow_bytes_copied", &s.cow_bytes_copied);
  add("chunk_allocations", &s.chunk_allocations);
  add("merge_chunk_visits", &s.merge_chunk_visits);
  add("merge_plane_rebuilds", &s.merge_plane_rebuilds);
  add("merge_plane_hits", &s.merge_plane_hits);
  add("range_recounts", &s.range_recounts);
}

inline void RegisterLogStats(MetricsRegistry* registry, const LogStats& s,
                             const std::string& prefix = "log.") {
  const auto add = [&](const char* name, const uint64_t* v) {
    registry->RegisterCounter(prefix + name, v);
  };
  add("append_reroutes", &s.append_reroutes);
  add("segments_retired", &s.segments_retired);
  add("parity_pages_written", &s.parity_pages_written);
}

// `inflight_ops` registers as a gauge (it rises and falls); the rest as counters.
inline void RegisterIoQueueStats(MetricsRegistry* registry, const IoQueueStats& s,
                                 const std::string& prefix = "io_queue.") {
  const auto add = [&](const char* name, const uint64_t* v) {
    registry->RegisterCounter(prefix + name, v);
  };
  add("submissions", &s.submissions);
  add("ops_submitted", &s.ops_submitted);
  add("ops_completed", &s.ops_completed);
  add("ops_failed", &s.ops_failed);
  add("flushes", &s.flushes);
  add("merged_runs", &s.merged_runs);
  add("queue_full_rejections", &s.queue_full_rejections);
  add("max_inflight_ops", &s.max_inflight_ops);
  const uint64_t* inflight = &s.inflight_ops;
  registry->RegisterGauge(prefix + "inflight_ops",
                          [inflight] { return static_cast<double>(*inflight); });
}

}  // namespace iosnap

#endif  // SRC_OBS_METRICS_BINDINGS_H_
