// Flight-recorder tracing for the FTL: a bounded ring buffer of typed events stamped
// with the virtual clock.
//
// Every paper figure is a story about *when* foreground I/O, snapshot machinery, and the
// cleaner interfere; cumulative counters cannot tell which GC victim or CoW chunk copy
// caused a latency spike. The TraceRecorder captures per-event visibility at near-zero
// cost:
//
//   * Producers hold a `TraceRecorder*` that defaults to nullptr; every emission site is
//     guarded by a single pointer test, so an untraced run executes no tracing code
//     beyond that branch. Tracing never changes simulated behaviour: events carry
//     virtual-clock timestamps that the instrumented code already computed, so latency
//     columns are bit-identical with tracing on or off.
//   * Events are fixed-size PODs in a preallocated ring; recording is a bump + store.
//     When the ring wraps, the oldest events are overwritten (dropped() reports how
//     many) — the recorder keeps the most recent window, like a flight recorder.
//
// Exporters (trace_export.h) render the ring as Chrome trace-event JSON (Perfetto /
// chrome://tracing, virtual ns shown as µs) or CSV.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iosnap {

// One enumerator per instrumented site. Arg meanings are documented here and named in
// the Chrome exporter (trace_export.cc must stay in sync).
enum class TraceEventType : uint8_t {
  // Foreground I/O (args: lba, view_id / trim count).
  kUserWrite = 0,
  kUserRead,
  kUserTrim,   // args: lba, count
  kUserBatch,  // One per vectored submission (WriteV/ReadV/TrimV). args: batch_ops, view_id
  // Snapshot operations (args: snap_id, epoch).
  kSnapCreate,      // args: snap_id, frozen_epoch
  kSnapDelete,      // args: snap_id, epoch
  kSnapRollback,    // args: snap_id, new_epoch
  kSnapDeactivate,  // args: snap_id, view_id
  // Activation (rate-limited snapshot map reconstruction).
  kActivateBegin,    // args: snap_id, view_id
  kActivationBurst,  // args: view_id, segments_scanned_so_far
  kActivateEnd,      // args: view_id, map_entries
  // Segment cleaning.
  kGcVictimSelect,  // args: segment, merged_valid_pages, free_segments
  kGcCopyForward,   // args: lba, old_paddr, new_paddr
  kGcSegmentErase,  // args: segment
  kGcInlineStall,   // args: stall_round
  // Validity-bitmap copy-on-write (Fig 7 spikes). args: chunk_index, bytes, epoch.
  kValidityCowChunk,
  // Rate limiting: a mandatory sleep window after a background burst. args: sleep_ns.
  kRateLimiterSleep,
  // NAND device. args: segment, erase_count.
  kNandErase,
  // Lifecycle phases. args: pages / from_checkpoint, map_entries.
  kCheckpointWrite,
  kRecoveryRun,
  // Fault injection & degraded-mode handling.
  kFaultInjected,    // args: kind (0=program 1=erase 2=read 3=corrupt 4=read-disturb
                     //            5=retention), where, op_index / wear input
  kSegmentRetired,   // args: segment, erase_count
  kReadRetry,        // args: paddr, attempt
  // Multi-queue submission layer (src/core/io_queue).
  kQueueSubmit,      // args: queue, ops, submission_id
  kQueueFlush,       // args: pending_ops, merged_runs
  kQueueComplete,    // args: queue, op_id, lba
  // On-die copyback relocation (GC copy-forward off the bus).
  kNandCopyback,     // args: src_paddr, dst_paddr, on_die (1 = same-channel, 0 = fallback)
  // Patrol scrubber (media reliability).
  kPatrolRewrite,    // args: lba, old_paddr, new_paddr
  kPatrolDrop,       // args: lba, paddr (unreadable live page expunged)
  // Degraded read-only mode transitions.
  kDegradedEnter,    // args: free_segments, segments_retired
  kDegradedExit,     // args: free_segments, segments_retired
  // Parity stripes & rebuild (src/nand/parity.h).
  kParityWrite,      // args: segment, paddr, members (0 = poisoned accumulator)
  kPageRebuilt,      // args: lba, old_paddr, new_paddr
  kRebuildFailed,    // args: lba, paddr (unrebuildable: double fault / parity off-media)

  kNumTypes,  // Sentinel; keep last.
};

inline constexpr size_t kNumTraceEventTypes =
    static_cast<size_t>(TraceEventType::kNumTypes);

// Fixed-size record. `start_ns == end_ns` renders as an instant event; otherwise as a
// duration span. The three args are typed per event (see TraceEventType).
struct TraceEvent {
  TraceEventType type = TraceEventType::kUserWrite;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 18;  // 256Ki events (~12 MiB).

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void Record(TraceEventType type, uint64_t start_ns, uint64_t end_ns, uint64_t arg0 = 0,
              uint64_t arg1 = 0, uint64_t arg2 = 0) {
    if (!enabled_) {
      return;
    }
    // Branch-wrapped write index: a 64-bit modulo here costs more than the stores.
    TraceEvent& slot = ring_[head_];
    slot.type = type;
    slot.start_ns = start_ns;
    slot.end_ns = end_ns;
    slot.arg0 = arg0;
    slot.arg1 = arg1;
    slot.arg2 = arg2;
    if (++head_ == ring_.size()) {
      head_ = 0;
    }
    ++next_;
  }

  size_t capacity() const { return ring_.size(); }
  // Events currently held (<= capacity).
  size_t size() const { return next_ < ring_.size() ? next_ : ring_.size(); }
  // Events ever recorded, including overwritten ones.
  uint64_t total_recorded() const { return next_; }
  // Events lost to ring wraparound.
  uint64_t dropped() const { return next_ - size(); }

  // The retained events, oldest first (unwraps the ring).
  std::vector<TraceEvent> Events() const;

  // Count of retained events of one type.
  size_t CountType(TraceEventType type) const;

  void Clear() {
    next_ = 0;
    head_ = 0;
  }

 private:
  std::vector<TraceEvent> ring_;
  uint64_t next_ = 0;  // Total events recorded.
  size_t head_ = 0;    // Write slot; always next_ % capacity.
  bool enabled_ = true;
};

// RAII guard that pauses recording for a scope and restores the prior state on exit.
// Benches use it around prefill phases: prefill emits millions of events that only
// rotate out of the ring before anything interesting happens, and the streaming
// stores evict the simulator's working set from cache for no observability gain.
class TracePauseGuard {
 public:
  explicit TracePauseGuard(TraceRecorder* trace) : trace_(trace) {
    if (trace_ != nullptr) {
      was_enabled_ = trace_->enabled();
      trace_->set_enabled(false);
    }
  }
  ~TracePauseGuard() {
    if (trace_ != nullptr) {
      trace_->set_enabled(was_enabled_);
    }
  }
  TracePauseGuard(const TracePauseGuard&) = delete;
  TracePauseGuard& operator=(const TracePauseGuard&) = delete;

 private:
  TraceRecorder* trace_;
  bool was_enabled_ = false;
};

}  // namespace iosnap

#endif  // SRC_OBS_TRACE_H_
