#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace iosnap {

namespace {

// Doubles rendered with enough digits to round-trip, but without exponent noise for the
// common integral-valued cases.
std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

void MetricsRegistry::CheckNameFree(const std::string& name) const {
  for (const Counter& c : counters_) {
    IOSNAP_CHECK(c.name != name);
  }
  for (const Gauge& g : gauges_) {
    IOSNAP_CHECK(g.name != name);
  }
  for (const Histogram& h : histograms_) {
    IOSNAP_CHECK(h.name != name);
  }
}

void MetricsRegistry::RegisterCounter(const std::string& name, const uint64_t* value) {
  IOSNAP_CHECK(value != nullptr);
  CheckNameFree(name);
  counters_.push_back({name, value});
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    std::function<double()> sample) {
  IOSNAP_CHECK(sample != nullptr);
  CheckNameFree(name);
  gauges_.push_back({name, std::move(sample)});
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const LatencyHistogram* hist) {
  IOSNAP_CHECK(hist != nullptr);
  CheckNameFree(name);
  histograms_.push_back({name, hist});
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 7);
  for (const Counter& c : counters_) {
    Sample s;
    s.name = c.name;
    s.u64 = *c.value;
    s.value = static_cast<double>(*c.value);
    s.is_integer = true;
    out.push_back(std::move(s));
  }
  for (const Gauge& g : gauges_) {
    Sample s;
    s.name = g.name;
    s.value = g.sample();
    out.push_back(std::move(s));
  }
  for (const Histogram& h : histograms_) {
    const auto integer = [&](const char* suffix, uint64_t v) {
      Sample s;
      s.name = h.name + suffix;
      s.u64 = v;
      s.value = static_cast<double>(v);
      s.is_integer = true;
      out.push_back(std::move(s));
    };
    integer(".count", h.hist->count());
    Sample mean;
    mean.name = h.name + ".mean_ns";
    mean.value = h.hist->MeanNs();
    out.push_back(std::move(mean));
    integer(".p50_ns", h.hist->PercentileNs(50));
    integer(".p90_ns", h.hist->PercentileNs(90));
    integer(".p99_ns", h.hist->PercentileNs(99));
    integer(".p999_ns", h.hist->PercentileNs(99.9));
    integer(".max_ns", h.hist->MaxNs());
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Sample& s : Snapshot()) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\"" << s.name << "\":";
    if (s.is_integer) {
      os << s.u64;
    } else {
      os << FormatDouble(s.value);
    }
  }
  os << "}";
  return os.str();
}

std::string MetricsRegistry::ToCsv() const {
  std::ostringstream os;
  os << "metric,value\n";
  for (const Sample& s : Snapshot()) {
    os << s.name << ",";
    if (s.is_integer) {
      os << s.u64;
    } else {
      os << FormatDouble(s.value);
    }
    os << "\n";
  }
  return os.str();
}

bool MetricsRegistry::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    out << ToCsv();
  } else {
    out << ToJson();
  }
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace iosnap
