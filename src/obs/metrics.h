// Unified metrics registry: named counters, gauges, and latency histograms with
// snapshot + JSON/CSV exposition.
//
// The FTL's cumulative structs (FtlStats, NandStats, ValidityStats) register their
// fields by const pointer (see metrics_bindings.h), so the registry adds no cost to hot
// paths — values are read only when a snapshot is taken. Tools and benches dump every
// registered metric uniformly instead of hand-formatting subsets.
//
// Names use dotted components ("ftl.gc_pages_copied", "nand.segments_erased");
// histograms flatten into ".count", ".mean_ns", ".p50_ns", ".p90_ns", ".p99_ns",
// ".p999_ns", ".max_ns" sub-metrics at snapshot time.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace iosnap {

class MetricsRegistry {
 public:
  // Monotonic uint64 counter, read through the pointer at snapshot time. The pointee
  // must outlive the registry (or the registry must be dropped/rebuilt first).
  void RegisterCounter(const std::string& name, const uint64_t* value);

  // Arbitrary sampled value.
  void RegisterGauge(const std::string& name, std::function<double()> sample);

  // Latency histogram; flattened into percentile sub-metrics at snapshot time.
  void RegisterHistogram(const std::string& name, const LatencyHistogram* hist);

  size_t MetricCount() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // One sampled value. Counters keep full 64-bit precision in `u64`; `value` is the
  // double view used for gauges and rendering.
  struct Sample {
    std::string name;
    double value = 0.0;
    uint64_t u64 = 0;
    bool is_integer = false;
  };

  // Samples every metric now, in registration order (histograms flattened).
  std::vector<Sample> Snapshot() const;

  // {"name": value, ...} — one flat, deterministic JSON object.
  std::string ToJson() const;

  // "metric,value" rows with a header line.
  std::string ToCsv() const;

  // Writes to `path`, format chosen by extension (".csv" -> CSV, else JSON). Returns
  // false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  struct Counter {
    std::string name;
    const uint64_t* value;
  };
  struct Gauge {
    std::string name;
    std::function<double()> sample;
  };
  struct Histogram {
    std::string name;
    const LatencyHistogram* hist;
  };

  void CheckNameFree(const std::string& name) const;

  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
};

}  // namespace iosnap

#endif  // SRC_OBS_METRICS_H_
