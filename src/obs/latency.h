// Per-op latency attribution: span records and histograms.
//
// Every figure in the paper is ultimately a question of *where* a foreground op's
// latency went when snapshot machinery and the cleaner interfere. The attribution
// layer decomposes each completed user op's end-to-end virtual-clock latency into
// seven named spans:
//
//   queue_wait  — foreground contention: queued behind other user ops on the op's
//                 NAND channel or the shared transfer bus.
//   gc_wait     — background interference: the share of that wait spent behind GC,
//                 snapshot-activation scans, or rate-limited background bursts
//                 (NandDevice background horizons, see NandOp::bg_wait_ns).
//   bus         — actual bus transfer time.
//   cell        — cell program/read time (plus scan/erase time for metadata ops).
//   map         — host-side forward-map time (ShardedMap/B+tree lookup + update).
//   cow         — host-side validity-bitmap copy-on-write time.
//   host_other  — remaining host CPU charge (trim notes, bitmap flips, ...).
//   rebuild     — time spent XOR-reconstructing an unreadable page from its parity
//                 stripe (surviving-member reads + the corrective re-append). Zero
//                 unless FtlConfig::parity_stripe > 0 and the op hit an
//                 uncorrectable page; when set it replaces the failed op's device
//                 spans (the synthetic NandOp carries none).
//
// Exactness guarantee: the spans are computed from the same arithmetic that produced
// the op's completion time — the device fills the first four inside Occupy(), the FTL
// fills the host three from the terms it sums into host_ns — so for every record
//
//   sum(spans) == complete_ns - issue_ns == IoResult::LatencyNs()
//
// holds bit-exactly, not approximately. And like TraceRecorder, the attributor hangs
// off a pointer defaulting to nullptr: with attribution off no span is ever read and
// runs are bit-identical; with it on, only already-computed values are copied, so
// timing is unchanged either way.

#ifndef SRC_OBS_LATENCY_H_
#define SRC_OBS_LATENCY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/metrics.h"

namespace iosnap {

enum class LatencySpan : uint8_t {
  kQueueWait = 0,
  kGcWait,
  kBus,
  kCell,
  kMap,
  kCow,
  kHostOther,
  kRebuild,

  kNumSpans,  // Sentinel; keep last.
};

inline constexpr size_t kNumLatencySpans = static_cast<size_t>(LatencySpan::kNumSpans);

// Short snake_case span name ("queue_wait", ...) used in metric names and CSV columns.
const char* LatencySpanName(LatencySpan span);

enum class LatencyOpKind : uint8_t {
  kWrite = 0,
  kRead,
  kTrim,
  // GC copy-forward relocations done via on-die copyback (recorded by the cleaner
  // only when FtlConfig::gc_copyback is on; default runs carry no such records).
  kGcCopy,

  kNumKinds,  // Sentinel; keep last.
};

inline constexpr size_t kNumLatencyOpKinds =
    static_cast<size_t>(LatencyOpKind::kNumKinds);

const char* LatencyOpKindName(LatencyOpKind kind);

// One op's span vector. Indexable by LatencySpan.
struct LatencySpans {
  uint64_t ns[kNumLatencySpans] = {};

  uint64_t& operator[](LatencySpan span) { return ns[static_cast<size_t>(span)]; }
  uint64_t operator[](LatencySpan span) const { return ns[static_cast<size_t>(span)]; }

  uint64_t TotalNs() const {
    uint64_t total = 0;
    for (uint64_t v : ns) {
      total += v;
    }
    return total;
  }
};

// One completed op with its breakdown. `seq` is a per-attributor monotonic id;
// (lba, issue_ns, complete_ns) is the join key against kQueueComplete trace events,
// which carry the op's queue and op_id for per-queue analysis.
struct SpanRecord {
  uint64_t seq = 0;
  LatencyOpKind kind = LatencyOpKind::kWrite;
  uint64_t lba = 0;
  uint64_t issue_ns = 0;
  uint64_t complete_ns = 0;  // finish_ns + host_ns, i.e. IoResult::CompletionNs().
  LatencySpans spans;

  uint64_t TotalNs() const { return complete_ns - issue_ns; }
};

// Sink for completed-op breakdowns: per-span and per-kind histograms, per-span running
// totals, and a bounded flight-recorder ring of full SpanRecords for CSV export.
class LatencyAttributor {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 18;  // 256Ki records (~22 MiB).

  // `sample_stride` thins the recording to one op in every `stride` at the call site
  // (see Tick()): per-record span sums stay bit-exact, only coverage is sampled.
  // Stride 1 (the default) records every completed op.
  explicit LatencyAttributor(size_t record_capacity = kDefaultCapacity,
                             uint64_t sample_stride = 1);

  // Call-site sampling gate: returns true when the next completed op should be
  // recorded. Producers call this BEFORE assembling the span vector so a skipped op
  // costs one predictable branch, not a Record. At stride 1 this is always true.
  bool Tick() {
    if (++tick_ < stride_) {
      return false;
    }
    tick_ = 0;
    return true;
  }

  uint64_t stride() const { return stride_; }

  void Record(LatencyOpKind kind, uint64_t lba, uint64_t issue_ns, uint64_t complete_ns,
              const LatencySpans& spans);

  uint64_t ops() const { return next_; }
  size_t size() const { return next_ < ring_.size() ? next_ : ring_.size(); }
  uint64_t dropped() const { return next_ - size(); }

  const LatencyHistogram& SpanHistogram(LatencySpan span) const {
    return span_hist_[static_cast<size_t>(span)];
  }
  const LatencyHistogram& EndToEndHistogram(LatencyOpKind kind) const {
    return e2e_hist_[static_cast<size_t>(kind)];
  }
  // Running sum of one span over every recorded op (not just the retained ring).
  uint64_t SpanTotalNs(LatencySpan span) const {
    return span_total_ns_[static_cast<size_t>(span)];
  }

  // The retained records, oldest first (unwraps the ring).
  std::vector<SpanRecord> Records() const;

  // Registers the histograms and span totals under `prefix`:
  //   <prefix>span.<name>        (histogram -> .count/.mean_ns/.p50/.p90/.p99/.p999/.max)
  //   <prefix>span.<name>.total_ns (counter)
  //   <prefix>e2e.<kind>         (histogram)
  //   <prefix>ops / <prefix>records_dropped (counters)
  // The attributor must outlive the registry snapshots.
  void RegisterMetrics(MetricsRegistry* registry, const std::string& prefix = "lat.");

  // CSV with one row per retained record:
  //   seq,kind,lba,issue_ns,complete_ns,total_ns,queue_wait_ns,gc_wait_ns,bus_ns,
  //   cell_ns,map_ns,cow_ns,host_other_ns,rebuild_ns
  std::string ToCsv() const;
  // Writes ToCsv() to `path`. Returns false on I/O failure.
  bool WriteCsvFile(const std::string& path) const;

  void Clear();

 private:
  std::vector<SpanRecord> ring_;
  uint64_t next_ = 0;  // Total records ever recorded.
  size_t head_ = 0;    // Write slot; always next_ % capacity.
  uint64_t stride_ = 1;
  uint64_t tick_ = 0;
  LatencyHistogram span_hist_[kNumLatencySpans];
  LatencyHistogram e2e_hist_[kNumLatencyOpKinds];
  uint64_t span_total_ns_[kNumLatencySpans] = {};
  uint64_t records_dropped_ = 0;  // Mirror of dropped() for counter registration.
};

}  // namespace iosnap

#endif  // SRC_OBS_LATENCY_H_
