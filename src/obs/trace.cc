#include "src/obs/trace.h"

#include "src/common/logging.h"

namespace iosnap {

TraceRecorder::TraceRecorder(size_t capacity) : ring_(capacity > 0 ? capacity : 1) {
  IOSNAP_CHECK(capacity > 0);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  const size_t n = size();
  out.reserve(n);
  const size_t cap = ring_.size();
  const uint64_t first = next_ - n;  // Index of the oldest retained event.
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % cap]);
  }
  return out;
}

size_t TraceRecorder::CountType(TraceEventType type) const {
  size_t count = 0;
  const size_t n = size();
  const size_t cap = ring_.size();
  const uint64_t first = next_ - n;
  for (size_t i = 0; i < n; ++i) {
    if (ring_[(first + i) % cap].type == type) {
      ++count;
    }
  }
  return count;
}

}  // namespace iosnap
