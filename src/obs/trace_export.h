// Exporters for TraceRecorder rings.
//
//   * Chrome trace-event JSON: loadable in Perfetto (ui.perfetto.dev) or
//     chrome://tracing. Virtual-clock nanoseconds are emitted as the format's
//     microsecond `ts`/`dur` fields (fractional µs keeps full ns precision). Events are
//     grouped onto named tracks (foreground I/O, snapshots, activation, GC, ...) via
//     synthetic thread ids so interference is visible at a glance.
//   * CSV: one row per event with symbolic type and per-type arg names, for ad-hoc
//     analysis (pandas, gnuplot).

#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <ostream>
#include <string>
#include <string_view>

#include "src/obs/trace.h"

namespace iosnap {

// Static description of one event type (exporter metadata). The leading `type` field
// self-identifies each table entry so a compile-time check (trace_export.cc) can prove
// the table covers every TraceEventType enumerator, in enum order, with a name and
// contiguous arg labels — adding an enumerator without exporter metadata no longer
// compiles.
struct TraceEventInfo {
  TraceEventType type;       // The enumerator this entry describes.
  const char* name;          // Chrome event name, e.g. "gc_copy_forward".
  const char* category;      // Chrome "cat" field, e.g. "gc".
  int track;                 // Synthetic tid grouping related events.
  const char* arg_names[3];  // Names for arg0..arg2; nullptr = unused.
};

const TraceEventInfo& TraceEventInfoFor(TraceEventType type);

// RFC 4180 CSV field escaping: fields containing a comma, double quote, CR, or LF are
// wrapped in double quotes with embedded quotes doubled; all other fields pass through
// unchanged. Shared by the trace and latency-span CSV writers.
std::string CsvEscape(std::string_view field);

// Writes the full Chrome trace JSON object ({"traceEvents": [...], ...}).
void ExportChromeTrace(const TraceRecorder& recorder, std::ostream& os);

// Writes "type,start_ns,end_ns,arg_name=value,..." rows with a header line.
void ExportTraceCsv(const TraceRecorder& recorder, std::ostream& os);

// Convenience: writes to `path`, choosing the format by extension (".csv" -> CSV,
// anything else -> Chrome JSON). Returns false on I/O failure.
bool WriteTraceFile(const TraceRecorder& recorder, const std::string& path);

}  // namespace iosnap

#endif  // SRC_OBS_TRACE_EXPORT_H_
