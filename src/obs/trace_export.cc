#include "src/obs/trace_export.h"

#include <charconv>
#include <fstream>
#include <string>

#include "src/common/logging.h"

namespace iosnap {

namespace {

// Track ids (synthetic "threads" in the Chrome model). One per subsystem so Perfetto
// renders foreground I/O, snapshot ops, activation, and GC on separate swimlanes.
enum Track {
  kTrackIo = 0,
  kTrackSnapshot = 1,
  kTrackActivation = 2,
  kTrackGc = 3,
  kTrackValidity = 4,
  kTrackPacing = 5,
  kTrackDevice = 6,
  kTrackLifecycle = 7,
  kNumTracks = 8,
};

const char* const kTrackNames[kNumTracks] = {
    "foreground io", "snapshot ops",  "activation", "segment cleaner",
    "validity cow",  "rate limiting", "nand device", "lifecycle",
};

// Indexed by TraceEventType. Each entry leads with the enumerator it describes;
// EventInfoTableInSync() below proves at compile time that the table is complete, in
// enum order, and well-formed.
constexpr TraceEventInfo kEventInfo[kNumTraceEventTypes] = {
    {TraceEventType::kUserWrite, "user_write", "io", kTrackIo,
     {"lba", "view_id", nullptr}},
    {TraceEventType::kUserRead, "user_read", "io", kTrackIo,
     {"lba", "view_id", nullptr}},
    {TraceEventType::kUserTrim, "user_trim", "io", kTrackIo, {"lba", "count", nullptr}},
    {TraceEventType::kUserBatch, "user_batch", "io", kTrackIo,
     {"batch_ops", "view_id", nullptr}},
    {TraceEventType::kSnapCreate, "snap_create", "snapshot", kTrackSnapshot,
     {"snap_id", "frozen_epoch", nullptr}},
    {TraceEventType::kSnapDelete, "snap_delete", "snapshot", kTrackSnapshot,
     {"snap_id", "epoch", nullptr}},
    {TraceEventType::kSnapRollback, "snap_rollback", "snapshot", kTrackSnapshot,
     {"snap_id", "new_epoch", nullptr}},
    {TraceEventType::kSnapDeactivate, "snap_deactivate", "snapshot", kTrackSnapshot,
     {"snap_id", "view_id", nullptr}},
    {TraceEventType::kActivateBegin, "activate_begin", "activation", kTrackActivation,
     {"snap_id", "view_id", nullptr}},
    {TraceEventType::kActivationBurst, "activation_burst", "activation",
     kTrackActivation, {"view_id", "segments_scanned", nullptr}},
    {TraceEventType::kActivateEnd, "activate_end", "activation", kTrackActivation,
     {"view_id", "map_entries", nullptr}},
    {TraceEventType::kGcVictimSelect, "gc_victim_select", "gc", kTrackGc,
     {"segment", "merged_valid_pages", "free_segments"}},
    {TraceEventType::kGcCopyForward, "gc_copy_forward", "gc", kTrackGc,
     {"lba", "old_paddr", "new_paddr"}},
    {TraceEventType::kGcSegmentErase, "gc_segment_erase", "gc", kTrackGc,
     {"segment", nullptr, nullptr}},
    {TraceEventType::kGcInlineStall, "gc_inline_stall", "gc", kTrackGc,
     {"stall_round", nullptr, nullptr}},
    {TraceEventType::kValidityCowChunk, "validity_cow_chunk", "validity", kTrackValidity,
     {"chunk_index", "bytes", "epoch"}},
    {TraceEventType::kRateLimiterSleep, "rate_limit_sleep", "pacing", kTrackPacing,
     {"sleep_ns", nullptr, nullptr}},
    {TraceEventType::kNandErase, "nand_erase", "device", kTrackDevice,
     {"segment", "erase_count", nullptr}},
    {TraceEventType::kCheckpointWrite, "checkpoint_write", "lifecycle", kTrackLifecycle,
     {"pages", nullptr, nullptr}},
    {TraceEventType::kRecoveryRun, "recovery", "lifecycle", kTrackLifecycle,
     {"from_checkpoint", "map_entries", nullptr}},
    {TraceEventType::kFaultInjected, "fault_injected", "device", kTrackDevice,
     {"kind", "where", "op_index"}},
    {TraceEventType::kSegmentRetired, "segment_retired", "device", kTrackDevice,
     {"segment", "erase_count", nullptr}},
    {TraceEventType::kReadRetry, "read_retry", "device", kTrackDevice,
     {"paddr", "attempt", nullptr}},
    {TraceEventType::kQueueSubmit, "queue_submit", "io", kTrackIo,
     {"queue", "ops", "submission_id"}},
    {TraceEventType::kQueueFlush, "queue_flush", "io", kTrackIo,
     {"pending_ops", "merged_runs", nullptr}},
    {TraceEventType::kQueueComplete, "queue_complete", "io", kTrackIo,
     {"queue", "op_id", "lba"}},
    {TraceEventType::kNandCopyback, "copyback", "device", kTrackDevice,
     {"src_paddr", "dst_paddr", "on_die"}},
    {TraceEventType::kPatrolRewrite, "patrol_rewrite", "gc", kTrackGc,
     {"lba", "old_paddr", "new_paddr"}},
    {TraceEventType::kPatrolDrop, "patrol_drop", "gc", kTrackGc,
     {"lba", "paddr", nullptr}},
    {TraceEventType::kDegradedEnter, "degraded_enter", "lifecycle", kTrackLifecycle,
     {"free_segments", "segments_retired", nullptr}},
    {TraceEventType::kDegradedExit, "degraded_exit", "lifecycle", kTrackLifecycle,
     {"free_segments", "segments_retired", nullptr}},
    {TraceEventType::kParityWrite, "parity_write", "device", kTrackDevice,
     {"segment", "paddr", "members"}},
    {TraceEventType::kPageRebuilt, "page_rebuilt", "device", kTrackDevice,
     {"lba", "old_paddr", "new_paddr"}},
    {TraceEventType::kRebuildFailed, "rebuild_failed", "device", kTrackDevice,
     {"lba", "paddr", nullptr}},
};

// Compile-time proof that every enumerator has a well-formed table entry: self-id
// matches the index (enum order), non-empty name, a category, a known track, and arg
// labels that are contiguous (no hole before a later label).
consteval bool EventInfoTableInSync() {
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    const TraceEventInfo& info = kEventInfo[i];
    if (info.type != static_cast<TraceEventType>(i)) return false;
    if (info.name == nullptr || info.name[0] == '\0') return false;
    if (info.category == nullptr || info.category[0] == '\0') return false;
    if (info.track < 0 || info.track >= kNumTracks) return false;
    bool ended = false;
    for (int a = 0; a < 3; ++a) {
      if (info.arg_names[a] == nullptr) {
        ended = true;
      } else if (ended || info.arg_names[a][0] == '\0') {
        return false;
      }
    }
  }
  return true;
}
static_assert(EventInfoTableInSync(),
              "kEventInfo is out of sync with TraceEventType: every enumerator needs "
              "an in-order entry with a name, category, track, and contiguous arg "
              "labels");

void AppendU64(std::string* out, uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

// Virtual ns -> Chrome's microsecond timebase, keeping ns precision as fractions.
void AppendMicros(std::string* out, uint64_t ns) {
  AppendU64(out, ns / 1000);
  const unsigned frac = static_cast<unsigned>(ns % 1000);
  const char digits[4] = {'.', static_cast<char>('0' + frac / 100),
                          static_cast<char>('0' + frac / 10 % 10),
                          static_cast<char>('0' + frac % 10)};
  out->append(digits, 4);
}

// A full ring is ~260Ki events; per-token ostream << was the bottleneck (slower than
// the whole recording phase). Everything constant for an event type is precomputed
// once into string fragments, so the per-event work is a handful of appends plus
// std::to_chars for the numbers, flushed to the stream in one write.
struct JsonPerType {
  std::string prefix;        // ,{"name":"...","cat":"...","pid":0,"tid":N,"ts":
  std::string arg_open[3];   // {"lba":  /  ,"view_id":  / ...
  int num_args = 0;
};

struct CsvPerType {
  std::string prefix;  // user_write,io,
  std::string names;   // lba;view_id
};

}  // namespace

const TraceEventInfo& TraceEventInfoFor(TraceEventType type) {
  const size_t index = static_cast<size_t>(type);
  IOSNAP_CHECK(index < kNumTraceEventTypes);
  return kEventInfo[index];
}

std::string CsvEscape(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

void ExportChromeTrace(const TraceRecorder& recorder, std::ostream& os) {
  JsonPerType per_type[kNumTraceEventTypes];
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    const TraceEventInfo& info = kEventInfo[i];
    JsonPerType& pt = per_type[i];
    pt.prefix = ",{\"name\":\"" + std::string(info.name) + "\",\"cat\":\"" +
                info.category + "\",\"pid\":0,\"tid\":";
    AppendU64(&pt.prefix, static_cast<uint64_t>(info.track));
    pt.prefix += ",\"ts\":";
    for (int a = 0; a < 3 && info.arg_names[a] != nullptr; ++a) {
      pt.arg_open[a] = std::string(a == 0 ? "{\"" : ",\"") + info.arg_names[a] + "\":";
      pt.num_args = a + 1;
    }
  }

  std::string out;
  out.reserve(recorder.size() * 140 + 4096);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  // Track-name metadata events give the swimlanes human names in Perfetto. They also
  // guarantee the array is non-empty, so every real event's prefix starts with ','.
  for (int track = 0; track < kNumTracks; ++track) {
    if (track != 0) {
      out += ",";
    }
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    AppendU64(&out, static_cast<uint64_t>(track));
    out += ",\"args\":{\"name\":\"";
    out += kTrackNames[track];
    out += "\"}}";
  }
  for (const TraceEvent& e : recorder.Events()) {
    const JsonPerType& pt = per_type[static_cast<size_t>(e.type)];
    out += pt.prefix;
    AppendMicros(&out, e.start_ns);
    if (e.end_ns > e.start_ns) {
      out += ",\"ph\":\"X\",\"dur\":";
      AppendMicros(&out, e.end_ns - e.start_ns);
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    out += ",\"args\":";
    if (pt.num_args == 0) {
      out += "{}";
    } else {
      const uint64_t args[3] = {e.arg0, e.arg1, e.arg2};
      for (int a = 0; a < pt.num_args; ++a) {
        out += pt.arg_open[a];
        AppendU64(&out, args[a]);
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"otherData\":{\"dropped_events\":";
  AppendU64(&out, recorder.dropped());
  out += ",\"clock\":\"virtual\"}}";
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

void ExportTraceCsv(const TraceRecorder& recorder, std::ostream& os) {
  CsvPerType per_type[kNumTraceEventTypes];
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    const TraceEventInfo& info = kEventInfo[i];
    per_type[i].prefix = CsvEscape(info.name) + "," + CsvEscape(info.category) + ",";
    std::string names;
    for (int a = 0; a < 3 && info.arg_names[a] != nullptr; ++a) {
      names += (a > 0 ? ";" : "");
      names += info.arg_names[a];
    }
    // The ';' join is the column's own sub-separator; escaping guards the CSV framing
    // (commas/quotes/newlines) around it.
    per_type[i].names = CsvEscape(names);
  }

  std::string out;
  out.reserve(recorder.size() * 80 + 256);
  out += "type,category,start_ns,end_ns,arg0,arg1,arg2,arg_names\n";
  for (const TraceEvent& e : recorder.Events()) {
    const CsvPerType& pt = per_type[static_cast<size_t>(e.type)];
    out += pt.prefix;
    AppendU64(&out, e.start_ns);
    out += ",";
    AppendU64(&out, e.end_ns);
    out += ",";
    AppendU64(&out, e.arg0);
    out += ",";
    AppendU64(&out, e.arg1);
    out += ",";
    AppendU64(&out, e.arg2);
    out += ",";
    out += pt.names;
    out += "\n";
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

bool WriteTraceFile(const TraceRecorder& recorder, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    ExportTraceCsv(recorder, out);
  } else {
    ExportChromeTrace(recorder, out);
  }
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace iosnap
