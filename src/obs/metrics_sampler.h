// Periodic metric snapshots over the virtual clock, rendered as a wide time-series
// CSV (one column per metric, one row per sample) so queue-depth and latency-span
// trends can be plotted over a run.
//
// The sampler is driven from the workload runner's completion loop: MaybeSample(now)
// is a single compare in the common case and takes one registry snapshot whenever the
// virtual clock has crossed the next interval boundary. Like every observability hook
// here, sampling reads values the simulation already computed — it never touches the
// clock, so runs are identical with the sampler attached or not.

#ifndef SRC_OBS_METRICS_SAMPLER_H_
#define SRC_OBS_METRICS_SAMPLER_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_export.h"

namespace iosnap {

class MetricsSampler {
 public:
  MetricsSampler(const MetricsRegistry* registry, uint64_t interval_ns)
      : registry_(registry), interval_ns_(interval_ns) {
    IOSNAP_CHECK(registry != nullptr);
    IOSNAP_CHECK(interval_ns > 0);
  }

  // Takes one snapshot stamped `now_ns` if at least interval_ns has elapsed since the
  // previous sample (the first call always samples). Samples are stamped with the real
  // completion time that crossed the boundary, not the boundary itself, so idle gaps
  // show as gaps rather than as fabricated rows.
  void MaybeSample(uint64_t now_ns) {
    if (now_ns < next_due_ns_) {
      return;
    }
    SampleNow(now_ns);
  }

  void SampleNow(uint64_t now_ns) {
    rows_.emplace_back(now_ns, registry_->Snapshot());
    next_due_ns_ = now_ns + interval_ns_;
  }

  size_t samples() const { return rows_.size(); }
  uint64_t interval_ns() const { return interval_ns_; }

  // Wide CSV: "t_ns,<metric>,..." header from the first row's snapshot (the metric set
  // is fixed at registration time), then one row per sample.
  std::string ToCsv() const {
    std::string out = "t_ns";
    if (!rows_.empty()) {
      for (const MetricsRegistry::Sample& s : rows_.front().second) {
        out += ",";
        out += CsvEscape(s.name);
      }
    }
    out += "\n";
    for (const auto& [t_ns, samples] : rows_) {
      out += std::to_string(t_ns);
      for (const MetricsRegistry::Sample& s : samples) {
        out += ",";
        out += s.is_integer ? std::to_string(s.u64) : std::to_string(s.value);
      }
      out += "\n";
    }
    return out;
  }

  bool WriteCsvFile(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      return false;
    }
    const std::string csv = ToCsv();
    out.write(csv.data(), static_cast<std::streamsize>(csv.size()));
    out.flush();
    return static_cast<bool>(out);
  }

 private:
  const MetricsRegistry* registry_;
  uint64_t interval_ns_;
  uint64_t next_due_ns_ = 0;
  std::vector<std::pair<uint64_t, std::vector<MetricsRegistry::Sample>>> rows_;
};

}  // namespace iosnap

#endif  // SRC_OBS_METRICS_SAMPLER_H_
