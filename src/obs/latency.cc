#include "src/obs/latency.h"

#include <charconv>
#include <fstream>

#include "src/common/logging.h"

namespace iosnap {

namespace {

const char* const kSpanNames[kNumLatencySpans] = {
    "queue_wait", "gc_wait", "bus", "cell", "map", "cow", "host_other", "rebuild",
};

const char* const kKindNames[kNumLatencyOpKinds] = {"write", "read", "trim", "gc_copy"};

void AppendU64(std::string* out, uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

}  // namespace

const char* LatencySpanName(LatencySpan span) {
  const size_t index = static_cast<size_t>(span);
  IOSNAP_CHECK(index < kNumLatencySpans);
  return kSpanNames[index];
}

const char* LatencyOpKindName(LatencyOpKind kind) {
  const size_t index = static_cast<size_t>(kind);
  IOSNAP_CHECK(index < kNumLatencyOpKinds);
  return kKindNames[index];
}

LatencyAttributor::LatencyAttributor(size_t record_capacity, uint64_t sample_stride)
    : ring_(record_capacity > 0 ? record_capacity : 1),
      stride_(sample_stride > 0 ? sample_stride : 1) {}

void LatencyAttributor::Record(LatencyOpKind kind, uint64_t lba, uint64_t issue_ns,
                               uint64_t complete_ns, const LatencySpans& spans) {
  SpanRecord& slot = ring_[head_];
  slot.seq = next_;
  slot.kind = kind;
  slot.lba = lba;
  slot.issue_ns = issue_ns;
  slot.complete_ns = complete_ns;
  slot.spans = spans;
  if (++head_ == ring_.size()) {
    head_ = 0;
  }
  if (next_ >= ring_.size()) {
    ++records_dropped_;
  }
  ++next_;

  for (size_t s = 0; s < kNumLatencySpans; ++s) {
    span_hist_[s].Add(spans.ns[s]);
    span_total_ns_[s] += spans.ns[s];
  }
  e2e_hist_[static_cast<size_t>(kind)].Add(complete_ns - issue_ns);
}

std::vector<SpanRecord> LatencyAttributor::Records() const {
  std::vector<SpanRecord> out;
  const size_t n = size();
  out.reserve(n);
  const size_t start = next_ < ring_.size() ? 0 : head_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void LatencyAttributor::RegisterMetrics(MetricsRegistry* registry,
                                        const std::string& prefix) {
  IOSNAP_CHECK(registry != nullptr);
  for (size_t s = 0; s < kNumLatencySpans; ++s) {
    const std::string base = prefix + "span." + kSpanNames[s];
    registry->RegisterHistogram(base, &span_hist_[s]);
    registry->RegisterCounter(base + ".total_ns", &span_total_ns_[s]);
  }
  for (size_t k = 0; k < kNumLatencyOpKinds; ++k) {
    registry->RegisterHistogram(prefix + "e2e." + kKindNames[k], &e2e_hist_[k]);
  }
  registry->RegisterCounter(prefix + "ops", &next_);
  registry->RegisterCounter(prefix + "records_dropped", &records_dropped_);
}

std::string LatencyAttributor::ToCsv() const {
  std::string out;
  out.reserve(size() * 96 + 256);
  out +=
      "seq,kind,lba,issue_ns,complete_ns,total_ns,queue_wait_ns,gc_wait_ns,bus_ns,"
      "cell_ns,map_ns,cow_ns,host_other_ns,rebuild_ns\n";
  for (const SpanRecord& r : Records()) {
    AppendU64(&out, r.seq);
    out += ",";
    out += kKindNames[static_cast<size_t>(r.kind)];
    out += ",";
    AppendU64(&out, r.lba);
    out += ",";
    AppendU64(&out, r.issue_ns);
    out += ",";
    AppendU64(&out, r.complete_ns);
    out += ",";
    AppendU64(&out, r.TotalNs());
    for (uint64_t v : r.spans.ns) {
      out += ",";
      AppendU64(&out, v);
    }
    out += "\n";
  }
  return out;
}

bool LatencyAttributor::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  const std::string csv = ToCsv();
  out.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  out.flush();
  return static_cast<bool>(out);
}

void LatencyAttributor::Clear() {
  next_ = 0;
  head_ = 0;
  records_dropped_ = 0;
  for (auto& h : span_hist_) {
    h = LatencyHistogram();
  }
  for (auto& h : e2e_hist_) {
    h = LatencyHistogram();
  }
  for (auto& t : span_total_ns_) {
    t = 0;
  }
}

}  // namespace iosnap
