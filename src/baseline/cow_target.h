// BlockTarget adapter so the workload Runner can drive the Btrfs-like baseline with the
// exact loop used for the ioSnap FTL (Figures 11 and 12 run both sides identically).

#ifndef SRC_BASELINE_COW_TARGET_H_
#define SRC_BASELINE_COW_TARGET_H_

#include "src/baseline/cow_store.h"
#include "src/workload/runner.h"

namespace iosnap {

class CowStoreTarget : public BlockTarget {
 public:
  explicit CowStoreTarget(CowStore* store, Ftl* device) : store_(store), device_(device) {}

  StatusOr<IoResult> DoOp(const IoOp& op, uint64_t issue_ns) override {
    switch (op.kind) {
      case IoKind::kRead:
        return store_->Read(op.lba, issue_ns);
      case IoKind::kWrite:
        return store_->Write(op.lba, issue_ns);
      case IoKind::kTrim:
        return Unimplemented("cow_store: user-level trim not supported");
    }
    return InvalidArgument("unknown op kind");
  }

  void Pump(uint64_t now_ns) override { device_->PumpBackground(now_ns); }
  uint64_t LbaCount() const override { return store_->volume_blocks(); }
  uint64_t DrainNs() const override { return device_->device().DrainTimeNs(); }

 private:
  CowStore* store_;
  Ftl* device_;
};

}  // namespace iosnap

#endif  // SRC_BASELINE_COW_TARGET_H_
