// A Btrfs-like copy-on-write block store — the disk-optimized snapshot baseline of the
// paper's §6.4 comparison (Figures 11 and 12).
//
// The store keeps an on-device CoW B-tree mapping logical blocks to data blocks, with
// persistent-structure refcounting exactly in the Btrfs style:
//   * modifications never overwrite committed tree nodes: a node written in an earlier
//     transaction, or referenced by more than one parent (i.e. pinned by a snapshot), is
//     cloned to a freshly allocated block and its children's refcounts are bumped;
//   * a transaction commit flushes every dirty node block, the touched refcount-table
//     blocks, and the superblock — synchronously (the foreground stall Figure 11 shows
//     on snapshot create);
//   * a snapshot is a committed root reference: creation forces a full commit/quiesce,
//     then bumps the root's refcount. Every later first-touch of a path re-CoWs it.
//
// Consequences measured by the benchmarks: snapshot creation cost grows with dirty state
// (vs ioSnap's constant note), steady-state writes carry metadata CoW amplification, and
// accumulated snapshots pin both data and metadata blocks, pushing utilization of the
// underlying flash device up and its cleaner efficiency down — the gradually declining
// bandwidth of Figure 12.
//
// The store runs on a vanilla (snapshots-disabled) ioSnap FTL as its SSD, so both sides
// of the comparison share one device model.

#ifndef SRC_BASELINE_COW_STORE_H_
#define SRC_BASELINE_COW_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/status.h"
#include "src/core/ftl.h"

namespace iosnap {

struct CowStoreOptions {
  uint64_t volume_blocks = 0;      // Logical size exposed to the user (0: derive ~60%).
  uint64_t node_fanout = 64;       // Entries per on-device tree-node block.
  uint64_t commit_every_ops = 256; // Transaction group size (ops between commits).
  // Host CPU model.
  uint64_t host_node_visit_ns = 200;
  uint64_t host_node_cow_ns = 1500;
  uint64_t host_ref_update_ns = 40;
};

struct CowStoreStats {
  uint64_t data_block_writes = 0;
  uint64_t metadata_block_writes = 0;  // Node + refcount-table + superblock writes.
  uint64_t node_cow_clones = 0;
  uint64_t commits = 0;
  uint64_t snapshots_created = 0;
  uint64_t live_tree_nodes = 0;        // Nodes reachable from the active root.
  uint64_t allocated_blocks = 0;       // Currently referenced device blocks.
};

class CowStore {
 public:
  static StatusOr<std::unique_ptr<CowStore>> Create(Ftl* device, const CowStoreOptions& opts);

  ~CowStore();
  CowStore(const CowStore&) = delete;
  CowStore& operator=(const CowStore&) = delete;

  uint64_t volume_blocks() const { return opts_.volume_blocks; }
  const CowStoreStats& stats() const { return stats_; }

  // Writes one logical block. Triggers a synchronous commit every commit_every_ops.
  StatusOr<IoResult> Write(uint64_t block, uint64_t issue_ns);

  // Reads one logical block (zeroes if never written).
  StatusOr<IoResult> Read(uint64_t block, uint64_t issue_ns);

  // Flushes the current transaction (dirty nodes, refcounts, superblock).
  StatusOr<IoResult> Sync(uint64_t issue_ns);

  // Creates a snapshot: full commit, then pin the root. Returns the snapshot id.
  StatusOr<uint32_t> CreateSnapshot(uint64_t issue_ns, IoResult* io);

  Status DeleteSnapshot(uint32_t snap_id, uint64_t issue_ns);

  // Reads a block as of a snapshot.
  StatusOr<IoResult> ReadSnapshot(uint32_t snap_id, uint64_t block, uint64_t issue_ns);

 private:
  struct Node;
  using NodeRef = std::shared_ptr<Node>;

  CowStore(Ftl* device, const CowStoreOptions& opts);

  StatusOr<uint64_t> AllocBlock();
  // Drops one reference to a device block; frees (and queues a discard) when it reaches
  // zero. Node frees cascade to children via `node` when provided.
  void ReleaseBlock(uint64_t addr, const NodeRef& node);

  // Returns a mutable (current-generation, exclusively referenced) version of `node`,
  // cloning it if necessary. `host_ns` accumulates CPU cost.
  StatusOr<NodeRef> MakeMutable(const NodeRef& node, uint64_t* host_ns);

  // Inserts block -> data_addr under the active root with path CoW; splits as needed.
  Status TreeInsert(uint64_t block, uint64_t data_addr, uint64_t now_ns, uint64_t* host_ns);

  // Looks up a block under `root`; nullopt if unmapped.
  StatusOr<std::optional<uint64_t>> TreeLookup(const NodeRef& root, uint64_t block,
                                               uint64_t* host_ns) const;

  // Writes all dirty state; returns device finish time.
  StatusOr<uint64_t> Commit(uint64_t issue_ns);

  void MarkRefDirty(uint64_t addr);
  void CollectDirty(const NodeRef& node, std::vector<Node*>* out);
  uint64_t CountNodes(const NodeRef& node) const;

  Ftl* device_;
  CowStoreOptions opts_;
  CowStoreStats stats_;

  Bitmap allocated_;            // Device-LBA allocation map.
  uint64_t alloc_cursor_ = 1;   // Block 0 is the superblock.
  std::map<uint64_t, uint32_t> refcounts_;  // addr -> references (absent == 0).

  NodeRef root_;
  uint64_t current_generation_ = 1;
  uint64_t ops_since_commit_ = 0;
  std::map<uint32_t, NodeRef> snapshots_;
  uint32_t next_snap_id_ = 1;

  std::vector<uint64_t> pending_trims_;  // Freed blocks to discard at next commit.
  std::set<uint64_t> dirty_ref_buckets_; // Refcount-table blocks touched this txn.
  uint64_t reftable_base_ = 0;           // First device LBA of the refcount table.
};

}  // namespace iosnap

#endif  // SRC_BASELINE_COW_STORE_H_
