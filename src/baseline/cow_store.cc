#include "src/baseline/cow_store.h"

#include <algorithm>

#include "src/common/logging.h"

namespace iosnap {

namespace {
// Refcount-table entries per on-device table block.
constexpr uint64_t kRefsPerBlock = 1024;
}  // namespace

struct CowStore::Node {
  bool leaf = true;
  uint64_t addr = 0;        // Device block holding this node.
  uint64_t generation = 0;  // Transaction that wrote (or will write) this node.
  bool dirty = false;
  std::vector<uint64_t> keys;      // Leaf: block keys. Internal: min key of children[i].
  std::vector<uint64_t> values;    // Leaf only: data block addresses.
  std::vector<NodeRef> children;   // Internal only.
};

CowStore::CowStore(Ftl* device, const CowStoreOptions& opts)
    : device_(device), opts_(opts), allocated_(device->LbaCount()) {}

CowStore::~CowStore() = default;

StatusOr<std::unique_ptr<CowStore>> CowStore::Create(Ftl* device,
                                                     const CowStoreOptions& opts) {
  if (device == nullptr) {
    return InvalidArgument("cow_store: no device");
  }
  if (opts.node_fanout < 4) {
    return InvalidArgument("cow_store: fanout too small");
  }
  std::unique_ptr<CowStore> store(new CowStore(device, opts));

  const uint64_t lba_count = device->LbaCount();
  const uint64_t num_buckets = lba_count / (kRefsPerBlock + 1) + 2;
  if (lba_count < num_buckets + 16) {
    return InvalidArgument("cow_store: device too small");
  }
  store->reftable_base_ = lba_count - num_buckets;
  store->allocated_.Set(0);  // Superblock.
  if (store->opts_.volume_blocks == 0) {
    store->opts_.volume_blocks = (store->reftable_base_ - 1) / 2;
  }

  // Empty root leaf.
  ASSIGN_OR_RETURN(uint64_t root_addr, store->AllocBlock());
  auto root = std::make_shared<Node>();
  root->addr = root_addr;
  root->generation = store->current_generation_;
  root->dirty = true;
  store->refcounts_[root_addr] = 1;
  store->root_ = std::move(root);
  return store;
}

StatusOr<uint64_t> CowStore::AllocBlock() {
  const uint64_t limit = reftable_base_;
  for (uint64_t scanned = 0; scanned < limit; ++scanned) {
    uint64_t candidate = alloc_cursor_;
    alloc_cursor_ = alloc_cursor_ + 1 >= limit ? 1 : alloc_cursor_ + 1;
    if (!allocated_.Test(candidate)) {
      allocated_.Set(candidate);
      ++stats_.allocated_blocks;
      return candidate;
    }
  }
  return ResourceExhausted("cow_store: volume is full");
}

void CowStore::MarkRefDirty(uint64_t addr) { dirty_ref_buckets_.insert(addr / kRefsPerBlock); }

void CowStore::ReleaseBlock(uint64_t addr, const NodeRef& node) {
  auto it = refcounts_.find(addr);
  IOSNAP_CHECK(it != refcounts_.end() && it->second > 0);
  MarkRefDirty(addr);
  if (--it->second > 0) {
    return;
  }
  refcounts_.erase(it);
  allocated_.Clear(addr);
  --stats_.allocated_blocks;
  pending_trims_.push_back(addr);
  if (node != nullptr) {
    // Cascade: the last on-device reference to this node is gone, so it drops its own
    // references to children (internal) or data blocks (leaf).
    if (node->leaf) {
      for (uint64_t data_addr : node->values) {
        ReleaseBlock(data_addr, nullptr);
      }
    } else {
      for (const NodeRef& child : node->children) {
        ReleaseBlock(child->addr, child);
      }
    }
  }
}

StatusOr<CowStore::NodeRef> CowStore::MakeMutable(const NodeRef& node, uint64_t* host_ns) {
  *host_ns += opts_.host_node_visit_ns;
  auto ref_it = refcounts_.find(node->addr);
  IOSNAP_CHECK(ref_it != refcounts_.end());
  if (node->dirty && node->generation == current_generation_ && ref_it->second == 1) {
    return node;  // Already private to this transaction.
  }

  // Btrfs CoW rule: committed or shared nodes are cloned to a fresh block; the clone
  // takes a reference on every child.
  auto clone = std::make_shared<Node>(*node);
  ASSIGN_OR_RETURN(clone->addr, AllocBlock());
  clone->generation = current_generation_;
  clone->dirty = true;
  refcounts_[clone->addr] = 1;
  MarkRefDirty(clone->addr);

  if (clone->leaf) {
    for (uint64_t data_addr : clone->values) {
      ++refcounts_[data_addr];
      MarkRefDirty(data_addr);
    }
    *host_ns += clone->values.size() * opts_.host_ref_update_ns;
  } else {
    for (const NodeRef& child : clone->children) {
      ++refcounts_[child->addr];
      MarkRefDirty(child->addr);
    }
    *host_ns += clone->children.size() * opts_.host_ref_update_ns;
  }
  *host_ns += opts_.host_node_cow_ns;
  ++stats_.node_cow_clones;

  ReleaseBlock(node->addr, node);
  return clone;
}

Status CowStore::TreeInsert(uint64_t block, uint64_t data_addr, uint64_t now_ns,
                            uint64_t* host_ns) {
  ASSIGN_OR_RETURN(root_, MakeMutable(root_, host_ns));

  // Descend with path CoW, remembering the path for splits.
  std::vector<NodeRef> path;
  path.push_back(root_);
  while (!path.back()->leaf) {
    NodeRef& parent = path.back();
    // Route to the last child whose min key is <= block.
    size_t idx = static_cast<size_t>(
        std::upper_bound(parent->keys.begin(), parent->keys.end(), block) -
        parent->keys.begin());
    if (idx > 0) {
      --idx;
    }
    ASSIGN_OR_RETURN(NodeRef child, MakeMutable(parent->children[idx], host_ns));
    parent->children[idx] = child;
    path.push_back(child);
  }

  // Leaf insert / overwrite.
  NodeRef leaf = path.back();
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), block);
  const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == block) {
    ReleaseBlock(leaf->values[pos], nullptr);
    leaf->values[pos] = data_addr;
    return OkStatus();
  }
  leaf->keys.insert(it, block);
  leaf->values.insert(leaf->values.begin() + static_cast<ptrdiff_t>(pos), data_addr);

  // Split overfull nodes bottom-up. Every node on the path is already mutable.
  for (size_t level = path.size(); level-- > 0;) {
    NodeRef node = path[level];
    const size_t size = node->leaf ? node->keys.size() : node->children.size();
    if (size <= opts_.node_fanout) {
      break;
    }
    auto right = std::make_shared<Node>();
    right->leaf = node->leaf;
    ASSIGN_OR_RETURN(right->addr, AllocBlock());
    right->generation = current_generation_;
    right->dirty = true;
    refcounts_[right->addr] = 1;
    MarkRefDirty(right->addr);

    const size_t keep = size / 2;
    if (node->leaf) {
      right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(keep),
                         node->keys.end());
      right->values.assign(node->values.begin() + static_cast<ptrdiff_t>(keep),
                           node->values.end());
      node->keys.resize(keep);
      node->values.resize(keep);
    } else {
      right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(keep),
                         node->keys.end());
      right->children.assign(node->children.begin() + static_cast<ptrdiff_t>(keep),
                             node->children.end());
      node->keys.resize(keep);
      node->children.resize(keep);
    }
    const uint64_t right_min = right->keys.front();

    if (level == 0) {
      // Grow a new root above.
      auto new_root = std::make_shared<Node>();
      new_root->leaf = false;
      ASSIGN_OR_RETURN(new_root->addr, AllocBlock());
      new_root->generation = current_generation_;
      new_root->dirty = true;
      refcounts_[new_root->addr] = 1;
      MarkRefDirty(new_root->addr);
      new_root->keys = {node->keys.front(), right_min};
      new_root->children = {node, right};
      root_ = new_root;
    } else {
      NodeRef parent = path[level - 1];
      const auto child_it =
          std::find(parent->children.begin(), parent->children.end(), node);
      IOSNAP_CHECK(child_it != parent->children.end());
      const size_t child_idx = static_cast<size_t>(child_it - parent->children.begin());
      parent->keys.insert(parent->keys.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
                          right_min);
      parent->children.insert(
          parent->children.begin() + static_cast<ptrdiff_t>(child_idx) + 1, right);
    }
  }
  return OkStatus();
}

StatusOr<std::optional<uint64_t>> CowStore::TreeLookup(const NodeRef& root, uint64_t block,
                                                       uint64_t* host_ns) const {
  NodeRef node = root;
  while (true) {
    *host_ns += opts_.host_node_visit_ns;
    if (node->leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), block);
      if (it != node->keys.end() && *it == block) {
        return std::optional<uint64_t>(
            node->values[static_cast<size_t>(it - node->keys.begin())]);
      }
      return std::optional<uint64_t>(std::nullopt);
    }
    size_t idx = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), block) - node->keys.begin());
    if (idx > 0) {
      --idx;
    }
    node = node->children[idx];
  }
}

void CowStore::CollectDirty(const NodeRef& node, std::vector<Node*>* out) {
  if (!node->dirty) {
    return;  // Clean nodes have only clean descendants.
  }
  out->push_back(node.get());
  if (!node->leaf) {
    for (const NodeRef& child : node->children) {
      CollectDirty(child, out);
    }
  }
}

uint64_t CowStore::CountNodes(const NodeRef& node) const {
  if (node->leaf) {
    return 1;
  }
  uint64_t count = 1;
  for (const NodeRef& child : node->children) {
    count += CountNodes(child);
  }
  return count;
}

StatusOr<uint64_t> CowStore::Commit(uint64_t issue_ns) {
  std::vector<Node*> dirty;
  CollectDirty(root_, &dirty);

  uint64_t finish = issue_ns;
  // Flush dirty tree nodes (issued back-to-back; the device queues them).
  for (Node* node : dirty) {
    ASSIGN_OR_RETURN(IoResult io, device_->Write(node->addr, {}, issue_ns));
    finish = std::max(finish, io.CompletionNs());
    node->dirty = false;
    ++stats_.metadata_block_writes;
  }
  // Flush touched refcount-table blocks.
  for (uint64_t bucket : dirty_ref_buckets_) {
    ASSIGN_OR_RETURN(IoResult io, device_->Write(reftable_base_ + bucket, {}, issue_ns));
    finish = std::max(finish, io.CompletionNs());
    ++stats_.metadata_block_writes;
  }
  dirty_ref_buckets_.clear();

  // Discard freed blocks (coalesced ranges) and write the superblock last.
  std::sort(pending_trims_.begin(), pending_trims_.end());
  size_t i = 0;
  while (i < pending_trims_.size()) {
    size_t j = i + 1;
    while (j < pending_trims_.size() && pending_trims_[j] == pending_trims_[j - 1] + 1) {
      ++j;
    }
    ASSIGN_OR_RETURN(IoResult io,
                     device_->Trim(pending_trims_[i], j - i, finish));
    finish = std::max(finish, io.CompletionNs());
    i = j;
  }
  pending_trims_.clear();

  ASSIGN_OR_RETURN(IoResult super, device_->Write(0, {}, finish));
  finish = std::max(finish, super.CompletionNs());
  ++stats_.metadata_block_writes;

  ++current_generation_;
  ops_since_commit_ = 0;
  ++stats_.commits;
  stats_.live_tree_nodes = CountNodes(root_);
  return finish;
}

StatusOr<IoResult> CowStore::Write(uint64_t block, uint64_t issue_ns) {
  if (block >= opts_.volume_blocks) {
    return OutOfRange("cow_store: block out of range");
  }
  uint64_t host_ns = 0;

  ASSIGN_OR_RETURN(uint64_t data_addr, AllocBlock());
  refcounts_[data_addr] = 1;
  MarkRefDirty(data_addr);
  ASSIGN_OR_RETURN(IoResult data_io, device_->Write(data_addr, {}, issue_ns));
  ++stats_.data_block_writes;

  RETURN_IF_ERROR(TreeInsert(block, data_addr, issue_ns, &host_ns));

  IoResult result;
  result.op = data_io.op;
  result.host_ns = data_io.host_ns + host_ns;

  if (++ops_since_commit_ >= opts_.commit_every_ops) {
    // Transaction group flush. Like a kernel transaction thread, the flush itself is not
    // charged to this write's latency — but it occupies the device, so writes issued
    // while it drains queue behind it (the latency bumps around commits/creates).
    RETURN_IF_ERROR(Commit(result.op.finish_ns).status());
  }
  return result;
}

StatusOr<IoResult> CowStore::Read(uint64_t block, uint64_t issue_ns) {
  if (block >= opts_.volume_blocks) {
    return OutOfRange("cow_store: block out of range");
  }
  uint64_t host_ns = 0;
  ASSIGN_OR_RETURN(std::optional<uint64_t> data_addr, TreeLookup(root_, block, &host_ns));
  IoResult result;
  if (!data_addr.has_value()) {
    result.op.issue_ns = issue_ns;
    result.op.finish_ns = issue_ns;
    result.host_ns = host_ns;
    return result;
  }
  ASSIGN_OR_RETURN(result, device_->Read(*data_addr, issue_ns, nullptr));
  result.host_ns += host_ns;
  return result;
}

StatusOr<IoResult> CowStore::Sync(uint64_t issue_ns) {
  ASSIGN_OR_RETURN(uint64_t finish, Commit(issue_ns));
  IoResult result;
  result.op.issue_ns = issue_ns;
  result.op.finish_ns = finish;
  return result;
}

StatusOr<uint32_t> CowStore::CreateSnapshot(uint64_t issue_ns, IoResult* io) {
  // Snapshot = quiesce + full commit + pin the root. The commit is the latency hit
  // Figure 11 shows; contrast with ioSnap's single-note create.
  ASSIGN_OR_RETURN(uint64_t finish, Commit(issue_ns));
  ++refcounts_[root_->addr];
  MarkRefDirty(root_->addr);
  const uint32_t id = next_snap_id_++;
  snapshots_.emplace(id, root_);
  ++stats_.snapshots_created;
  if (io != nullptr) {
    io->op.issue_ns = issue_ns;
    io->op.finish_ns = finish;
    io->host_ns = 0;
  }
  return id;
}

Status CowStore::DeleteSnapshot(uint32_t snap_id, uint64_t issue_ns) {
  auto it = snapshots_.find(snap_id);
  if (it == snapshots_.end()) {
    return NotFound("cow_store: no snapshot " + std::to_string(snap_id));
  }
  ReleaseBlock(it->second->addr, it->second);
  snapshots_.erase(it);
  return OkStatus();
}

StatusOr<IoResult> CowStore::ReadSnapshot(uint32_t snap_id, uint64_t block,
                                          uint64_t issue_ns) {
  auto it = snapshots_.find(snap_id);
  if (it == snapshots_.end()) {
    return NotFound("cow_store: no snapshot " + std::to_string(snap_id));
  }
  uint64_t host_ns = 0;
  ASSIGN_OR_RETURN(std::optional<uint64_t> data_addr,
                   TreeLookup(it->second, block, &host_ns));
  IoResult result;
  if (!data_addr.has_value()) {
    result.op.issue_ns = issue_ns;
    result.op.finish_ns = issue_ns;
    result.host_ns = host_ns;
    return result;
  }
  ASSIGN_OR_RETURN(result, device_->Read(*data_addr, issue_ns, nullptr));
  result.host_ns += host_ns;
  return result;
}

}  // namespace iosnap
