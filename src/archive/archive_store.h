// Snapshot destaging to archival storage — the paper's §7 closing future-work item:
// "keeping snapshots on flash for prolonged durations is not necessarily the best use of
// the SSD. Thus, schemes to destage snapshots to archival disks are required."
//
// ArchiveStore models the archival tier: a cheap sequential device (disk/tape/object
// store) characterized by a seek latency and a streaming bandwidth on the same virtual
// clock as the flash device. It stores full snapshot images and incremental deltas
// (parent-relative), both produced by the SnapshotArchiver.

#ifndef SRC_ARCHIVE_ARCHIVE_STORE_H_
#define SRC_ARCHIVE_ARCHIVE_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace iosnap {

struct ArchiveConfig {
  uint64_t seek_ns = MsToNs(8);             // Per-stream positioning cost.
  uint64_t bandwidth_bytes_per_sec = 150ull * 1000 * 1000;  // ~150 MB/s streaming.
};

// One archived image: a (sparse) block map, either self-contained or a delta on top of
// a parent archive.
struct ArchiveImage {
  uint64_t archive_id = 0;
  std::string name;
  std::optional<uint64_t> parent_id;        // Set for incremental images.
  // lba -> page payload (may be empty vectors when the source ran header-only).
  std::map<uint64_t, std::vector<uint8_t>> blocks;
  // LBAs that the delta *removes* relative to the parent (trimmed since).
  std::vector<uint64_t> deleted_lbas;
  uint64_t bytes_written = 0;               // Archive media footprint.
};

class ArchiveStore {
 public:
  explicit ArchiveStore(const ArchiveConfig& config) : config_(config) {}

  const ArchiveConfig& config() const { return config_; }

  // Streams `image` onto the archive media. Returns the completion time; the image
  // becomes retrievable afterwards. `page_bytes` prices header-only payloads honestly.
  uint64_t Put(ArchiveImage image, uint64_t page_bytes, uint64_t issue_ns);

  bool Contains(uint64_t archive_id) const { return images_.contains(archive_id); }
  StatusOr<const ArchiveImage*> Get(uint64_t archive_id) const;

  // Reconstructs the full block map of an image by walking its parent chain
  // (base -> ... -> image, applying deltas). Charges read time through *finish_ns.
  StatusOr<std::map<uint64_t, std::vector<uint8_t>>> Materialize(uint64_t archive_id,
                                                                 uint64_t page_bytes,
                                                                 uint64_t issue_ns,
                                                                 uint64_t* finish_ns) const;

  Status Delete(uint64_t archive_id);

  uint64_t NextId() { return next_id_++; }
  uint64_t TotalBytesStored() const;
  size_t ImageCount() const { return images_.size(); }

 private:
  // Virtual-time cost of streaming `bytes` starting at `issue_ns`.
  uint64_t StreamFinish(uint64_t bytes, uint64_t issue_ns) const;

  ArchiveConfig config_;
  std::map<uint64_t, ArchiveImage> images_;
  uint64_t next_id_ = 1;
  uint64_t busy_until_ns_ = 0;  // The archive device handles one stream at a time.
};

}  // namespace iosnap

#endif  // SRC_ARCHIVE_ARCHIVE_STORE_H_
