#include "src/archive/archive_store.h"

#include <algorithm>

#include "src/common/logging.h"

namespace iosnap {

uint64_t ArchiveStore::StreamFinish(uint64_t bytes, uint64_t issue_ns) const {
  const uint64_t start = std::max(issue_ns, busy_until_ns_) + config_.seek_ns;
  const double seconds =
      static_cast<double>(bytes) / static_cast<double>(config_.bandwidth_bytes_per_sec);
  return start + static_cast<uint64_t>(seconds * static_cast<double>(kNsPerSec));
}

uint64_t ArchiveStore::Put(ArchiveImage image, uint64_t page_bytes, uint64_t issue_ns) {
  uint64_t bytes = 0;
  for (const auto& [lba, data] : image.blocks) {
    bytes += data.empty() ? page_bytes : data.size();
  }
  bytes += image.deleted_lbas.size() * sizeof(uint64_t);
  image.bytes_written = bytes;

  const uint64_t finish = StreamFinish(bytes, issue_ns);
  busy_until_ns_ = finish;
  const uint64_t id = image.archive_id;
  IOSNAP_CHECK(!images_.contains(id));
  images_.emplace(id, std::move(image));
  return finish;
}

StatusOr<const ArchiveImage*> ArchiveStore::Get(uint64_t archive_id) const {
  auto it = images_.find(archive_id);
  if (it == images_.end()) {
    return NotFound("archive image " + std::to_string(archive_id) + " does not exist");
  }
  return &it->second;
}

StatusOr<std::map<uint64_t, std::vector<uint8_t>>> ArchiveStore::Materialize(
    uint64_t archive_id, uint64_t page_bytes, uint64_t issue_ns,
    uint64_t* finish_ns) const {
  // Walk to the base, then apply deltas forward.
  std::vector<const ArchiveImage*> chain;
  uint64_t id = archive_id;
  while (true) {
    auto it = images_.find(id);
    if (it == images_.end()) {
      return NotFound("archive image " + std::to_string(id) +
                      " missing from the parent chain");
    }
    chain.push_back(&it->second);
    if (!it->second.parent_id.has_value()) {
      break;
    }
    id = *it->second.parent_id;
  }

  std::map<uint64_t, std::vector<uint8_t>> out;
  uint64_t bytes_read = 0;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const ArchiveImage* image = *it;
    for (uint64_t lba : image->deleted_lbas) {
      out.erase(lba);
    }
    for (const auto& [lba, data] : image->blocks) {
      out[lba] = data;
    }
    bytes_read += image->bytes_written;
  }
  if (finish_ns != nullptr) {
    *finish_ns = StreamFinish(bytes_read, issue_ns);
  }
  return out;
}

Status ArchiveStore::Delete(uint64_t archive_id) {
  auto it = images_.find(archive_id);
  if (it == images_.end()) {
    return NotFound("archive image " + std::to_string(archive_id) + " does not exist");
  }
  // Refuse to break a parent chain.
  for (const auto& [id, image] : images_) {
    if (image.parent_id.has_value() && *image.parent_id == archive_id) {
      return FailedPrecondition("archive image " + std::to_string(archive_id) +
                                " is the parent of image " + std::to_string(id));
    }
  }
  images_.erase(it);
  return OkStatus();
}

uint64_t ArchiveStore::TotalBytesStored() const {
  uint64_t total = 0;
  for (const auto& [id, image] : images_) {
    total += image.bytes_written;
  }
  return total;
}

}  // namespace iosnap
