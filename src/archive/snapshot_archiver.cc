#include "src/archive/snapshot_archiver.h"

#include <algorithm>

#include "src/common/logging.h"

namespace iosnap {

SnapshotArchiver::SnapshotArchiver(Ftl* ftl, ArchiveStore* store)
    : ftl_(ftl), store_(store) {
  IOSNAP_CHECK(ftl != nullptr);
  IOSNAP_CHECK(store != nullptr);
}

StatusOr<SnapshotDiff> SnapshotArchiver::Diff(uint32_t base_snap_id,
                                              uint32_t target_snap_id, uint64_t issue_ns,
                                              uint64_t* finish_ns) {
  uint64_t t = issue_ns;
  ASSIGN_OR_RETURN(uint32_t base_view,
                   ftl_->ActivateBlocking(base_snap_id, t, /*writable=*/false, &t));
  ASSIGN_OR_RETURN(uint32_t target_view,
                   ftl_->ActivateBlocking(target_snap_id, t, /*writable=*/false, &t));
  ASSIGN_OR_RETURN(auto base_entries, ftl_->ViewMapEntries(base_view));
  ASSIGN_OR_RETURN(auto target_entries, ftl_->ViewMapEntries(target_view));
  RETURN_IF_ERROR(ftl_->Deactivate(base_view, t));
  RETURN_IF_ERROR(ftl_->Deactivate(target_view, t));

  // Both lists are LBA-sorted: one merge pass.
  SnapshotDiff diff;
  size_t i = 0;
  size_t j = 0;
  while (i < base_entries.size() || j < target_entries.size()) {
    if (j >= target_entries.size() ||
        (i < base_entries.size() && base_entries[i].first < target_entries[j].first)) {
      diff.deleted.push_back(base_entries[i].first);
      ++i;
    } else if (i >= base_entries.size() ||
               target_entries[j].first < base_entries[i].first) {
      diff.changed_or_added.push_back(target_entries[j].first);
      ++j;
    } else {
      // Same LBA in both: changed iff it maps to a different physical page. A snapshot
      // map holds exactly one valid page per LBA, so equal paddr == identical content
      // (the cleaner moves both references together).
      if (base_entries[i].second != target_entries[j].second) {
        diff.changed_or_added.push_back(target_entries[j].first);
      }
      ++i;
      ++j;
    }
  }
  if (finish_ns != nullptr) {
    *finish_ns = t;
  }
  return diff;
}

StatusOr<uint64_t> SnapshotArchiver::CopyBlocks(
    uint32_t view_id, const std::vector<std::pair<uint64_t, uint64_t>>& entries,
    ArchiveImage* image, uint64_t issue_ns) {
  uint64_t t = issue_ns;
  for (const auto& [lba, paddr] : entries) {
    std::vector<uint8_t> data;
    ASSIGN_OR_RETURN(IoResult io, ftl_->ReadView(view_id, lba, t, &data));
    t = io.CompletionNs();
    image->blocks.emplace(lba, std::move(data));
  }
  return t;
}

StatusOr<ArchiveResult> SnapshotArchiver::ArchiveFull(uint32_t snap_id, uint64_t issue_ns,
                                                      bool delete_after) {
  ASSIGN_OR_RETURN(SnapshotInfo info, ftl_->snapshot_tree().Get(snap_id));
  uint64_t t = issue_ns;
  ASSIGN_OR_RETURN(uint32_t view,
                   ftl_->ActivateBlocking(snap_id, t, /*writable=*/false, &t));
  ASSIGN_OR_RETURN(auto entries, ftl_->ViewMapEntries(view));

  ArchiveImage image;
  image.archive_id = store_->NextId();
  image.name = info.name;
  ASSIGN_OR_RETURN(t, CopyBlocks(view, entries, &image, t));
  RETURN_IF_ERROR(ftl_->Deactivate(view, t));

  ArchiveResult result;
  result.archive_id = image.archive_id;
  result.blocks = entries.size();
  result.finish_ns = store_->Put(std::move(image), ftl_->config().nand.page_size_bytes, t);

  if (delete_after) {
    ASSIGN_OR_RETURN(IoResult del, ftl_->DeleteSnapshot(snap_id, result.finish_ns));
    result.finish_ns = std::max(result.finish_ns, del.CompletionNs());
  }
  return result;
}

StatusOr<ArchiveResult> SnapshotArchiver::ArchiveIncremental(uint32_t base_snap_id,
                                                             uint64_t base_archive_id,
                                                             uint32_t snap_id,
                                                             uint64_t issue_ns,
                                                             bool delete_after) {
  if (!store_->Contains(base_archive_id)) {
    return NotFound("base archive image " + std::to_string(base_archive_id) +
                    " does not exist");
  }
  ASSIGN_OR_RETURN(SnapshotInfo info, ftl_->snapshot_tree().Get(snap_id));

  uint64_t t = issue_ns;
  ASSIGN_OR_RETURN(SnapshotDiff diff, Diff(base_snap_id, snap_id, t, &t));

  ASSIGN_OR_RETURN(uint32_t view,
                   ftl_->ActivateBlocking(snap_id, t, /*writable=*/false, &t));
  ArchiveImage image;
  image.archive_id = store_->NextId();
  image.name = info.name;
  image.parent_id = base_archive_id;
  image.deleted_lbas = diff.deleted;
  for (uint64_t lba : diff.changed_or_added) {
    std::vector<uint8_t> data;
    ASSIGN_OR_RETURN(IoResult io, ftl_->ReadView(view, lba, t, &data));
    t = io.CompletionNs();
    image.blocks.emplace(lba, std::move(data));
  }
  RETURN_IF_ERROR(ftl_->Deactivate(view, t));

  ArchiveResult result;
  result.archive_id = image.archive_id;
  result.blocks = diff.changed_or_added.size();
  result.finish_ns = store_->Put(std::move(image), ftl_->config().nand.page_size_bytes, t);

  if (delete_after) {
    ASSIGN_OR_RETURN(IoResult del, ftl_->DeleteSnapshot(snap_id, result.finish_ns));
    result.finish_ns = std::max(result.finish_ns, del.CompletionNs());
  }
  return result;
}

StatusOr<uint64_t> SnapshotArchiver::RestoreToPrimary(uint64_t archive_id, uint64_t extent,
                                                      uint64_t issue_ns) {
  uint64_t t = issue_ns;
  ASSIGN_OR_RETURN(auto blocks, store_->Materialize(
                                    archive_id, ftl_->config().nand.page_size_bytes,
                                    issue_ns, &t));
  // Trim live LBAs that are absent from the image, then write the image's blocks.
  uint64_t run_start = 0;
  auto flush_trim = [&](uint64_t end) -> Status {
    if (end > run_start) {
      ASSIGN_OR_RETURN(IoResult io, ftl_->Trim(run_start, end - run_start, t));
      t = io.CompletionNs();
    }
    return OkStatus();
  };
  for (const auto& [lba, data] : blocks) {
    if (lba >= extent) {
      break;
    }
    RETURN_IF_ERROR(flush_trim(lba));
    run_start = lba + 1;
  }
  RETURN_IF_ERROR(flush_trim(extent));

  for (const auto& [lba, data] : blocks) {
    ASSIGN_OR_RETURN(IoResult io, ftl_->Write(lba, data, t));
    t = io.CompletionNs();
  }
  return t;
}

}  // namespace iosnap
