// SnapshotArchiver: moves ioSnap snapshots between flash and the archival tier (§7).
//
// Destaging activates the snapshot (reusing the rate-limitable activation machinery),
// streams every mapped block off flash onto the ArchiveStore, and optionally deletes the
// snapshot so the segment cleaner reclaims its flash space. Incremental destages diff
// two snapshots' forward maps — possible precisely because a snapshot's map lists one
// valid physical page per LBA, so "changed since the base" is a map comparison, not a
// content scan.

#ifndef SRC_ARCHIVE_SNAPSHOT_ARCHIVER_H_
#define SRC_ARCHIVE_SNAPSHOT_ARCHIVER_H_

#include <cstdint>
#include <vector>

#include "src/archive/archive_store.h"
#include "src/core/ftl.h"

namespace iosnap {

// Block-level difference between two snapshots.
struct SnapshotDiff {
  std::vector<uint64_t> changed_or_added;  // LBAs mapped differently in the newer one.
  std::vector<uint64_t> deleted;           // LBAs mapped in base but not in the newer.
};

struct ArchiveResult {
  uint64_t archive_id = 0;
  uint64_t blocks = 0;        // Blocks streamed (delta blocks for incrementals).
  uint64_t finish_ns = 0;
};

class SnapshotArchiver {
 public:
  SnapshotArchiver(Ftl* ftl, ArchiveStore* store);

  // Computes the block diff between two snapshots (base older than target).
  StatusOr<SnapshotDiff> Diff(uint32_t base_snap_id, uint32_t target_snap_id,
                              uint64_t issue_ns, uint64_t* finish_ns);

  // Full destage of a snapshot. With `delete_after`, the flash-side snapshot is removed
  // once the image is durable, letting the cleaner reclaim its space.
  StatusOr<ArchiveResult> ArchiveFull(uint32_t snap_id, uint64_t issue_ns,
                                      bool delete_after = false);

  // Incremental destage: streams only blocks that differ from `base_archive_id`'s source
  // snapshot. The caller asserts that `base_archive_id` was produced from
  // `base_snap_id` (the archiver has no flash-side record of deleted snapshots).
  StatusOr<ArchiveResult> ArchiveIncremental(uint32_t base_snap_id,
                                             uint64_t base_archive_id, uint32_t snap_id,
                                             uint64_t issue_ns, bool delete_after = false);

  // Restores an archived image into the live volume: every block in the materialized
  // image is written back; LBAs absent from the image are trimmed within [0, extent).
  // Returns the device finish time.
  StatusOr<uint64_t> RestoreToPrimary(uint64_t archive_id, uint64_t extent,
                                      uint64_t issue_ns);

 private:
  // Reads an activated view's blocks into an image.
  StatusOr<uint64_t> CopyBlocks(uint32_t view_id,
                                const std::vector<std::pair<uint64_t, uint64_t>>& entries,
                                ArchiveImage* image, uint64_t issue_ns);

  Ftl* ftl_;
  ArchiveStore* store_;
};

}  // namespace iosnap

#endif  // SRC_ARCHIVE_SNAPSHOT_ARCHIVER_H_
