#include "src/common/logging.h"

namespace iosnap {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  if (name == "debug") {
    return LogLevel::kDebug;
  }
  if (name == "info") {
    return LogLevel::kInfo;
  }
  if (name == "warning" || name == "warn") {
    return LogLevel::kWarning;
  }
  if (name == "error") {
    return LogLevel::kError;
  }
  return std::nullopt;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << std::endl; }

}  // namespace iosnap
