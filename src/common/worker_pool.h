// A small persistent thread pool with a fork-join ParallelFor.
//
// The pool exists for *host-side* parallelism only — shard-partitioned forward-map
// updates under the multi-queue submission layer. Simulated (virtual-clock) behaviour
// must never depend on it: callers hand the pool independent tasks whose combined
// effect is identical to running them sequentially, so a run with 0 threads and a run
// with 8 threads produce bit-identical simulator state. Threads block on a condition
// variable between jobs; dispatch is a mutex-guarded index grab, which is fine because
// tasks are chunky (a whole B+tree batch insert, not a single key).

#ifndef SRC_COMMON_WORKER_POOL_H_
#define SRC_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iosnap {

class WorkerPool {
 public:
  // Spawns `num_threads` workers. 0 is allowed: ParallelFor then runs inline on the
  // caller, so a WorkerPool* can be threaded through unconditionally.
  explicit WorkerPool(uint32_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  uint32_t thread_count() const { return static_cast<uint32_t>(threads_.size()); }

  // Runs fn(0) .. fn(n-1) across the workers plus the calling thread and returns when
  // every call has finished. Tasks must be independent (no ordering among them); the
  // caller re-establishes any deterministic ordering after the join.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Current job (guarded by mu_). generation_ bumps per job so late-waking workers
  // never re-run a finished one.
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t n_ = 0;
  size_t next_ = 0;
  size_t done_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace iosnap

#endif  // SRC_COMMON_WORKER_POOL_H_
