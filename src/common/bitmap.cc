#include "src/common/bitmap.h"

#include <bit>
#include <cassert>

namespace iosnap {

Bitmap::Bitmap(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + kBitsPerWord - 1) / kBitsPerWord, 0) {}

void Bitmap::Set(size_t index) {
  assert(index < num_bits_);
  words_[index / kBitsPerWord] |= (uint64_t{1} << (index % kBitsPerWord));
}

void Bitmap::Clear(size_t index) {
  assert(index < num_bits_);
  words_[index / kBitsPerWord] &= ~(uint64_t{1} << (index % kBitsPerWord));
}

bool Bitmap::Test(size_t index) const {
  assert(index < num_bits_);
  return (words_[index / kBitsPerWord] >> (index % kBitsPerWord)) & 1;
}

size_t Bitmap::CountOnes() const {
  size_t count = 0;
  for (uint64_t word : words_) {
    count += static_cast<size_t>(std::popcount(word));
  }
  return count;
}

size_t Bitmap::CountOnesInRange(size_t begin, size_t end) const {
  assert(begin <= end && end <= num_bits_);
  size_t count = 0;
  size_t i = begin;
  // Leading partial word.
  while (i < end && (i % kBitsPerWord) != 0) {
    count += Test(i) ? 1 : 0;
    ++i;
  }
  // Whole words.
  while (i + kBitsPerWord <= end) {
    count += static_cast<size_t>(std::popcount(words_[i / kBitsPerWord]));
    i += kBitsPerWord;
  }
  // Trailing partial word.
  while (i < end) {
    count += Test(i) ? 1 : 0;
    ++i;
  }
  return count;
}

size_t Bitmap::FindFirstSet(size_t from) const {
  if (from >= num_bits_) {
    return num_bits_;
  }
  size_t word_index = from / kBitsPerWord;
  uint64_t word = words_[word_index] & (~uint64_t{0} << (from % kBitsPerWord));
  while (true) {
    if (word != 0) {
      size_t bit = word_index * kBitsPerWord + static_cast<size_t>(std::countr_zero(word));
      return bit < num_bits_ ? bit : num_bits_;
    }
    ++word_index;
    if (word_index >= words_.size()) {
      return num_bits_;
    }
    word = words_[word_index];
  }
}

void Bitmap::Reset() {
  for (uint64_t& word : words_) {
    word = 0;
  }
}

void Bitmap::OrWith(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

}  // namespace iosnap
