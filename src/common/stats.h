// Measurement helpers used by benchmarks and the workload runner:
//  - OnlineStats:    streaming mean / stddev / min / max.
//  - LatencyHistogram: log-bucketed latency histogram with percentile queries.
//  - Timeline:       (virtual time, value) series with fixed-interval bucketing for the
//                    latency-over-time figures (Fig 7, 9, 10, 11, 12).

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace iosnap {

class OnlineStats {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Sample standard deviation (Welford).
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Histogram over latencies in nanoseconds. Buckets grow geometrically: each power of
// two is split into 16 equal sub-buckets, and a percentile query returns the midpoint
// of the bucket holding the p-th sample. For values >= 32 ns the sub-bucket spans
// 1/16 of its power-of-two range, so the midpoint is off by at most half a sub-bucket:
// relative error <= 1/32 (3.125%) across the whole ns..minutes range. Below 32 ns the
// ranges are too narrow to split; whole powers of two are single buckets whose
// representative is the lower edge, so the result can be up to 2x under the true value.
class LatencyHistogram {
 public:
  LatencyHistogram();

  // Inline: the attribution layer calls this 8x per completed op, so Add must stay a
  // handful of instructions (see LatencyAttributor::Record).
  void Add(uint64_t latency_ns) {
    ++buckets_[static_cast<size_t>(BucketFor(latency_ns))];
    ++count_;
    sum_ns_ += static_cast<double>(latency_ns);
    max_ns_ = std::max(max_ns_, latency_ns);
  }

  uint64_t count() const { return count_; }
  double MeanNs() const { return count_ == 0 ? 0.0 : sum_ns_ / static_cast<double>(count_); }
  uint64_t MaxNs() const { return max_ns_; }

  // Latency at percentile p in [0, 100]. Returns the representative value of the bucket
  // containing the p-th sample; p = 0 reports the smallest recorded bucket, p = 100 the
  // largest. Returns 0 when no samples were recorded.
  uint64_t PercentileNs(double p) const;

 private:
  static constexpr int kSubBuckets = 16;
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  static int BucketFor(uint64_t ns) {
    if (ns == 0) {
      return 0;
    }
    const int log2 = 63 - std::countl_zero(ns);
    int sub = 0;
    if (log2 > 4) {
      // Position within the power-of-two range, quantized to kSubBuckets slots.
      sub = static_cast<int>((ns - (uint64_t{1} << log2)) >> (log2 - 4));
    }
    const int bucket = log2 * kSubBuckets + sub;
    return std::min(bucket, kNumBuckets - 1);
  }

  static uint64_t BucketValue(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t max_ns_ = 0;
  double sum_ns_ = 0.0;
};

// A time-ordered series of samples on the virtual clock. Used to emit the paper's
// latency-vs-time and bandwidth-vs-time plots as CSV.
class Timeline {
 public:
  struct Sample {
    uint64_t t_ns;
    double value;
  };

  void Add(uint64_t t_ns, double value) { samples_.push_back({t_ns, value}); }

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  struct Bucket {
    uint64_t t_ns;     // Bucket start time.
    uint64_t count;
    double mean;
    double max;
  };

  // Aggregates samples into fixed-width virtual-time buckets (for plot-friendly output).
  std::vector<Bucket> Bucketize(uint64_t bucket_ns) const;

  // Renders "t_label,value_label" CSV rows of the bucketized series to a string.
  std::string ToCsv(uint64_t bucket_ns, const std::string& t_label,
                    const std::string& value_label) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace iosnap

#endif  // SRC_COMMON_STATS_H_
