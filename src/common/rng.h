// Deterministic pseudo-random number generation (xoshiro256**), used by workload
// generators and property tests. Seeded explicitly everywhere so runs reproduce.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace iosnap {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

 private:
  uint64_t state_[4];
};

}  // namespace iosnap

#endif  // SRC_COMMON_RNG_H_
