#include "src/common/worker_pool.h"

namespace iosnap {

WorkerPool::WorkerPool(uint32_t num_threads) {
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) {
      return;
    }
    seen = generation_;
    while (next_ < n_) {
      const size_t index = next_++;
      lock.unlock();
      (*fn_)(index);
      lock.lock();
      ++done_;
    }
    if (done_ == n_) {
      cv_done_.notify_all();
    }
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  n_ = n;
  next_ = 0;
  done_ = 0;
  ++generation_;
  cv_work_.notify_all();
  // The caller participates instead of idling behind the join.
  while (next_ < n_) {
    const size_t index = next_++;
    lock.unlock();
    fn(index);
    lock.lock();
    ++done_;
  }
  cv_done_.wait(lock, [&] { return done_ == n_; });
  fn_ = nullptr;
}

}  // namespace iosnap
