#include "src/common/crc32.h"

#include <array>

namespace iosnap {
namespace {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

uint32_t Crc32Raw(uint32_t state, std::span<const uint8_t> data) {
  for (uint8_t byte : data) {
    state = kCrc32Table[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32Raw(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

uint32_t Crc32Extend(uint32_t crc, std::span<const uint8_t> data) {
  return Crc32Raw(crc ^ 0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

}  // namespace iosnap
