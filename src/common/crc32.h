// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum page
// headers + payloads on the simulated NAND device so silent corruption is
// detectable instead of silently served back to the host.

#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstdint>
#include <span>

namespace iosnap {

// One-shot CRC-32 of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

// Extends a previously computed CRC with more bytes, such that
//   Crc32Extend(Crc32(a), b) == Crc32(a || b).
uint32_t Crc32Extend(uint32_t crc, std::span<const uint8_t> data);

}  // namespace iosnap

#endif  // SRC_COMMON_CRC32_H_
