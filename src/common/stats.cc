#include "src/common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "src/common/units.h"

namespace iosnap {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

uint64_t LatencyHistogram::BucketValue(int bucket) {
  const int log2 = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  const uint64_t base = uint64_t{1} << log2;
  if (log2 <= 4) {
    return base;
  }
  // Midpoint of the sub-bucket.
  return base + (static_cast<uint64_t>(sub) << (log2 - 4)) + (uint64_t{1} << (log2 - 5));
}

uint64_t LatencyHistogram::PercentileNs(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Clamp to >= 1 so p = 0 lands on the first occupied bucket rather than bucket 0.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) {
      return BucketValue(i);
    }
  }
  return max_ns_;
}

std::vector<Timeline::Bucket> Timeline::Bucketize(uint64_t bucket_ns) const {
  std::vector<Bucket> out;
  if (samples_.empty() || bucket_ns == 0) {
    return out;
  }
  uint64_t bucket_start = samples_.front().t_ns / bucket_ns * bucket_ns;
  OnlineStats stats;
  for (const Sample& s : samples_) {
    while (s.t_ns >= bucket_start + bucket_ns) {
      if (stats.count() > 0) {
        out.push_back({bucket_start, stats.count(), stats.mean(), stats.max()});
      }
      stats = OnlineStats();
      bucket_start += bucket_ns;
    }
    stats.Add(s.value);
  }
  if (stats.count() > 0) {
    out.push_back({bucket_start, stats.count(), stats.mean(), stats.max()});
  }
  return out;
}

std::string Timeline::ToCsv(uint64_t bucket_ns, const std::string& t_label,
                            const std::string& value_label) const {
  std::ostringstream os;
  os << t_label << "," << value_label << "_mean," << value_label << "_max,count\n";
  for (const Bucket& b : Bucketize(bucket_ns)) {
    os << NsToSec(b.t_ns) << "," << b.mean << "," << b.max << "," << b.count << "\n";
  }
  return os.str();
}

}  // namespace iosnap
