// Minimal command-line flag parsing for the tools and benchmark binaries.
// Accepts --name=value and --name (boolean true); everything else is positional.

#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace iosnap {

class Flags {
 public:
  // Parses argv; unknown flags are kept (validated by the caller via Has/Keys).
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& name) const { return values_.contains(name); }

  std::string GetString(const std::string& name, const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Returns the flag names that were passed but are not in `known` (typo detection).
  std::vector<std::string> UnknownFlags(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace iosnap

#endif  // SRC_COMMON_FLAGS_H_
