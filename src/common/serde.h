// Minimal little-endian byte serialization used by the checkpoint format. All Get*
// functions validate bounds and report kDataLoss on truncation — a torn checkpoint must
// be detected, not crash.

#ifndef SRC_COMMON_SERDE_H_
#define SRC_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace iosnap {

inline void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

inline Status GetU8(const std::vector<uint8_t>& in, size_t* offset, uint8_t* v) {
  if (*offset + 1 > in.size()) {
    return DataLoss("serde: truncated u8");
  }
  *v = in[*offset];
  *offset += 1;
  return OkStatus();
}

inline Status GetU32(const std::vector<uint8_t>& in, size_t* offset, uint32_t* v) {
  if (*offset + 4 > in.size()) {
    return DataLoss("serde: truncated u32");
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(in[*offset + i]) << (8 * i);
  }
  *v = out;
  *offset += 4;
  return OkStatus();
}

inline Status GetU64(const std::vector<uint8_t>& in, size_t* offset, uint64_t* v) {
  if (*offset + 8 > in.size()) {
    return DataLoss("serde: truncated u64");
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(in[*offset + i]) << (8 * i);
  }
  *v = out;
  *offset += 8;
  return OkStatus();
}

inline Status GetString(const std::vector<uint8_t>& in, size_t* offset, std::string* s) {
  uint32_t len = 0;
  RETURN_IF_ERROR(GetU32(in, offset, &len));
  if (*offset + len > in.size()) {
    return DataLoss("serde: truncated string");
  }
  s->assign(reinterpret_cast<const char*>(in.data() + *offset), len);
  *offset += len;
  return OkStatus();
}

}  // namespace iosnap

#endif  // SRC_COMMON_SERDE_H_
