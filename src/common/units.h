// Size and virtual-time unit helpers. All simulated time in this codebase is in nanoseconds
// held in uint64_t; all sizes are in bytes held in uint64_t.

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace iosnap {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr uint64_t kNsPerUs = 1000;
inline constexpr uint64_t kNsPerMs = 1000 * kNsPerUs;
inline constexpr uint64_t kNsPerSec = 1000 * kNsPerMs;

constexpr uint64_t UsToNs(uint64_t us) { return us * kNsPerUs; }
constexpr uint64_t MsToNs(uint64_t ms) { return ms * kNsPerMs; }
constexpr uint64_t SecToNs(uint64_t sec) { return sec * kNsPerSec; }

constexpr double NsToUs(uint64_t ns) { return static_cast<double>(ns) / kNsPerUs; }
constexpr double NsToMs(uint64_t ns) { return static_cast<double>(ns) / kNsPerMs; }
constexpr double NsToSec(uint64_t ns) { return static_cast<double>(ns) / kNsPerSec; }

// Throughput in MB/s (decimal MB, as storage papers report) given bytes moved over a
// virtual-time interval.
constexpr double MbPerSec(uint64_t bytes, uint64_t elapsed_ns) {
  if (elapsed_ns == 0) {
    return 0.0;
  }
  return (static_cast<double>(bytes) / 1e6) / NsToSec(elapsed_ns);
}

}  // namespace iosnap

#endif  // SRC_COMMON_UNITS_H_
