// Minimal logging / assertion macros for an exception-free codebase.
//
// IOSNAP_CHECK aborts on violated invariants (programming errors); recoverable conditions
// go through Status instead. LOG(level) writes a structured line to stderr.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

namespace iosnap {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Global threshold; messages below it are dropped. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Parses "debug" | "info" | "warning"/"warn" | "error" (case-sensitive, as typed on a
// --log_level= flag). Returns nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(const std::string& name);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace iosnap

#define IOSNAP_LOG_ENABLED(level) (::iosnap::LogLevel::level >= ::iosnap::GetLogLevel())

#define IOSNAP_LOG(level)             \
  !IOSNAP_LOG_ENABLED(level)          \
      ? (void)0                       \
      : ::iosnap::LogMessageVoidify() & \
            ::iosnap::LogMessage(::iosnap::LogLevel::level, __FILE__, __LINE__).stream()

#define IOSNAP_CHECK(condition)                                                      \
  do {                                                                               \
    if (!(condition)) {                                                              \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__ << ": "         \
                << #condition << std::endl;                                          \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define IOSNAP_CHECK_OK(expr)                                                        \
  do {                                                                               \
    const ::iosnap::Status iosnap_check_status_ = (expr);                            \
    if (!iosnap_check_status_.ok()) {                                                \
      std::cerr << "CHECK_OK failed at " << __FILE__ << ":" << __LINE__ << ": "      \
                << iosnap_check_status_.ToString() << std::endl;                     \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#endif  // SRC_COMMON_LOGGING_H_
