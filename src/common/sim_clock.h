// Virtual clock driving the whole simulation.
//
// The repository is a discrete-event simulation of an FTL on a NAND device: no component
// reads wall-clock time. Foreground I/O, the segment cleaner, and snapshot activation all
// advance and observe one SimClock, which makes every benchmark timeline deterministic.

#ifndef SRC_COMMON_SIM_CLOCK_H_
#define SRC_COMMON_SIM_CLOCK_H_

#include <algorithm>
#include <cstdint>

namespace iosnap {

class SimClock {
 public:
  SimClock() = default;

  // Current virtual time in nanoseconds since simulation start.
  uint64_t NowNs() const { return now_ns_; }

  // Moves time forward by `delta_ns`.
  void Advance(uint64_t delta_ns) { now_ns_ += delta_ns; }

  // Moves time forward to `t_ns` if it is in the future; never moves backwards.
  void AdvanceTo(uint64_t t_ns) { now_ns_ = std::max(now_ns_, t_ns); }

  void Reset() { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace iosnap

#endif  // SRC_COMMON_SIM_CLOCK_H_
