#include "src/common/rng.h"

namespace iosnap {

namespace {

// SplitMix64, used only to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(&s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's multiply-shift bounded generation; the modulo bias is negligible for our
  // simulation purposes but we reject the biased low region anyway for test determinism.
  if (bound == 0) {
    return 0;
  }
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  auto low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace iosnap
