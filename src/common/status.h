// Lightweight error-handling primitives (no exceptions), modeled on absl::Status.
//
// All fallible operations in this codebase return Status or StatusOr<T>. Callers either
// handle the error or propagate it with RETURN_IF_ERROR / ASSIGN_OR_RETURN.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace iosnap {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kDataLoss,
  kUnavailable,
  kUnimplemented,
  kInternal,
};

// Human-readable name for a status code ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// A Status is either OK or carries an error code plus a diagnostic message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Full "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

Status OkStatus();
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status OutOfRange(std::string message);
Status FailedPrecondition(std::string message);
Status ResourceExhausted(std::string message);
Status DataLoss(std::string message);
Status Unavailable(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);

// A StatusOr<T> holds either a value of type T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}          // NOLINT(google-explicit-constructor)
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define IOSNAP_CONCAT_INNER_(a, b) a##b
#define IOSNAP_CONCAT_(a, b) IOSNAP_CONCAT_INNER_(a, b)

// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                        \
  do {                                               \
    ::iosnap::Status iosnap_status_tmp_ = (expr);    \
    if (!iosnap_status_tmp_.ok()) {                  \
      return iosnap_status_tmp_;                     \
    }                                                \
  } while (0)

// Evaluates a StatusOr expression; on error propagates the Status, otherwise assigns the value.
#define ASSIGN_OR_RETURN(lhs, expr) \
  ASSIGN_OR_RETURN_IMPL_(IOSNAP_CONCAT_(iosnap_statusor_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                           \
  if (!tmp.ok()) {                             \
    return tmp.status();                       \
  }                                            \
  lhs = std::move(tmp).value()

}  // namespace iosnap

#endif  // SRC_COMMON_STATUS_H_
