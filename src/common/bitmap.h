// Dense bitset over 64-bit words. This is the raw storage primitive underneath the FTL's
// per-epoch copy-on-write validity maps (src/ftl/validity_map.h); it knows nothing about
// epochs or chunks itself.

#ifndef SRC_COMMON_BITMAP_H_
#define SRC_COMMON_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iosnap {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits);

  size_t size() const { return num_bits_; }

  void Set(size_t index);
  void Clear(size_t index);
  bool Test(size_t index) const;

  // Number of set bits in the whole map.
  size_t CountOnes() const;

  // Number of set bits in [begin, end).
  size_t CountOnesInRange(size_t begin, size_t end) const;

  // Index of the first set bit at or after `from`, or size() if none.
  size_t FindFirstSet(size_t from = 0) const;

  // Sets all bits to zero without changing the size.
  void Reset();

  // In-place bitwise OR with another bitmap of identical size.
  void OrWith(const Bitmap& other);

  bool operator==(const Bitmap& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  // Approximate heap footprint, used by memory-overhead experiments.
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  static constexpr size_t kBitsPerWord = 64;

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace iosnap

#endif  // SRC_COMMON_BITMAP_H_
