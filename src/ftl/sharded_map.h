// LBA-range-sharded forward map: N BPlusTree instances behind one facade.
//
// The multi-queue submission layer (src/core/io_queue) commits batches that span the
// whole LBA space; a single tree serializes every map update behind one root. Sharding
// by LBA range lets one batch update disjoint shards in parallel on a WorkerPool while
// keeping every observable result identical to a single tree:
//
//   * Routing is pure: shard(key) = key / keys_per_shard (clamped to the last shard),
//     so duplicate keys always land in the same shard and resolve in submission order.
//     InsertBatch therefore returns the same new-key count and the same per-entry
//     old_values as the unsharded tree, regardless of thread schedule.
//   * Shards partition the key space in order, so ForEach/ToSortedVector walk shards
//     0..N-1 and emerge globally key-sorted with no merge step.
//   * MemoryBytes() is the sum of per-shard footprints (ShardMemoryBytes), keeping the
//     Table 3 accounting exact under sharding.
//
// Mutations that must stay totally ordered for crash determinism (validity-bitmap CoW,
// segment allocation) do NOT live here — see DESIGN.md "Multi-queue submission &
// sharded map". Per-shard mutexes guard the parallel InsertBatch tasks; scalar
// Insert/Lookup/Erase run on the single simulation thread and stay lock-free.
//
// A default-constructed ShardedMap has one shard covering the whole key space and
// behaves exactly like a bare BPlusTree — activated snapshot views keep using that
// compact single-shard form.

#ifndef SRC_FTL_SHARDED_MAP_H_
#define SRC_FTL_SHARDED_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/common/worker_pool.h"
#include "src/ftl/btree.h"

namespace iosnap {

class ShardedMap {
 public:
  // One shard spanning all keys; no pool. The form every snapshot view uses.
  ShardedMap() { Configure(1, 0, nullptr); }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;
  ShardedMap(ShardedMap&&) noexcept = default;
  ShardedMap& operator=(ShardedMap&&) noexcept = default;

  // Re-partitions an *empty* map into `num_shards` ranges over [0, key_span).
  // key_span 0 means "unbounded" (all keys route to shard key / keys_per_shard with
  // keys_per_shard = 2^64-1, i.e. shard 0 unless num_shards keys overflow — callers
  // pass the real LBA count). `pool` (may be null) runs per-shard batch updates.
  void Configure(uint32_t num_shards, uint64_t key_span, WorkerPool* pool);

  // --- BPlusTree-compatible surface (see btree.h for contracts) ---

  bool Insert(uint64_t key, uint64_t value);

  // Equivalent to per-entry Insert in submission order. When `pool` threads are
  // available and the batch touches several shards, per-shard sub-batches run in
  // parallel under the shard mutexes; results are scattered back by original index, so
  // the outcome is schedule-independent.
  size_t InsertBatch(std::span<const std::pair<uint64_t, uint64_t>> entries,
                     std::vector<std::optional<uint64_t>>* old_values = nullptr);

  std::optional<uint64_t> Lookup(uint64_t key) const;
  bool Erase(uint64_t key);
  void Clear();

  size_t size() const;
  bool empty() const { return size() == 0; }

  // In-order visit across shards (shards partition the key space in order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& shard : shards_) {
      shard->tree.ForEach(fn);
    }
  }

  std::vector<std::pair<uint64_t, uint64_t>> ToSortedVector() const;

  // Replaces the contents with a packed bulk-load of key-sorted unique pairs, keeping
  // the current shard partitioning (each shard bulk-loads its key range). With one
  // shard this is exactly BPlusTree::BulkLoad — the activation path.
  void BulkLoadReplace(const std::vector<std::pair<uint64_t, uint64_t>>& sorted_pairs);

  // --- Introspection (Table 3) ---
  size_t LeafNodeCount() const;
  size_t InternalNodeCount() const;
  size_t NodeCount() const { return LeafNodeCount() + InternalNodeCount(); }
  // Total forward-map footprint: the sum over ShardMemoryBytes(i).
  size_t MemoryBytes() const;

  uint32_t ShardCount() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t KeysPerShard() const { return keys_per_shard_; }
  size_t ShardMemoryBytes(uint32_t shard) const;
  size_t ShardEntryCount(uint32_t shard) const;

  // Structural invariants of every shard tree, plus the routing invariant that each
  // shard only holds keys from its own range.
  bool CheckInvariants() const;

 private:
  struct Shard {
    BPlusTree tree;
    std::mutex mu;  // Guards tree during parallel InsertBatch tasks.
  };

  size_t ShardOf(uint64_t key) const {
    const size_t s = static_cast<size_t>(key / keys_per_shard_);
    return s < shards_.size() ? s : shards_.size() - 1;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t keys_per_shard_ = ~uint64_t{0};
  WorkerPool* pool_ = nullptr;
};

}  // namespace iosnap

#endif  // SRC_FTL_SHARDED_MAP_H_
