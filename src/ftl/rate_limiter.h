// Background-work rate limiting (§5.7).
//
// ioSnap paces background tasks (snapshot activation, segment cleaning) with the paper's
// "x usec / y msec" knob: a task may execute a burst of up to `work_quantum_ns` of device
// work, then must stay idle for `sleep_ns` of virtual time. Foreground I/O issued during
// the idle window sees an uncontended device; the trade-off is a longer task completion
// time (Figure 9's rate-limited activations).

#ifndef SRC_FTL_RATE_LIMITER_H_
#define SRC_FTL_RATE_LIMITER_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/obs/trace.h"

namespace iosnap {

struct RateLimit {
  uint64_t work_quantum_ns = MsToNs(1);  // Device-busy time allowed per burst.
  uint64_t sleep_ns = 0;                 // Mandatory idle time between bursts.

  // No pacing: large bursts back-to-back. Foreground traffic still interleaves between
  // bursts, so this reproduces the paper's "no rate limiting" 10x-latency case rather
  // than a total foreground stall.
  static RateLimit Unlimited() { return RateLimit{MsToNs(1), 0}; }

  // The paper's notation "<work> usec / <sleep> msec".
  static RateLimit Of(uint64_t work_us, uint64_t sleep_ms) {
    return RateLimit{UsToNs(work_us), MsToNs(sleep_ms)};
  }
};

class RateLimiter {
 public:
  explicit RateLimiter(RateLimit limit) : limit_(limit) {}

  const RateLimit& limit() const { return limit_; }

  // May a burst start at virtual time `now`?
  bool CanRun(uint64_t now_ns) const { return now_ns >= next_allowed_ns_; }

  // Earliest time the next burst may start.
  uint64_t NextAllowedNs() const { return next_allowed_ns_; }

  // Records that a burst finished its device work at `burst_end_ns`. With tracing
  // attached, every enforced sleep window (the throttle decision) is recorded.
  void OnBurstComplete(uint64_t burst_end_ns) {
    next_allowed_ns_ = burst_end_ns + limit_.sleep_ns;
    if (trace_ != nullptr && limit_.sleep_ns > 0) {
      trace_->Record(TraceEventType::kRateLimiterSleep, burst_end_ns, next_allowed_ns_,
                     limit_.sleep_ns);
    }
  }

  void Reset() { next_allowed_ns_ = 0; }

  // Optional flight-recorder hook; nullptr (the default) disables it.
  void SetTraceRecorder(TraceRecorder* trace) { trace_ = trace; }

 private:
  RateLimit limit_;
  uint64_t next_allowed_ns_ = 0;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace iosnap

#endif  // SRC_FTL_RATE_LIMITER_H_
