#include "src/ftl/log_manager.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/nand/parity.h"

namespace iosnap {

LogManager::LogManager(NandDevice* device, uint64_t gc_reserve_segments,
                       uint64_t parity_stripe)
    : device_(device),
      gc_reserve_segments_(gc_reserve_segments),
      parity_stripe_(parity_stripe),
      segments_(device->config().num_segments) {
  IOSNAP_CHECK(device != nullptr);
  IOSNAP_CHECK(gc_reserve_segments_ < device->config().num_segments);
  IOSNAP_CHECK(parity_stripe_ == 0 ||
               parity_stripe_ + 1 <= device->config().pages_per_segment);
  for (uint64_t s = 0; s < device->config().num_segments; ++s) {
    free_segments_.push_back(s);
  }
}

void LogManager::ResetParity(Head& h) {
  if (parity_stripe_ == 0) {
    return;
  }
  h.parity_xor.assign(ParityImageSize(device_->config().page_size_bytes), 0);
  h.parity_poisoned = false;
}

void LogManager::AccumulateParity(Head& h, const PageHeader& header,
                                  std::span<const uint8_t> data) {
  if (parity_stripe_ == 0 || h.parity_poisoned) {
    return;
  }
  if (h.parity_xor.empty()) {
    ResetParity(h);
  }
  const bool stored =
      (device_->config().store_data || PayloadAlwaysStored(header.type)) && !data.empty();
  const std::span<const uint8_t> payload =
      stored ? data : std::span<const uint8_t>{};
  PageHeader stamped = header;
  stamped.crc = ComputePageCrc(stamped, payload);
  XorMemberImage(h.parity_xor, stamped, payload, device_->config().page_size_bytes);
}

void LogManager::AccumulateParityStored(Head& h, uint64_t src_paddr) {
  if (parity_stripe_ == 0 || h.parity_poisoned) {
    return;
  }
  if (h.parity_xor.empty()) {
    ResetParity(h);
  }
  XorMemberImage(h.parity_xor, device_->PeekHeader(src_paddr),
                 device_->PeekPageData(src_paddr), device_->config().page_size_bytes);
}

Status LogManager::EmitParityIfDue(int head, uint64_t issue_ns) {
  if (parity_stripe_ == 0) {
    return OkStatus();
  }
  Head& h = HeadFor(head);
  const uint64_t pages_per_segment = device_->config().pages_per_segment;
  while (h.open_segment.has_value()) {
    const uint64_t seg = *h.open_segment;
    const uint64_t next = device_->NextFreePage(seg);
    if (next >= pages_per_segment ||
        !IsParitySlot(next, parity_stripe_, pages_per_segment)) {
      return OkStatus();
    }
    if (h.parity_xor.empty()) {
      ResetParity(h);
    }
    const uint64_t start = StripeStartIndex(next, parity_stripe_);
    PageHeader header;
    header.type = RecordType::kParity;
    header.lba = device_->FirstPageOf(seg) + start;
    header.trim_count =
        h.parity_poisoned ? 0 : static_cast<uint32_t>(next - start);
    header.payload_len = static_cast<uint32_t>(h.parity_xor.size());
    // A poisoned stripe writes an all-zero image under trim_count = 0: a parity page
    // that verifies (the log stays scannable) but that rebuild refuses to use.
    const std::vector<uint8_t> zeros =
        h.parity_poisoned ? std::vector<uint8_t>(h.parity_xor.size(), 0)
                          : std::vector<uint8_t>{};
    const std::span<const uint8_t> image =
        h.parity_poisoned ? std::span<const uint8_t>(zeros)
                          : std::span<const uint8_t>(h.parity_xor);
    uint64_t paddr = 0;
    StatusOr<NandOp> op = device_->ProgramPage(seg, header, image, issue_ns, &paddr);
    if (!op.ok()) {
      if (op.status().code() == StatusCode::kDataLoss) {
        // The parity program retired the block. Positional parity cannot be re-driven
        // into another segment, so the members stay durable but uncovered; abandon
        // the segment and let the cleaner migrate them off later.
        IOSNAP_LOG(kWarning) << "log: parity program failed in segment " << seg
                             << "; stripe left unprotected: " << op.status();
        AbandonOpenSegment(head);
        return OkStatus();
      }
      return op.status();
    }
    ++stats_.parity_pages_written;
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kParityWrite, issue_ns, op->finish_ns, seg, paddr,
                     header.trim_count);
    }
    ResetParity(h);
    if (device_->NextFreePage(seg) >= pages_per_segment) {
      segments_[seg].state = SegmentState::kClosed;
      h.open_segment.reset();
    }
  }
  return OkStatus();
}

LogManager::Head& LogManager::HeadFor(int head) { return heads_[head]; }

bool LogManager::CanAppend(int head) const {
  auto it = heads_.find(head);
  if (it != heads_.end() && it->second.open_segment.has_value()) {
    const uint64_t seg = *it->second.open_segment;
    if (device_->NextFreePage(seg) < device_->config().pages_per_segment) {
      return true;
    }
  }
  // Needs a fresh segment.
  if (head == kActiveHead) {
    return free_segments_.size() > gc_reserve_segments_;
  }
  return !free_segments_.empty();
}

StatusOr<uint64_t> LogManager::AcquireSegment(int head) {
  if (free_segments_.empty()) {
    return ResourceExhausted("log: no free segments");
  }
  if (head == kActiveHead && free_segments_.size() <= gc_reserve_segments_) {
    return ResourceExhausted("log: active head blocked by GC reserve");
  }
  const uint64_t seg = free_segments_.front();
  free_segments_.pop_front();

  SegmentInfo& info = segments_[seg];
  IOSNAP_CHECK(info.state == SegmentState::kFree);
  info.state = SegmentState::kOpen;
  info.use_order = ++use_counter_;
  info.min_seq = ~uint64_t{0};
  info.epoch_pages.clear();
  return seg;
}

void LogManager::AbandonOpenSegment(int head) {
  Head& h = HeadFor(head);
  if (!h.open_segment.has_value()) {
    return;
  }
  segments_[*h.open_segment].state = SegmentState::kClosed;
  h.open_segment.reset();
  ResetParity(h);
}

StatusOr<AppendResult> LogManager::Append(int head, const PageHeader& header,
                                          std::span<const uint8_t> data, uint64_t issue_ns) {
  Head& h = HeadFor(head);

  for (int attempt = 0;; ++attempt) {
    if (h.open_segment.has_value()) {
      const uint64_t seg = *h.open_segment;
      if (device_->NextFreePage(seg) >= device_->config().pages_per_segment) {
        segments_[seg].state = SegmentState::kClosed;
        h.open_segment.reset();
      }
    }
    if (!h.open_segment.has_value()) {
      ASSIGN_OR_RETURN(uint64_t seg, AcquireSegment(head));
      h.open_segment = seg;
      ResetParity(h);
    }
    // A reopened partial segment may sit exactly on a parity slot: cover the pending
    // stripe before the member lands.
    RETURN_IF_ERROR(EmitParityIfDue(head, issue_ns));
    if (!h.open_segment.has_value()) {
      continue;  // Parity emission closed or abandoned the segment; take a fresh one.
    }

    const uint64_t seg = *h.open_segment;
    AppendResult result;
    StatusOr<NandOp> op = device_->ProgramPage(seg, header, data, issue_ns, &result.paddr);
    if (!op.ok()) {
      if (op.status().code() == StatusCode::kDataLoss && attempt < kMaxAppendReroutes) {
        // Program failure: the device retired the block. Abandon the segment (the
        // cleaner will copy its earlier records off) and re-drive the record.
        AbandonOpenSegment(head);
        ++stats_.append_reroutes;
        continue;
      }
      return op.status();
    }
    result.op = *op;
    AccumulateParity(h, header, data);

    SegmentInfo& info = segments_[seg];
    info.min_seq = std::min(info.min_seq, header.seq);
    if (header.type == RecordType::kData) {
      info.min_data_seq = std::min(info.min_data_seq, header.seq);
      ++info.epoch_pages[header.epoch];
    }
    // The member is durable, so the op is acked no matter what happens to the
    // trailing parity emission: a failure here (say the device went offline mid
    // parity program) leaves the stripe uncovered until a later append retries the
    // slot — protection degradation, never a failed-but-durable user write.
    if (const Status parity = EmitParityIfDue(head, issue_ns); !parity.ok()) {
      IOSNAP_LOG(kWarning) << "log: trailing parity emission failed: " << parity;
    }
    if (h.open_segment.has_value() &&
        device_->NextFreePage(seg) >= device_->config().pages_per_segment) {
      info.state = SegmentState::kClosed;
      h.open_segment.reset();
    }
    return result;
  }
}

StatusOr<AppendResult> LogManager::AppendCopyback(int head, uint64_t src_paddr,
                                                  const PageHeader& header,
                                                  uint64_t issue_ns) {
  Head& h = HeadFor(head);

  for (int attempt = 0;; ++attempt) {
    if (h.open_segment.has_value()) {
      const uint64_t seg = *h.open_segment;
      if (device_->NextFreePage(seg) >= device_->config().pages_per_segment) {
        segments_[seg].state = SegmentState::kClosed;
        h.open_segment.reset();
      }
    }
    if (!h.open_segment.has_value()) {
      ASSIGN_OR_RETURN(uint64_t seg, AcquireSegment(head));
      h.open_segment = seg;
      ResetParity(h);
    }
    RETURN_IF_ERROR(EmitParityIfDue(head, issue_ns));
    if (!h.open_segment.has_value()) {
      continue;  // Parity emission closed or abandoned the segment; take a fresh one.
    }

    const uint64_t seg = *h.open_segment;
    AppendResult result;
    StatusOr<NandOp> op = device_->CopybackPage(src_paddr, seg, issue_ns, &result.paddr);
    if (!op.ok()) {
      // kDataLoss means either a program failure (destination block retired — reroute
      // to a fresh segment, exactly like Append) or a scrub-detected CRC mismatch on
      // the source (the destination is fine; rerouting cannot fix the source, so the
      // error propagates for the caller's unreadable-page handling).
      if (op.status().code() == StatusCode::kDataLoss && device_->IsBadSegment(seg) &&
          attempt < kMaxAppendReroutes) {
        AbandonOpenSegment(head);
        ++stats_.append_reroutes;
        continue;
      }
      return op.status();
    }
    result.op = *op;
    // The destination's stored bytes came verbatim from the source; tap the source
    // for the accumulator (the on-die XOR engine sits on the same internal path).
    AccumulateParityStored(h, src_paddr);

    SegmentInfo& info = segments_[seg];
    info.min_seq = std::min(info.min_seq, header.seq);
    if (header.type == RecordType::kData) {
      info.min_data_seq = std::min(info.min_data_seq, header.seq);
      ++info.epoch_pages[header.epoch];
    }
    // As in Append: the relocated page is durable, so the trailing parity emission
    // must not fail the relocation it rode in on.
    if (const Status parity = EmitParityIfDue(head, issue_ns); !parity.ok()) {
      IOSNAP_LOG(kWarning) << "log: trailing parity emission failed: " << parity;
    }
    if (h.open_segment.has_value() &&
        device_->NextFreePage(seg) >= device_->config().pages_per_segment) {
      info.state = SegmentState::kClosed;
      h.open_segment.reset();
    }
    return result;
  }
}

std::optional<uint32_t> LogManager::NextAppendChannel(int head) const {
  const uint64_t pages_per_segment = device_->config().pages_per_segment;
  const uint32_t channels = device_->config().num_channels;
  auto it = heads_.find(head);
  if (it != heads_.end() && it->second.open_segment.has_value()) {
    const uint64_t seg = *it->second.open_segment;
    const uint64_t next = device_->NextFreePage(seg);
    if (next < pages_per_segment) {
      return static_cast<uint32_t>((device_->FirstPageOf(seg) + next) % channels);
    }
  }
  if (!free_segments_.empty()) {
    return static_cast<uint32_t>(device_->FirstPageOf(free_segments_.front()) % channels);
  }
  return std::nullopt;
}

Status LogManager::AppendBatch(int head, std::span<const AppendRequest> requests,
                               uint64_t issue_ns, std::vector<AppendResult>* results_out,
                               std::span<const uint64_t> issue_at) {
  IOSNAP_CHECK(issue_at.empty() || issue_at.size() == requests.size());
  IOSNAP_CHECK(results_out != nullptr);
  const uint64_t pages_per_segment = device_->config().pages_per_segment;
  Head& h = HeadFor(head);
  results_out->reserve(results_out->size() + requests.size());

  std::vector<NandDevice::ProgramRequest> run;
  std::vector<uint64_t> run_paddrs;
  std::vector<NandOp> run_ops;
  size_t next = 0;
  int reroutes = 0;
  while (next < requests.size()) {
    if (h.open_segment.has_value() &&
        device_->NextFreePage(*h.open_segment) >= pages_per_segment) {
      segments_[*h.open_segment].state = SegmentState::kClosed;
      h.open_segment.reset();
    }
    if (!h.open_segment.has_value()) {
      ASSIGN_OR_RETURN(uint64_t acquired, AcquireSegment(head));
      h.open_segment = acquired;
      ResetParity(h);
    }
    RETURN_IF_ERROR(EmitParityIfDue(head, issue_ns));
    if (!h.open_segment.has_value()) {
      continue;  // Parity emission closed or abandoned the segment; take a fresh one.
    }
    const uint64_t seg = *h.open_segment;
    const uint64_t next_free = device_->NextFreePage(seg);
    uint64_t room = pages_per_segment - next_free;
    if (parity_stripe_ > 0) {
      // Stop the run at the next parity slot so the stripe's parity page interleaves
      // at its positional slot (EmitParityIfDue writes it on the next pass).
      room = std::min(room,
                      ParitySlotFor(next_free, parity_stripe_, pages_per_segment) -
                          next_free);
    }
    const size_t run_len = std::min<uint64_t>(requests.size() - next, room);

    run.clear();
    run_paddrs.clear();
    run_ops.clear();
    for (size_t i = 0; i < run_len; ++i) {
      run.push_back({requests[next + i].header, requests[next + i].data});
    }
    const Status run_status = device_->ProgramBatch(
        seg, run, issue_ns, &run_paddrs, &run_ops,
        issue_at.empty() ? std::span<const uint64_t>{}
                         : issue_at.subspan(next, run_len));
    // A torn run committed `run_ops.size()` pages before failing; account exactly those.
    const size_t done = run_ops.size();
    SegmentInfo& info = segments_[seg];
    for (size_t i = 0; i < done; ++i) {
      const PageHeader& header = requests[next + i].header;
      info.min_seq = std::min(info.min_seq, header.seq);
      if (header.type == RecordType::kData) {
        info.min_data_seq = std::min(info.min_data_seq, header.seq);
        ++info.epoch_pages[header.epoch];
      }
      AccumulateParity(h, header, requests[next + i].data);
      results_out->push_back(AppendResult{run_paddrs[i], run_ops[i]});
    }
    next += done;
    if (!run_status.ok()) {
      if (run_status.code() == StatusCode::kDataLoss && reroutes < kMaxAppendReroutes) {
        // Program failure mid-run: the segment is now a bad block. Re-drive the
        // remainder of the batch into a fresh segment.
        AbandonOpenSegment(head);
        ++stats_.append_reroutes;
        ++reroutes;
        continue;
      }
      return run_status;
    }
    // Cover a just-completed stripe immediately (not lazily at the next append): a
    // crash between the run and its parity page must cost at most one stripe's cover.
    // The run itself is durable, so an emission failure must not fail the batch here;
    // if requests remain, the next pass's leading emission surfaces the fault anyway.
    if (const Status parity = EmitParityIfDue(head, issue_ns); !parity.ok()) {
      IOSNAP_LOG(kWarning) << "log: trailing parity emission failed: " << parity;
    }
    if (h.open_segment.has_value() && device_->NextFreePage(seg) >= pages_per_segment) {
      info.state = SegmentState::kClosed;
      h.open_segment.reset();
    }
  }
  return OkStatus();
}

std::vector<uint64_t> LogManager::ClosedSegments() const {
  std::vector<uint64_t> out;
  for (uint64_t s = 0; s < segments_.size(); ++s) {
    if (segments_[s].state == SegmentState::kClosed) {
      out.push_back(s);
    }
  }
  return out;
}

StatusOr<NandOp> LogManager::ReleaseSegment(uint64_t segment, uint64_t issue_ns) {
  IOSNAP_CHECK(segment < segments_.size());
  SegmentInfo& info = segments_[segment];
  if (info.state != SegmentState::kClosed) {
    return FailedPrecondition("release: segment " + std::to_string(segment) +
                              " is not closed");
  }
  StatusOr<NandOp> op = device_->EraseSegment(segment, issue_ns);
  if (!op.ok()) {
    const StatusCode code = op.status().code();
    if (code == StatusCode::kDataLoss || code == StatusCode::kResourceExhausted) {
      // Permanent erase failure (grown bad block) or wear-out: retire the segment.
      // Its pages were not erased, so recovery will still scan them — keep the
      // accounting (min_data_seq especially) so GlobalMinDataSeq stays conservative
      // and trim notes that kill those stale records are never dropped.
      info.state = SegmentState::kRetired;
      ++stats_.segments_retired;
      IOSNAP_LOG(kWarning) << "log: retiring segment " << segment
                          << " after erase failure: " << op.status();
      if (trace_ != nullptr) {
        trace_->Record(TraceEventType::kSegmentRetired, issue_ns, issue_ns, segment,
                       device_->EraseCount(segment));
      }
      return NandOp{issue_ns, issue_ns};
    }
    return op.status();  // Transient (crash) or structural errors propagate.
  }
  info.state = SegmentState::kFree;
  info.epoch_pages.clear();
  info.min_seq = ~uint64_t{0};
  info.min_data_seq = ~uint64_t{0};
  free_segments_.push_back(segment);
  return *op;
}

uint64_t LogManager::TotalSegments() const { return segments_.size(); }

uint64_t LogManager::GlobalMinDataSeq() const {
  uint64_t min_seq = ~uint64_t{0};
  for (const SegmentInfo& info : segments_) {
    if (info.state != SegmentState::kFree) {
      min_seq = std::min(min_seq, info.min_data_seq);
    }
  }
  return min_seq;
}

uint64_t LogManager::ActiveHeadFreePages() const {
  const uint64_t pages_per_segment = device_->config().pages_per_segment;
  uint64_t pages = 0;
  if (free_segments_.size() > gc_reserve_segments_) {
    pages += (free_segments_.size() - gc_reserve_segments_) * pages_per_segment;
  }
  auto it = heads_.find(kActiveHead);
  if (it != heads_.end() && it->second.open_segment.has_value()) {
    pages += pages_per_segment - device_->NextFreePage(*it->second.open_segment);
  }
  return pages;
}

const SegmentInfo& LogManager::segment_info(uint64_t segment) const {
  IOSNAP_CHECK(segment < segments_.size());
  return segments_[segment];
}

std::optional<uint64_t> LogManager::OpenSegment(int head) const {
  auto it = heads_.find(head);
  if (it == heads_.end()) {
    return std::nullopt;
  }
  return it->second.open_segment;
}

void LogManager::RebuildFromDevice() {
  free_segments_.clear();
  heads_.clear();
  use_counter_ = 0;
  for (uint64_t s = 0; s < segments_.size(); ++s) {
    SegmentInfo& info = segments_[s];
    info.epoch_pages.clear();
    info.min_seq = ~uint64_t{0};
    info.min_data_seq = ~uint64_t{0};
    const uint64_t next = device_->NextFreePage(s);
    if (device_->IsBadSegment(s)) {
      // Grown bad block. If it still holds records, treat it as closed so the cleaner
      // copies the live ones off and re-retires it; an empty bad block is retired
      // outright. Either way it must never be re-opened or offered as free.
      if (next == 0) {
        info.state = SegmentState::kRetired;
      } else {
        info.state = SegmentState::kClosed;
        info.use_order = ++use_counter_;
      }
    } else if (next == 0) {
      info.state = SegmentState::kFree;
      free_segments_.push_back(s);
    } else if (next < device_->config().pages_per_segment &&
               !heads_[kActiveHead].open_segment.has_value()) {
      // A segment that was open at crash time: resume appending into it. If several heads
      // were open at the crash, the first partial segment becomes the active head and the
      // rest are treated as closed (their free tail is reclaimed at their next clean).
      info.state = SegmentState::kOpen;
      info.use_order = ++use_counter_;
      heads_[kActiveHead].open_segment = s;
    } else {
      info.state = SegmentState::kClosed;
      info.use_order = ++use_counter_;
    }
  }

  if (parity_stripe_ == 0) {
    return;
  }
  // Restore the reopened head's parity accumulator from the partial stripe already on
  // media. An unreadable member poisons it: the XOR could never reproduce a
  // verifiable image, so the stripe's parity page will honestly declare 0 members.
  Head& h = heads_[kActiveHead];
  ResetParity(h);
  if (!h.open_segment.has_value()) {
    return;
  }
  const uint64_t seg = *h.open_segment;
  const uint64_t next = device_->NextFreePage(seg);
  for (uint64_t i = StripeStartIndex(next, parity_stripe_); i < next; ++i) {
    const uint64_t paddr = device_->FirstPageOf(seg) + i;
    const NandDevice::PageInspection insp = device_->InspectPage(paddr);
    if (!insp.programmed || !insp.crc_ok) {
      h.parity_poisoned = true;
      break;
    }
    XorMemberImage(h.parity_xor, insp.header, device_->PeekPageData(paddr),
                   device_->config().page_size_bytes);
  }
}

void LogManager::RestoreAccounting(uint64_t segment, uint32_t epoch, uint64_t seq) {
  IOSNAP_CHECK(segment < segments_.size());
  SegmentInfo& info = segments_[segment];
  info.min_seq = std::min(info.min_seq, seq);
  info.min_data_seq = std::min(info.min_data_seq, seq);
  ++info.epoch_pages[epoch];
}

}  // namespace iosnap
