// Per-epoch copy-on-write validity bitmaps (§5.4.1).
//
// The validity bitmap records which physical pages hold live data. With snapshots, a page
// overwritten in the active view may still be live in an older snapshot, so ioSnap keeps
// one *logical* bitmap per epoch. Copying the whole bitmap at snapshot create would cost
// e.g. 512 MB per snapshot on a 2 TB drive (the paper's "naive design"); instead the bitmap
// is split into chunks and epochs share chunks copy-on-write:
//
//   * Creating a snapshot freezes the current epoch's chunk set; the successor epoch
//     starts with shallow references to the same chunks.
//   * The first modification of a shared chunk in an epoch copies it (a "CoW event" —
//     what Figure 7 counts) and the copy cost is charged to the triggering write.
//   * The segment cleaner and activation merge chunk sets across epochs with bitwise OR.
//
// Mutation rule: a chunk may be modified in place only if this epoch holds the unique
// reference; otherwise the chunk is copied first. A uniquely-held chunk inherited from a
// since-dropped epoch is safely adopted without copying.

#ifndef SRC_FTL_VALIDITY_MAP_H_
#define SRC_FTL_VALIDITY_MAP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/status.h"

namespace iosnap {

struct ValidityStats {
  uint64_t cow_chunk_copies = 0;   // Number of chunk copies triggered by CoW.
  uint64_t cow_bytes_copied = 0;   // Total bytes those copies moved.
  uint64_t chunk_allocations = 0;  // Fresh (zero-filled) chunks allocated.
  uint64_t merge_chunk_visits = 0; // Chunk visits performed by merge queries (Table 4).
};

class ValidityMap {
 public:
  // `total_pages`: physical pages covered. `chunk_bits`: pages covered per chunk.
  // `naive_full_copy`: reproduce the paper's rejected design — deep-copy every chunk at
  // fork time (ablation A4).
  ValidityMap(uint64_t total_pages, uint64_t chunk_bits, bool naive_full_copy = false);

  uint64_t total_pages() const { return total_pages_; }
  uint64_t chunk_bits() const { return chunk_bits_; }

  // --- Epoch lifecycle ---

  // Registers a brand-new epoch with an empty validity view (the root epoch).
  void CreateEpoch(uint32_t epoch);

  // Registers `child` sharing all of `parent`'s chunks (snapshot create / activate).
  // Returns the number of bytes deep-copied (non-zero only in naive mode).
  uint64_t ForkEpoch(uint32_t child, uint32_t parent);

  // Removes an epoch's view. Chunks shared with other epochs survive via refcounting.
  void DropEpoch(uint32_t epoch);

  bool HasEpoch(uint32_t epoch) const;
  std::vector<uint32_t> Epochs() const;

  // --- Bit operations ---

  // Marks `paddr` valid in `epoch`. Returns bytes CoW-copied to perform the update
  // (0 when the chunk was exclusively owned); the caller charges this as host time.
  uint64_t SetValid(uint32_t epoch, uint64_t paddr);

  // Marks `paddr` invalid in `epoch`. Same CoW-copy return convention.
  uint64_t ClearValid(uint32_t epoch, uint64_t paddr);

  bool Test(uint32_t epoch, uint64_t paddr) const;

  // True if the bit is set in any of the listed epochs (missing epochs are skipped).
  bool TestAny(const std::vector<uint32_t>& epochs, uint64_t paddr) const;

  // --- Merge queries (segment cleaner, activation) ---

  // OR of the given epochs' validity over physical pages [begin, end); result bit i
  // corresponds to page begin + i.
  Bitmap MergedRange(const std::vector<uint32_t>& epochs, uint64_t begin, uint64_t end) const;

  size_t CountValidInRange(const std::vector<uint32_t>& epochs, uint64_t begin,
                           uint64_t end) const;
  size_t CountValidInRange(uint32_t epoch, uint64_t begin, uint64_t end) const;

  // Moves a valid bit from `from` to `to` in every listed epoch that has it set (segment
  // cleaner copy-forward fix-up, §5.4.3 "move and reset validity bits"). Returns bytes
  // CoW-copied in the process.
  uint64_t MoveBit(const std::vector<uint32_t>& epochs, uint64_t from, uint64_t to);

  // --- Accounting ---

  const ValidityStats& stats() const { return stats_; }

  // Heap footprint of all distinct chunks plus per-epoch tables.
  size_t MemoryBytes() const;

  // Number of distinct chunk objects currently alive (shared chunks counted once).
  size_t DistinctChunkCount() const;

  // Serialization for checkpointing: per-epoch list of (chunk_index, bits...) is rebuilt
  // from scratch on load, so we only expose enumeration of set bits per epoch.
  void ForEachValid(uint32_t epoch, const std::function<void(uint64_t paddr)>& fn) const;

 private:
  struct Chunk {
    uint32_t owner_epoch;
    Bitmap bits;
  };
  using ChunkRef = std::shared_ptr<Chunk>;
  // chunk index -> chunk. std::map keeps deterministic iteration for serialization.
  using ChunkTable = std::map<uint64_t, ChunkRef>;

  uint64_t ChunkIndex(uint64_t paddr) const { return paddr / chunk_bits_; }
  uint64_t BitInChunk(uint64_t paddr) const { return paddr % chunk_bits_; }

  // Returns a mutable chunk for (epoch, chunk_index), performing CoW or allocation as
  // needed. `create_if_absent` controls behaviour for missing chunks (Clear on a missing
  // chunk is a no-op). Adds copied bytes to *cow_bytes.
  Chunk* MutableChunk(uint32_t epoch, uint64_t chunk_index, bool create_if_absent,
                      uint64_t* cow_bytes);

  uint64_t ChunkBytes() const { return (chunk_bits_ + 7) / 8; }

  uint64_t total_pages_;
  uint64_t chunk_bits_;
  bool naive_full_copy_;
  std::unordered_map<uint32_t, ChunkTable> epochs_;
  // Mutable: merge queries from const contexts still meter their chunk visits (Table 4).
  mutable ValidityStats stats_;
};

}  // namespace iosnap

#endif  // SRC_FTL_VALIDITY_MAP_H_
