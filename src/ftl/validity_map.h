// Per-epoch copy-on-write validity bitmaps (§5.4.1).
//
// The validity bitmap records which physical pages hold live data. With snapshots, a page
// overwritten in the active view may still be live in an older snapshot, so ioSnap keeps
// one *logical* bitmap per epoch. Copying the whole bitmap at snapshot create would cost
// e.g. 512 MB per snapshot on a 2 TB drive (the paper's "naive design"); instead the bitmap
// is split into chunks and epochs share chunks copy-on-write:
//
//   * Creating a snapshot freezes the current epoch's chunk set; the successor epoch
//     starts with shallow references to the same chunks.
//   * The first modification of a shared chunk in an epoch copies it (a "CoW event" —
//     what Figure 7 counts) and the copy cost is charged to the triggering write.
//   * The segment cleaner and activation merge chunk sets across epochs with bitwise OR.
//
// Mutation rule: a chunk may be modified in place only if this epoch holds the unique
// reference; otherwise the chunk is copied first. A uniquely-held chunk inherited from a
// since-dropped epoch is safely adopted without copying.
//
// Cleaner-side queries are O(1)-amortised via two cooperating structures maintained
// incrementally by every mutation (see DESIGN.md "Utilization accounting"):
//
//   * Per-range utilization counters. The device is divided into fixed page ranges
//     (the FTL uses one range per NAND segment). For every range we keep the number of
//     pages valid under the *merged* view (OR of all registered epochs — the epoch set
//     here is exactly the FTL's live-epoch set) and, per epoch, the number of pages valid
//     in that epoch alone. Victim selection and GC pacing read these counters instead of
//     merging bitmaps. DropEpoch may retire the last reference to a chunk whose bits then
//     leave the merged view; rather than recomputing eagerly, the overlapping ranges are
//     marked dirty and lazily recounted from the distinct-chunk registry on next read.
//
//   * A distinct-chunk registry + cached merge planes. For each chunk index the registry
//     tracks the set of distinct chunk objects referenced by any epoch (with reference
//     counts), so merged point queries cost O(distinct versions) — typically 1 — instead
//     of O(epochs). On top of it, each index caches a "merge plane": the OR of all
//     distinct chunks, kept up to date in place by bit flips and invalidated only when a
//     chunk object leaves the registry with live bits (epoch drop). MergedTest — the
//     cleaner's per-page liveness test — is a cached-plane bit test.
//
// Counters and registry are exact at all times; VerifyCounters() cross-checks them
// against a from-scratch recount (used by tests and debug builds).

#ifndef SRC_FTL_VALIDITY_MAP_H_
#define SRC_FTL_VALIDITY_MAP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/obs/trace.h"

namespace iosnap {

struct ValidityStats {
  uint64_t cow_chunk_copies = 0;   // Number of chunk copies triggered by CoW.
  uint64_t cow_bytes_copied = 0;   // Total bytes those copies moved.
  uint64_t chunk_allocations = 0;  // Fresh (zero-filled) chunks allocated.
  uint64_t merge_chunk_visits = 0; // Chunk visits performed by merge queries (Table 4).
  uint64_t merge_plane_rebuilds = 0;  // Cached merge planes recomputed from chunks.
  uint64_t merge_plane_hits = 0;      // MergedTest answered from a cached plane.
  uint64_t range_recounts = 0;        // Dirty utilization ranges lazily recounted.
};

class ValidityMap {
 public:
  // `total_pages`: physical pages covered. `chunk_bits`: pages covered per chunk.
  // `naive_full_copy`: reproduce the paper's rejected design — deep-copy every chunk at
  // fork time (ablation A4). `counter_range_pages`: granularity of the per-range
  // utilization counters (the FTL passes pages_per_segment; 0 = one range for the whole
  // device).
  ValidityMap(uint64_t total_pages, uint64_t chunk_bits, bool naive_full_copy = false,
              uint64_t counter_range_pages = 0);

  uint64_t total_pages() const { return total_pages_; }
  uint64_t chunk_bits() const { return chunk_bits_; }
  uint64_t range_pages() const { return range_pages_; }
  uint64_t NumRanges() const { return (total_pages_ + range_pages_ - 1) / range_pages_; }

  // --- Epoch lifecycle ---

  // Registers a brand-new epoch with an empty validity view (the root epoch).
  void CreateEpoch(uint32_t epoch);

  // Registers `child` sharing all of `parent`'s chunks (snapshot create / activate).
  // Returns the number of bytes deep-copied (non-zero only in naive mode).
  uint64_t ForkEpoch(uint32_t child, uint32_t parent);

  // Removes an epoch's view. Chunks shared with other epochs survive via refcounting.
  void DropEpoch(uint32_t epoch);

  bool HasEpoch(uint32_t epoch) const;
  std::vector<uint32_t> Epochs() const;

  // --- Bit operations ---

  // Marks `paddr` valid in `epoch`. Returns bytes CoW-copied to perform the update
  // (0 when the chunk was exclusively owned); the caller charges this as host time.
  uint64_t SetValid(uint32_t epoch, uint64_t paddr);

  // Marks `paddr` invalid in `epoch`. Same CoW-copy return convention.
  uint64_t ClearValid(uint32_t epoch, uint64_t paddr);

  // One bit mutation in a vectored update; `cow_bytes` is an out-field receiving the
  // bytes CoW-copied on this op's behalf (what SetValid/ClearValid would have returned).
  struct BitOp {
    uint64_t paddr = 0;
    bool set = true;
    uint64_t cow_bytes = 0;  // Out.
  };

  // Applies the ops exactly as if SetValid/ClearValid were called one by one in
  // submission order, but groups them by chunk so each CoW chunk (and its registry
  // entry) is resolved once per batch instead of once per bit. Ops on different chunks
  // commute, and within a chunk submission order is preserved, so counters, planes,
  // stats, and per-op CoW attribution are bit-identical to the sequential calls.
  void ApplyBatch(uint32_t epoch, std::span<BitOp> ops);

  // Marks a batch of paddrs valid in `epoch` via ApplyBatch (the recovery replay path).
  // Returns total bytes CoW-copied.
  uint64_t SetValidBatch(uint32_t epoch, std::span<const uint64_t> paddrs);

  bool Test(uint32_t epoch, uint64_t paddr) const;

  // True if the bit is set in any of the listed epochs (missing epochs are skipped).
  bool TestAny(const std::vector<uint32_t>& epochs, uint64_t paddr) const;

  // True if the bit is set in *any registered epoch* (the merged live view). Served from
  // the cached merge plane of the page's chunk — the segment cleaner's per-page liveness
  // test (§5.4.3) without per-epoch chunk walks.
  bool MergedTest(uint64_t paddr) const;

  // --- Merge queries (segment cleaner, activation) ---

  // OR of the given epochs' validity over physical pages [begin, end); result bit i
  // corresponds to page begin + i.
  Bitmap MergedRange(const std::vector<uint32_t>& epochs, uint64_t begin, uint64_t end) const;

  size_t CountValidInRange(const std::vector<uint32_t>& epochs, uint64_t begin,
                           uint64_t end) const;
  size_t CountValidInRange(uint32_t epoch, uint64_t begin, uint64_t end) const;

  // --- Utilization counters (O(1)-amortised cleaner accounting) ---

  // Pages valid under the merged view in counter range `range_index`. Counter read;
  // lazily recounts the range only if an epoch drop dirtied it.
  uint64_t MergedValidCount(uint64_t range_index) const;

  // Pages valid in `epoch` alone within the range (vanilla GC rate policy). Exact
  // counter read; returns 0 for unknown epochs.
  uint64_t EpochValidCount(uint32_t epoch, uint64_t range_index) const;

  // Cross-checks every incremental structure (per-epoch counters, merged counters,
  // distinct-chunk registry, cached planes) against a from-scratch recount. Returns
  // false and logs details on any mismatch. O(epochs x chunks); debug/test use only.
  bool VerifyCounters() const;

  // Moves a valid bit from `from` to `to` in every listed epoch that has it set (segment
  // cleaner copy-forward fix-up, §5.4.3 "move and reset validity bits"). Returns bytes
  // CoW-copied in the process.
  uint64_t MoveBit(const std::vector<uint32_t>& epochs, uint64_t from, uint64_t to);

  // --- Accounting ---

  const ValidityStats& stats() const { return stats_; }

  // Optional flight-recorder hook; records a kValidityCowChunk event per chunk copy.
  // nullptr (the default) disables it.
  void SetTraceRecorder(TraceRecorder* trace) { trace_ = trace; }

  // Virtual-clock hint for trace events. Bit operations are untimed (the caller charges
  // host time), so the FTL notes the current operation's issue time before mutating; CoW
  // events recorded during the mutation carry this stamp.
  void NoteTimeNs(uint64_t now_ns) { trace_time_ns_ = now_ns; }

  // Heap footprint of all distinct chunks plus per-epoch tables.
  size_t MemoryBytes() const;

  // Number of distinct chunk objects currently alive (shared chunks counted once).
  size_t DistinctChunkCount() const;

  // Serialization for checkpointing: per-epoch list of (chunk_index, bits...) is rebuilt
  // from scratch on load, so we only expose enumeration of set bits per epoch. Visits
  // ascending paddrs (the chunk table iterates in index order). Templated so the hot
  // callers (checkpoint, space accounting) pay a direct call, not std::function dispatch.
  template <typename Fn>
  void ForEachValid(uint32_t epoch, Fn&& fn) const {
    auto epoch_it = epochs_.find(epoch);
    IOSNAP_CHECK(epoch_it != epochs_.end());
    for (const auto& [index, chunk] : epoch_it->second) {
      const uint64_t base = index * chunk_bits_;
      for (uint64_t bit = chunk->bits.FindFirstSet(0); bit < chunk->bits.size();
           bit = chunk->bits.FindFirstSet(bit + 1)) {
        fn(base + bit);
      }
    }
  }

  // Chunk-caching membership cursor over a single epoch: consecutive Test calls with
  // nearby addresses (activation's sequential segment scans) reuse the resolved chunk
  // instead of re-walking the chunk table per page. The cursor caches a raw chunk
  // pointer, so it must not outlive any mutation of the map — create one per scan.
  class EpochReader {
   public:
    EpochReader(const ValidityMap& map, uint32_t epoch) : map_(map), epoch_(epoch) {}
    bool Test(uint64_t paddr);

   private:
    const ValidityMap& map_;
    uint32_t epoch_;
    bool cached_ = false;
    uint64_t cached_index_ = 0;
    const Bitmap* cached_bits_ = nullptr;  // nullptr: epoch has no chunk at the index.
  };

 private:
  struct Chunk {
    uint32_t owner_epoch;
    Bitmap bits;
  };
  using ChunkRef = std::shared_ptr<Chunk>;
  // chunk index -> chunk. std::map keeps deterministic iteration for serialization.
  using ChunkTable = std::map<uint64_t, ChunkRef>;

  // Per-chunk-index registry of distinct chunk objects (keyed by identity, valued by the
  // number of epoch tables referencing each) plus the cached merge plane.
  struct RegistryEntry {
    std::unordered_map<const Chunk*, uint32_t> refs;
    Bitmap plane;             // OR of all chunks in `refs` when plane_valid.
    bool plane_valid = false;
  };

  uint64_t ChunkIndex(uint64_t paddr) const { return paddr / chunk_bits_; }
  uint64_t BitInChunk(uint64_t paddr) const { return paddr % chunk_bits_; }
  uint64_t RangeOf(uint64_t paddr) const { return paddr / range_pages_; }

  // Returns a mutable chunk for (epoch, chunk_index), performing CoW or allocation as
  // needed. `create_if_absent` controls behaviour for missing chunks (Clear on a missing
  // chunk is a no-op). Adds copied bytes to *cow_bytes.
  Chunk* MutableChunk(uint32_t epoch, uint64_t chunk_index, bool create_if_absent,
                      uint64_t* cow_bytes);

  // Registry bookkeeping: called for every epoch-table reference created or destroyed.
  void RegistryAddRef(uint64_t chunk_index, const Chunk* chunk);
  void RegistryDropRef(uint64_t chunk_index, const Chunk* chunk);

  // True if any distinct chunk at `chunk_index` has `bit` set, scanning chunk objects
  // (never the plane — used mid-mutation when the plane may be stale).
  bool ScanChunksForBit(uint64_t chunk_index, uint64_t bit) const;

  // Plane-accelerated variant for pre-mutation queries (plane is accurate if valid).
  bool AnyChunkHasBit(uint64_t chunk_index, uint64_t bit) const;

  // Recomputes entry's plane as the OR of its distinct chunks. Meters chunk visits.
  void RebuildPlane(RegistryEntry* entry) const;

  // Marks every counter range overlapping `chunk_index` dirty.
  void MarkRangesDirty(uint64_t chunk_index);

  // From-registry recount of one range's merged-valid pages (lazy repair path).
  uint64_t RecountRange(uint64_t range_index) const;

  uint64_t ChunkBytes() const { return (chunk_bits_ + 7) / 8; }

  uint64_t total_pages_;
  uint64_t chunk_bits_;
  bool naive_full_copy_;
  uint64_t range_pages_;
  std::unordered_map<uint32_t, ChunkTable> epochs_;
  // Distinct-chunk registry + cached merge planes, by chunk index. Mutable: planes are
  // rebuilt lazily from const queries.
  mutable std::unordered_map<uint64_t, RegistryEntry> registry_;
  // Per-range merged-valid counters with lazy dirty repair (see header comment).
  mutable std::vector<uint64_t> merged_count_;
  mutable std::vector<uint8_t> range_dirty_;
  // Per-epoch per-range valid counters (always exact).
  std::unordered_map<uint32_t, std::vector<uint64_t>> epoch_count_;
  // Mutable: merge queries from const contexts still meter their chunk visits (Table 4).
  mutable ValidityStats stats_;
  TraceRecorder* trace_ = nullptr;
  uint64_t trace_time_ns_ = 0;
};

}  // namespace iosnap

#endif  // SRC_FTL_VALIDITY_MAP_H_
