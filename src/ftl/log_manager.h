// Log-structured space management on top of the NAND device (§5.2.1).
//
// The LogManager owns segment lifecycle: segments move free -> open -> closed -> (cleaned)
// -> free. Appends go to a *head*; the user write path and the segment cleaner use
// different heads so copy-forwarded cold data does not intermix with fresh writes, and the
// epoch-colocating cleaner policy (§5.4.2 extension) can maintain one head per epoch class.
//
// The LogManager assigns physical placement only; logical identity (lba/epoch/seq) lives
// in the PageHeader supplied by the caller, and validity is tracked by ValidityMap.

#ifndef SRC_FTL_LOG_MANAGER_H_
#define SRC_FTL_LOG_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/nand/nand_device.h"

namespace iosnap {

// kRetired marks grown bad blocks pulled out of circulation: never opened, never
// offered to the cleaner, never freed. Their accounting (min_data_seq in particular)
// is retained because their un-erasable pages are still scanned by recovery, so trim
// retention must stay conservative with respect to them.
enum class SegmentState : uint8_t { kFree, kOpen, kClosed, kRetired };

// Degraded-mode counters maintained by the LogManager.
struct LogStats {
  uint64_t append_reroutes = 0;   // Appends re-driven to a fresh segment after program failure.
  uint64_t segments_retired = 0;  // Segments permanently retired after erase failure/wear-out.
  uint64_t parity_pages_written = 0;  // XOR parity pages emitted at stripe boundaries.
};

struct SegmentInfo {
  SegmentState state = SegmentState::kFree;
  uint64_t use_order = 0;    // Monotonic counter stamped when the segment is opened.
  uint64_t min_seq = ~uint64_t{0};       // Smallest record seq in the segment (age).
  uint64_t min_data_seq = ~uint64_t{0};  // Smallest *data* record seq (trim retention).
  // Data pages per epoch ever appended to this segment since its last erase — a
  // conservative superset of what is still valid. Used by the epoch-colocation policy and
  // the activation segment index (ablation A3), both of which tolerate over-counting.
  // Exact per-segment *valid* counts live in ValidityMap's utilization accounting
  // (MergedValidCount/EpochValidCount, segment-sized ranges), not here: validity flips on
  // overwrite/trim/GC-move without any log append, so the bitmap layer is the only place
  // that can maintain them incrementally.
  std::map<uint32_t, uint32_t> epoch_pages;
};

struct AppendResult {
  uint64_t paddr = 0;
  NandOp op;
};

class LogManager {
 public:
  // Well-known append heads.
  static constexpr int kActiveHead = 0;  // Foreground user writes + notes.
  static constexpr int kGcHead = 1;      // Segment-cleaner copy-forward.
  // The epoch-colocation policy derives additional head ids >= kFirstDynamicHead.
  static constexpr int kFirstDynamicHead = 2;

  // `gc_reserve_segments`: segments the user head may never consume, so the cleaner always
  // has room to copy into (classic log-structured deadlock avoidance).
  // `parity_stripe` > 0 enables intra-segment XOR parity (src/nand/parity.h): every
  // head keeps a running XOR over its open segment's appended pages and writes one
  // parity page whenever the next free slot is a parity slot (every parity_stripe
  // member pages, plus the segment's final page). 0 writes no parity pages and is
  // bit-identical to the pre-parity log.
  LogManager(NandDevice* device, uint64_t gc_reserve_segments,
             uint64_t parity_stripe = 0);

  // Appends one record through `head`. Fails with kResourceExhausted when the head is
  // not allowed to take another segment — the signal that cleaning must run. (Free
  // segments are always pre-erased: factory-fresh or erased by ReleaseSegment.)
  // A program failure (kDataLoss from the device) closes the now-bad open segment and
  // re-drives the record into a fresh one, bounded by kMaxAppendReroutes.
  StatusOr<AppendResult> Append(int head, const PageHeader& header,
                                std::span<const uint8_t> data, uint64_t issue_ns);

  // One record of a vectored append.
  struct AppendRequest {
    PageHeader header;
    std::span<const uint8_t> data;
  };

  // Appends a batch through `head`, every record issued at `issue_ns` so the device
  // schedules the whole batch in one virtual-clock pass. Records are grouped into
  // maximal segment runs (each run is one NandDevice::ProgramBatch); segment lifecycle
  // and per-record accounting match record-by-record Append exactly. The caller should
  // size the batch to fit the head's allowance (see ActiveHeadFreePages); a batch is
  // not atomic. On any error, `results_out` holds one entry per record that WAS durably
  // appended (a prefix of `requests`) — the caller must apply that prefix's effects
  // before propagating the error. Program failures reroute to a fresh segment like
  // Append; a mid-batch crash returns kUnavailable with the torn prefix in place.
  // `issue_at` (empty, or one non-decreasing time per record with issue_at[0] >=
  // issue_ns) staggers the records' issue times — the multi-queue path, where ops
  // admitted at different times commit as one batch.
  Status AppendBatch(int head, std::span<const AppendRequest> requests, uint64_t issue_ns,
                     std::vector<AppendResult>* results_out,
                     std::span<const uint64_t> issue_at = {});

  // Appends one record through `head` by on-die copyback from `src_paddr` instead of a
  // host-supplied payload (NandDevice::CopybackPage; the stored bytes move verbatim).
  // `header` must be the source page's header — it is used only for segment accounting
  // (min_seq/epoch), never re-programmed. Segment lifecycle matches Append, including
  // reroute-on-program-failure bounded by kMaxAppendReroutes; a kDataLoss that did NOT
  // retire the destination segment is a scrub-detected unreadable source and propagates
  // immediately (rerouting cannot fix the source). kUnavailable (transient read
  // failure) also propagates — the caller owns retry policy.
  StatusOr<AppendResult> AppendCopyback(int head, uint64_t src_paddr,
                                        const PageHeader& header, uint64_t issue_ns);

  // Channel of the page the next Append through `head` would program: the open
  // segment's next free page, else page 0 of the segment that would be acquired.
  // nullopt when no open segment and no free segments. The cleaner uses this to order
  // relocations so copybacks land on their source channel (the on-die fast path).
  std::optional<uint32_t> NextAppendChannel(int head) const;

  // True if `head` can accept a record without violating the GC reserve.
  bool CanAppend(int head) const;

  // --- Cleaner support ---

  // Closed segments eligible for cleaning (never open heads).
  std::vector<uint64_t> ClosedSegments() const;

  // Erases `segment` and returns it to the free pool. It must be closed. If the erase
  // fails permanently (grown bad block or wear-out) the segment is retired instead of
  // freed and an instant (zero-duration) op is returned: retirement is a handled
  // degraded-mode outcome, not an error the cleaner needs to unwind.
  StatusOr<NandOp> ReleaseSegment(uint64_t segment, uint64_t issue_ns);

  // --- Introspection ---

  uint64_t FreeSegmentCount() const { return free_segments_.size(); }
  uint64_t TotalSegments() const;
  // Free pages remaining for the active head before it hits the reserve (pacing input).
  uint64_t ActiveHeadFreePages() const;
  // Smallest data-record sequence number still present on the log (max u64 when no data).
  // A trim note older than every surviving data record can kill nothing and is dead —
  // the retention bound the cleaner uses for trim-note consolidation.
  uint64_t GlobalMinDataSeq() const;
  const SegmentInfo& segment_info(uint64_t segment) const;
  // The segment currently open under `head`, if any.
  std::optional<uint64_t> OpenSegment(int head) const;

  const LogStats& stats() const { return stats_; }

  // Optional flight-recorder hook for retirement/reroute events.
  void SetTraceRecorder(TraceRecorder* trace) { trace_ = trace; }

  // --- Recovery bootstrap ---

  // Rebuilds segment states by inspecting the device: partially-programmed segments are
  // re-opened under the active head, full segments are closed, erased-empty and
  // never-used segments are free. Epoch accounting and min_seq are rebuilt by the caller
  // replaying headers via RestoreAccounting.
  void RebuildFromDevice();
  void RestoreAccounting(uint64_t segment, uint32_t epoch, uint64_t seq);

  uint64_t parity_stripe() const { return parity_stripe_; }

 private:
  struct Head {
    std::optional<uint64_t> open_segment;
    // Running XOR of the open segment's member images since the last parity slot
    // (src/nand/parity.h). Sized lazily; unused when parity_stripe is 0.
    std::vector<uint8_t> parity_xor;
    // True when the accumulator cannot be trusted (a reopened partial stripe held an
    // unreadable member): the stripe's parity page is written with trim_count = 0 so
    // rebuild honestly refuses it.
    bool parity_poisoned = false;
  };

  // Bound on fresh segments tried per append when programs keep failing. Each failure
  // retires a whole segment, so consecutive failures are ppm^n-rare; exhausting the
  // bound surfaces the device's kDataLoss to the caller.
  static constexpr int kMaxAppendReroutes = 3;

  // Takes the next free segment for a head.
  StatusOr<uint64_t> AcquireSegment(int head);

  Head& HeadFor(int head);

  // Closes the open segment of `head` after a program failure so it is never appended
  // to again; the cleaner will later copy its live records off and retire it.
  void AbandonOpenSegment(int head);

  // --- Parity (all no-ops when parity_stripe_ == 0) ---

  // Clears the running XOR (start of a fresh stripe or segment).
  void ResetParity(Head& h);
  // XORs the member image the device is about to store for (header, data) into the
  // accumulator: the stored-payload decision and CRC stamp are recomputed host-side
  // with the same rules the device applies, so the accumulator reflects programmed
  // *intent* — parity is taken in the controller's buffer, before any cell-level
  // corruption, which is exactly what lets a later rebuild reproduce clean bytes.
  void AccumulateParity(Head& h, const PageHeader& header, std::span<const uint8_t> data);
  // Copyback variant: the host never sees the payload, so the accumulator taps the
  // source page's stored bytes (the modeled on-die XOR engine).
  void AccumulateParityStored(Head& h, uint64_t src_paddr);
  // Writes parity pages while the head's next free slot is a parity slot (at most two
  // in a row: a regular slot adjacent to the segment-final slot). A parity program
  // failure abandons the segment — positional parity cannot be re-driven elsewhere —
  // leaving the tail stripe unprotected but the members durable.
  Status EmitParityIfDue(int head, uint64_t issue_ns);

  NandDevice* device_;
  uint64_t gc_reserve_segments_;
  uint64_t parity_stripe_;
  std::vector<SegmentInfo> segments_;
  std::deque<uint64_t> free_segments_;
  std::map<int, Head> heads_;
  uint64_t use_counter_ = 0;
  LogStats stats_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace iosnap

#endif  // SRC_FTL_LOG_MANAGER_H_
