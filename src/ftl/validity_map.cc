#include "src/ftl/validity_map.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/logging.h"

namespace iosnap {

ValidityMap::ValidityMap(uint64_t total_pages, uint64_t chunk_bits, bool naive_full_copy)
    : total_pages_(total_pages), chunk_bits_(chunk_bits), naive_full_copy_(naive_full_copy) {
  IOSNAP_CHECK(chunk_bits_ > 0);
}

void ValidityMap::CreateEpoch(uint32_t epoch) {
  IOSNAP_CHECK(epochs_.find(epoch) == epochs_.end());
  epochs_.emplace(epoch, ChunkTable{});
}

uint64_t ValidityMap::ForkEpoch(uint32_t child, uint32_t parent) {
  IOSNAP_CHECK(epochs_.find(child) == epochs_.end());
  auto parent_it = epochs_.find(parent);
  IOSNAP_CHECK(parent_it != epochs_.end());

  uint64_t copied_bytes = 0;
  if (naive_full_copy_) {
    // The paper's rejected design: a full private copy of every chunk per snapshot.
    ChunkTable table;
    for (const auto& [index, chunk] : parent_it->second) {
      auto copy = std::make_shared<Chunk>(*chunk);
      copy->owner_epoch = child;
      table.emplace(index, std::move(copy));
      copied_bytes += ChunkBytes();
      ++stats_.cow_chunk_copies;
    }
    stats_.cow_bytes_copied += copied_bytes;
    epochs_.emplace(child, std::move(table));
    return copied_bytes;
  }

  // CoW design: the child shares every chunk reference with the parent.
  epochs_.emplace(child, parent_it->second);
  return 0;
}

void ValidityMap::DropEpoch(uint32_t epoch) {
  auto it = epochs_.find(epoch);
  IOSNAP_CHECK(it != epochs_.end());
  epochs_.erase(it);
}

bool ValidityMap::HasEpoch(uint32_t epoch) const { return epochs_.contains(epoch); }

std::vector<uint32_t> ValidityMap::Epochs() const {
  std::vector<uint32_t> out;
  out.reserve(epochs_.size());
  for (const auto& [epoch, table] : epochs_) {
    out.push_back(epoch);
  }
  std::sort(out.begin(), out.end());
  return out;
}

ValidityMap::Chunk* ValidityMap::MutableChunk(uint32_t epoch, uint64_t chunk_index,
                                              bool create_if_absent, uint64_t* cow_bytes) {
  auto epoch_it = epochs_.find(epoch);
  IOSNAP_CHECK(epoch_it != epochs_.end());
  ChunkTable& table = epoch_it->second;

  auto chunk_it = table.find(chunk_index);
  if (chunk_it == table.end()) {
    if (!create_if_absent) {
      return nullptr;
    }
    auto chunk = std::make_shared<Chunk>();
    chunk->owner_epoch = epoch;
    chunk->bits = Bitmap(chunk_bits_);
    ++stats_.chunk_allocations;
    Chunk* raw = chunk.get();
    table.emplace(chunk_index, std::move(chunk));
    return raw;
  }

  ChunkRef& ref = chunk_it->second;
  if (ref.use_count() == 1) {
    // Exclusive: mutate in place; adopt ownership if inherited from a dropped epoch.
    ref->owner_epoch = epoch;
    return ref.get();
  }

  // Shared with at least one other epoch: copy-on-write.
  auto copy = std::make_shared<Chunk>(*ref);
  copy->owner_epoch = epoch;
  ref = std::move(copy);
  ++stats_.cow_chunk_copies;
  stats_.cow_bytes_copied += ChunkBytes();
  if (cow_bytes != nullptr) {
    *cow_bytes += ChunkBytes();
  }
  return ref.get();
}

uint64_t ValidityMap::SetValid(uint32_t epoch, uint64_t paddr) {
  IOSNAP_CHECK(paddr < total_pages_);
  uint64_t cow_bytes = 0;
  Chunk* chunk = MutableChunk(epoch, ChunkIndex(paddr), /*create_if_absent=*/true, &cow_bytes);
  chunk->bits.Set(BitInChunk(paddr));
  return cow_bytes;
}

uint64_t ValidityMap::ClearValid(uint32_t epoch, uint64_t paddr) {
  IOSNAP_CHECK(paddr < total_pages_);
  uint64_t cow_bytes = 0;
  Chunk* chunk =
      MutableChunk(epoch, ChunkIndex(paddr), /*create_if_absent=*/false, &cow_bytes);
  if (chunk == nullptr) {
    return 0;  // Bit is implicitly clear.
  }
  chunk->bits.Clear(BitInChunk(paddr));
  return cow_bytes;
}

bool ValidityMap::Test(uint32_t epoch, uint64_t paddr) const {
  IOSNAP_CHECK(paddr < total_pages_);
  auto epoch_it = epochs_.find(epoch);
  IOSNAP_CHECK(epoch_it != epochs_.end());
  auto chunk_it = epoch_it->second.find(ChunkIndex(paddr));
  if (chunk_it == epoch_it->second.end()) {
    return false;
  }
  return chunk_it->second->bits.Test(BitInChunk(paddr));
}

bool ValidityMap::TestAny(const std::vector<uint32_t>& epochs, uint64_t paddr) const {
  for (uint32_t epoch : epochs) {
    auto epoch_it = epochs_.find(epoch);
    if (epoch_it == epochs_.end()) {
      continue;
    }
    auto chunk_it = epoch_it->second.find(ChunkIndex(paddr));
    if (chunk_it != epoch_it->second.end() &&
        chunk_it->second->bits.Test(BitInChunk(paddr))) {
      return true;
    }
  }
  return false;
}

Bitmap ValidityMap::MergedRange(const std::vector<uint32_t>& epochs, uint64_t begin,
                                uint64_t end) const {
  IOSNAP_CHECK(begin <= end && end <= total_pages_);
  Bitmap merged(end - begin);
  for (uint32_t epoch : epochs) {
    auto epoch_it = epochs_.find(epoch);
    if (epoch_it == epochs_.end()) {
      continue;  // Deleted epochs simply drop out of the merge (Fig 6C).
    }
    const ChunkTable& table = epoch_it->second;
    const uint64_t first_chunk = begin / chunk_bits_;
    const uint64_t last_chunk = (end == begin) ? first_chunk : (end - 1) / chunk_bits_;
    for (auto it = table.lower_bound(first_chunk); it != table.end() && it->first <= last_chunk;
         ++it) {
      ++stats_.merge_chunk_visits;
      const uint64_t chunk_base = it->first * chunk_bits_;
      const uint64_t lo = std::max(begin, chunk_base);
      const uint64_t hi = std::min(end, chunk_base + chunk_bits_);
      for (uint64_t p = lo; p < hi; ++p) {
        if (it->second->bits.Test(p - chunk_base)) {
          merged.Set(p - begin);
        }
      }
    }
  }
  return merged;
}

size_t ValidityMap::CountValidInRange(const std::vector<uint32_t>& epochs, uint64_t begin,
                                      uint64_t end) const {
  return MergedRange(epochs, begin, end).CountOnes();
}

size_t ValidityMap::CountValidInRange(uint32_t epoch, uint64_t begin, uint64_t end) const {
  return CountValidInRange(std::vector<uint32_t>{epoch}, begin, end);
}

uint64_t ValidityMap::MoveBit(const std::vector<uint32_t>& epochs, uint64_t from, uint64_t to) {
  uint64_t cow_bytes = 0;
  for (uint32_t epoch : epochs) {
    auto epoch_it = epochs_.find(epoch);
    if (epoch_it == epochs_.end()) {
      continue;
    }
    auto chunk_it = epoch_it->second.find(ChunkIndex(from));
    if (chunk_it == epoch_it->second.end() ||
        !chunk_it->second->bits.Test(BitInChunk(from))) {
      continue;
    }
    Chunk* from_chunk =
        MutableChunk(epoch, ChunkIndex(from), /*create_if_absent=*/false, &cow_bytes);
    from_chunk->bits.Clear(BitInChunk(from));
    Chunk* to_chunk =
        MutableChunk(epoch, ChunkIndex(to), /*create_if_absent=*/true, &cow_bytes);
    to_chunk->bits.Set(BitInChunk(to));
  }
  return cow_bytes;
}

size_t ValidityMap::MemoryBytes() const {
  std::unordered_set<const Chunk*> seen;
  size_t bytes = 0;
  for (const auto& [epoch, table] : epochs_) {
    bytes += table.size() * (sizeof(uint64_t) + sizeof(ChunkRef) + 3 * sizeof(void*));
    for (const auto& [index, chunk] : table) {
      if (seen.insert(chunk.get()).second) {
        bytes += sizeof(Chunk) + chunk->bits.MemoryBytes();
      }
    }
  }
  return bytes;
}

size_t ValidityMap::DistinctChunkCount() const {
  std::unordered_set<const Chunk*> seen;
  for (const auto& [epoch, table] : epochs_) {
    for (const auto& [index, chunk] : table) {
      seen.insert(chunk.get());
    }
  }
  return seen.size();
}

void ValidityMap::ForEachValid(uint32_t epoch,
                               const std::function<void(uint64_t paddr)>& fn) const {
  auto epoch_it = epochs_.find(epoch);
  IOSNAP_CHECK(epoch_it != epochs_.end());
  for (const auto& [index, chunk] : epoch_it->second) {
    const uint64_t base = index * chunk_bits_;
    for (uint64_t bit = chunk->bits.FindFirstSet(0); bit < chunk->bits.size();
         bit = chunk->bits.FindFirstSet(bit + 1)) {
      fn(base + bit);
    }
  }
}

}  // namespace iosnap
