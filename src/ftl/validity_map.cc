#include "src/ftl/validity_map.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/logging.h"

namespace iosnap {

ValidityMap::ValidityMap(uint64_t total_pages, uint64_t chunk_bits, bool naive_full_copy,
                         uint64_t counter_range_pages)
    : total_pages_(total_pages),
      chunk_bits_(chunk_bits),
      naive_full_copy_(naive_full_copy),
      range_pages_(counter_range_pages != 0 ? counter_range_pages
                                            : std::max<uint64_t>(total_pages, 1)) {
  IOSNAP_CHECK(chunk_bits_ > 0);
  merged_count_.assign(NumRanges(), 0);
  range_dirty_.assign(NumRanges(), 0);
}

void ValidityMap::CreateEpoch(uint32_t epoch) {
  IOSNAP_CHECK(epochs_.find(epoch) == epochs_.end());
  epochs_.emplace(epoch, ChunkTable{});
  epoch_count_.emplace(epoch, std::vector<uint64_t>(NumRanges(), 0));
}

uint64_t ValidityMap::ForkEpoch(uint32_t child, uint32_t parent) {
  IOSNAP_CHECK(epochs_.find(child) == epochs_.end());
  auto parent_it = epochs_.find(parent);
  IOSNAP_CHECK(parent_it != epochs_.end());

  // A fork never changes the merged view or any plane: the child's chunks are either the
  // parent's own objects (CoW) or byte-identical copies of them (naive mode), so the OR
  // over distinct chunks is unchanged. Only registry refcounts and the child's per-epoch
  // counters (a copy of the parent's) need updating.
  epoch_count_.emplace(child, epoch_count_.at(parent));

  uint64_t copied_bytes = 0;
  if (naive_full_copy_) {
    // The paper's rejected design: a full private copy of every chunk per snapshot.
    ChunkTable table;
    for (const auto& [index, chunk] : parent_it->second) {
      auto copy = std::make_shared<Chunk>(*chunk);
      copy->owner_epoch = child;
      RegistryAddRef(index, copy.get());
      table.emplace(index, std::move(copy));
      copied_bytes += ChunkBytes();
      ++stats_.cow_chunk_copies;
      if (trace_ != nullptr) {
        trace_->Record(TraceEventType::kValidityCowChunk, trace_time_ns_, trace_time_ns_,
                       index, ChunkBytes(), child);
      }
    }
    stats_.cow_bytes_copied += copied_bytes;
    epochs_.emplace(child, std::move(table));
    return copied_bytes;
  }

  // CoW design: the child shares every chunk reference with the parent.
  for (const auto& [index, chunk] : parent_it->second) {
    RegistryAddRef(index, chunk.get());
  }
  epochs_.emplace(child, parent_it->second);
  return 0;
}

void ValidityMap::DropEpoch(uint32_t epoch) {
  auto it = epochs_.find(epoch);
  IOSNAP_CHECK(it != epochs_.end());
  // Drop registry references while the table still keeps the chunks alive: the last
  // reference to a chunk with live bits invalidates its plane and dirties the counter
  // ranges it overlaps (the merged view may shrink).
  for (const auto& [index, chunk] : it->second) {
    RegistryDropRef(index, chunk.get());
  }
  epochs_.erase(it);
  epoch_count_.erase(epoch);
}

bool ValidityMap::HasEpoch(uint32_t epoch) const { return epochs_.contains(epoch); }

std::vector<uint32_t> ValidityMap::Epochs() const {
  std::vector<uint32_t> out;
  out.reserve(epochs_.size());
  for (const auto& [epoch, table] : epochs_) {
    out.push_back(epoch);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ValidityMap::RegistryAddRef(uint64_t chunk_index, const Chunk* chunk) {
  // Adding a reference never changes the merged OR: a chunk entering the registry is
  // either already present (fork share), freshly zero-filled, or a byte-identical copy
  // of a chunk that remains referenced (CoW / naive fork). Planes stay valid.
  ++registry_[chunk_index].refs[chunk];
}

void ValidityMap::RegistryDropRef(uint64_t chunk_index, const Chunk* chunk) {
  auto reg_it = registry_.find(chunk_index);
  IOSNAP_CHECK(reg_it != registry_.end());
  RegistryEntry& entry = reg_it->second;
  auto ref_it = entry.refs.find(chunk);
  IOSNAP_CHECK(ref_it != entry.refs.end() && ref_it->second > 0);
  if (--ref_it->second > 0) {
    return;
  }
  entry.refs.erase(ref_it);
  // `chunk` is guaranteed alive here (callers drop refs before releasing the owning
  // shared_ptr). If it carried live bits, the merged view over this chunk may shrink:
  // invalidate the cached plane and lazily recount the overlapping ranges.
  if (chunk->bits.FindFirstSet(0) < chunk->bits.size()) {
    entry.plane_valid = false;
    MarkRangesDirty(chunk_index);
  }
  if (entry.refs.empty()) {
    registry_.erase(reg_it);
  }
}

void ValidityMap::MarkRangesDirty(uint64_t chunk_index) {
  const uint64_t first_page = chunk_index * chunk_bits_;
  const uint64_t last_page = std::min(first_page + chunk_bits_, total_pages_) - 1;
  for (uint64_t r = RangeOf(first_page); r <= RangeOf(last_page); ++r) {
    range_dirty_[r] = 1;
  }
}

bool ValidityMap::ScanChunksForBit(uint64_t chunk_index, uint64_t bit) const {
  auto reg_it = registry_.find(chunk_index);
  if (reg_it == registry_.end()) {
    return false;
  }
  for (const auto& [chunk, refs] : reg_it->second.refs) {
    if (chunk->bits.Test(bit)) {
      return true;
    }
  }
  return false;
}

bool ValidityMap::AnyChunkHasBit(uint64_t chunk_index, uint64_t bit) const {
  auto reg_it = registry_.find(chunk_index);
  if (reg_it == registry_.end()) {
    return false;
  }
  const RegistryEntry& entry = reg_it->second;
  if (entry.plane_valid) {
    return entry.plane.Test(bit);
  }
  for (const auto& [chunk, refs] : entry.refs) {
    if (chunk->bits.Test(bit)) {
      return true;
    }
  }
  return false;
}

void ValidityMap::RebuildPlane(RegistryEntry* entry) const {
  entry->plane = Bitmap(chunk_bits_);
  for (const auto& [chunk, refs] : entry->refs) {
    entry->plane.OrWith(chunk->bits);
    ++stats_.merge_chunk_visits;
  }
  entry->plane_valid = true;
  ++stats_.merge_plane_rebuilds;
}

ValidityMap::Chunk* ValidityMap::MutableChunk(uint32_t epoch, uint64_t chunk_index,
                                              bool create_if_absent, uint64_t* cow_bytes) {
  auto epoch_it = epochs_.find(epoch);
  IOSNAP_CHECK(epoch_it != epochs_.end());
  ChunkTable& table = epoch_it->second;

  auto chunk_it = table.find(chunk_index);
  if (chunk_it == table.end()) {
    if (!create_if_absent) {
      return nullptr;
    }
    auto chunk = std::make_shared<Chunk>();
    chunk->owner_epoch = epoch;
    chunk->bits = Bitmap(chunk_bits_);
    ++stats_.chunk_allocations;
    Chunk* raw = chunk.get();
    RegistryAddRef(chunk_index, raw);
    table.emplace(chunk_index, std::move(chunk));
    return raw;
  }

  ChunkRef& ref = chunk_it->second;
  if (ref.use_count() == 1) {
    // Exclusive: mutate in place; adopt ownership if inherited from a dropped epoch.
    ref->owner_epoch = epoch;
    return ref.get();
  }

  // Shared with at least one other epoch: copy-on-write. The old chunk remains
  // registered through its other epoch references and the copy is byte-identical, so
  // planes and counters are untouched by the swap itself.
  ChunkRef old_ref = ref;  // Keeps the original alive across the registry update.
  auto copy = std::make_shared<Chunk>(*old_ref);
  copy->owner_epoch = epoch;
  ref = std::move(copy);
  RegistryDropRef(chunk_index, old_ref.get());
  RegistryAddRef(chunk_index, ref.get());
  ++stats_.cow_chunk_copies;
  stats_.cow_bytes_copied += ChunkBytes();
  if (cow_bytes != nullptr) {
    *cow_bytes += ChunkBytes();
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kValidityCowChunk, trace_time_ns_, trace_time_ns_,
                   chunk_index, ChunkBytes(), epoch);
  }
  return ref.get();
}

uint64_t ValidityMap::SetValid(uint32_t epoch, uint64_t paddr) {
  IOSNAP_CHECK(paddr < total_pages_);
  const uint64_t ci = ChunkIndex(paddr);
  const uint64_t bit = BitInChunk(paddr);

  // Pre-mutation state drives the counter deltas: whether this epoch had the bit (epoch
  // counter) and whether any epoch had it (merged counter).
  const bool was_merged = AnyChunkHasBit(ci, bit);

  uint64_t cow_bytes = 0;
  Chunk* chunk = MutableChunk(epoch, ci, /*create_if_absent=*/true, &cow_bytes);
  const bool was_epoch = chunk->bits.Test(bit);
  chunk->bits.Set(bit);

  const uint64_t r = RangeOf(paddr);
  if (!was_epoch) {
    ++epoch_count_.at(epoch)[r];
  }
  if (!was_merged && !range_dirty_[r]) {
    ++merged_count_[r];
  }
  // A set bit always joins the OR: the cached plane can be updated in place.
  auto reg_it = registry_.find(ci);
  if (reg_it != registry_.end() && reg_it->second.plane_valid) {
    reg_it->second.plane.Set(bit);
  }
  return cow_bytes;
}

uint64_t ValidityMap::ClearValid(uint32_t epoch, uint64_t paddr) {
  IOSNAP_CHECK(paddr < total_pages_);
  const uint64_t ci = ChunkIndex(paddr);
  const uint64_t bit = BitInChunk(paddr);

  uint64_t cow_bytes = 0;
  Chunk* chunk = MutableChunk(epoch, ci, /*create_if_absent=*/false, &cow_bytes);
  if (chunk == nullptr) {
    return 0;  // Bit is implicitly clear.
  }
  const bool was_epoch = chunk->bits.Test(bit);
  chunk->bits.Clear(bit);
  if (!was_epoch) {
    return cow_bytes;  // No bit flipped; counters and planes are unchanged.
  }

  const uint64_t r = RangeOf(paddr);
  --epoch_count_.at(epoch)[r];
  // The bit may survive the merge through another epoch's chunk version. The cached
  // plane is stale for this decision (it still carries the old OR), so consult the
  // chunk objects directly.
  if (!ScanChunksForBit(ci, bit)) {
    if (!range_dirty_[r]) {
      --merged_count_[r];
    }
    auto reg_it = registry_.find(ci);
    if (reg_it != registry_.end() && reg_it->second.plane_valid) {
      reg_it->second.plane.Clear(bit);
    }
  }
  return cow_bytes;
}

void ValidityMap::ApplyBatch(uint32_t epoch, std::span<BitOp> ops) {
  if (ops.empty()) {
    return;
  }
  IOSNAP_CHECK(epochs_.contains(epoch));
  // Stable sort groups ops by chunk while preserving submission order within each chunk;
  // ops on different chunks touch disjoint state (no epoch or range can appear or vanish
  // mid-batch: a CoW leaves the old chunk referenced by its other epochs, so no
  // RegistryDropRef here ever retires live bits or dirties a range). Reordering across
  // chunks therefore cannot change any counter, plane, or per-op CoW charge.
  std::vector<uint32_t> order(ops.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [this, &ops](uint32_t a, uint32_t b) {
    return ChunkIndex(ops[a].paddr) < ChunkIndex(ops[b].paddr);
  });
  std::vector<uint64_t>& epoch_counts = epoch_count_.at(epoch);

  size_t g = 0;
  while (g < order.size()) {
    const uint64_t ci = ChunkIndex(ops[order[g]].paddr);
    size_t g_end = g;
    while (g_end < order.size() && ChunkIndex(ops[order[g_end]].paddr) == ci) {
      ++g_end;
    }

    // Resolve this chunk once for the whole group. A leading clear resolves without
    // creating (clear on an absent chunk stays a no-op); the first set allocates if
    // still absent — the same allocation sequential calls would perform.
    Chunk* chunk = nullptr;
    bool resolved = false;            // MutableChunk(create=false) already consulted.
    RegistryEntry* entry = nullptr;   // Cached plane holder; stable once chunk exists.
    for (size_t k = g; k < g_end; ++k) {
      BitOp& op = ops[order[k]];
      IOSNAP_CHECK(op.paddr < total_pages_);
      const uint64_t bit = BitInChunk(op.paddr);
      const uint64_t r = RangeOf(op.paddr);
      if (op.set) {
        const bool was_merged = AnyChunkHasBit(ci, bit);
        if (chunk == nullptr) {
          chunk = MutableChunk(epoch, ci, /*create_if_absent=*/true, &op.cow_bytes);
          auto reg_it = registry_.find(ci);
          entry = reg_it != registry_.end() ? &reg_it->second : nullptr;
        }
        const bool was_epoch = chunk->bits.Test(bit);
        chunk->bits.Set(bit);
        if (!was_epoch) {
          ++epoch_counts[r];
        }
        if (!was_merged && !range_dirty_[r]) {
          ++merged_count_[r];
        }
        if (entry != nullptr && entry->plane_valid) {
          entry->plane.Set(bit);
        }
      } else {
        if (chunk == nullptr && !resolved) {
          chunk = MutableChunk(epoch, ci, /*create_if_absent=*/false, &op.cow_bytes);
          resolved = true;
          auto reg_it = registry_.find(ci);
          entry = reg_it != registry_.end() ? &reg_it->second : nullptr;
        }
        if (chunk == nullptr) {
          continue;  // Bit is implicitly clear.
        }
        const bool was_epoch = chunk->bits.Test(bit);
        chunk->bits.Clear(bit);
        if (!was_epoch) {
          continue;
        }
        --epoch_counts[r];
        if (!ScanChunksForBit(ci, bit)) {
          if (!range_dirty_[r]) {
            --merged_count_[r];
          }
          if (entry != nullptr && entry->plane_valid) {
            entry->plane.Clear(bit);
          }
        }
      }
    }
    g = g_end;
  }
}

uint64_t ValidityMap::SetValidBatch(uint32_t epoch, std::span<const uint64_t> paddrs) {
  std::vector<BitOp> ops;
  ops.reserve(paddrs.size());
  for (uint64_t paddr : paddrs) {
    ops.push_back(BitOp{paddr, /*set=*/true, 0});
  }
  ApplyBatch(epoch, ops);
  uint64_t total_cow = 0;
  for (const BitOp& op : ops) {
    total_cow += op.cow_bytes;
  }
  return total_cow;
}

bool ValidityMap::Test(uint32_t epoch, uint64_t paddr) const {
  IOSNAP_CHECK(paddr < total_pages_);
  auto epoch_it = epochs_.find(epoch);
  IOSNAP_CHECK(epoch_it != epochs_.end());
  auto chunk_it = epoch_it->second.find(ChunkIndex(paddr));
  if (chunk_it == epoch_it->second.end()) {
    return false;
  }
  return chunk_it->second->bits.Test(BitInChunk(paddr));
}

bool ValidityMap::TestAny(const std::vector<uint32_t>& epochs, uint64_t paddr) const {
  for (uint32_t epoch : epochs) {
    auto epoch_it = epochs_.find(epoch);
    if (epoch_it == epochs_.end()) {
      continue;
    }
    auto chunk_it = epoch_it->second.find(ChunkIndex(paddr));
    if (chunk_it != epoch_it->second.end() &&
        chunk_it->second->bits.Test(BitInChunk(paddr))) {
      return true;
    }
  }
  return false;
}

bool ValidityMap::MergedTest(uint64_t paddr) const {
  IOSNAP_CHECK(paddr < total_pages_);
  auto reg_it = registry_.find(ChunkIndex(paddr));
  if (reg_it == registry_.end()) {
    return false;
  }
  RegistryEntry& entry = reg_it->second;
  if (!entry.plane_valid) {
    RebuildPlane(&entry);
  } else {
    ++stats_.merge_plane_hits;
  }
  return entry.plane.Test(BitInChunk(paddr));
}

Bitmap ValidityMap::MergedRange(const std::vector<uint32_t>& epochs, uint64_t begin,
                                uint64_t end) const {
  IOSNAP_CHECK(begin <= end && end <= total_pages_);
  Bitmap merged(end - begin);
  for (uint32_t epoch : epochs) {
    auto epoch_it = epochs_.find(epoch);
    if (epoch_it == epochs_.end()) {
      continue;  // Deleted epochs simply drop out of the merge (Fig 6C).
    }
    const ChunkTable& table = epoch_it->second;
    const uint64_t first_chunk = begin / chunk_bits_;
    const uint64_t last_chunk = (end == begin) ? first_chunk : (end - 1) / chunk_bits_;
    for (auto it = table.lower_bound(first_chunk); it != table.end() && it->first <= last_chunk;
         ++it) {
      ++stats_.merge_chunk_visits;
      const uint64_t chunk_base = it->first * chunk_bits_;
      const uint64_t lo = std::max(begin, chunk_base);
      const uint64_t hi = std::min(end, chunk_base + chunk_bits_);
      for (uint64_t p = lo; p < hi; ++p) {
        if (it->second->bits.Test(p - chunk_base)) {
          merged.Set(p - begin);
        }
      }
    }
  }
  return merged;
}

size_t ValidityMap::CountValidInRange(const std::vector<uint32_t>& epochs, uint64_t begin,
                                      uint64_t end) const {
  return MergedRange(epochs, begin, end).CountOnes();
}

size_t ValidityMap::CountValidInRange(uint32_t epoch, uint64_t begin, uint64_t end) const {
  return CountValidInRange(std::vector<uint32_t>{epoch}, begin, end);
}

uint64_t ValidityMap::RecountRange(uint64_t range_index) const {
  const uint64_t begin = range_index * range_pages_;
  const uint64_t end = std::min(begin + range_pages_, total_pages_);
  if (begin >= end) {
    return 0;
  }
  uint64_t count = 0;
  const uint64_t first_chunk = begin / chunk_bits_;
  const uint64_t last_chunk = (end - 1) / chunk_bits_;
  for (uint64_t ci = first_chunk; ci <= last_chunk; ++ci) {
    auto reg_it = registry_.find(ci);
    if (reg_it == registry_.end()) {
      continue;
    }
    RegistryEntry& entry = reg_it->second;
    if (!entry.plane_valid) {
      RebuildPlane(&entry);
    }
    const uint64_t chunk_base = ci * chunk_bits_;
    const uint64_t lo = std::max(begin, chunk_base) - chunk_base;
    const uint64_t hi = std::min(end, chunk_base + chunk_bits_) - chunk_base;
    count += entry.plane.CountOnesInRange(lo, hi);
  }
  ++stats_.range_recounts;
  return count;
}

uint64_t ValidityMap::MergedValidCount(uint64_t range_index) const {
  IOSNAP_CHECK(range_index < NumRanges());
  if (range_dirty_[range_index]) {
    merged_count_[range_index] = RecountRange(range_index);
    range_dirty_[range_index] = 0;
  }
  return merged_count_[range_index];
}

uint64_t ValidityMap::EpochValidCount(uint32_t epoch, uint64_t range_index) const {
  IOSNAP_CHECK(range_index < NumRanges());
  auto it = epoch_count_.find(epoch);
  if (it == epoch_count_.end()) {
    return 0;
  }
  return it->second[range_index];
}

bool ValidityMap::VerifyCounters() const {
  bool ok = true;

  // Per-epoch counters against a from-scratch recount of that epoch's chunks.
  for (const auto& [epoch, table] : epochs_) {
    std::vector<uint64_t> expect(NumRanges(), 0);
    for (const auto& [index, chunk] : table) {
      const uint64_t base = index * chunk_bits_;
      for (uint64_t bit = chunk->bits.FindFirstSet(0); bit < chunk->bits.size();
           bit = chunk->bits.FindFirstSet(bit + 1)) {
        ++expect[RangeOf(base + bit)];
      }
    }
    auto count_it = epoch_count_.find(epoch);
    if (count_it == epoch_count_.end() || count_it->second != expect) {
      IOSNAP_LOG(kError) << "[validity] VerifyCounters: epoch " << epoch << " per-range counts mismatch";
      ok = false;
    }
  }
  if (epoch_count_.size() != epochs_.size()) {
    IOSNAP_LOG(kError) << "[validity] VerifyCounters: stale per-epoch counter tables";
    ok = false;
  }

  // Registry against the epoch tables: every (index, chunk) pair with its multiplicity.
  std::unordered_map<uint64_t, std::unordered_map<const Chunk*, uint32_t>> expect_refs;
  for (const auto& [epoch, table] : epochs_) {
    for (const auto& [index, chunk] : table) {
      ++expect_refs[index][chunk.get()];
    }
  }
  if (expect_refs.size() != registry_.size()) {
    IOSNAP_LOG(kError) << "[validity] VerifyCounters: registry has " << registry_.size()
                       << " entries, expected " << expect_refs.size();
    ok = false;
  }
  for (const auto& [index, refs] : expect_refs) {
    auto reg_it = registry_.find(index);
    if (reg_it == registry_.end() || reg_it->second.refs != refs) {
      IOSNAP_LOG(kError) << "[validity] VerifyCounters: registry refs mismatch at chunk " << index;
      ok = false;
    }
  }

  // Valid planes against the OR of their distinct chunks.
  for (const auto& [index, entry] : registry_) {
    if (!entry.plane_valid) {
      continue;
    }
    Bitmap expect_plane(chunk_bits_);
    for (const auto& [chunk, refs] : entry.refs) {
      expect_plane.OrWith(chunk->bits);
    }
    if (!(entry.plane == expect_plane)) {
      IOSNAP_LOG(kError) << "[validity] VerifyCounters: stale merge plane at chunk " << index;
      ok = false;
    }
  }

  // Merged per-range counters against a registry-independent recount over all epochs.
  std::vector<uint32_t> all_epochs = Epochs();
  for (uint64_t r = 0; r < NumRanges(); ++r) {
    const uint64_t begin = r * range_pages_;
    const uint64_t end = std::min(begin + range_pages_, total_pages_);
    const uint64_t expect = CountValidInRange(all_epochs, begin, end);
    if (MergedValidCount(r) != expect) {
      IOSNAP_LOG(kError) << "[validity] VerifyCounters: range " << r << " merged count "
                         << merged_count_[r] << " != recount " << expect;
      ok = false;
    }
  }
  return ok;
}

uint64_t ValidityMap::MoveBit(const std::vector<uint32_t>& epochs, uint64_t from, uint64_t to) {
  uint64_t cow_bytes = 0;
  for (uint32_t epoch : epochs) {
    auto epoch_it = epochs_.find(epoch);
    if (epoch_it == epochs_.end()) {
      continue;
    }
    auto chunk_it = epoch_it->second.find(ChunkIndex(from));
    if (chunk_it == epoch_it->second.end() ||
        !chunk_it->second->bits.Test(BitInChunk(from))) {
      continue;
    }
    // Clear+Set via the counting paths keeps every counter and plane exact.
    cow_bytes += ClearValid(epoch, from);
    cow_bytes += SetValid(epoch, to);
  }
  return cow_bytes;
}

size_t ValidityMap::MemoryBytes() const {
  std::unordered_set<const Chunk*> seen;
  size_t bytes = 0;
  for (const auto& [epoch, table] : epochs_) {
    bytes += table.size() * (sizeof(uint64_t) + sizeof(ChunkRef) + 3 * sizeof(void*));
    for (const auto& [index, chunk] : table) {
      if (seen.insert(chunk.get()).second) {
        bytes += sizeof(Chunk) + chunk->bits.MemoryBytes();
      }
    }
  }
  return bytes;
}

size_t ValidityMap::DistinctChunkCount() const {
  std::unordered_set<const Chunk*> seen;
  for (const auto& [epoch, table] : epochs_) {
    for (const auto& [index, chunk] : table) {
      seen.insert(chunk.get());
    }
  }
  return seen.size();
}

bool ValidityMap::EpochReader::Test(uint64_t paddr) {
  IOSNAP_CHECK(paddr < map_.total_pages_);
  const uint64_t ci = map_.ChunkIndex(paddr);
  if (!cached_ || ci != cached_index_) {
    cached_ = true;
    cached_index_ = ci;
    cached_bits_ = nullptr;
    auto epoch_it = map_.epochs_.find(epoch_);
    IOSNAP_CHECK(epoch_it != map_.epochs_.end());
    auto chunk_it = epoch_it->second.find(ci);
    if (chunk_it != epoch_it->second.end()) {
      cached_bits_ = &chunk_it->second->bits;
    }
  }
  return cached_bits_ != nullptr && cached_bits_->Test(map_.BitInChunk(paddr));
}

}  // namespace iosnap
