#include "src/ftl/btree.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace iosnap {

BPlusTree::BPlusTree() { root_ = NewLeaf(); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : arena_(std::move(other.arena_)),
      root_(other.root_),
      size_(other.size_),
      leaf_count_(other.leaf_count_),
      internal_count_(other.internal_count_) {
  other.root_ = nullptr;
  other.size_ = 0;
  other.leaf_count_ = 0;
  other.internal_count_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    // Dropping the arena releases every node of the old tree wholesale.
    arena_ = std::move(other.arena_);
    root_ = other.root_;
    size_ = other.size_;
    leaf_count_ = other.leaf_count_;
    internal_count_ = other.internal_count_;
    other.root_ = nullptr;
    other.size_ = 0;
    other.leaf_count_ = 0;
    other.internal_count_ = 0;
  }
  return *this;
}

void BPlusTree::Clear() {
  arena_.Reset();
  size_ = 0;
  leaf_count_ = 0;
  internal_count_ = 0;
  root_ = NewLeaf();
}

BPlusTree::LeafNode* BPlusTree::FindLeaf(uint64_t key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    const auto* internal = static_cast<const InternalNode*>(node);
    const uint64_t* end = internal->keys + internal->count;
    // First separator strictly greater than key selects the child.
    const uint64_t* it = std::upper_bound(internal->keys + 0, end, key);
    node = internal->children[it - internal->keys];
  }
  return static_cast<LeafNode*>(node);
}

std::optional<uint64_t> BPlusTree::Lookup(uint64_t key) const {
  const LeafNode* leaf = FindLeaf(key);
  const uint64_t* end = leaf->keys + leaf->count;
  const uint64_t* it = std::lower_bound(leaf->keys, end, key);
  if (it != end && *it == key) {
    return leaf->values[it - leaf->keys];
  }
  return std::nullopt;
}

bool BPlusTree::InsertRec(Node* node, uint64_t key, uint64_t value, uint64_t* split_key,
                          Node** new_node) {
  *new_node = nullptr;
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    uint64_t* end = leaf->keys + leaf->count;
    uint64_t* it = std::lower_bound(leaf->keys, end, key);
    const int pos = static_cast<int>(it - leaf->keys);
    if (it != end && *it == key) {
      leaf->values[pos] = value;  // In-place overwrite: the common FTL remap.
      return false;
    }
    for (int i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    ++leaf->count;
    ++size_;

    if (leaf->count > kCapacity) {
      auto* right = NewLeaf();
      const int move = leaf->count / 2;
      const int keep = leaf->count - move;
      for (int i = 0; i < move; ++i) {
        right->keys[i] = leaf->keys[keep + i];
        right->values[i] = leaf->values[keep + i];
      }
      right->count = move;
      leaf->count = keep;
      right->next = leaf->next;
      leaf->next = right;
      *split_key = right->keys[0];
      *new_node = right;
    }
    return true;
  }

  auto* internal = static_cast<InternalNode*>(node);
  uint64_t* end = internal->keys + internal->count;
  uint64_t* it = std::upper_bound(internal->keys, end, key);
  const int child_index = static_cast<int>(it - internal->keys);

  uint64_t child_split_key = 0;
  Node* child_new = nullptr;
  const bool inserted =
      InsertRec(internal->children[child_index], key, value, &child_split_key, &child_new);

  if (child_new != nullptr) {
    // Insert separator child_split_key and the new right child after child_index.
    for (int i = internal->count; i > child_index; --i) {
      internal->keys[i] = internal->keys[i - 1];
      internal->children[i + 1] = internal->children[i];
    }
    internal->keys[child_index] = child_split_key;
    internal->children[child_index + 1] = child_new;
    ++internal->count;

    if (internal->count > kCapacity) {
      auto* right = NewInternal();
      // Promote the middle separator; left keeps [0, mid), right takes (mid, count).
      const int mid = internal->count / 2;
      *split_key = internal->keys[mid];
      const int move = internal->count - mid - 1;
      for (int i = 0; i < move; ++i) {
        right->keys[i] = internal->keys[mid + 1 + i];
        right->children[i] = internal->children[mid + 1 + i];
      }
      right->children[move] = internal->children[internal->count];
      right->count = move;
      internal->count = mid;
      *new_node = right;
    }
  }
  return inserted;
}

bool BPlusTree::Insert(uint64_t key, uint64_t value) {
  uint64_t split_key = 0;
  Node* new_node = nullptr;
  const bool inserted = InsertRec(root_, key, value, &split_key, &new_node);
  if (new_node != nullptr) {
    auto* new_root = NewInternal();
    new_root->keys[0] = split_key;
    new_root->children[0] = root_;
    new_root->children[1] = new_node;
    new_root->count = 1;
    root_ = new_root;
  }
  return inserted;
}

size_t BPlusTree::InsertBatch(std::span<const std::pair<uint64_t, uint64_t>> entries,
                              std::vector<std::optional<uint64_t>>* old_values) {
  if (old_values != nullptr) {
    old_values->assign(entries.size(), std::nullopt);
  }
  if (entries.empty()) {
    return 0;
  }
  if (entries.size() == 1) {
    // A batch of one is the scalar insert; skip the sort/descent machinery.
    const uint64_t key = entries[0].first;
    const uint64_t value = entries[0].second;
    if (old_values != nullptr) {
      LeafNode* leaf = FindLeaf(key);
      uint64_t* lend = leaf->keys + leaf->count;
      uint64_t* lit = std::lower_bound(leaf->keys, lend, key);
      if (lit != lend && *lit == key) {
        (*old_values)[0] = leaf->values[lit - leaf->keys];
        leaf->values[lit - leaf->keys] = value;
        return 0;
      }
    }
    return Insert(key, value) ? 1 : 0;
  }
  // Sort (key, original index) pairs: the index tiebreak keeps equal keys in submission
  // order, so the overwrite chain (and the replaced value reported for each duplicate)
  // matches entry-by-entry insertion.
  std::vector<std::pair<uint64_t, uint32_t>> order(entries.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = {entries[i].first, i};
  }
  std::sort(order.begin(), order.end());

  // Memoized descent: keys arrive in ascending order, so consecutive keys usually land
  // in the same subtree. The path stack records, per level, the chosen child and the
  // *effective* upper separator bound (the tightest ancestor separator above it). A new
  // key pops only the suffix of levels whose range it has left, then re-descends from
  // the surviving ancestor — same-leaf keys cost one comparison, not a full descent.
  // Bounds nest (each child's effective bound <= its parent's), so checking the deepest
  // surviving entry is enough.
  struct PathEntry {
    InternalNode* node;
    Node* child;
    uint64_t eff_hi;  // Valid iff has_hi; keys >= eff_hi have left this child's range.
    bool has_hi;
  };
  PathEntry path[64];
  int depth = 0;
  const auto find_leaf = [&](uint64_t key) -> LeafNode* {
    while (depth > 0 && path[depth - 1].has_hi && key >= path[depth - 1].eff_hi) {
      --depth;
    }
    Node* node = depth == 0 ? root_ : path[depth - 1].child;
    while (!node->is_leaf) {
      auto* internal = static_cast<InternalNode*>(node);
      const uint64_t* begin = internal->keys;
      const uint64_t* it = std::upper_bound(begin, begin + internal->count, key);
      PathEntry& e = path[depth];
      e.node = internal;
      e.child = internal->children[it - begin];
      if (it != begin + internal->count) {
        e.eff_hi = *it;
        e.has_hi = true;
      } else if (depth > 0) {
        e.eff_hi = path[depth - 1].eff_hi;
        e.has_hi = path[depth - 1].has_hi;
      } else {
        e.eff_hi = 0;
        e.has_hi = false;
      }
      ++depth;
      node = e.child;
    }
    return static_cast<LeafNode*>(node);
  };

  size_t inserted = 0;
  size_t i = 0;
  const size_t n = order.size();
  while (i < n) {
    const uint64_t key = order[i].first;
    const uint32_t idx = order[i].second;
    const uint64_t value = entries[idx].second;
    LeafNode* leaf = find_leaf(key);
    uint64_t* lend = leaf->keys + leaf->count;
    uint64_t* lit = std::lower_bound(leaf->keys, lend, key);
    const int pos = static_cast<int>(lit - leaf->keys);
    if (lit != lend && *lit == key) {
      if (old_values != nullptr) {
        (*old_values)[idx] = leaf->values[pos];
      }
      leaf->values[pos] = value;
      ++i;
      continue;
    }
    if (leaf->count >= kCapacity) {
      // Full leaf: insert the overflow entry, split, and push the separator up the
      // memoized path — the same midpoint math as InsertRec, without re-descending.
      // (The separator lands at upper_bound(split_key), which is the split child's slot
      // because the child's keys all sit between its bracketing separators.)
      const size_t tail0 = static_cast<size_t>(leaf->count - pos);
      std::memmove(leaf->keys + pos + 1, leaf->keys + pos, tail0 * sizeof(uint64_t));
      std::memmove(leaf->values + pos + 1, leaf->values + pos, tail0 * sizeof(uint64_t));
      leaf->keys[pos] = key;
      leaf->values[pos] = value;
      ++leaf->count;
      ++size_;
      auto* right = NewLeaf();
      const int move = leaf->count / 2;
      const int keep = leaf->count - move;
      std::memcpy(right->keys, leaf->keys + keep, move * sizeof(uint64_t));
      std::memcpy(right->values, leaf->values + keep, move * sizeof(uint64_t));
      right->count = move;
      leaf->count = keep;
      right->next = leaf->next;
      leaf->next = right;
      uint64_t split_key = right->keys[0];
      Node* new_node = right;
      for (int lvl = depth - 1; lvl >= 0 && new_node != nullptr; --lvl) {
        InternalNode* internal = path[lvl].node;
        uint64_t* kend = internal->keys + internal->count;
        uint64_t* kit = std::upper_bound(internal->keys, kend, split_key);
        const int ci = static_cast<int>(kit - internal->keys);
        for (int j = internal->count; j > ci; --j) {
          internal->keys[j] = internal->keys[j - 1];
          internal->children[j + 1] = internal->children[j];
        }
        internal->keys[ci] = split_key;
        internal->children[ci + 1] = new_node;
        ++internal->count;
        if (internal->count > kCapacity) {
          auto* iright = NewInternal();
          const int mid = internal->count / 2;
          split_key = internal->keys[mid];
          const int imove = internal->count - mid - 1;
          for (int j = 0; j < imove; ++j) {
            iright->keys[j] = internal->keys[mid + 1 + j];
            iright->children[j] = internal->children[mid + 1 + j];
          }
          iright->children[imove] = internal->children[internal->count];
          iright->count = imove;
          internal->count = mid;
          new_node = iright;
        } else {
          new_node = nullptr;
        }
      }
      if (new_node != nullptr) {
        auto* new_root = NewInternal();
        new_root->keys[0] = split_key;
        new_root->children[0] = root_;
        new_root->children[1] = new_node;
        new_root->count = 1;
        root_ = new_root;
      }
      depth = 0;  // Splits restructured the path; rebuild for the next key.
      ++inserted;
      ++i;
      continue;
    }
    // Fresh key with room. Extend to the longest run of strictly-ascending batch keys
    // that stay inside this leaf's separator range and this inter-key gap, and fit —
    // then splice the whole run in with one shift. This is where sequential LBA bursts
    // (the FTL's common case) collapse k per-key searches and shifts into one.
    const bool gap_bounded = pos < leaf->count;  // Run must stay below keys[pos]...
    const bool hi_bounded =                      // ...or below the leaf's separator.
        !gap_bounded && depth > 0 && path[depth - 1].has_hi;
    const uint64_t hi = hi_bounded ? path[depth - 1].eff_hi : 0;
    size_t run = 1;
    uint64_t prev_key = key;
    while (i + run < n && leaf->count + static_cast<int>(run) < kCapacity) {
      const uint64_t k = order[i + run].first;
      if (k == prev_key || (gap_bounded && k >= leaf->keys[pos]) ||
          (hi_bounded && k >= hi)) {
        break;
      }
      prev_key = k;
      ++run;
    }
    const size_t tail = static_cast<size_t>(leaf->count - pos);
    std::memmove(leaf->keys + pos + run, leaf->keys + pos, tail * sizeof(uint64_t));
    std::memmove(leaf->values + pos + run, leaf->values + pos, tail * sizeof(uint64_t));
    for (size_t r = 0; r < run; ++r) {
      leaf->keys[pos + r] = order[i + r].first;
      leaf->values[pos + r] = entries[order[i + r].second].second;
    }
    leaf->count += static_cast<int>(run);
    size_ += run;
    inserted += run;
    i += run;
  }
  return inserted;
}

bool BPlusTree::Erase(uint64_t key) {
  LeafNode* leaf = FindLeaf(key);
  uint64_t* end = leaf->keys + leaf->count;
  uint64_t* it = std::lower_bound(leaf->keys, end, key);
  const int pos = static_cast<int>(it - leaf->keys);
  if (it == end || *it != key) {
    return false;
  }
  for (int i = pos; i < leaf->count - 1; ++i) {
    leaf->keys[i] = leaf->keys[i + 1];
    leaf->values[i] = leaf->values[i + 1];
  }
  --leaf->count;
  --size_;
  return true;
}

std::vector<std::pair<uint64_t, uint64_t>> BPlusTree::ToSortedVector() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(size_);
  ForEach([&out](uint64_t k, uint64_t v) { out.emplace_back(k, v); });
  return out;
}

BPlusTree BPlusTree::BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& sorted_pairs) {
  BPlusTree tree;
  if (sorted_pairs.empty()) {
    return tree;
  }
  // Recycle the default empty leaf.
  tree.arena_.Reset();
  tree.root_ = nullptr;
  tree.leaf_count_ = 0;

  // Build fully packed leaves.
  std::vector<Node*> level;
  std::vector<uint64_t> level_min_keys;
  LeafNode* prev = nullptr;
  size_t i = 0;
  while (i < sorted_pairs.size()) {
    auto* leaf = tree.NewLeaf();
    int n = 0;
    while (i < sorted_pairs.size() && n < kCapacity) {
      leaf->keys[n] = sorted_pairs[i].first;
      leaf->values[n] = sorted_pairs[i].second;
      ++n;
      ++i;
    }
    leaf->count = n;
    if (prev != nullptr) {
      prev->next = leaf;
    }
    prev = leaf;
    level.push_back(leaf);
    level_min_keys.push_back(leaf->keys[0]);
  }
  tree.size_ = sorted_pairs.size();

  // Build internal levels bottom-up, packing kCapacity+1 children per node.
  while (level.size() > 1) {
    std::vector<Node*> next_level;
    std::vector<uint64_t> next_min_keys;
    size_t j = 0;
    while (j < level.size()) {
      auto* internal = tree.NewInternal();
      size_t take = std::min<size_t>(kCapacity + 1, level.size() - j);
      // Avoid leaving a singleton group: a node with one child has no separator keys.
      if (level.size() - j - take == 1) {
        --take;
      }
      internal->children[0] = level[j];
      for (size_t c = 1; c < take; ++c) {
        internal->keys[c - 1] = level_min_keys[j + c];
        internal->children[c] = level[j + c];
      }
      internal->count = static_cast<int>(take) - 1;
      next_level.push_back(internal);
      next_min_keys.push_back(level_min_keys[j]);
      j += take;
    }
    level = std::move(next_level);
    level_min_keys = std::move(next_min_keys);
  }
  tree.root_ = level.front();
  return tree;
}

size_t BPlusTree::MemoryBytes() const {
  return leaf_count_ * sizeof(LeafNode) + internal_count_ * sizeof(InternalNode);
}

int BPlusTree::LeafDepth() const {
  int depth = 0;
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children[0];
    ++depth;
  }
  return depth;
}

int BPlusTree::Height() const { return LeafDepth() + 1; }

bool BPlusTree::CheckRec(const Node* node, __int128 lower, __int128 upper, int depth,
                         int leaf_depth) const {
  // Keys must be strictly increasing and within [lower, upper).
  for (int i = 0; i < node->count; ++i) {
    if (i > 0 && node->keys[i] <= node->keys[i - 1]) {
      return false;
    }
    const __int128 k = node->keys[i];
    if (k < lower || k >= upper) {
      return false;
    }
  }
  if (node->is_leaf) {
    return depth == leaf_depth;
  }
  const auto* internal = static_cast<const InternalNode*>(node);
  if (internal->count < 1 && root_ != node) {
    return false;
  }
  for (int i = 0; i <= internal->count; ++i) {
    const __int128 lo = (i == 0) ? lower : static_cast<__int128>(internal->keys[i - 1]);
    const __int128 hi = (i == internal->count) ? upper : static_cast<__int128>(internal->keys[i]);
    if (internal->children[i] == nullptr) {
      return false;
    }
    if (!CheckRec(internal->children[i], lo, hi, depth + 1, leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool BPlusTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return false;
  }
  const __int128 upper = (static_cast<__int128>(1) << 64);
  if (!CheckRec(root_, 0, upper, 0, LeafDepth())) {
    return false;
  }
  // Leaf chain must yield sorted keys and exactly size_ entries.
  uint64_t prev_key = 0;
  bool first = true;
  size_t seen = 0;
  bool ok = true;
  ForEach([&](uint64_t k, uint64_t) {
    if (!first && k <= prev_key) {
      ok = false;
    }
    prev_key = k;
    first = false;
    ++seen;
  });
  return ok && seen == size_;
}

}  // namespace iosnap
