#include "src/ftl/btree.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace iosnap {

struct BPlusTree::Node {
  bool is_leaf;
  int count = 0;  // Number of keys.
  // Room for one overflow entry before a split resolves it.
  uint64_t keys[kCapacity + 1];

  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BPlusTree::LeafNode : BPlusTree::Node {
  uint64_t values[kCapacity + 1];
  LeafNode* next = nullptr;

  LeafNode() : Node(/*leaf=*/true) {}
};

struct BPlusTree::InternalNode : BPlusTree::Node {
  // children[i] covers keys < keys[i]; children[count] covers the rest.
  Node* children[kCapacity + 2] = {nullptr};

  InternalNode() : Node(/*leaf=*/false) {}
};

BPlusTree::BPlusTree() {
  root_ = new LeafNode();
  leaf_count_ = 1;
}

BPlusTree::~BPlusTree() {
  if (root_ != nullptr) {
    DeleteRec(root_);
  }
}

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : root_(other.root_),
      size_(other.size_),
      leaf_count_(other.leaf_count_),
      internal_count_(other.internal_count_) {
  other.root_ = nullptr;
  other.size_ = 0;
  other.leaf_count_ = 0;
  other.internal_count_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    if (root_ != nullptr) {
      DeleteRec(root_);
    }
    root_ = other.root_;
    size_ = other.size_;
    leaf_count_ = other.leaf_count_;
    internal_count_ = other.internal_count_;
    other.root_ = nullptr;
    other.size_ = 0;
    other.leaf_count_ = 0;
    other.internal_count_ = 0;
  }
  return *this;
}

void BPlusTree::DeleteRec(Node* node) {
  if (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    for (int i = 0; i <= internal->count; ++i) {
      DeleteRec(internal->children[i]);
    }
    delete internal;
  } else {
    delete static_cast<LeafNode*>(node);
  }
}

void BPlusTree::Clear() {
  if (root_ != nullptr) {
    DeleteRec(root_);
  }
  root_ = new LeafNode();
  size_ = 0;
  leaf_count_ = 1;
  internal_count_ = 0;
}

BPlusTree::LeafNode* BPlusTree::FindLeaf(uint64_t key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    const auto* internal = static_cast<const InternalNode*>(node);
    const uint64_t* end = internal->keys + internal->count;
    // First separator strictly greater than key selects the child.
    const uint64_t* it = std::upper_bound(internal->keys + 0, end, key);
    node = internal->children[it - internal->keys];
  }
  return static_cast<LeafNode*>(node);
}

std::optional<uint64_t> BPlusTree::Lookup(uint64_t key) const {
  const LeafNode* leaf = FindLeaf(key);
  const uint64_t* end = leaf->keys + leaf->count;
  const uint64_t* it = std::lower_bound(leaf->keys, end, key);
  if (it != end && *it == key) {
    return leaf->values[it - leaf->keys];
  }
  return std::nullopt;
}

bool BPlusTree::InsertRec(Node* node, uint64_t key, uint64_t value, uint64_t* split_key,
                          Node** new_node) {
  *new_node = nullptr;
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    uint64_t* end = leaf->keys + leaf->count;
    uint64_t* it = std::lower_bound(leaf->keys, end, key);
    const int pos = static_cast<int>(it - leaf->keys);
    if (it != end && *it == key) {
      leaf->values[pos] = value;  // In-place overwrite: the common FTL remap.
      return false;
    }
    for (int i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    ++leaf->count;
    ++size_;

    if (leaf->count > kCapacity) {
      auto* right = new LeafNode();
      ++leaf_count_;
      const int move = leaf->count / 2;
      const int keep = leaf->count - move;
      for (int i = 0; i < move; ++i) {
        right->keys[i] = leaf->keys[keep + i];
        right->values[i] = leaf->values[keep + i];
      }
      right->count = move;
      leaf->count = keep;
      right->next = leaf->next;
      leaf->next = right;
      *split_key = right->keys[0];
      *new_node = right;
    }
    return true;
  }

  auto* internal = static_cast<InternalNode*>(node);
  uint64_t* end = internal->keys + internal->count;
  uint64_t* it = std::upper_bound(internal->keys, end, key);
  const int child_index = static_cast<int>(it - internal->keys);

  uint64_t child_split_key = 0;
  Node* child_new = nullptr;
  const bool inserted =
      InsertRec(internal->children[child_index], key, value, &child_split_key, &child_new);

  if (child_new != nullptr) {
    // Insert separator child_split_key and the new right child after child_index.
    for (int i = internal->count; i > child_index; --i) {
      internal->keys[i] = internal->keys[i - 1];
      internal->children[i + 1] = internal->children[i];
    }
    internal->keys[child_index] = child_split_key;
    internal->children[child_index + 1] = child_new;
    ++internal->count;

    if (internal->count > kCapacity) {
      auto* right = new InternalNode();
      ++internal_count_;
      // Promote the middle separator; left keeps [0, mid), right takes (mid, count).
      const int mid = internal->count / 2;
      *split_key = internal->keys[mid];
      const int move = internal->count - mid - 1;
      for (int i = 0; i < move; ++i) {
        right->keys[i] = internal->keys[mid + 1 + i];
        right->children[i] = internal->children[mid + 1 + i];
      }
      right->children[move] = internal->children[internal->count];
      right->count = move;
      internal->count = mid;
      *new_node = right;
    }
  }
  return inserted;
}

bool BPlusTree::Insert(uint64_t key, uint64_t value) {
  uint64_t split_key = 0;
  Node* new_node = nullptr;
  const bool inserted = InsertRec(root_, key, value, &split_key, &new_node);
  if (new_node != nullptr) {
    auto* new_root = new InternalNode();
    ++internal_count_;
    new_root->keys[0] = split_key;
    new_root->children[0] = root_;
    new_root->children[1] = new_node;
    new_root->count = 1;
    root_ = new_root;
  }
  return inserted;
}

bool BPlusTree::Erase(uint64_t key) {
  LeafNode* leaf = FindLeaf(key);
  uint64_t* end = leaf->keys + leaf->count;
  uint64_t* it = std::lower_bound(leaf->keys, end, key);
  const int pos = static_cast<int>(it - leaf->keys);
  if (it == end || *it != key) {
    return false;
  }
  for (int i = pos; i < leaf->count - 1; ++i) {
    leaf->keys[i] = leaf->keys[i + 1];
    leaf->values[i] = leaf->values[i + 1];
  }
  --leaf->count;
  --size_;
  return true;
}

void BPlusTree::ForEach(const std::function<void(uint64_t, uint64_t)>& fn) const {
  // Leftmost leaf, then walk the chain.
  Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<InternalNode*>(node)->children[0];
  }
  for (auto* leaf = static_cast<LeafNode*>(node); leaf != nullptr; leaf = leaf->next) {
    for (int i = 0; i < leaf->count; ++i) {
      fn(leaf->keys[i], leaf->values[i]);
    }
  }
}

std::vector<std::pair<uint64_t, uint64_t>> BPlusTree::ToSortedVector() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(size_);
  ForEach([&out](uint64_t k, uint64_t v) { out.emplace_back(k, v); });
  return out;
}

BPlusTree BPlusTree::BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& sorted_pairs) {
  BPlusTree tree;
  if (sorted_pairs.empty()) {
    return tree;
  }
  // Replace the default empty leaf.
  DeleteRec(tree.root_);
  tree.root_ = nullptr;
  tree.leaf_count_ = 0;

  // Build fully packed leaves.
  std::vector<Node*> level;
  std::vector<uint64_t> level_min_keys;
  LeafNode* prev = nullptr;
  size_t i = 0;
  while (i < sorted_pairs.size()) {
    auto* leaf = new LeafNode();
    ++tree.leaf_count_;
    int n = 0;
    while (i < sorted_pairs.size() && n < kCapacity) {
      leaf->keys[n] = sorted_pairs[i].first;
      leaf->values[n] = sorted_pairs[i].second;
      ++n;
      ++i;
    }
    leaf->count = n;
    if (prev != nullptr) {
      prev->next = leaf;
    }
    prev = leaf;
    level.push_back(leaf);
    level_min_keys.push_back(leaf->keys[0]);
  }
  tree.size_ = sorted_pairs.size();

  // Build internal levels bottom-up, packing kCapacity+1 children per node.
  while (level.size() > 1) {
    std::vector<Node*> next_level;
    std::vector<uint64_t> next_min_keys;
    size_t j = 0;
    while (j < level.size()) {
      auto* internal = new InternalNode();
      ++tree.internal_count_;
      size_t take = std::min<size_t>(kCapacity + 1, level.size() - j);
      // Avoid leaving a singleton group: a node with one child has no separator keys.
      if (level.size() - j - take == 1) {
        --take;
      }
      internal->children[0] = level[j];
      for (size_t c = 1; c < take; ++c) {
        internal->keys[c - 1] = level_min_keys[j + c];
        internal->children[c] = level[j + c];
      }
      internal->count = static_cast<int>(take) - 1;
      next_level.push_back(internal);
      next_min_keys.push_back(level_min_keys[j]);
      j += take;
    }
    level = std::move(next_level);
    level_min_keys = std::move(next_min_keys);
  }
  tree.root_ = level.front();
  return tree;
}

size_t BPlusTree::MemoryBytes() const {
  return leaf_count_ * sizeof(LeafNode) + internal_count_ * sizeof(InternalNode);
}

int BPlusTree::LeafDepth() const {
  int depth = 0;
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children[0];
    ++depth;
  }
  return depth;
}

int BPlusTree::Height() const { return LeafDepth() + 1; }

bool BPlusTree::CheckRec(const Node* node, __int128 lower, __int128 upper, int depth,
                         int leaf_depth) const {
  // Keys must be strictly increasing and within [lower, upper).
  for (int i = 0; i < node->count; ++i) {
    if (i > 0 && node->keys[i] <= node->keys[i - 1]) {
      return false;
    }
    const __int128 k = node->keys[i];
    if (k < lower || k >= upper) {
      return false;
    }
  }
  if (node->is_leaf) {
    return depth == leaf_depth;
  }
  const auto* internal = static_cast<const InternalNode*>(node);
  if (internal->count < 1 && root_ != node) {
    return false;
  }
  for (int i = 0; i <= internal->count; ++i) {
    const __int128 lo = (i == 0) ? lower : static_cast<__int128>(internal->keys[i - 1]);
    const __int128 hi = (i == internal->count) ? upper : static_cast<__int128>(internal->keys[i]);
    if (internal->children[i] == nullptr) {
      return false;
    }
    if (!CheckRec(internal->children[i], lo, hi, depth + 1, leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool BPlusTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return false;
  }
  const __int128 upper = (static_cast<__int128>(1) << 64);
  if (!CheckRec(root_, 0, upper, 0, LeafDepth())) {
    return false;
  }
  // Leaf chain must yield sorted keys and exactly size_ entries.
  uint64_t prev_key = 0;
  bool first = true;
  size_t seen = 0;
  bool ok = true;
  ForEach([&](uint64_t k, uint64_t) {
    if (!first && k <= prev_key) {
      ok = false;
    }
    prev_key = k;
    first = false;
    ++seen;
  });
  return ok && seen == size_;
}

}  // namespace iosnap
