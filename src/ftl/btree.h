// In-memory B+tree mapping uint64 keys to uint64 values.
//
// This is the FTL's forward map structure — "a variant of a B+tree, running in host
// memory" (§5.2.2). A custom tree (rather than std::map) matters for two reasons:
//   1. Table 3 of the paper measures forward-map *node memory*, contrasting a fragmented
//     incrementally-built tree against the compact tree produced by snapshot activation.
//     This implementation exposes node counts and byte footprints, and supports a packed
//     BulkLoad used by activation.
//   2. Point updates (LBA overwrites) replace the value in place with no structural
//     churn, matching FTL behaviour.
//
// Deletions (TRIM) remove keys without rebalancing; emptied leaves stay linked until the
// tree is rebuilt. This mirrors production FTL maps, which tolerate fragmentation on the
// hot path, and is precisely the fragmentation Table 3 observes.

#ifndef SRC_FTL_BTREE_H_
#define SRC_FTL_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace iosnap {

class BPlusTree {
 public:
  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&& other) noexcept;
  BPlusTree& operator=(BPlusTree&& other) noexcept;

  // Inserts or overwrites. Returns true if the key was new.
  bool Insert(uint64_t key, uint64_t value);

  // Returns the mapped value, if present.
  std::optional<uint64_t> Lookup(uint64_t key) const;

  // Removes a key. Returns true if it was present. No rebalancing (see file comment).
  bool Erase(uint64_t key);

  void Clear();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // In-order visit of all (key, value) pairs.
  void ForEach(const std::function<void(uint64_t key, uint64_t value)>& fn) const;

  // Extracts all pairs in key order (used by checkpointing).
  std::vector<std::pair<uint64_t, uint64_t>> ToSortedVector() const;

  // Builds a maximally packed tree from key-sorted unique pairs — the activation path.
  static BPlusTree BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& sorted_pairs);

  // --- Introspection (Table 3) ---
  size_t LeafNodeCount() const { return leaf_count_; }
  size_t InternalNodeCount() const { return internal_count_; }
  size_t NodeCount() const { return leaf_count_ + internal_count_; }
  size_t MemoryBytes() const;
  int Height() const;

  // Verifies structural invariants (sorted keys, separator consistency, leaf chain).
  // Used by tests; returns false and stops at the first violation.
  bool CheckInvariants() const;

 private:
  // Maximum keys per node; nodes split when they would exceed this.
  static constexpr int kCapacity = 32;

  struct Node;
  struct LeafNode;
  struct InternalNode;

  LeafNode* FindLeaf(uint64_t key) const;
  // Recursive insert; on split, *split_key / *new_node describe the new right sibling.
  bool InsertRec(Node* node, uint64_t key, uint64_t value, uint64_t* split_key,
                 Node** new_node);
  static void DeleteRec(Node* node);
  bool CheckRec(const Node* node, __int128 lower, __int128 upper, int depth,
                int leaf_depth) const;
  int LeafDepth() const;

  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t leaf_count_ = 0;
  size_t internal_count_ = 0;
};

}  // namespace iosnap

#endif  // SRC_FTL_BTREE_H_
