// In-memory B+tree mapping uint64 keys to uint64 values.
//
// This is the FTL's forward map structure — "a variant of a B+tree, running in host
// memory" (§5.2.2). A custom tree (rather than std::map) matters for two reasons:
//   1. Table 3 of the paper measures forward-map *node memory*, contrasting a fragmented
//     incrementally-built tree against the compact tree produced by snapshot activation.
//     This implementation exposes node counts and byte footprints, and supports a packed
//     BulkLoad used by activation.
//   2. Point updates (LBA overwrites) replace the value in place with no structural
//     churn, matching FTL behaviour.
//
// Deletions (TRIM) remove keys without rebalancing; emptied leaves stay linked until the
// tree is rebuilt. This mirrors production FTL maps, which tolerate fragmentation on the
// hot path, and is precisely the fragmentation Table 3 observes.
//
// Nodes live in a slab arena with a pooled freelist: node allocation on the write path
// is a bump (or freelist pop) instead of a malloc, Clear() recycles every slab, and the
// whole map releases in O(slabs) at destruction. Node counts (and thus MemoryBytes(),
// Table 3) are unchanged by the allocator.

#ifndef SRC_FTL_BTREE_H_
#define SRC_FTL_BTREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace iosnap {

class BPlusTree {
 public:
  BPlusTree();
  ~BPlusTree() = default;

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&& other) noexcept;
  BPlusTree& operator=(BPlusTree&& other) noexcept;

  // Inserts or overwrites. Returns true if the key was new.
  bool Insert(uint64_t key, uint64_t value);

  // Inserts or overwrites a batch, equivalent to calling Insert() entry by entry in
  // submission order (duplicate keys chain: a later duplicate overwrites the earlier
  // one's value). Returns the number of keys that were new. When `old_values` is
  // non-null it receives, per input entry, the value that entry replaced — nullopt when
  // the key was absent at that point.
  //
  // The batch is sorted, then applied with a memoized root-to-leaf path: consecutive
  // keys that stay inside the current subtree skip the descent, runs of ascending keys
  // landing in one leaf gap are spliced with a single shift, and leaf splits push their
  // separator up the memoized path instead of re-descending. Sequential LBA bursts —
  // the FTL's common case — approach one tree search per leaf rather than per key.
  size_t InsertBatch(std::span<const std::pair<uint64_t, uint64_t>> entries,
                     std::vector<std::optional<uint64_t>>* old_values = nullptr);

  // Returns the mapped value, if present.
  std::optional<uint64_t> Lookup(uint64_t key) const;

  // Removes a key. Returns true if it was present. No rebalancing (see file comment).
  bool Erase(uint64_t key);

  void Clear();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // In-order visit of all (key, value) pairs. Templated so hot callers (checkpoint,
  // activation, space accounting) pay a direct call, not a std::function dispatch.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    // Leftmost leaf, then walk the chain.
    const Node* node = root_;
    while (!node->is_leaf) {
      node = static_cast<const InternalNode*>(node)->children[0];
    }
    for (const auto* leaf = static_cast<const LeafNode*>(node); leaf != nullptr;
         leaf = leaf->next) {
      for (int i = 0; i < leaf->count; ++i) {
        fn(leaf->keys[i], leaf->values[i]);
      }
    }
  }

  // Extracts all pairs in key order (used by checkpointing).
  std::vector<std::pair<uint64_t, uint64_t>> ToSortedVector() const;

  // Builds a maximally packed tree from key-sorted unique pairs — the activation path.
  static BPlusTree BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& sorted_pairs);

  // --- Introspection (Table 3) ---
  size_t LeafNodeCount() const { return leaf_count_; }
  size_t InternalNodeCount() const { return internal_count_; }
  size_t NodeCount() const { return leaf_count_ + internal_count_; }
  size_t MemoryBytes() const;
  int Height() const;

  // Verifies structural invariants (sorted keys, separator consistency, leaf chain).
  // Used by tests; returns false and stops at the first violation.
  bool CheckInvariants() const;

 private:
  // Maximum keys per node; nodes split when they would exceed this.
  static constexpr int kCapacity = 32;

  struct Node {
    bool is_leaf;
    int count = 0;  // Number of keys.
    // Room for one overflow entry before a split resolves it.
    uint64_t keys[kCapacity + 1];

    explicit Node(bool leaf) : is_leaf(leaf) {}
  };

  struct LeafNode : Node {
    uint64_t values[kCapacity + 1];
    LeafNode* next = nullptr;

    LeafNode() : Node(/*leaf=*/true) {}
  };

  struct InternalNode : Node {
    // children[i] covers keys < keys[i]; children[count] covers the rest.
    Node* children[kCapacity + 2] = {nullptr};

    InternalNode() : Node(/*leaf=*/false) {}
  };

  // Slab allocator for tree nodes. Every cell is sized for the larger node type so the
  // freelist is shared; nodes are trivially destructible, so freeing is a list push and
  // Reset() can recycle all slabs without walking the tree.
  class NodeArena {
   public:
    static constexpr size_t kCellBytes =
        sizeof(LeafNode) > sizeof(InternalNode) ? sizeof(LeafNode) : sizeof(InternalNode);
    static constexpr size_t kCellsPerSlab = 128;

    NodeArena() = default;
    NodeArena(NodeArena&& other) noexcept
        : slabs_(std::move(other.slabs_)), used_(other.used_), free_(other.free_) {
      other.slabs_.clear();
      other.used_ = 0;
      other.free_ = nullptr;
    }
    NodeArena& operator=(NodeArena&& other) noexcept {
      if (this != &other) {
        slabs_ = std::move(other.slabs_);
        used_ = other.used_;
        free_ = other.free_;
        other.slabs_.clear();
        other.used_ = 0;
        other.free_ = nullptr;
      }
      return *this;
    }

    void* Allocate() {
      if (free_ != nullptr) {
        FreeCell* cell = free_;
        free_ = cell->next;
        return cell;
      }
      const size_t slab = used_ / kCellsPerSlab;
      if (slab == slabs_.size()) {
        slabs_.push_back(std::make_unique<Cell[]>(kCellsPerSlab));
      }
      return &slabs_[slab][used_++ % kCellsPerSlab];
    }

    void Free(void* p) { free_ = new (p) FreeCell{free_}; }

    // Recycles every cell; keeps the slabs for reuse.
    void Reset() {
      used_ = 0;
      free_ = nullptr;
    }

   private:
    struct alignas(alignof(std::max_align_t)) Cell {
      unsigned char bytes[kCellBytes];
    };
    struct FreeCell {
      FreeCell* next;
    };

    std::vector<std::unique_ptr<Cell[]>> slabs_;
    size_t used_ = 0;     // Cells bump-allocated so far (freelist aside).
    FreeCell* free_ = nullptr;
  };

  LeafNode* NewLeaf() {
    ++leaf_count_;
    return new (arena_.Allocate()) LeafNode();
  }
  InternalNode* NewInternal() {
    ++internal_count_;
    return new (arena_.Allocate()) InternalNode();
  }

  LeafNode* FindLeaf(uint64_t key) const;
  // Recursive insert; on split, *split_key / *new_node describe the new right sibling.
  bool InsertRec(Node* node, uint64_t key, uint64_t value, uint64_t* split_key,
                 Node** new_node);
  bool CheckRec(const Node* node, __int128 lower, __int128 upper, int depth,
                int leaf_depth) const;
  int LeafDepth() const;

  NodeArena arena_;
  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t leaf_count_ = 0;
  size_t internal_count_ = 0;
};

}  // namespace iosnap

#endif  // SRC_FTL_BTREE_H_
