#include "src/ftl/sharded_map.h"

#include <algorithm>

#include "src/common/logging.h"

namespace iosnap {

void ShardedMap::Configure(uint32_t num_shards, uint64_t key_span, WorkerPool* pool) {
  IOSNAP_CHECK(num_shards > 0);
  IOSNAP_CHECK(shards_.empty() || size() == 0);
  shards_.clear();
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (num_shards == 1 || key_span == 0) {
    keys_per_shard_ = ~uint64_t{0};
  } else {
    keys_per_shard_ = std::max<uint64_t>(1, (key_span + num_shards - 1) / num_shards);
  }
  pool_ = pool;
}

bool ShardedMap::Insert(uint64_t key, uint64_t value) {
  return shards_[ShardOf(key)]->tree.Insert(key, value);
}

size_t ShardedMap::InsertBatch(std::span<const std::pair<uint64_t, uint64_t>> entries,
                               std::vector<std::optional<uint64_t>>* old_values) {
  if (shards_.size() == 1) {
    return shards_[0]->tree.InsertBatch(entries, old_values);
  }
  if (old_values != nullptr) {
    old_values->assign(entries.size(), std::nullopt);
  }
  if (entries.empty()) {
    return 0;
  }

  // Partition by shard, preserving submission order within each shard (duplicate keys
  // route identically, so per-shard order is all the ordering that matters).
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> shard_entries(shards_.size());
  std::vector<std::vector<size_t>> shard_index(shards_.size());
  std::vector<size_t> touched;
  for (size_t i = 0; i < entries.size(); ++i) {
    const size_t s = ShardOf(entries[i].first);
    if (shard_entries[s].empty()) {
      touched.push_back(s);
    }
    shard_entries[s].push_back(entries[i]);
    shard_index[s].push_back(i);
  }
  if (touched.size() == 1) {
    const size_t s = touched[0];
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    return shards_[s]->tree.InsertBatch(entries, old_values);
  }

  std::vector<size_t> inserted(touched.size(), 0);
  const auto apply_shard = [&](size_t t) {
    const size_t s = touched[t];
    Shard& shard = *shards_[s];
    std::vector<std::optional<uint64_t>> old_local;
    std::lock_guard<std::mutex> lock(shard.mu);
    inserted[t] = shard.tree.InsertBatch(shard_entries[s],
                                         old_values != nullptr ? &old_local : nullptr);
    if (old_values != nullptr) {
      // Scatter back by original index; ranges are disjoint across shards.
      for (size_t k = 0; k < old_local.size(); ++k) {
        (*old_values)[shard_index[s][k]] = old_local[k];
      }
    }
  };
  if (pool_ != nullptr && pool_->thread_count() > 0) {
    pool_->ParallelFor(touched.size(), apply_shard);
  } else {
    for (size_t t = 0; t < touched.size(); ++t) {
      apply_shard(t);
    }
  }
  size_t total = 0;
  for (size_t n : inserted) {
    total += n;
  }
  return total;
}

std::optional<uint64_t> ShardedMap::Lookup(uint64_t key) const {
  return shards_[ShardOf(key)]->tree.Lookup(key);
}

bool ShardedMap::Erase(uint64_t key) { return shards_[ShardOf(key)]->tree.Erase(key); }

void ShardedMap::Clear() {
  for (auto& shard : shards_) {
    shard->tree.Clear();
  }
}

size_t ShardedMap::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->tree.size();
  }
  return total;
}

std::vector<std::pair<uint64_t, uint64_t>> ShardedMap::ToSortedVector() const {
  if (shards_.size() == 1) {
    return shards_[0]->tree.ToSortedVector();
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(size());
  ForEach([&out](uint64_t key, uint64_t value) { out.emplace_back(key, value); });
  return out;
}

void ShardedMap::BulkLoadReplace(
    const std::vector<std::pair<uint64_t, uint64_t>>& sorted_pairs) {
  if (shards_.size() == 1) {
    shards_[0]->tree = BPlusTree::BulkLoad(sorted_pairs);
    return;
  }
  size_t begin = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    size_t end = sorted_pairs.size();
    if (s + 1 < shards_.size()) {
      const uint64_t bound = (s + 1) * keys_per_shard_;
      end = static_cast<size_t>(
          std::lower_bound(sorted_pairs.begin() + begin, sorted_pairs.end(),
                           std::make_pair(bound, uint64_t{0})) -
          sorted_pairs.begin());
    }
    shards_[s]->tree = BPlusTree::BulkLoad(std::vector<std::pair<uint64_t, uint64_t>>(
        sorted_pairs.begin() + begin, sorted_pairs.begin() + end));
    begin = end;
  }
}

size_t ShardedMap::LeafNodeCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->tree.LeafNodeCount();
  }
  return total;
}

size_t ShardedMap::InternalNodeCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->tree.InternalNodeCount();
  }
  return total;
}

size_t ShardedMap::MemoryBytes() const {
  size_t total = 0;
  for (uint32_t s = 0; s < ShardCount(); ++s) {
    total += ShardMemoryBytes(s);
  }
  return total;
}

size_t ShardedMap::ShardMemoryBytes(uint32_t shard) const {
  IOSNAP_CHECK(shard < shards_.size());
  return shards_[shard]->tree.MemoryBytes();
}

size_t ShardedMap::ShardEntryCount(uint32_t shard) const {
  IOSNAP_CHECK(shard < shards_.size());
  return shards_[shard]->tree.size();
}

bool ShardedMap::CheckInvariants() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]->tree.CheckInvariants()) {
      return false;
    }
    bool routed_ok = true;
    shards_[s]->tree.ForEach([&](uint64_t key, uint64_t) {
      if (ShardOf(key) != s) {
        routed_ok = false;
      }
    });
    if (!routed_ok) {
      return false;
    }
  }
  return true;
}

}  // namespace iosnap
