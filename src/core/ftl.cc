#include "src/core/ftl.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/core/checkpoint.h"
#include "src/core/patrol_scrubber.h"
#include "src/core/recovery.h"
#include "src/nand/parity.h"

namespace iosnap {

namespace {
// Pacing slack: budget slightly more copy work than the estimate so cleaning finishes
// before the free pool does even under mild estimate error.
constexpr double kPacingSlack = 1.3;
// Give up on emergency cleaning after this many rounds: the device is full. Generous
// because one round's net gain can be fractional — a nearly-full victim frees one
// segment while the copy-forward heads consume most of one — and because the
// epoch-colocating policy must first warm up its per-class heads.
constexpr int kMaxInlineCleanRounds = 64;

// Per-request issue times must cover the batch exactly and never go backwards —
// the log is append-ordered, so an earlier-issued request cannot follow a later one.
Status CheckIssueAt(size_t n, std::span<const uint64_t> issue_at) {
  if (issue_at.empty()) {
    return OkStatus();
  }
  if (issue_at.size() != n) {
    return InvalidArgument("issue_at: size does not match request count");
  }
  for (size_t i = 1; i < issue_at.size(); ++i) {
    if (issue_at[i] < issue_at[i - 1]) {
      return InvalidArgument("issue_at: times must be non-decreasing");
    }
  }
  return OkStatus();
}
}  // namespace

Ftl::Ftl(const FtlConfig& config, std::unique_ptr<NandDevice> device)
    : config_(config),
      device_(std::move(device)),
      map_pool_(config.map_update_threads > 0
                    ? std::make_unique<WorkerPool>(config.map_update_threads)
                    : nullptr),
      log_(device_.get(), config.gc_reserve_segments, config.parity_stripe),
      validity_(config.nand.TotalPages(), config.validity_chunk_bits,
                config.naive_validity_copy, config.nand.pages_per_segment),
      lba_count_(config.LbaCount()),
      gc_idle_limiter_(RateLimit::Of(100, 5)),
      patrol_limiter_(RateLimit::Of(100, config.patrol_sleep_ms)) {}

Ftl::~Ftl() = default;

StatusOr<std::unique_ptr<Ftl>> Ftl::Create(const FtlConfig& config) {
  if (config.LbaCount() == 0) {
    return InvalidArgument("ftl: overprovision leaves no LBA space");
  }
  if (config.gc_reserve_segments + 1 >= config.nand.num_segments) {
    return InvalidArgument("ftl: GC reserve consumes the whole device");
  }
  if (config.map_shards == 0) {
    return InvalidArgument("ftl: map_shards must be >= 1");
  }
  if (config.parity_stripe > 0 &&
      config.parity_stripe + 1 > config.nand.pages_per_segment) {
    return InvalidArgument("ftl: parity_stripe leaves no member slots in a segment");
  }
  auto device = std::make_unique<NandDevice>(config.nand);
  std::unique_ptr<Ftl> ftl(new Ftl(config, std::move(device)));
  ftl->validity_.CreateEpoch(kRootEpoch);
  View primary;
  primary.view_id = kPrimaryView;
  primary.epoch = kRootEpoch;
  primary.writable = true;
  primary.ready = true;
  primary.map.Configure(config.map_shards, ftl->lba_count_, ftl->map_pool_.get());
  ftl->views_.emplace(kPrimaryView, std::move(primary));
  ftl->cleaner_ = std::make_unique<SegmentCleaner>(ftl.get());
  ftl->patrol_ = std::make_unique<PatrolScrubber>(ftl.get());
  return ftl;
}

StatusOr<std::unique_ptr<Ftl>> Ftl::Open(const FtlConfig& config,
                                         std::unique_ptr<NandDevice> device,
                                         uint64_t issue_ns, uint64_t* recovery_finish_ns,
                                         TraceRecorder* trace) {
  if (device == nullptr) {
    return InvalidArgument("ftl: no device");
  }
  if (config.map_shards == 0) {
    return InvalidArgument("ftl: map_shards must be >= 1");
  }
  if (config.parity_stripe > 0 &&
      config.parity_stripe + 1 > config.nand.pages_per_segment) {
    return InvalidArgument("ftl: parity_stripe leaves no member slots in a segment");
  }
  ASSIGN_OR_RETURN(RecoveredState state, RecoverFromDevice(device.get(), issue_ns));
  if (trace != nullptr) {
    trace->Record(TraceEventType::kRecoveryRun, issue_ns, state.finish_ns,
                  state.from_checkpoint ? 1 : 0, state.primary_map.size());
  }

  std::unique_ptr<Ftl> ftl(new Ftl(config, std::move(device)));
  ftl->seq_counter_ = state.seq_counter;
  ftl->active_epoch_ = state.active_epoch;
  ftl->tree_ = std::move(state.tree);

  for (const auto& [epoch, paddrs] : state.validity) {
    ftl->validity_.CreateEpoch(epoch);
    // Recovered paddr lists are chunk-dense, so the batched path resolves each CoW
    // chunk once instead of once per bit.
    ftl->validity_.SetValidBatch(epoch, paddrs);
  }
  if (!ftl->validity_.HasEpoch(ftl->active_epoch_)) {
    ftl->validity_.CreateEpoch(ftl->active_epoch_);
  }

  View primary;
  primary.view_id = kPrimaryView;
  primary.epoch = ftl->active_epoch_;
  primary.writable = true;
  primary.ready = true;
  primary.map.Configure(config.map_shards, ftl->lba_count_, ftl->map_pool_.get());
  primary.map.BulkLoadReplace(state.primary_map);
  ftl->views_.emplace(kPrimaryView, std::move(primary));

  ftl->log_.RebuildFromDevice();
  for (const RecoveredState::DataRecord& r : state.data_records) {
    ftl->log_.RestoreAccounting(ftl->device_->SegmentOf(r.paddr), r.epoch, r.seq);
  }

  ftl->cleaner_ = std::make_unique<SegmentCleaner>(ftl.get());
  ftl->patrol_ = std::make_unique<PatrolScrubber>(ftl.get());
  ftl->SetTraceRecorder(trace);
#ifndef NDEBUG
  // The per-segment utilization counters were rebuilt implicitly by the SetValid replay
  // above; cross-check them against a from-scratch recount in debug builds.
  IOSNAP_CHECK(ftl->validity_.VerifyCounters());
#endif
  if (recovery_finish_ns != nullptr) {
    *recovery_finish_ns = state.finish_ns;
  }
  return ftl;
}

void Ftl::SetTraceRecorder(TraceRecorder* trace) {
  trace_ = trace;
  validity_.SetTraceRecorder(trace);
  gc_idle_limiter_.SetTraceRecorder(trace);
  log_.SetTraceRecorder(trace);
  if (device_ != nullptr) {
    device_->SetTraceRecorder(trace);
  }
}

Ftl::View* Ftl::FindView(uint32_t view_id) {
  auto it = views_.find(view_id);
  return it == views_.end() ? nullptr : &it->second;
}

const Ftl::View* Ftl::FindView(uint32_t view_id) const {
  auto it = views_.find(view_id);
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<uint32_t> Ftl::LiveEpochs() const {
  std::vector<uint32_t> epochs = tree_.LiveSnapshotEpochs();
  for (const auto& [id, view] : views_) {
    epochs.push_back(view.epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  return epochs;
}

Status Ftl::EnsureAppendSpace(uint64_t issue_ns) {
  int rounds = 0;
  uint64_t t = issue_ns;
  while (!log_.CanAppend(LogManager::kActiveHead)) {
    if (++rounds > kMaxInlineCleanRounds) {
      return ResourceExhausted("ftl: device full (no reclaimable space)");
    }
    ++stats_.gc_inline_stalls;
    ASSIGN_OR_RETURN(uint64_t finish, cleaner_->CleanOneBlocking(t));
    if (finish == t) {
      return ResourceExhausted("ftl: device full (no victim segment)");
    }
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kGcInlineStall, t, finish,
                     static_cast<uint64_t>(rounds));
    }
    t = finish;
  }
  return OkStatus();
}

void Ftl::PaceCleanerOnWrite(uint64_t now_ns) {
  // GC is deferred while an activation scan is in flight so the scan's view of block
  // placement stays stable (activations are rare; see §4.2).
  if (!activations_.empty()) {
    return;
  }
  const uint64_t free = log_.FreeSegmentCount();
  if (!gc_cycle_active_) {
    if (free >= config_.gc_low_free_segments) {
      return;
    }
    gc_cycle_active_ = true;
    gc_budget_accum_ = 0.0;
  }
  if (free >= config_.gc_high_free_segments) {
    gc_cycle_active_ = false;
    return;
  }
  if (!cleaner_->HasVictim() && !cleaner_->StartVictim(now_ns)) {
    return;
  }

  // Budget copy work per user write so the victim (and the segments after it) finish
  // before the free pool drains. The estimate source is the Fig 10 knob: merged validity
  // (snapshot-aware) or the active epoch only (vanilla), which under-counts copy work
  // when snapshots pin cold data.
  const uint64_t remaining = cleaner_->PacingEstimateRemaining();
  const uint64_t segments_needed =
      std::max<uint64_t>(1, config_.gc_high_free_segments - free);
  const uint64_t user_pages_left = std::max<uint64_t>(1, log_.ActiveHeadFreePages());
  const double per_write =
      kPacingSlack * static_cast<double>((remaining + 1) * segments_needed) /
      static_cast<double>(user_pages_left);
  gc_budget_accum_ += per_write;

  const uint64_t pages = std::min<uint64_t>(static_cast<uint64_t>(gc_budget_accum_),
                                            config_.gc_pages_per_step);
  if (pages > 0) {
    auto result = cleaner_->Step(now_ns, pages);
    if (result.ok()) {
      gc_budget_accum_ -= static_cast<double>(pages);
    } else {
      IOSNAP_LOG(kWarning) << "[cleaner] paced GC step failed: " << result.status();
    }
  }
}

void Ftl::UpdateDegradedState(uint64_t now_ns) {
  if (config_.degraded_free_floor == 0 && config_.degraded_retired_floor == 0) {
    return;
  }
  const uint64_t free = log_.FreeSegmentCount();
  const uint64_t retired = log_.stats().segments_retired;
  const bool free_low =
      config_.degraded_free_floor > 0 && free < config_.degraded_free_floor;
  const bool retired_high = config_.degraded_retired_floor > 0 &&
                            retired >= config_.degraded_retired_floor;
  if (!degraded_) {
    if (free_low || retired_high) {
      degraded_ = true;
      ++stats_.degraded_entries;
      if (trace_ != nullptr) {
        trace_->Record(TraceEventType::kDegradedEnter, now_ns, now_ns, free, retired);
      }
    }
    return;
  }
  // Exit with hysteresis: the free pool must recover to degraded_exit_free (at least
  // the entry floor) so the FTL does not flap at the boundary. A tripped retired-floor
  // condition never clears — retirement is permanent.
  const uint64_t exit_free = std::max(config_.degraded_exit_free,
                                      config_.degraded_free_floor);
  const bool free_ok = config_.degraded_free_floor == 0 || free >= exit_free;
  if (free_ok && !retired_high) {
    degraded_ = false;
    ++stats_.degraded_exits;
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kDegradedExit, now_ns, now_ns, free, retired);
    }
  }
}

Status Ftl::CheckWritable(uint64_t issue_ns) {
  UpdateDegradedState(issue_ns);
  if (degraded_) {
    ++stats_.degraded_writes_rejected;
    return ResourceExhausted("ftl: degraded read-only mode (reclaim space to resume)");
  }
  return OkStatus();
}

StatusOr<IoResult> Ftl::WriteInternal(View* view, uint64_t lba, std::span<const uint8_t> data,
                                      uint64_t issue_ns) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  RETURN_IF_ERROR(CheckWritable(issue_ns));
  if (lba >= lba_count_) {
    return OutOfRange("write: lba " + std::to_string(lba) + " out of range");
  }
  if (!view->ready) {
    return FailedPrecondition("write: view still activating");
  }
  if (!view->writable) {
    return FailedPrecondition("write: view is read-only");
  }

  uint64_t host_ns = config_.host_map_lookup_ns;
  RETURN_IF_ERROR(EnsureAppendSpace(issue_ns));
  validity_.NoteTimeNs(issue_ns);

  PageHeader header;
  header.type = RecordType::kData;
  header.lba = lba;
  header.epoch = view->epoch;
  header.seq = NextSeq();
  ASSIGN_OR_RETURN(AppendResult ar, log_.Append(LogManager::kActiveHead, header, data,
                                                issue_ns));

  uint64_t cow_bytes = 0;
  const std::optional<uint64_t> old_paddr = view->map.Lookup(lba);
  if (old_paddr.has_value()) {
    cow_bytes += validity_.ClearValid(view->epoch, *old_paddr);
  }
  cow_bytes += validity_.SetValid(view->epoch, ar.paddr);
  view->map.Insert(lba, ar.paddr);

  host_ns += config_.host_map_update_ns + 2 * config_.host_bitmap_update_ns +
             cow_bytes * config_.host_cow_ns_per_byte;
  if (cow_bytes > 0) {
    ++stats_.validity_cow_events;
    stats_.validity_cow_bytes += cow_bytes;
  }

  ++stats_.user_writes;
  stats_.user_bytes_written += config_.nand.page_size_bytes;
  ++stats_.total_pages_programmed;

  PaceCleanerOnWrite(ar.op.finish_ns);

  IoResult result;
  result.op = ar.op;
  result.host_ns = host_ns;
  result.host_map_ns = config_.host_map_lookup_ns + config_.host_map_update_ns;
  result.host_cow_ns = cow_bytes * config_.host_cow_ns_per_byte;
  RecordLatency(LatencyOpKind::kWrite, lba, result);
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kUserWrite, issue_ns, result.CompletionNs(), lba,
                   view->view_id);
  }
  return result;
}

StatusOr<IoResult> Ftl::ReadInternal(const View& view, uint64_t lba, uint64_t issue_ns,
                                     std::vector<uint8_t>* data_out) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  if (lba >= lba_count_) {
    return OutOfRange("read: lba " + std::to_string(lba) + " out of range");
  }
  if (!view.ready) {
    return FailedPrecondition("read: view still activating");
  }

  IoResult result;
  result.host_ns = config_.host_map_lookup_ns;
  result.host_map_ns = config_.host_map_lookup_ns;
  ++stats_.user_reads;
  stats_.user_bytes_read += config_.nand.page_size_bytes;

  const std::optional<uint64_t> paddr = view.map.Lookup(lba);
  if (!paddr.has_value()) {
    // Unwritten LBAs read as zeroes without touching the device.
    if (data_out != nullptr) {
      data_out->assign(config_.nand.page_size_bytes, 0);
    }
    result.op.issue_ns = issue_ns;
    result.op.finish_ns = issue_ns;
  } else {
    StatusOr<NandOp> op = device_->ReadPageWithRetry(*paddr, issue_ns, nullptr, data_out,
                                                     config_.read_retry_limit);
    if (op.ok()) {
      result.op = *op;
    } else if (op.status().code() == StatusCode::kDataLoss && config_.parity_stripe > 0) {
      // Permanent CRC failure with parity on: rebuild the page from its stripe before
      // admitting data loss. The synthetic op window covers the whole rebuild (member
      // reads + corrective append) and is attributed to the kRebuild span.
      StatusOr<AppendResult> rebuilt = RebuildPage(*paddr, issue_ns, data_out);
      if (!rebuilt.ok()) {
        ++stats_.user_read_errors;
        return op.status();
      }
      result.op.issue_ns = issue_ns;
      result.op.finish_ns = rebuilt->op.finish_ns;
      result.rebuild_ns = rebuilt->op.finish_ns - issue_ns;
    } else {
      // Retries exhausted (transient) or the page failed its CRC (permanent): surface
      // the typed status instead of aborting; the rest of the device stays readable.
      ++stats_.user_read_errors;
      return op.status();
    }
  }
  RecordLatency(LatencyOpKind::kRead, lba, result);
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kUserRead, issue_ns, result.CompletionNs(), lba,
                   view.view_id);
  }
  return result;
}

StatusOr<std::vector<IoResult>> Ftl::WriteVInternal(View* view,
                                                    std::span<const WriteRequest> requests,
                                                    uint64_t issue_ns,
                                                    std::span<const uint64_t> issue_at) {
  const auto IssueAt = [&](size_t i) {
    return issue_at.empty() ? issue_ns : issue_at[i];
  };
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  RETURN_IF_ERROR(CheckWritable(issue_ns));
  if (!view->ready) {
    return FailedPrecondition("write: view still activating");
  }
  if (!view->writable) {
    return FailedPrecondition("write: view is read-only");
  }
  for (const WriteRequest& r : requests) {
    if (r.lba >= lba_count_) {
      return OutOfRange("write: lba " + std::to_string(r.lba) + " out of range");
    }
  }

  std::vector<IoResult> results;
  results.reserve(requests.size());
  if (requests.empty()) {
    return results;
  }

  // Scratch reused across runs.
  std::vector<LogManager::AppendRequest> appends;
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  std::vector<std::optional<uint64_t>> old_paddrs;
  std::vector<ValidityMap::BitOp> bit_ops;
  std::vector<size_t> op_begin;

  size_t next = 0;
  while (next < requests.size()) {
    RETURN_IF_ERROR(EnsureAppendSpace(IssueAt(next)));
    const uint64_t remaining = requests.size() - next;

    // Run sizing: the longest prefix for which the one-by-one path would provably keep
    // EnsureAppendSpace and PaceCleanerOnWrite no-ops between writes, so batching the
    // device work cannot reorder cleaner traffic relative to sequential execution.
    // Outside those regimes fall back to one page at a time — the scalar path exactly.
    uint64_t run = 1;
    const uint64_t head_pages = std::max<uint64_t>(1, log_.ActiveHeadFreePages());
    if (!activations_.empty()) {
      // Pacing defers to the activation scan; only append room limits the run.
      run = std::min(remaining, head_pages);
    } else if (!gc_cycle_active_ &&
               log_.FreeSegmentCount() >= config_.gc_low_free_segments) {
      // Writes may consume the open segment plus every whole segment above the low
      // watermark before pacing engages. Clamp by append room: the low watermark is not
      // guaranteed to sit above the GC reserve.
      const uint64_t pages_per_segment = config_.nand.pages_per_segment;
      uint64_t open_rem = 0;
      const std::optional<uint64_t> open = log_.OpenSegment(LogManager::kActiveHead);
      if (open.has_value()) {
        open_rem = pages_per_segment - device_->NextFreePage(*open);
      }
      const uint64_t safe =
          open_rem +
          (log_.FreeSegmentCount() - config_.gc_low_free_segments) * pages_per_segment;
      run = std::min(remaining, std::max<uint64_t>(1, std::min(safe, head_pages)));
    }

    validity_.NoteTimeNs(IssueAt(next));
    appends.clear();
    for (uint64_t i = 0; i < run; ++i) {
      PageHeader header;
      header.type = RecordType::kData;
      header.lba = requests[next + i].lba;
      header.epoch = view->epoch;
      header.seq = NextSeq();
      appends.push_back({header, requests[next + i].data});
    }
    std::vector<AppendResult> ars;
    const Status append_status =
        log_.AppendBatch(LogManager::kActiveHead, appends, IssueAt(next), &ars,
                         issue_at.empty() ? std::span<const uint64_t>{}
                                          : issue_at.subspan(next, run));
    // On error `ars` holds the durably appended prefix (possibly torn mid-batch by a
    // fault); apply exactly that prefix to the map/validity so in-memory state matches
    // the log, then propagate the error below.
    run = ars.size();

    // Forward map: one batched descent for the run. `old_paddrs` matches what
    // per-record lookups would have returned (duplicate LBAs resolve in submission
    // order).
    entries.clear();
    for (uint64_t i = 0; i < run; ++i) {
      entries.emplace_back(requests[next + i].lba, ars[i].paddr);
    }
    view->map.InsertBatch(entries, &old_paddrs);

    // Validity: per record, clear-old then set-new. ApplyBatch groups the flips by
    // chunk; per-op CoW attribution is identical to the sequential calls.
    bit_ops.clear();
    op_begin.clear();
    for (uint64_t i = 0; i < run; ++i) {
      op_begin.push_back(bit_ops.size());
      if (old_paddrs[i].has_value()) {
        bit_ops.push_back({*old_paddrs[i], false, 0});
      }
      bit_ops.push_back({ars[i].paddr, true, 0});
    }
    validity_.ApplyBatch(view->epoch, bit_ops);

    for (uint64_t i = 0; i < run; ++i) {
      const size_t ops_end = i + 1 < run ? op_begin[i + 1] : bit_ops.size();
      uint64_t cow_bytes = 0;
      for (size_t o = op_begin[i]; o < ops_end; ++o) {
        cow_bytes += bit_ops[o].cow_bytes;
      }
      if (cow_bytes > 0) {
        ++stats_.validity_cow_events;
        stats_.validity_cow_bytes += cow_bytes;
      }
      ++stats_.user_writes;
      stats_.user_bytes_written += config_.nand.page_size_bytes;
      ++stats_.total_pages_programmed;

      PaceCleanerOnWrite(ars[i].op.finish_ns);

      IoResult result;
      result.op = ars[i].op;
      result.host_ns = config_.host_map_lookup_ns + config_.host_map_update_ns +
                       2 * config_.host_bitmap_update_ns +
                       cow_bytes * config_.host_cow_ns_per_byte;
      result.host_map_ns = config_.host_map_lookup_ns + config_.host_map_update_ns;
      result.host_cow_ns = cow_bytes * config_.host_cow_ns_per_byte;
      RecordLatency(LatencyOpKind::kWrite, requests[next + i].lba, result);
      if (trace_ != nullptr) {
        trace_->Record(TraceEventType::kUserWrite, IssueAt(next + i), result.CompletionNs(),
                       requests[next + i].lba, view->view_id);
      }
      results.push_back(result);
    }
    next += run;
    if (!append_status.ok()) {
      return append_status;
    }
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kUserBatch, issue_ns, issue_ns, requests.size(),
                   view->view_id);
  }
  return results;
}

StatusOr<std::vector<IoResult>> Ftl::ReadVInternal(
    const View& view, std::span<const uint64_t> lbas, uint64_t issue_ns,
    std::vector<std::vector<uint8_t>>* data_out, std::span<const uint64_t> issue_at) {
  const auto IssueAt = [&](size_t i) {
    return issue_at.empty() ? issue_ns : issue_at[i];
  };
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  if (!view.ready) {
    return FailedPrecondition("read: view still activating");
  }
  for (uint64_t lba : lbas) {
    if (lba >= lba_count_) {
      return OutOfRange("read: lba " + std::to_string(lba) + " out of range");
    }
  }

  std::vector<IoResult> results(lbas.size());
  if (data_out != nullptr) {
    data_out->assign(lbas.size(), {});
  }
  // Resolve in submission order; unmapped LBAs read as zeroes without device work,
  // mapped pages go to the device as one batch at the shared issue time.
  std::vector<uint64_t> paddrs;
  std::vector<size_t> mapped;
  std::vector<uint64_t> mapped_issue;
  paddrs.reserve(lbas.size());
  mapped.reserve(lbas.size());
  for (size_t i = 0; i < lbas.size(); ++i) {
    IoResult& r = results[i];
    r.host_ns = config_.host_map_lookup_ns;
    r.host_map_ns = config_.host_map_lookup_ns;
    ++stats_.user_reads;
    stats_.user_bytes_read += config_.nand.page_size_bytes;
    const std::optional<uint64_t> paddr = view.map.Lookup(lbas[i]);
    if (!paddr.has_value()) {
      if (data_out != nullptr) {
        (*data_out)[i].assign(config_.nand.page_size_bytes, 0);
      }
      r.op.issue_ns = IssueAt(i);
      r.op.finish_ns = IssueAt(i);
    } else {
      paddrs.push_back(*paddr);
      mapped.push_back(i);
      if (!issue_at.empty()) {
        mapped_issue.push_back(issue_at[i]);
      }
    }
  }
  if (!paddrs.empty()) {
    std::vector<std::vector<uint8_t>> data;
    std::vector<NandOp> ops;
    const Status batch_status =
        device_->ReadBatch(paddrs, issue_ns, nullptr,
                           data_out != nullptr ? &data : nullptr, &ops, mapped_issue);
    size_t done = ops.size();
    for (size_t k = 0; k < done; ++k) {
      results[mapped[k]].op = ops[k];
      if (data_out != nullptr) {
        (*data_out)[mapped[k]] = std::move(data[k]);
      }
    }
    if (!batch_status.ok()) {
      // The batch tore at `done`: fall back to per-page reads with bounded retry for
      // the remainder so one transient fault doesn't fail the whole vectored read.
      for (size_t k = done; k < mapped.size(); ++k) {
        std::vector<uint8_t> page;
        StatusOr<NandOp> op = device_->ReadPageWithRetry(
            paddrs[k], IssueAt(mapped[k]), nullptr,
            data_out != nullptr ? &page : nullptr, config_.read_retry_limit);
        if (op.ok()) {
          results[mapped[k]].op = *op;
        } else if (op.status().code() == StatusCode::kDataLoss &&
                   config_.parity_stripe > 0) {
          // Same escalation as the scalar read path: try a stripe rebuild before
          // failing the whole vectored read with data loss.
          StatusOr<AppendResult> rebuilt = RebuildPage(
              paddrs[k], IssueAt(mapped[k]), data_out != nullptr ? &page : nullptr);
          if (!rebuilt.ok()) {
            ++stats_.user_read_errors;
            return op.status();
          }
          results[mapped[k]].op.issue_ns = IssueAt(mapped[k]);
          results[mapped[k]].op.finish_ns = rebuilt->op.finish_ns;
          results[mapped[k]].rebuild_ns = rebuilt->op.finish_ns - IssueAt(mapped[k]);
        } else {
          ++stats_.user_read_errors;
          return op.status();
        }
        if (data_out != nullptr) {
          (*data_out)[mapped[k]] = std::move(page);
        }
      }
    }
  }
  if (attributor_ != nullptr) {
    for (size_t i = 0; i < lbas.size(); ++i) {
      RecordLatency(LatencyOpKind::kRead, lbas[i], results[i]);
    }
  }
  if (trace_ != nullptr) {
    for (size_t i = 0; i < lbas.size(); ++i) {
      trace_->Record(TraceEventType::kUserRead, IssueAt(i), results[i].CompletionNs(),
                     lbas[i], view.view_id);
    }
    if (!lbas.empty()) {
      trace_->Record(TraceEventType::kUserBatch, issue_ns, issue_ns, lbas.size(),
                     view.view_id);
    }
  }
  return results;
}

StatusOr<IoResult> Ftl::Write(uint64_t lba, std::span<const uint8_t> data,
                              uint64_t issue_ns) {
  return WriteInternal(FindView(kPrimaryView), lba, data, issue_ns);
}

StatusOr<std::vector<IoResult>> Ftl::WriteV(std::span<const WriteRequest> requests,
                                            uint64_t issue_ns) {
  return WriteVInternal(FindView(kPrimaryView), requests, issue_ns);
}

StatusOr<std::vector<IoResult>> Ftl::ReadV(std::span<const uint64_t> lbas,
                                           uint64_t issue_ns,
                                           std::vector<std::vector<uint8_t>>* data_out) {
  return ReadVInternal(*FindView(kPrimaryView), lbas, issue_ns, data_out);
}

StatusOr<std::vector<IoResult>> Ftl::WriteVAt(std::span<const WriteRequest> requests,
                                              uint64_t issue_ns,
                                              std::span<const uint64_t> issue_at) {
  RETURN_IF_ERROR(CheckIssueAt(requests.size(), issue_at));
  return WriteVInternal(FindView(kPrimaryView), requests, issue_ns, issue_at);
}

StatusOr<std::vector<IoResult>> Ftl::ReadVAt(std::span<const uint64_t> lbas,
                                             uint64_t issue_ns,
                                             std::span<const uint64_t> issue_at,
                                             std::vector<std::vector<uint8_t>>* data_out) {
  RETURN_IF_ERROR(CheckIssueAt(lbas.size(), issue_at));
  return ReadVInternal(*FindView(kPrimaryView), lbas, issue_ns, data_out, issue_at);
}

StatusOr<IoResult> Ftl::Read(uint64_t lba, uint64_t issue_ns,
                             std::vector<uint8_t>* data_out) {
  return ReadInternal(*FindView(kPrimaryView), lba, issue_ns, data_out);
}

StatusOr<IoResult> Ftl::Trim(uint64_t lba, uint64_t count, uint64_t issue_ns) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  if (count == 0 || lba + count > lba_count_ || count > 0xffffffffULL) {
    return OutOfRange("trim: bad range");
  }
  RETURN_IF_ERROR(CheckWritable(issue_ns));
  View* view = FindView(kPrimaryView);
  RETURN_IF_ERROR(EnsureAppendSpace(issue_ns));
  validity_.NoteTimeNs(issue_ns);

  PageHeader header;
  header.type = RecordType::kTrim;
  header.lba = lba;
  header.epoch = view->epoch;
  header.seq = NextSeq();
  header.trim_count = static_cast<uint32_t>(count);
  ASSIGN_OR_RETURN(AppendResult ar, log_.Append(LogManager::kActiveHead, header, {},
                                                issue_ns));
  ++stats_.total_pages_programmed;

  uint64_t host_ns = config_.host_note_ns;
  uint64_t map_ns = 0;
  uint64_t cow_ns = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const std::optional<uint64_t> old_paddr = view->map.Lookup(lba + i);
    if (old_paddr.has_value()) {
      const uint64_t cow = validity_.ClearValid(view->epoch, *old_paddr);
      view->map.Erase(lba + i);
      host_ns += config_.host_map_update_ns + config_.host_bitmap_update_ns +
                 cow * config_.host_cow_ns_per_byte;
      map_ns += config_.host_map_update_ns;
      cow_ns += cow * config_.host_cow_ns_per_byte;
    }
  }
  ++stats_.user_trims;

  IoResult result;
  result.op = ar.op;
  result.host_ns = host_ns;
  result.host_map_ns = map_ns;
  result.host_cow_ns = cow_ns;
  RecordLatency(LatencyOpKind::kTrim, lba, result);
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kUserTrim, issue_ns, result.CompletionNs(), lba, count);
  }
  return result;
}

StatusOr<std::vector<IoResult>> Ftl::TrimV(std::span<const TrimRequest> requests,
                                           uint64_t issue_ns) {
  return TrimVAt(requests, issue_ns, {});
}

StatusOr<std::vector<IoResult>> Ftl::TrimVAt(std::span<const TrimRequest> requests,
                                             uint64_t issue_ns,
                                             std::span<const uint64_t> issue_at) {
  const auto IssueAt = [&](size_t i) {
    return issue_at.empty() ? issue_ns : issue_at[i];
  };
  RETURN_IF_ERROR(CheckIssueAt(requests.size(), issue_at));
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  for (const TrimRequest& r : requests) {
    if (r.count == 0 || r.lba + r.count > lba_count_ || r.count > 0xffffffffULL) {
      return OutOfRange("trim: bad range");
    }
  }
  RETURN_IF_ERROR(CheckWritable(issue_ns));
  View* view = FindView(kPrimaryView);
  std::vector<IoResult> results;
  results.reserve(requests.size());
  if (requests.empty()) {
    return results;
  }

  std::vector<LogManager::AppendRequest> appends;
  size_t next = 0;
  while (next < requests.size()) {
    RETURN_IF_ERROR(EnsureAppendSpace(IssueAt(next)));
    validity_.NoteTimeNs(IssueAt(next));
    // Trims never pace the cleaner, so only append room limits the note run.
    const uint64_t run = std::min<uint64_t>(
        requests.size() - next, std::max<uint64_t>(1, log_.ActiveHeadFreePages()));
    appends.clear();
    for (uint64_t i = 0; i < run; ++i) {
      const TrimRequest& r = requests[next + i];
      PageHeader header;
      header.type = RecordType::kTrim;
      header.lba = r.lba;
      header.epoch = view->epoch;
      header.seq = NextSeq();
      header.trim_count = static_cast<uint32_t>(r.count);
      appends.push_back({header, {}});
    }
    std::vector<AppendResult> ars;
    const Status append_status =
        log_.AppendBatch(LogManager::kActiveHead, appends, IssueAt(next), &ars,
                         issue_at.empty() ? std::span<const uint64_t>{}
                                          : issue_at.subspan(next, run));
    // Apply only the durably appended prefix (see WriteVInternal).
    const uint64_t done = ars.size();

    for (uint64_t i = 0; i < done; ++i) {
      const TrimRequest& r = requests[next + i];
      ++stats_.total_pages_programmed;
      uint64_t host_ns = config_.host_note_ns;
      uint64_t map_ns = 0;
      uint64_t cow_ns = 0;
      for (uint64_t j = 0; j < r.count; ++j) {
        const std::optional<uint64_t> old_paddr = view->map.Lookup(r.lba + j);
        if (old_paddr.has_value()) {
          const uint64_t cow = validity_.ClearValid(view->epoch, *old_paddr);
          view->map.Erase(r.lba + j);
          host_ns += config_.host_map_update_ns + config_.host_bitmap_update_ns +
                     cow * config_.host_cow_ns_per_byte;
          map_ns += config_.host_map_update_ns;
          cow_ns += cow * config_.host_cow_ns_per_byte;
        }
      }
      ++stats_.user_trims;

      IoResult result;
      result.op = ars[i].op;
      result.host_ns = host_ns;
      result.host_map_ns = map_ns;
      result.host_cow_ns = cow_ns;
      RecordLatency(LatencyOpKind::kTrim, r.lba, result);
      if (trace_ != nullptr) {
        trace_->Record(TraceEventType::kUserTrim, IssueAt(next + i), result.CompletionNs(),
                       r.lba, r.count);
      }
      results.push_back(result);
    }
    next += done;
    if (!append_status.ok()) {
      return append_status;
    }
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kUserBatch, issue_ns, issue_ns, requests.size(),
                   kPrimaryView);
  }
  return results;
}

bool Ftl::IsMapped(uint64_t lba) const {
  const View* view = FindView(kPrimaryView);
  return view->map.Lookup(lba).has_value();
}

StatusOr<SnapshotOpResult> Ftl::CreateSnapshot(std::string name, uint64_t issue_ns) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  if (!config_.snapshots_enabled) {
    return Unimplemented("snapshots are disabled on this device");
  }
  RETURN_IF_ERROR(EnsureAppendSpace(issue_ns));

  // §5.8: (writes are quiesced by the single-threaded simulation), write a create note,
  // increment the epoch, record the snapshot in the tree. The note carries the successor
  // epoch id explicitly and the snapshot name as payload (so names survive a crash).
  const uint32_t frozen_epoch = active_epoch_;
  if (name.size() > config_.nand.page_size_bytes) {
    return InvalidArgument("snapshot name exceeds one page");
  }
  const uint32_t snap_id = tree_.AddSnapshot(frozen_epoch, seq_counter_, name);

  PageHeader note;
  note.type = RecordType::kSnapCreate;
  note.snap_id = snap_id;
  note.epoch = frozen_epoch;
  note.lba = tree_.NextEpochId();
  note.seq = NextSeq();
  note.payload_len = static_cast<uint32_t>(name.size());
  const std::span<const uint8_t> payload(reinterpret_cast<const uint8_t*>(name.data()),
                                         name.size());
  ASSIGN_OR_RETURN(AppendResult ar,
                   log_.Append(LogManager::kActiveHead, note, payload, issue_ns));
  ++stats_.total_pages_programmed;

  const uint32_t new_epoch = tree_.NewEpoch(frozen_epoch);
  validity_.NoteTimeNs(issue_ns);
  const uint64_t cow_bytes = validity_.ForkEpoch(new_epoch, frozen_epoch);
  active_epoch_ = new_epoch;
  FindView(kPrimaryView)->epoch = new_epoch;
  ++epoch_set_version_;

  ++stats_.snapshots_created;

  SnapshotOpResult result;
  result.snap_id = snap_id;
  result.io.op = ar.op;
  result.io.host_ns = config_.host_note_ns + cow_bytes * config_.host_cow_ns_per_byte;
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kSnapCreate, issue_ns, result.io.CompletionNs(), snap_id,
                   frozen_epoch, new_epoch);
  }
  return result;
}

StatusOr<IoResult> Ftl::DeleteSnapshot(uint32_t snap_id, uint64_t issue_ns) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  ASSIGN_OR_RETURN(SnapshotInfo info, tree_.Get(snap_id));
  if (info.deleted) {
    return FailedPrecondition("snapshot " + std::to_string(snap_id) + " already deleted");
  }
  for (const auto& [id, view] : views_) {
    if (id != kPrimaryView && view.snap_id == snap_id) {
      return FailedPrecondition("snapshot " + std::to_string(snap_id) +
                                " has an active view; deactivate it first");
    }
  }
  RETURN_IF_ERROR(EnsureAppendSpace(issue_ns));
  ASSIGN_OR_RETURN(AppendResult ar,
                   AppendNote(RecordType::kSnapDelete, snap_id, info.epoch, 0, issue_ns));
  RETURN_IF_ERROR(tree_.MarkDeleted(snap_id));
  // The frozen validity view goes away; shared chunks survive via their other refs and
  // the epoch's exclusive blocks become garbage at the next clean of their segments.
  validity_.DropEpoch(info.epoch);
  ++epoch_set_version_;
  ++stats_.snapshots_deleted;

  IoResult result;
  result.op = ar.op;
  result.host_ns = config_.host_note_ns;
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kSnapDelete, issue_ns, result.CompletionNs(), snap_id,
                   info.epoch);
  }
  return result;
}

StatusOr<uint64_t> Ftl::RollbackToSnapshot(uint32_t snap_id, uint64_t issue_ns) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  if (!config_.snapshots_enabled) {
    return Unimplemented("snapshots are disabled on this device");
  }
  ASSIGN_OR_RETURN(SnapshotInfo info, tree_.Get(snap_id));
  if (info.deleted) {
    return FailedPrecondition("snapshot " + std::to_string(snap_id) + " is deleted");
  }
  if (views_.size() != 1 || !activations_.empty()) {
    return FailedPrecondition("rollback requires all views deactivated");
  }
  RETURN_IF_ERROR(EnsureAppendSpace(issue_ns));

  // Persist the re-parenting, then fork the primary off the snapshot. Everything written
  // since the snapshot (the old primary epoch's exclusive blocks) becomes garbage.
  const uint32_t new_epoch_id = tree_.NextEpochId();
  ASSIGN_OR_RETURN(AppendResult ar, AppendNote(RecordType::kRollback, snap_id, info.epoch,
                                               new_epoch_id, issue_ns));
  const uint32_t new_epoch = tree_.NewEpoch(info.epoch);
  IOSNAP_CHECK(new_epoch == new_epoch_id);
  validity_.NoteTimeNs(issue_ns);
  validity_.ForkEpoch(new_epoch, info.epoch);

  View* primary = FindView(kPrimaryView);
  validity_.DropEpoch(primary->epoch);
  primary->epoch = new_epoch;
  primary->ready = false;
  active_epoch_ = new_epoch;
  ++epoch_set_version_;

  // Rebuild the primary forward map with the standard activation scan (same cost
  // profile, same compact bulk-loaded result).
  auto task = std::make_unique<ActivationTask>(this, kPrimaryView, info.epoch,
                                               RateLimit::Unlimited(), ar.op.finish_ns);
  ActivationTask* raw = task.get();
  activations_.push_back(std::move(task));
  ASSIGN_OR_RETURN(uint64_t finish, raw->RunToCompletion(ar.op.finish_ns));
  std::erase_if(activations_,
                [raw](const std::unique_ptr<ActivationTask>& t) { return t.get() == raw; });
  MaybeClearRelocations();
  ++stats_.rollbacks;
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kSnapRollback, issue_ns, finish, snap_id, info.epoch,
                   new_epoch);
  }
  return finish;
}

StatusOr<Ftl::SnapshotSpace> Ftl::SnapshotSpaceReport(uint32_t snap_id) const {
  ASSIGN_OR_RETURN(SnapshotInfo info, tree_.Get(snap_id));
  if (info.deleted) {
    return FailedPrecondition("snapshot " + std::to_string(snap_id) + " is deleted");
  }
  std::vector<uint32_t> others;
  for (uint32_t epoch : LiveEpochs()) {
    if (epoch != info.epoch) {
      others.push_back(epoch);
    }
  }
  SnapshotSpace space;
  validity_.ForEachValid(info.epoch, [&](uint64_t paddr) {
    ++space.referenced_pages;
    if (!validity_.TestAny(others, paddr)) {
      ++space.exclusive_pages;
    }
  });
  return space;
}

StatusOr<uint32_t> Ftl::BeginActivation(uint32_t snap_id, RateLimit limit, uint64_t issue_ns,
                                        bool writable) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  if (!config_.snapshots_enabled) {
    return Unimplemented("snapshots are disabled on this device");
  }
  ASSIGN_OR_RETURN(SnapshotInfo info, tree_.Get(snap_id));
  if (info.deleted) {
    return FailedPrecondition("snapshot " + std::to_string(snap_id) + " is deleted");
  }
  RETURN_IF_ERROR(EnsureAppendSpace(issue_ns));
  ASSIGN_OR_RETURN(AppendResult ar,
                   AppendNote(RecordType::kSnapActivate, snap_id, info.epoch,
                              tree_.NextEpochId(), issue_ns));

  // The activated view lives on a fresh epoch forked off the snapshot (§5.6): writes to
  // the view never disturb the snapshot itself.
  const uint32_t view_epoch = tree_.NewEpoch(info.epoch);
  validity_.NoteTimeNs(issue_ns);
  validity_.ForkEpoch(view_epoch, info.epoch);
  ++epoch_set_version_;

  View view;
  view.view_id = next_view_id_++;
  view.snap_id = snap_id;
  view.epoch = view_epoch;
  view.writable = writable;
  view.ready = false;
  const uint32_t view_id = view.view_id;
  views_.emplace(view_id, std::move(view));

  activations_.push_back(std::make_unique<ActivationTask>(this, view_id, info.epoch, limit,
                                                          ar.op.finish_ns));
  ++stats_.activations;
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kActivateBegin, issue_ns, ar.op.finish_ns, snap_id,
                   view_id, view_epoch);
  }
  return view_id;
}

bool Ftl::ActivationDone(uint32_t view_id) const {
  const View* view = FindView(view_id);
  return view != nullptr && view->ready;
}

StatusOr<uint32_t> Ftl::ActivateBlocking(uint32_t snap_id, uint64_t issue_ns, bool writable,
                                         uint64_t* finish_ns) {
  ASSIGN_OR_RETURN(uint32_t view_id,
                   BeginActivation(snap_id, RateLimit::Unlimited(), issue_ns, writable));
  ActivationTask* task = activations_.back().get();
  ASSIGN_OR_RETURN(uint64_t finish, task->RunToCompletion(issue_ns));
  if (finish_ns != nullptr) {
    *finish_ns = finish;
  }
  std::erase_if(activations_,
                [task](const std::unique_ptr<ActivationTask>& t) { return t.get() == task; });
  MaybeClearRelocations();
  return view_id;
}

Status Ftl::Deactivate(uint32_t view_id, uint64_t issue_ns) {
  if (view_id == kPrimaryView) {
    return InvalidArgument("cannot deactivate the primary view");
  }
  View* view = FindView(view_id);
  if (view == nullptr) {
    return NotFound("view " + std::to_string(view_id) + " does not exist");
  }
  RETURN_IF_ERROR(EnsureAppendSpace(issue_ns));
  RETURN_IF_ERROR(
      AppendNote(RecordType::kSnapDeactivate, view->snap_id, view->epoch, 0, issue_ns)
          .status());
  // Abandon any in-flight activation of this view.
  std::erase_if(activations_, [view_id](const std::unique_ptr<ActivationTask>& t) {
    return t->view_id() == view_id;
  });
  MaybeClearRelocations();
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kSnapDeactivate, issue_ns, issue_ns, view->snap_id,
                   view_id);
  }
  validity_.DropEpoch(view->epoch);
  views_.erase(view_id);
  ++epoch_set_version_;
  ++stats_.deactivations;
  return OkStatus();
}

std::vector<uint32_t> Ftl::ActiveViewIds() const {
  std::vector<uint32_t> out;
  for (const auto& [id, view] : views_) {
    out.push_back(id);
  }
  return out;
}

StatusOr<IoResult> Ftl::ReadView(uint32_t view_id, uint64_t lba, uint64_t issue_ns,
                                 std::vector<uint8_t>* data_out) {
  const View* view = FindView(view_id);
  if (view == nullptr) {
    return NotFound("view " + std::to_string(view_id) + " does not exist");
  }
  return ReadInternal(*view, lba, issue_ns, data_out);
}

StatusOr<IoResult> Ftl::WriteView(uint32_t view_id, uint64_t lba,
                                  std::span<const uint8_t> data, uint64_t issue_ns) {
  View* view = FindView(view_id);
  if (view == nullptr) {
    return NotFound("view " + std::to_string(view_id) + " does not exist");
  }
  return WriteInternal(view, lba, data, issue_ns);
}

StatusOr<std::vector<IoResult>> Ftl::ReadViewV(uint32_t view_id,
                                               std::span<const uint64_t> lbas,
                                               uint64_t issue_ns,
                                               std::vector<std::vector<uint8_t>>* data_out) {
  const View* view = FindView(view_id);
  if (view == nullptr) {
    return NotFound("view " + std::to_string(view_id) + " does not exist");
  }
  return ReadVInternal(*view, lbas, issue_ns, data_out);
}

StatusOr<std::vector<IoResult>> Ftl::WriteViewV(uint32_t view_id,
                                                std::span<const WriteRequest> requests,
                                                uint64_t issue_ns) {
  View* view = FindView(view_id);
  if (view == nullptr) {
    return NotFound("view " + std::to_string(view_id) + " does not exist");
  }
  return WriteVInternal(view, requests, issue_ns);
}

void Ftl::PumpBackground(uint64_t now_ns) {
  if (closed_) {
    return;
  }
  // Activations first (they also suppress cleaning while in flight).
  for (auto& task : activations_) {
    if (!task->done()) {
      auto result = task->Pump(now_ns);
      if (!result.ok()) {
        IOSNAP_LOG(kWarning) << "[activation] activation pump failed: " << result.status();
      }
    }
  }
  std::erase_if(activations_,
                [](const std::unique_ptr<ActivationTask>& t) { return t->done(); });
  MaybeClearRelocations();

  if (!activations_.empty()) {
    return;
  }
  // Idle catch-up cleaning (free pool low) and static wear leveling, lightly paced.
  // While degraded with a free-pool floor configured, the idle cleaner chases the
  // degraded *exit* threshold instead of gc_low: writes are rejected in that state,
  // so write-path GC pacing cannot run — background reclaim is the only way back
  // to writable.
  uint64_t idle_low = config_.gc_low_free_segments;
  if (degraded_ && config_.degraded_free_floor > 0) {
    idle_low = std::max(idle_low, std::max(config_.degraded_exit_free,
                                           config_.degraded_free_floor));
  }
  if ((log_.FreeSegmentCount() < idle_low || cleaner_->WearImbalanced()) &&
      gc_idle_limiter_.CanRun(now_ns)) {
    if (cleaner_->HasVictim() || cleaner_->StartVictim(now_ns)) {
      auto result = cleaner_->Step(now_ns, config_.gc_pages_per_step);
      if (result.ok()) {
        gc_idle_limiter_.OnBurstComplete(*result);
      }
    }
  }
  // Patrol scrubbing, paced on its own limiter (patrol_sleep_ms between bursts).
  if (config_.patrol_enabled && patrol_limiter_.CanRun(now_ns)) {
    auto result = patrol_->Step(now_ns, config_.patrol_pages_per_step);
    if (result.ok()) {
      patrol_limiter_.OnBurstComplete(*result);
    } else {
      IOSNAP_LOG(kWarning) << "[patrol] scrub step failed: " << result.status();
    }
  }
  // Idle cleaning / patrol evacuation may have recovered (or drained) the free pool.
  UpdateDegradedState(now_ns);
}

StatusOr<uint64_t> Ftl::ForceCleanSegment(uint64_t issue_ns) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  return cleaner_->CleanOneBlocking(issue_ns);
}

StatusOr<uint64_t> Ftl::ScrubAllBlocking(uint64_t issue_ns) {
  if (closed_) {
    return FailedPrecondition("ftl: closed");
  }
  ASSIGN_OR_RETURN(uint64_t finish, patrol_->ScrubAllBlocking(issue_ns));
  UpdateDegradedState(finish);
  return finish;
}

Status Ftl::CheckpointAndClose(uint64_t issue_ns) {
  if (closed_) {
    return FailedPrecondition("ftl: already closed");
  }
  // Activated views do not survive restarts.
  std::vector<uint32_t> view_ids;
  for (const auto& [id, view] : views_) {
    if (id != kPrimaryView) {
      view_ids.push_back(id);
    }
  }
  uint64_t t = issue_ns;
  for (uint32_t id : view_ids) {
    RETURN_IF_ERROR(Deactivate(id, t));
  }
  activations_.clear();

  CheckpointState state;
  state.seq_counter = seq_counter_;
  state.active_epoch = active_epoch_;
  state.tree = tree_;  // Copy.
  state.primary_map = FindView(kPrimaryView)->map.ToSortedVector();
  for (uint32_t epoch : LiveEpochs()) {
    uint64_t valid_pages = 0;
    for (uint64_t r = 0; r < validity_.NumRanges(); ++r) {
      valid_pages += validity_.EpochValidCount(epoch, r);
    }
    std::vector<uint64_t> paddrs;
    paddrs.reserve(valid_pages);
    validity_.ForEachValid(epoch, [&paddrs](uint64_t paddr) { paddrs.push_back(paddr); });
    state.validity.emplace(epoch, std::move(paddrs));
  }

  const std::vector<uint8_t> bytes = SerializeCheckpoint(state);
  const uint64_t page_bytes = config_.nand.page_size_bytes;
  const uint64_t total_pages = (bytes.size() + page_bytes - 1) / page_bytes;
  const uint32_t checkpoint_id = static_cast<uint32_t>(seq_counter_ & 0xffffffffu);

  for (uint64_t i = 0; i < total_pages; ++i) {
    RETURN_IF_ERROR(EnsureAppendSpace(t));
    PageHeader header;
    header.type = RecordType::kCheckpoint;
    header.lba = i;                       // Page index within the checkpoint.
    header.snap_id = checkpoint_id;
    header.trim_count = static_cast<uint32_t>(total_pages);
    header.seq = NextSeq();
    const uint64_t begin = i * page_bytes;
    const uint64_t len = std::min<uint64_t>(page_bytes, bytes.size() - begin);
    header.payload_len = static_cast<uint32_t>(len);
    std::span<const uint8_t> payload(bytes.data() + begin, len);
    ASSIGN_OR_RETURN(AppendResult ar,
                     log_.Append(LogManager::kActiveHead, header, payload, t));
    ++stats_.total_pages_programmed;
    t = ar.op.finish_ns;
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kCheckpointWrite, issue_ns, t, total_pages, bytes.size());
  }
  closed_ = true;
  return OkStatus();
}

std::unique_ptr<NandDevice> Ftl::ReleaseDevice() {
  closed_ = true;
  return std::move(device_);
}

StatusOr<uint64_t> Ftl::ViewMapMemoryBytes(uint32_t view_id) const {
  const View* view = FindView(view_id);
  if (view == nullptr) {
    return NotFound("view " + std::to_string(view_id) + " does not exist");
  }
  return static_cast<uint64_t>(view->map.MemoryBytes());
}

StatusOr<uint64_t> Ftl::ViewMapEntryCount(uint32_t view_id) const {
  const View* view = FindView(view_id);
  if (view == nullptr) {
    return NotFound("view " + std::to_string(view_id) + " does not exist");
  }
  return static_cast<uint64_t>(view->map.size());
}

StatusOr<std::vector<std::pair<uint64_t, uint64_t>>> Ftl::ViewMapEntries(
    uint32_t view_id) const {
  const View* view = FindView(view_id);
  if (view == nullptr) {
    return NotFound("view " + std::to_string(view_id) + " does not exist");
  }
  if (!view->ready) {
    return FailedPrecondition("view still activating");
  }
  return view->map.ToSortedVector();
}

void Ftl::DetachPaddrFromMaps(uint64_t paddr) {
  // Full map sweep — O(mapped blocks) per view, but only ever run on a data-loss
  // event (a page dropped as unreadable), so correctness beats speed here.
  for (auto& [id, view] : views_) {
    std::vector<uint64_t> stale;
    view.map.ForEach([&](uint64_t lba, uint64_t mapped) {
      if (mapped == paddr) {
        stale.push_back(lba);
      }
    });
    for (uint64_t lba : stale) {
      view.map.Erase(lba);
    }
  }
}

StatusOr<AppendResult> Ftl::RebuildPage(uint64_t old_paddr, uint64_t issue_ns,
                                        std::vector<uint8_t>* data_out) {
  const uint64_t stripe = config_.parity_stripe;
  const uint64_t pages_per_segment = config_.nand.pages_per_segment;
  // Failure bookkeeping shared by every bail-out below.
  const auto Fail = [&](uint64_t lba, const std::string& why) -> Status {
    ++stats_.pages_rebuild_failed;
    if (trace_ != nullptr) {
      trace_->Record(TraceEventType::kRebuildFailed, issue_ns, issue_ns, lba, old_paddr);
    }
    return DataLoss("rebuild: " + why);
  };
  if (stripe == 0) {
    return Fail(0, "parity disabled");
  }
  const uint64_t segment = device_->SegmentOf(old_paddr);
  const uint64_t index = old_paddr - device_->FirstPageOf(segment);
  if (IsParitySlot(index, stripe, pages_per_segment)) {
    return Fail(0, "page is a parity slot");
  }
  const uint64_t pslot = ParitySlotFor(index, stripe, pages_per_segment);
  const uint64_t parity_paddr = device_->FirstPageOf(segment) + pslot;
  if (!device_->IsProgrammed(parity_paddr)) {
    // The stripe never closed (crash or abandoned segment): its members were written
    // but the covering parity page was not.
    return Fail(0, "stripe has no parity page");
  }

  // Read the parity page, then every surviving member, chaining device time.
  uint64_t t = issue_ns;
  PageHeader pheader;
  std::vector<uint8_t> image;
  StatusOr<NandOp> pread = device_->ReadPageWithRetry(parity_paddr, t, &pheader, &image,
                                                      config_.read_retry_limit);
  if (!pread.ok()) {
    return Fail(0, "parity page unreadable");
  }
  t = pread->finish_ns;
  const uint64_t members = pslot - StripeStartIndex(pslot, stripe);
  if (pheader.type != RecordType::kParity || pheader.trim_count != members ||
      image.size() != ParityImageSize(config_.nand.page_size_bytes)) {
    // trim_count == 0 is the poisoned-accumulator marker (a reopened partial stripe
    // held an unreadable member); any other mismatch means the slot holds something
    // that is not this stripe's parity.
    return Fail(0, "parity page unusable (poisoned or mismatched)");
  }
  for (uint64_t i = StripeStartIndex(pslot, stripe); i < pslot; ++i) {
    const uint64_t member_paddr = device_->FirstPageOf(segment) + i;
    if (member_paddr == old_paddr) {
      continue;
    }
    PageHeader mheader;
    std::vector<uint8_t> mdata;
    StatusOr<NandOp> mread = device_->ReadPageWithRetry(member_paddr, t, &mheader, &mdata,
                                                        config_.read_retry_limit);
    if (!mread.ok()) {
      // Two faults in one stripe: XOR parity cannot recover either. Honest loss.
      return Fail(0, "second unreadable member in stripe");
    }
    t = mread->finish_ns;
    XorMemberImage(image, mheader, mdata, config_.nand.page_size_bytes);
  }

  StatusOr<DecodedMember> decoded =
      DecodeMemberImage(image, config_.nand.page_size_bytes);
  if (!decoded.ok()) {
    return Fail(0, "reconstruction failed CRC");
  }

  // Re-append through the GC head preserving the record's (lba, epoch, seq) identity —
  // the copy-forward contract, so recovery and activations still attribute it.
  ASSIGN_OR_RETURN(AppendResult ar, log_.Append(LogManager::kGcHead, decoded->header,
                                                decoded->payload, t));
  ++stats_.total_pages_programmed;

  if (decoded->header.type == RecordType::kData) {
    validity_.NoteTimeNs(ar.op.finish_ns);
    validity_.MoveBit(LiveEpochs(), old_paddr, ar.paddr);
    if (!activations_.empty()) {
      gc_relocations_.emplace_back(decoded->header.lba, ar.paddr);
    }
    for (auto& [id, view] : views_) {
      if (!tree_.InLineage(view.epoch, decoded->header.epoch)) {
        continue;
      }
      const std::optional<uint64_t> mapped = view.map.Lookup(decoded->header.lba);
      if (mapped.has_value() && *mapped == old_paddr) {
        view.map.Insert(decoded->header.lba, ar.paddr);
      }
    }
  }

  ++stats_.pages_rebuilt;
  if (trace_ != nullptr) {
    trace_->Record(TraceEventType::kPageRebuilt, issue_ns, ar.op.finish_ns,
                   decoded->header.lba, old_paddr, ar.paddr);
  }
  if (data_out != nullptr) {
    *data_out = std::move(decoded->payload);
  }
  return ar;
}

StatusOr<AppendResult> Ftl::AppendNote(RecordType type, uint32_t snap_id, uint32_t epoch,
                                       uint32_t aux_epoch, uint64_t issue_ns) {
  PageHeader header;
  header.type = type;
  header.snap_id = snap_id;
  header.epoch = epoch;
  header.lba = aux_epoch;
  header.seq = NextSeq();
  auto result = log_.Append(LogManager::kActiveHead, header, {}, issue_ns);
  if (result.ok()) {
    ++stats_.total_pages_programmed;
  }
  return result;
}

StatusOr<uint64_t> Ftl::AppendTreeSummary(int head, uint64_t issue_ns) {
  std::vector<uint8_t> bytes;
  tree_.SerializeTo(&bytes);
  PutU32(&bytes, active_epoch_);

  const uint64_t page_bytes = config_.nand.page_size_bytes;
  const uint64_t total_pages = (bytes.size() + page_bytes - 1) / page_bytes;
  const uint32_t summary_id = static_cast<uint32_t>(seq_counter_ & 0xffffffffu);
  uint64_t finish = issue_ns;
  for (uint64_t i = 0; i < total_pages; ++i) {
    PageHeader header;
    header.type = RecordType::kTreeSummary;
    header.lba = i;
    header.snap_id = summary_id;
    header.trim_count = static_cast<uint32_t>(total_pages);
    header.seq = NextSeq();
    const uint64_t begin = i * page_bytes;
    const uint64_t len = std::min<uint64_t>(page_bytes, bytes.size() - begin);
    header.payload_len = static_cast<uint32_t>(len);
    std::span<const uint8_t> payload(bytes.data() + begin, len);
    ASSIGN_OR_RETURN(AppendResult ar, log_.Append(head, header, payload, finish));
    finish = ar.op.finish_ns;
    ++stats_.total_pages_programmed;
  }
  ++stats_.gc_summaries_written;
  return finish;
}

}  // namespace iosnap
