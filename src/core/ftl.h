// The ioSnap FTL: a log-structured flash translation layer with flash-native snapshots.
//
// This is the paper's primary contribution assembled over the substrates in src/nand and
// src/ftl. One class serves as both the "vanilla" baseline FTL (snapshots_enabled=false)
// and ioSnap. The design follows §5 of the paper:
//
//   * Remap-on-Write: every write appends to the log; the forward map (a B+tree in host
//     memory) translates LBAs to physical pages; validity bitmaps drive cleaning.
//   * Snapshot create/delete are O(1): a note on the log, an epoch increment, a snapshot
//     tree entry, and CoW-freezing of the validity chunk set. No map copies, no change to
//     the foreground data path no matter how many snapshots exist.
//   * Snapshot access is deferred to *activation*: a rate-limited scan of log headers
//     filtered through the snapshot's frozen validity bitmap, bulk-loaded into a compact
//     forward map, yielding a readable (and, as a design extension, writable) view.
//   * The segment cleaner is snapshot-aware: block liveness is the OR of every live
//     epoch's validity, copy-forward preserves the original (lba, epoch, seq) identity,
//     and validity bits move in every epoch that referenced the block.
//
// Time: all operations take the caller's virtual issue time (ns) and report completion
// through IoResult. Background work (cleaning, activation) is advanced by PumpBackground
// and by pacing hooks inside the write path; its device traffic delays foreground I/O via
// the NAND channel model, which is how the paper's interference figures arise here.

#ifndef SRC_CORE_FTL_H_
#define SRC_CORE_FTL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/worker_pool.h"
#include "src/core/activation.h"
#include "src/core/ftl_config.h"
#include "src/core/ftl_stats.h"
#include "src/core/segment_cleaner.h"
#include "src/core/snapshot_tree.h"
#include "src/ftl/log_manager.h"
#include "src/ftl/rate_limiter.h"
#include "src/ftl/sharded_map.h"
#include "src/ftl/validity_map.h"
#include "src/nand/nand_device.h"
#include "src/obs/latency.h"
#include "src/obs/trace.h"

namespace iosnap {

class PatrolScrubber;

// Completion record for one FTL operation: device-time window plus host CPU time.
// `host_map_ns`/`host_cow_ns` break host_ns down for latency attribution: they are
// accumulated from the same terms that are summed into host_ns at each charge site,
// so host_map_ns + host_cow_ns <= host_ns always holds exactly (the remainder is the
// op's other host work: trim notes, bitmap flips, ...). The device-side breakdown
// rides on `op` (see NandOp).
struct IoResult {
  NandOp op;            // Device window (issue -> finish). finish==issue for cache-only ops.
  uint64_t host_ns = 0; // Host CPU time charged to this op.
  uint64_t host_map_ns = 0;  // Forward-map share of host_ns (lookup + update).
  uint64_t host_cow_ns = 0;  // Validity-CoW share of host_ns.
  // Device time spent XOR-rebuilding an unreadable page from its parity stripe. When
  // set, `op` is a synthetic window (issue -> rebuild finish) with zero per-span
  // components — the rebuild's member reads and corrective append occupied the device
  // instead — so the span-sum invariant below still holds bit-exactly.
  uint64_t rebuild_ns = 0;

  uint64_t LatencyNs() const { return (op.finish_ns - op.issue_ns) + host_ns; }
  uint64_t CompletionNs() const { return op.finish_ns + host_ns; }

  // The span attribution of LatencyNs(); components sum to it bit-exactly.
  LatencySpans Spans() const {
    LatencySpans s;
    s[LatencySpan::kQueueWait] = op.FgWaitNs();
    s[LatencySpan::kGcWait] = op.bg_wait_ns;
    s[LatencySpan::kBus] = op.bus_ns;
    s[LatencySpan::kCell] = op.cell_ns;
    s[LatencySpan::kMap] = host_map_ns;
    s[LatencySpan::kCow] = host_cow_ns;
    s[LatencySpan::kHostOther] = host_ns - host_map_ns - host_cow_ns;
    s[LatencySpan::kRebuild] = rebuild_ns;
    return s;
  }
};

struct SnapshotOpResult {
  uint32_t snap_id = 0;
  IoResult io;
};

// The id of the always-present primary (active) view.
inline constexpr uint32_t kPrimaryView = 0;

// One page write in a vectored submission.
struct WriteRequest {
  uint64_t lba = 0;
  std::span<const uint8_t> data;
};

// One trim range in a vectored submission.
struct TrimRequest {
  uint64_t lba = 0;
  uint64_t count = 0;
};

class Ftl {
 public:
  // Creates an FTL on a factory-fresh device.
  static StatusOr<std::unique_ptr<Ftl>> Create(const FtlConfig& config);

  // Re-attaches an existing device (restart). If the device tail holds a complete
  // checkpoint the state is loaded from it; otherwise full crash recovery (§5.5) runs.
  // `recovery_finish_ns` (optional) reports the virtual time when recovery completed.
  // `trace` (optional) is attached before recovery so the recovery phase is recorded.
  static StatusOr<std::unique_ptr<Ftl>> Open(const FtlConfig& config,
                                             std::unique_ptr<NandDevice> device,
                                             uint64_t issue_ns,
                                             uint64_t* recovery_finish_ns = nullptr,
                                             TraceRecorder* trace = nullptr);

  ~Ftl();
  Ftl(const Ftl&) = delete;
  Ftl& operator=(const Ftl&) = delete;

  const FtlConfig& config() const { return config_; }
  const FtlStats& stats() const { return stats_; }
  // Attaches (or detaches, with nullptr) a flight recorder. Propagates to every
  // instrumented component (device, validity map, pacing limiters). Tracing is purely
  // observational: all event timestamps ride the virtual clock the instrumented code
  // already computed, so behaviour and reported latencies are unchanged.
  void SetTraceRecorder(TraceRecorder* trace);
  TraceRecorder* trace_recorder() const { return trace_; }
  // Attaches (or detaches, with nullptr) a latency attributor. Same discipline as the
  // trace recorder: a nullptr-guarded sink fed values the data path already computed,
  // so runs are bit-identical with attribution on or off. Every completed user data op
  // (write/read/trim, scalar or vectored, any view) records exactly one SpanRecord.
  void SetLatencyAttributor(LatencyAttributor* attributor) { attributor_ = attributor; }
  LatencyAttributor* latency_attributor() const { return attributor_; }
  const NandDevice& device() const { return *device_; }
  // Test-only mutable hook: fault campaigns corrupt pages in place (the device's own
  // CorruptPageForTesting) on a live FTL to exercise scrub/drop paths mid-run.
  NandDevice& MutableDeviceForTesting() { return *device_; }
  const SnapshotTree& snapshot_tree() const { return tree_; }
  const ValidityMap& validity() const { return validity_; }
  const LogManager& log_manager() const { return log_; }
  uint64_t LbaCount() const { return lba_count_; }

  // --- Primary block-device I/O (one page per call) ---

  StatusOr<IoResult> Write(uint64_t lba, std::span<const uint8_t> data, uint64_t issue_ns);
  StatusOr<IoResult> Read(uint64_t lba, uint64_t issue_ns, std::vector<uint8_t>* data_out);
  // Discards [lba, lba + count). Logged as a single trim note.
  StatusOr<IoResult> Trim(uint64_t lba, uint64_t count, uint64_t issue_ns);
  bool IsMapped(uint64_t lba) const;

  // --- Vectored I/O (see DESIGN.md "Vectored I/O and batching") ---
  //
  // Every request in a batch is issued at `issue_ns`; the device schedules the whole
  // batch in one virtual-clock pass, so per-request device times overlap across
  // channels. A batch is not atomic: requests apply in submission order, later requests
  // observe earlier requests' effects (duplicate LBAs behave as if written
  // back-to-back), and an error mid-batch leaves earlier requests applied. State,
  // stats, and per-request results are bit-identical to issuing the same requests
  // one-by-one at the same issue time; a batch of one is the scalar call.
  StatusOr<std::vector<IoResult>> WriteV(std::span<const WriteRequest> requests,
                                         uint64_t issue_ns);
  // `data_out` (optional) receives one page buffer per lba, in submission order.
  StatusOr<std::vector<IoResult>> ReadV(std::span<const uint64_t> lbas, uint64_t issue_ns,
                                        std::vector<std::vector<uint8_t>>* data_out);
  // One trim note per request.
  StatusOr<std::vector<IoResult>> TrimV(std::span<const TrimRequest> requests,
                                        uint64_t issue_ns);

  // --- Vectored I/O with per-request issue times (multi-queue submission) ---
  //
  // Identical to WriteV/ReadV/TrimV except each request i is issued at issue_at[i]
  // (must be size requests.size() and non-decreasing; issue_ns still stamps the batch
  // trace event and must be <= issue_at[0]). The io_queue layer uses these so ops
  // admitted by different queues at different times share one ordered commit pass.
  // Passing an empty issue_at span (or a span of issue_ns copies) is bit-identical to
  // the plain vectored call.
  StatusOr<std::vector<IoResult>> WriteVAt(std::span<const WriteRequest> requests,
                                           uint64_t issue_ns,
                                           std::span<const uint64_t> issue_at);
  StatusOr<std::vector<IoResult>> ReadVAt(std::span<const uint64_t> lbas,
                                          uint64_t issue_ns,
                                          std::span<const uint64_t> issue_at,
                                          std::vector<std::vector<uint8_t>>* data_out);
  StatusOr<std::vector<IoResult>> TrimVAt(std::span<const TrimRequest> requests,
                                          uint64_t issue_ns,
                                          std::span<const uint64_t> issue_at);

  // --- Snapshot operations (§5.8) ---

  StatusOr<SnapshotOpResult> CreateSnapshot(std::string name, uint64_t issue_ns);
  StatusOr<IoResult> DeleteSnapshot(uint32_t snap_id, uint64_t issue_ns);

  // Rolls the primary volume back to `snap_id` in place: the primary forks a fresh epoch
  // off the snapshot and adopts its forward map (built by a normal activation scan, so
  // the cost profile matches activation). Writes made since the snapshot become garbage
  // for the cleaner; the snapshot itself remains intact and can be rolled back to again.
  // Requires that no other views are active. Returns the device finish time.
  StatusOr<uint64_t> RollbackToSnapshot(uint32_t snap_id, uint64_t issue_ns);

  // Starts a rate-limited activation; returns the new view id immediately. The view
  // becomes readable once activation completes (pump via PumpBackground). `writable`
  // enables the writable-snapshot design extension (§5.6).
  StatusOr<uint32_t> BeginActivation(uint32_t snap_id, RateLimit limit, uint64_t issue_ns,
                                     bool writable = false);
  bool ActivationDone(uint32_t view_id) const;
  // Runs an activation to completion with no pacing; reports the finish time.
  StatusOr<uint32_t> ActivateBlocking(uint32_t snap_id, uint64_t issue_ns, bool writable,
                                      uint64_t* finish_ns);
  Status Deactivate(uint32_t view_id, uint64_t issue_ns);
  std::vector<uint32_t> ActiveViewIds() const;

  // --- View I/O (activated snapshots; kPrimaryView aliases Read/Write) ---

  StatusOr<IoResult> ReadView(uint32_t view_id, uint64_t lba, uint64_t issue_ns,
                              std::vector<uint8_t>* data_out);
  StatusOr<IoResult> WriteView(uint32_t view_id, uint64_t lba, std::span<const uint8_t> data,
                               uint64_t issue_ns);
  // Vectored forms; same contract as WriteV/ReadV.
  StatusOr<std::vector<IoResult>> ReadViewV(uint32_t view_id, std::span<const uint64_t> lbas,
                                            uint64_t issue_ns,
                                            std::vector<std::vector<uint8_t>>* data_out);
  StatusOr<std::vector<IoResult>> WriteViewV(uint32_t view_id,
                                             std::span<const WriteRequest> requests,
                                             uint64_t issue_ns);

  // --- Background machinery ---

  // Advances due background work (activation bursts; idle cleaning) up to `now_ns`.
  void PumpBackground(uint64_t now_ns);

  // Forces a full cleaning pass over one victim segment (Table 4 experiments). Returns
  // the device finish time, or issue_ns when no victim exists.
  StatusOr<uint64_t> ForceCleanSegment(uint64_t issue_ns);

  // Runs one complete patrol-scrubber sweep over the device with no pacing: every
  // closed segment is CRC-verified page by page, decayed live pages are rewritten, and
  // segments holding corrupt pages are evacuated and erased. Works whether or not
  // config.patrol_enabled — this is the offline-repair entry point (iosnap_fsck
  // --repair) and the test hook. Returns the device finish time.
  StatusOr<uint64_t> ScrubAllBlocking(uint64_t issue_ns);

  // True while the FTL is in degraded read-only mode (see FtlConfig degraded_* knobs):
  // writes and trims fail fast with kResourceExhausted; reads, snapshot activation,
  // and snapshot deletion (the space-reclaim path) keep working.
  bool degraded() const { return degraded_; }

  // --- Shutdown / restart ---

  // Writes a checkpoint so the next Open is instant. Views are discarded (activations do
  // not survive restarts). The FTL must not be used afterwards except for ReleaseDevice.
  Status CheckpointAndClose(uint64_t issue_ns);

  // Detaches the "media" — used by crash tests: drop the Ftl without checkpointing and
  // Open a new one over the returned device.
  std::unique_ptr<NandDevice> ReleaseDevice();

  // --- Introspection for experiments ---

  uint32_t active_epoch() const { return active_epoch_; }
  // Forward-map memory of a view (Table 3).
  StatusOr<uint64_t> ViewMapMemoryBytes(uint32_t view_id) const;
  StatusOr<uint64_t> ViewMapEntryCount(uint32_t view_id) const;
  // All (lba, paddr) pairs of a ready view in LBA order (snapshot diffing, archival).
  StatusOr<std::vector<std::pair<uint64_t, uint64_t>>> ViewMapEntries(
      uint32_t view_id) const;
  // Epochs whose validity participates in cleaning right now.
  std::vector<uint32_t> LiveEpochs() const;

  // Space accounting for one snapshot: how many physical pages it references in total,
  // and how many it *retains exclusively* (valid in it and in no other live epoch —
  // i.e. the space the cleaner would reclaim if this snapshot were deleted).
  struct SnapshotSpace {
    uint64_t referenced_pages = 0;
    uint64_t exclusive_pages = 0;
  };
  StatusOr<SnapshotSpace> SnapshotSpaceReport(uint32_t snap_id) const;

 private:
  friend class SegmentCleaner;
  friend class ActivationTask;
  friend class PatrolScrubber;

  // Erase every forward-map entry (in any view) still pointing at paddr. Used when a
  // page is dropped as unreadable: a corrupt stored header cannot be trusted to name
  // the right lba, so the maps are swept by physical address instead — otherwise a
  // dangling entry survives the segment erase and a later read of the real lba hits
  // an unprogrammed page.
  void DetachPaddrFromMaps(uint64_t paddr);

  struct View {
    uint32_t view_id = 0;
    uint32_t snap_id = 0;  // 0 for the primary view.
    uint32_t epoch = 0;
    bool writable = false;
    bool ready = false;    // False while activation is still running.
    // LBA-sharded for the primary view (config.map_shards); snapshot views keep the
    // default single-shard form.
    ShardedMap map;
  };

  Ftl(const FtlConfig& config, std::unique_ptr<NandDevice> device);

  // Common path for primary and view writes.
  StatusOr<IoResult> WriteInternal(View* view, uint64_t lba, std::span<const uint8_t> data,
                                   uint64_t issue_ns);
  StatusOr<IoResult> ReadInternal(const View& view, uint64_t lba, uint64_t issue_ns,
                                  std::vector<uint8_t>* data_out);
  // `issue_at` (empty, or one non-decreasing time per request) gives each request its
  // own issue time; empty means "all at issue_ns".
  StatusOr<std::vector<IoResult>> WriteVInternal(View* view,
                                                 std::span<const WriteRequest> requests,
                                                 uint64_t issue_ns,
                                                 std::span<const uint64_t> issue_at = {});
  StatusOr<std::vector<IoResult>> ReadVInternal(const View& view,
                                                std::span<const uint64_t> lbas,
                                                uint64_t issue_ns,
                                                std::vector<std::vector<uint8_t>>* data_out,
                                                std::span<const uint64_t> issue_at = {});

  // Ensures the active head can append, running synchronous emergency cleaning if the
  // free pool is exhausted. Returns the device-time horizon the caller must wait behind.
  Status EnsureAppendSpace(uint64_t issue_ns);

  // Write-path GC pacing (§5.7): lets the cleaner copy a budgeted number of pages.
  void PaceCleanerOnWrite(uint64_t now_ns);

  // Re-evaluates the degraded-mode state machine against the free pool and the
  // retired-segment count. Called at write/trim admission and from PumpBackground;
  // transitions emit kDegradedEnter/kDegradedExit trace events and bump the
  // ftl.degraded_* counters. No-op when both floors are 0.
  void UpdateDegradedState(uint64_t now_ns);

  // Shared write/trim admission gate: kResourceExhausted while degraded.
  Status CheckWritable(uint64_t issue_ns);

  // Rebuilds the unreadable page at `old_paddr` from its XOR parity stripe
  // (src/nand/parity.h): reads the stripe's parity page and every surviving member,
  // XORs out the missing member's image, verifies the reconstruction against the CRC
  // the device originally stamped, re-appends it through the GC head preserving its
  // (lba, epoch, seq) identity, and repairs validity + every view map that still
  // pointed at the dead page. Returns the rebuilt page's append result (its payload in
  // `data_out` if non-null); fails with kDataLoss when the stripe cannot help —
  // parity off, a second fault among the members, a poisoned (0-member) parity page,
  // or a CRC mismatch on the reconstruction. Bumps pages_rebuilt /
  // pages_rebuild_failed and emits kPageRebuilt / kRebuildFailed accordingly; on
  // failure the caller still owns the expunge-and-account path.
  StatusOr<AppendResult> RebuildPage(uint64_t old_paddr, uint64_t issue_ns,
                                     std::vector<uint8_t>* data_out);

  // Appends a snapshot note record. `aux_epoch` rides in the header's lba field: the
  // successor/view epoch id for create/activate notes (explicit, so recovery does not
  // depend on notes that a later tree summary consolidated away).
  StatusOr<AppendResult> AppendNote(RecordType type, uint32_t snap_id, uint32_t epoch,
                                    uint32_t aux_epoch, uint64_t issue_ns);

  // Writes a consolidated snapshot-tree summary through `head` (§7-style checkpointed
  // metadata). All snapshot notes and summaries with lower sequence numbers become
  // droppable. Returns the device finish time.
  StatusOr<uint64_t> AppendTreeSummary(int head, uint64_t issue_ns);

  View* FindView(uint32_t view_id);
  const View* FindView(uint32_t view_id) const;

  uint64_t NextSeq() { return seq_counter_++; }

  FtlConfig config_;
  std::unique_ptr<NandDevice> device_;
  // Host-side workers for parallel per-shard map updates (config.map_update_threads).
  // Null when updates run inline; either way simulator state is bit-identical.
  std::unique_ptr<WorkerPool> map_pool_;
  LogManager log_;
  ValidityMap validity_;
  SnapshotTree tree_;
  FtlStats stats_;

  uint64_t lba_count_;
  uint64_t seq_counter_ = 0;
  uint32_t active_epoch_ = kRootEpoch;
  uint32_t next_view_id_ = 1;
  // Bumped whenever the live-epoch set changes (snapshot create/delete, activation
  // begin/end, rollback). The cleaner keys its per-victim caches (live-epoch list,
  // lineage-filtered view lists) off this so they refresh exactly when stale.
  uint64_t epoch_set_version_ = 0;
  std::map<uint32_t, View> views_;

  std::unique_ptr<SegmentCleaner> cleaner_;
  bool gc_cycle_active_ = false;
  double gc_budget_accum_ = 0.0;
  RateLimiter gc_idle_limiter_;

  std::unique_ptr<PatrolScrubber> patrol_;
  RateLimiter patrol_limiter_;
  // Degraded read-only mode (media reliability). Entered/left by UpdateDegradedState;
  // always false when both degraded_* floors are 0 (the default), so the gate in the
  // write path is a single always-false branch on default configs.
  bool degraded_ = false;

  std::vector<std::unique_ptr<ActivationTask>> activations_;
  // Relocation journal: (lba, new_paddr) for every data page the cleaner copy-forwards
  // while an activation scan is in flight. Activations apply it when building their map,
  // so blocks that emergency cleaning moved out from under the scan are still found.
  // Cleared whenever no activation is pending.
  std::vector<std::pair<uint64_t, uint64_t>> gc_relocations_;
  bool closed_ = false;
  TraceRecorder* trace_ = nullptr;
  LatencyAttributor* attributor_ = nullptr;

  // One call per completed user data op, at the IoResult construction site. Tick()
  // runs before Spans() so a stride-sampled attributor skips span assembly too.
  void RecordLatency(LatencyOpKind kind, uint64_t lba, const IoResult& result) {
    if (attributor_ != nullptr && attributor_->Tick()) {
      attributor_->Record(kind, lba, result.op.issue_ns, result.CompletionNs(),
                          result.Spans());
    }
  }

  void MaybeClearRelocations() {
    if (activations_.empty()) {
      gc_relocations_.clear();
    }
  }
};

}  // namespace iosnap

#endif  // SRC_CORE_FTL_H_
