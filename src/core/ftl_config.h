// Configuration of the ioSnap FTL. One struct covers both the "vanilla" baseline
// (snapshots_enabled = false: the Table 2 / Fig 10a comparison device) and ioSnap proper,
// plus the knobs for the paper's rate-limiting experiments and this repo's ablations.

#ifndef SRC_CORE_FTL_CONFIG_H_
#define SRC_CORE_FTL_CONFIG_H_

#include <cstdint>

#include "src/nand/nand_config.h"

namespace iosnap {

// Victim-selection policy for the segment cleaner.
enum class CleanerPolicy : uint8_t {
  kGreedy,        // Fewest valid pages first.
  kCostBenefit,   // Classic LFS benefit/cost: (1 - u) * age / (1 + u).
  kEpochColocate, // Greedy, tie-broken to prefer epoch-pure segments; copy-forward
                  // segregates epochs onto per-class heads (§5.4.2 extension, ablation A1).
};

struct FtlConfig {
  NandConfig nand;

  // --- Capacity ---
  // Fraction of physical pages withheld from the LBA space (log-structured headroom).
  double overprovision = 0.25;

  // --- Snapshots ---
  bool snapshots_enabled = true;
  // Pages covered per validity chunk; chunk byte size is chunk_bits / 8 (ablation A2).
  uint64_t validity_chunk_bits = 8192;
  // Reproduce the paper's rejected full-bitmap-copy-per-snapshot design (ablation A4).
  bool naive_validity_copy = false;

  // --- Segment cleaning ---
  uint64_t gc_reserve_segments = 2;    // Segments only the cleaner may consume.
  uint64_t gc_low_free_segments = 6;   // Background cleaning starts below this.
  uint64_t gc_high_free_segments = 12; // ... and stops at or above this.
  CleanerPolicy cleaner_policy = CleanerPolicy::kGreedy;
  // Fig 10 knob: pace the cleaner by the *merged* validity estimate (snapshot-aware) vs
  // the active epoch's estimate only (the vanilla rate policy, which under-budgets when
  // snapshotted cold data must move and causes foreground stalls).
  bool snapshot_aware_gc_rate = true;
  // Max pages copy-forwarded per pacing burst.
  uint64_t gc_pages_per_step = 16;
  // Relocate live pages via on-die copyback (NandDevice::CopybackPage) instead of a
  // host read + append: the data never crosses a transfer bus when source and
  // destination share a channel, so cleaning stops competing with foreground I/O for
  // bus time. The cleaner also reorders a victim's live pages to chase the GC head's
  // next-append channel (maximizing the on-die hit rate). Host-side CRC verification
  // is replaced by the device's scrub-on-copyback (NandConfig::copyback_scrub).
  // Default off: the classic read+append path, bit-identical to prior behavior.
  bool gc_copyback = false;
  // Static wear leveling: when the erase-count gap between the most-worn segment and a
  // cleanable cold segment reaches this threshold, the cleaner picks the cold segment
  // regardless of its valid count, recycling it into the rotation. 0 disables.
  uint64_t wear_leveling_threshold = 0;

  // --- Forward map sharding (multi-queue submission; see src/ftl/sharded_map.h) ---
  // LBA-range shards in the primary view's forward map. 1 = a single tree (the legacy
  // layout). Sharding never changes I/O results or timing — only which tree holds a
  // key and the per-shard memory split reported for Table 3.
  uint32_t map_shards = 4;
  // Host worker threads for parallel per-shard batch updates. 0 (default) applies
  // shard sub-batches inline on the simulation thread; any value yields bit-identical
  // simulator state (the pool is host-side only).
  uint32_t map_update_threads = 0;

  // --- Error handling ---
  // Total attempts per page read before a transient failure (kUnavailable) is surfaced
  // to the caller. Permanent errors (CRC mismatch) are never retried.
  uint32_t read_retry_limit = 3;

  // --- Parity & rebuild (src/nand/parity.h) ---
  // Intra-segment XOR stripe width: the log writes one parity page after every
  // `parity_stripe` appended pages (and at the segment's final page), and every path
  // that hits an uncorrectable page — foreground reads, cleaner copy-forward, patrol,
  // fsck --repair — XOR-rebuilds it from the surviving stripe members instead of
  // dropping it. Costs 1/(parity_stripe+1) of log bandwidth and capacity. Choose a
  // value such that (parity_stripe + 1) divides nand.pages_per_segment. 0 disables:
  // no parity pages are written and every code path is bit-identical to prior
  // behavior.
  uint64_t parity_stripe = 0;

  // --- Patrol scrubbing (media reliability; src/core/patrol_scrubber.h) ---
  // Background sweep over closed segments that CRC-verifies live pages, preemptively
  // rewrites pages whose wear exposure crossed the refresh thresholds (or that needed
  // a read retry), drops unreadable live pages, and evacuates segments holding
  // corrupt pages so the damage is physically erased. Default off: bit-identical.
  bool patrol_enabled = false;
  // Pages inspected per paced patrol burst.
  uint64_t patrol_pages_per_step = 8;
  // Mandatory sleep between patrol bursts (the patrol analogue of the cleaner's idle
  // limiter; keeps patrol interference off the foreground latency tail).
  uint64_t patrol_sleep_ms = 10;
  // Refresh a live page once its segment has absorbed this many reads since erase.
  // 0 disables the read-count trigger.
  uint64_t patrol_refresh_reads = 0;
  // Refresh a live page once it is older than this (virtual-clock ms since program).
  // 0 disables the age trigger.
  uint64_t patrol_refresh_age_ms = 0;

  // --- Degraded read-only mode ---
  // When free-pool headroom sinks below degraded_free_floor segments, or
  // log.segments_retired reaches degraded_retired_floor, the FTL enters a degraded
  // read-only mode: writes and trims fail fast with kResourceExhausted while reads,
  // snapshot activation, and snapshot deletion (the space-reclaim path) keep working.
  // It exits once free headroom recovers to degraded_exit_free (>= the floor;
  // 0 = no hysteresis, exit at the floor itself) and the retired-count condition is
  // clear. Both floors default to 0 = disabled, preserving bit-identity.
  uint64_t degraded_free_floor = 0;
  uint64_t degraded_retired_floor = 0;
  uint64_t degraded_exit_free = 0;

  // --- Activation ---
  // Skip segments whose epoch summary proves they hold no lineage data (§7 future work:
  // precomputed metadata; ablation A3).
  bool activation_segment_index = false;

  // --- Host CPU cost model (charged on top of device time) ---
  uint64_t host_map_lookup_ns = 300;
  uint64_t host_map_update_ns = 400;
  uint64_t host_bitmap_update_ns = 100;
  uint64_t host_cow_ns_per_byte = 60;      // Validity-chunk CoW copy (Fig 7 spikes).
  uint64_t host_merge_ns_per_chunk = 500;  // Cleaner validity merge (Table 4).
  uint64_t host_note_ns = 2000;            // Snapshot-note bookkeeping.
  uint64_t host_build_ns_per_entry = 150;  // Activation map sort + bulk-load, per entry.

  uint64_t LbaCount() const {
    return static_cast<uint64_t>(static_cast<double>(nand.TotalPages()) *
                                 (1.0 - overprovision));
  }
};

}  // namespace iosnap

#endif  // SRC_CORE_FTL_CONFIG_H_
