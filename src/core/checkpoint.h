// Clean-shutdown checkpoint format (§5.5: "the device state is fully checkpointed only on
// a clean shutdown"). The checkpoint serializes everything needed to resume without a log
// scan: sequence/epoch counters, the snapshot tree, the primary forward map, and the
// per-live-epoch validity sets. It is written as a run of kCheckpoint pages at the log
// head; a checkpoint is honoured on open only if it is complete and nothing was written
// after it (otherwise full recovery runs).

#ifndef SRC_CORE_CHECKPOINT_H_
#define SRC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/snapshot_tree.h"

namespace iosnap {

struct CheckpointState {
  uint64_t seq_counter = 0;
  uint32_t active_epoch = kRootEpoch;
  SnapshotTree tree;
  // Primary forward map, key-sorted.
  std::vector<std::pair<uint64_t, uint64_t>> primary_map;
  // Live epoch -> sorted valid physical pages.
  std::map<uint32_t, std::vector<uint64_t>> validity;
};

std::vector<uint8_t> SerializeCheckpoint(const CheckpointState& state);

StatusOr<CheckpointState> ParseCheckpoint(const std::vector<uint8_t>& bytes);

}  // namespace iosnap

#endif  // SRC_CORE_CHECKPOINT_H_
