#include "src/core/snapshot_tree.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/serde.h"

namespace iosnap {

SnapshotTree::SnapshotTree() { parents_.emplace(kRootEpoch, kNoEpoch); }

uint32_t SnapshotTree::NewEpoch(uint32_t parent) {
  IOSNAP_CHECK(EpochExists(parent));
  const uint32_t epoch = next_epoch_++;
  parents_.emplace(epoch, parent);
  return epoch;
}

uint32_t SnapshotTree::ParentOf(uint32_t epoch) const {
  auto it = parents_.find(epoch);
  IOSNAP_CHECK(it != parents_.end());
  return it->second;
}

std::vector<uint32_t> SnapshotTree::Lineage(uint32_t epoch) const {
  IOSNAP_CHECK(EpochExists(epoch));
  std::vector<uint32_t> out;
  for (uint32_t e = epoch; e != kNoEpoch; e = parents_.at(e)) {
    out.push_back(e);
  }
  return out;
}

bool SnapshotTree::InLineage(uint32_t epoch, uint32_t ancestor) const {
  IOSNAP_CHECK(EpochExists(epoch));
  for (uint32_t e = epoch; e != kNoEpoch; e = parents_.at(e)) {
    if (e == ancestor) {
      return true;
    }
  }
  return false;
}

std::vector<uint32_t> SnapshotTree::ChildrenOf(uint32_t epoch) const {
  std::vector<uint32_t> out;
  for (const auto& [e, parent] : parents_) {
    if (parent == epoch) {
      out.push_back(e);
    }
  }
  return out;  // std::map iteration: ascending ids == creation order.
}

uint32_t SnapshotTree::AddSnapshot(uint32_t epoch, uint64_t create_seq, std::string name) {
  IOSNAP_CHECK(EpochExists(epoch));
  IOSNAP_CHECK(!snapshot_by_epoch_.contains(epoch));
  SnapshotInfo info;
  info.snap_id = next_snap_id_++;
  info.epoch = epoch;
  info.create_seq = create_seq;
  info.name = std::move(name);
  snapshot_by_epoch_[epoch] = info.snap_id;
  const uint32_t id = info.snap_id;
  snapshots_.emplace(id, std::move(info));
  return id;
}

Status SnapshotTree::MarkDeleted(uint32_t snap_id) {
  auto it = snapshots_.find(snap_id);
  if (it == snapshots_.end()) {
    return NotFound("snapshot " + std::to_string(snap_id) + " does not exist");
  }
  if (it->second.deleted) {
    return FailedPrecondition("snapshot " + std::to_string(snap_id) + " already deleted");
  }
  it->second.deleted = true;
  return OkStatus();
}

bool SnapshotTree::Exists(uint32_t snap_id) const { return snapshots_.contains(snap_id); }

StatusOr<SnapshotInfo> SnapshotTree::Get(uint32_t snap_id) const {
  auto it = snapshots_.find(snap_id);
  if (it == snapshots_.end()) {
    return NotFound("snapshot " + std::to_string(snap_id) + " does not exist");
  }
  return it->second;
}

std::vector<uint32_t> SnapshotTree::LiveSnapshotIds() const {
  std::vector<uint32_t> out;
  for (const auto& [id, info] : snapshots_) {
    if (!info.deleted) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<uint32_t> SnapshotTree::LiveSnapshotEpochs() const {
  std::vector<uint32_t> out;
  for (const auto& [id, info] : snapshots_) {
    if (!info.deleted) {
      out.push_back(info.epoch);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int SnapshotTree::SnapshotDepth(uint32_t snap_id) const {
  auto it = snapshots_.find(snap_id);
  IOSNAP_CHECK(it != snapshots_.end());
  int depth = 0;
  for (uint32_t e = ParentOf(it->second.epoch); e != kNoEpoch; e = parents_.at(e)) {
    auto snap_it = snapshot_by_epoch_.find(e);
    if (snap_it != snapshot_by_epoch_.end()) {
      auto info_it = snapshots_.find(snap_it->second);
      if (info_it != snapshots_.end() && !info_it->second.deleted) {
        ++depth;
      }
    }
  }
  return depth;
}

void SnapshotTree::RestoreEpoch(uint32_t epoch, uint32_t parent) {
  IOSNAP_CHECK(parent == kNoEpoch || EpochExists(parent));
  IOSNAP_CHECK(!parents_.contains(epoch));
  parents_.emplace(epoch, parent);
  next_epoch_ = std::max(next_epoch_, epoch + 1);
}

void SnapshotTree::RestoreSnapshot(const SnapshotInfo& info) {
  IOSNAP_CHECK(EpochExists(info.epoch));
  IOSNAP_CHECK(!snapshots_.contains(info.snap_id));
  snapshots_.emplace(info.snap_id, info);
  snapshot_by_epoch_[info.epoch] = info.snap_id;
  next_snap_id_ = std::max(next_snap_id_, info.snap_id + 1);
}

void SnapshotTree::SerializeTo(std::vector<uint8_t>* out) const {
  PutU32(out, static_cast<uint32_t>(parents_.size()));
  for (const auto& [epoch, parent] : parents_) {
    PutU32(out, epoch);
    PutU32(out, parent);
  }
  PutU32(out, next_epoch_);
  PutU32(out, static_cast<uint32_t>(snapshots_.size()));
  for (const auto& [id, info] : snapshots_) {
    PutU32(out, info.snap_id);
    PutU32(out, info.epoch);
    PutU64(out, info.create_seq);
    PutU8(out, info.deleted ? 1 : 0);
    PutString(out, info.name);
  }
  PutU32(out, next_snap_id_);
}

StatusOr<SnapshotTree> SnapshotTree::Deserialize(const std::vector<uint8_t>& bytes,
                                                 size_t* offset) {
  SnapshotTree tree;
  tree.parents_.clear();

  uint32_t epoch_count = 0;
  RETURN_IF_ERROR(GetU32(bytes, offset, &epoch_count));
  if (epoch_count == 0) {
    return DataLoss("snapshot tree: no epochs");
  }
  for (uint32_t i = 0; i < epoch_count; ++i) {
    uint32_t epoch = 0;
    uint32_t parent = 0;
    RETURN_IF_ERROR(GetU32(bytes, offset, &epoch));
    RETURN_IF_ERROR(GetU32(bytes, offset, &parent));
    tree.parents_.emplace(epoch, parent);
  }
  if (!tree.parents_.contains(kRootEpoch)) {
    return DataLoss("snapshot tree: missing root epoch");
  }
  RETURN_IF_ERROR(GetU32(bytes, offset, &tree.next_epoch_));

  uint32_t snap_count = 0;
  RETURN_IF_ERROR(GetU32(bytes, offset, &snap_count));
  for (uint32_t i = 0; i < snap_count; ++i) {
    SnapshotInfo info;
    uint8_t deleted = 0;
    RETURN_IF_ERROR(GetU32(bytes, offset, &info.snap_id));
    RETURN_IF_ERROR(GetU32(bytes, offset, &info.epoch));
    RETURN_IF_ERROR(GetU64(bytes, offset, &info.create_seq));
    RETURN_IF_ERROR(GetU8(bytes, offset, &deleted));
    RETURN_IF_ERROR(GetString(bytes, offset, &info.name));
    info.deleted = deleted != 0;
    if (!tree.parents_.contains(info.epoch)) {
      return DataLoss("snapshot tree: snapshot references unknown epoch");
    }
    tree.snapshots_.emplace(info.snap_id, info);
    tree.snapshot_by_epoch_[info.epoch] = info.snap_id;
  }
  RETURN_IF_ERROR(GetU32(bytes, offset, &tree.next_snap_id_));
  return tree;
}

}  // namespace iosnap
