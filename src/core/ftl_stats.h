// Cumulative counters exported by the FTL; benchmarks derive the paper's tables from
// these plus the NAND device's own NandStats.

#ifndef SRC_CORE_FTL_STATS_H_
#define SRC_CORE_FTL_STATS_H_

#include <cstdint>

namespace iosnap {

struct FtlStats {
  // Foreground I/O.
  uint64_t user_writes = 0;
  uint64_t user_reads = 0;
  uint64_t user_trims = 0;
  uint64_t user_bytes_written = 0;
  uint64_t user_bytes_read = 0;

  // Snapshot operations.
  uint64_t snapshots_created = 0;
  uint64_t snapshots_deleted = 0;
  uint64_t activations = 0;
  uint64_t deactivations = 0;
  uint64_t rollbacks = 0;

  // Segment cleaning.
  uint64_t gc_segments_cleaned = 0;
  uint64_t gc_pages_copied = 0;
  uint64_t gc_notes_copied = 0;        // Trim notes copied forward.
  uint64_t gc_notes_dropped = 0;       // Notes superseded by a tree summary and dropped.
  uint64_t gc_summaries_written = 0;   // Consolidated tree-summary records written.
  uint64_t gc_inline_stalls = 0;       // Writes that had to clean synchronously.
  uint64_t gc_wear_level_cleans = 0;   // Victims chosen by static wear leveling.
  uint64_t gc_victim_selections = 0;   // SelectVictim passes (utilization-counter scans).
  uint64_t gc_merge_host_ns = 0;       // Host time spent merging validity maps (Table 4).
                                       // With incremental utilization counters this is
                                       // the residual plane-rebuild/range-recount work,
                                       // not full per-candidate merges.
  uint64_t gc_total_host_ns = 0;       // All cleaner host time.
  uint64_t gc_device_busy_ns = 0;      // Device time consumed by cleaning traffic.

  // Validity CoW (Figure 7).
  uint64_t validity_cow_events = 0;    // Writes that triggered at least one chunk copy.
  uint64_t validity_cow_bytes = 0;

  // Activation.
  uint64_t activation_segments_scanned = 0;
  uint64_t activation_segments_skipped = 0;  // Via the segment index (ablation A3).
  uint64_t activation_entries = 0;

  // Write amplification numerator: all pages programmed including GC and notes; the
  // denominator is user_writes.
  uint64_t total_pages_programmed = 0;

  // Degraded-mode outcomes (zero on a healthy device).
  uint64_t user_read_errors = 0;  // User reads that failed after bounded retry / CRC check.
  uint64_t gc_pages_lost = 0;     // Valid pages the cleaner dropped as unreadable (kDataLoss).

  // Unified data-loss taxonomy. Every uncorrectable page any subsystem encounters
  // (foreground read, cleaner copy-forward, patrol sweep) lands in exactly one bucket:
  //   rebuilt       — XOR-reconstructed from its parity stripe and re-appended; no loss.
  //   lost_forever  — still referenced by some live epoch and unrecoverable (parity
  //                   off, double fault in the stripe, or a poisoned accumulator).
  //   superseded    — unreadable but no live epoch referenced it; expunging it loses
  //                   nothing.
  // The per-subsystem counters above/below (gc_pages_lost, patrol_pages_dropped) keep
  // their historical meaning — they attribute *where* the drop happened — while this
  // family answers *what the damage was*.
  uint64_t pages_rebuilt = 0;         // Stripe rebuilds that re-verified and re-appended.
  uint64_t pages_rebuild_failed = 0;  // Rebuild attempts that failed (double fault etc.).
  uint64_t pages_lost_forever = 0;    // Live data expunged with no surviving copy.
  uint64_t pages_superseded = 0;      // Dead/garbage pages expunged; nothing was lost.

  // Patrol scrubbing (zero unless FtlConfig::patrol_enabled).
  uint64_t patrol_sweeps = 0;              // Full passes over the closed segments.
  uint64_t patrol_pages_scanned = 0;       // Programmed pages inspected.
  uint64_t patrol_pages_rewritten = 0;     // Live pages refreshed to a new location.
  uint64_t patrol_pages_dropped = 0;       // Unreadable live pages expunged (data lost).
  uint64_t patrol_segments_evacuated = 0;  // Segments force-cleaned to erase corruption.

  // Degraded read-only mode (zero unless a degraded_* floor is configured).
  uint64_t degraded_entries = 0;           // Transitions into read-only mode.
  uint64_t degraded_exits = 0;             // Transitions back to writable.
  uint64_t degraded_writes_rejected = 0;   // Writes/trims refused with kResourceExhausted.
};

}  // namespace iosnap

#endif  // SRC_CORE_FTL_STATS_H_
