#include "src/core/activation.h"

#include <algorithm>
#include <map>

#include "src/common/logging.h"
#include "src/core/ftl.h"

namespace iosnap {

ActivationTask::ActivationTask(Ftl* ftl, uint32_t view_id, uint32_t filter_epoch,
                               RateLimit limit, uint64_t start_ns)
    : ftl_(ftl), view_id_(view_id), filter_epoch_(filter_epoch), limiter_(limit) {
  IOSNAP_CHECK(ftl != nullptr);
  limiter_.SetTraceRecorder(ftl_->trace_);
  // First burst may not start before the activate note hit the log.
  limiter_.OnBurstComplete(start_ns > limit.sleep_ns ? start_ns - limit.sleep_ns : 0);
  lineage_ = ftl_->tree_.Lineage(filter_epoch_);
  // The frozen bitmap already knows how many entries the scan will collect (one per
  // valid page); size the buffer once instead of growing it across segments.
  uint64_t expected = 0;
  for (uint64_t r = 0; r < ftl_->validity_.NumRanges(); ++r) {
    expected += ftl_->validity_.EpochValidCount(filter_epoch_, r);
  }
  entries_.reserve(expected);
}

StatusOr<uint64_t> ActivationTask::ScanOneSegment(uint64_t now_ns) {
  const uint64_t seg = next_segment_;
  ++next_segment_;

  const SegmentInfo& info = ftl_->log_.segment_info(seg);
  if (info.state == SegmentState::kFree) {
    return now_ns;  // Nothing programmed.
  }

  if (ftl_->config_.activation_segment_index) {
    // Extension (ablation A3): the per-segment epoch summary proves some segments hold no
    // data from this snapshot's lineage; they need not be read at all.
    bool may_hold_lineage_data = false;
    for (uint32_t epoch : lineage_) {
      if (info.epoch_pages.contains(epoch)) {
        may_hold_lineage_data = true;
        break;
      }
    }
    if (!may_hold_lineage_data) {
      ++ftl_->stats_.activation_segments_skipped;
      return now_ns;
    }
  }

  std::vector<std::pair<uint64_t, PageHeader>> headers;
  // Activation scans are background device traffic for latency attribution.
  NandDevice::BackgroundScope bg(ftl_->device_.get());
  ASSIGN_OR_RETURN(NandOp op, ftl_->device_->ScanSegmentHeaders(seg, now_ns, &headers));
  ++ftl_->stats_.activation_segments_scanned;
  // The scan walks the segment in paddr order, so a chunk-caching cursor resolves the
  // filter epoch's chunk once per chunk instead of once per page. No validity mutation
  // can interleave within this scan, so the cursor's cached chunk stays valid.
  ValidityMap::EpochReader reader(ftl_->validity_, filter_epoch_);
  for (const auto& [paddr, header] : headers) {
    if (header.type != RecordType::kData) {
      continue;
    }
    // The snapshot's frozen validity bitmap is the exact membership test (§5.6): one
    // valid physical page per LBA, wherever the cleaner may have moved it.
    if (reader.Test(paddr)) {
      entries_.emplace_back(header.lba, paddr);
    }
  }
  return op.finish_ns;
}

uint64_t ActivationTask::BuildMap(uint64_t now_ns) {
  // Emergency cleaning may have relocated blocks while the scan was in flight. The
  // snapshot's frozen validity bitmap only ever changes through such moves, so it is the
  // authority: drop collected entries whose page is no longer the valid copy, and apply
  // the cleaner's relocation journal (which covers moves into already-scanned segments).
  std::erase_if(entries_, [this](const std::pair<uint64_t, uint64_t>& e) {
    return !ftl_->validity_.Test(filter_epoch_, e.second);
  });
  if (!ftl_->gc_relocations_.empty()) {
    std::map<uint64_t, uint64_t> by_lba(entries_.begin(), entries_.end());
    for (const auto& [lba, new_paddr] : ftl_->gc_relocations_) {
      if (ftl_->validity_.Test(filter_epoch_, new_paddr)) {
        by_lba[lba] = new_paddr;
      }
    }
    entries_.assign(by_lba.begin(), by_lba.end());
  }

  std::sort(entries_.begin(), entries_.end());
  for (size_t i = 1; i < entries_.size(); ++i) {
    IOSNAP_CHECK(entries_[i].first != entries_[i - 1].first);
  }
  const uint64_t host_ns = entries_.size() * ftl_->config_.host_build_ns_per_entry;

  Ftl::View* view = ftl_->FindView(view_id_);
  IOSNAP_CHECK(view != nullptr);
  // Keeps the view's shard partitioning: single-shard for snapshot views, the
  // configured LBA sharding when rollback rebuilds the primary.
  view->map.BulkLoadReplace(entries_);
  view->ready = true;
  ftl_->stats_.activation_entries += entries_.size();
  entries_.clear();
  entries_.shrink_to_fit();
  return now_ns + host_ns;
}

StatusOr<uint64_t> ActivationTask::Burst(uint64_t now_ns) {
  const uint64_t quantum = limiter_.limit().work_quantum_ns;
  const uint64_t first_segment = next_segment_;
  uint64_t t = now_ns;
  while (phase_ == Phase::kScan && t - now_ns < quantum) {
    if (next_segment_ >= ftl_->config_.nand.num_segments) {
      phase_ = Phase::kBuild;
      break;
    }
    ASSIGN_OR_RETURN(t, ScanOneSegment(t));
  }
  if (ftl_->trace_ != nullptr && next_segment_ > first_segment) {
    ftl_->trace_->Record(TraceEventType::kActivationBurst, now_ns, t, view_id_,
                         first_segment, next_segment_ - first_segment);
  }
  if (phase_ == Phase::kBuild) {
    const uint64_t build_start = t;
    const size_t entry_count = entries_.size();
    t = BuildMap(t);
    phase_ = Phase::kDone;
    finish_ns_ = t;
    if (ftl_->trace_ != nullptr) {
      ftl_->trace_->Record(TraceEventType::kActivateEnd, build_start, t, view_id_,
                           entry_count);
    }
  }
  return t;
}

StatusOr<uint64_t> ActivationTask::Pump(uint64_t now_ns) {
  uint64_t t = now_ns;
  while (!done() && limiter_.CanRun(now_ns)) {
    const uint64_t burst_start = std::max(now_ns, limiter_.NextAllowedNs());
    ASSIGN_OR_RETURN(t, Burst(burst_start));
    limiter_.OnBurstComplete(t);
    if (limiter_.limit().sleep_ns == 0 && t <= now_ns) {
      // Zero-length burst with no pacing: avoid spinning.
      break;
    }
  }
  return t;
}

StatusOr<uint64_t> ActivationTask::RunToCompletion(uint64_t now_ns) {
  uint64_t t = now_ns;
  while (!done()) {
    ASSIGN_OR_RETURN(t, Burst(t));
  }
  return t;
}

}  // namespace iosnap
