// Background patrol scrubber (media reliability).
//
// Read disturb and retention loss (src/nand wear model) corrupt pages *in place*; once
// a page's stored CRC no longer verifies the data is gone — the only remaining options
// are dropping the references and erasing the media. The patrol scrubber's job is to
// act *before* that happens and to contain the damage when it does:
//
//   * It sweeps closed segments at a paced background rate, CRC-verifying every
//     programmed page (a timed OOB header read, charged like any other background op —
//     patrol interference shows up in foreground bg_wait_ns attribution exactly like
//     GC traffic does).
//   * Live pages whose read traffic or age crossed a refresh threshold — or that
//     needed a read retry to come back — are rewritten to a fresh segment via the GC
//     head. The copy resets both wear-model terms (new segment, new program timestamp)
//     while preserving the record's logical identity (lba, epoch, seq), exactly like a
//     cleaner copy-forward.
//   * Pages that already fail CRC are expunged: live references are dropped (validity
//     bits in every live epoch, forward-map entries) and the whole segment is evacuated
//     through SegmentCleaner::CleanSegmentBlocking so the corrupt page is physically
//     erased — the property iosnap_fsck's clean verdict depends on.
//
// Pacing mirrors the idle GC path: Ftl::PumpBackground calls Step under a RateLimiter
// built from FtlConfig::patrol_sleep_ms, budgeted at patrol_pages_per_step pages per
// burst. ScrubAllBlocking runs one full unpaced sweep (iosnap_fsck --repair).

#ifndef SRC_CORE_PATROL_SCRUBBER_H_
#define SRC_CORE_PATROL_SCRUBBER_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/nand/page_header.h"

namespace iosnap {

class Ftl;

class PatrolScrubber {
 public:
  explicit PatrolScrubber(Ftl* ftl);

  // Scans up to `max_pages` programmed pages starting at the persistent cursor,
  // rewriting / dropping / evacuating as described above. Segments that are not
  // closed (open heads, free, retired) are skipped without charge. Returns the device
  // finish time of the work performed (== now_ns when nothing was scanned). The cursor
  // survives across calls; completing a full pass over the device increments
  // FtlStats::patrol_sweeps.
  StatusOr<uint64_t> Step(uint64_t now_ns, uint64_t max_pages);

  // Resets the cursor and runs one complete sweep with no pacing. Returns the finish
  // time. This is the offline repair entry point (iosnap_fsck --repair).
  StatusOr<uint64_t> ScrubAllBlocking(uint64_t now_ns);

 private:
  // Scans one page; returns the device finish time. `paddr` must be programmed and its
  // segment closed. Sets *segment_dirty when the page failed CRC (the segment must be
  // evacuated at end of pass).
  StatusOr<uint64_t> ScanPage(uint64_t paddr, uint64_t now_ns, bool* segment_dirty);

  // Reads `paddr` in full and re-appends it through the GC head, then performs the
  // copy-forward fix-ups (validity MoveBit over live epochs, activation relocation
  // journal, view forward-map updates). Falls back to the drop path (setting
  // *segment_dirty) when the full read reveals the page is corrupt. Returns the
  // device finish time.
  StatusOr<uint64_t> RewritePage(uint64_t paddr, uint64_t now_ns, bool* segment_dirty);

  // Drops every reference to a CRC-failed page (validity bits in all live epochs plus
  // any view forward map still pointing at it) so nothing resolves to it once its
  // segment is evacuated. `stored` is the page's raw stored header (possibly itself
  // corrupt; map fix-ups are guarded by a paddr equality check).
  void DropCorruptPage(uint64_t paddr, const PageHeader& stored, uint64_t now_ns);

  // True when the live page at `paddr` crossed a refresh threshold (segment read
  // count / page age; a zero threshold disables that trigger).
  bool NeedsRefresh(uint64_t paddr, uint64_t now_ns) const;

  Ftl* ftl_;
  uint64_t cursor_segment_ = 0;
  uint64_t cursor_page_ = 0;
  // True when the current cursor segment was found to hold a CRC-failed page; forces
  // evacuation when the cursor leaves the segment.
  bool segment_dirty_ = false;
};

}  // namespace iosnap

#endif  // SRC_CORE_PATROL_SCRUBBER_H_
