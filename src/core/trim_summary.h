// Compact on-log representation of many trim notes (cleaner consolidation).
//
// Single-page trim notes would recycle through the cleaner forever 1:1 — an all-note
// segment is always the emptiest victim, and copying its notes forward recreates another
// all-note segment. Instead, the cleaner gathers a victim's still-needed trim records and
// rewrites them as dense kTrimSummary pages (~170 entries per 4K page), shrinking the
// trim-metadata footprint multiplicatively on every pass. Entries keep their original
// (epoch, seq) identity, so recovery replays them exactly like the original notes and
// de-duplicates by sequence number if both forms survive a crash.

#ifndef SRC_CORE_TRIM_SUMMARY_H_
#define SRC_CORE_TRIM_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace iosnap {

struct TrimEntry {
  uint64_t lba = 0;
  uint32_t count = 0;
  uint32_t epoch = 0;
  uint64_t seq = 0;

  bool operator==(const TrimEntry&) const = default;
};

// Serialized size of one entry.
inline constexpr uint64_t kTrimEntryBytes = 24;

// How many entries fit in one page payload.
inline uint64_t TrimEntriesPerPage(uint64_t page_bytes) {
  return (page_bytes - 4) / kTrimEntryBytes;
}

// Encodes up to TrimEntriesPerPage entries into one self-contained payload.
std::vector<uint8_t> EncodeTrimSummary(const std::vector<TrimEntry>& entries, size_t begin,
                                       size_t count);

// Decodes a payload produced by EncodeTrimSummary.
StatusOr<std::vector<TrimEntry>> DecodeTrimSummary(const std::vector<uint8_t>& payload);

}  // namespace iosnap

#endif  // SRC_CORE_TRIM_SUMMARY_H_
