// Snapshot activation (§5.6): building a snapshot's forward map on demand.
//
// ioSnap maintains no per-snapshot forward map online; activation reconstructs one by
// scanning the log's OOB headers and keeping exactly the pages set in the snapshot's
// frozen validity bitmap. Because the segment cleaner may have relocated blocks anywhere,
// every used segment must be scanned (the paper's constant scan phase). The collected
// (lba, paddr) pairs are sorted and bulk-loaded, which is why the activated tree is more
// compact than the organically grown active tree (Table 3).
//
// The scan is the background work that interferes with foreground I/O in Figure 9; it is
// paced by a RateLimiter with the paper's "x usec work / y msec sleep" knob.

#ifndef SRC_CORE_ACTIVATION_H_
#define SRC_CORE_ACTIVATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/ftl/rate_limiter.h"

namespace iosnap {

class Ftl;

class ActivationTask {
 public:
  // `view_id` must already exist in the Ftl (ready=false); `filter_epoch` is the
  // snapshot's frozen epoch whose validity selects pages.
  ActivationTask(Ftl* ftl, uint32_t view_id, uint32_t filter_epoch, RateLimit limit,
                 uint64_t start_ns);

  uint32_t view_id() const { return view_id_; }
  bool done() const { return phase_ == Phase::kDone; }
  uint64_t finish_ns() const { return finish_ns_; }

  const RateLimiter& limiter() const { return limiter_; }

  // Runs rate-limited bursts that are due at `now_ns`. Returns the device finish time of
  // the last burst (now_ns if none ran).
  StatusOr<uint64_t> Pump(uint64_t now_ns);

  // Ignores pacing and runs to completion; returns the finish time.
  StatusOr<uint64_t> RunToCompletion(uint64_t now_ns);

 private:
  enum class Phase { kScan, kBuild, kDone };

  // One burst of up to work_quantum_ns of device time. Returns its finish time.
  StatusOr<uint64_t> Burst(uint64_t now_ns);

  // Scans one segment (or skips it via the segment index). Returns device finish time.
  StatusOr<uint64_t> ScanOneSegment(uint64_t now_ns);

  // Sorts entries and bulk-loads the view's map; marks the view ready.
  uint64_t BuildMap(uint64_t now_ns);

  Ftl* ftl_;
  uint32_t view_id_;
  uint32_t filter_epoch_;
  RateLimiter limiter_;
  Phase phase_ = Phase::kScan;
  uint64_t next_segment_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> entries_;  // (lba, paddr)
  std::vector<uint32_t> lineage_;                       // Root path of filter_epoch_.
  uint64_t finish_ns_ = 0;
};

}  // namespace iosnap

#endif  // SRC_CORE_ACTIVATION_H_
