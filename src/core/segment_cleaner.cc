#include "src/core/segment_cleaner.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"
#include "src/core/ftl.h"
#include "src/obs/latency.h"

namespace iosnap {

namespace {
// Number of distinct copy-forward heads used by the epoch-colocation policy.
constexpr int kColocateHeads = 4;
}  // namespace

SegmentCleaner::SegmentCleaner(Ftl* ftl) : ftl_(ftl) { IOSNAP_CHECK(ftl != nullptr); }

int SegmentCleaner::HeadForEpoch(uint32_t epoch) const {
  if (ftl_->config_.cleaner_policy == CleanerPolicy::kEpochColocate) {
    return LogManager::kFirstDynamicHead + static_cast<int>(epoch % kColocateHeads);
  }
  return LogManager::kGcHead;
}

std::optional<uint64_t> SegmentCleaner::SelectVictim(uint64_t now_ns) {
  const std::vector<uint64_t> candidates = ftl_->log_.ClosedSegments();
  if (candidates.empty()) {
    return std::nullopt;
  }
  const uint64_t pages_per_segment = ftl_->config_.nand.pages_per_segment;
  ++ftl_->stats_.gc_victim_selections;

  // Utilization reads below are O(1) counter lookups; the delta still charges the
  // residual merge work (lazy range recounts after epoch drops) as host time.
  const uint64_t merge_visits_before = ftl_->validity_.stats().merge_chunk_visits;

  uint64_t newest_use_order = 0;
  for (uint64_t seg : candidates) {
    newest_use_order = std::max(newest_use_order, ftl_->log_.segment_info(seg).use_order);
  }

  // Static wear leveling: if some cleanable segment has fallen far behind the most-worn
  // one (it holds cold data and never gets erased), recycle it now — even when it is
  // fully valid and frees no space — so its low-wear cells re-enter rotation. Only done
  // with a healthy free pool: under space pressure a full-valid victim makes no headway.
  if (ftl_->config_.wear_leveling_threshold > 0 &&
      ftl_->log_.FreeSegmentCount() >= ftl_->config_.gc_low_free_segments) {
    const std::optional<uint64_t> coldest = WearLevelingCandidate();
    if (coldest.has_value()) {
      ++ftl_->stats_.gc_wear_level_cleans;
      return coldest;
    }
  }

  std::optional<uint64_t> best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (uint64_t seg : candidates) {
    // Counter ranges are segment-sized, so range index == segment index.
    const uint64_t valid = ftl_->validity_.MergedValidCount(seg);
    if (valid >= pages_per_segment) {
      continue;  // Nothing reclaimable here.
    }
    const SegmentInfo& info = ftl_->log_.segment_info(seg);
    double score = 0.0;
    switch (ftl_->config_.cleaner_policy) {
      case CleanerPolicy::kGreedy:
        score = -static_cast<double>(valid);
        break;
      case CleanerPolicy::kCostBenefit: {
        // Classic LFS benefit/cost with segment age proxied by how long ago the segment
        // was opened relative to the newest candidate.
        const double u = static_cast<double>(valid) / static_cast<double>(pages_per_segment);
        const double age =
            static_cast<double>(newest_use_order - info.use_order + 1);
        score = (1.0 - u) * age / (1.0 + u);
        break;
      }
      case CleanerPolicy::kEpochColocate:
        // Prefer epoch-pure segments, then fewest valid pages: cleaning a single-epoch
        // segment never intermixes snapshots (§5.4.2).
        score = -static_cast<double>(info.epoch_pages.size()) * 1e9 -
                static_cast<double>(valid);
        break;
    }
    if (score > best_score) {
      best_score = score;
      best = seg;
    }
  }

  const uint64_t merge_visits =
      ftl_->validity_.stats().merge_chunk_visits - merge_visits_before;
  const uint64_t merge_ns = merge_visits * ftl_->config_.host_merge_ns_per_chunk;
  ftl_->stats_.gc_merge_host_ns += merge_ns;
  ftl_->stats_.gc_total_host_ns += merge_ns;
  return best;
}

std::optional<uint64_t> SegmentCleaner::WearLevelingCandidate() const {
  const uint64_t max_erase = ftl_->device_->MaxEraseCount();
  std::optional<uint64_t> coldest;
  uint64_t coldest_erase = ~uint64_t{0};
  for (uint64_t seg : ftl_->log_.ClosedSegments()) {
    const uint64_t erase_count = ftl_->device_->EraseCount(seg);
    if (erase_count < coldest_erase) {
      coldest_erase = erase_count;
      coldest = seg;
    }
  }
  if (!coldest.has_value() ||
      max_erase - coldest_erase < ftl_->config_.wear_leveling_threshold) {
    return std::nullopt;
  }
  return coldest;
}

bool SegmentCleaner::WearImbalanced() const {
  return ftl_->config_.wear_leveling_threshold > 0 &&
         WearLevelingCandidate().has_value();
}

bool SegmentCleaner::StartVictim(uint64_t now_ns) {
  if (victim_.has_value()) {
    return true;
  }
  // Everything the victim scan touches on the device (header scan, tree-summary
  // append) is background traffic for latency attribution.
  NandDevice::BackgroundScope bg(ftl_->device_.get());
  const std::optional<uint64_t> seg = SelectVictim(now_ns);
  if (!seg.has_value()) {
    return false;
  }
  return BeginVictim(*seg, now_ns);
}

bool SegmentCleaner::StartVictimAt(uint64_t segment, uint64_t now_ns) {
  if (victim_.has_value()) {
    return victim_->segment == segment;
  }
  // Only closed segments are cleanable: open heads, free, and retired segments are
  // off-limits exactly as in SelectVictim's candidate set.
  if (ftl_->log_.segment_info(segment).state != SegmentState::kClosed) {
    return false;
  }
  NandDevice::BackgroundScope bg(ftl_->device_.get());
  return BeginVictim(segment, now_ns);
}

bool SegmentCleaner::BeginVictim(uint64_t seg_index, uint64_t now_ns) {
  Victim victim;
  victim.segment = seg_index;
  victim.trim_retention_seq = ftl_->log_.GlobalMinDataSeq();
  auto scan = ftl_->device_->ScanSegmentHeaders(seg_index, now_ns, &victim.entries);
  if (!scan.ok()) {
    IOSNAP_LOG(kWarning) << "[cleaner] victim scan failed: " << scan.status();
    return false;
  }

  // The header scan silently drops CRC-failing pages, so a page corrupted at rest
  // never reaches ProcessEntry. With parity on, collect them for a rebuild-or-drop
  // pass at victim completion (see Step); the scan above already charged the read
  // time for every page, so the raw re-inspection here is untimed.
  if (ftl_->config_.parity_stripe > 0 &&
      victim.entries.size() < ftl_->device_->NextFreePage(seg_index)) {
    const uint64_t first = ftl_->device_->FirstPageOf(seg_index);
    for (uint64_t i = 0; i < ftl_->device_->NextFreePage(seg_index); ++i) {
      const NandDevice::PageInspection insp = ftl_->device_->InspectPage(first + i);
      if (insp.programmed && !insp.crc_ok) {
        victim.corrupt_paddrs.push_back(first + i);
      }
    }
  }

  // If the victim holds snapshot notes or an old tree summary, consolidate: write one
  // fresh tree summary (whose sequence number supersedes them all), then the victim's
  // copies can simply be dropped instead of accumulating forever on the log.
  bool has_tree_records = false;
  for (const auto& [paddr, header] : victim.entries) {
    if (header.IsSnapshotNote() || header.type == RecordType::kTreeSummary) {
      has_tree_records = true;
      break;
    }
  }
  if (has_tree_records) {
    auto summary = ftl_->AppendTreeSummary(LogManager::kGcHead, now_ns);
    if (!summary.ok()) {
      IOSNAP_LOG(kWarning) << "[cleaner] tree summary failed: " << summary.status();
      return false;
    }
  }

  // Pacing estimate (Fig 10 knob): merged validity when snapshot-aware, the active
  // epoch's validity only under the vanilla rate policy. Both are now counter reads
  // over the victim's segment-sized range.
  const uint64_t merge_visits_before = ftl_->validity_.stats().merge_chunk_visits;
  if (ftl_->config_.snapshot_aware_gc_rate) {
    victim.pacing_estimate = ftl_->validity_.MergedValidCount(seg_index);
  } else {
    victim.pacing_estimate =
        ftl_->validity_.EpochValidCount(ftl_->FindView(kPrimaryView)->epoch, seg_index);
  }
  const uint64_t merge_visits =
      ftl_->validity_.stats().merge_chunk_visits - merge_visits_before;
  const uint64_t merge_ns = merge_visits * ftl_->config_.host_merge_ns_per_chunk;
  ftl_->stats_.gc_merge_host_ns += merge_ns;
  ftl_->stats_.gc_total_host_ns += merge_ns;

  if (ftl_->config_.gc_copyback) {
    // Bucket data entries by source channel for channel-matched draining (see Step);
    // everything else keeps scan order.
    victim.channel_queues.assign(ftl_->config_.nand.num_channels, {});
    for (size_t i = 0; i < victim.entries.size(); ++i) {
      if (victim.entries[i].second.type == RecordType::kData) {
        const uint32_t channel = static_cast<uint32_t>(
            victim.entries[i].first % ftl_->config_.nand.num_channels);
        victim.channel_queues[channel].push_back(i);
        ++victim.data_remaining;
      } else {
        victim.meta_order.push_back(i);
      }
    }
  }

  victim_ = std::move(victim);
  if (ftl_->trace_ != nullptr) {
    ftl_->trace_->Record(TraceEventType::kGcVictimSelect, now_ns, now_ns, victim_->segment,
                         victim_->pacing_estimate, ftl_->log_.FreeSegmentCount());
  }
  return true;
}

void SegmentCleaner::RefreshEpochCaches() {
  if (victim_->epoch_set_version == ftl_->epoch_set_version_) {
    return;
  }
  victim_->live_epochs = ftl_->LiveEpochs();
  victim_->views_for_epoch.clear();
  victim_->epoch_set_version = ftl_->epoch_set_version_;
}

const std::vector<uint32_t>& SegmentCleaner::LiveEpochsCached() {
  RefreshEpochCaches();
  return victim_->live_epochs;
}

const std::vector<uint32_t>& SegmentCleaner::ViewsForEpoch(uint32_t epoch) {
  RefreshEpochCaches();
  auto it = victim_->views_for_epoch.find(epoch);
  if (it == victim_->views_for_epoch.end()) {
    // A view's forward map can only reference records whose epoch lies on the view
    // epoch's lineage; all other views are skipped during copy-forward fix-up.
    std::vector<uint32_t> ids;
    for (const auto& [id, view] : ftl_->views_) {
      if (ftl_->tree_.InLineage(view.epoch, epoch)) {
        ids.push_back(id);
      }
    }
    it = victim_->views_for_epoch.emplace(epoch, std::move(ids)).first;
  }
  return it->second;
}

bool SegmentCleaner::TrimStillNeeded(uint32_t epoch, uint64_t seq) {
  // A trim record must survive only while a data record it kills might still be
  // replayed. Two drop conditions: (1) the record is older than every surviving data
  // record (it kills nothing); (2) its epoch is on no live epoch's lineage (dead
  // branch). Without these, discard-heavy workloads accumulate immortal trim metadata.
  if (seq < victim_->trim_retention_seq) {
    return false;
  }
  for (uint32_t live : LiveEpochsCached()) {
    if (ftl_->tree_.InLineage(live, epoch)) {
      return true;
    }
  }
  return false;
}

StatusOr<uint64_t> SegmentCleaner::FlushTrimSummaries(uint64_t now_ns) {
  std::vector<TrimEntry>& trims = victim_->live_trims;
  if (trims.empty()) {
    return now_ns;
  }
  const uint64_t per_page = TrimEntriesPerPage(ftl_->config_.nand.page_size_bytes);
  uint64_t t = now_ns;
  for (size_t begin = 0; begin < trims.size(); begin += per_page) {
    const size_t count = std::min<size_t>(per_page, trims.size() - begin);
    const std::vector<uint8_t> payload = EncodeTrimSummary(trims, begin, count);
    PageHeader header;
    header.type = RecordType::kTrimSummary;
    header.seq = ftl_->NextSeq();
    header.payload_len = static_cast<uint32_t>(payload.size());
    ASSIGN_OR_RETURN(AppendResult ar,
                     ftl_->log_.Append(LogManager::kGcHead, header, payload, t));
    t = ar.op.finish_ns;
    ++ftl_->stats_.gc_notes_copied;
    ++ftl_->stats_.total_pages_programmed;
  }
  trims.clear();
  return t;
}

void SegmentCleaner::DropUnreadablePage(uint64_t paddr,
                                        const std::vector<uint32_t>& live,
                                        uint64_t now_ns) {
  ftl_->validity_.NoteTimeNs(now_ns);
  bool was_live = false;
  for (uint32_t epoch : live) {
    if (ftl_->validity_.Test(epoch, paddr)) {
      ftl_->validity_.ClearValid(epoch, paddr);
      was_live = true;
    }
  }
  // The stored header is the thing that just failed its CRC — header.lba may be
  // garbage, so the forward maps are swept by physical address instead of by name.
  // A dangling entry here would outlive the victim's erase and turn a later read of
  // the real lba into an unprogrammed-page fault.
  ftl_->DetachPaddrFromMaps(paddr);
  ++ftl_->stats_.gc_pages_lost;
  // Unified taxonomy: a page nothing referenced anymore was merely superseded; one
  // still live in some epoch is user-visible loss.
  if (was_live) {
    ++ftl_->stats_.pages_lost_forever;
  } else {
    ++ftl_->stats_.pages_superseded;
  }
}

uint64_t SegmentCleaner::FinishRelocation(uint64_t paddr, const PageHeader& header,
                                          const AppendResult& ar,
                                          const std::vector<uint32_t>& live,
                                          uint64_t now_ns, bool via_copyback,
                                          bool* copied_data_page) {
  // Move validity bits in every epoch that referenced the old location.
  ftl_->validity_.NoteTimeNs(now_ns);
  const uint64_t cow_bytes = ftl_->validity_.MoveBit(live, paddr, ar.paddr);
  const uint64_t cow_ns = cow_bytes * ftl_->config_.host_cow_ns_per_byte;
  const uint64_t host_ns = live.size() * ftl_->config_.host_bitmap_update_ns + cow_ns;
  ftl_->stats_.gc_total_host_ns += host_ns;

  // Let in-flight activation scans know the block moved.
  if (!ftl_->activations_.empty()) {
    ftl_->gc_relocations_.emplace_back(header.lba, ar.paddr);
  }

  // Fix any view whose forward map pointed at the old location — only views whose
  // epoch lineage can reference this record's epoch need consulting.
  for (uint32_t view_id : ViewsForEpoch(header.epoch)) {
    auto* view = ftl_->FindView(view_id);
    const std::optional<uint64_t> mapped = view->map.Lookup(header.lba);
    if (mapped.has_value() && *mapped == paddr) {
      view->map.Insert(header.lba, ar.paddr);
    }
  }

  ++ftl_->stats_.gc_pages_copied;
  ++ftl_->stats_.total_pages_programmed;
  ++victim_->pacing_done;
  *copied_data_page = true;
  if (ftl_->trace_ != nullptr) {
    ftl_->trace_->Record(TraceEventType::kGcCopyForward, now_ns, ar.op.finish_ns,
                         header.lba, paddr, ar.paddr);
  }
  if (via_copyback && ftl_->attributor_ != nullptr && ftl_->attributor_->Tick()) {
    // Copyback relocations never reach the host, so the classic write/read span
    // producers never see them; record them as their own kind. The span sum stays
    // bit-exact: device spans cover finish-issue, host terms cover the rest.
    LatencySpans spans;
    spans[LatencySpan::kQueueWait] = ar.op.FgWaitNs();
    spans[LatencySpan::kGcWait] = ar.op.bg_wait_ns;
    spans[LatencySpan::kBus] = ar.op.bus_ns;
    spans[LatencySpan::kCell] = ar.op.cell_ns;
    spans[LatencySpan::kCow] = cow_ns;
    spans[LatencySpan::kHostOther] = host_ns - cow_ns;
    ftl_->attributor_->Record(LatencyOpKind::kGcCopy, header.lba, ar.op.issue_ns,
                              ar.op.finish_ns + host_ns, spans);
  }
  return ar.op.finish_ns;
}

std::optional<uint32_t> SegmentCleaner::PickCopybackChannel() {
  const std::vector<std::deque<size_t>>& queues = victim_->channel_queues;
  // First choice: a queue whose source channel equals the channel its relocation
  // would be programmed on — that copyback stays on-die. The destination head
  // depends on the entry's epoch (colocation), so each queue is checked against its
  // own front entry's head.
  for (uint32_t c = 0; c < queues.size(); ++c) {
    if (queues[c].empty()) {
      continue;
    }
    const PageHeader& header = victim_->entries[queues[c].front()].second;
    const std::optional<uint32_t> want =
        ftl_->log_.NextAppendChannel(HeadForEpoch(header.epoch));
    if (want.has_value() && *want == c) {
      return c;
    }
  }
  for (uint32_t c = 0; c < queues.size(); ++c) {
    if (!queues[c].empty()) {
      return c;
    }
  }
  return std::nullopt;
}

bool SegmentCleaner::VictimExhausted() const {
  if (ftl_->config_.gc_copyback) {
    return victim_->meta_cursor >= victim_->meta_order.size() &&
           victim_->data_remaining == 0;
  }
  return victim_->cursor >= victim_->entries.size();
}

uint64_t SegmentCleaner::PacingEstimateRemaining() const {
  if (!victim_.has_value()) {
    return 0;
  }
  if (victim_->pacing_done >= victim_->pacing_estimate) {
    return 0;
  }
  return victim_->pacing_estimate - victim_->pacing_done;
}

StatusOr<uint64_t> SegmentCleaner::ProcessEntry(
    const std::pair<uint64_t, PageHeader>& entry, uint64_t now_ns, bool* copied_data_page) {
  *copied_data_page = false;
  const uint64_t paddr = entry.first;
  const PageHeader& header = entry.second;

  switch (header.type) {
    case RecordType::kData: {
      // Liveness under the merged view, served from the cached merge plane (the
      // ValidityMap's epoch set is exactly the live-epoch set).
      if (!ftl_->validity_.MergedTest(paddr)) {
        return now_ns;  // Invalid in every live epoch: drop.
      }
      const std::vector<uint32_t>& live = LiveEpochsCached();

      if (ftl_->config_.gc_copyback) {
        // On-die relocation: the stored bytes move inside the device without a host
        // read, so no DMA crosses a transfer bus when source and destination share a
        // channel. The device's scrub-on-copyback stands in for the CRC verification
        // the classic host read performed.
        const int head = HeadForEpoch(header.epoch);
        StatusOr<AppendResult> ar =
            ftl_->log_.AppendCopyback(head, paddr, header, now_ns);
        for (uint32_t attempt = 1; !ar.ok() &&
                                   ar.status().code() == StatusCode::kUnavailable &&
                                   attempt < ftl_->config_.read_retry_limit;
             ++attempt) {
          ar = ftl_->log_.AppendCopyback(head, paddr, header, now_ns);
        }
        if (!ar.ok()) {
          if (ar.status().code() == StatusCode::kDataLoss &&
              !ftl_->device_->PageCrcIntact(paddr)) {
            // Scrub-on-copyback caught a corrupted source: the page cannot be copied
            // forward as-is. With parity on, try an XOR rebuild from the stripe first;
            // a successful rebuild re-appends the page and repairs every map itself,
            // so it fully replaces this relocation.
            if (ftl_->config_.parity_stripe > 0) {
              StatusOr<AppendResult> rebuilt = ftl_->RebuildPage(paddr, now_ns, nullptr);
              if (rebuilt.ok()) {
                ++victim_->pacing_done;
                *copied_data_page = true;
                return rebuilt->op.finish_ns;
              }
            }
            IOSNAP_LOG(kWarning) << "[cleaner] dropping unreadable page " << paddr
                                 << " (lba " << header.lba
                                 << "): " << ar.status();
            DropUnreadablePage(paddr, live, now_ns);
            return now_ns;
          }
          return ar.status();
        }
        return FinishRelocation(paddr, header, *ar, live, now_ns,
                                /*via_copyback=*/true, copied_data_page);
      }

      // Copy-forward with the original identity (lba, epoch, seq).
      std::vector<uint8_t> data;
      StatusOr<NandOp> read = ftl_->device_->ReadPageWithRetry(
          paddr, now_ns, nullptr, &data, ftl_->config_.read_retry_limit);
      if (!read.ok() && read.status().code() == StatusCode::kDataLoss) {
        // The page is permanently unreadable (CRC failure): its contents cannot be
        // copied forward as-is. Parity rebuild first (it re-appends and repairs every
        // map, standing in for this relocation); only a failed rebuild drops the page,
        // scrubbing every reference so no map or bitmap points at it once the victim
        // segment is erased. (An activation scan already in flight over this segment
        // can still surface the dead paddr; its reads then fail with a typed error
        // rather than returning corrupt data.)
        if (ftl_->config_.parity_stripe > 0) {
          StatusOr<AppendResult> rebuilt = ftl_->RebuildPage(paddr, now_ns, nullptr);
          if (rebuilt.ok()) {
            ++victim_->pacing_done;
            *copied_data_page = true;
            return rebuilt->op.finish_ns;
          }
        }
        IOSNAP_LOG(kWarning) << "[cleaner] dropping unreadable page " << paddr << " (lba "
                             << header.lba << "): " << read.status();
        DropUnreadablePage(paddr, live, now_ns);
        return now_ns;
      }
      ASSIGN_OR_RETURN(NandOp read_op, std::move(read));
      ASSIGN_OR_RETURN(AppendResult ar,
                       ftl_->log_.Append(HeadForEpoch(header.epoch), header, data,
                                         read_op.finish_ns));
      return FinishRelocation(paddr, header, ar, live, now_ns,
                              /*via_copyback=*/false, copied_data_page);
    }
    case RecordType::kTrim: {
      if (!TrimStillNeeded(header.epoch, header.seq)) {
        ++ftl_->stats_.gc_notes_dropped;
        return now_ns;
      }
      // Gathered now, rewritten in compacted form when the victim completes.
      victim_->live_trims.push_back(
          TrimEntry{header.lba, header.trim_count, header.epoch, header.seq});
      return now_ns;
    }
    case RecordType::kTrimSummary: {
      // Re-filter the batched entries and carry the survivors into the new compaction.
      std::vector<uint8_t> payload;
      StatusOr<NandOp> read = ftl_->device_->ReadPageWithRetry(
          paddr, now_ns, nullptr, &payload, ftl_->config_.read_retry_limit);
      if (!read.ok() && read.status().code() == StatusCode::kDataLoss) {
        // The batched trim entries are gone; data they killed may resurrect at the next
        // recovery scan. Genuine data loss — count it and keep the device running.
        IOSNAP_LOG(kWarning) << "[cleaner] dropping unreadable trim summary " << paddr
                             << ": " << read.status();
        ++ftl_->stats_.gc_pages_lost;
        ++ftl_->stats_.pages_lost_forever;
        return now_ns;
      }
      ASSIGN_OR_RETURN(NandOp read_op, std::move(read));
      StatusOr<std::vector<TrimEntry>> decoded = DecodeTrimSummary(payload);
      if (!decoded.ok()) {
        IOSNAP_LOG(kWarning) << "[cleaner] undecodable trim summary " << paddr << ": "
                             << decoded.status();
        ++ftl_->stats_.gc_pages_lost;
        ++ftl_->stats_.pages_lost_forever;
        return read_op.finish_ns;
      }
      const std::vector<TrimEntry>& entries = *decoded;
      for (const TrimEntry& trim : entries) {
        if (TrimStillNeeded(trim.epoch, trim.seq)) {
          victim_->live_trims.push_back(trim);
        } else {
          ++ftl_->stats_.gc_notes_dropped;
        }
      }
      return read_op.finish_ns;
    }
    case RecordType::kSnapCreate:
    case RecordType::kSnapDelete:
    case RecordType::kSnapActivate:
    case RecordType::kSnapDeactivate:
    case RecordType::kRollback:
    case RecordType::kTreeSummary:
      // Superseded by the fresh tree summary StartVictim wrote.
      ++ftl_->stats_.gc_notes_dropped;
      return now_ns;
    case RecordType::kCheckpoint:  // Stale the moment the device reopened.
    case RecordType::kPad:
    case RecordType::kInvalid:
      return now_ns;
    case RecordType::kParity:
      // Positional: a parity page protects its own segment's stripes and means nothing
      // anywhere else. Relocated members get fresh parity at the destination head.
      return now_ns;
  }
  return now_ns;
}

StatusOr<uint64_t> SegmentCleaner::Step(uint64_t now_ns, uint64_t max_pages) {
  if (!victim_.has_value()) {
    return now_ns;
  }
  // Copy-forward reads/appends, trim-summary flushes, and the release erase are all
  // background device traffic for latency attribution.
  NandDevice::BackgroundScope bg(ftl_->device_.get());
  uint64_t t = now_ns;
  uint64_t copied = 0;
  if (ftl_->config_.gc_copyback) {
    // Copyback order: notes first (scan order), then data entries chasing the
    // destination head's next-append channel so relocations stay on-die. Both loops
    // share one per-Step budget of max_pages entries so note rewrites stay paced
    // across Steps like classic mode's interleaving instead of bursting up front.
    uint64_t processed = 0;
    while (victim_->meta_cursor < victim_->meta_order.size() && processed < max_pages) {
      bool copied_data = false;
      ASSIGN_OR_RETURN(
          t, ProcessEntry(victim_->entries[victim_->meta_order[victim_->meta_cursor]], t,
                          &copied_data));
      ++victim_->meta_cursor;
      ++processed;
      if (copied_data) {
        ++copied;
      }
    }
    while (copied < max_pages && processed < max_pages) {
      const std::optional<uint32_t> channel = PickCopybackChannel();
      if (!channel.has_value()) {
        break;
      }
      std::deque<size_t>& queue = victim_->channel_queues[*channel];
      bool copied_data = false;
      // Pop (and account) only after the relocation succeeds: a propagating error —
      // exhausted read retries, program-failure reroute limit, no free segment —
      // leaves the entry at its queue front so the next Step retries it, matching the
      // classic path's cursor-advance-on-success semantics.
      ASSIGN_OR_RETURN(t, ProcessEntry(victim_->entries[queue.front()], t, &copied_data));
      queue.pop_front();
      --victim_->data_remaining;
      ++processed;
      if (copied_data) {
        ++copied;
      }
    }
  } else {
    while (victim_->cursor < victim_->entries.size() && copied < max_pages) {
      bool copied_data = false;
      ASSIGN_OR_RETURN(t,
                       ProcessEntry(victim_->entries[victim_->cursor], t, &copied_data));
      ++victim_->cursor;
      if (copied_data) {
        ++copied;
      }
    }
  }
  if (VictimExhausted()) {
    // Rebuild-or-drop the scan-excluded corrupt pages (parity on; empty otherwise)
    // before the segment is erased out from under them. A successful rebuild repairs
    // every map itself; a double-fault stripe is honest loss and gets every reference
    // scrubbed so nothing dangles past the erase. Popping per page keeps a mid-sweep
    // error (e.g. device offline) resumable without reprocessing.
    while (!victim_->corrupt_paddrs.empty()) {
      const uint64_t corrupt_paddr = victim_->corrupt_paddrs.back();
      if (!ftl_->validity_.MergedTest(corrupt_paddr)) {
        // No live epoch references these bytes — either a rebuild already moved them
        // (read path or patrol) or they were garbage all along. The erase disposes of
        // them; corrupt notes (which carry no validity) land here too, exactly as the
        // scan has always dropped them.
        victim_->corrupt_paddrs.pop_back();
        continue;
      }
      StatusOr<AppendResult> rebuilt = ftl_->RebuildPage(corrupt_paddr, t, nullptr);
      if (rebuilt.ok()) {
        t = rebuilt->op.finish_ns;
        ++victim_->pacing_done;
      } else if (rebuilt.status().code() == StatusCode::kDataLoss) {
        DropUnreadablePage(corrupt_paddr, LiveEpochsCached(), t);
      } else {
        return rebuilt.status();
      }
      victim_->corrupt_paddrs.pop_back();
    }
    ASSIGN_OR_RETURN(t, FlushTrimSummaries(t));
    const uint64_t release_start_ns = t;
    ASSIGN_OR_RETURN(NandOp erase_op, ftl_->log_.ReleaseSegment(victim_->segment, t));
    t = erase_op.finish_ns;
    ++ftl_->stats_.gc_segments_cleaned;
    if (ftl_->trace_ != nullptr) {
      ftl_->trace_->Record(TraceEventType::kGcSegmentErase, release_start_ns, t,
                           victim_->segment, victim_->pacing_done);
    }
    victim_.reset();
  }
  ftl_->stats_.gc_device_busy_ns += t - now_ns;
  return t;
}

StatusOr<uint64_t> SegmentCleaner::CleanOneBlocking(uint64_t now_ns) {
  if (!victim_.has_value() && !StartVictim(now_ns)) {
    return now_ns;
  }
  uint64_t t = now_ns;
  while (victim_.has_value()) {
    ASSIGN_OR_RETURN(t, Step(t, ftl_->config_.nand.pages_per_segment));
  }
  return t;
}

StatusOr<uint64_t> SegmentCleaner::CleanSegmentBlocking(uint64_t segment,
                                                        uint64_t now_ns) {
  uint64_t t = now_ns;
  // A victim mid-flight cannot be preempted (its scan snapshot and pacing state are
  // segment-bound); finish it first, then clean the requested segment.
  while (victim_.has_value()) {
    ASSIGN_OR_RETURN(t, Step(t, ftl_->config_.nand.pages_per_segment));
  }
  if (!StartVictimAt(segment, t)) {
    return t;
  }
  while (victim_.has_value()) {
    ASSIGN_OR_RETURN(t, Step(t, ftl_->config_.nand.pages_per_segment));
  }
  return t;
}

}  // namespace iosnap
