#include "src/core/fsck.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "src/core/recovery.h"
#include "src/core/snapshot_tree.h"
#include "src/nand/page_header.h"
#include "src/nand/parity.h"

namespace iosnap {

namespace {

// Bound on per-error descriptions so a badly damaged image cannot balloon the report;
// the counters always cover everything.
constexpr size_t kMaxErrorDescriptions = 32;

void AddError(FsckReport* report, std::string msg) {
  if (report->errors.size() < kMaxErrorDescriptions) {
    report->errors.push_back(std::move(msg));
  }
}

// True when the corrupt page at `paddr` can be reconstructed offline from its XOR
// parity stripe: the covering parity page and every other member slot must be
// programmed and intact, the parity page must actually cover this stripe (record type
// and member count both match; a poisoned accumulator writes member count 0 and so
// always fails here), and the fully-XORed image must decode to a CRC-clean member.
bool OfflineRebuildable(const NandDevice& device, uint64_t paddr, uint64_t stripe) {
  const uint64_t pages_per_segment = device.config().pages_per_segment;
  const uint64_t page_size = device.config().page_size_bytes;
  const uint64_t seg_first = paddr - paddr % pages_per_segment;
  const uint64_t index = paddr - seg_first;
  if (stripe == 0 || IsParitySlot(index, stripe, pages_per_segment)) {
    return false;
  }
  const uint64_t pslot = ParitySlotFor(index, stripe, pages_per_segment);
  const NandDevice::PageInspection pinsp = device.InspectPage(seg_first + pslot);
  if (!pinsp.programmed || !pinsp.crc_ok ||
      pinsp.header.type != RecordType::kParity ||
      pinsp.header.trim_count != pslot - StripeStartIndex(pslot, stripe)) {
    return false;
  }
  const std::span<const uint8_t> pdata = device.PeekPageData(seg_first + pslot);
  if (pdata.size() != ParityImageSize(page_size)) {
    return false;
  }
  std::vector<uint8_t> image(pdata.begin(), pdata.end());
  for (uint64_t i = StripeStartIndex(pslot, stripe); i < pslot; ++i) {
    const uint64_t member = seg_first + i;
    if (member == paddr) {
      continue;
    }
    const NandDevice::PageInspection minsp = device.InspectPage(member);
    if (!minsp.programmed || !minsp.crc_ok) {
      return false;  // Second fault in the stripe: XOR cannot separate them.
    }
    XorMemberImage(image, minsp.header, device.PeekPageData(member), page_size);
  }
  return DecodeMemberImage(image, page_size).ok();
}

}  // namespace

StatusOr<FsckReport> FsckDevice(NandDevice* device, uint64_t parity_stripe) {
  if (device == nullptr) {
    return InvalidArgument("fsck: no device");
  }
  FsckReport report;

  // Pass 1 — raw media scan. Unlike recovery's header scan this sees CRC-failing
  // pages; the per-(epoch, lba) max intact seq is the supersession bound used to
  // decide whether a corrupt page still mattered.
  const uint64_t total_pages = device->config().TotalPages();
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> max_intact_seq;
  std::map<uint64_t, PageHeader> intact_data;  // paddr -> header of intact kData pages.
  std::vector<std::pair<uint64_t, PageHeader>> corrupt;
  // Stripe-width inference when the caller passed 0: the first regular parity slot
  // sits at in-segment index == stripe width, so the smallest intact parity index
  // recovers it with no metadata (see src/nand/parity.h).
  uint64_t inferred_stripe = 0;
  for (uint64_t paddr = 0; paddr < total_pages; ++paddr) {
    const NandDevice::PageInspection insp = device->InspectPage(paddr);
    if (!insp.programmed) {
      continue;
    }
    ++report.pages_scanned;
    if (!insp.crc_ok) {
      ++report.crc_failures;
      corrupt.emplace_back(paddr, insp.header);
      continue;
    }
    if (insp.header.type == RecordType::kParity) {
      const uint64_t index = paddr % device->config().pages_per_segment;
      if (inferred_stripe == 0 || index < inferred_stripe) {
        inferred_stripe = index;
      }
    }
    if (insp.header.type == RecordType::kData) {
      intact_data.emplace(paddr, insp.header);
      const std::pair<uint32_t, uint64_t> key(insp.header.epoch, insp.header.lba);
      auto [it, inserted] = max_intact_seq.emplace(key, insp.header.seq);
      if (!inserted && insp.header.seq > it->second) {
        it->second = insp.header.seq;
      }
    }
  }

  const uint64_t stripe = parity_stripe > 0 ? parity_stripe : inferred_stripe;
  report.parity_stripe = stripe;

  // Pass 2 — full crash recovery, the same reconstruction a restart would run.
  StatusOr<RecoveredState> recovered = RecoverFromDevice(device, 0);
  if (!recovered.ok()) {
    report.recovery_ok = false;
    AddError(&report, "recovery failed: " + recovered.status().ToString());
    // With no epoch tree every corrupt data page must be assumed lost.
    for (const auto& [paddr, header] : corrupt) {
      if (header.type == RecordType::kData) {
        ++report.lost_data_pages;
      } else {
        ++report.corrupt_metadata_pages;
      }
    }
    return report;
  }
  report.recovery_ok = true;
  const RecoveredState& state = *recovered;

  std::vector<uint32_t> live_epochs = state.tree.LiveSnapshotEpochs();
  live_epochs.push_back(state.active_epoch);
  std::sort(live_epochs.begin(), live_epochs.end());
  live_epochs.erase(std::unique(live_epochs.begin(), live_epochs.end()),
                    live_epochs.end());

  // Triage every CRC failure: lost data iff some live epoch's lineage reaches the
  // record's epoch AND no intact on-media record of the same (epoch, lba) carries an
  // equal-or-higher seq. (An equal seq means a GC/patrol copy-forward of this very
  // record survives intact.) Note: when payloads are not stored the corruption lands
  // in the header itself, so its fields may be garbage — an epoch the tree never saw
  // fails the lineage test and the page lands in superseded/dead, which is the
  // conservative-for-warnings direction; intact-header corruption (stored payloads,
  // the simulator default) triages exactly.
  for (const auto& [paddr, header] : corrupt) {
    if (header.type != RecordType::kData) {
      ++report.corrupt_metadata_pages;
      continue;
    }
    bool on_live_lineage = false;
    for (uint32_t epoch : live_epochs) {
      if (state.tree.InLineage(epoch, header.epoch)) {
        on_live_lineage = true;
        break;
      }
    }
    const auto it = max_intact_seq.find({header.epoch, header.lba});
    const bool superseded = it != max_intact_seq.end() && it->second >= header.seq;
    if (on_live_lineage && !superseded) {
      // Would be lost — unless the stripe can reconstruct it, in which case the page
      // is merely dirty: --repair (the online scrub, which runs the same rebuild)
      // brings the media back to clean.
      if (OfflineRebuildable(*device, paddr, stripe)) {
        ++report.rebuilt_data_pages;
        continue;
      }
      ++report.lost_data_pages;
      AddError(&report, "lost data: paddr " + std::to_string(paddr) + " (lba " +
                            std::to_string(header.lba) + ", epoch " +
                            std::to_string(header.epoch) + ", seq " +
                            std::to_string(header.seq) +
                            ") fails CRC with no intact successor");
    } else {
      ++report.superseded_corrupt_pages;
    }
  }

  // Validity cross-check: every referenced page must be an intact data page, once.
  std::set<uint64_t> referenced;
  report.epochs_checked = state.validity.size();
  for (const auto& [epoch, paddrs] : state.validity) {
    std::set<uint64_t> seen_in_epoch;
    for (uint64_t paddr : paddrs) {
      referenced.insert(paddr);
      if (!seen_in_epoch.insert(paddr).second) {
        ++report.doubly_claimed_pages;
        AddError(&report, "epoch " + std::to_string(epoch) +
                              " claims paddr " + std::to_string(paddr) + " twice");
        continue;
      }
      if (!intact_data.contains(paddr)) {
        ++report.dangling_validity_refs;
        AddError(&report, "epoch " + std::to_string(epoch) + " validity references paddr " +
                              std::to_string(paddr) + " which is missing or corrupt");
      }
    }
  }

  // Forward-map cross-check: each entry must resolve to an intact page recorded for
  // that LBA, and no physical page may back two LBAs.
  std::map<uint64_t, uint64_t> claimed_by;  // paddr -> lba.
  for (const auto& [lba, paddr] : state.primary_map) {
    const auto it = intact_data.find(paddr);
    if (it == intact_data.end() || it->second.lba != lba) {
      ++report.map_mismatches;
      AddError(&report, "map: lba " + std::to_string(lba) + " -> paddr " +
                            std::to_string(paddr) +
                            (it == intact_data.end() ? " (missing or corrupt)"
                                                     : " (header names another lba)"));
    }
    const auto [cit, inserted] = claimed_by.emplace(paddr, lba);
    if (!inserted) {
      ++report.doubly_claimed_pages;
      AddError(&report, "map: paddr " + std::to_string(paddr) + " claimed by lba " +
                            std::to_string(cit->second) + " and lba " +
                            std::to_string(lba));
    }
  }

  // Orphans (informational): intact data pages no live epoch references — ordinary
  // garbage awaiting the cleaner on a log-structured device.
  for (const auto& [paddr, header] : intact_data) {
    if (!referenced.contains(paddr)) {
      ++report.orphaned_pages;
    }
  }
  return report;
}

std::string FormatFsckReport(const FsckReport& report) {
  std::ostringstream out;
  out << "fsck: " << (report.Clean() ? "clean" : "DIRTY") << "\n"
      << "  pages_scanned            " << report.pages_scanned << "\n"
      << "  crc_failures             " << report.crc_failures << "\n"
      << "  lost_data_pages          " << report.lost_data_pages << "\n"
      << "  rebuilt_data_pages       " << report.rebuilt_data_pages << "\n"
      << "  superseded_corrupt_pages " << report.superseded_corrupt_pages << "\n"
      << "  corrupt_metadata_pages   " << report.corrupt_metadata_pages << "\n"
      << "  dangling_validity_refs   " << report.dangling_validity_refs << "\n"
      << "  map_mismatches           " << report.map_mismatches << "\n"
      << "  doubly_claimed_pages     " << report.doubly_claimed_pages << "\n"
      << "  orphaned_pages           " << report.orphaned_pages << "\n"
      << "  epochs_checked           " << report.epochs_checked << "\n"
      << "  recovery_ok              " << (report.recovery_ok ? "yes" : "no") << "\n";
  for (const std::string& error : report.errors) {
    out << "  error: " << error << "\n";
  }
  return out.str();
}

}  // namespace iosnap
