// The snapshot tree and epoch lineage (§5.3.2, Figure 4).
//
// Epochs divide log time: the epoch counter increments on every snapshot create or
// activate, and every block written carries its epoch. Epochs form a tree:
//   * snapshot create freezes the device's current epoch E as snapshot S and continues
//     the device on a fresh child epoch of E;
//   * snapshot activate forks a fresh child epoch off S's (long-frozen) epoch for the
//     activated view.
// An epoch therefore never receives writes after it has children, which gives the clean
// visibility rule used throughout this codebase: the state seen by epoch E is the
// highest-sequence write per LBA among all records whose epoch lies on E's root path
// (minus later TRIMs on that path).
//
// Snapshots reference epochs 1:1. Deleting a snapshot marks it deleted — the epoch node
// must survive because descendants' lineage runs through it — and its blocks are
// reclaimed lazily by the segment cleaner once no live epoch's validity references them.

#ifndef SRC_CORE_SNAPSHOT_TREE_H_
#define SRC_CORE_SNAPSHOT_TREE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace iosnap {

inline constexpr uint32_t kNoEpoch = 0xffffffffu;
inline constexpr uint32_t kRootEpoch = 0;

struct SnapshotInfo {
  uint32_t snap_id = 0;
  uint32_t epoch = kNoEpoch;  // The epoch this snapshot froze.
  uint64_t create_seq = 0;    // Global sequence number at creation.
  bool deleted = false;
  std::string name;
};

class SnapshotTree {
 public:
  SnapshotTree();

  // --- Epochs ---

  // Allocates the next epoch id as a child of `parent`.
  uint32_t NewEpoch(uint32_t parent);
  // The id NewEpoch will hand out next (written into snapshot notes so that crash
  // recovery re-derives identical numbering even when old notes have been consolidated).
  uint32_t NextEpochId() const { return next_epoch_; }
  uint32_t ParentOf(uint32_t epoch) const;
  bool EpochExists(uint32_t epoch) const { return parents_.contains(epoch); }
  uint32_t EpochCount() const { return static_cast<uint32_t>(parents_.size()); }

  // Root path of `epoch`, leaf first: {epoch, parent, ..., kRootEpoch}.
  std::vector<uint32_t> Lineage(uint32_t epoch) const;

  // True if `ancestor` lies on `epoch`'s root path (inclusive).
  bool InLineage(uint32_t epoch, uint32_t ancestor) const;

  // Children of an epoch, in creation order (used by recovery's BFS rebuild).
  std::vector<uint32_t> ChildrenOf(uint32_t epoch) const;

  // --- Snapshots ---

  // Registers a snapshot freezing `epoch` at `create_seq`. Returns the snapshot id.
  uint32_t AddSnapshot(uint32_t epoch, uint64_t create_seq, std::string name);

  Status MarkDeleted(uint32_t snap_id);
  bool Exists(uint32_t snap_id) const;
  StatusOr<SnapshotInfo> Get(uint32_t snap_id) const;
  // Snapshot ids that have not been deleted, ascending.
  std::vector<uint32_t> LiveSnapshotIds() const;
  // Epochs of live snapshots, ascending (validity-merge input).
  std::vector<uint32_t> LiveSnapshotEpochs() const;

  // Number of live snapshot ancestors of this snapshot's epoch, *excluding* itself —
  // activation cost grows with this depth (Figure 8).
  int SnapshotDepth(uint32_t snap_id) const;

  // --- Recovery / checkpoint support ---

  // Re-registers state with explicit ids; used when rebuilding from notes or checkpoint.
  void RestoreEpoch(uint32_t epoch, uint32_t parent);
  void RestoreSnapshot(const SnapshotInfo& info);

  void SerializeTo(std::vector<uint8_t>* out) const;
  static StatusOr<SnapshotTree> Deserialize(const std::vector<uint8_t>& bytes, size_t* offset);

 private:
  // parents_[e] = parent epoch of e (kNoEpoch for the root). Sparse: epoch ids are
  // allocated monotonically but restored explicitly by recovery.
  std::map<uint32_t, uint32_t> parents_;
  std::map<uint32_t, SnapshotInfo> snapshots_;
  // epoch -> snapshot id freezing it (at most one).
  std::map<uint32_t, uint32_t> snapshot_by_epoch_;
  uint32_t next_snap_id_ = 1;
  uint32_t next_epoch_ = 1;
};

}  // namespace iosnap

#endif  // SRC_CORE_SNAPSHOT_TREE_H_
