// Snapshot-aware segment cleaner (§5.4).
//
// Cleaning a segment with snapshots present differs from vanilla cleaning in three ways
// (Figure 6):
//   1. Liveness is the OR ("merge") of every live epoch's validity bitmap — a block
//      invalid in the active view may still belong to a snapshot. Epochs of deleted
//      snapshots drop out of the merge, which is how deletion reclaims space lazily.
//   2. Copy-forward preserves the block's logical identity (lba, epoch, seq) so that
//      later activations and crash recovery still attribute it correctly.
//   3. After a move, the validity bit must be cleared/set in *every* epoch that
//      referenced the old location ("move and reset validity bits").
//
// Snapshot notes and trim notes are always copied forward: they are the only persistent
// record of the epoch tree and of discards, and recovery needs them.
//
// The cleaner runs either incrementally (Step, paced by the write path / idle pump) or
// synchronously (CleanOneBlocking, the emergency path when the free pool is exhausted —
// the source of the paper's Figure 10 latency spikes under the vanilla rate policy).

#ifndef SRC_CORE_SEGMENT_CLEANER_H_
#define SRC_CORE_SEGMENT_CLEANER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/status.h"
#include "src/core/trim_summary.h"
#include "src/ftl/log_manager.h"
#include "src/nand/page_header.h"

namespace iosnap {

class Ftl;

class SegmentCleaner {
 public:
  explicit SegmentCleaner(Ftl* ftl);

  // Selects a victim (policy from FtlConfig), scans its headers, and merges validity.
  // Returns false when no cleanable segment exists. No-op if a victim is in progress.
  bool StartVictim(uint64_t now_ns);

  bool HasVictim() const { return victim_.has_value(); }

  // True when static wear leveling wants to recycle a cold segment (drives idle-time
  // cleaning even when the free pool is healthy).
  bool WearImbalanced() const;

  // Pages the *pacing policy* believes remain to be copied for the current victim.
  // Under the vanilla rate policy this counts only the active epoch's valid pages and so
  // under-estimates when snapshots hold extra live data (Fig 10b); the snapshot-aware
  // policy counts the merged validity (Fig 10c).
  uint64_t PacingEstimateRemaining() const;

  // Copies up to `max_pages` live pages (plus any interleaved notes); erases and frees
  // the victim when finished. Returns the device finish time of the work performed
  // (== now_ns when there was nothing to do).
  StatusOr<uint64_t> Step(uint64_t now_ns, uint64_t max_pages);

  // Selects a victim if needed and cleans it to completion synchronously.
  // Returns the finish time; no-op returning now_ns when nothing is cleanable.
  StatusOr<uint64_t> CleanOneBlocking(uint64_t now_ns);

  // Cleans one *specific* closed segment to completion (the patrol scrubber's
  // evacuation path: relocate every live page, then erase, so corrupt pages are
  // physically removed from the media). Any in-flight victim is finished first.
  // No-op returning the current time when the segment is not cleanable.
  StatusOr<uint64_t> CleanSegmentBlocking(uint64_t segment, uint64_t now_ns);

 private:
  struct Victim {
    uint64_t segment = 0;
    // All programmed pages of the segment at scan time (paddr, header).
    std::vector<std::pair<uint64_t, PageHeader>> entries;
    size_t cursor = 0;             // Next entry to process.
    uint64_t pacing_estimate = 0;  // See PacingEstimateRemaining().
    uint64_t pacing_done = 0;      // Pages copied so far.
    // Trim notes with seq below this bound predate every surviving data record: they can
    // kill nothing at recovery and are dropped instead of copied forward. Snapshotted at
    // victim start (the bound is monotone, so a stale value is merely conservative).
    uint64_t trim_retention_seq = 0;
    // Still-needed trim records gathered from the victim (single notes and entries of
    // older kTrimSummary pages); compacted into fresh summary pages at completion.
    std::vector<TrimEntry> live_trims;
    // Per-victim caches keyed off the FTL's epoch-set version: the live-epoch list
    // (instead of a fresh tree walk per page) and, per record epoch, the views whose
    // lineage can reference that epoch (the only forward maps a copy-forward of such a
    // record can invalidate). Refreshed lazily when the version moves — snapshot
    // create/delete or view changes mid-victim.
    uint64_t epoch_set_version = ~uint64_t{0};
    std::vector<uint32_t> live_epochs;
    std::unordered_map<uint32_t, std::vector<uint32_t>> views_for_epoch;
    // Copyback-mode processing order (FtlConfig::gc_copyback; empty otherwise).
    // Non-data entries drain first in scan order; data entries are bucketed by source
    // channel and drained chasing the destination head's next-append channel, so
    // relocations line up with the on-die copyback fast path. Reordering is safe:
    // copy-forward preserves each record's logical identity (lba, epoch, seq).
    std::vector<size_t> meta_order;
    size_t meta_cursor = 0;
    std::vector<std::deque<size_t>> channel_queues;
    size_t data_remaining = 0;
    // Programmed pages the victim scan excluded because their stored CRC failed
    // (populated only when parity is on). A page corrupted at rest would otherwise
    // ride the victim's erase while forward maps still point at it; these get a
    // rebuild-or-drop pass at victim completion, before the segment is released.
    std::vector<uint64_t> corrupt_paddrs;
  };

  // Drops stale per-victim epoch caches when the FTL's epoch set changed.
  void RefreshEpochCaches();
  // The live-epoch list, cached per victim (see Victim::live_epochs).
  const std::vector<uint32_t>& LiveEpochsCached();
  // View ids whose epoch lineage includes `epoch`, cached per victim.
  const std::vector<uint32_t>& ViewsForEpoch(uint32_t epoch);

  // True if a trim record must be kept (see Victim::trim_retention_seq).
  bool TrimStillNeeded(uint32_t epoch, uint64_t seq);

  // Writes the victim's gathered trims as dense summary pages. Returns device finish.
  StatusOr<uint64_t> FlushTrimSummaries(uint64_t now_ns);

  std::optional<uint64_t> SelectVictim(uint64_t now_ns);

  // Scans `segment` and installs it as the current victim (shared tail of
  // StartVictim / StartVictimAt). Returns false if the scan or the tree-summary
  // consolidation failed.
  bool BeginVictim(uint64_t segment, uint64_t now_ns);
  // StartVictim for a caller-chosen closed segment (evacuation). Returns false when
  // the segment is not closed or another victim is mid-flight on a different segment.
  bool StartVictimAt(uint64_t segment, uint64_t now_ns);

  // The coldest cleanable segment if its wear lags the most-worn by >= threshold.
  std::optional<uint64_t> WearLevelingCandidate() const;

  // Processes one entry; returns the device finish time (now_ns if entry was dropped).
  StatusOr<uint64_t> ProcessEntry(const std::pair<uint64_t, PageHeader>& entry,
                                  uint64_t now_ns, bool* copied_data_page);

  // Scrubs every reference to a permanently unreadable page so nothing points at it
  // once the victim is erased (validity bits in every live epoch + view forward maps).
  void DropUnreadablePage(uint64_t paddr,
                          const std::vector<uint32_t>& live, uint64_t now_ns);

  // Post-relocation bookkeeping shared by the classic read+append path and the
  // copyback path: validity-bit moves, activation journal, view fix-ups, stats, and
  // the copy-forward trace event. `via_copyback` additionally records a kGcCopy
  // latency span breakdown (copyback-only so default runs carry no extra records).
  uint64_t FinishRelocation(uint64_t paddr, const PageHeader& header,
                            const AppendResult& ar, const std::vector<uint32_t>& live,
                            uint64_t now_ns, bool via_copyback, bool* copied_data_page);

  // Channel queue holding the next data entry to relocate in copyback mode: one whose
  // front entry's relocation would land on-die if such a queue exists, else the first
  // non-empty queue. Peek only — the caller pops the front (and decrements
  // data_remaining) after the relocation succeeds, so a propagating error leaves the
  // entry queued for retry on the next Step. nullopt when all data entries are drained.
  std::optional<uint32_t> PickCopybackChannel();

  // True when every entry of the current victim has been processed.
  bool VictimExhausted() const;

  // Destination append head for a copy-forwarded record.
  int HeadForEpoch(uint32_t epoch) const;

  Ftl* ftl_;
  std::optional<Victim> victim_;
};

}  // namespace iosnap

#endif  // SRC_CORE_SEGMENT_CLEANER_H_
