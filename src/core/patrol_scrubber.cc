#include "src/core/patrol_scrubber.h"

#include <optional>
#include <utility>
#include <vector>

#include "src/core/ftl.h"

namespace iosnap {

PatrolScrubber::PatrolScrubber(Ftl* ftl) : ftl_(ftl) {}

bool PatrolScrubber::NeedsRefresh(uint64_t paddr, uint64_t now_ns) const {
  const FtlConfig& cfg = ftl_->config_;
  if (cfg.patrol_refresh_reads > 0 &&
      ftl_->device_->SegmentReadCount(ftl_->device_->SegmentOf(paddr)) >=
          cfg.patrol_refresh_reads) {
    return true;
  }
  if (cfg.patrol_refresh_age_ms > 0) {
    const uint64_t programmed = ftl_->device_->PageProgrammedAtNs(paddr);
    const uint64_t age_ns = now_ns > programmed ? now_ns - programmed : 0;
    if (age_ns >= cfg.patrol_refresh_age_ms * 1000000ull) {
      return true;
    }
  }
  return false;
}

void PatrolScrubber::DropCorruptPage(uint64_t paddr, const PageHeader& stored,
                                     uint64_t now_ns) {
  ftl_->validity_.NoteTimeNs(now_ns);
  bool was_live = false;
  for (uint32_t epoch : ftl_->LiveEpochs()) {
    if (ftl_->validity_.Test(epoch, paddr)) {
      ftl_->validity_.ClearValid(epoch, paddr);
      was_live = true;
    }
  }
  // The stored header may itself be corrupt (garbage lba), so forward-map fix-ups
  // sweep by physical address: every entry still pointing at the dead page is
  // detached, whatever lba it files under.
  ftl_->DetachPaddrFromMaps(paddr);
  if (was_live) {
    ++ftl_->stats_.patrol_pages_dropped;
    ++ftl_->stats_.pages_lost_forever;
    if (ftl_->trace_ != nullptr) {
      ftl_->trace_->Record(TraceEventType::kPatrolDrop, now_ns, now_ns, stored.lba, paddr);
    }
  } else {
    ++ftl_->stats_.pages_superseded;
  }
}

StatusOr<uint64_t> PatrolScrubber::RewritePage(uint64_t paddr, uint64_t now_ns,
                                               bool* segment_dirty) {
  PageHeader header;
  std::vector<uint8_t> data;
  StatusOr<NandOp> read = ftl_->device_->ReadPageWithRetry(
      paddr, now_ns, &header, &data, ftl_->config_.read_retry_limit);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kDataLoss) {
      // The full read found what the header scan could not fix: the page is corrupt
      // (possibly disturbed by this very sense). Parity rebuild before expunge: a
      // success re-appends the page elsewhere and repairs the maps, and the corrupt
      // original is erased with the segment it dirties.
      *segment_dirty = true;
      if (ftl_->config_.parity_stripe > 0) {
        StatusOr<AppendResult> rebuilt = ftl_->RebuildPage(paddr, now_ns, nullptr);
        if (rebuilt.ok()) {
          return rebuilt->op.finish_ns;
        }
      }
      DropCorruptPage(paddr, ftl_->device_->InspectPage(paddr).header, now_ns);
      return now_ns;
    }
    if (read.status().code() == StatusCode::kUnavailable) {
      return now_ns;  // Retries exhausted this burst; the next sweep tries again.
    }
    return read.status();
  }

  // Re-append through the GC head, preserving the record's (lba, epoch, seq) identity —
  // the same contract as a cleaner copy-forward, so recovery and activations still
  // attribute the page correctly.
  ASSIGN_OR_RETURN(AppendResult ar,
                   ftl_->log_.Append(LogManager::kGcHead, header, data, read->finish_ns));

  ftl_->validity_.NoteTimeNs(now_ns);
  const std::vector<uint32_t> live = ftl_->LiveEpochs();
  ftl_->validity_.MoveBit(live, paddr, ar.paddr);
  if (!ftl_->activations_.empty()) {
    ftl_->gc_relocations_.emplace_back(header.lba, ar.paddr);
  }
  for (auto& [id, view] : ftl_->views_) {
    if (!ftl_->tree_.InLineage(view.epoch, header.epoch)) {
      continue;
    }
    const std::optional<uint64_t> mapped = view.map.Lookup(header.lba);
    if (mapped.has_value() && *mapped == paddr) {
      view.map.Insert(header.lba, ar.paddr);
    }
  }

  ++ftl_->stats_.patrol_pages_rewritten;
  ++ftl_->stats_.total_pages_programmed;
  if (ftl_->trace_ != nullptr) {
    ftl_->trace_->Record(TraceEventType::kPatrolRewrite, now_ns, ar.op.finish_ns,
                         header.lba, paddr, ar.paddr);
  }
  return ar.op.finish_ns;
}

StatusOr<uint64_t> PatrolScrubber::ScanPage(uint64_t paddr, uint64_t now_ns,
                                            bool* segment_dirty) {
  ++ftl_->stats_.patrol_pages_scanned;
  PageHeader header;
  StatusOr<NandOp> verify = ftl_->device_->ReadHeader(paddr, now_ns, &header);
  if (verify.ok()) {
    if (header.type == RecordType::kData && ftl_->validity_.MergedTest(paddr) &&
        NeedsRefresh(paddr, now_ns)) {
      return RewritePage(paddr, verify->finish_ns, segment_dirty);
    }
    return verify->finish_ns;
  }
  const StatusCode code = verify.status().code();
  if (code == StatusCode::kUnavailable) {
    // The page needed a retry to come back at all — the classic preemptive-refresh
    // trigger. Rewrite it now if anything still references it.
    if (ftl_->validity_.MergedTest(paddr)) {
      return RewritePage(paddr, now_ns, segment_dirty);
    }
    return now_ns;
  }
  if (code == StatusCode::kDataLoss) {
    // Same escalation as RewritePage's corrupt branch: rebuild from parity when
    // possible, expunge only when the stripe cannot help.
    *segment_dirty = true;
    if (ftl_->config_.parity_stripe > 0) {
      StatusOr<AppendResult> rebuilt = ftl_->RebuildPage(paddr, now_ns, nullptr);
      if (rebuilt.ok()) {
        return rebuilt->op.finish_ns;
      }
    }
    DropCorruptPage(paddr, ftl_->device_->InspectPage(paddr).header, now_ns);
    return now_ns;
  }
  return verify.status();
}

StatusOr<uint64_t> PatrolScrubber::Step(uint64_t now_ns, uint64_t max_pages) {
  const uint64_t num_segments = ftl_->config_.nand.num_segments;
  const uint64_t pages_per_segment = ftl_->config_.nand.pages_per_segment;
  if (max_pages == 0 || num_segments == 0) {
    return now_ns;
  }
  // Everything below is media-maintenance traffic: charge it to the background
  // horizons so foreground ops attribute patrol interference as bg_wait_ns.
  NandDevice::BackgroundScope bg(ftl_->device_.get());

  uint64_t t = now_ns;
  uint64_t scanned = 0;
  uint64_t segments_visited = 0;
  while (scanned < max_pages && segments_visited <= num_segments) {
    if (ftl_->log_.segment_info(cursor_segment_).state != SegmentState::kClosed) {
      // Open heads, free, and retired segments are not patrolled (open segments are
      // too young to have decayed; retired ones cannot be erased anyway).
      segment_dirty_ = false;
      cursor_page_ = 0;
      ++segments_visited;
      if (++cursor_segment_ == num_segments) {
        cursor_segment_ = 0;
        ++ftl_->stats_.patrol_sweeps;
      }
      continue;
    }
    const uint64_t scan_end = ftl_->device_->NextFreePage(cursor_segment_);
    while (cursor_page_ < scan_end && scanned < max_pages) {
      const uint64_t paddr = cursor_segment_ * pages_per_segment + cursor_page_;
      ++cursor_page_;
      if (!ftl_->device_->InspectPage(paddr).programmed) {
        continue;
      }
      ++scanned;
      ASSIGN_OR_RETURN(t, ScanPage(paddr, t, &segment_dirty_));
    }
    if (cursor_page_ < scan_end) {
      break;  // Budget exhausted mid-segment; resume here next burst.
    }
    if (segment_dirty_) {
      // A CRC-failed page is expunged only when its segment is erased: evacuate the
      // survivors through the cleaner and release the segment.
      ASSIGN_OR_RETURN(t, ftl_->cleaner_->CleanSegmentBlocking(cursor_segment_, t));
      ++ftl_->stats_.patrol_segments_evacuated;
      segment_dirty_ = false;
    }
    cursor_page_ = 0;
    ++segments_visited;
    if (++cursor_segment_ == num_segments) {
      cursor_segment_ = 0;
      ++ftl_->stats_.patrol_sweeps;
    }
  }
  return t;
}

StatusOr<uint64_t> PatrolScrubber::ScrubAllBlocking(uint64_t now_ns) {
  cursor_segment_ = 0;
  cursor_page_ = 0;
  segment_dirty_ = false;
  const uint64_t sweeps_before = ftl_->stats_.patrol_sweeps;
  uint64_t t = now_ns;
  // The cursor advances monotonically every Step, so one wrap == full coverage.
  while (ftl_->stats_.patrol_sweeps == sweeps_before) {
    ASSIGN_OR_RETURN(t, Step(t, ftl_->config_.nand.pages_per_segment));
  }
  return t;
}

}  // namespace iosnap
