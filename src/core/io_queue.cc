#include "src/core/io_queue.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace iosnap {

IoQueueStats& GlobalIoQueueStats() {
  static IoQueueStats stats;
  return stats;
}

LatencyHistogram& GlobalQueueCompletionHistogram() {
  static LatencyHistogram hist;
  return hist;
}

IoQueueLayer::IoQueueLayer(Ftl* ftl, const Options& options)
    : ftl_(ftl), options_(options) {
  IOSNAP_CHECK(ftl_ != nullptr);
  IOSNAP_CHECK(options_.queues > 0);
  IOSNAP_CHECK(options_.iodepth > 0);
  per_queue_.resize(options_.queues);
  queue_inflight_subs_.assign(options_.queues, 0);
}

bool IoQueueLayer::CanSubmit(uint32_t queue) const {
  return queue < queue_inflight_subs_.size() &&
         queue_inflight_subs_[queue] < options_.iodepth;
}

StatusOr<uint64_t> IoQueueLayer::Submit(uint32_t queue, std::span<const QueueOp> ops,
                                        uint64_t issue_ns) {
  if (queue >= queue_inflight_subs_.size()) {
    return OutOfRange("io_queue: queue " + std::to_string(queue) + " out of range");
  }
  if (ops.empty()) {
    return InvalidArgument("io_queue: empty submission");
  }
  if (issue_ns < last_issue_ns_) {
    return InvalidArgument("io_queue: issue times must be non-decreasing");
  }
  if (queue_inflight_subs_[queue] >= options_.iodepth) {
    ++stats_.queue_full_rejections;
    ++GlobalIoQueueStats().queue_full_rejections;
    return ResourceExhausted("io_queue: queue " + std::to_string(queue) +
                             " at iodepth " + std::to_string(options_.iodepth));
  }
  last_issue_ns_ = issue_ns;

  const uint64_t submission_id = next_submission_id_++;
  for (const QueueOp& op : ops) {
    PendingOp p;
    p.op_id = next_op_id_++;
    p.submission_id = submission_id;
    p.queue = queue;
    p.kind = op.kind;
    p.lba = op.lba;
    p.count = op.count;
    p.data.assign(op.data.begin(), op.data.end());
    p.issue_ns = issue_ns;
    pending_.push_back(std::move(p));
  }
  ++queue_inflight_subs_[queue];
  sub_remaining_[submission_id] = ops.size();

  ++stats_.submissions;
  stats_.ops_submitted += ops.size();
  stats_.inflight_ops += ops.size();
  stats_.max_inflight_ops = std::max(stats_.max_inflight_ops, stats_.inflight_ops);
  IoQueueStats& g = GlobalIoQueueStats();
  ++g.submissions;
  g.ops_submitted += ops.size();
  g.inflight_ops += ops.size();
  g.max_inflight_ops = std::max(g.max_inflight_ops, g.inflight_ops);
  PerQueueStats& q = per_queue_[queue];
  ++q.submissions;
  q.ops_submitted += ops.size();
  q.max_inflight_subs =
      std::max<uint64_t>(q.max_inflight_subs, queue_inflight_subs_[queue]);

  if (TraceRecorder* trace = ftl_->trace_recorder(); trace != nullptr) {
    trace->Record(TraceEventType::kQueueSubmit, issue_ns, issue_ns, queue, ops.size(),
                  submission_id);
  }
  return submission_id;
}

void IoQueueLayer::FailOp(const PendingOp& op, const Status& status) {
  IoCompletion c;
  c.op_id = op.op_id;
  c.submission_id = op.submission_id;
  c.queue = op.queue;
  c.kind = op.kind;
  c.lba = op.lba;
  c.count = op.count;
  c.status = status;
  c.result.op.issue_ns = op.issue_ns;
  c.result.op.finish_ns = op.issue_ns;
  completed_.push_back(std::move(c));
}

void IoQueueLayer::CommitRun(size_t begin, size_t len) {
  const QueueOpKind kind = pending_[begin].kind;
  std::vector<uint64_t> issue_at(len);
  for (size_t i = 0; i < len; ++i) {
    issue_at[i] = pending_[begin + i].issue_ns;
  }
  const uint64_t issue_ns = issue_at[0];

  Status run_status;
  std::vector<IoResult> results;
  std::vector<std::vector<uint8_t>> read_data;
  switch (kind) {
    case QueueOpKind::kWrite: {
      std::vector<WriteRequest> reqs(len);
      for (size_t i = 0; i < len; ++i) {
        reqs[i].lba = pending_[begin + i].lba;
        reqs[i].data = pending_[begin + i].data;
      }
      auto r = ftl_->WriteVAt(reqs, issue_ns, issue_at);
      if (r.ok()) {
        results = std::move(*r);
      } else {
        run_status = r.status();
      }
      break;
    }
    case QueueOpKind::kRead: {
      std::vector<uint64_t> lbas(len);
      for (size_t i = 0; i < len; ++i) {
        lbas[i] = pending_[begin + i].lba;
      }
      auto r = ftl_->ReadVAt(lbas, issue_ns, issue_at, &read_data);
      if (r.ok()) {
        results = std::move(*r);
      } else {
        run_status = r.status();
      }
      break;
    }
    case QueueOpKind::kTrim: {
      std::vector<TrimRequest> reqs(len);
      for (size_t i = 0; i < len; ++i) {
        reqs[i].lba = pending_[begin + i].lba;
        reqs[i].count = pending_[begin + i].count;
      }
      auto r = ftl_->TrimVAt(reqs, issue_ns, issue_at);
      if (r.ok()) {
        results = std::move(*r);
      } else {
        run_status = r.status();
      }
      break;
    }
  }

  if (!run_status.ok()) {
    for (size_t i = 0; i < len; ++i) {
      FailOp(pending_[begin + i], run_status);
    }
    return;
  }
  IOSNAP_CHECK(results.size() == len);
  for (size_t i = 0; i < len; ++i) {
    PendingOp& op = pending_[begin + i];
    IoCompletion c;
    c.op_id = op.op_id;
    c.submission_id = op.submission_id;
    c.queue = op.queue;
    c.kind = op.kind;
    c.lba = op.lba;
    c.count = op.count;
    c.result = results[i];
    if (kind == QueueOpKind::kRead && !read_data.empty()) {
      c.data = std::move(read_data[i]);
    }
    completed_.push_back(std::move(c));
  }
}

void IoQueueLayer::Flush() {
  if (pending_.empty()) {
    return;
  }
  ++stats_.flushes;
  ++GlobalIoQueueStats().flushes;

  // Commit maximal same-kind runs in submission order. A failed run also fails every
  // later pending op: its log position was consumed by an error and replaying the
  // remainder could reorder effects relative to submission order.
  size_t begin = 0;
  uint64_t runs = 0;
  while (begin < pending_.size()) {
    size_t end = begin + 1;
    while (end < pending_.size() && pending_[end].kind == pending_[begin].kind) {
      ++end;
    }
    ++runs;
    CommitRun(begin, end - begin);
    // CommitRun appended failed completions if the run errored; detect via the last
    // completion's status.
    if (!completed_.empty() && !completed_.back().status.ok()) {
      for (size_t i = end; i < pending_.size(); ++i) {
        FailOp(pending_[i],
               Unavailable("io_queue: aborted after earlier run failed"));
      }
      break;
    }
    begin = end;
  }
  stats_.merged_runs += runs;
  GlobalIoQueueStats().merged_runs += runs;

  if (TraceRecorder* trace = ftl_->trace_recorder(); trace != nullptr) {
    trace->Record(TraceEventType::kQueueFlush, pending_.front().issue_ns,
                  pending_.front().issue_ns, pending_.size(), runs);
  }
  pending_.clear();
}

std::optional<uint64_t> IoQueueLayer::NextCompletionNs() {
  Flush();
  std::optional<uint64_t> next;
  for (const IoCompletion& c : completed_) {
    const uint64_t t = c.CompletionNs();
    if (!next.has_value() || t < *next) {
      next = t;
    }
  }
  return next;
}

void IoQueueLayer::DeliverOne(IoCompletion&& c, std::vector<IoCompletion>* out) {
  ++stats_.ops_completed;
  --stats_.inflight_ops;
  IoQueueStats& g = GlobalIoQueueStats();
  ++g.ops_completed;
  --g.inflight_ops;
  ++per_queue_[c.queue].ops_completed;
  if (c.status.ok()) {
    const uint64_t latency = c.result.LatencyNs();
    completion_hist_.Add(latency);
    GlobalQueueCompletionHistogram().Add(latency);
  } else {
    ++stats_.ops_failed;
    ++g.ops_failed;
  }

  auto it = sub_remaining_.find(c.submission_id);
  IOSNAP_CHECK(it != sub_remaining_.end());
  if (--it->second == 0) {
    sub_remaining_.erase(it);
    IOSNAP_CHECK(queue_inflight_subs_[c.queue] > 0);
    --queue_inflight_subs_[c.queue];
  }

  if (TraceRecorder* trace = ftl_->trace_recorder(); trace != nullptr) {
    trace->Record(TraceEventType::kQueueComplete, c.result.op.issue_ns,
                  c.CompletionNs(), c.queue, c.op_id, c.lba);
  }
  if (callback_) {
    callback_(c);
  }
  out->push_back(std::move(c));
}

std::vector<IoCompletion> IoQueueLayer::PollCompletions(uint64_t now_ns) {
  Flush();
  std::vector<IoCompletion> due;
  std::vector<IoCompletion> rest;
  rest.reserve(completed_.size());
  for (IoCompletion& c : completed_) {
    if (c.CompletionNs() <= now_ns) {
      due.push_back(std::move(c));
    } else {
      rest.push_back(std::move(c));
    }
  }
  completed_ = std::move(rest);
  std::stable_sort(due.begin(), due.end(),
                   [](const IoCompletion& a, const IoCompletion& b) {
                     const uint64_t ta = a.CompletionNs();
                     const uint64_t tb = b.CompletionNs();
                     return ta != tb ? ta < tb : a.op_id < b.op_id;
                   });
  std::vector<IoCompletion> delivered;
  delivered.reserve(due.size());
  for (IoCompletion& c : due) {
    DeliverOne(std::move(c), &delivered);
  }
  return delivered;
}

std::vector<IoCompletion> IoQueueLayer::Drain() {
  return PollCompletions(~uint64_t{0});
}

}  // namespace iosnap
