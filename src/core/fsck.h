// Offline consistency checker for ioSnap media (the iosnap_fsck library).
//
// The online FTL deliberately *hides* media corruption: ScanSegmentHeaders (the
// primitive under crash recovery and activation) silently drops CRC-failing pages, so
// a recovered FTL simply never references them. That is the right availability
// trade-off online, but it means "recovery succeeded" proves nothing about whether
// data was lost. FsckDevice answers the stronger question by combining two views:
//
//   1. A raw scan (NandDevice::InspectPage) of every programmed page, including the
//      ones the timed read path would reject — per-(epoch, lba) it tracks the highest
//      sequence number among *intact* data records.
//   2. A full crash recovery (RecoverFromDevice), yielding the epoch tree, the live
//      validity sets of every snapshot epoch, and the primary forward map.
//
// Cross-checks:
//   * Every validity-referenced page must exist, verify, and be a data record
//     (dangling_validity_refs).
//   * Every primary-map entry must point at an intact data page for that LBA
//     (map_mismatches).
//   * No physical page may be claimed by two LBAs (doubly_claimed_pages).
//   * A CRC-failed data page is *lost data* — an error — exactly when no intact
//     on-media record of the same (epoch, lba) carries an equal-or-higher seq (i.e.
//     neither an overwrite nor a patrol/GC copy-forward superseded it) AND its epoch
//     lies on a live epoch's lineage. Superseded or dead-epoch corruption and corrupt
//     non-data records are counted but are not errors: recovery provably does not
//     need them.
//
// Known limitation: a page that was trimmed *and* later corrupted is still flagged as
// lost — trim notes kill map entries, not the supersession bound. Repair (the patrol
// scrubber's ScrubAllBlocking) resolves either way by expunging the page.

#ifndef SRC_CORE_FSCK_H_
#define SRC_CORE_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/nand/nand_device.h"

namespace iosnap {

struct FsckReport {
  // Raw-scan totals.
  uint64_t pages_scanned = 0;   // Programmed pages inspected.
  uint64_t crc_failures = 0;    // Programmed pages whose stored CRC does not verify.
  // CRC-failure triage.
  uint64_t lost_data_pages = 0;          // Corrupt, live lineage, not superseded. ERROR.
  uint64_t rebuilt_data_pages = 0;       // Would be lost, but offline XOR-parity
                                         // reconstruction succeeds: recoverable by
                                         // --repair, so dirty rather than lost.
  uint64_t superseded_corrupt_pages = 0; // Corrupt but out-written / dead epoch.
  uint64_t corrupt_metadata_pages = 0;   // Corrupt non-data records (notes, summaries).
  // Metadata cross-check failures (all errors).
  uint64_t dangling_validity_refs = 0;  // Validity bit with no intact data page under it.
  uint64_t map_mismatches = 0;          // Forward-map entry not backed by its LBA's page.
  uint64_t doubly_claimed_pages = 0;    // One physical page claimed by two LBAs.
  // Informational.
  uint64_t orphaned_pages = 0;  // Intact data pages no live epoch references (garbage
                                // awaiting GC; normal for a log-structured device).
  uint64_t epochs_checked = 0;  // Live epochs whose validity sets were verified.
  // Stripe width the check ran with: the caller's flag, or (when that was 0) the
  // width inferred from the media. 0 = no parity found, reconstruction disabled.
  uint64_t parity_stripe = 0;
  bool recovery_ok = false;     // RecoverFromDevice succeeded.
  // Human-readable descriptions of the first errors found (bounded).
  std::vector<std::string> errors;

  bool Clean() const {
    return recovery_ok && lost_data_pages == 0 && rebuilt_data_pages == 0 &&
           dangling_validity_refs == 0 && map_mismatches == 0 &&
           doubly_claimed_pages == 0;
  }
};

// Checks `device` as described above. The device is inspected read-only (untimed raw
// scans plus one recovery header scan); run it on a loaded image (LoadNandImage) or a
// quiesced device. Returns a report even when the media is dirty — a non-OK status
// means the check itself could not run (e.g. recovery crashed so badly no cross-check
// was possible is still reported via recovery_ok=false, not an error status).
//
// `parity_stripe` enables re-triaging corrupt data pages that an offline XOR-stripe
// reconstruction (src/nand/parity.h) can recover: they count as rebuilt_data_pages
// (dirty, repairable) instead of lost_data_pages. 0 infers the stripe width from the
// media — the smallest in-segment index of any intact parity page — and disables the
// re-triage when the media carries no parity pages at all.
StatusOr<FsckReport> FsckDevice(NandDevice* device, uint64_t parity_stripe = 0);

// Renders the report as a short human-readable block (one line per counter plus the
// collected error descriptions).
std::string FormatFsckReport(const FsckReport& report);

}  // namespace iosnap

#endif  // SRC_CORE_FSCK_H_
