// Crash recovery and restart (§5.5).
//
// On open, the whole log's OOB headers are scanned. If the highest-sequence records form
// a complete checkpoint, state loads from it (clean shutdown). Otherwise the two-pass
// reconstruction runs:
//   Pass 1 replays snapshot notes in sequence order, rebuilding the epoch tree and the
//          snapshot tree (and re-deriving the deterministic epoch numbering).
//   Pass 2 walks the epoch tree root-to-leaf, overlaying each epoch's data/trim records
//          on its parent's state (the paper's breadth-first merge), capturing the active
//          forward map and a validity set for every live epoch.
//
// Blocks relocated by the cleaner keep their original (lba, epoch, seq) identity, so the
// replay is position-independent; duplicate records (copy-forward raced a crash before
// the source segment erase) are de-duplicated by sequence number.

#ifndef SRC_CORE_RECOVERY_H_
#define SRC_CORE_RECOVERY_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/snapshot_tree.h"
#include "src/nand/nand_device.h"

namespace iosnap {

struct RecoveredState {
  bool from_checkpoint = false;
  uint64_t seq_counter = 0;
  uint32_t active_epoch = kRootEpoch;
  SnapshotTree tree;
  // Primary forward map, key-sorted (ready for BulkLoad).
  std::vector<std::pair<uint64_t, uint64_t>> primary_map;
  // Live epoch -> valid physical pages.
  std::map<uint32_t, std::vector<uint64_t>> validity;
  // Surviving data records (paddr, epoch, seq) for segment accounting.
  struct DataRecord {
    uint64_t paddr;
    uint32_t epoch;
    uint64_t seq;
  };
  std::vector<DataRecord> data_records;
  // Virtual time when recovery I/O finished.
  uint64_t finish_ns = 0;
};

// Scans `device` and reconstructs FTL state, starting device I/O at `issue_ns`.
StatusOr<RecoveredState> RecoverFromDevice(NandDevice* device, uint64_t issue_ns);

}  // namespace iosnap

#endif  // SRC_CORE_RECOVERY_H_
