#include "src/core/trim_summary.h"

#include "src/common/logging.h"
#include "src/common/serde.h"

namespace iosnap {

std::vector<uint8_t> EncodeTrimSummary(const std::vector<TrimEntry>& entries, size_t begin,
                                       size_t count) {
  IOSNAP_CHECK(begin + count <= entries.size());
  std::vector<uint8_t> out;
  out.reserve(4 + count * kTrimEntryBytes);
  PutU32(&out, static_cast<uint32_t>(count));
  for (size_t i = begin; i < begin + count; ++i) {
    PutU64(&out, entries[i].lba);
    PutU32(&out, entries[i].count);
    PutU32(&out, entries[i].epoch);
    PutU64(&out, entries[i].seq);
  }
  return out;
}

StatusOr<std::vector<TrimEntry>> DecodeTrimSummary(const std::vector<uint8_t>& payload) {
  size_t offset = 0;
  uint32_t count = 0;
  RETURN_IF_ERROR(GetU32(payload, &offset, &count));
  std::vector<TrimEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TrimEntry entry;
    RETURN_IF_ERROR(GetU64(payload, &offset, &entry.lba));
    RETURN_IF_ERROR(GetU32(payload, &offset, &entry.count));
    RETURN_IF_ERROR(GetU32(payload, &offset, &entry.epoch));
    RETURN_IF_ERROR(GetU64(payload, &offset, &entry.seq));
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace iosnap
