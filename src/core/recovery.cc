#include "src/core/recovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/core/checkpoint.h"
#include "src/core/trim_summary.h"

namespace iosnap {

namespace {

// Attempts per page read during recovery before a transient failure is treated as
// permanent. Recovery is the last line of defense, so it retries a little harder
// than the foreground path.
constexpr uint32_t kRecoveryReadAttempts = 4;

struct ScanRecord {
  uint64_t paddr;
  PageHeader header;
};

// Per-LBA winning record while overlaying an epoch chain.
struct MapEntry {
  uint64_t paddr;
  uint64_t seq;
};

using StateMap = std::unordered_map<uint64_t, MapEntry>;

// Applies one epoch's records (already seq-sorted) on top of `state`.
void ApplyEpochRecords(const std::vector<ScanRecord>& records, StateMap* state) {
  for (const ScanRecord& r : records) {
    if (r.header.type == RecordType::kData) {
      (*state)[r.header.lba] = MapEntry{r.paddr, r.header.seq};
    } else if (r.header.type == RecordType::kTrim) {
      for (uint64_t i = 0; i < r.header.trim_count; ++i) {
        state->erase(r.header.lba + i);
      }
    }
  }
}

std::vector<uint64_t> ValidSetOf(const StateMap& state) {
  std::vector<uint64_t> out;
  out.reserve(state.size());
  for (const auto& [lba, entry] : state) {
    out.push_back(entry.paddr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> SortedMapOf(const StateMap& state) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(state.size());
  for (const auto& [lba, entry] : state) {
    out.emplace_back(lba, entry.paddr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Attempts the checkpoint fast path. Returns true (and fills `state`) on success.
// `clock_ns` advances by the payload reads performed.
StatusOr<bool> TryLoadCheckpoint(NandDevice* device,
                                 const std::vector<ScanRecord>& records_by_seq,
                                 uint64_t* clock_ns, CheckpointState* state) {
  if (records_by_seq.empty()) {
    return false;
  }
  // A valid checkpoint must own the tail of the log: collect the trailing run of
  // kCheckpoint records.
  std::vector<const ScanRecord*> group;
  for (auto it = records_by_seq.rbegin(); it != records_by_seq.rend(); ++it) {
    if (it->header.type != RecordType::kCheckpoint) {
      break;
    }
    group.push_back(&*it);
  }
  if (group.empty()) {
    return false;
  }
  const uint32_t checkpoint_id = group.front()->header.snap_id;
  const uint64_t expected_pages = group.front()->header.trim_count;
  // Keep only the tail checkpoint's own pages (a torn earlier checkpoint directly
  // preceding it would have a different id).
  std::erase_if(group, [checkpoint_id](const ScanRecord* r) {
    return r->header.snap_id != checkpoint_id;
  });
  if (group.size() != expected_pages) {
    return false;  // Torn checkpoint: fall back to full recovery.
  }
  // Order pages by their index within the checkpoint (stored in header.lba).
  std::sort(group.begin(), group.end(), [](const ScanRecord* a, const ScanRecord* b) {
    return a->header.lba < b->header.lba;
  });
  std::vector<uint8_t> bytes;
  for (size_t i = 0; i < group.size(); ++i) {
    if (group[i]->header.lba != i) {
      return false;
    }
    std::vector<uint8_t> payload;
    StatusOr<NandOp> op = device->ReadPageWithRetry(group[i]->paddr, *clock_ns, nullptr,
                                                    &payload, kRecoveryReadAttempts);
    if (!op.ok()) {
      // A corrupt or unreadable checkpoint page invalidates the fast path, not the
      // device: fall back to the full two-pass scan.
      IOSNAP_LOG(kWarning) << "[recovery] checkpoint page unreadable (" << op.status()
                           << "); running full recovery";
      return false;
    }
    *clock_ns = op->finish_ns;
    if (payload.size() < group[i]->header.payload_len) {
      IOSNAP_LOG(kWarning)
          << "[recovery] checkpoint payload shorter than recorded length; "
             "running full recovery";
      return false;
    }
    bytes.insert(bytes.end(), payload.begin(),
                 payload.begin() + group[i]->header.payload_len);
  }
  auto parsed = ParseCheckpoint(bytes);
  if (!parsed.ok()) {
    IOSNAP_LOG(kWarning) << "[recovery] checkpoint parse failed (" << parsed.status()
                         << "); running full recovery";
    return false;
  }
  *state = std::move(parsed).value();
  return true;
}

}  // namespace

StatusOr<RecoveredState> RecoverFromDevice(NandDevice* device, uint64_t issue_ns) {
  RecoveredState out;
  uint64_t clock_ns = issue_ns;

  // --- Scan every segment's OOB headers ---
  std::vector<std::pair<uint64_t, PageHeader>> raw;
  for (uint64_t seg = 0; seg < device->config().num_segments; ++seg) {
    ASSIGN_OR_RETURN(NandOp op, device->ScanSegmentHeaders(seg, clock_ns, &raw));
    clock_ns = op.finish_ns;
  }

  // Sort by sequence number; de-duplicate records that survived twice because a crash
  // interrupted copy-forward before the source erase.
  std::vector<ScanRecord> records;
  records.reserve(raw.size());
  for (const auto& [paddr, header] : raw) {
    if (header.type == RecordType::kPad || header.type == RecordType::kInvalid ||
        header.type == RecordType::kParity) {
      // Parity pages carry placement, not identity (seq = 0); replaying them would
      // corrupt the seq-ordered dedup. The rebuild path finds them positionally.
      continue;
    }
    if (header.type == RecordType::kTrimSummary) {
      // Expand the cleaner's compacted trim batches back into individual trim records
      // (each with its original epoch/seq identity).
      std::vector<uint8_t> payload;
      StatusOr<NandOp> op = device->ReadPageWithRetry(paddr, clock_ns, nullptr, &payload,
                                                      kRecoveryReadAttempts);
      if (!op.ok()) {
        IOSNAP_LOG(kWarning) << "[recovery] unreadable trim summary ignored: "
                             << op.status();
        continue;
      }
      clock_ns = op->finish_ns;
      auto entries = DecodeTrimSummary(payload);
      if (!entries.ok()) {
        IOSNAP_LOG(kWarning) << "[recovery] unreadable trim summary ignored: "
                             << entries.status();
        continue;
      }
      for (const TrimEntry& entry : *entries) {
        PageHeader trim;
        trim.type = RecordType::kTrim;
        trim.lba = entry.lba;
        trim.trim_count = entry.count;
        trim.epoch = entry.epoch;
        trim.seq = entry.seq;
        records.push_back(ScanRecord{paddr, trim});
      }
      continue;
    }
    records.push_back(ScanRecord{paddr, header});
  }
  std::sort(records.begin(), records.end(), [](const ScanRecord& a, const ScanRecord& b) {
    if (a.header.seq != b.header.seq) {
      return a.header.seq < b.header.seq;
    }
    return a.paddr < b.paddr;
  });
  records.erase(std::unique(records.begin(), records.end(),
                            [](const ScanRecord& a, const ScanRecord& b) {
                              return a.header.seq == b.header.seq;
                            }),
                records.end());

  for (const ScanRecord& r : records) {
    out.seq_counter = std::max(out.seq_counter, r.header.seq + 1);
  }

  // --- Fast path: complete checkpoint at the tail ---
  CheckpointState checkpoint;
  ASSIGN_OR_RETURN(bool have_checkpoint,
                   TryLoadCheckpoint(device, records, &clock_ns, &checkpoint));
  if (have_checkpoint) {
    out.from_checkpoint = true;
    out.seq_counter = std::max(out.seq_counter, checkpoint.seq_counter);
    out.active_epoch = checkpoint.active_epoch;
    out.tree = std::move(checkpoint.tree);
    out.primary_map = std::move(checkpoint.primary_map);
    out.validity = std::move(checkpoint.validity);
    for (const ScanRecord& r : records) {
      if (r.header.type == RecordType::kData) {
        out.data_records.push_back({r.paddr, r.header.epoch, r.header.seq});
      }
    }
    out.finish_ns = clock_ns;
    return out;
  }

  // --- Pass 0: adopt the newest complete tree summary (cleaner-consolidated notes) ---
  // Snapshot notes older than that summary may have been dropped by cleaning; everything
  // they said is contained in the summary.
  uint64_t summary_seq = 0;
  {
    // Group kTreeSummary pages by group id; a group is usable if complete.
    std::map<uint32_t, std::vector<const ScanRecord*>> groups;
    for (const ScanRecord& r : records) {
      if (r.header.type == RecordType::kTreeSummary) {
        groups[r.header.snap_id].push_back(&r);
      }
    }
    const ScanRecord* best = nullptr;
    std::vector<const ScanRecord*> best_group;
    for (auto& [id, group] : groups) {
      if (group.size() != group.front()->header.trim_count) {
        continue;  // Torn summary: ignore.
      }
      uint64_t max_seq = 0;
      for (const ScanRecord* r : group) {
        max_seq = std::max(max_seq, r->header.seq);
      }
      if (best == nullptr || max_seq > summary_seq) {
        best = group.front();
        best_group = group;
        summary_seq = max_seq;
      }
    }
    if (best != nullptr) {
      std::sort(best_group.begin(), best_group.end(),
                [](const ScanRecord* a, const ScanRecord* b) {
                  return a->header.lba < b->header.lba;
                });
      std::vector<uint8_t> bytes;
      bool intact = true;
      for (size_t i = 0; i < best_group.size() && intact; ++i) {
        if (best_group[i]->header.lba != i) {
          intact = false;
          break;
        }
        std::vector<uint8_t> payload;
        StatusOr<NandOp> op = device->ReadPageWithRetry(
            best_group[i]->paddr, clock_ns, nullptr, &payload, kRecoveryReadAttempts);
        if (!op.ok()) {
          intact = false;
          break;
        }
        clock_ns = op->finish_ns;
        if (payload.size() < best_group[i]->header.payload_len) {
          intact = false;
          break;
        }
        bytes.insert(bytes.end(), payload.begin(),
                     payload.begin() + best_group[i]->header.payload_len);
      }
      size_t offset = 0;
      if (intact) {
        auto tree_or = SnapshotTree::Deserialize(bytes, &offset);
        uint32_t summary_active = kRootEpoch;
        if (tree_or.ok() && GetU32(bytes, &offset, &summary_active).ok()) {
          out.tree = std::move(tree_or).value();
          out.active_epoch = summary_active;
        } else {
          IOSNAP_LOG(kWarning) << "[recovery] unreadable tree summary ignored";
          summary_seq = 0;
        }
      } else {
        summary_seq = 0;
      }
    }
  }

  // --- Pass 1: replay snapshot notes newer than the summary ---
  // Notes carry explicit epoch ids (lba field), so numbering matches the runtime's
  // regardless of which older notes were consolidated away.
  for (const ScanRecord& r : records) {
    if (r.header.seq <= summary_seq) {
      continue;  // Already reflected in the summary.
    }
    switch (r.header.type) {
      case RecordType::kSnapCreate: {
        if (!out.tree.EpochExists(r.header.epoch)) {
          // The parent epoch's defining record was lost (torn tail or dropped corrupt
          // page). Skipping loses the snapshot but keeps every other lineage intact.
          IOSNAP_LOG(kWarning)
              << "[recovery] skipping create note for unknown epoch " << r.header.epoch;
          break;
        }
        SnapshotInfo info;
        info.snap_id = r.header.snap_id;
        info.epoch = r.header.epoch;
        info.create_seq = r.header.seq;
        if (r.header.payload_len > 0) {
          std::vector<uint8_t> payload;
          StatusOr<NandOp> op = device->ReadPageWithRetry(r.paddr, clock_ns, nullptr,
                                                          &payload,
                                                          kRecoveryReadAttempts);
          if (op.ok()) {
            clock_ns = op->finish_ns;
            if (payload.size() >= r.header.payload_len) {
              info.name.assign(reinterpret_cast<const char*>(payload.data()),
                               r.header.payload_len);
            }
          } else {
            // The snapshot itself survives; only its human-readable name is lost.
            IOSNAP_LOG(kWarning) << "[recovery] snapshot name unreadable: "
                                 << op.status();
          }
        }
        out.tree.RestoreSnapshot(info);
        out.tree.RestoreEpoch(static_cast<uint32_t>(r.header.lba), r.header.epoch);
        out.active_epoch = static_cast<uint32_t>(r.header.lba);
        break;
      }
      case RecordType::kSnapDelete: {
        // Tolerate unknown snapshots: the pairing create note may have been consolidated
        // together with an already-applied summary.
        Status status = out.tree.MarkDeleted(r.header.snap_id);
        if (!status.ok()) {
          IOSNAP_LOG(kDebug) << "[recovery] ignoring delete note: " << status;
        }
        break;
      }
      case RecordType::kSnapActivate: {
        auto info = out.tree.Get(r.header.snap_id);
        if (info.ok() && !out.tree.EpochExists(static_cast<uint32_t>(r.header.lba))) {
          out.tree.RestoreEpoch(static_cast<uint32_t>(r.header.lba), info->epoch);
        }
        // View epochs do not survive a crash; nothing is captured for them.
        break;
      }
      case RecordType::kRollback: {
        // The primary re-parented onto the snapshot's epoch.
        auto info = out.tree.Get(r.header.snap_id);
        if (!info.ok()) {
          IOSNAP_LOG(kWarning) << "[recovery] skipping rollback note for unknown "
                                  "snapshot "
                               << r.header.snap_id;
          break;
        }
        if (!out.tree.EpochExists(static_cast<uint32_t>(r.header.lba))) {
          out.tree.RestoreEpoch(static_cast<uint32_t>(r.header.lba), info->epoch);
        }
        out.active_epoch = static_cast<uint32_t>(r.header.lba);
        break;
      }
      case RecordType::kSnapDeactivate:
      default:
        break;
    }
  }

  // --- Pass 2: overlay data/trim records along the epoch tree ---
  std::unordered_map<uint32_t, std::vector<ScanRecord>> by_epoch;
  for (const ScanRecord& r : records) {
    if (r.header.type == RecordType::kData || r.header.type == RecordType::kTrim) {
      if (!out.tree.EpochExists(r.header.epoch)) {
        // Garbage from a dead branch whose defining notes were consolidated away.
        IOSNAP_LOG(kDebug) << "[recovery] skipping record in unknown epoch "
                           << r.header.epoch;
        continue;
      }
      by_epoch[r.header.epoch].push_back(r);
    }
    if (r.header.type == RecordType::kData && out.tree.EpochExists(r.header.epoch)) {
      out.data_records.push_back({r.paddr, r.header.epoch, r.header.seq});
    }
  }

  // Exactly the live epochs get a validity set: Ftl::Open replays them through
  // ValidityMap::SetValid, which both reconstructs the per-epoch bitmaps and rebuilds
  // the incremental per-segment utilization counters (the counters cover the map's
  // registered epoch set, which must equal the FTL's live-epoch set).
  std::unordered_set<uint32_t> capture_epochs;
  for (uint32_t epoch : out.tree.LiveSnapshotEpochs()) {
    capture_epochs.insert(epoch);
  }
  capture_epochs.insert(out.active_epoch);

  // Iterative DFS from the root, carrying the inherited state. The state map is copied
  // per extra child — the in-memory analogue of the paper's breadth-first merge.
  struct Frame {
    uint32_t epoch;
    StateMap state;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{kRootEpoch, StateMap{}});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    auto rec_it = by_epoch.find(frame.epoch);
    if (rec_it != by_epoch.end()) {
      ApplyEpochRecords(rec_it->second, &frame.state);
    }
    if (capture_epochs.contains(frame.epoch)) {
      out.validity[frame.epoch] = ValidSetOf(frame.state);
      if (frame.epoch == out.active_epoch) {
        out.primary_map = SortedMapOf(frame.state);
      }
    }
    const std::vector<uint32_t> children = out.tree.ChildrenOf(frame.epoch);
    for (size_t i = 0; i < children.size(); ++i) {
      if (i + 1 == children.size()) {
        stack.push_back(Frame{children[i], std::move(frame.state)});
      } else {
        stack.push_back(Frame{children[i], frame.state});
      }
    }
  }

  out.finish_ns = clock_ns;
  return out;
}

}  // namespace iosnap
