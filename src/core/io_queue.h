// NVMe-style multi-queue submission layer over the Ftl.
//
// N submission/completion queue pairs admit ops asynchronously: Submit() copies the
// ops into a pending set and returns a submission id immediately (or
// kResourceExhausted when the queue already has `iodepth` submissions in flight).
// Actual device work happens at Flush(), which commits every pending op in global
// submission order — maximal same-kind runs, possibly spanning submissions from
// different queues, collapse into single WriteVAt/ReadVAt/TrimVAt calls whose
// per-op issue times are the ops' own admission times. Completions surface out of
// order through PollCompletions() (everything whose virtual completion time has
// passed, ordered by completion time) or Drain(), plus an optional per-completion
// callback.
//
// Ordering invariants (see DESIGN.md "Multi-queue submission & sharded map"):
//   * Commit order == global submission order, independent of queue count and depth.
//     Out-of-orderness affects only *when completions are delivered*, never the order
//     log appends, map updates, or validity flips apply. The final logical state of
//     any run equals the same ops applied sequentially in submission order.
//   * queues=1, iodepth=1 degenerates to one Flush per Submit with a uniform issue
//     time — bit-identical to calling WriteV/ReadV/TrimV directly.
//   * Validity-map CoW and segment allocation remain single-writer: they happen
//     inside the ordered commit pass. Only per-shard forward-map updates fan out
//     (ShardedMap; host-side threads, simulator-state neutral).
//
// Error model: the vectored FTL calls report an error for a whole run (the durably
// appended prefix is applied internally but its per-op results are not returned), so
// a failed run fails every op in it, and every later pending op fails with
// kUnavailable. Failed completions carry completion time == their issue time. Crash
// consistency is unchanged: recovery replays the log, which holds exactly the
// committed prefix.

#ifndef SRC_CORE_IO_QUEUE_H_
#define SRC_CORE_IO_QUEUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/core/ftl.h"

namespace iosnap {

enum class QueueOpKind : uint8_t { kWrite = 0, kRead, kTrim };

// One operation handed to a submission queue. Write payloads are copied at Submit:
// the device does not consume them until a later Flush, when the caller's buffer may
// be gone.
struct QueueOp {
  QueueOpKind kind = QueueOpKind::kWrite;
  uint64_t lba = 0;
  uint64_t count = 0;             // Trim page count; ignored for writes/reads.
  std::span<const uint8_t> data;  // Write payload.
};

// Completion context for one op, delivered (possibly out of submission order) by
// PollCompletions/Drain and the completion callback.
struct IoCompletion {
  uint64_t op_id = 0;          // Global submission order, dense from 0.
  uint64_t submission_id = 0;
  uint32_t queue = 0;
  QueueOpKind kind = QueueOpKind::kWrite;
  uint64_t lba = 0;
  uint64_t count = 0;          // Trim page count.
  Status status;               // Failed ops: result holds issue==finish, no data.
  IoResult result;
  std::vector<uint8_t> data;   // Read payload.

  uint64_t CompletionNs() const { return result.CompletionNs(); }
};

// Cumulative counters (every field uint64_t; obs/metrics_bindings.h registers each).
// `inflight_ops` is a gauge: ops submitted but not yet delivered.
struct IoQueueStats {
  uint64_t submissions = 0;
  uint64_t ops_submitted = 0;
  uint64_t ops_completed = 0;
  uint64_t ops_failed = 0;
  uint64_t flushes = 0;
  uint64_t merged_runs = 0;
  uint64_t queue_full_rejections = 0;
  uint64_t inflight_ops = 0;
  uint64_t max_inflight_ops = 0;
};

// Process-wide aggregates, fed by every IoQueueLayer instance, so BenchDumpMetrics
// can expose queue metrics without per-bench wiring.
IoQueueStats& GlobalIoQueueStats();
LatencyHistogram& GlobalQueueCompletionHistogram();

class IoQueueLayer {
 public:
  struct Options {
    uint32_t queues = 1;
    uint32_t iodepth = 1;  // Max in-flight submissions per queue.
  };

  // Per-queue counters for the stats dump (tools/iosnap_sim --queues).
  struct PerQueueStats {
    uint64_t submissions = 0;
    uint64_t ops_submitted = 0;
    uint64_t ops_completed = 0;
    uint64_t max_inflight_subs = 0;
  };

  using CompletionCallback = std::function<void(const IoCompletion&)>;

  // `ftl` must outlive the layer. The layer only drives the primary view.
  IoQueueLayer(Ftl* ftl, const Options& options);

  uint32_t queue_count() const { return static_cast<uint32_t>(per_queue_.size()); }
  uint32_t iodepth() const { return options_.iodepth; }
  const IoQueueStats& stats() const { return stats_; }
  const LatencyHistogram& completion_histogram() const { return completion_hist_; }
  const std::vector<PerQueueStats>& per_queue() const { return per_queue_; }

  // Invoked once per completion, in delivery order, from PollCompletions/Drain.
  void SetCompletionCallback(CompletionCallback cb) { callback_ = std::move(cb); }

  // Admits `ops` on `queue` at `issue_ns` and returns the submission id. Issue times
  // must be non-decreasing across Submit calls (the log is append-ordered). Fails
  // with kResourceExhausted — rejecting, not blocking — when the queue already holds
  // `iodepth` undelivered submissions.
  StatusOr<uint64_t> Submit(uint32_t queue, std::span<const QueueOp> ops,
                            uint64_t issue_ns);

  // True if `queue` can accept another submission.
  bool CanSubmit(uint32_t queue) const;

  // Commits all pending ops in submission order (see file comment). FTL errors become
  // failed completions rather than a return value.
  void Flush();

  // Earliest undelivered completion time, after flushing pending work. nullopt when
  // nothing is in flight.
  std::optional<uint64_t> NextCompletionNs();

  // Delivers every completion with CompletionNs() <= now_ns, ordered by
  // (CompletionNs, op_id). Flushes first so pending ops can complete.
  std::vector<IoCompletion> PollCompletions(uint64_t now_ns);

  // Flushes and delivers everything in flight.
  std::vector<IoCompletion> Drain();

  uint64_t InflightOps() const { return stats_.inflight_ops; }

 private:
  struct PendingOp {
    uint64_t op_id = 0;
    uint64_t submission_id = 0;
    uint32_t queue = 0;
    QueueOpKind kind = QueueOpKind::kWrite;
    uint64_t lba = 0;
    uint64_t count = 0;
    std::vector<uint8_t> data;
    uint64_t issue_ns = 0;
  };

  // Commits pending_[begin, begin+len) — one maximal same-kind run — and appends the
  // run's completions to completed_.
  void CommitRun(size_t begin, size_t len);
  void FailOp(const PendingOp& op, const Status& status);
  void DeliverOne(IoCompletion&& c, std::vector<IoCompletion>* out);

  Ftl* ftl_;
  Options options_;
  IoQueueStats stats_;
  LatencyHistogram completion_hist_;
  std::vector<PerQueueStats> per_queue_;
  CompletionCallback callback_;

  std::vector<PendingOp> pending_;       // In submission order.
  std::vector<IoCompletion> completed_;  // Committed, not yet delivered.
  // Undelivered op count per in-flight submission; a queue slot frees when its
  // submission's last completion is delivered.
  std::unordered_map<uint64_t, uint64_t> sub_remaining_;
  std::vector<uint32_t> queue_inflight_subs_;

  uint64_t next_op_id_ = 0;
  uint64_t next_submission_id_ = 0;
  uint64_t last_issue_ns_ = 0;
};

}  // namespace iosnap

#endif  // SRC_CORE_IO_QUEUE_H_
