#include "src/core/checkpoint.h"

#include "src/common/serde.h"

namespace iosnap {

namespace {
constexpr uint64_t kMagic = 0x494f534e41504b31ULL;  // "IOSNAPK1"
constexpr uint32_t kVersion = 1;
}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const CheckpointState& state) {
  std::vector<uint8_t> out;
  PutU64(&out, kMagic);
  PutU32(&out, kVersion);
  PutU64(&out, state.seq_counter);
  PutU32(&out, state.active_epoch);
  state.tree.SerializeTo(&out);

  PutU64(&out, state.primary_map.size());
  for (const auto& [lba, paddr] : state.primary_map) {
    PutU64(&out, lba);
    PutU64(&out, paddr);
  }

  // One valid-paddr set per live epoch. Open replays these through SetValid, which also
  // rebuilds the incremental utilization counters — no counter state is serialized.
  PutU32(&out, static_cast<uint32_t>(state.validity.size()));
  for (const auto& [epoch, paddrs] : state.validity) {
    PutU32(&out, epoch);
    PutU64(&out, paddrs.size());
    for (uint64_t paddr : paddrs) {
      PutU64(&out, paddr);
    }
  }
  return out;
}

StatusOr<CheckpointState> ParseCheckpoint(const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  uint64_t magic = 0;
  uint32_t version = 0;
  RETURN_IF_ERROR(GetU64(bytes, &offset, &magic));
  if (magic != kMagic) {
    return DataLoss("checkpoint: bad magic");
  }
  RETURN_IF_ERROR(GetU32(bytes, &offset, &version));
  if (version != kVersion) {
    return DataLoss("checkpoint: unsupported version");
  }

  CheckpointState state;
  RETURN_IF_ERROR(GetU64(bytes, &offset, &state.seq_counter));
  RETURN_IF_ERROR(GetU32(bytes, &offset, &state.active_epoch));
  ASSIGN_OR_RETURN(state.tree, SnapshotTree::Deserialize(bytes, &offset));

  uint64_t map_count = 0;
  RETURN_IF_ERROR(GetU64(bytes, &offset, &map_count));
  state.primary_map.reserve(map_count);
  for (uint64_t i = 0; i < map_count; ++i) {
    uint64_t lba = 0;
    uint64_t paddr = 0;
    RETURN_IF_ERROR(GetU64(bytes, &offset, &lba));
    RETURN_IF_ERROR(GetU64(bytes, &offset, &paddr));
    state.primary_map.emplace_back(lba, paddr);
  }

  uint32_t epoch_count = 0;
  RETURN_IF_ERROR(GetU32(bytes, &offset, &epoch_count));
  for (uint32_t i = 0; i < epoch_count; ++i) {
    uint32_t epoch = 0;
    uint64_t count = 0;
    RETURN_IF_ERROR(GetU32(bytes, &offset, &epoch));
    RETURN_IF_ERROR(GetU64(bytes, &offset, &count));
    std::vector<uint64_t> paddrs;
    paddrs.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      uint64_t paddr = 0;
      RETURN_IF_ERROR(GetU64(bytes, &offset, &paddr));
      paddrs.push_back(paddr);
    }
    state.validity.emplace(epoch, std::move(paddrs));
  }
  return state;
}

}  // namespace iosnap
