#include "src/ftl/validity_map.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace iosnap {
namespace {

TEST(ValidityMapTest, RootEpochSetClearTest) {
  ValidityMap vm(1024, 64);
  vm.CreateEpoch(0);
  EXPECT_FALSE(vm.Test(0, 5));
  EXPECT_EQ(vm.SetValid(0, 5), 0u);  // Fresh chunk: no CoW.
  EXPECT_TRUE(vm.Test(0, 5));
  EXPECT_EQ(vm.ClearValid(0, 5), 0u);
  EXPECT_FALSE(vm.Test(0, 5));
  EXPECT_EQ(vm.stats().cow_chunk_copies, 0u);
}

TEST(ValidityMapTest, ClearOnMissingChunkIsNoop) {
  ValidityMap vm(1024, 64);
  vm.CreateEpoch(0);
  EXPECT_EQ(vm.ClearValid(0, 999), 0u);
  EXPECT_EQ(vm.DistinctChunkCount(), 0u);
}

TEST(ValidityMapTest, ForkSharesChunksUntilWrite) {
  ValidityMap vm(1024, 64);
  vm.CreateEpoch(0);
  vm.SetValid(0, 10);
  vm.SetValid(0, 100);

  EXPECT_EQ(vm.ForkEpoch(1, 0), 0u);  // CoW fork copies nothing.
  EXPECT_TRUE(vm.Test(1, 10));
  EXPECT_TRUE(vm.Test(1, 100));
  EXPECT_EQ(vm.DistinctChunkCount(), 2u);  // Shared.

  // Modifying the child's chunk triggers exactly one chunk copy; the parent's frozen
  // view is untouched (the Fig 5 scenario).
  const uint64_t cow = vm.ClearValid(1, 10);
  EXPECT_EQ(cow, 64 / 8u);
  EXPECT_FALSE(vm.Test(1, 10));
  EXPECT_TRUE(vm.Test(0, 10));
  EXPECT_EQ(vm.DistinctChunkCount(), 3u);
  EXPECT_EQ(vm.stats().cow_chunk_copies, 1u);

  // Second write to the same chunk in the same epoch: no further copy.
  EXPECT_EQ(vm.SetValid(1, 11), 0u);
  EXPECT_EQ(vm.stats().cow_chunk_copies, 1u);
}

TEST(ValidityMapTest, NaiveModeCopiesEverythingAtFork) {
  ValidityMap vm(4096, 64, /*naive_full_copy=*/true);
  vm.CreateEpoch(0);
  for (uint64_t p = 0; p < 4096; p += 64) {
    vm.SetValid(0, p);
  }
  const uint64_t copied = vm.ForkEpoch(1, 0);
  EXPECT_EQ(copied, 64u * (64 / 8));  // 64 chunks x 8 bytes.
  EXPECT_EQ(vm.DistinctChunkCount(), 128u);
}

TEST(ValidityMapTest, DroppedEpochLeavesSharedChunksIntact) {
  ValidityMap vm(1024, 64);
  vm.CreateEpoch(0);
  vm.SetValid(0, 7);
  vm.ForkEpoch(1, 0);
  vm.DropEpoch(0);
  EXPECT_FALSE(vm.HasEpoch(0));
  EXPECT_TRUE(vm.Test(1, 7));
  // The surviving epoch now owns the chunk exclusively: mutation needs no copy.
  EXPECT_EQ(vm.ClearValid(1, 7), 0u);
  EXPECT_EQ(vm.stats().cow_chunk_copies, 0u);
}

TEST(ValidityMapTest, MergedRangeOrsEpochs) {
  ValidityMap vm(1024, 64);
  vm.CreateEpoch(0);
  vm.SetValid(0, 1);
  vm.ForkEpoch(1, 0);
  vm.ClearValid(1, 1);
  vm.SetValid(1, 2);

  const Bitmap merged = vm.MergedRange({0, 1}, 0, 64);
  EXPECT_TRUE(merged.Test(1));  // Valid in epoch 0 (snapshot).
  EXPECT_TRUE(merged.Test(2));  // Valid in epoch 1 (active).
  EXPECT_EQ(merged.CountOnes(), 2u);

  // A deleted (missing) epoch silently drops out of the merge — Fig 6C.
  const Bitmap merged2 = vm.MergedRange({0, 1, 99}, 0, 64);
  EXPECT_EQ(merged2.CountOnes(), 2u);

  EXPECT_EQ(vm.CountValidInRange({0, 1}, 0, 64), 2u);
  EXPECT_EQ(vm.CountValidInRange(1u, 0, 64), 1u);
}

TEST(ValidityMapTest, MergedRangeUnalignedWindow) {
  ValidityMap vm(1024, 64);
  vm.CreateEpoch(0);
  vm.SetValid(0, 63);
  vm.SetValid(0, 64);
  vm.SetValid(0, 200);
  const Bitmap merged = vm.MergedRange({0}, 60, 130);
  EXPECT_TRUE(merged.Test(63 - 60));
  EXPECT_TRUE(merged.Test(64 - 60));
  EXPECT_EQ(merged.CountOnes(), 2u);
}

TEST(ValidityMapTest, TestAnyAcrossEpochs) {
  ValidityMap vm(1024, 64);
  vm.CreateEpoch(0);
  vm.SetValid(0, 5);
  vm.ForkEpoch(1, 0);
  vm.ClearValid(1, 5);
  EXPECT_TRUE(vm.TestAny({0, 1}, 5));
  EXPECT_FALSE(vm.TestAny({1}, 5));
  EXPECT_FALSE(vm.TestAny({42}, 5));  // Unknown epoch.
}

TEST(ValidityMapTest, MoveBitUpdatesEveryReferencingEpoch) {
  ValidityMap vm(1024, 64);
  vm.CreateEpoch(0);
  vm.SetValid(0, 30);
  vm.ForkEpoch(1, 0);
  vm.ForkEpoch(2, 1);
  vm.ClearValid(2, 30);  // Epoch 2 no longer references page 30.

  vm.MoveBit({0, 1, 2}, 30, 500);
  EXPECT_FALSE(vm.Test(0, 30));
  EXPECT_TRUE(vm.Test(0, 500));
  EXPECT_FALSE(vm.Test(1, 30));
  EXPECT_TRUE(vm.Test(1, 500));
  EXPECT_FALSE(vm.Test(2, 30));
  EXPECT_FALSE(vm.Test(2, 500));  // Was not referencing: stays clear.
}

TEST(ValidityMapTest, ForEachValidVisitsAscending) {
  ValidityMap vm(4096, 64);
  vm.CreateEpoch(0);
  const std::vector<uint64_t> pages = {3, 64, 65, 1000, 4000};
  for (uint64_t p : pages) {
    vm.SetValid(0, p);
  }
  std::vector<uint64_t> seen;
  vm.ForEachValid(0, [&seen](uint64_t p) { seen.push_back(p); });
  EXPECT_EQ(seen, pages);
}

TEST(ValidityMapTest, CowForksFarCheaperThanNaiveCopies) {
  // The §5.4.1 memory argument: dormant snapshots must not multiply bitmap memory.
  // Non-diverging CoW forks add only per-epoch chunk *references*; naive forks add full
  // chunk copies.
  auto fork_cost = [](bool naive) {
    ValidityMap vm(1 << 20, 4096, naive);
    vm.CreateEpoch(0);
    for (uint64_t p = 0; p < (1 << 20); p += 4096) {
      vm.SetValid(0, p);
    }
    const size_t base = vm.MemoryBytes();
    for (uint32_t e = 1; e <= 10; ++e) {
      vm.ForkEpoch(e, e - 1);
    }
    return vm.MemoryBytes() - base;
  };
  const size_t cow_growth = fork_cost(false);
  const size_t naive_growth = fork_cost(true);
  EXPECT_LT(cow_growth * 3, naive_growth);
}

TEST(ValidityMapTest, RandomizedTwoEpochSemantics) {
  // Active epoch diverges from a frozen snapshot; both views must match brute-force sets.
  ValidityMap vm(512, 32);
  vm.CreateEpoch(0);
  Rng rng(77);
  std::vector<bool> frozen(512, false);
  for (int i = 0; i < 300; ++i) {
    const uint64_t p = rng.NextBelow(512);
    if (rng.NextBool(0.7)) {
      vm.SetValid(0, p);
      frozen[p] = true;
    } else {
      vm.ClearValid(0, p);
      frozen[p] = false;
    }
  }
  vm.ForkEpoch(1, 0);
  std::vector<bool> active = frozen;
  for (int i = 0; i < 300; ++i) {
    const uint64_t p = rng.NextBelow(512);
    if (rng.NextBool(0.5)) {
      vm.SetValid(1, p);
      active[p] = true;
    } else {
      vm.ClearValid(1, p);
      active[p] = false;
    }
  }
  for (uint64_t p = 0; p < 512; ++p) {
    EXPECT_EQ(vm.Test(0, p), frozen[p]) << "frozen page " << p;
    EXPECT_EQ(vm.Test(1, p), active[p]) << "active page " << p;
  }
}

}  // namespace
}  // namespace iosnap
