#include "src/ftl/log_manager.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace iosnap {
namespace {

NandConfig TestNand() {
  NandConfig config;
  config.page_size_bytes = 512;
  config.pages_per_segment = 4;
  config.num_segments = 6;
  config.num_channels = 2;
  return config;
}

PageHeader DataHeader(uint64_t lba, uint32_t epoch, uint64_t seq) {
  PageHeader h;
  h.type = RecordType::kData;
  h.lba = lba;
  h.epoch = epoch;
  h.seq = seq;
  return h;
}

TEST(LogManagerTest, AppendsFillSegmentsInOrder) {
  NandDevice dev(TestNand());
  LogManager log(&dev, /*gc_reserve_segments=*/1);
  uint64_t seq = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(AppendResult r,
                         log.Append(LogManager::kActiveHead, DataHeader(i, 0, seq++), {}, 0));
    EXPECT_EQ(r.paddr, i);  // Segments 0 then 1, sequential pages.
  }
  EXPECT_EQ(log.segment_info(0).state, SegmentState::kClosed);
  EXPECT_EQ(log.segment_info(1).state, SegmentState::kClosed);
  EXPECT_EQ(log.FreeSegmentCount(), 4u);
}

TEST(LogManagerTest, FactoryFreshSegmentsNeedNoErase) {
  NandDevice dev(TestNand());
  LogManager log(&dev, 1);
  ASSERT_OK_AND_ASSIGN(AppendResult r,
                       log.Append(LogManager::kActiveHead, DataHeader(0, 0, 0), {}, 0));
  // NAND ships erased: the first append pays only bus + program, no 2 ms erase.
  EXPECT_LT(r.op.finish_ns, dev.config().erase_ns);
  EXPECT_EQ(dev.stats().segments_erased, 0u);
}

TEST(LogManagerTest, ReservePreventsActiveHeadFromStarvingGc) {
  NandDevice dev(TestNand());
  LogManager log(&dev, /*gc_reserve_segments=*/2);
  uint64_t seq = 0;
  // 6 segments, reserve 2: the active head may consume 4 segments = 16 pages.
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_OK(
        log.Append(LogManager::kActiveHead, DataHeader(i, 0, seq++), {}, 0).status());
  }
  EXPECT_FALSE(log.CanAppend(LogManager::kActiveHead));
  auto blocked = log.Append(LogManager::kActiveHead, DataHeader(99, 0, seq++), {}, 0);
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceExhausted);

  // The GC head still can.
  EXPECT_TRUE(log.CanAppend(LogManager::kGcHead));
  ASSERT_OK(log.Append(LogManager::kGcHead, DataHeader(99, 0, seq++), {}, 0).status());
}

TEST(LogManagerTest, HeadsUseDistinctSegments) {
  NandDevice dev(TestNand());
  LogManager log(&dev, 1);
  ASSERT_OK_AND_ASSIGN(AppendResult a,
                       log.Append(LogManager::kActiveHead, DataHeader(1, 0, 0), {}, 0));
  ASSERT_OK_AND_ASSIGN(AppendResult b,
                       log.Append(LogManager::kGcHead, DataHeader(2, 0, 1), {}, 0));
  EXPECT_NE(dev.SegmentOf(a.paddr), dev.SegmentOf(b.paddr));
}

TEST(LogManagerTest, ReleaseSegmentReturnsToFreePool) {
  NandDevice dev(TestNand());
  LogManager log(&dev, 1);
  uint64_t seq = 0;
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_OK(
        log.Append(LogManager::kActiveHead, DataHeader(i, 0, seq++), {}, 0).status());
  }
  ASSERT_EQ(log.ClosedSegments().size(), 1u);
  const uint64_t free_before = log.FreeSegmentCount();
  ASSERT_OK(log.ReleaseSegment(0, 0).status());
  EXPECT_EQ(log.FreeSegmentCount(), free_before + 1);
  EXPECT_EQ(log.segment_info(0).state, SegmentState::kFree);
  EXPECT_TRUE(log.ClosedSegments().empty());
  // The release itself carried the erase: the pool segment is immediately programmable.
  EXPECT_EQ(dev.EraseCount(0), 1u);
}

TEST(LogManagerTest, ReleaseRejectsOpenSegment) {
  NandDevice dev(TestNand());
  LogManager log(&dev, 1);
  ASSERT_OK(log.Append(LogManager::kActiveHead, DataHeader(0, 0, 0), {}, 0).status());
  const uint64_t open_seg = *log.OpenSegment(LogManager::kActiveHead);
  EXPECT_EQ(log.ReleaseSegment(open_seg, 0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LogManagerTest, EpochAccountingPerSegment) {
  NandDevice dev(TestNand());
  LogManager log(&dev, 1);
  ASSERT_OK(log.Append(LogManager::kActiveHead, DataHeader(0, 3, 10), {}, 0).status());
  ASSERT_OK(log.Append(LogManager::kActiveHead, DataHeader(1, 3, 11), {}, 0).status());
  ASSERT_OK(log.Append(LogManager::kActiveHead, DataHeader(2, 4, 12), {}, 0).status());
  const SegmentInfo& info = log.segment_info(0);
  EXPECT_EQ(info.epoch_pages.at(3), 2u);
  EXPECT_EQ(info.epoch_pages.at(4), 1u);
  EXPECT_EQ(info.min_seq, 10u);
}

TEST(LogManagerTest, ActiveHeadFreePagesAccounting) {
  NandDevice dev(TestNand());
  LogManager log(&dev, /*gc_reserve_segments=*/2);
  // 4 usable segments x 4 pages = 16.
  EXPECT_EQ(log.ActiveHeadFreePages(), 16u);
  ASSERT_OK(log.Append(LogManager::kActiveHead, DataHeader(0, 0, 0), {}, 0).status());
  EXPECT_EQ(log.ActiveHeadFreePages(), 15u);
}

TEST(LogManagerTest, RebuildFromDeviceClassifiesSegments) {
  NandDevice dev(TestNand());
  {
    LogManager log(&dev, 1);
    uint64_t seq = 0;
    for (uint64_t i = 0; i < 6; ++i) {  // Fill segment 0, half of segment 1.
      ASSERT_OK(
          log.Append(LogManager::kActiveHead, DataHeader(i, 2, seq++), {}, 0).status());
    }
  }
  // "Crash": build a fresh manager over the same device.
  LogManager log(&dev, 1);
  log.RebuildFromDevice();
  EXPECT_EQ(log.segment_info(0).state, SegmentState::kClosed);
  EXPECT_EQ(log.segment_info(1).state, SegmentState::kOpen);
  EXPECT_EQ(*log.OpenSegment(LogManager::kActiveHead), 1u);
  EXPECT_EQ(log.segment_info(2).state, SegmentState::kFree);
  EXPECT_EQ(log.FreeSegmentCount(), 4u);

  // Appends continue into the partially written segment.
  ASSERT_OK_AND_ASSIGN(AppendResult r,
                       log.Append(LogManager::kActiveHead, DataHeader(9, 2, 100), {}, 0));
  EXPECT_EQ(r.paddr, 6u);

  log.RestoreAccounting(0, 2, 0);
  EXPECT_EQ(log.segment_info(0).epoch_pages.at(2), 1u);
}

}  // namespace
}  // namespace iosnap
