// ShardedMap: the LBA-range-sharded forward map must be observably identical to a
// single BPlusTree — same InsertBatch results (new-key count, per-entry old_values),
// same sorted contents, same lookups — for any shard count and with or without a
// WorkerPool, and its per-shard memory accounting must sum to the facade total.

#include "src/ftl/sharded_map.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/worker_pool.h"
#include "src/ftl/btree.h"

namespace iosnap {
namespace {

constexpr uint64_t kKeySpan = 4096;

std::vector<std::pair<uint64_t, uint64_t>> RandomBatch(Rng* rng, size_t n,
                                                       uint64_t key_span) {
  std::vector<std::pair<uint64_t, uint64_t>> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // ~25% duplicate pressure within the span keeps the overwrite path hot.
    batch.emplace_back(rng->Next() % key_span, rng->Next());
  }
  return batch;
}

TEST(ShardedMapTest, DefaultConstructionIsOneUnboundedShard) {
  ShardedMap map;
  EXPECT_EQ(map.ShardCount(), 1u);
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.Insert(0, 1));
  EXPECT_TRUE(map.Insert(~uint64_t{0}, 2));  // Any key routes to the only shard.
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.Lookup(~uint64_t{0}), std::optional<uint64_t>(2));
  EXPECT_TRUE(map.CheckInvariants());
}

TEST(ShardedMapTest, RoutingPartitionsTheKeySpaceInOrder) {
  ShardedMap map;
  map.Configure(4, kKeySpan, nullptr);
  EXPECT_EQ(map.ShardCount(), 4u);
  EXPECT_EQ(map.KeysPerShard(), kKeySpan / 4);
  for (uint64_t key = 0; key < kKeySpan; key += 17) {
    map.Insert(key, key + 1);
  }
  // Each shard holds exactly the keys of its contiguous range; CheckInvariants
  // verifies the routing, and the entry counts confirm a non-degenerate spread.
  EXPECT_TRUE(map.CheckInvariants());
  size_t total = 0;
  for (uint32_t s = 0; s < map.ShardCount(); ++s) {
    EXPECT_GT(map.ShardEntryCount(s), 0u) << "shard " << s;
    total += map.ShardEntryCount(s);
  }
  EXPECT_EQ(total, map.size());
  // Keys past the span clamp into the last shard rather than indexing out of range.
  map.Insert(kKeySpan + 100, 7);
  EXPECT_EQ(map.Lookup(kKeySpan + 100), std::optional<uint64_t>(7));
  EXPECT_TRUE(map.CheckInvariants());
}

TEST(ShardedMapTest, ForEachEmergesGloballySorted) {
  ShardedMap map;
  map.Configure(8, kKeySpan, nullptr);
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    map.Insert(rng.Next() % kKeySpan, i);
  }
  std::vector<uint64_t> keys;
  map.ForEach([&](uint64_t key, uint64_t) { keys.push_back(key); });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), map.size());
  EXPECT_EQ(map.ToSortedVector().size(), map.size());
}

// The central contract: for every shard count, InsertBatch returns the same new-key
// count and the same per-entry old_values as the reference single tree, and the final
// contents match exactly. Duplicates within a batch must chain in submission order.
TEST(ShardedMapTest, InsertBatchMatchesSingleTreeForEveryShardCount) {
  for (uint32_t shards : {1u, 2u, 4u, 7u, 16u}) {
    BPlusTree reference;
    ShardedMap map;
    map.Configure(shards, kKeySpan, nullptr);
    Rng rng(2014 + shards);
    for (int round = 0; round < 20; ++round) {
      const auto batch = RandomBatch(&rng, 200, kKeySpan);
      std::vector<std::optional<uint64_t>> ref_old;
      std::vector<std::optional<uint64_t>> map_old;
      const size_t ref_new = reference.InsertBatch(batch, &ref_old);
      const size_t map_new = map.InsertBatch(batch, &map_old);
      ASSERT_EQ(map_new, ref_new) << "shards=" << shards << " round=" << round;
      ASSERT_EQ(map_old, ref_old) << "shards=" << shards << " round=" << round;
      // A few point erases so later rounds see re-insertions.
      for (int e = 0; e < 10; ++e) {
        const uint64_t key = rng.Next() % kKeySpan;
        ASSERT_EQ(map.Erase(key), reference.Erase(key));
      }
    }
    ASSERT_EQ(map.size(), reference.size());
    ASSERT_EQ(map.ToSortedVector(), reference.ToSortedVector());
    ASSERT_TRUE(map.CheckInvariants());
  }
}

// Same contract with a live WorkerPool: the thread schedule must not change any
// result. Repeat a few times to shake races out under TSan.
TEST(ShardedMapTest, ParallelInsertBatchIsScheduleIndependent) {
  WorkerPool pool(4);
  for (int attempt = 0; attempt < 5; ++attempt) {
    BPlusTree reference;
    ShardedMap map;
    map.Configure(8, kKeySpan, &pool);
    Rng rng(99 + attempt);
    for (int round = 0; round < 10; ++round) {
      const auto batch = RandomBatch(&rng, 400, kKeySpan);
      std::vector<std::optional<uint64_t>> ref_old;
      std::vector<std::optional<uint64_t>> map_old;
      const size_t ref_new = reference.InsertBatch(batch, &ref_old);
      const size_t map_new = map.InsertBatch(batch, &map_old);
      ASSERT_EQ(map_new, ref_new);
      ASSERT_EQ(map_old, ref_old);
    }
    ASSERT_EQ(map.ToSortedVector(), reference.ToSortedVector());
    ASSERT_TRUE(map.CheckInvariants());
  }
}

TEST(ShardedMapTest, BulkLoadReplaceKeepsPartitioningAndContents) {
  ShardedMap map;
  map.Configure(4, kKeySpan, nullptr);
  map.Insert(1, 1);  // Pre-existing contents must be replaced.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (uint64_t key = 0; key < kKeySpan; key += 3) {
    pairs.emplace_back(key, key * 2);
  }
  map.BulkLoadReplace(pairs);
  EXPECT_EQ(map.size(), pairs.size());
  EXPECT_EQ(map.ToSortedVector(), pairs);
  EXPECT_EQ(map.Lookup(1), std::nullopt);
  EXPECT_EQ(map.ShardCount(), 4u);  // Partitioning survives the reload.
  EXPECT_TRUE(map.CheckInvariants());
  size_t total = 0;
  for (uint32_t s = 0; s < map.ShardCount(); ++s) {
    total += map.ShardEntryCount(s);
  }
  EXPECT_EQ(total, pairs.size());
}

// Table 3 accounting: the facade's MemoryBytes must be exactly the sum of the
// per-shard footprints, and node counts must aggregate the same way.
TEST(ShardedMapTest, MemoryBytesIsTheSumOfShardFootprints) {
  ShardedMap map;
  map.Configure(4, kKeySpan, nullptr);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    map.Insert(rng.Next() % kKeySpan, i);
  }
  size_t shard_sum = 0;
  for (uint32_t s = 0; s < map.ShardCount(); ++s) {
    shard_sum += map.ShardMemoryBytes(s);
  }
  EXPECT_EQ(map.MemoryBytes(), shard_sum);
  EXPECT_GT(map.MemoryBytes(), 0u);
  EXPECT_EQ(map.NodeCount(), map.LeafNodeCount() + map.InternalNodeCount());

  // An equally loaded single-shard map reports the same totals as a bare tree.
  ShardedMap single;
  BPlusTree tree;
  for (uint64_t key = 0; key < 512; ++key) {
    single.Insert(key, key);
    tree.Insert(key, key);
  }
  EXPECT_EQ(single.MemoryBytes(), tree.MemoryBytes());
  EXPECT_EQ(single.LeafNodeCount(), tree.LeafNodeCount());
  EXPECT_EQ(single.InternalNodeCount(), tree.InternalNodeCount());
}

TEST(ShardedMapTest, ClearEmptiesEveryShard) {
  ShardedMap map;
  map.Configure(4, kKeySpan, nullptr);
  for (uint64_t key = 0; key < kKeySpan; key += 5) {
    map.Insert(key, key);
  }
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  for (uint32_t s = 0; s < map.ShardCount(); ++s) {
    EXPECT_EQ(map.ShardEntryCount(s), 0u);
  }
  // Reusable after Clear.
  EXPECT_TRUE(map.Insert(10, 1));
  EXPECT_EQ(map.Lookup(10), std::optional<uint64_t>(1));
}

}  // namespace
}  // namespace iosnap
