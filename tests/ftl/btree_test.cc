#include "src/ftl/btree.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace iosnap {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Lookup(5).has_value());
  EXPECT_EQ(tree.LeafNodeCount(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert(10, 100));
  EXPECT_TRUE(tree.Insert(20, 200));
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Lookup(10).value(), 100u);
  EXPECT_EQ(tree.Lookup(20).value(), 200u);
  EXPECT_EQ(tree.Lookup(5).value(), 50u);
  EXPECT_FALSE(tree.Lookup(15).has_value());
}

TEST(BPlusTreeTest, OverwriteReplacesInPlace) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert(7, 70));
  EXPECT_FALSE(tree.Insert(7, 71));  // Not a new key.
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Lookup(7).value(), 71u);
}

TEST(BPlusTreeTest, SplitsKeepOrder) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 1000; ++i) {
    tree.Insert(i, i * 10);
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(tree.Lookup(i).value(), i * 10) << i;
  }
}

TEST(BPlusTreeTest, ReverseAndZigZagInserts) {
  BPlusTree tree;
  for (uint64_t i = 1000; i-- > 0;) {
    tree.Insert(i, i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  BPlusTree zigzag;
  for (uint64_t i = 0; i < 500; ++i) {
    zigzag.Insert(i, i);
    zigzag.Insert(10000 - i, i);
  }
  EXPECT_TRUE(zigzag.CheckInvariants());
  EXPECT_EQ(zigzag.size(), 1000u);
}

TEST(BPlusTreeTest, EraseRemovesKeys) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 200; ++i) {
    tree.Insert(i, i);
  }
  for (uint64_t i = 0; i < 200; i += 2) {
    EXPECT_TRUE(tree.Erase(i));
  }
  EXPECT_FALSE(tree.Erase(0));  // Already gone.
  EXPECT_EQ(tree.size(), 100u);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(tree.Lookup(i).has_value(), i % 2 == 1);
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, ForEachVisitsInOrder) {
  BPlusTree tree;
  Rng rng(1);
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = rng.NextBelow(100000);
    ref[k] = static_cast<uint64_t>(i);
    tree.Insert(k, static_cast<uint64_t>(i));
  }
  auto it = ref.begin();
  tree.ForEach([&](uint64_t k, uint64_t v) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, ref.end());
}

TEST(BPlusTreeTest, BulkLoadMatchesContents) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (uint64_t i = 0; i < 5000; ++i) {
    pairs.emplace_back(i * 3, i);
  }
  BPlusTree tree = BPlusTree::BulkLoad(pairs);
  EXPECT_EQ(tree.size(), pairs.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (const auto& [k, v] : pairs) {
    ASSERT_EQ(tree.Lookup(k).value(), v);
  }
  EXPECT_FALSE(tree.Lookup(1).has_value());
}

TEST(BPlusTreeTest, BulkLoadEmptyAndSingle) {
  BPlusTree empty = BPlusTree::BulkLoad({});
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.CheckInvariants());
  BPlusTree one = BPlusTree::BulkLoad({{9, 90}});
  EXPECT_EQ(one.Lookup(9).value(), 90u);
  EXPECT_TRUE(one.CheckInvariants());
}

TEST(BPlusTreeTest, BulkLoadIsMoreCompactThanRandomInserts) {
  // The Table 3 effect: an organically grown tree is fragmented; a bulk-loaded tree with
  // identical content packs its nodes full.
  Rng rng(2);
  BPlusTree grown;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.NextBelow(1u << 30);
    ref[k] = k + 1;
    grown.Insert(k, k + 1);
  }
  pairs.assign(ref.begin(), ref.end());
  BPlusTree packed = BPlusTree::BulkLoad(pairs);
  EXPECT_EQ(packed.size(), grown.size());
  EXPECT_LT(packed.MemoryBytes(), grown.MemoryBytes());
  EXPECT_TRUE(packed.CheckInvariants());
}

TEST(BPlusTreeTest, RandomizedAgainstStdMap) {
  Rng rng(3);
  BPlusTree tree;
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t k = rng.NextBelow(5000);
    const int action = static_cast<int>(rng.NextBelow(3));
    if (action == 0) {
      const bool inserted = tree.Insert(k, static_cast<uint64_t>(i));
      EXPECT_EQ(inserted, !ref.contains(k));
      ref[k] = static_cast<uint64_t>(i);
    } else if (action == 1) {
      EXPECT_EQ(tree.Erase(k), ref.erase(k) > 0);
    } else {
      const auto got = tree.Lookup(k);
      const auto it = ref.find(k);
      EXPECT_EQ(got.has_value(), it != ref.end());
      if (got.has_value() && it != ref.end()) {
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(tree.size(), ref.size());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, MoveTransfersOwnership) {
  BPlusTree a;
  a.Insert(1, 10);
  BPlusTree b = std::move(a);
  EXPECT_EQ(b.Lookup(1).value(), 10u);
  BPlusTree c;
  c = std::move(b);
  EXPECT_EQ(c.Lookup(1).value(), 10u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(BPlusTreeTest, BoundaryKeys) {
  BPlusTree tree;
  tree.Insert(0, 1);
  tree.Insert(~uint64_t{0}, 2);
  EXPECT_EQ(tree.Lookup(0).value(), 1u);
  EXPECT_EQ(tree.Lookup(~uint64_t{0}).value(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace iosnap
