#include "src/ftl/btree.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace iosnap {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Lookup(5).has_value());
  EXPECT_EQ(tree.LeafNodeCount(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert(10, 100));
  EXPECT_TRUE(tree.Insert(20, 200));
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Lookup(10).value(), 100u);
  EXPECT_EQ(tree.Lookup(20).value(), 200u);
  EXPECT_EQ(tree.Lookup(5).value(), 50u);
  EXPECT_FALSE(tree.Lookup(15).has_value());
}

TEST(BPlusTreeTest, OverwriteReplacesInPlace) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert(7, 70));
  EXPECT_FALSE(tree.Insert(7, 71));  // Not a new key.
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Lookup(7).value(), 71u);
}

TEST(BPlusTreeTest, SplitsKeepOrder) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 1000; ++i) {
    tree.Insert(i, i * 10);
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(tree.Lookup(i).value(), i * 10) << i;
  }
}

TEST(BPlusTreeTest, ReverseAndZigZagInserts) {
  BPlusTree tree;
  for (uint64_t i = 1000; i-- > 0;) {
    tree.Insert(i, i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  BPlusTree zigzag;
  for (uint64_t i = 0; i < 500; ++i) {
    zigzag.Insert(i, i);
    zigzag.Insert(10000 - i, i);
  }
  EXPECT_TRUE(zigzag.CheckInvariants());
  EXPECT_EQ(zigzag.size(), 1000u);
}

TEST(BPlusTreeTest, EraseRemovesKeys) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 200; ++i) {
    tree.Insert(i, i);
  }
  for (uint64_t i = 0; i < 200; i += 2) {
    EXPECT_TRUE(tree.Erase(i));
  }
  EXPECT_FALSE(tree.Erase(0));  // Already gone.
  EXPECT_EQ(tree.size(), 100u);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(tree.Lookup(i).has_value(), i % 2 == 1);
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, ForEachVisitsInOrder) {
  BPlusTree tree;
  Rng rng(1);
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = rng.NextBelow(100000);
    ref[k] = static_cast<uint64_t>(i);
    tree.Insert(k, static_cast<uint64_t>(i));
  }
  auto it = ref.begin();
  tree.ForEach([&](uint64_t k, uint64_t v) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, ref.end());
}

TEST(BPlusTreeTest, BulkLoadMatchesContents) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (uint64_t i = 0; i < 5000; ++i) {
    pairs.emplace_back(i * 3, i);
  }
  BPlusTree tree = BPlusTree::BulkLoad(pairs);
  EXPECT_EQ(tree.size(), pairs.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (const auto& [k, v] : pairs) {
    ASSERT_EQ(tree.Lookup(k).value(), v);
  }
  EXPECT_FALSE(tree.Lookup(1).has_value());
}

TEST(BPlusTreeTest, BulkLoadEmptyAndSingle) {
  BPlusTree empty = BPlusTree::BulkLoad({});
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.CheckInvariants());
  BPlusTree one = BPlusTree::BulkLoad({{9, 90}});
  EXPECT_EQ(one.Lookup(9).value(), 90u);
  EXPECT_TRUE(one.CheckInvariants());
}

TEST(BPlusTreeTest, BulkLoadIsMoreCompactThanRandomInserts) {
  // The Table 3 effect: an organically grown tree is fragmented; a bulk-loaded tree with
  // identical content packs its nodes full.
  Rng rng(2);
  BPlusTree grown;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.NextBelow(1u << 30);
    ref[k] = k + 1;
    grown.Insert(k, k + 1);
  }
  pairs.assign(ref.begin(), ref.end());
  BPlusTree packed = BPlusTree::BulkLoad(pairs);
  EXPECT_EQ(packed.size(), grown.size());
  EXPECT_LT(packed.MemoryBytes(), grown.MemoryBytes());
  EXPECT_TRUE(packed.CheckInvariants());
}

TEST(BPlusTreeTest, RandomizedAgainstStdMap) {
  Rng rng(3);
  BPlusTree tree;
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t k = rng.NextBelow(5000);
    const int action = static_cast<int>(rng.NextBelow(3));
    if (action == 0) {
      const bool inserted = tree.Insert(k, static_cast<uint64_t>(i));
      EXPECT_EQ(inserted, !ref.contains(k));
      ref[k] = static_cast<uint64_t>(i);
    } else if (action == 1) {
      EXPECT_EQ(tree.Erase(k), ref.erase(k) > 0);
    } else {
      const auto got = tree.Lookup(k);
      const auto it = ref.find(k);
      EXPECT_EQ(got.has_value(), it != ref.end());
      if (got.has_value() && it != ref.end()) {
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(tree.size(), ref.size());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, MoveTransfersOwnership) {
  BPlusTree a;
  a.Insert(1, 10);
  BPlusTree b = std::move(a);
  EXPECT_EQ(b.Lookup(1).value(), 10u);
  BPlusTree c;
  c = std::move(b);
  EXPECT_EQ(c.Lookup(1).value(), 10u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(BPlusTreeTest, BoundaryKeys) {
  BPlusTree tree;
  tree.Insert(0, 1);
  tree.Insert(~uint64_t{0}, 2);
  EXPECT_EQ(tree.Lookup(0).value(), 1u);
  EXPECT_EQ(tree.Lookup(~uint64_t{0}).value(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, InsertBatchMatchesScalarInserts) {
  BPlusTree batched;
  BPlusTree scalar;
  std::map<uint64_t, uint64_t> ref;
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    const size_t batch = 1 + rng.Next() % 64;
    std::vector<std::pair<uint64_t, uint64_t>> entries;
    for (size_t i = 0; i < batch; ++i) {
      entries.emplace_back(rng.Next() % 4096, rng.Next());
    }
    std::vector<std::optional<uint64_t>> old_values;
    const size_t fresh = batched.InsertBatch(entries, &old_values);

    size_t scalar_fresh = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      auto it = ref.find(entries[i].first);
      if (it == ref.end()) {
        ++scalar_fresh;
        EXPECT_FALSE(old_values[i].has_value());
      } else {
        ASSERT_TRUE(old_values[i].has_value());
        EXPECT_EQ(*old_values[i], it->second);
      }
      scalar.Insert(entries[i].first, entries[i].second);
      ref[entries[i].first] = entries[i].second;
    }
    ASSERT_EQ(fresh, scalar_fresh);
    ASSERT_EQ(batched.size(), ref.size());
    ASSERT_TRUE(batched.CheckInvariants());
  }
  EXPECT_EQ(batched.ToSortedVector(), scalar.ToSortedVector());
  for (const auto& [key, value] : ref) {
    ASSERT_EQ(batched.Lookup(key).value(), value) << key;
  }
}

TEST(BPlusTreeTest, InsertBatchDuplicateKeysResolveInSubmissionOrder) {
  BPlusTree tree;
  tree.Insert(5, 50);
  std::vector<std::pair<uint64_t, uint64_t>> entries = {
      {5, 51}, {9, 90}, {5, 52}, {9, 91}, {5, 53}};
  std::vector<std::optional<uint64_t>> old_values;
  EXPECT_EQ(tree.InsertBatch(entries, &old_values), 1u);  // Only key 9 is new.
  ASSERT_EQ(old_values.size(), 5u);
  EXPECT_EQ(old_values[0].value(), 50u);  // Pre-batch value.
  EXPECT_FALSE(old_values[1].has_value());
  EXPECT_EQ(old_values[2].value(), 51u);  // Sees the earlier duplicate's write.
  EXPECT_EQ(old_values[3].value(), 90u);
  EXPECT_EQ(old_values[4].value(), 52u);
  EXPECT_EQ(tree.Lookup(5).value(), 53u);
  EXPECT_EQ(tree.Lookup(9).value(), 91u);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BPlusTreeTest, InsertBatchAfterErasesAndClears) {
  // Interleave batches with erases (which leave underfull/empty leaves behind) and
  // Clear() (which recycles the whole arena) to fuzz the freelist and the batch
  // descent over fragmented trees.
  BPlusTree tree;
  std::map<uint64_t, uint64_t> ref;
  Rng rng(11);
  for (int round = 0; round < 120; ++round) {
    const int action = static_cast<int>(rng.Next() % 10);
    if (action < 6) {
      std::vector<std::pair<uint64_t, uint64_t>> entries;
      const size_t batch = 1 + rng.Next() % 96;
      for (size_t i = 0; i < batch; ++i) {
        entries.emplace_back(rng.Next() % 2048, rng.Next());
      }
      tree.InsertBatch(entries);
      for (const auto& [key, value] : entries) {
        ref[key] = value;
      }
    } else if (action < 9) {
      for (int i = 0; i < 40; ++i) {
        const uint64_t key = rng.Next() % 2048;
        EXPECT_EQ(tree.Erase(key), ref.erase(key) > 0);
      }
    } else {
      tree.Clear();
      ref.clear();
    }
    ASSERT_EQ(tree.size(), ref.size());
    ASSERT_TRUE(tree.CheckInvariants());
  }
  const auto pairs = tree.ToSortedVector();
  ASSERT_EQ(pairs.size(), ref.size());
  EXPECT_TRUE(std::equal(pairs.begin(), pairs.end(), ref.begin(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first && a.second == b.second;
                         }));
}

TEST(BPlusTreeTest, InsertBatchEmptyAndSingle) {
  BPlusTree tree;
  std::vector<std::optional<uint64_t>> old_values = {std::nullopt};
  EXPECT_EQ(tree.InsertBatch({}, &old_values), 0u);
  EXPECT_TRUE(old_values.empty());

  const std::vector<std::pair<uint64_t, uint64_t>> one = {{3, 30}};
  EXPECT_EQ(tree.InsertBatch(one), 1u);
  EXPECT_EQ(tree.Lookup(3).value(), 30u);
}

TEST(BPlusTreeTest, ArenaRecyclesFreedNodes) {
  // Fill, erase everything, and refill: the arena's freelist should keep the memory
  // footprint from compounding across generations.
  BPlusTree tree;
  for (uint64_t i = 0; i < 5000; ++i) {
    tree.Insert(i, i);
  }
  const size_t first_bytes = tree.MemoryBytes();
  tree.Clear();
  for (uint64_t i = 0; i < 5000; ++i) {
    tree.Insert(i, i);
  }
  EXPECT_EQ(tree.MemoryBytes(), first_bytes);
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace iosnap
