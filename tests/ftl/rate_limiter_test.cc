#include "src/ftl/rate_limiter.h"

#include <gtest/gtest.h>

namespace iosnap {
namespace {

TEST(RateLimiterTest, RunsImmediatelyAtStart) {
  RateLimiter limiter(RateLimit::Of(50, 250));
  EXPECT_TRUE(limiter.CanRun(0));
}

TEST(RateLimiterTest, SleepWindowBlocksNextBurst) {
  RateLimiter limiter(RateLimit::Of(50, 250));
  limiter.OnBurstComplete(UsToNs(100));
  EXPECT_FALSE(limiter.CanRun(UsToNs(100)));
  EXPECT_FALSE(limiter.CanRun(UsToNs(100) + MsToNs(249)));
  EXPECT_TRUE(limiter.CanRun(UsToNs(100) + MsToNs(250)));
  EXPECT_EQ(limiter.NextAllowedNs(), UsToNs(100) + MsToNs(250));
}

TEST(RateLimiterTest, UnlimitedHasNoSleep) {
  RateLimiter limiter(RateLimit::Unlimited());
  limiter.OnBurstComplete(12345);
  EXPECT_TRUE(limiter.CanRun(12345));
}

TEST(RateLimiterTest, OfMatchesPaperNotation) {
  // "50usec/250msec": 50 usec of work per 250 msec sleep (Fig 9b).
  const RateLimit limit = RateLimit::Of(50, 250);
  EXPECT_EQ(limit.work_quantum_ns, UsToNs(50));
  EXPECT_EQ(limit.sleep_ns, MsToNs(250));
}

TEST(RateLimiterTest, ResetReopensWindow) {
  RateLimiter limiter(RateLimit::Of(1, 1000));
  limiter.OnBurstComplete(SecToNs(5));
  EXPECT_FALSE(limiter.CanRun(SecToNs(5)));
  limiter.Reset();
  EXPECT_TRUE(limiter.CanRun(0));
}

}  // namespace
}  // namespace iosnap
