#include "src/obs/latency.h"

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/metrics_sampler.h"

namespace iosnap {
namespace {

LatencySpans MakeSpans(uint64_t queue_wait, uint64_t gc_wait, uint64_t bus,
                       uint64_t cell, uint64_t map, uint64_t cow, uint64_t host_other) {
  LatencySpans spans;
  spans[LatencySpan::kQueueWait] = queue_wait;
  spans[LatencySpan::kGcWait] = gc_wait;
  spans[LatencySpan::kBus] = bus;
  spans[LatencySpan::kCell] = cell;
  spans[LatencySpan::kMap] = map;
  spans[LatencySpan::kCow] = cow;
  spans[LatencySpan::kHostOther] = host_other;
  return spans;
}

TEST(LatencySpanTest, NamesCoverEverySpanAndKind) {
  std::vector<std::string> names;
  for (size_t i = 0; i < kNumLatencySpans; ++i) {
    names.push_back(LatencySpanName(static_cast<LatencySpan>(i)));
  }
  EXPECT_EQ(names, (std::vector<std::string>{"queue_wait", "gc_wait", "bus", "cell",
                                             "map", "cow", "host_other", "rebuild"}));
  EXPECT_STREQ(LatencyOpKindName(LatencyOpKind::kWrite), "write");
  EXPECT_STREQ(LatencyOpKindName(LatencyOpKind::kRead), "read");
  EXPECT_STREQ(LatencyOpKindName(LatencyOpKind::kTrim), "trim");
}

TEST(LatencyAttributorTest, RecordAccumulatesHistogramsAndTotals) {
  LatencyAttributor attributor(16);
  const LatencySpans a = MakeSpans(10, 5, 3, 50, 7, 0, 2);  // 77 total.
  const LatencySpans b = MakeSpans(0, 0, 3, 20, 4, 0, 0);   // 27 total.
  attributor.Record(LatencyOpKind::kWrite, 1, 1000, 1077, a);
  attributor.Record(LatencyOpKind::kRead, 2, 2000, 2027, b);

  EXPECT_EQ(attributor.ops(), 2u);
  EXPECT_EQ(attributor.size(), 2u);
  EXPECT_EQ(attributor.dropped(), 0u);
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kQueueWait), 10u);
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kGcWait), 5u);
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kBus), 6u);
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kCell), 70u);
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kMap), 11u);
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kCow), 0u);
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kHostOther), 2u);
  // Span histograms see every op (zeros included), e2e histograms split by kind.
  EXPECT_EQ(attributor.SpanHistogram(LatencySpan::kCow).count(), 2u);
  EXPECT_EQ(attributor.EndToEndHistogram(LatencyOpKind::kWrite).count(), 1u);
  EXPECT_EQ(attributor.EndToEndHistogram(LatencyOpKind::kWrite).MaxNs(), 77u);
  EXPECT_EQ(attributor.EndToEndHistogram(LatencyOpKind::kRead).MaxNs(), 27u);
  EXPECT_EQ(attributor.EndToEndHistogram(LatencyOpKind::kTrim).count(), 0u);

  const std::vector<SpanRecord> records = attributor.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[0].kind, LatencyOpKind::kWrite);
  EXPECT_EQ(records[0].TotalNs(), 77u);
  EXPECT_EQ(records[0].spans.TotalNs(), 77u);
  EXPECT_EQ(records[1].lba, 2u);
}

TEST(LatencyAttributorTest, RingDropsOldestButKeepsAggregates) {
  LatencyAttributor attributor(4);
  for (uint64_t i = 0; i < 10; ++i) {
    attributor.Record(LatencyOpKind::kWrite, i, i * 100, i * 100 + 7,
                      MakeSpans(0, 0, 0, 7, 0, 0, 0));
  }
  EXPECT_EQ(attributor.ops(), 10u);
  EXPECT_EQ(attributor.size(), 4u);
  EXPECT_EQ(attributor.dropped(), 6u);
  // Aggregates cover all 10 ops, not just the retained ring.
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kCell), 70u);
  EXPECT_EQ(attributor.EndToEndHistogram(LatencyOpKind::kWrite).count(), 10u);
  // The ring unwraps oldest-first: seq 6..9 survive.
  const std::vector<SpanRecord> records = attributor.Records();
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 6 + i);
    EXPECT_EQ(records[i].lba, 6 + i);
  }
}

TEST(LatencyAttributorTest, CsvRowsCarryExactSums) {
  LatencyAttributor attributor(8);
  attributor.Record(LatencyOpKind::kTrim, 42, 500, 577, MakeSpans(10, 5, 3, 50, 7, 0, 2));
  const std::string csv = attributor.ToCsv();
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "seq,kind,lba,issue_ns,complete_ns,total_ns,queue_wait_ns,gc_wait_ns,"
            "bus_ns,cell_ns,map_ns,cow_ns,host_other_ns,rebuild_ns");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "0,trim,42,500,577,77,10,5,3,50,7,0,2,0");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(LatencyAttributorTest, RegisterMetricsExposesSpansAndTotals) {
  LatencyAttributor attributor(8);
  attributor.Record(LatencyOpKind::kWrite, 1, 0, 77, MakeSpans(10, 5, 3, 50, 7, 0, 2));
  MetricsRegistry registry;
  attributor.RegisterMetrics(&registry);
  std::map<std::string, uint64_t> integers;
  for (const MetricsRegistry::Sample& s : registry.Snapshot()) {
    if (s.is_integer) {
      integers[s.name] = s.u64;
    }
  }
  EXPECT_EQ(integers.at("lat.ops"), 1u);
  EXPECT_EQ(integers.at("lat.records_dropped"), 0u);
  EXPECT_EQ(integers.at("lat.span.queue_wait.total_ns"), 10u);
  EXPECT_EQ(integers.at("lat.span.gc_wait.total_ns"), 5u);
  EXPECT_EQ(integers.at("lat.span.cell.count"), 1u);
  EXPECT_EQ(integers.at("lat.span.cell.max_ns"), 50u);
  EXPECT_EQ(integers.at("lat.e2e.write.count"), 1u);
  EXPECT_EQ(integers.at("lat.e2e.write.max_ns"), 77u);
  EXPECT_EQ(integers.at("lat.e2e.read.count"), 0u);
}

TEST(LatencyAttributorTest, ClearResets) {
  LatencyAttributor attributor(4);
  attributor.Record(LatencyOpKind::kWrite, 1, 0, 10, MakeSpans(0, 0, 0, 10, 0, 0, 0));
  attributor.Clear();
  EXPECT_EQ(attributor.ops(), 0u);
  EXPECT_EQ(attributor.size(), 0u);
  EXPECT_EQ(attributor.SpanTotalNs(LatencySpan::kCell), 0u);
  EXPECT_EQ(attributor.EndToEndHistogram(LatencyOpKind::kWrite).count(), 0u);
  EXPECT_TRUE(attributor.Records().empty());
}

TEST(MetricsSamplerTest, SamplesOnIntervalBoundaries) {
  uint64_t counter = 0;
  MetricsRegistry registry;
  registry.RegisterCounter("test.counter", &counter);
  MetricsSampler sampler(&registry, 100);

  counter = 1;
  sampler.MaybeSample(50);  // First call always samples; next due at 150.
  counter = 2;
  sampler.MaybeSample(149);  // Too soon.
  sampler.MaybeSample(150);  // Samples; next due at 250.
  counter = 3;
  sampler.MaybeSample(200);  // Too soon.
  sampler.MaybeSample(700);  // Samples (idle gap produces no fabricated rows).
  EXPECT_EQ(sampler.samples(), 3u);

  std::istringstream in(sampler.ToCsv());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "t_ns,test.counter");
  std::vector<std::string> rows;
  while (std::getline(in, line)) {
    rows.push_back(line);
  }
  EXPECT_EQ(rows, (std::vector<std::string>{"50,1", "150,2", "700,3"}));
}

TEST(MetricsSamplerTest, WideCsvCoversHistogramColumns) {
  LatencyHistogram hist;
  hist.Add(1000);
  MetricsRegistry registry;
  registry.RegisterHistogram("lat", &hist);
  MetricsSampler sampler(&registry, 10);
  sampler.MaybeSample(5);
  const std::string csv = sampler.ToCsv();
  EXPECT_NE(csv.find("lat.count"), std::string::npos);
  EXPECT_NE(csv.find("lat.p999_ns"), std::string::npos);
  EXPECT_NE(csv.find("lat.max_ns"), std::string::npos);
}

}  // namespace
}  // namespace iosnap
