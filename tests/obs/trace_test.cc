#include "src/obs/trace.h"

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/sim_clock.h"
#include "src/core/ftl.h"
#include "src/obs/trace_export.h"
#include "src/workload/runner.h"
#include "src/workload/workload.h"

namespace iosnap {
namespace {

// Minimal JSON syntax validator — enough to catch unbalanced structure, bad string
// escaping, and trailing commas in the exporter output without a JSON dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing '"'
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) {
      return false;
    }
    pos_ += w.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TraceRecorderTest, RecordsInOrder) {
  TraceRecorder trace(16);
  trace.Record(TraceEventType::kUserWrite, 100, 200, 7);
  trace.Record(TraceEventType::kUserRead, 300, 400, 9);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.total_recorded(), 2u);
  EXPECT_EQ(trace.dropped(), 0u);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kUserWrite);
  EXPECT_EQ(events[0].start_ns, 100u);
  EXPECT_EQ(events[0].end_ns, 200u);
  EXPECT_EQ(events[0].arg0, 7u);
  EXPECT_EQ(events[1].type, TraceEventType::kUserRead);
  EXPECT_EQ(trace.CountType(TraceEventType::kUserWrite), 1u);
  EXPECT_EQ(trace.CountType(TraceEventType::kGcCopyForward), 0u);
}

TEST(TraceRecorderTest, RingWraparoundKeepsNewest) {
  TraceRecorder trace(8);
  for (uint64_t i = 0; i < 20; ++i) {
    trace.Record(TraceEventType::kUserWrite, i, i, i);
  }
  EXPECT_EQ(trace.capacity(), 8u);
  EXPECT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace.total_recorded(), 20u);
  EXPECT_EQ(trace.dropped(), 12u);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first unwrap: events 12..19 survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, 12 + i);
  }
}

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder trace(8);
  trace.set_enabled(false);
  trace.Record(TraceEventType::kUserWrite, 1, 2);
  EXPECT_EQ(trace.size(), 0u);
  trace.set_enabled(true);
  trace.Record(TraceEventType::kUserWrite, 1, 2);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceRecorderTest, ClearResets) {
  TraceRecorder trace(4);
  for (int i = 0; i < 6; ++i) {
    trace.Record(TraceEventType::kNandErase, 1, 2);
  }
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_TRUE(trace.Events().empty());
}

TEST(TraceExportTest, EveryTypeHasInfo) {
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    const TraceEventInfo& info = TraceEventInfoFor(static_cast<TraceEventType>(i));
    EXPECT_NE(info.name, nullptr);
    EXPECT_STRNE(info.name, "");
    EXPECT_NE(info.category, nullptr);
  }
}

// Runtime mirror of the consteval EventInfoTableInSync() proof in trace_export.cc:
// every enumerator's entry self-identifies (catches reordered rows), names are unique
// (catches copy-paste duplicates, which the compile-time check can't see), and arg
// labels are contiguous.
TEST(TraceExportTest, EventInfoTableMatchesEnum) {
  std::set<std::string> names;
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    const TraceEventType type = static_cast<TraceEventType>(i);
    const TraceEventInfo& info = TraceEventInfoFor(type);
    EXPECT_EQ(info.type, type) << "entry " << i << " (" << info.name
                               << ") is out of order";
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate name " << info.name;
    bool ended = false;
    for (int a = 0; a < 3; ++a) {
      if (info.arg_names[a] == nullptr) {
        ended = true;
      } else {
        EXPECT_FALSE(ended) << info.name << ": hole in arg labels at " << a;
        EXPECT_STRNE(info.arg_names[a], "");
      }
    }
  }
}

// Downstream tooling (trace greps, dashboards) keys on these exact strings; the
// generic table-sync checks above cannot catch a silent rename.
TEST(TraceExportTest, MediaReliabilityEventNamesArePinned) {
  EXPECT_STREQ(TraceEventInfoFor(TraceEventType::kPatrolRewrite).name,
               "patrol_rewrite");
  EXPECT_STREQ(TraceEventInfoFor(TraceEventType::kPatrolDrop).name, "patrol_drop");
  EXPECT_STREQ(TraceEventInfoFor(TraceEventType::kDegradedEnter).name,
               "degraded_enter");
  EXPECT_STREQ(TraceEventInfoFor(TraceEventType::kDegradedExit).name,
               "degraded_exit");
}

// Same pin for the parity/rebuild events added with parity-protected segments.
TEST(TraceExportTest, ParityRebuildEventNamesArePinned) {
  EXPECT_STREQ(TraceEventInfoFor(TraceEventType::kParityWrite).name, "parity_write");
  EXPECT_STREQ(TraceEventInfoFor(TraceEventType::kPageRebuilt).name, "page_rebuilt");
  EXPECT_STREQ(TraceEventInfoFor(TraceEventType::kRebuildFailed).name,
               "rebuild_failed");
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("has space"), "has space");
  EXPECT_EQ(CsvEscape("a;b"), "a;b");  // Sub-separator needs no framing quote.
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(CsvEscape(""), "");
}

// RFC 4180 field splitter for the round-trip check below.
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

// The multi-queue events are the analyzer's join targets: their CSV rows must parse
// back to exactly the recorded values, arg labels included, through a standard
// RFC 4180 reader.
TEST(TraceExportTest, CsvRoundTripsQueueEvents) {
  TraceRecorder trace(8);
  trace.Record(TraceEventType::kQueueSubmit, 1000, 1000, /*queue=*/3, /*ops=*/32,
               /*submission_id=*/41);
  trace.Record(TraceEventType::kQueueFlush, 2000, 2500, /*pending_ops=*/7,
               /*merged_runs=*/2);
  trace.Record(TraceEventType::kQueueComplete, 3000, 4500, /*queue=*/1, /*op_id=*/99,
               /*lba=*/123456789);
  std::ostringstream os;
  ExportTraceCsv(trace, os);

  std::vector<std::vector<std::string>> rows;
  std::istringstream in(os.str());
  std::string line;
  while (std::getline(in, line)) {
    rows.push_back(SplitCsv(line));
  }
  ASSERT_EQ(rows.size(), 4u);  // Header + three events.
  const std::vector<std::string> header = {"type", "category", "start_ns", "end_ns",
                                           "arg0", "arg1", "arg2", "arg_names"};
  EXPECT_EQ(rows[0], header);
  const std::vector<std::string> submit = {"queue_submit", "io",  "1000", "1000",
                                           "3",            "32",  "41",
                                           "queue;ops;submission_id"};
  const std::vector<std::string> flush = {"queue_flush", "io", "2000", "2500",
                                          "7",           "2",  "0",
                                          "pending_ops;merged_runs"};
  const std::vector<std::string> complete = {"queue_complete", "io",        "3000",
                                             "4500",           "1",         "99",
                                             "123456789",      "queue;op_id;lba"};
  EXPECT_EQ(rows[1], submit);
  EXPECT_EQ(rows[2], flush);
  EXPECT_EQ(rows[3], complete);
}

// Every exported CSV row must survive an RFC 4180 round trip even if a future event
// name or label ever contains a delimiter; exercise the full table.
TEST(TraceExportTest, CsvEveryTypeParsesToEightFields) {
  TraceRecorder trace(64);
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    trace.Record(static_cast<TraceEventType>(i), i * 10, i * 10 + 5, i, i + 1, i + 2);
  }
  std::ostringstream os;
  ExportTraceCsv(trace, os);
  std::istringstream in(os.str());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(SplitCsv(line).size(), 8u) << line;
  }
  EXPECT_EQ(lines, 1 + kNumTraceEventTypes);
}

TEST(TraceExportTest, ChromeJsonIsSyntacticallyValid) {
  TraceRecorder trace(64);
  // One of each type, mixing spans and instants, to exercise every code path.
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    trace.Record(static_cast<TraceEventType>(i), i * 1000, i * 1000 + (i % 2) * 500, i,
                 i + 1, i + 2);
  }
  std::ostringstream os;
  ExportChromeTrace(trace, os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"user_write\""), std::string::npos);
  EXPECT_NE(json.find("\"gc_copy_forward\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_injected\""), std::string::npos);
  EXPECT_NE(json.find("\"segment_retired\""), std::string::npos);
  EXPECT_NE(json.find("\"read_retry\""), std::string::npos);
  // ns 1000 renders as 1 µs exactly.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
}

TEST(TraceExportTest, EmptyTraceStillValidJson) {
  TraceRecorder trace(4);
  std::ostringstream os;
  ExportChromeTrace(trace, os);
  EXPECT_TRUE(JsonValidator(os.str()).Valid()) << os.str();
}

TEST(TraceExportTest, CsvHasHeaderAndRows) {
  TraceRecorder trace(4);
  trace.Record(TraceEventType::kGcCopyForward, 10, 20, 1, 2, 3);
  std::ostringstream os;
  ExportTraceCsv(trace, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("type,category,start_ns,end_ns"), std::string::npos);
  EXPECT_NE(csv.find("gc_copy_forward"), std::string::npos);
}

// --- FTL integration -------------------------------------------------------------

FtlConfig SmallConfig() {
  FtlConfig config;
  config.nand.page_size_bytes = 4096;
  config.nand.pages_per_segment = 64;
  config.nand.num_segments = 32;
  config.nand.num_channels = 4;
  config.nand.store_data = false;
  config.overprovision = 0.3;
  return config;
}

// Drives overwrite churn plus a snapshot so GC, CoW, and snapshot events all fire.
FtlStats RunChurn(TraceRecorder* trace) {
  auto ftl_or = Ftl::Create(SmallConfig());
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  ftl->SetTraceRecorder(trace);

  SimClock clock;
  const uint64_t lba_space = ftl->LbaCount() / 2;
  uint32_t snap_id = 0;
  for (uint64_t i = 0; i < lba_space * 6; ++i) {
    auto io = ftl->Write(i % lba_space, {}, clock.NowNs());
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
    if (i == lba_space) {
      auto snap = ftl->CreateSnapshot("churn", clock.NowNs());
      IOSNAP_CHECK(snap.ok());
      clock.AdvanceTo(snap->io.CompletionNs());
      snap_id = snap->snap_id;
    }
  }
  IOSNAP_CHECK_OK(ftl->DeleteSnapshot(snap_id, clock.NowNs()).status());
  return ftl->stats();
}

TEST(TraceFtlIntegrationTest, CapturesGcCowAndSnapshotEvents) {
  TraceRecorder trace;
  const FtlStats stats = RunChurn(&trace);
  EXPECT_GT(trace.CountType(TraceEventType::kUserWrite), 0u);
  EXPECT_EQ(trace.CountType(TraceEventType::kSnapCreate), 1u);
  EXPECT_EQ(trace.CountType(TraceEventType::kSnapDelete), 1u);
  EXPECT_GT(trace.CountType(TraceEventType::kGcVictimSelect), 0u);
  EXPECT_GT(trace.CountType(TraceEventType::kGcCopyForward), 0u);
  EXPECT_GT(trace.CountType(TraceEventType::kGcSegmentErase), 0u);
  EXPECT_GT(trace.CountType(TraceEventType::kNandErase), 0u);
  EXPECT_GT(trace.CountType(TraceEventType::kValidityCowChunk), 0u);
  // Trace counts agree with the cumulative counters they mirror.
  EXPECT_EQ(trace.CountType(TraceEventType::kUserWrite), stats.user_writes);
  EXPECT_EQ(trace.CountType(TraceEventType::kGcCopyForward), stats.gc_pages_copied);
  EXPECT_EQ(trace.CountType(TraceEventType::kGcSegmentErase), stats.gc_segments_cleaned);
}

TEST(TraceFtlIntegrationTest, TracingDoesNotPerturbBehaviour) {
  TraceRecorder trace;
  const FtlStats traced = RunChurn(&trace);
  const FtlStats untraced = RunChurn(nullptr);
  EXPECT_EQ(traced.user_writes, untraced.user_writes);
  EXPECT_EQ(traced.total_pages_programmed, untraced.total_pages_programmed);
  EXPECT_EQ(traced.gc_pages_copied, untraced.gc_pages_copied);
  EXPECT_EQ(traced.gc_segments_cleaned, untraced.gc_segments_cleaned);
  EXPECT_EQ(traced.validity_cow_events, untraced.validity_cow_events);
  EXPECT_EQ(traced.gc_total_host_ns, untraced.gc_total_host_ns);
}

TEST(TraceFaultEventsTest, DeviceFaultsAreRecorded) {
  NandConfig config;
  config.page_size_bytes = 512;
  config.pages_per_segment = 8;
  config.num_segments = 4;
  config.num_channels = 2;
  config.fault.read_fail_ppm = 1000000;  // Every read fails.
  NandDevice dev(config);
  TraceRecorder trace;
  dev.SetTraceRecorder(&trace);

  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  IOSNAP_CHECK(dev.ProgramPage(0, header, {}, 0, &paddr).ok());
  IOSNAP_CHECK(!dev.ReadPageWithRetry(paddr, 0, nullptr, nullptr, 3).ok());
  EXPECT_EQ(trace.CountType(TraceEventType::kFaultInjected), 3u);
  EXPECT_EQ(trace.CountType(TraceEventType::kReadRetry), 2u);
  const auto events = trace.Events();
  // Fault events carry (kind, where, op_index); kind 2 = read.
  bool saw_read_fault = false;
  for (const auto& e : events) {
    if (e.type == TraceEventType::kFaultInjected) {
      EXPECT_EQ(e.arg0, 2u);
      saw_read_fault = true;
    }
  }
  EXPECT_TRUE(saw_read_fault);
}

TEST(TraceFaultEventsTest, SegmentRetirementIsRecorded) {
  FtlConfig config = SmallConfig();
  config.nand.fault.bad_block_schedule = {{3, 1}};  // First erase of segment 3 fails.
  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  TraceRecorder trace;
  ftl->SetTraceRecorder(&trace);

  SimClock clock;
  const uint64_t lba_space = ftl->LbaCount() / 2;
  for (uint64_t i = 0; i < lba_space * 4 && trace.CountType(TraceEventType::kSegmentRetired) == 0;
       ++i) {
    auto io = ftl->Write(i % lba_space, {}, clock.NowNs());
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
  }
  EXPECT_GE(trace.CountType(TraceEventType::kFaultInjected), 1u);
  EXPECT_GE(trace.CountType(TraceEventType::kSegmentRetired), 1u);
}

TEST(TraceFtlIntegrationTest, RecoveryRunIsRecorded) {
  auto ftl_or = Ftl::Create(SmallConfig());
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  SimClock clock;
  for (uint64_t lba = 0; lba < 32; ++lba) {
    auto io = ftl->Write(lba, {}, clock.NowNs());
    IOSNAP_CHECK(io.ok());
    clock.AdvanceTo(io->CompletionNs());
  }
  std::unique_ptr<NandDevice> media = ftl->ReleaseDevice();

  TraceRecorder trace;
  auto reopened = Ftl::Open(SmallConfig(), std::move(media), clock.NowNs(), nullptr,
                            &trace);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(trace.CountType(TraceEventType::kRecoveryRun), 1u);
  EXPECT_EQ((*reopened)->trace_recorder(), &trace);
}

}  // namespace
}  // namespace iosnap
