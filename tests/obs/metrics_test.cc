#include "src/obs/metrics.h"

#include <string>

#include <gtest/gtest.h>

#include "src/obs/metrics_bindings.h"

namespace iosnap {
namespace {

TEST(MetricsRegistryTest, CountersReadAtSnapshotTime) {
  MetricsRegistry registry;
  uint64_t writes = 0;
  registry.RegisterCounter("ftl.user_writes", &writes);
  writes = 42;  // Mutated after registration; snapshot must see the live value.
  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "ftl.user_writes");
  EXPECT_EQ(samples[0].u64, 42u);
  EXPECT_TRUE(samples[0].is_integer);
}

TEST(MetricsRegistryTest, GaugesAndHistogramsFlatten) {
  MetricsRegistry registry;
  registry.RegisterGauge("wear.mean", [] { return 2.5; });
  LatencyHistogram hist;
  hist.Add(1000);
  hist.Add(3000);
  registry.RegisterHistogram("run.latency", &hist);
  EXPECT_EQ(registry.MetricCount(), 2u);
  const auto samples = registry.Snapshot();
  // 1 gauge + 7 flattened histogram sub-metrics.
  ASSERT_EQ(samples.size(), 8u);
  EXPECT_EQ(samples[0].name, "wear.mean");
  EXPECT_DOUBLE_EQ(samples[0].value, 2.5);
  EXPECT_EQ(samples[1].name, "run.latency.count");
  EXPECT_EQ(samples[1].u64, 2u);
  EXPECT_EQ(samples[3].name, "run.latency.p50_ns");
  EXPECT_EQ(samples[6].name, "run.latency.p999_ns");
  EXPECT_EQ(samples[7].name, "run.latency.max_ns");
  EXPECT_EQ(samples[7].u64, 3000u);
}

TEST(MetricsRegistryTest, JsonAndCsvRenderEveryMetric) {
  MetricsRegistry registry;
  uint64_t big = ~uint64_t{0};  // Must round-trip with full 64-bit precision.
  registry.RegisterCounter("a.big", &big);
  registry.RegisterGauge("b.frac", [] { return 0.125; });
  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a.big\":18446744073709551615"), std::string::npos);
  EXPECT_NE(json.find("\"b.frac\":0.125"), std::string::npos);
  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("metric,value"), std::string::npos);
  EXPECT_NE(csv.find("a.big,18446744073709551615"), std::string::npos);
}

// The binding field counts must track the structs: if a field is added to a stats
// struct without a matching Register* line, these static sizes diverge and the test
// fails, instead of the metric silently missing from dumps.
TEST(MetricsBindingsTest, FieldCountsMatchStructLayouts) {
  static_assert(sizeof(FtlStats) == kFtlStatsMetricCount * sizeof(uint64_t));
  static_assert(sizeof(NandStats) == kNandStatsMetricCount * sizeof(uint64_t));
  static_assert(sizeof(ValidityStats) == kValidityStatsMetricCount * sizeof(uint64_t));
  static_assert(sizeof(LogStats) == kLogStatsMetricCount * sizeof(uint64_t));
  static_assert(sizeof(IoQueueStats) == kIoQueueStatsMetricCount * sizeof(uint64_t));
}

TEST(MetricsBindingsTest, RegistersEveryField) {
  MetricsRegistry registry;
  FtlStats ftl_stats;
  NandStats nand_stats;
  ValidityStats validity_stats;
  LogStats log_stats;
  IoQueueStats queue_stats;
  RegisterFtlStats(&registry, ftl_stats);
  RegisterNandStats(&registry, nand_stats);
  RegisterValidityStats(&registry, validity_stats);
  RegisterLogStats(&registry, log_stats);
  RegisterIoQueueStats(&registry, queue_stats);
  EXPECT_EQ(registry.MetricCount(), kFtlStatsMetricCount + kNandStatsMetricCount +
                                        kValidityStatsMetricCount + kLogStatsMetricCount +
                                        kIoQueueStatsMetricCount);

  // Every registered counter tracks its struct field.
  ftl_stats.gc_pages_copied = 11;
  nand_stats.segments_erased = 5;
  validity_stats.cow_chunk_copies = 3;
  nand_stats.program_failures = 9;
  log_stats.segments_retired = 2;
  queue_stats.merged_runs = 7;
  queue_stats.inflight_ops = 4;
  bool saw_gc = false;
  bool saw_erase = false;
  bool saw_cow = false;
  bool saw_fail = false;
  bool saw_retired = false;
  bool saw_runs = false;
  bool saw_inflight = false;
  for (const auto& s : registry.Snapshot()) {
    if (s.name == "ftl.gc_pages_copied") {
      saw_gc = true;
      EXPECT_EQ(s.u64, 11u);
    } else if (s.name == "nand.segments_erased") {
      saw_erase = true;
      EXPECT_EQ(s.u64, 5u);
    } else if (s.name == "validity.cow_chunk_copies") {
      saw_cow = true;
      EXPECT_EQ(s.u64, 3u);
    } else if (s.name == "nand.program_failures") {
      saw_fail = true;
      EXPECT_EQ(s.u64, 9u);
    } else if (s.name == "log.segments_retired") {
      saw_retired = true;
      EXPECT_EQ(s.u64, 2u);
    } else if (s.name == "io_queue.merged_runs") {
      saw_runs = true;
      EXPECT_EQ(s.u64, 7u);
    } else if (s.name == "io_queue.inflight_ops") {
      // Registered as a gauge: sampled live through the lambda.
      saw_inflight = true;
      EXPECT_DOUBLE_EQ(s.value, 4.0);
    }
  }
  EXPECT_TRUE(saw_gc);
  EXPECT_TRUE(saw_erase);
  EXPECT_TRUE(saw_cow);
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_retired);
  EXPECT_TRUE(saw_runs);
  EXPECT_TRUE(saw_inflight);
}

}  // namespace
}  // namespace iosnap
