// Shared helpers for the ioSnap test suite: small device configurations, deterministic
// page payloads, a brute-force reference model of snapshot semantics, and gtest glue for
// Status/StatusOr.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/core/ftl.h"
#include "src/core/ftl_config.h"

namespace iosnap {

#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()
#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()

#define ASSERT_OK_AND_ASSIGN(lhs, expr)            \
  ASSERT_OK_AND_ASSIGN_IMPL_(                      \
      IOSNAP_CONCAT_(test_statusor_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)   \
  auto tmp = (expr);                                 \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();  \
  lhs = std::move(tmp).value()

// A small device: 32 segments x 64 pages x 4 KiB = 8 MiB, 4 channels.
inline FtlConfig SmallConfig() {
  FtlConfig config;
  config.nand.page_size_bytes = 4096;
  config.nand.pages_per_segment = 64;
  config.nand.num_segments = 32;
  config.nand.num_channels = 4;
  config.nand.store_data = true;
  config.overprovision = 0.25;
  config.validity_chunk_bits = 256;
  config.gc_reserve_segments = 2;
  config.gc_low_free_segments = 4;
  config.gc_high_free_segments = 6;
  return config;
}

// An even smaller device for exhaustive property tests.
inline FtlConfig TinyConfig() {
  FtlConfig config = SmallConfig();
  config.nand.pages_per_segment = 16;
  config.nand.num_segments = 16;
  config.validity_chunk_bits = 64;
  return config;
}

// Reusable description of a fault-injection scenario for crash/fault campaigns.
// ApplyTo() arms a config; individual fields mirror FaultConfig.
struct FaultPlan {
  uint64_t seed = 1;
  uint32_t program_fail_ppm = 0;
  uint32_t erase_fail_ppm = 0;
  uint32_t read_fail_ppm = 0;
  uint32_t corrupt_ppm = 0;
  uint32_t read_disturb_ppm_per_k_reads = 0;  // Wear model: read-disturb rate.
  uint32_t retention_ppm_per_sec = 0;         // Wear model: retention-loss rate.
  uint64_t crash_after_op = 0;  // Device goes offline after this many ops (0 = never).
  std::vector<std::pair<uint64_t, uint64_t>> bad_block_schedule;  // (segment, erase ordinal)

  void ApplyTo(FtlConfig* config) const {
    config->nand.fault.seed = seed;
    config->nand.fault.program_fail_ppm = program_fail_ppm;
    config->nand.fault.erase_fail_ppm = erase_fail_ppm;
    config->nand.fault.read_fail_ppm = read_fail_ppm;
    config->nand.fault.corrupt_ppm = corrupt_ppm;
    config->nand.fault.read_disturb_ppm_per_k_reads = read_disturb_ppm_per_k_reads;
    config->nand.fault.retention_ppm_per_sec = retention_ppm_per_sec;
    config->nand.fault.crash_after_op = crash_after_op;
    config->nand.fault.bad_block_schedule = bad_block_schedule;
  }
};

// Deterministic page payload derived from (lba, version).
inline std::vector<uint8_t> PageData(uint64_t page_bytes, uint64_t lba, uint64_t version) {
  std::vector<uint8_t> data(page_bytes);
  uint64_t x = lba * 0x9e3779b97f4a7c15ULL + version * 0xbf58476d1ce4e5b9ULL + 1;
  for (size_t i = 0; i < data.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    data[i] = static_cast<uint8_t>(x);
  }
  return data;
}

// Brute-force model of device + snapshot semantics: the oracle every integration test
// compares the real FTL against. State is lba -> version (0 = never written / trimmed).
class ReferenceModel {
 public:
  void Write(uint64_t lba, uint64_t version) { state_[lba] = version; }

  void Trim(uint64_t lba, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      state_.erase(lba + i);
    }
  }

  // Captures the current state under a snapshot id.
  void Snapshot(uint32_t snap_id) { snapshots_[snap_id] = state_; }

  void DeleteSnapshot(uint32_t snap_id) { snapshots_.erase(snap_id); }

  bool HasSnapshot(uint32_t snap_id) const { return snapshots_.contains(snap_id); }

  // Version visible at `lba` now (0 if unmapped).
  uint64_t Current(uint64_t lba) const {
    auto it = state_.find(lba);
    return it == state_.end() ? 0 : it->second;
  }

  // Version visible at `lba` in a snapshot (0 if unmapped).
  uint64_t InSnapshot(uint32_t snap_id, uint64_t lba) const {
    auto snap_it = snapshots_.find(snap_id);
    if (snap_it == snapshots_.end()) {
      return 0;
    }
    auto it = snap_it->second.find(lba);
    return it == snap_it->second.end() ? 0 : it->second;
  }

  const std::map<uint64_t, uint64_t>& current_state() const { return state_; }
  const std::map<uint64_t, uint64_t>& snapshot_state(uint32_t snap_id) const {
    static const std::map<uint64_t, uint64_t> kEmpty;
    auto it = snapshots_.find(snap_id);
    return it == snapshots_.end() ? kEmpty : it->second;
  }

 private:
  std::map<uint64_t, uint64_t> state_;
  std::map<uint32_t, std::map<uint64_t, uint64_t>> snapshots_;
};

// Convenience wrapper: an Ftl plus a virtual clock and versioned-payload helpers, so
// integration tests read as sequences of logical operations.
class FtlHarness {
 public:
  explicit FtlHarness(const FtlConfig& config) : config_(config) {
    auto ftl_or = Ftl::Create(config);
    IOSNAP_CHECK(ftl_or.ok());
    ftl_ = std::move(ftl_or).value();
  }

  Ftl& ftl() { return *ftl_; }
  uint64_t now() const { return now_; }
  void AdvanceTo(uint64_t t) { now_ = std::max(now_, t); }

  // Writes the deterministic payload for (lba, version) and advances the clock.
  Status Write(uint64_t lba, uint64_t version) {
    const auto data = PageData(config_.nand.page_size_bytes, lba, version);
    auto result = ftl_->Write(lba, data, now_);
    if (!result.ok()) {
      return result.status();
    }
    now_ = std::max(now_, result->CompletionNs());
    return OkStatus();
  }

  Status Trim(uint64_t lba, uint64_t count) {
    auto result = ftl_->Trim(lba, count, now_);
    if (!result.ok()) {
      return result.status();
    }
    now_ = std::max(now_, result->CompletionNs());
    return OkStatus();
  }

  StatusOr<uint32_t> Snapshot(const std::string& name) {
    auto result = ftl_->CreateSnapshot(name, now_);
    if (!result.ok()) {
      return result.status();
    }
    now_ = std::max(now_, result->io.CompletionNs());
    return result->snap_id;
  }

  Status Delete(uint32_t snap_id) {
    auto result = ftl_->DeleteSnapshot(snap_id, now_);
    if (!result.ok()) {
      return result.status();
    }
    now_ = std::max(now_, result->CompletionNs());
    return OkStatus();
  }

  StatusOr<uint32_t> Activate(uint32_t snap_id, bool writable = false) {
    uint64_t finish = now_;
    auto view_or = ftl_->ActivateBlocking(snap_id, now_, writable, &finish);
    if (!view_or.ok()) {
      return view_or.status();
    }
    now_ = std::max(now_, finish);
    return *view_or;
  }

  // Verifies that `view_id` reads version `version` at `lba` (0 = expect zeroes).
  ::testing::AssertionResult CheckLba(uint32_t view_id, uint64_t lba, uint64_t version) {
    std::vector<uint8_t> data;
    auto result = ftl_->ReadView(view_id, lba, now_, &data);
    if (!result.ok()) {
      return ::testing::AssertionFailure()
             << "read lba " << lba << " failed: " << result.status().ToString();
    }
    now_ = std::max(now_, result->CompletionNs());
    const std::vector<uint8_t> expected =
        version == 0 ? std::vector<uint8_t>(config_.nand.page_size_bytes, 0)
                     : PageData(config_.nand.page_size_bytes, lba, version);
    if (data != expected) {
      return ::testing::AssertionFailure()
             << "lba " << lba << " content mismatch (expected version " << version << ")";
    }
    return ::testing::AssertionSuccess();
  }

  // Verifies a whole view against a reference state over [0, lba_space).
  ::testing::AssertionResult CheckView(uint32_t view_id,
                                       const std::map<uint64_t, uint64_t>& state,
                                       uint64_t lba_space) {
    for (uint64_t lba = 0; lba < lba_space; ++lba) {
      auto it = state.find(lba);
      const uint64_t version = it == state.end() ? 0 : it->second;
      auto check = CheckLba(view_id, lba, version);
      if (!check) {
        return check;
      }
    }
    return ::testing::AssertionSuccess();
  }

  // Simulates a crash (no checkpoint) and reopens the device. With
  // `clear_faults`, the power cycle also disarms any fault-injection schedule
  // (media damage persists) so recovery itself runs on a working device.
  Status CrashAndReopen(bool clear_faults = false) {
    std::unique_ptr<NandDevice> device = ftl_->ReleaseDevice();
    if (clear_faults) {
      device->ClearFaults();
    }
    uint64_t finish = now_;
    auto reopened = Ftl::Open(config_, std::move(device), now_, &finish);
    if (!reopened.ok()) {
      return reopened.status();
    }
    ftl_ = std::move(reopened).value();
    now_ = std::max(now_, finish);
    return OkStatus();
  }

  // Clean shutdown (checkpoint) and reopen.
  Status CleanRestart() {
    RETURN_IF_ERROR(ftl_->CheckpointAndClose(now_));
    std::unique_ptr<NandDevice> device = ftl_->ReleaseDevice();
    uint64_t finish = now_;
    auto reopened = Ftl::Open(config_, std::move(device), now_, &finish);
    if (!reopened.ok()) {
      return reopened.status();
    }
    ftl_ = std::move(reopened).value();
    now_ = std::max(now_, finish);
    return OkStatus();
  }

 private:
  FtlConfig config_;
  std::unique_ptr<Ftl> ftl_;
  uint64_t now_ = 0;
};

}  // namespace iosnap

#endif  // TESTS_TEST_UTIL_H_
