#include "src/nand/nand_device.h"

#include <cstring>
#include <tuple>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

NandConfig TestNand() {
  NandConfig config;
  config.page_size_bytes = 512;
  config.pages_per_segment = 8;
  config.num_segments = 4;
  config.num_channels = 2;
  config.store_data = true;
  return config;
}

TEST(NandDeviceTest, FactoryFreshSegmentsAreProgrammable) {
  NandDevice dev(TestNand());
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  // NAND ships erased: programming works immediately, with no erase on record.
  ASSERT_OK(dev.ProgramPage(0, header, {}, 0, &paddr).status());
  EXPECT_EQ(dev.stats().segments_erased, 0u);
  EXPECT_TRUE(dev.SegmentErased(0));
}

TEST(NandDeviceTest, ProgramReadRoundTrip) {
  NandDevice dev(TestNand());
  ASSERT_OK(dev.EraseSegment(0, 0).status());

  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 42;
  header.epoch = 3;
  header.seq = 99;
  const std::vector<uint8_t> data = PageData(512, 42, 1);
  uint64_t paddr = 0;
  ASSERT_OK_AND_ASSIGN(NandOp op, dev.ProgramPage(0, header, data, 0, &paddr));
  EXPECT_EQ(paddr, 0u);
  EXPECT_GT(op.finish_ns, op.issue_ns);

  PageHeader read_header;
  std::vector<uint8_t> read_data;
  ASSERT_OK(dev.ReadPage(paddr, op.finish_ns, &read_header, &read_data).status());
  EXPECT_EQ(read_header.lba, 42u);
  EXPECT_EQ(read_header.epoch, 3u);
  EXPECT_EQ(read_header.seq, 99u);
  EXPECT_EQ(read_data, data);
}

TEST(NandDeviceTest, PagesProgramSequentiallyWithinSegment) {
  NandDevice dev(TestNand());
  ASSERT_OK(dev.EraseSegment(1, 0).status());
  PageHeader header;
  header.type = RecordType::kData;
  for (uint64_t i = 0; i < 8; ++i) {
    uint64_t paddr = 0;
    ASSERT_OK(dev.ProgramPage(1, header, {}, 0, &paddr).status());
    EXPECT_EQ(paddr, dev.FirstPageOf(1) + i);
  }
  uint64_t paddr = 0;
  EXPECT_EQ(dev.ProgramPage(1, header, {}, 0, &paddr).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(NandDeviceTest, EraseFreesPages) {
  NandDevice dev(TestNand());
  ASSERT_OK(dev.EraseSegment(0, 0).status());
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, {}, 0, &paddr).status());
  EXPECT_TRUE(dev.IsProgrammed(paddr));
  ASSERT_OK(dev.EraseSegment(0, 0).status());
  EXPECT_FALSE(dev.IsProgrammed(paddr));
  EXPECT_EQ(dev.NextFreePage(0), 0u);
  EXPECT_EQ(dev.EraseCount(0), 2u);
}

TEST(NandDeviceTest, ReadOfFreePageFails) {
  NandDevice dev(TestNand());
  ASSERT_OK(dev.EraseSegment(0, 0).status());
  EXPECT_EQ(dev.ReadPage(3, 0, nullptr, nullptr).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NandDeviceTest, OutOfRangeAddressesRejected) {
  NandDevice dev(TestNand());
  EXPECT_EQ(dev.EraseSegment(99, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dev.ReadPage(1 << 20, 0, nullptr, nullptr).status().code(),
            StatusCode::kOutOfRange);
  PageHeader header;
  uint64_t paddr = 0;
  EXPECT_EQ(dev.ProgramPage(99, header, {}, 0, &paddr).status().code(),
            StatusCode::kOutOfRange);
}

TEST(NandDeviceTest, ScanSegmentHeadersReturnsProgrammedPages) {
  NandDevice dev(TestNand());
  ASSERT_OK(dev.EraseSegment(2, 0).status());
  PageHeader header;
  header.type = RecordType::kData;
  for (uint64_t i = 0; i < 3; ++i) {
    header.lba = 10 + i;
    header.seq = i;
    uint64_t paddr = 0;
    ASSERT_OK(dev.ProgramPage(2, header, {}, 0, &paddr).status());
  }
  std::vector<std::pair<uint64_t, PageHeader>> out;
  const uint64_t idle = dev.DrainTimeNs();  // Wait out the erase/program backlog.
  ASSERT_OK_AND_ASSIGN(NandOp op, dev.ScanSegmentHeaders(2, idle, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second.lba, 10u);
  EXPECT_EQ(out[2].second.lba, 12u);
  // Scan cost: 3 pages * header_scan_ns.
  EXPECT_EQ(op.finish_ns - op.issue_ns, 3 * dev.config().header_scan_ns_per_page);
}

TEST(NandDeviceTest, ChannelContentionSerializes) {
  NandConfig config = TestNand();
  config.num_channels = 1;
  config.bus_ns_per_page = 0;
  NandDevice dev(config);
  ASSERT_OK(dev.EraseSegment(0, 0).status());
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  // Two programs issued at the same instant on one channel: the second waits for the
  // first (both also queue behind the preceding erase on that channel).
  const uint64_t idle = dev.DrainTimeNs();
  ASSERT_OK_AND_ASSIGN(NandOp op1, dev.ProgramPage(0, header, {}, idle, &paddr));
  ASSERT_OK_AND_ASSIGN(NandOp op2, dev.ProgramPage(0, header, {}, idle, &paddr));
  EXPECT_EQ(op1.finish_ns, idle + config.program_ns);
  EXPECT_EQ(op2.finish_ns, idle + 2 * config.program_ns);
}

TEST(NandDeviceTest, BusCapsParallelism) {
  NandConfig config = TestNand();
  config.num_channels = 2;
  NandDevice dev(config);
  ASSERT_OK(dev.EraseSegment(0, 0).status());
  ASSERT_OK(dev.EraseSegment(1, 0).status());
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  // Pages 0 (channel 0) and first page of segment 1 (channel depends on stripe); both
  // must serialize their bus transfer even on distinct channels.
  ASSERT_OK_AND_ASSIGN(NandOp op1, dev.ProgramPage(0, header, {}, 0, &paddr));
  ASSERT_OK_AND_ASSIGN(NandOp op2, dev.ProgramPage(1, header, {}, 0, &paddr));
  EXPECT_GE(op2.finish_ns, op1.issue_ns + 2 * config.bus_ns_per_page);
}

TEST(NandDeviceTest, WearOutReported) {
  NandConfig config = TestNand();
  config.max_erase_count = 3;
  NandDevice dev(config);
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(dev.EraseSegment(0, 0).status());
  }
  EXPECT_EQ(dev.EraseSegment(0, 0).status().code(), StatusCode::kResourceExhausted);
}

TEST(NandDeviceTest, HeaderOnlyModeDropsPayload) {
  NandConfig config = TestNand();
  config.store_data = false;
  NandDevice dev(config);
  ASSERT_OK(dev.EraseSegment(0, 0).status());
  PageHeader header;
  header.type = RecordType::kData;
  const std::vector<uint8_t> data = PageData(512, 1, 1);
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, data, 0, &paddr).status());
  std::vector<uint8_t> read_data;
  ASSERT_OK(dev.ReadPage(paddr, 0, nullptr, &read_data).status());
  EXPECT_TRUE(read_data.empty());

  // ... but checkpoint pages keep payloads even in header-only mode.
  header.type = RecordType::kCheckpoint;
  ASSERT_OK(dev.ProgramPage(0, header, data, 0, &paddr).status());
  ASSERT_OK(dev.ReadPage(paddr, 0, nullptr, &read_data).status());
  EXPECT_EQ(read_data, data);
}

TEST(NandDeviceTest, DrainTimeTracksBusiestChannel) {
  NandDevice dev(TestNand());
  ASSERT_OK(dev.EraseSegment(0, 0).status());
  EXPECT_GT(dev.DrainTimeNs(), 0u);
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  ASSERT_OK_AND_ASSIGN(NandOp op, dev.ProgramPage(0, header, {}, 0, &paddr));
  EXPECT_GE(dev.DrainTimeNs(), op.finish_ns);
}

TEST(NandDeviceTest, ProgramBatchMatchesSequentialProgramsAtSharedIssueTime) {
  NandDevice batched(TestNand());
  NandDevice scalar(TestNand());

  std::vector<std::vector<uint8_t>> payloads;
  std::vector<NandDevice::ProgramRequest> requests;
  for (uint64_t i = 0; i < 6; ++i) {
    payloads.push_back(PageData(512, i, 1));
  }
  for (uint64_t i = 0; i < 6; ++i) {
    PageHeader header;
    header.type = RecordType::kData;
    header.lba = i;
    header.seq = i;
    requests.push_back({header, payloads[i]});
  }
  constexpr uint64_t kIssue = 1000;
  std::vector<uint64_t> paddrs;
  std::vector<NandOp> ops;
  ASSERT_OK(batched.ProgramBatch(0, requests, kIssue, &paddrs, &ops));
  ASSERT_EQ(paddrs.size(), 6u);
  ASSERT_EQ(ops.size(), 6u);

  for (uint64_t i = 0; i < 6; ++i) {
    uint64_t paddr = 0;
    ASSERT_OK_AND_ASSIGN(NandOp op,
                         scalar.ProgramPage(0, requests[i].header, payloads[i], kIssue,
                                            &paddr));
    EXPECT_EQ(paddrs[i], paddr) << i;
    EXPECT_EQ(ops[i].issue_ns, op.issue_ns) << i;
    EXPECT_EQ(ops[i].finish_ns, op.finish_ns) << i;
  }
  EXPECT_EQ(batched.DrainTimeNs(), scalar.DrainTimeNs());

  // Consecutive pages round-robin channels, so with 2 channels the batch overlaps:
  // page 2 shares a channel with page 0 and must start after it, but pages 0 and 1
  // proceed in parallel.
  EXPECT_EQ(ops[0].issue_ns, kIssue);
  EXPECT_LT(ops[1].finish_ns, ops[2].finish_ns);
}

TEST(NandDeviceTest, ProgramBatchRejectsOverflowUpFront) {
  NandDevice dev(TestNand());  // 8 pages per segment.
  std::vector<NandDevice::ProgramRequest> requests(9);
  for (auto& r : requests) {
    r.header.type = RecordType::kData;
  }
  std::vector<uint64_t> paddrs;
  std::vector<NandOp> ops;
  EXPECT_FALSE(dev.ProgramBatch(0, requests, 0, &paddrs, &ops).ok());
  // Nothing was programmed: validation happens before any commit.
  EXPECT_EQ(dev.NextFreePage(0), 0u);
  EXPECT_TRUE(paddrs.empty());

  requests.resize(8);
  ASSERT_OK(dev.ProgramBatch(0, requests, 0, &paddrs, &ops));
  EXPECT_EQ(dev.NextFreePage(0), 8u);
}

TEST(NandDeviceTest, ReadBatchMatchesSequentialReads) {
  NandDevice batched(TestNand());
  NandDevice scalar(TestNand());
  std::vector<uint64_t> paddrs;
  for (uint64_t i = 0; i < 5; ++i) {
    PageHeader header;
    header.type = RecordType::kData;
    header.lba = 100 + i;
    const std::vector<uint8_t> data = PageData(512, 100 + i, 2);
    uint64_t paddr = 0;
    ASSERT_OK(batched.ProgramPage(0, header, data, 0, &paddr).status());
    ASSERT_OK(scalar.ProgramPage(0, header, data, 0, &paddr).status());
    paddrs.push_back(paddr);
  }
  // Read back in a scrambled order so the batch exercises non-monotonic channels.
  std::swap(paddrs[0], paddrs[3]);
  std::swap(paddrs[1], paddrs[4]);

  constexpr uint64_t kIssue = 50000;
  std::vector<PageHeader> headers;
  std::vector<std::vector<uint8_t>> data;
  std::vector<NandOp> ops;
  ASSERT_OK(batched.ReadBatch(paddrs, kIssue, &headers, &data, &ops));
  ASSERT_EQ(headers.size(), 5u);
  ASSERT_EQ(data.size(), 5u);
  ASSERT_EQ(ops.size(), 5u);

  for (size_t i = 0; i < paddrs.size(); ++i) {
    PageHeader header;
    std::vector<uint8_t> page;
    ASSERT_OK_AND_ASSIGN(NandOp op, scalar.ReadPage(paddrs[i], kIssue, &header, &page));
    EXPECT_EQ(headers[i].lba, header.lba) << i;
    EXPECT_EQ(data[i], page) << i;
    EXPECT_EQ(ops[i].issue_ns, op.issue_ns) << i;
    EXPECT_EQ(ops[i].finish_ns, op.finish_ns) << i;
  }

  // A bad paddr fails the whole batch before any device time is consumed.
  const uint64_t drain_before = batched.DrainTimeNs();
  std::vector<uint64_t> bad = {paddrs[0], TestNand().TotalPages()};
  EXPECT_FALSE(batched.ReadBatch(bad, kIssue, nullptr, nullptr, &ops).ok());
  EXPECT_EQ(batched.DrainTimeNs(), drain_before);
}

TEST(NandDeviceTest, CopybackSameChannelStaysOffBus) {
  NandConfig config = TestNand();
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 21;
  header.epoch = 2;
  header.seq = 5;
  const std::vector<uint8_t> data = PageData(512, 21, 4);
  uint64_t src = 0;
  ASSERT_OK(dev.ProgramPage(0, header, data, 0, &src).status());
  ASSERT_EQ(src % config.num_channels, 0u);

  // Segment 2's first free page is paddr 16 — channel 0, same as the source, so the
  // copy happens inside the die: no bus occupancy at all.
  const uint64_t idle = dev.DrainTimeNs();
  uint64_t dst = 0;
  ASSERT_OK_AND_ASSIGN(NandOp op, dev.CopybackPage(src, 2, idle, &dst));
  EXPECT_EQ(dst, dev.FirstPageOf(2));
  EXPECT_EQ(op.bus_ns, 0u);
  EXPECT_EQ(op.cell_ns, config.read_ns + config.program_ns);
  EXPECT_EQ(op.finish_ns, idle + config.read_ns + config.program_ns);
  EXPECT_EQ(dev.stats().copyback_pages, 1u);
  EXPECT_EQ(dev.stats().copyback_fallbacks, 0u);
  // Copyback is not a host read: only the program side of the ledger moves.
  EXPECT_EQ(dev.stats().pages_read, 0u);
  EXPECT_EQ(dev.stats().pages_programmed, 2u);

  // The stored bytes travelled verbatim.
  PageHeader out;
  std::vector<uint8_t> out_data;
  ASSERT_OK(dev.ReadPage(dst, op.finish_ns, &out, &out_data).status());
  EXPECT_EQ(out.lba, 21u);
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.seq, 5u);
  EXPECT_EQ(out_data, data);
}

TEST(NandDeviceTest, CopybackCrossChannelFallsBackToReadProgram) {
  NandConfig config = TestNand();
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, {}, 0, &paddr).status());
  uint64_t src = 0;
  ASSERT_OK(dev.ProgramPage(0, header, {}, 0, &src).status());
  ASSERT_EQ(src % config.num_channels, 1u);  // Source on channel 1.

  // Destination (segment 2, page 16) is channel 0: the same-channel constraint fails
  // and the device pays an internal read + program, bus transfers on both legs,
  // reported as one combined op whose spans still sum to its latency.
  const uint64_t idle = dev.DrainTimeNs();
  uint64_t dst = 0;
  ASSERT_OK_AND_ASSIGN(NandOp op, dev.CopybackPage(src, 2, idle, &dst));
  EXPECT_EQ(op.bus_ns, 2 * config.bus_ns_per_page);
  EXPECT_EQ(op.cell_ns, config.read_ns + config.program_ns);
  EXPECT_EQ(op.finish_ns - op.issue_ns,
            op.chan_wait_ns + op.bus_wait_ns + op.bus_ns + op.cell_ns);
  EXPECT_EQ(op.finish_ns,
            idle + 2 * config.bus_ns_per_page + config.read_ns + config.program_ns);
  EXPECT_EQ(dev.stats().copyback_pages, 1u);
  EXPECT_EQ(dev.stats().copyback_fallbacks, 1u);
}

TEST(NandDeviceTest, CopybackBatchMatchesSequentialCopybacks) {
  NandDevice batched(TestNand());
  NandDevice scalar(TestNand());
  std::vector<uint64_t> srcs;
  for (uint64_t i = 0; i < 6; ++i) {
    PageHeader header;
    header.type = RecordType::kData;
    header.lba = i;
    header.seq = i;
    const std::vector<uint8_t> data = PageData(512, i, 7);
    uint64_t paddr = 0;
    ASSERT_OK(batched.ProgramPage(0, header, data, 0, &paddr).status());
    ASSERT_OK(scalar.ProgramPage(0, header, data, 0, &paddr).status());
    srcs.push_back(paddr);
  }

  constexpr uint64_t kIssue = 1000000;
  std::vector<uint64_t> dsts;
  std::vector<NandOp> ops;
  ASSERT_OK(batched.CopybackBatch(srcs, 2, kIssue, &dsts, &ops));
  ASSERT_EQ(dsts.size(), 6u);
  ASSERT_EQ(ops.size(), 6u);
  for (uint64_t i = 0; i < 6; ++i) {
    uint64_t dst = 0;
    ASSERT_OK_AND_ASSIGN(NandOp op, scalar.CopybackPage(srcs[i], 2, kIssue, &dst));
    EXPECT_EQ(dsts[i], dst) << i;
    EXPECT_EQ(ops[i].issue_ns, op.issue_ns) << i;
    EXPECT_EQ(ops[i].finish_ns, op.finish_ns) << i;
    EXPECT_EQ(ops[i].bus_ns, op.bus_ns) << i;
  }
  EXPECT_EQ(batched.DrainTimeNs(), scalar.DrainTimeNs());
  EXPECT_EQ(0, std::memcmp(&batched.stats(), &scalar.stats(), sizeof(NandStats)));

  // Overflow is rejected up front: nothing is copied.
  std::vector<uint64_t> too_many(9, srcs[0]);
  EXPECT_FALSE(batched.CopybackBatch(too_many, 3, kIssue, &dsts, &ops).ok());
  EXPECT_EQ(batched.NextFreePage(3), 0u);
}

TEST(NandDeviceTest, MultipleBusesLiftTransferSerialization) {
  // Two pages on distinct channels issued at the same instant: with one shared bus the
  // transfers serialize; with buses == channels each channel owns a bus and neither
  // transfer waits.
  NandConfig shared = TestNand();
  NandConfig striped = TestNand();
  striped.buses = 2;
  NandDevice one(shared);
  NandDevice two(striped);
  PageHeader header;
  header.type = RecordType::kData;
  for (NandDevice* dev : {&one, &two}) {
    uint64_t paddr = 0;
    ASSERT_OK_AND_ASSIGN(NandOp op1, dev->ProgramPage(0, header, {}, 0, &paddr));
    ASSERT_OK_AND_ASSIGN(NandOp op2, dev->ProgramPage(0, header, {}, 0, &paddr));
    EXPECT_EQ(op1.bus_wait_ns, 0u);
    if (dev == &one) {
      EXPECT_EQ(op2.bus_wait_ns, shared.bus_ns_per_page);
    } else {
      EXPECT_EQ(op2.bus_wait_ns, 0u);
      EXPECT_EQ(op2.finish_ns, op1.finish_ns);
    }
  }
  EXPECT_EQ(two.NumBuses(), 2u);
  EXPECT_EQ(two.BusActiveNs(0), shared.bus_ns_per_page);
  EXPECT_EQ(two.BusActiveNs(1), shared.bus_ns_per_page);
}

// buses=1 must reproduce the pre-multi-bus scalar-bus arithmetic bit for bit. The
// reference model below *is* that arithmetic (single bus horizon shared by every
// channel); a randomized schedule of programs, reads, scans, and erases must match
// it on every completion time and span.
TEST(NandDeviceTest, SingleBusMatchesScalarReferenceModel) {
  NandConfig config = TestNand();
  config.num_channels = 4;
  config.num_segments = 8;
  NandDevice dev(config);

  std::vector<uint64_t> chan_busy(config.num_channels, 0);
  uint64_t bus_busy = 0;
  auto reference = [&](uint32_t channel, uint64_t issue, uint64_t bus_ns,
                       uint64_t cell_ns) {
    uint64_t start = std::max(issue, chan_busy[channel]);
    const uint64_t chan_wait = start - issue;
    uint64_t bus_wait = 0;
    if (bus_ns > 0) {
      const uint64_t bus_start = std::max(start, bus_busy);
      bus_wait = bus_start - start;
      bus_busy = bus_start + bus_ns;
      start = bus_start + bus_ns;
    }
    const uint64_t finish = start + cell_ns;
    chan_busy[channel] = finish;
    return std::tuple<uint64_t, uint64_t, uint64_t>(finish, chan_wait, bus_wait);
  };

  Rng rng(2026);
  std::vector<uint64_t> programmed;
  uint64_t now = 0;
  PageHeader header;
  header.type = RecordType::kData;
  for (int i = 0; i < 400; ++i) {
    now += rng.NextBelow(40000);  // Issue times drift so horizons stay contended.
    const uint64_t pick = rng.NextBelow(programmed.empty() ? 2 : 4);
    if (pick <= 1) {
      const uint64_t segment = rng.NextBelow(config.num_segments);
      header.lba = i;
      uint64_t paddr = 0;
      auto op = dev.ProgramPage(segment, header, {}, now, &paddr);
      if (!op.ok()) {
        continue;  // Full segment: no device time consumed, model unchanged.
      }
      auto [finish, chan_wait, bus_wait] = reference(
          (uint32_t)(paddr % config.num_channels), now, config.bus_ns_per_page,
          config.program_ns);
      ASSERT_EQ(op->finish_ns, finish) << "op " << i;
      ASSERT_EQ(op->chan_wait_ns, chan_wait) << "op " << i;
      ASSERT_EQ(op->bus_wait_ns, bus_wait) << "op " << i;
      programmed.push_back(paddr);
    } else if (pick == 2) {
      const uint64_t paddr = programmed[rng.NextBelow(programmed.size())];
      if (!dev.IsProgrammed(paddr)) {
        continue;
      }
      ASSERT_OK_AND_ASSIGN(NandOp op, dev.ReadPage(paddr, now, nullptr, nullptr));
      auto [finish, chan_wait, bus_wait] = reference(
          (uint32_t)(paddr % config.num_channels), now, config.bus_ns_per_page,
          config.read_ns);
      ASSERT_EQ(op.finish_ns, finish) << "op " << i;
      ASSERT_EQ(op.chan_wait_ns, chan_wait) << "op " << i;
      ASSERT_EQ(op.bus_wait_ns, bus_wait) << "op " << i;
    } else {
      const uint64_t segment = rng.NextBelow(config.num_segments);
      ASSERT_OK_AND_ASSIGN(NandOp op, dev.EraseSegment(segment, now));
      auto [finish, chan_wait, bus_wait] = reference(
          (uint32_t)(segment % config.num_channels), now, 0, config.erase_ns);
      ASSERT_EQ(op.finish_ns, finish) << "op " << i;
      ASSERT_EQ(op.chan_wait_ns, chan_wait) << "op " << i;
      ASSERT_EQ(op.bus_wait_ns, bus_wait) << "op " << i;
    }
  }
  ASSERT_GT(programmed.size(), 100u);
}

TEST(NandFaultTest, CrcDetectsSilentCorruption) {
  NandDevice dev(TestNand());
  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 7;
  header.seq = 1;
  const std::vector<uint8_t> data = PageData(512, 7, 3);
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, data, 0, &paddr).status());

  // Clean read first: the CRC stamped at program time verifies.
  std::vector<uint8_t> read_data;
  ASSERT_OK(dev.ReadPage(paddr, 0, nullptr, &read_data).status());
  EXPECT_EQ(read_data, data);
  EXPECT_EQ(dev.stats().crc_errors, 0u);

  dev.CorruptPageForTesting(paddr);
  EXPECT_EQ(dev.ReadPage(paddr, 0, nullptr, &read_data).status().code(),
            StatusCode::kDataLoss);
  EXPECT_GE(dev.stats().crc_errors, 1u);
  EXPECT_EQ(dev.stats().pages_corrupted, 1u);

  // A permanent error never improves with retries.
  EXPECT_EQ(dev.ReadPageWithRetry(paddr, 0, nullptr, &read_data, 5).status().code(),
            StatusCode::kDataLoss);
}

TEST(NandFaultTest, HeaderScanDropsCorruptPages) {
  NandDevice dev(TestNand());
  PageHeader header;
  header.type = RecordType::kData;
  std::vector<uint64_t> paddrs;
  for (uint64_t i = 0; i < 4; ++i) {
    header.lba = i;
    header.seq = i;
    uint64_t paddr = 0;
    ASSERT_OK(dev.ProgramPage(0, header, PageData(512, i, 1), 0, &paddr).status());
    paddrs.push_back(paddr);
  }
  dev.CorruptPageForTesting(paddrs[2]);

  std::vector<std::pair<uint64_t, PageHeader>> out;
  ASSERT_OK(dev.ScanSegmentHeaders(0, dev.DrainTimeNs(), &out).status());
  ASSERT_EQ(out.size(), 3u);
  for (const auto& [paddr, h] : out) {
    EXPECT_NE(paddr, paddrs[2]);
  }
  // The corrupt page still costs scan time and is counted.
  EXPECT_EQ(dev.stats().headers_scanned, 4u);
  EXPECT_GE(dev.stats().crc_errors, 1u);
}

TEST(NandFaultTest, CorruptionInHeaderOnlyModeIsDetected) {
  NandConfig config = TestNand();
  config.store_data = false;  // No payload stored: corruption flips a header bit.
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 11;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, PageData(512, 11, 1), 0, &paddr).status());
  dev.CorruptPageForTesting(paddr);
  EXPECT_EQ(dev.ReadPage(paddr, 0, nullptr, nullptr).status().code(),
            StatusCode::kDataLoss);
}

TEST(NandFaultTest, TransientReadFailuresRetryAndSurface) {
  NandConfig config = TestNand();
  config.fault.read_fail_ppm = 1000000;  // Every read op fails.
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, {}, 0, &paddr).status());

  auto read = dev.ReadPageWithRetry(paddr, 0, nullptr, nullptr, 3);
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(dev.stats().read_failures, 3u);
  EXPECT_EQ(dev.stats().read_retries, 2u);

  // Disarming restores normal reads; the media itself is undamaged.
  dev.ClearFaults();
  ASSERT_OK(dev.ReadPage(paddr, 0, nullptr, nullptr).status());
}

TEST(NandFaultTest, ProgramFailureConsumesSlotAndRetiresSegment) {
  NandConfig config = TestNand();
  config.fault.program_fail_ppm = 1000000;  // Every program op fails.
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  EXPECT_EQ(dev.ProgramPage(0, header, {}, 0, &paddr).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(dev.stats().program_failures, 1u);
  EXPECT_TRUE(dev.IsBadSegment(0));
  EXPECT_EQ(dev.NextFreePage(0), 1u);  // The failed program consumed the slot.
  EXPECT_FALSE(dev.IsProgrammed(dev.FirstPageOf(0)));

  // Further programs to a grown bad block are rejected outright.
  EXPECT_EQ(dev.ProgramPage(0, header, {}, 0, &paddr).status().code(),
            StatusCode::kDataLoss);
}

TEST(NandFaultTest, CrashAfterOpTakesDeviceOffline) {
  NandConfig config = TestNand();
  config.fault.crash_after_op = 2;
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, {}, 0, &paddr).status());
  ASSERT_OK(dev.ProgramPage(0, header, {}, 0, &paddr).status());
  EXPECT_FALSE(dev.fault().crashed());
  EXPECT_EQ(dev.ProgramPage(0, header, {}, 0, &paddr).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(dev.fault().crashed());
  // Offline means *everything* fails, with no state change.
  EXPECT_EQ(dev.ReadPage(0, 0, nullptr, nullptr).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(dev.EraseSegment(1, 0).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(dev.NextFreePage(0), 2u);

  // Power cycle: ClearFaults brings the device back with its contents intact.
  dev.ClearFaults();
  ASSERT_OK(dev.ReadPage(0, 0, nullptr, nullptr).status());
  ASSERT_OK(dev.ProgramPage(0, header, {}, 0, &paddr).status());
}

TEST(NandFaultTest, TornBatchKeepsCommittedPrefix) {
  NandConfig config = TestNand();
  config.fault.crash_after_op = 3;
  NandDevice dev(config);
  std::vector<NandDevice::ProgramRequest> requests(6);
  for (uint64_t i = 0; i < requests.size(); ++i) {
    requests[i].header.type = RecordType::kData;
    requests[i].header.lba = i;
  }
  std::vector<uint64_t> paddrs;
  std::vector<NandOp> ops;
  EXPECT_EQ(dev.ProgramBatch(0, requests, 0, &paddrs, &ops).code(),
            StatusCode::kUnavailable);
  // Exactly the pre-crash prefix is durable.
  EXPECT_EQ(paddrs.size(), 3u);
  EXPECT_EQ(dev.NextFreePage(0), 3u);
  for (uint64_t p : paddrs) {
    EXPECT_TRUE(dev.IsProgrammed(p));
  }
}

TEST(NandFaultTest, MaxEraseCountExcludesBadSegments) {
  NandConfig config = TestNand();
  config.fault.bad_block_schedule = {{0, 6}};  // Segment 0 dies on its 6th erase.
  NandDevice dev(config);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(dev.EraseSegment(0, 0).status());
  }
  ASSERT_OK(dev.EraseSegment(1, 0).status());
  EXPECT_EQ(dev.MaxEraseCount(), 5u);

  EXPECT_EQ(dev.EraseSegment(0, 0).status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(dev.IsBadSegment(0));
  EXPECT_EQ(dev.stats().erase_failures, 1u);
  // The retired segment no longer dominates the wear statistic.
  EXPECT_EQ(dev.MaxEraseCount(), 1u);
}

TEST(NandFaultTest, CopybackScrubCatchesCorruptSource) {
  NandDevice dev(TestNand());  // copyback_scrub defaults on.
  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 9;
  uint64_t src = 0;
  ASSERT_OK(dev.ProgramPage(0, header, PageData(512, 9, 1), 0, &src).status());
  dev.CorruptPageForTesting(src);

  uint64_t dst = 0;
  EXPECT_EQ(dev.CopybackPage(src, 2, 0, &dst).status().code(), StatusCode::kDataLoss);
  EXPECT_GE(dev.stats().crc_errors, 1u);
  // The scrub fires before the destination slot is consumed: nothing was relocated.
  EXPECT_EQ(dev.NextFreePage(2), 0u);
  EXPECT_EQ(dev.stats().copyback_pages, 0u);
  EXPECT_FALSE(dev.PageCrcIntact(src));
}

TEST(NandFaultTest, CopybackWithoutScrubRelocatesCorruptionDetectably) {
  NandConfig config = TestNand();
  config.copyback_scrub = false;
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 9;
  uint64_t src = 0;
  ASSERT_OK(dev.ProgramPage(0, header, PageData(512, 9, 1), 0, &src).status());
  dev.CorruptPageForTesting(src);

  // Without the scrub the corrupt bytes are copied verbatim — but because the stored
  // CRC travels with them, the next host read of the copy still reports the damage
  // instead of laundering it behind a freshly computed checksum.
  uint64_t dst = 0;
  ASSERT_OK(dev.CopybackPage(src, 2, 0, &dst).status());
  EXPECT_EQ(dev.stats().copyback_pages, 1u);
  EXPECT_EQ(dev.ReadPage(dst, 0, nullptr, nullptr).status().code(),
            StatusCode::kDataLoss);
}

TEST(NandFaultTest, ReadDisturbCorruptsAfterRepeatedReads) {
  NandConfig config = TestNand();
  config.fault.read_disturb_ppm_per_k_reads = 1000000;
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 5;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, PageData(512, 5, 1), 0, &paddr).status());

  // The effective rate is rate * (segment_reads / 1000): reads 1..999 draw at zero
  // ppm; the 1000th read of the segment reaches certainty and fails its own CRC
  // check (wear is applied before verification).
  for (uint64_t i = 0; i < 999; ++i) {
    ASSERT_OK(dev.ReadPage(paddr, 0, nullptr, nullptr).status()) << "read " << i;
  }
  EXPECT_EQ(dev.ReadPage(paddr, 0, nullptr, nullptr).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(dev.stats().read_disturb_corruptions, 1u);
  EXPECT_EQ(dev.stats().retention_corruptions, 0u);
  EXPECT_EQ(dev.SegmentReadCount(0), 1000u);
  EXPECT_FALSE(dev.PageCrcIntact(paddr));
}

TEST(NandFaultTest, RetentionCorruptsOldPages) {
  NandConfig config = TestNand();
  config.fault.retention_ppm_per_sec = 1000000;
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 3;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, PageData(512, 3, 1), 0, &paddr).status());

  // Young page: age < 1 virtual second draws at zero ppm.
  ASSERT_OK(dev.ReadPage(paddr, 500000000, nullptr, nullptr).status());
  // Old page: at 1e6 ppm/sec one second of age reaches certainty.
  EXPECT_EQ(dev.ReadPage(paddr, 2000000000, nullptr, nullptr).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(dev.stats().retention_corruptions, 1u);
  EXPECT_EQ(dev.stats().read_disturb_corruptions, 0u);
}

TEST(NandFaultTest, EraseResetsWearState) {
  NandConfig config = TestNand();
  config.fault.read_disturb_ppm_per_k_reads = 1000000;
  config.fault.retention_ppm_per_sec = 1000000;
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, PageData(512, 0, 1), 0, &paddr).status());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_OK(dev.ReadPage(paddr, 0, nullptr, nullptr).status());
  }
  EXPECT_EQ(dev.SegmentReadCount(0), 500u);

  // Erase: fresh oxide. The read counter restarts and a page programmed after the
  // erase is young again — a read a long virtual time after the *first* program
  // draws on the new page's age, not the segment's history.
  ASSERT_OK(dev.EraseSegment(0, 0).status());
  EXPECT_EQ(dev.SegmentReadCount(0), 0u);
  const uint64_t reprogram_ns = 3000000000;
  ASSERT_OK(dev.ProgramPage(0, header, PageData(512, 0, 2), reprogram_ns, &paddr)
                .status());
  EXPECT_EQ(dev.PageProgrammedAtNs(paddr), reprogram_ns);
  ASSERT_OK(dev.ReadPage(paddr, reprogram_ns + 500000000, nullptr, nullptr).status());
  EXPECT_EQ(dev.stats().read_disturb_corruptions, 0u);
  EXPECT_EQ(dev.stats().retention_corruptions, 0u);
}

TEST(NandFaultTest, DisarmKeepsCorruptedMedia) {
  // ClearFaults() stops future *draws*; it must not heal damage already done.
  // Wear decay is physical: a page corrupted by retention loss still fails its
  // CRC after the injection schedule is disarmed (e.g. across a power cycle).
  NandConfig config = TestNand();
  config.fault.retention_ppm_per_sec = 1000000;
  NandDevice dev(config);
  PageHeader header;
  header.type = RecordType::kData;
  header.lba = 8;
  uint64_t paddr = 0;
  ASSERT_OK(dev.ProgramPage(0, header, PageData(512, 8, 1), 0, &paddr).status());
  EXPECT_EQ(dev.ReadPage(paddr, 5000000000, nullptr, nullptr).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(dev.stats().retention_corruptions, 1u);

  dev.ClearFaults();
  EXPECT_EQ(dev.ReadPage(paddr, 9000000000, nullptr, nullptr).status().code(),
            StatusCode::kDataLoss);
  // No new wear draw happened; only the original flip is on record.
  EXPECT_EQ(dev.stats().retention_corruptions, 1u);
  EXPECT_FALSE(dev.PageCrcIntact(paddr));
}

TEST(NandFaultTest, WearCorruptionIsDeterministicPerSeed) {
  // Same seed + same op sequence => identical corruption sites and counters; the
  // basis for replayable media-reliability campaigns.
  NandConfig config = TestNand();
  config.fault.seed = 777;
  config.fault.read_disturb_ppm_per_k_reads = 400000;  // p = 0.4 past 1000 reads.
  auto run = [&config]() {
    NandDevice dev(config);
    PageHeader header;
    header.type = RecordType::kData;
    std::vector<uint64_t> paddrs;
    for (uint64_t i = 0; i < 4; ++i) {
      header.lba = i;
      uint64_t paddr = 0;
      IOSNAP_CHECK(dev.ProgramPage(0, header, PageData(512, i, 1), 0, &paddr).ok());
      paddrs.push_back(paddr);
    }
    std::vector<uint64_t> failing_reads;
    for (uint64_t i = 0; i < 1200; ++i) {
      auto read = dev.ReadPage(paddrs[i % paddrs.size()], 0, nullptr, nullptr);
      if (read.status().code() == StatusCode::kDataLoss) {
        failing_reads.push_back(i);
      }
    }
    return std::make_pair(failing_reads, dev.stats());
  };
  const auto [fails_a, stats_a] = run();
  const auto [fails_b, stats_b] = run();
  EXPECT_EQ(fails_a, fails_b);
  EXPECT_EQ(0, std::memcmp(&stats_a, &stats_b, sizeof(NandStats)));
  EXPECT_GT(stats_a.read_disturb_corruptions, 0u);
}

TEST(NandFaultTest, ZeroRatesLeaveTimingAndStateUntouched) {
  // Same ops on a default device and on one with an armed-but-zero fault config
  // must produce identical timing and stats.
  NandConfig armed = TestNand();
  armed.fault.seed = 12345;
  armed.fault.read_disturb_ppm_per_k_reads = 0;  // Wear knobs at zero must draw
  armed.fault.retention_ppm_per_sec = 0;         // no randomness on reads either.
  NandDevice a(TestNand());
  NandDevice b(armed);
  PageHeader header;
  header.type = RecordType::kData;
  for (uint64_t i = 0; i < 8; ++i) {
    header.lba = i;
    uint64_t pa = 0;
    uint64_t pb = 0;
    ASSERT_OK_AND_ASSIGN(NandOp oa, a.ProgramPage(0, header, PageData(512, i, 1), 0, &pa));
    ASSERT_OK_AND_ASSIGN(NandOp ob, b.ProgramPage(0, header, PageData(512, i, 1), 0, &pb));
    EXPECT_EQ(pa, pb);
    EXPECT_EQ(oa.finish_ns, ob.finish_ns);
    ASSERT_OK_AND_ASSIGN(NandOp ra, a.ReadPage(pa, oa.finish_ns, nullptr, nullptr));
    ASSERT_OK_AND_ASSIGN(NandOp rb, b.ReadPage(pb, ob.finish_ns, nullptr, nullptr));
    EXPECT_EQ(ra.finish_ns, rb.finish_ns);
  }
  ASSERT_OK_AND_ASSIGN(NandOp ea, a.EraseSegment(1, 0));
  ASSERT_OK_AND_ASSIGN(NandOp eb, b.EraseSegment(1, 0));
  EXPECT_EQ(ea.finish_ns, eb.finish_ns);
  EXPECT_EQ(a.DrainTimeNs(), b.DrainTimeNs());
  EXPECT_EQ(0, std::memcmp(&a.stats(), &b.stats(), sizeof(NandStats)));
}

}  // namespace
}  // namespace iosnap
