// Snapshot destaging to archival storage (§7 future work): full and incremental
// archives, restore, and flash-space reclamation.

#include "src/archive/snapshot_archiver.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

struct ArchiveFixture {
  ArchiveFixture() : harness(SmallConfig()), store(ArchiveConfig{}) {
    archiver = std::make_unique<SnapshotArchiver>(&harness.ftl(), &store);
  }

  FtlHarness harness;
  ArchiveStore store;
  std::unique_ptr<SnapshotArchiver> archiver;
};

TEST(ArchiveStoreTest, PutGetDelete) {
  ArchiveStore store(ArchiveConfig{});
  ArchiveImage image;
  image.archive_id = store.NextId();
  image.name = "x";
  image.blocks[3] = {1, 2, 3};
  const uint64_t finish = store.Put(std::move(image), 4096, 0);
  EXPECT_GT(finish, 0u);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_EQ(store.ImageCount(), 1u);
  ASSERT_OK_AND_ASSIGN(const ArchiveImage* got, store.Get(1));
  EXPECT_EQ(got->name, "x");
  EXPECT_OK(store.Delete(1));
  EXPECT_EQ(store.Delete(1).code(), StatusCode::kNotFound);
}

TEST(ArchiveStoreTest, DeleteRefusesBreakingParentChain) {
  ArchiveStore store(ArchiveConfig{});
  ArchiveImage base;
  base.archive_id = store.NextId();
  store.Put(std::move(base), 4096, 0);
  ArchiveImage delta;
  delta.archive_id = store.NextId();
  delta.parent_id = 1;
  store.Put(std::move(delta), 4096, 0);
  EXPECT_EQ(store.Delete(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_OK(store.Delete(2));
  EXPECT_OK(store.Delete(1));
}

TEST(ArchiveStoreTest, StreamingTimeScalesWithBytes) {
  ArchiveConfig config;
  ArchiveStore store(config);
  ArchiveImage small;
  small.archive_id = store.NextId();
  small.blocks[0] = std::vector<uint8_t>(4096);
  ArchiveImage large;
  large.archive_id = store.NextId();
  for (uint64_t i = 0; i < 1000; ++i) {
    large.blocks[i] = std::vector<uint8_t>(4096);
  }
  const uint64_t t1 = store.Put(std::move(small), 4096, 0);
  const uint64_t t2 = store.Put(std::move(large), 4096, t1);
  // The small put is dominated by the seek; the large one must pay at least the
  // streaming time of its 1000 pages at the configured bandwidth (plus its own seek).
  const auto expected_transfer = static_cast<uint64_t>(
      1000.0 * 4096.0 / static_cast<double>(config.bandwidth_bytes_per_sec) * kNsPerSec);
  EXPECT_GE(t2 - t1, config.seek_ns + expected_transfer);
  EXPECT_LE(t1, config.seek_ns + expected_transfer / 100);
}

TEST(ArchiverTest, FullArchiveRoundTrip) {
  ArchiveFixture f;
  ReferenceModel model;
  for (uint64_t lba = 0; lba < 30; ++lba) {
    ASSERT_OK(f.harness.Write(lba, lba + 1));
    model.Write(lba, lba + 1);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, f.harness.Snapshot("gold"));
  model.Snapshot(snap);

  ASSERT_OK_AND_ASSIGN(ArchiveResult archived,
                       f.archiver->ArchiveFull(snap, f.harness.now()));
  f.harness.AdvanceTo(archived.finish_ns);
  EXPECT_EQ(archived.blocks, 30u);
  ASSERT_OK_AND_ASSIGN(const ArchiveImage* image, f.store.Get(archived.archive_id));
  EXPECT_EQ(image->name, "gold");

  // Corrupt the live volume, then restore from the archive.
  for (uint64_t lba = 0; lba < 40; ++lba) {
    ASSERT_OK(f.harness.Write(lba, 999));
  }
  ASSERT_OK_AND_ASSIGN(uint64_t finish,
                       f.archiver->RestoreToPrimary(archived.archive_id, 40,
                                                    f.harness.now()));
  f.harness.AdvanceTo(finish);
  EXPECT_TRUE(f.harness.CheckView(kPrimaryView, model.snapshot_state(snap), 40));
}

TEST(ArchiverTest, DiffFindsChangesAdditionsDeletions) {
  ArchiveFixture f;
  ASSERT_OK(f.harness.Write(1, 1));
  ASSERT_OK(f.harness.Write(2, 1));
  ASSERT_OK(f.harness.Write(3, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t base, f.harness.Snapshot("base"));

  ASSERT_OK(f.harness.Write(2, 2));   // Changed.
  ASSERT_OK(f.harness.Write(7, 1));   // Added.
  ASSERT_OK(f.harness.Trim(3, 1));    // Deleted.
  ASSERT_OK_AND_ASSIGN(uint32_t target, f.harness.Snapshot("target"));

  uint64_t finish = f.harness.now();
  ASSERT_OK_AND_ASSIGN(SnapshotDiff diff,
                       f.archiver->Diff(base, target, f.harness.now(), &finish));
  f.harness.AdvanceTo(finish);
  EXPECT_EQ(diff.changed_or_added, (std::vector<uint64_t>{2, 7}));
  EXPECT_EQ(diff.deleted, (std::vector<uint64_t>{3}));
}

TEST(ArchiverTest, IncrementalChainRestores) {
  ArchiveFixture f;
  ReferenceModel model;
  Rng rng(7);
  uint64_t version = 0;
  const uint64_t lba_space = 40;

  auto churn = [&](int ops) {
    for (int i = 0; i < ops; ++i) {
      const uint64_t lba = rng.NextBelow(lba_space);
      ++version;
      IOSNAP_CHECK(f.harness.Write(lba, version).ok());
      model.Write(lba, version);
    }
  };

  churn(60);
  ASSERT_OK_AND_ASSIGN(uint32_t s1, f.harness.Snapshot("full"));
  model.Snapshot(s1);
  ASSERT_OK_AND_ASSIGN(ArchiveResult full, f.archiver->ArchiveFull(s1, f.harness.now()));
  f.harness.AdvanceTo(full.finish_ns);

  churn(20);
  ASSERT_OK(f.harness.Trim(5, 2));
  model.Trim(5, 2);
  ASSERT_OK_AND_ASSIGN(uint32_t s2, f.harness.Snapshot("incr"));
  model.Snapshot(s2);
  ASSERT_OK_AND_ASSIGN(
      ArchiveResult incr,
      f.archiver->ArchiveIncremental(s1, full.archive_id, s2, f.harness.now()));
  f.harness.AdvanceTo(incr.finish_ns);

  // The delta is much smaller than the full image.
  EXPECT_LT(incr.blocks, full.blocks);

  // Restore the incremental image over a trashed volume and verify s2's exact state.
  churn(100);
  ASSERT_OK_AND_ASSIGN(uint64_t finish,
                       f.archiver->RestoreToPrimary(incr.archive_id, lba_space,
                                                    f.harness.now()));
  f.harness.AdvanceTo(finish);
  EXPECT_TRUE(f.harness.CheckView(kPrimaryView, model.snapshot_state(s2), lba_space));
}

TEST(ArchiverTest, DestageFreesFlashSpace) {
  ArchiveFixture f;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(f.harness.Write(rng.NextBelow(48), static_cast<uint64_t>(i + 1)));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, f.harness.Snapshot("old"));
  // Overwrite everything: the snapshot's generation is now pinned only by the snapshot.
  for (uint64_t lba = 0; lba < 48; ++lba) {
    ASSERT_OK(f.harness.Write(lba, 1000 + lba));
  }

  const auto live_before = f.harness.ftl().LiveEpochs().size();
  ASSERT_OK_AND_ASSIGN(
      ArchiveResult archived,
      f.archiver->ArchiveFull(snap, f.harness.now(), /*delete_after=*/true));
  f.harness.AdvanceTo(archived.finish_ns);
  // The snapshot is gone from flash (its epoch left the live set) but fully retrievable.
  EXPECT_LT(f.harness.ftl().LiveEpochs().size(), live_before);
  EXPECT_FALSE(f.harness.ftl().snapshot_tree().LiveSnapshotIds().size() > 0);
  EXPECT_TRUE(f.store.Contains(archived.archive_id));
  EXPECT_EQ(f.harness.Activate(snap).status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArchiverTest, ArchiveErrorsSurface) {
  ArchiveFixture f;
  EXPECT_EQ(f.archiver->ArchiveFull(99, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(f.archiver->ArchiveIncremental(1, 99, 2, 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(f.archiver->RestoreToPrimary(99, 10, 0).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace iosnap
