// The Btrfs-like baseline: functional correctness (it must be a fair comparator, not a
// strawman) and the cost characteristics the Figure 11/12 benchmarks rely on.

#include "src/baseline/cow_store.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

struct BaselineFixture {
  explicit BaselineFixture(uint64_t commit_every = 64) {
    FtlConfig config = SmallConfig();
    config.snapshots_enabled = false;  // The baseline runs on a vanilla FTL.
    config.nand.store_data = false;
    auto ftl_or = Ftl::Create(config);
    IOSNAP_CHECK(ftl_or.ok());
    ftl = std::move(ftl_or).value();

    CowStoreOptions opts;
    opts.commit_every_ops = commit_every;
    opts.node_fanout = 16;
    auto store_or = CowStore::Create(ftl.get(), opts);
    IOSNAP_CHECK(store_or.ok());
    store = std::move(store_or).value();
  }

  uint64_t Now() const { return now; }
  void Advance(const IoResult& io) { now = std::max(now, io.CompletionNs()); }

  std::unique_ptr<Ftl> ftl;
  std::unique_ptr<CowStore> store;
  uint64_t now = 0;
};

TEST(CowStoreTest, WriteReadMapping) {
  BaselineFixture f;
  ASSERT_OK_AND_ASSIGN(IoResult w, f.store->Write(5, f.Now()));
  f.Advance(w);
  ASSERT_OK_AND_ASSIGN(IoResult r, f.store->Read(5, f.Now()));
  f.Advance(r);
  EXPECT_EQ(f.store->stats().data_block_writes, 1u);
  // Unwritten block: no device read.
  ASSERT_OK_AND_ASSIGN(IoResult miss, f.store->Read(6, f.Now()));
  EXPECT_EQ(miss.op.finish_ns, miss.op.issue_ns);
}

TEST(CowStoreTest, OutOfRangeRejected) {
  BaselineFixture f;
  EXPECT_EQ(f.store->Write(f.store->volume_blocks(), 0).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(f.store->Read(f.store->volume_blocks(), 0).status().code(),
            StatusCode::kOutOfRange);
}

TEST(CowStoreTest, CommitBackpressureSlowsSubsequentWrites) {
  BaselineFixture f(/*commit_every=*/8);
  uint64_t max_latency = 0;
  uint64_t min_latency = ~uint64_t{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_OK_AND_ASSIGN(IoResult io, f.store->Write(static_cast<uint64_t>(i), f.Now()));
    f.Advance(io);
    max_latency = std::max(max_latency, io.LatencyNs());
    min_latency = std::min(min_latency, io.LatencyNs());
  }
  EXPECT_EQ(f.store->stats().commits, 2u);
  // The transaction flush runs "in the background" but occupies the device: writes that
  // land while it drains queue noticeably longer than uncontended ones.
  EXPECT_GT(max_latency, min_latency * 3 / 2);
}

TEST(CowStoreTest, SnapshotIsolatesHistory) {
  BaselineFixture f;
  ASSERT_OK_AND_ASSIGN(IoResult w1, f.store->Write(1, f.Now()));
  f.Advance(w1);
  IoResult snap_io;
  ASSERT_OK_AND_ASSIGN(uint32_t snap, f.store->CreateSnapshot(f.Now(), &snap_io));
  f.Advance(snap_io);

  // Overwrite after the snapshot; snapshot read must hit the old data block.
  ASSERT_OK_AND_ASSIGN(IoResult w2, f.store->Write(1, f.Now()));
  f.Advance(w2);
  ASSERT_OK_AND_ASSIGN(IoResult sr, f.store->ReadSnapshot(snap, 1, f.Now()));
  f.Advance(sr);
  EXPECT_GT(sr.op.finish_ns, sr.op.issue_ns);  // Real device read.
  // Snapshot of unwritten block reads as a miss.
  ASSERT_OK_AND_ASSIGN(IoResult miss, f.store->ReadSnapshot(snap, 3, f.Now()));
  EXPECT_EQ(miss.op.finish_ns, miss.op.issue_ns);

  EXPECT_EQ(f.store->ReadSnapshot(99, 0, f.Now()).status().code(), StatusCode::kNotFound);
}

TEST(CowStoreTest, PostSnapshotWritesPayCowAmplification) {
  BaselineFixture f(/*commit_every=*/1000000);  // No commits during measurement.
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK_AND_ASSIGN(IoResult io, f.store->Write(rng.NextBelow(200), f.Now()));
    f.Advance(io);
  }
  ASSERT_OK_AND_ASSIGN(IoResult sync, f.store->Sync(f.Now()));
  f.Advance(sync);
  const uint64_t clones_before = f.store->stats().node_cow_clones;
  IoResult snap_io;
  ASSERT_OK(f.store->CreateSnapshot(f.Now(), &snap_io).status());
  f.Advance(snap_io);
  // First touch of each path after the snapshot re-CoWs the path.
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(IoResult io, f.store->Write(rng.NextBelow(200), f.Now()));
    f.Advance(io);
  }
  EXPECT_GT(f.store->stats().node_cow_clones, clones_before);
}

TEST(CowStoreTest, DeleteSnapshotReleasesBlocks) {
  BaselineFixture f(/*commit_every=*/32);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(IoResult io, f.store->Write(rng.NextBelow(64), f.Now()));
    f.Advance(io);
  }
  IoResult snap_io;
  ASSERT_OK_AND_ASSIGN(uint32_t snap, f.store->CreateSnapshot(f.Now(), &snap_io));
  f.Advance(snap_io);
  // Overwrite everything so the snapshot pins a full old generation.
  for (uint64_t b = 0; b < 64; ++b) {
    ASSERT_OK_AND_ASSIGN(IoResult io, f.store->Write(b, f.Now()));
    f.Advance(io);
  }
  const uint64_t pinned = f.store->stats().allocated_blocks;
  ASSERT_OK(f.store->DeleteSnapshot(snap, f.Now()));
  EXPECT_LT(f.store->stats().allocated_blocks, pinned);
  EXPECT_EQ(f.store->DeleteSnapshot(snap, f.Now()).code(), StatusCode::kNotFound);
}

TEST(CowStoreTest, SnapshotsPinBlocksAndGrowAllocation) {
  BaselineFixture f(/*commit_every=*/64);
  Rng rng(3);
  auto churn = [&](int ops) {
    for (int i = 0; i < ops; ++i) {
      auto io = f.store->Write(rng.NextBelow(64), f.Now());
      IOSNAP_CHECK(io.ok());
      f.Advance(*io);
    }
  };
  churn(128);
  const uint64_t before = f.store->stats().allocated_blocks;
  for (int s = 0; s < 3; ++s) {
    IoResult snap_io;
    ASSERT_OK(f.store->CreateSnapshot(f.Now(), &snap_io).status());
    f.Advance(snap_io);
    churn(128);
  }
  // Each snapshot pins the pre-snapshot generation: allocation grows with count.
  EXPECT_GT(f.store->stats().allocated_blocks, before + 64);
}

TEST(CowStoreTest, ManySnapshotsManyWritesStayConsistent) {
  BaselineFixture f(/*commit_every=*/32);
  Rng rng(4);
  std::vector<uint32_t> snaps;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 64; ++i) {
      ASSERT_OK_AND_ASSIGN(IoResult io, f.store->Write(rng.NextBelow(128), f.Now()));
      f.Advance(io);
    }
    IoResult snap_io;
    ASSERT_OK_AND_ASSIGN(uint32_t snap, f.store->CreateSnapshot(f.Now(), &snap_io));
    f.Advance(snap_io);
    snaps.push_back(snap);
  }
  // All snapshots remain readable.
  for (uint32_t snap : snaps) {
    for (uint64_t b = 0; b < 8; ++b) {
      ASSERT_OK(f.store->ReadSnapshot(snap, b, f.Now()).status());
    }
  }
  // And deleting them all releases space back towards the live set.
  const uint64_t with_snaps = f.store->stats().allocated_blocks;
  for (uint32_t snap : snaps) {
    ASSERT_OK(f.store->DeleteSnapshot(snap, f.Now()));
  }
  EXPECT_LT(f.store->stats().allocated_blocks, with_snaps);
}

}  // namespace
}  // namespace iosnap
