#include "src/workload/runner.h"

#include <gtest/gtest.h>

#include "src/workload/workload.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

TEST(RunnerTest, RunsRequestedOps) {
  FtlConfig config = SmallConfig();
  config.nand.store_data = false;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Ftl> ftl, Ftl::Create(config));
  SimClock clock;
  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);

  RandomWorkload workload(IoKind::kWrite, 100, 1);
  ASSERT_OK_AND_ASSIGN(RunResult result, runner.Run(&workload, 500, RunOptions{}));
  EXPECT_EQ(result.ops, 500u);
  EXPECT_EQ(result.latency.count(), 500u);
  EXPECT_EQ(result.bytes, 500 * config.nand.page_size_bytes);
  EXPECT_GT(result.ElapsedNs(), 0u);
  EXPECT_GE(result.drain_end_ns, result.end_ns);
  EXPECT_EQ(ftl->stats().user_writes, 500u);
}

TEST(RunnerTest, WorkloadExhaustionStopsEarly) {
  FtlConfig config = SmallConfig();
  config.nand.store_data = false;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Ftl> ftl, Ftl::Create(config));
  SimClock clock;
  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);

  SequentialWorkload workload(IoKind::kWrite, 0, 10);
  ASSERT_OK_AND_ASSIGN(RunResult result, runner.Run(&workload, 500, RunOptions{}));
  EXPECT_EQ(result.ops, 10u);
}

TEST(RunnerTest, TimelineRecordsWhenEnabled) {
  FtlConfig config = SmallConfig();
  config.nand.store_data = false;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Ftl> ftl, Ftl::Create(config));
  SimClock clock;
  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);

  RandomWorkload workload(IoKind::kWrite, 100, 2);
  RunOptions options;
  options.record_timeline = true;
  ASSERT_OK_AND_ASSIGN(RunResult result, runner.Run(&workload, 50, options));
  EXPECT_EQ(result.timeline.samples().size(), 50u);
}

TEST(RunnerTest, QueueDepthImprovesReadThroughput) {
  auto throughput = [](uint64_t queue_depth) {
    FtlConfig config = SmallConfig();
    config.nand.store_data = false;
    auto ftl_or = Ftl::Create(config);
    IOSNAP_CHECK(ftl_or.ok());
    std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
    SimClock clock;
    FtlTarget target(ftl.get());
    Runner runner(&target, &clock, config.nand.page_size_bytes);

    // Preload, then random reads.
    SequentialWorkload fill(IoKind::kWrite, 0, 512);
    IOSNAP_CHECK(runner.Run(&fill, 512, RunOptions{}).ok());
    const uint64_t start = clock.NowNs();
    RandomWorkload reads(IoKind::kRead, 512, 3);
    RunOptions options;
    options.queue_depth = queue_depth;
    auto result = runner.Run(&reads, 400, options);
    IOSNAP_CHECK(result.ok());
    return static_cast<double>(result->bytes) /
           static_cast<double>(clock.NowNs() - start);
  };
  EXPECT_GT(throughput(8), throughput(1) * 1.5);
}

TEST(RunnerTest, BatchModeMatchesQueueDepthRun) {
  // batch=N submits through DoOpV; with the same workload stream and grouping it must
  // land the FTL in the same state as the scalar queue_depth=N loop.
  auto run = [](bool batched) {
    FtlConfig config = SmallConfig();
    config.nand.store_data = false;
    auto ftl_or = Ftl::Create(config);
    IOSNAP_CHECK(ftl_or.ok());
    std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
    SimClock clock;
    FtlTarget target(ftl.get());
    Runner runner(&target, &clock, config.nand.page_size_bytes);

    MixedWorkload workload(/*read_fraction=*/0.5, 200, 7);
    RunOptions options;
    if (batched) {
      options.batch = 8;
    } else {
      options.queue_depth = 8;
    }
    auto result = runner.Run(&workload, 400, options);
    IOSNAP_CHECK(result.ok());
    struct Outcome {
      uint64_t ops, bytes, end_ns, writes, reads;
    };
    return Outcome{result->ops, result->bytes, result->end_ns,
                   ftl->stats().user_writes, ftl->stats().user_reads};
  };
  const auto scalar = run(false);
  const auto vectored = run(true);
  EXPECT_EQ(vectored.ops, scalar.ops);
  EXPECT_EQ(vectored.bytes, scalar.bytes);
  EXPECT_EQ(vectored.end_ns, scalar.end_ns);
  EXPECT_EQ(vectored.writes, scalar.writes);
  EXPECT_EQ(vectored.reads, scalar.reads);
}

TEST(RunnerTest, BatchModeMixedKindsAndExhaustion) {
  FtlConfig config = SmallConfig();
  config.nand.store_data = false;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Ftl> ftl, Ftl::Create(config));
  SimClock clock;
  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);

  // 30 ops against a 30-op budget of 64-sized batches: exhaustion mid-batch.
  MixedWorkload workload(/*read_fraction=*/0.3, 64, 11);
  RunOptions options;
  options.batch = 64;
  ASSERT_OK_AND_ASSIGN(RunResult result, runner.Run(&workload, 30, options));
  EXPECT_EQ(result.ops, 30u);
  EXPECT_EQ(result.latency.count(), 30u);
  EXPECT_EQ(ftl->stats().user_writes + ftl->stats().user_reads, 30u);
}

TEST(RunnerTest, AfterOpCallbackFires) {
  FtlConfig config = SmallConfig();
  config.nand.store_data = false;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Ftl> ftl, Ftl::Create(config));
  SimClock clock;
  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);

  uint64_t calls = 0;
  uint64_t last_index = 0;
  RunOptions options;
  options.after_op = [&](uint64_t index, uint64_t now_ns) {
    ++calls;
    last_index = index;
  };
  RandomWorkload workload(IoKind::kWrite, 10, 4);
  ASSERT_OK(runner.Run(&workload, 25, options).status());
  EXPECT_EQ(calls, 25u);
  EXPECT_EQ(last_index, 24u);
}

}  // namespace
}  // namespace iosnap
