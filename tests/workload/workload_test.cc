#include "src/workload/workload.h"

#include <map>

#include <gtest/gtest.h>

namespace iosnap {
namespace {

TEST(SequentialWorkloadTest, EmitsRangeThenExhausts) {
  SequentialWorkload w(IoKind::kWrite, 10, 3);
  EXPECT_EQ(w.Next()->lba, 10u);
  EXPECT_EQ(w.Next()->lba, 11u);
  EXPECT_EQ(w.Next()->lba, 12u);
  EXPECT_FALSE(w.Next().has_value());
}

TEST(SequentialWorkloadTest, WrapsWhenAsked) {
  SequentialWorkload w(IoKind::kRead, 0, 2, /*wrap=*/true);
  for (int i = 0; i < 10; ++i) {
    const auto op = w.Next();
    ASSERT_TRUE(op.has_value());
    EXPECT_EQ(op->lba, static_cast<uint64_t>(i % 2));
    EXPECT_EQ(op->kind, IoKind::kRead);
  }
}

TEST(RandomWorkloadTest, StaysInBoundsAndCoversSpace) {
  RandomWorkload w(IoKind::kWrite, 16, 1);
  std::map<uint64_t, int> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto op = w.Next();
    ASSERT_TRUE(op.has_value());
    ASSERT_LT(op->lba, 16u);
    ++seen[op->lba];
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(MixedWorkloadTest, RespectsReadFraction) {
  MixedWorkload w(0.7, 100, 2);
  int reads = 0;
  for (int i = 0; i < 10000; ++i) {
    reads += (w.Next()->kind == IoKind::kRead) ? 1 : 0;
  }
  EXPECT_NEAR(reads / 10000.0, 0.7, 0.03);
}

TEST(ZipfWorkloadTest, SkewsTowardsHotBlocks) {
  ZipfWorkload w(IoKind::kWrite, 1000, 0.9, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const auto op = w.Next();
    ASSERT_LT(op->lba, 1000u);
    ++counts[op->lba];
  }
  // The hottest block should see far more than the uniform share (20 hits).
  int hottest = 0;
  for (const auto& [lba, count] : counts) {
    hottest = std::max(hottest, count);
  }
  EXPECT_GT(hottest, 200);
  // But the tail is still touched.
  EXPECT_GT(counts.size(), 250u);
}

}  // namespace
}  // namespace iosnap
