#include "src/core/snapshot_tree.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace iosnap {
namespace {

TEST(SnapshotTreeTest, RootEpochExists) {
  SnapshotTree tree;
  EXPECT_TRUE(tree.EpochExists(kRootEpoch));
  EXPECT_EQ(tree.EpochCount(), 1u);
  EXPECT_EQ(tree.ParentOf(kRootEpoch), kNoEpoch);
}

TEST(SnapshotTreeTest, NewEpochsChain) {
  SnapshotTree tree;
  const uint32_t e1 = tree.NewEpoch(kRootEpoch);
  const uint32_t e2 = tree.NewEpoch(e1);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(e2, 2u);
  EXPECT_EQ(tree.ParentOf(e2), e1);
  const std::vector<uint32_t> lineage = tree.Lineage(e2);
  EXPECT_EQ(lineage, (std::vector<uint32_t>{2, 1, 0}));
  EXPECT_TRUE(tree.InLineage(e2, kRootEpoch));
  EXPECT_TRUE(tree.InLineage(e2, e2));
  EXPECT_FALSE(tree.InLineage(e1, e2));
}

TEST(SnapshotTreeTest, ForkedLineagesAreDisjoint) {
  // The Figure 4 scenario: S1, S2, S4 on one path; activating S1 forks S3's branch.
  SnapshotTree tree;
  const uint32_t e1 = tree.NewEpoch(kRootEpoch);  // After S1 (froze epoch 0).
  const uint32_t e2 = tree.NewEpoch(e1);          // After S2 (froze epoch 1).
  const uint32_t e3 = tree.NewEpoch(kRootEpoch);  // Activation of S1 forks off epoch 0.
  EXPECT_TRUE(tree.InLineage(e3, kRootEpoch));
  EXPECT_FALSE(tree.InLineage(e3, e1));
  EXPECT_FALSE(tree.InLineage(e2, e3));
  EXPECT_EQ(tree.ChildrenOf(kRootEpoch), (std::vector<uint32_t>{e1, e3}));
}

TEST(SnapshotTreeTest, SnapshotLifecycle) {
  SnapshotTree tree;
  const uint32_t s1 = tree.AddSnapshot(kRootEpoch, 100, "first");
  EXPECT_EQ(s1, 1u);
  EXPECT_TRUE(tree.Exists(s1));
  ASSERT_OK_AND_ASSIGN(SnapshotInfo info, tree.Get(s1));
  EXPECT_EQ(info.epoch, kRootEpoch);
  EXPECT_EQ(info.create_seq, 100u);
  EXPECT_EQ(info.name, "first");
  EXPECT_FALSE(info.deleted);

  EXPECT_OK(tree.MarkDeleted(s1));
  EXPECT_EQ(tree.MarkDeleted(s1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(tree.MarkDeleted(99).code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree.LiveSnapshotIds().empty());
}

TEST(SnapshotTreeTest, LiveEpochsExcludeDeleted) {
  SnapshotTree tree;
  const uint32_t s1 = tree.AddSnapshot(kRootEpoch, 1, "a");
  const uint32_t e1 = tree.NewEpoch(kRootEpoch);
  tree.AddSnapshot(e1, 2, "b");
  tree.NewEpoch(e1);
  EXPECT_EQ(tree.LiveSnapshotEpochs(), (std::vector<uint32_t>{0, 1}));
  EXPECT_OK(tree.MarkDeleted(s1));
  EXPECT_EQ(tree.LiveSnapshotEpochs(), (std::vector<uint32_t>{1}));
}

TEST(SnapshotTreeTest, SnapshotDepthCountsLiveAncestors) {
  SnapshotTree tree;
  // Chain: S1 freezes e0; S2 freezes e1; S3 freezes e2.
  const uint32_t s1 = tree.AddSnapshot(kRootEpoch, 1, "s1");
  const uint32_t e1 = tree.NewEpoch(kRootEpoch);
  const uint32_t s2 = tree.AddSnapshot(e1, 2, "s2");
  const uint32_t e2 = tree.NewEpoch(e1);
  const uint32_t s3 = tree.AddSnapshot(e2, 3, "s3");
  tree.NewEpoch(e2);
  EXPECT_EQ(tree.SnapshotDepth(s1), 0);
  EXPECT_EQ(tree.SnapshotDepth(s2), 1);
  EXPECT_EQ(tree.SnapshotDepth(s3), 2);
  EXPECT_OK(tree.MarkDeleted(s2));
  EXPECT_EQ(tree.SnapshotDepth(s3), 1);
}

TEST(SnapshotTreeTest, SerializeRoundTrip) {
  SnapshotTree tree;
  tree.AddSnapshot(kRootEpoch, 10, "alpha");
  const uint32_t e1 = tree.NewEpoch(kRootEpoch);
  const uint32_t s2 = tree.AddSnapshot(e1, 20, "beta");
  tree.NewEpoch(e1);
  EXPECT_OK(tree.MarkDeleted(s2));

  std::vector<uint8_t> bytes;
  tree.SerializeTo(&bytes);
  size_t offset = 0;
  ASSERT_OK_AND_ASSIGN(SnapshotTree copy, SnapshotTree::Deserialize(bytes, &offset));
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(copy.EpochCount(), tree.EpochCount());
  EXPECT_EQ(copy.LiveSnapshotIds(), tree.LiveSnapshotIds());
  ASSERT_OK_AND_ASSIGN(SnapshotInfo beta, copy.Get(s2));
  EXPECT_TRUE(beta.deleted);
  EXPECT_EQ(beta.name, "beta");
  // New snapshot ids continue where the original left off (epoch 2 is still unfrozen).
  const uint32_t s3 = copy.AddSnapshot(2, 30, "gamma");
  EXPECT_EQ(s3, 3u);
}

TEST(SnapshotTreeTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> bytes = {1, 2, 3};
  size_t offset = 0;
  EXPECT_FALSE(SnapshotTree::Deserialize(bytes, &offset).ok());
}

TEST(SnapshotTreeTest, RestoreRebuildsDeterministically) {
  SnapshotTree tree;
  tree.RestoreEpoch(1, 0);
  tree.RestoreEpoch(2, 1);
  SnapshotInfo info;
  info.snap_id = 5;
  info.epoch = 1;
  info.create_seq = 50;
  tree.RestoreSnapshot(info);
  EXPECT_EQ(tree.Lineage(2), (std::vector<uint32_t>{2, 1, 0}));
  ASSERT_OK_AND_ASSIGN(SnapshotInfo got, tree.Get(5));
  EXPECT_EQ(got.epoch, 1u);
  // Next id continues beyond the restored one.
  EXPECT_EQ(tree.AddSnapshot(2, 60, ""), 6u);
}

}  // namespace
}  // namespace iosnap
