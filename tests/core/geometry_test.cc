// Device-geometry sweeps: the snapshot semantics must hold across page sizes, segment
// sizes and channel counts (the paper runs both 4 KiB and 512 B sector formats).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

struct Geometry {
  std::string name;
  uint64_t page_bytes;
  uint64_t pages_per_segment;
  uint64_t num_segments;
  uint32_t channels;
};

std::vector<Geometry> Geometries() {
  return {
      {"Sectors512B", 512, 64, 32, 4},
      {"Pages4K", 4096, 32, 24, 4},
      {"Pages16K", 16384, 16, 24, 8},
      {"SingleChannel", 4096, 32, 24, 1},
      {"TinySegments", 4096, 8, 64, 4},
      {"WideDevice", 4096, 16, 48, 32},
  };
}

class GeometryTest : public ::testing::TestWithParam<Geometry> {
 protected:
  FtlConfig Config() const {
    FtlConfig config;
    config.nand.page_size_bytes = GetParam().page_bytes;
    config.nand.pages_per_segment = GetParam().pages_per_segment;
    config.nand.num_segments = GetParam().num_segments;
    config.nand.num_channels = GetParam().channels;
    config.nand.store_data = true;
    config.validity_chunk_bits = 128;
    config.gc_reserve_segments = 2;
    config.gc_low_free_segments = 4;
    config.gc_high_free_segments = 6;
    return config;
  }
};

TEST_P(GeometryTest, SnapshotLifecycleUnderChurn) {
  FtlHarness h(Config());
  ReferenceModel model;
  Rng rng(GetParam().page_bytes);
  const uint64_t lba_space = std::min<uint64_t>(h.ftl().LbaCount() / 3, 48);
  uint64_t version = 0;

  std::vector<uint32_t> snaps;
  const uint64_t total = Config().nand.TotalPages();
  for (uint64_t i = 0; i < total * 2; ++i) {
    const uint64_t lba = rng.NextBelow(lba_space);
    ++version;
    ASSERT_OK(h.Write(lba, version)) << GetParam().name << " write " << i;
    model.Write(lba, version);
    h.ftl().PumpBackground(h.now());
    if (i == total / 2 || i == total) {
      while (snaps.size() >= 2) {
        ASSERT_OK(h.Delete(snaps.front()));
        model.DeleteSnapshot(snaps.front());
        snaps.erase(snaps.begin());
      }
      ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("geo"));
      model.Snapshot(snap);
      snaps.push_back(snap);
    }
  }

  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space))
      << GetParam().name;
  for (uint32_t snap : snaps) {
    ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
    EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), lba_space))
        << GetParam().name << " snapshot " << snap;
    ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  }
}

TEST_P(GeometryTest, CrashRecoveryHoldsAcrossGeometry) {
  FtlHarness h(Config());
  ReferenceModel model;
  Rng rng(GetParam().channels);
  const uint64_t lba_space = std::min<uint64_t>(h.ftl().LbaCount() / 3, 32);
  uint64_t version = 0;
  for (int i = 0; i < 120; ++i) {
    const uint64_t lba = rng.NextBelow(lba_space);
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("geo"));
  model.Snapshot(snap);
  for (int i = 0; i < 60; ++i) {
    const uint64_t lba = rng.NextBelow(lba_space);
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
  }
  ASSERT_OK(h.CrashAndReopen());
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space))
      << GetParam().name;
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), lba_space))
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometryTest, ::testing::ValuesIn(Geometries()),
                         [](const ::testing::TestParamInfo<Geometry>& param_info) {
                           return param_info.param.name;
                         });

}  // namespace
}  // namespace iosnap
