// Latency-attribution invariants on the full FTL.
//
// Two guarantees are under test (see src/obs/latency.h):
//  * Exactness — every recorded op's spans sum bit-exactly to its end-to-end latency,
//    on every submission path (scalar, vectored, multi-queue at several depths), with
//    the cleaner active, with snapshot CoW in the path, and with faults injected.
//  * Non-perturbation — attaching the attributor changes no simulation outcome: stats,
//    completion times, and the full per-op latency timeline are identical with
//    attribution on and off.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/sim_clock.h"
#include "src/core/ftl.h"
#include "src/obs/latency.h"
#include "src/workload/runner.h"
#include "src/workload/workload.h"

namespace iosnap {
namespace {

// Small enough that overwrite churn forces steady GC, large enough that the multi-queue
// pipeline has channels to fill.
FtlConfig TestConfig() {
  FtlConfig config;
  config.nand.page_size_bytes = 4096;
  config.nand.pages_per_segment = 64;
  config.nand.num_segments = 64;
  config.nand.num_channels = 4;
  config.nand.store_data = false;
  config.overprovision = 0.25;
  config.validity_chunk_bits = 1024;
  return config;
}

struct RunSetup {
  uint32_t queues = 0;    // 0 = scalar/batch path.
  uint32_t iodepth = 1;
  uint64_t batch = 1;
  uint64_t queue_depth = 1;
  bool faults = false;
  uint32_t buses = 1;
  bool copyback = false;  // Cleaner copy-forward via on-die copyback.

  std::string Label() const {
    return "queues=" + std::to_string(queues) + " iodepth=" + std::to_string(iodepth) +
           " batch=" + std::to_string(batch) + " qd=" + std::to_string(queue_depth) +
           " buses=" + std::to_string(buses) + (copyback ? " copyback" : "") +
           (faults ? " faults" : "");
  }
};

struct RunOutput {
  FtlStats stats;
  uint64_t pages_programmed = 0;
  uint64_t copyback_pages = 0;
  uint64_t end_ns = 0;
  uint64_t drain_end_ns = 0;
  uint64_t ops = 0;
  std::string timeline_csv;  // Per-op (issue, latency) series: the bit-identity probe.
  LatencyHistogram latency;
};

// Runs overwrite churn with a mid-run snapshot (so validity CoW lands in the write
// path) and returns the outcome. `attributor` may be nullptr: attribution off.
RunOutput RunChurn(const RunSetup& setup, LatencyAttributor* attributor) {
  FtlConfig config = TestConfig();
  config.nand.buses = setup.buses;
  config.gc_copyback = setup.copyback;
  if (setup.faults) {
    config.nand.fault.seed = 17;
    config.nand.fault.program_fail_ppm = 400;
    config.nand.fault.read_fail_ppm = 400;
    config.nand.fault.erase_fail_ppm = 200;
  }
  auto ftl_or = Ftl::Create(config);
  IOSNAP_CHECK(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  ftl->SetLatencyAttributor(attributor);

  SimClock clock;
  const uint64_t lba_space = ftl->LbaCount() * 3 / 4;
  const uint64_t ops = lba_space * 4;  // ~4x overwrite: steady GC.
  RandomWorkload workload(IoKind::kWrite, lba_space, /*seed=*/99);
  FtlTarget target(ftl.get());
  Runner runner(&target, &clock, config.nand.page_size_bytes);

  RunOptions options;
  options.queues = setup.queues;
  options.iodepth = setup.iodepth;
  options.batch = setup.batch;
  options.queue_depth = setup.queue_depth;
  options.record_timeline = true;
  // Snapshot held over the middle third of the run: long enough that overwrites hit
  // the frozen epoch's validity CoW path, deleted before pinned pages exhaust the
  // small device.
  bool snapped = false;
  bool deleted = false;
  uint32_t snap_id = 0;
  options.after_op = [&](uint64_t index, uint64_t now_ns) {
    if (!snapped && index >= ops / 3) {
      snapped = true;
      auto snap = ftl->CreateSnapshot("mid", now_ns);
      IOSNAP_CHECK(snap.ok());
      snap_id = snap->snap_id;
    } else if (snapped && !deleted && index >= ops / 2) {
      deleted = true;
      IOSNAP_CHECK(ftl->DeleteSnapshot(snap_id, now_ns).ok());
    }
  };
  auto result = runner.Run(&workload, ops, options);
  IOSNAP_CHECK(result.ok());

  RunOutput out;
  out.stats = ftl->stats();
  out.pages_programmed = ftl->device().stats().pages_programmed;
  out.copyback_pages = ftl->device().stats().copyback_pages;
  out.end_ns = result->end_ns;
  out.drain_end_ns = result->drain_end_ns;
  out.ops = result->ops;
  out.timeline_csv = result->timeline.ToCsv(1000000, "t", "lat");
  out.latency = result->latency;
  return out;
}

void ExpectExactSums(const LatencyAttributor& attributor, const std::string& label) {
  const std::vector<SpanRecord> records = attributor.Records();
  ASSERT_FALSE(records.empty()) << label;
  for (const SpanRecord& record : records) {
    ASSERT_EQ(record.spans.TotalNs(), record.complete_ns - record.issue_ns)
        << label << " seq=" << record.seq << " lba=" << record.lba;
  }
}

// The tentpole matrix: queues {1,2,4} x iodepth {1,8,32}, GC active throughout.
TEST(AttributionExactnessTest, QueuedPathsSumExactly) {
  for (uint32_t queues : {1u, 2u, 4u}) {
    for (uint32_t iodepth : {1u, 8u, 32u}) {
      RunSetup setup;
      setup.queues = queues;
      setup.iodepth = iodepth;
      setup.batch = 8;
      LatencyAttributor attributor;
      const RunOutput out = RunChurn(setup, &attributor);
      ASSERT_GT(out.stats.gc_segments_cleaned, 0u) << setup.Label();
      // Every completed op produced exactly one record.
      EXPECT_EQ(attributor.ops(), out.ops) << setup.Label();
      ExpectExactSums(attributor, setup.Label());
      // The cleaner ran concurrently with the workload, so some foreground waits must
      // be attributed to background interference.
      EXPECT_GT(attributor.SpanTotalNs(LatencySpan::kGcWait), 0u) << setup.Label();
      // Snapshot CoW charged host-side time on post-snapshot overwrites.
      EXPECT_GT(attributor.SpanTotalNs(LatencySpan::kCow), 0u) << setup.Label();
      EXPECT_GT(attributor.SpanTotalNs(LatencySpan::kMap), 0u) << setup.Label();
    }
  }
}

// ISSUE 8 matrix: buses {1,2,4} x copyback on/off, forced GC throughout. Exactness
// must survive multi-bus striping (bus_wait computed against per-bus horizons) and
// the gc_copy records the cleaner emits for copyback relocations (whose on-die form
// carries bus == 0 legitimately).
TEST(AttributionExactnessTest, MultiBusAndCopybackSumExactly) {
  for (uint32_t buses : {1u, 2u, 4u}) {
    for (bool copyback : {false, true}) {
      RunSetup setup;
      setup.queues = 2;
      setup.iodepth = 8;
      setup.batch = 8;
      setup.buses = buses;
      setup.copyback = copyback;
      LatencyAttributor attributor;
      const RunOutput out = RunChurn(setup, &attributor);
      ASSERT_GT(out.stats.gc_segments_cleaned, 0u) << setup.Label();
      ExpectExactSums(attributor, setup.Label());
      // One record per host op, plus — with copyback on — exactly one gc_copy record
      // per relocated page; without it, no gc_copy records at all.
      const uint64_t gc_copies =
          attributor.EndToEndHistogram(LatencyOpKind::kGcCopy).count();
      EXPECT_EQ(attributor.ops(), out.ops + gc_copies) << setup.Label();
      if (copyback) {
        EXPECT_GT(out.copyback_pages, 0u) << setup.Label();
        EXPECT_EQ(gc_copies, out.copyback_pages) << setup.Label();
      } else {
        EXPECT_EQ(out.copyback_pages, 0u) << setup.Label();
        EXPECT_EQ(gc_copies, 0u) << setup.Label();
      }
    }
  }
}

TEST(AttributionExactnessTest, ScalarAndBatchPathsSumExactly) {
  for (const RunSetup& setup :
       {RunSetup{.queue_depth = 1}, RunSetup{.queue_depth = 16},
        RunSetup{.batch = 8}, RunSetup{.batch = 32}}) {
    LatencyAttributor attributor;
    const RunOutput out = RunChurn(setup, &attributor);
    ASSERT_GT(out.stats.gc_segments_cleaned, 0u) << setup.Label();
    EXPECT_EQ(attributor.ops(), out.ops) << setup.Label();
    ExpectExactSums(attributor, setup.Label());
  }
}

TEST(AttributionExactnessTest, HoldsUnderFaultInjection) {
  for (uint32_t queues : {0u, 2u}) {
    RunSetup setup;
    setup.queues = queues;
    setup.iodepth = queues > 0 ? 8 : 1;
    setup.batch = queues > 0 ? 8 : 1;
    setup.queue_depth = 8;
    setup.faults = true;
    LatencyAttributor attributor;
    const RunOutput out = RunChurn(setup, &attributor);
    // Program failures force rerouted commits and read retries re-occupy channels;
    // the final attempt's spans must still sum to its latency.
    EXPECT_EQ(attributor.ops(), out.ops) << setup.Label();
    ExpectExactSums(attributor, setup.Label());
  }
}

// Per-path span composition on handmade ops: write, mapped read, unmapped read
// (never touches the device), and trim.
TEST(AttributionExactnessTest, ScalarOpKindsDecomposeAsDocumented) {
  auto ftl_or = Ftl::Create(TestConfig());
  ASSERT_TRUE(ftl_or.ok());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();
  LatencyAttributor attributor;
  ftl->SetLatencyAttributor(&attributor);
  const FtlConfig& config = ftl->config();

  auto write = ftl->Write(5, {}, 0);
  ASSERT_TRUE(write.ok());
  auto read = ftl->Read(5, write->CompletionNs(), nullptr);
  ASSERT_TRUE(read.ok());
  auto unmapped = ftl->Read(6, read->CompletionNs(), nullptr);
  ASSERT_TRUE(unmapped.ok());
  auto trim = ftl->Trim(5, 1, unmapped->CompletionNs());
  ASSERT_TRUE(trim.ok());

  const std::vector<SpanRecord> records = attributor.Records();
  ASSERT_EQ(records.size(), 4u);
  for (const SpanRecord& record : records) {
    EXPECT_EQ(record.spans.TotalNs(), record.complete_ns - record.issue_ns);
  }
  EXPECT_EQ(records[0].kind, LatencyOpKind::kWrite);
  EXPECT_EQ(records[0].spans[LatencySpan::kMap],
            config.host_map_lookup_ns + config.host_map_update_ns);
  EXPECT_GT(records[0].spans[LatencySpan::kCell], 0u);
  EXPECT_EQ(records[1].kind, LatencyOpKind::kRead);
  EXPECT_EQ(records[1].spans[LatencySpan::kMap], config.host_map_lookup_ns);
  EXPECT_GT(records[1].spans[LatencySpan::kCell], 0u);
  // Unmapped read: zero device time, the map lookup is the whole latency.
  EXPECT_EQ(records[2].TotalNs(), config.host_map_lookup_ns);
  EXPECT_EQ(records[2].spans[LatencySpan::kCell], 0u);
  EXPECT_EQ(records[3].kind, LatencyOpKind::kTrim);
  EXPECT_GT(records[3].spans[LatencySpan::kHostOther], 0u);  // Trim note charge.
}

// Attribution off == attribution on, bit for bit: same counters, same completion
// times, same per-op latency series.
TEST(AttributionIdentityTest, DetachedRunsAreBitIdentical) {
  for (uint32_t queues : {0u, 2u}) {
    RunSetup setup;
    setup.queues = queues;
    setup.iodepth = queues > 0 ? 8 : 1;
    setup.batch = queues > 0 ? 8 : 1;
    setup.queue_depth = 8;
    LatencyAttributor attributor;
    const RunOutput with = RunChurn(setup, &attributor);
    const RunOutput without = RunChurn(setup, nullptr);
    EXPECT_GT(attributor.ops(), 0u);

    EXPECT_EQ(with.ops, without.ops) << setup.Label();
    EXPECT_EQ(with.end_ns, without.end_ns) << setup.Label();
    EXPECT_EQ(with.drain_end_ns, without.drain_end_ns) << setup.Label();
    EXPECT_EQ(with.pages_programmed, without.pages_programmed) << setup.Label();
    EXPECT_EQ(with.stats.user_writes, without.stats.user_writes) << setup.Label();
    EXPECT_EQ(with.stats.gc_segments_cleaned, without.stats.gc_segments_cleaned)
        << setup.Label();
    EXPECT_EQ(with.stats.gc_pages_copied, without.stats.gc_pages_copied)
        << setup.Label();
    EXPECT_EQ(with.stats.validity_cow_bytes, without.stats.validity_cow_bytes)
        << setup.Label();
    EXPECT_EQ(with.latency.count(), without.latency.count()) << setup.Label();
    EXPECT_EQ(with.latency.MaxNs(), without.latency.MaxNs()) << setup.Label();
    EXPECT_EQ(with.latency.PercentileNs(50), without.latency.PercentileNs(50))
        << setup.Label();
    EXPECT_EQ(with.latency.PercentileNs(99.9), without.latency.PercentileNs(99.9))
        << setup.Label();
    // The full per-op (issue time, latency) series matches sample for sample.
    EXPECT_EQ(with.timeline_csv, without.timeline_csv) << setup.Label();
  }
}

// The attributor's aggregate view agrees with the runner's own accounting: per-kind
// end-to-end histograms see the same population.
TEST(AttributionConsistencyTest, EndToEndHistogramMatchesRunner) {
  RunSetup setup;
  setup.queues = 2;
  setup.iodepth = 8;
  setup.batch = 8;
  LatencyAttributor attributor;
  const RunOutput out = RunChurn(setup, &attributor);
  const LatencyHistogram& e2e = attributor.EndToEndHistogram(LatencyOpKind::kWrite);
  EXPECT_EQ(e2e.count(), out.latency.count());
  EXPECT_EQ(e2e.MaxNs(), out.latency.MaxNs());
  EXPECT_EQ(e2e.PercentileNs(50), out.latency.PercentileNs(50));
}

}  // namespace
}  // namespace iosnap
