// Crash recovery and checkpoint restart (§5.5), including torn checkpoints and crashes
// that race the segment cleaner.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/checkpoint.h"
#include "src/core/ftl.h"
#include "src/core/recovery.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

TEST(RecoveryTest, CrashRecoversActiveState) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  for (uint64_t lba = 0; lba < 30; ++lba) {
    ASSERT_OK(h.Write(lba, lba + 1));
    model.Write(lba, lba + 1);
  }
  ASSERT_OK(h.Trim(5, 3));
  model.Trim(5, 3);
  ASSERT_OK(h.Write(5, 99));
  model.Write(5, 99);

  ASSERT_OK(h.CrashAndReopen());
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 30));

  // The device keeps working after recovery.
  ASSERT_OK(h.Write(0, 1000));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 0, 1000));
}

TEST(RecoveryTest, CrashRecoversSnapshotsAndLineage) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  uint64_t version = 0;
  std::vector<uint32_t> snaps;
  Rng rng(1);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 40; ++i) {
      const uint64_t lba = rng.NextBelow(30);
      ++version;
      ASSERT_OK(h.Write(lba, version));
      model.Write(lba, version);
    }
    ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("r"));
    model.Snapshot(snap);
    snaps.push_back(snap);
  }
  // Delete the middle snapshot before the crash.
  ASSERT_OK(h.Delete(snaps[1]));
  model.DeleteSnapshot(snaps[1]);

  ASSERT_OK(h.CrashAndReopen());
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 30));

  EXPECT_EQ(h.Activate(snaps[1]).status().code(), StatusCode::kFailedPrecondition);
  for (uint32_t snap : {snaps[0], snaps[2]}) {
    ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
    EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), 30)) << "snapshot " << snap;
    ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  }
}

TEST(RecoveryTest, SnapshotNamesSurviveCrash) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("nightly-backup"));
  ASSERT_OK(h.CrashAndReopen());
  ASSERT_OK_AND_ASSIGN(SnapshotInfo info, h.ftl().snapshot_tree().Get(snap));
  EXPECT_EQ(info.name, "nightly-backup");
}

TEST(RecoveryTest, SnapshotIdsContinueAfterCrash) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t s1, h.Snapshot("a"));
  ASSERT_OK(h.CrashAndReopen());
  ASSERT_OK(h.Write(0, 2));
  ASSERT_OK_AND_ASSIGN(uint32_t s2, h.Snapshot("b"));
  EXPECT_EQ(s2, s1 + 1);
}

TEST(RecoveryTest, CleanRestartUsesCheckpoint) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  for (uint64_t lba = 0; lba < 25; ++lba) {
    ASSERT_OK(h.Write(lba, lba + 7));
    model.Write(lba, lba + 7);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("kept"));
  model.Snapshot(snap);
  ASSERT_OK(h.Write(3, 1234));
  model.Write(3, 1234);

  ASSERT_OK(h.CleanRestart());
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 25));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), 25));
  // Snapshot names survive a clean restart (they live in the checkpoint).
  ASSERT_OK_AND_ASSIGN(SnapshotInfo info, h.ftl().snapshot_tree().Get(snap));
  EXPECT_EQ(info.name, "kept");
}

TEST(RecoveryTest, CheckpointIsDetectedAsCheckpoint) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK(h.ftl().CheckpointAndClose(h.now()));
  std::unique_ptr<NandDevice> device = h.ftl().ReleaseDevice();
  ASSERT_OK_AND_ASSIGN(RecoveredState state, RecoverFromDevice(device.get(), 0));
  EXPECT_TRUE(state.from_checkpoint);
  EXPECT_EQ(state.primary_map.size(), 1u);
}

TEST(RecoveryTest, WritesAfterCheckpointForceFullRecovery) {
  // Clean restart, then crash: the stale checkpoint must not shadow newer writes.
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  ASSERT_OK(h.Write(0, 1));
  model.Write(0, 1);
  ASSERT_OK(h.CleanRestart());
  ASSERT_OK(h.Write(0, 2));
  model.Write(0, 2);
  ASSERT_OK(h.Write(1, 3));
  model.Write(1, 3);
  ASSERT_OK(h.CrashAndReopen());
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 5));
}

TEST(RecoveryTest, EmptyDeviceRecovers) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.CrashAndReopen());
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 0, 0));
  ASSERT_OK(h.Write(0, 1));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 0, 1));
}

TEST(RecoveryTest, CrashAfterHeavyCleaningRecovers) {
  // Copy-forwarded blocks carry original identities; recovery must handle relocated and
  // duplicated records.
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  Rng rng(2);
  const uint64_t lba_space = 40;
  for (uint64_t i = 0; i < config.nand.TotalPages() * 2; ++i) {
    const uint64_t lba = rng.NextBelow(lba_space);
    ++version;
    ASSERT_OK(h.Write(lba, version));
    model.Write(lba, version);
    h.ftl().PumpBackground(h.now());
  }
  ASSERT_GT(h.ftl().stats().gc_segments_cleaned, 0u);
  ASSERT_OK(h.CrashAndReopen());
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space));
}

TEST(RecoveryTest, ActivatedViewsDoNotSurviveCrash) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap, /*writable=*/true));
  const auto data = PageData(SmallConfig().nand.page_size_bytes, 0, 42);
  ASSERT_OK(h.ftl().WriteView(view, 0, data, h.now()).status());

  ASSERT_OK(h.CrashAndReopen());
  EXPECT_EQ(h.ftl().ActiveViewIds().size(), 1u);  // Only the primary.
  // The view's divergent write is gone; the snapshot is intact.
  ASSERT_OK_AND_ASSIGN(uint32_t view2, h.Activate(snap));
  EXPECT_TRUE(h.CheckLba(view2, 0, 1));
}

TEST(RecoveryTest, RepeatedCrashesAreIdempotent) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  for (int round = 0; round < 4; ++round) {
    for (uint64_t lba = 0; lba < 10; ++lba) {
      const uint64_t v = static_cast<uint64_t>(round) * 100 + lba + 1;
      ASSERT_OK(h.Write(lba, v));
      model.Write(lba, v);
    }
    ASSERT_OK(h.CrashAndReopen());
    ASSERT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 10)) << "round " << round;
  }
}

TEST(RecoveryTest, TornTailPageIsSkippedAndPriorStateSurvives) {
  // A page half-programmed at the moment of a crash fails its CRC on the scan.
  // Recovery must drop just that record: the LBA falls back to its previous
  // version, and every snapshot is still reconstructed.
  const FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ReferenceModel model;
  for (uint64_t lba = 0; lba < 20; ++lba) {
    ASSERT_OK(h.Write(lba, lba + 1));
    model.Write(lba, lba + 1);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("pre-crash"));
  model.Snapshot(snap);
  ASSERT_OK(h.Write(7, 41));
  model.Write(7, 41);
  // The tail write: torn by the crash below.
  ASSERT_OK(h.Write(7, 42));

  ASSERT_OK_AND_ASSIGN(auto entries, h.ftl().ViewMapEntries(kPrimaryView));
  uint64_t tail_paddr = ~uint64_t{0};
  for (const auto& [lba, paddr] : entries) {
    if (lba == 7) {
      tail_paddr = paddr;
    }
  }
  ASSERT_NE(tail_paddr, ~uint64_t{0});

  std::unique_ptr<NandDevice> device = h.ftl().ReleaseDevice();
  device->CorruptPageForTesting(tail_paddr);
  uint64_t finish = h.now();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Ftl> ftl,
                       Ftl::Open(config, std::move(device), h.now(), &finish));

  EXPECT_GE(ftl->device().stats().crc_errors, 1u);
  // The torn write is gone; the previous version of the LBA is visible again.
  std::vector<uint8_t> data;
  ASSERT_OK(ftl->Read(7, finish, &data).status());
  EXPECT_EQ(data, PageData(config.nand.page_size_bytes, 7, 41));

  // All snapshots were reconstructed, contents intact.
  ASSERT_OK_AND_ASSIGN(SnapshotInfo info, ftl->snapshot_tree().Get(snap));
  EXPECT_EQ(info.name, "pre-crash");
  uint64_t view_done = finish;
  ASSERT_OK_AND_ASSIGN(uint32_t view,
                       ftl->ActivateBlocking(snap, finish, false, &view_done));
  for (uint64_t lba = 0; lba < 20; ++lba) {
    ASSERT_OK(ftl->ReadView(view, lba, view_done, &data).status());
    EXPECT_EQ(data, PageData(config.nand.page_size_bytes, lba,
                             model.InSnapshot(snap, lba)))
        << "lba " << lba;
  }
  ASSERT_OK(ftl->Deactivate(view, view_done));

  // The recovered device still takes writes.
  ASSERT_OK(ftl->Write(7, PageData(config.nand.page_size_bytes, 7, 43), view_done)
                .status());
}

TEST(CheckpointFormatTest, SerializeParseRoundTrip) {
  CheckpointState state;
  state.seq_counter = 777;
  state.active_epoch = 2;
  state.tree.AddSnapshot(kRootEpoch, 10, "s1");
  state.tree.NewEpoch(kRootEpoch);
  state.tree.NewEpoch(1);
  state.primary_map = {{1, 100}, {2, 200}};
  state.validity[0] = {100, 101};
  state.validity[2] = {200};

  const std::vector<uint8_t> bytes = SerializeCheckpoint(state);
  ASSERT_OK_AND_ASSIGN(CheckpointState parsed, ParseCheckpoint(bytes));
  EXPECT_EQ(parsed.seq_counter, 777u);
  EXPECT_EQ(parsed.active_epoch, 2u);
  EXPECT_EQ(parsed.primary_map, state.primary_map);
  EXPECT_EQ(parsed.validity, state.validity);
  EXPECT_EQ(parsed.tree.EpochCount(), 3u);
}

TEST(CheckpointFormatTest, CorruptionDetected) {
  CheckpointState state;
  std::vector<uint8_t> bytes = SerializeCheckpoint(state);
  bytes[0] ^= 0xff;  // Break the magic.
  EXPECT_EQ(ParseCheckpoint(bytes).status().code(), StatusCode::kDataLoss);

  std::vector<uint8_t> truncated = SerializeCheckpoint(state);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(ParseCheckpoint(truncated).ok());
}

}  // namespace
}  // namespace iosnap
