// Vectored I/O equivalence: driving the FTL through WriteV/ReadV/TrimV in batches of N
// must be bit-identical to issuing the same N ops one-by-one at the same shared issue
// time — forward map, per-epoch validity, cumulative stats, device drain time, and
// snapshot contents all match, across GC pressure, snapshot churn, a crash recovery,
// and a checkpoint restart.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

// One scripted step. Data ops stream through the batching machinery; the others are
// group boundaries executed identically in both modes.
struct Step {
  enum Kind { kWrite, kRead, kTrim, kSnapshot, kDeleteSnapshot, kCrash, kRestart };
  Kind kind = kWrite;
  uint64_t lba = 0;
  uint64_t count = 1;
  uint64_t version = 0;  // Payload seed for writes.
};

// Deterministic script exercising overwrites (validity CoW), trims, enough churn to
// engage the cleaner, snapshot create/delete, and both restart flavours.
std::vector<Step> MakeScript(uint64_t lba_space) {
  std::vector<Step> script;
  Rng rng(2014);
  const uint64_t hot_space = lba_space / 2;  // Force overwrites.
  uint64_t version = 0;
  auto data_ops = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const uint64_t roll = rng.Next() % 10;
      Step step;
      if (roll < 6) {
        step.kind = Step::kWrite;
        step.lba = rng.Next() % hot_space;
        step.version = ++version;
      } else if (roll < 9) {
        step.kind = Step::kRead;
        step.lba = rng.Next() % hot_space;
      } else {
        step.kind = Step::kTrim;
        step.lba = rng.Next() % hot_space;
        step.count = 1 + rng.Next() % std::min<uint64_t>(8, hot_space - step.lba);
      }
      script.push_back(step);
    }
  };
  data_ops(400);
  script.push_back({Step::kSnapshot});
  data_ops(300);
  script.push_back({Step::kSnapshot});
  data_ops(200);
  script.push_back({Step::kCrash});
  data_ops(200);
  script.push_back({Step::kDeleteSnapshot});  // Deletes the oldest live snapshot.
  data_ops(150);
  script.push_back({Step::kRestart});
  data_ops(250);
  return script;
}

struct Fingerprint {
  FtlStats stats;
  uint64_t now = 0;
  uint64_t drain_ns = 0;
  std::vector<std::pair<uint64_t, uint64_t>> primary_map;
  std::map<uint32_t, std::vector<uint64_t>> validity;  // epoch -> valid paddrs.
  // Per live snapshot: full-volume content hash read through an activated view.
  std::vector<std::pair<uint32_t, uint64_t>> snapshot_hashes;
};

uint64_t HashBytes(uint64_t h, const std::vector<uint8_t>& bytes) {
  for (uint8_t b : bytes) {
    h = (h ^ b) * 0x100000001b3ULL;
  }
  return h;
}

class ScriptDriver {
 public:
  ScriptDriver(const FtlConfig& config, size_t group, bool vectored)
      : config_(config), group_(group), vectored_(vectored) {
    auto ftl_or = Ftl::Create(config);
    IOSNAP_CHECK(ftl_or.ok());
    ftl_ = std::move(ftl_or).value();
  }

  // Runs the script; returns false on any unexpected error or data mismatch.
  ::testing::AssertionResult Run(const std::vector<Step>& script) {
    size_t i = 0;
    while (i < script.size()) {
      const Step& step = script[i];
      if (step.kind == Step::kWrite || step.kind == Step::kRead ||
          step.kind == Step::kTrim) {
        size_t j = i;
        while (j < script.size() && j - i < group_ &&
               (script[j].kind == Step::kWrite || script[j].kind == Step::kRead ||
                script[j].kind == Step::kTrim)) {
          ++j;
        }
        auto result = RunGroup(script.data() + i, j - i);
        if (!result) {
          return result;
        }
        i = j;
        continue;
      }
      switch (step.kind) {
        case Step::kSnapshot: {
          auto result = ftl_->CreateSnapshot("s" + std::to_string(snap_ids_.size()), now_);
          if (!result.ok()) {
            return ::testing::AssertionFailure() << result.status().ToString();
          }
          snap_ids_.push_back(result->snap_id);
          now_ = std::max(now_, result->io.CompletionNs());
          break;
        }
        case Step::kDeleteSnapshot: {
          IOSNAP_CHECK(!snap_ids_.empty());
          const uint32_t id = snap_ids_.front();
          snap_ids_.erase(snap_ids_.begin());
          auto result = ftl_->DeleteSnapshot(id, now_);
          if (!result.ok()) {
            return ::testing::AssertionFailure() << result.status().ToString();
          }
          now_ = std::max(now_, result->CompletionNs());
          break;
        }
        case Step::kCrash:
        case Step::kRestart: {
          if (step.kind == Step::kRestart) {
            Status closed = ftl_->CheckpointAndClose(now_);
            if (!closed.ok()) {
              return ::testing::AssertionFailure() << closed.ToString();
            }
          }
          std::unique_ptr<NandDevice> device = ftl_->ReleaseDevice();
          uint64_t finish = now_;
          auto reopened = Ftl::Open(config_, std::move(device), now_, &finish);
          if (!reopened.ok()) {
            return ::testing::AssertionFailure() << reopened.status().ToString();
          }
          ftl_ = std::move(reopened).value();
          now_ = std::max(now_, finish);
          // Satellite check: recovery replays validity through SetValidBatch; the
          // incremental counters must survive it.
          if (!ftl_->validity().VerifyCounters()) {
            return ::testing::AssertionFailure() << "VerifyCounters failed after reopen";
          }
          break;
        }
        default:
          break;
      }
      ++i;
    }
    return ::testing::AssertionSuccess();
  }

  Fingerprint Capture() {
    Fingerprint fp;
    fp.stats = ftl_->stats();
    fp.now = now_;
    fp.drain_ns = ftl_->device().DrainTimeNs();
    auto map_or = ftl_->ViewMapEntries(kPrimaryView);
    IOSNAP_CHECK(map_or.ok());
    fp.primary_map = std::move(map_or).value();
    for (uint32_t epoch : ftl_->LiveEpochs()) {
      std::vector<uint64_t>& paddrs = fp.validity[epoch];
      ftl_->validity().ForEachValid(epoch, [&paddrs](uint64_t p) { paddrs.push_back(p); });
    }
    // Snapshot contents via activation + scalar reads (identical in both modes; runs
    // after the stats snapshot above so it cannot mask a divergence).
    for (uint32_t snap_id : snap_ids_) {
      uint64_t finish = now_;
      auto view_or = ftl_->ActivateBlocking(snap_id, now_, /*writable=*/false, &finish);
      IOSNAP_CHECK(view_or.ok());
      now_ = std::max(now_, finish);
      uint64_t hash = 0xcbf29ce484222325ULL;
      for (uint64_t lba = 0; lba < ftl_->LbaCount(); ++lba) {
        std::vector<uint8_t> data;
        auto read = ftl_->ReadView(*view_or, lba, now_, &data);
        IOSNAP_CHECK(read.ok());
        now_ = std::max(now_, read->CompletionNs());
        hash = HashBytes(hash, data);
      }
      fp.snapshot_hashes.emplace_back(snap_id, hash);
      IOSNAP_CHECK(ftl_->Deactivate(*view_or, now_).ok());
    }
    return fp;
  }

 private:
  ::testing::AssertionResult RunGroup(const Step* steps, size_t n) {
    const uint64_t t = now_;
    ftl_->PumpBackground(t);
    uint64_t group_end = t;
    if (vectored_) {
      // Maximal same-kind runs, like FtlTarget::DoOpV, but with real payloads.
      size_t i = 0;
      while (i < n) {
        size_t j = i;
        while (j < n && steps[j].kind == steps[i].kind) {
          ++j;
        }
        switch (steps[i].kind) {
          case Step::kWrite: {
            std::vector<std::vector<uint8_t>> payloads;
            std::vector<WriteRequest> requests;
            for (size_t k = i; k < j; ++k) {
              payloads.push_back(PageData(config_.nand.page_size_bytes, steps[k].lba,
                                          steps[k].version));
            }
            for (size_t k = i; k < j; ++k) {
              requests.push_back({steps[k].lba, payloads[k - i]});
            }
            auto ios = ftl_->WriteV(requests, t);
            if (!ios.ok()) {
              return ::testing::AssertionFailure() << ios.status().ToString();
            }
            for (size_t k = 0; k < ios->size(); ++k) {
              group_end = std::max(group_end, (*ios)[k].CompletionNs());
              model_[steps[i + k].lba] = steps[i + k].version;
            }
            break;
          }
          case Step::kRead: {
            std::vector<uint64_t> lbas;
            for (size_t k = i; k < j; ++k) {
              lbas.push_back(steps[k].lba);
            }
            std::vector<std::vector<uint8_t>> data;
            auto ios = ftl_->ReadV(lbas, t, &data);
            if (!ios.ok()) {
              return ::testing::AssertionFailure() << ios.status().ToString();
            }
            for (size_t k = 0; k < ios->size(); ++k) {
              group_end = std::max(group_end, (*ios)[k].CompletionNs());
              auto check = CheckPayload(lbas[k], data[k]);
              if (!check) {
                return check;
              }
            }
            break;
          }
          case Step::kTrim: {
            std::vector<TrimRequest> requests;
            for (size_t k = i; k < j; ++k) {
              requests.push_back({steps[k].lba, steps[k].count});
            }
            auto ios = ftl_->TrimV(requests, t);
            if (!ios.ok()) {
              return ::testing::AssertionFailure() << ios.status().ToString();
            }
            for (size_t k = 0; k < ios->size(); ++k) {
              group_end = std::max(group_end, (*ios)[k].CompletionNs());
              for (uint64_t c = 0; c < steps[i + k].count; ++c) {
                model_.erase(steps[i + k].lba + c);
              }
            }
            break;
          }
          default:
            break;
        }
        i = j;
      }
    } else {
      // Scalar ops, every one issued at the group's shared time t.
      for (size_t k = 0; k < n; ++k) {
        const Step& step = steps[k];
        switch (step.kind) {
          case Step::kWrite: {
            const auto data =
                PageData(config_.nand.page_size_bytes, step.lba, step.version);
            auto io = ftl_->Write(step.lba, data, t);
            if (!io.ok()) {
              return ::testing::AssertionFailure() << io.status().ToString();
            }
            group_end = std::max(group_end, io->CompletionNs());
            model_[step.lba] = step.version;
            break;
          }
          case Step::kRead: {
            std::vector<uint8_t> data;
            auto io = ftl_->Read(step.lba, t, &data);
            if (!io.ok()) {
              return ::testing::AssertionFailure() << io.status().ToString();
            }
            group_end = std::max(group_end, io->CompletionNs());
            auto check = CheckPayload(step.lba, data);
            if (!check) {
              return check;
            }
            break;
          }
          case Step::kTrim: {
            auto io = ftl_->Trim(step.lba, step.count, t);
            if (!io.ok()) {
              return ::testing::AssertionFailure() << io.status().ToString();
            }
            group_end = std::max(group_end, io->CompletionNs());
            for (uint64_t c = 0; c < step.count; ++c) {
              model_.erase(step.lba + c);
            }
            break;
          }
          default:
            break;
        }
      }
    }
    now_ = std::max(now_, group_end);
    return ::testing::AssertionSuccess();
  }

  ::testing::AssertionResult CheckPayload(uint64_t lba, const std::vector<uint8_t>& data) {
    auto it = model_.find(lba);
    const std::vector<uint8_t> expected =
        it == model_.end() ? std::vector<uint8_t>(config_.nand.page_size_bytes, 0)
                           : PageData(config_.nand.page_size_bytes, lba, it->second);
    if (data != expected) {
      return ::testing::AssertionFailure() << "payload mismatch at lba " << lba;
    }
    return ::testing::AssertionSuccess();
  }

  FtlConfig config_;
  size_t group_;
  bool vectored_;
  std::unique_ptr<Ftl> ftl_;
  uint64_t now_ = 0;
  std::vector<uint32_t> snap_ids_;
  std::map<uint64_t, uint64_t> model_;  // lba -> version, duplicates in submission order.
};

void ExpectStatsEqual(const FtlStats& a, const FtlStats& b) {
#define IOSNAP_EXPECT_STAT_EQ(field) EXPECT_EQ(a.field, b.field) << #field
  IOSNAP_EXPECT_STAT_EQ(user_writes);
  IOSNAP_EXPECT_STAT_EQ(user_reads);
  IOSNAP_EXPECT_STAT_EQ(user_trims);
  IOSNAP_EXPECT_STAT_EQ(user_bytes_written);
  IOSNAP_EXPECT_STAT_EQ(user_bytes_read);
  IOSNAP_EXPECT_STAT_EQ(snapshots_created);
  IOSNAP_EXPECT_STAT_EQ(snapshots_deleted);
  IOSNAP_EXPECT_STAT_EQ(activations);
  IOSNAP_EXPECT_STAT_EQ(deactivations);
  IOSNAP_EXPECT_STAT_EQ(rollbacks);
  IOSNAP_EXPECT_STAT_EQ(gc_segments_cleaned);
  IOSNAP_EXPECT_STAT_EQ(gc_pages_copied);
  IOSNAP_EXPECT_STAT_EQ(gc_notes_copied);
  IOSNAP_EXPECT_STAT_EQ(gc_notes_dropped);
  IOSNAP_EXPECT_STAT_EQ(gc_summaries_written);
  IOSNAP_EXPECT_STAT_EQ(gc_inline_stalls);
  IOSNAP_EXPECT_STAT_EQ(gc_wear_level_cleans);
  IOSNAP_EXPECT_STAT_EQ(gc_victim_selections);
  IOSNAP_EXPECT_STAT_EQ(gc_merge_host_ns);
  IOSNAP_EXPECT_STAT_EQ(gc_total_host_ns);
  IOSNAP_EXPECT_STAT_EQ(gc_device_busy_ns);
  IOSNAP_EXPECT_STAT_EQ(validity_cow_events);
  IOSNAP_EXPECT_STAT_EQ(validity_cow_bytes);
  IOSNAP_EXPECT_STAT_EQ(activation_segments_scanned);
  IOSNAP_EXPECT_STAT_EQ(activation_segments_skipped);
  IOSNAP_EXPECT_STAT_EQ(activation_entries);
  IOSNAP_EXPECT_STAT_EQ(total_pages_programmed);
#undef IOSNAP_EXPECT_STAT_EQ
}

class BatchEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchEquivalenceTest, VectoredMatchesSequentialBitForBit) {
  const size_t batch = GetParam();
  FtlConfig config = SmallConfig();
  const uint64_t lba_space = config.LbaCount();
  const std::vector<Step> script = MakeScript(lba_space);

  ScriptDriver sequential(config, batch, /*vectored=*/false);
  ScriptDriver vectored(config, batch, /*vectored=*/true);
  ASSERT_TRUE(sequential.Run(script));
  ASSERT_TRUE(vectored.Run(script));

  Fingerprint a = sequential.Capture();
  Fingerprint b = vectored.Capture();
  ExpectStatsEqual(a.stats, b.stats);
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.drain_ns, b.drain_ns);
  EXPECT_EQ(a.primary_map, b.primary_map);
  EXPECT_EQ(a.validity, b.validity);
  EXPECT_EQ(a.snapshot_hashes, b.snapshot_hashes);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchEquivalenceTest,
                         ::testing::Values<size_t>(1, 7, 32, 257));

}  // namespace
}  // namespace iosnap
