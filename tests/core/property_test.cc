// Randomized end-to-end property tests: long arbitrary operation sequences — writes,
// trims, snapshot create/delete/activate, crashes, clean restarts — checked against the
// brute-force ReferenceModel after every phase. Parameterized over configurations that
// stress different mechanisms (chunk sizes, cleaner policies, naive bitmap mode, the
// activation segment index).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

struct PropertyParam {
  std::string name;
  FtlConfig config;
  bool allow_restarts;
};

FtlConfig WithChunkBits(FtlConfig config, uint64_t bits) {
  config.validity_chunk_bits = bits;
  return config;
}

FtlConfig WithPolicy(FtlConfig config, CleanerPolicy policy) {
  config.cleaner_policy = policy;
  if (policy == CleanerPolicy::kEpochColocate) {
    config.gc_reserve_segments = 6;
    config.gc_low_free_segments = 8;
    config.gc_high_free_segments = 10;
  }
  return config;
}

FtlConfig WithNaive(FtlConfig config) {
  config.naive_validity_copy = true;
  return config;
}

FtlConfig WithIndex(FtlConfig config) {
  config.activation_segment_index = true;
  return config;
}

FtlConfig WithVanillaRate(FtlConfig config) {
  config.snapshot_aware_gc_rate = false;
  return config;
}

std::vector<PropertyParam> Params() {
  return {
      {"Default", SmallConfig(), true},
      {"TinyChunks", WithChunkBits(SmallConfig(), 64), true},
      {"BigChunks", WithChunkBits(SmallConfig(), 4096), true},
      {"CostBenefit", WithPolicy(SmallConfig(), CleanerPolicy::kCostBenefit), true},
      {"EpochColocate", WithPolicy(SmallConfig(), CleanerPolicy::kEpochColocate), true},
      {"NaiveBitmapCopy", WithNaive(SmallConfig()), true},
      {"SegmentIndex", WithIndex(SmallConfig()), true},
      {"VanillaGcRate", WithVanillaRate(SmallConfig()), true},
  };
}

class SnapshotPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(SnapshotPropertyTest, RandomOpsMatchReferenceModel) {
  const PropertyParam& param = GetParam();
  FtlHarness h(param.config);
  ReferenceModel model;
  Rng rng(0xC0FFEE);

  const uint64_t lba_space = 48;
  uint64_t version = 0;
  std::vector<uint32_t> live_snaps;
  int restarts_left = 3;

  for (int step = 0; step < 2500; ++step) {
    const uint64_t dice = rng.NextBelow(1000);
    if (dice < 880) {
      // Write.
      const uint64_t lba = rng.NextBelow(lba_space);
      ++version;
      ASSERT_OK(h.Write(lba, version));
      model.Write(lba, version);
    } else if (dice < 920) {
      // Trim a small range.
      const uint64_t lba = rng.NextBelow(lba_space - 4);
      const uint64_t count = 1 + rng.NextBelow(4);
      ASSERT_OK(h.Trim(lba, count));
      model.Trim(lba, count);
    } else if (dice < 960) {
      // Snapshot create. Retire the oldest first when too many accumulate: snapshots pin
      // physical space, and this device is tiny ("limits snapshot count only to the
      // capacity available to hold the deltas", §4.1).
      while (live_snaps.size() >= 5) {
        const uint32_t oldest = live_snaps.front();
        ASSERT_OK(h.Delete(oldest));
        model.DeleteSnapshot(oldest);
        live_snaps.erase(live_snaps.begin());
      }
      ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("p"));
      model.Snapshot(snap);
      live_snaps.push_back(snap);
    } else if (dice < 980 && !live_snaps.empty()) {
      // Snapshot delete.
      const size_t pick = rng.NextBelow(live_snaps.size());
      const uint32_t snap = live_snaps[pick];
      ASSERT_OK(h.Delete(snap));
      model.DeleteSnapshot(snap);
      live_snaps.erase(live_snaps.begin() + static_cast<ptrdiff_t>(pick));
    } else if (dice < 992 && !live_snaps.empty()) {
      // Activate a random snapshot and spot-check a few LBAs.
      const uint32_t snap = live_snaps[rng.NextBelow(live_snaps.size())];
      ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
      for (int probe = 0; probe < 8; ++probe) {
        const uint64_t lba = rng.NextBelow(lba_space);
        ASSERT_TRUE(h.CheckLba(view, lba, model.InSnapshot(snap, lba)))
            << param.name << " step " << step << " snap " << snap;
      }
      ASSERT_OK(h.ftl().Deactivate(view, h.now()));
    } else if (param.allow_restarts && restarts_left > 0) {
      // Crash or clean restart.
      --restarts_left;
      if (rng.NextBool(0.5)) {
        ASSERT_OK(h.CrashAndReopen());
      } else {
        ASSERT_OK(h.CleanRestart());
      }
      ASSERT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space))
          << param.name << " after restart at step " << step;
    }
    h.ftl().PumpBackground(h.now());
  }

  // Final full verification: active view and every live snapshot.
  ASSERT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space)) << param.name;
  for (uint32_t snap : live_snaps) {
    ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
    ASSERT_TRUE(h.CheckView(view, model.snapshot_state(snap), lba_space))
        << param.name << " snapshot " << snap;
    ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  }
  // The device did real cleaning during the run (the workload overwrites heavily).
  EXPECT_GT(h.ftl().stats().gc_segments_cleaned, 0u) << param.name;
}

INSTANTIATE_TEST_SUITE_P(Configs, SnapshotPropertyTest, ::testing::ValuesIn(Params()),
                         [](const ::testing::TestParamInfo<PropertyParam>& info) {
                           return info.param.name;
                         });

TEST(CrashPropertyTest, CrashAtEveryPhaseOfSnapshotLifecycle) {
  // Deterministic scenario, crashing between each pair of lifecycle steps.
  for (int crash_point = 0; crash_point < 6; ++crash_point) {
    FtlHarness h(SmallConfig());
    ReferenceModel model;
    uint32_t snap = 0;
    int phase = 0;
    auto maybe_crash = [&]() -> bool {
      if (phase++ == crash_point) {
        IOSNAP_CHECK(h.CrashAndReopen().ok());
        return true;
      }
      return false;
    };

    ASSERT_OK(h.Write(1, 11));
    model.Write(1, 11);
    maybe_crash();
    ASSERT_OK_AND_ASSIGN(snap, h.Snapshot("x"));
    model.Snapshot(snap);
    maybe_crash();
    ASSERT_OK(h.Write(1, 22));
    model.Write(1, 22);
    maybe_crash();
    ASSERT_OK(h.Trim(1, 1));
    model.Trim(1, 1);
    maybe_crash();
    ASSERT_OK(h.Write(2, 33));
    model.Write(2, 33);
    maybe_crash();

    ASSERT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 5))
        << "crash point " << crash_point;
    ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
    ASSERT_TRUE(h.CheckView(view, model.snapshot_state(snap), 5))
        << "crash point " << crash_point;
  }
}

}  // namespace
}  // namespace iosnap
