// Basic block-device behaviour of the FTL: reads, writes, overwrites, trims, bounds,
// garbage collection under pressure, and write amplification sanity.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

TEST(FtlBasicTest, CreateValidatesConfig) {
  FtlConfig config = SmallConfig();
  config.overprovision = 1.0;
  EXPECT_FALSE(Ftl::Create(config).ok());

  config = SmallConfig();
  config.gc_reserve_segments = config.nand.num_segments;
  EXPECT_FALSE(Ftl::Create(config).ok());
}

TEST(FtlBasicTest, UnwrittenLbaReadsZeroes) {
  FtlHarness h(SmallConfig());
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 0, 0));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, h.ftl().LbaCount() - 1, 0));
  EXPECT_FALSE(h.ftl().IsMapped(0));
}

TEST(FtlBasicTest, WriteReadRoundTrip) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(10, 1));
  ASSERT_OK(h.Write(11, 2));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 10, 1));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 11, 2));
  EXPECT_TRUE(h.ftl().IsMapped(10));
  EXPECT_EQ(h.ftl().stats().user_writes, 2u);
  EXPECT_EQ(h.ftl().stats().user_reads, 2u);
}

TEST(FtlBasicTest, OverwriteReplacesContent) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(5, 1));
  ASSERT_OK(h.Write(5, 2));
  ASSERT_OK(h.Write(5, 3));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 5, 3));
}

TEST(FtlBasicTest, OutOfRangeRejected) {
  FtlHarness h(SmallConfig());
  const uint64_t lba_count = h.ftl().LbaCount();
  auto write = h.ftl().Write(lba_count, {}, 0);
  EXPECT_EQ(write.status().code(), StatusCode::kOutOfRange);
  auto read = h.ftl().Read(lba_count, 0, nullptr);
  EXPECT_EQ(read.status().code(), StatusCode::kOutOfRange);
  auto trim = h.ftl().Trim(lba_count - 1, 2, 0);
  EXPECT_EQ(trim.status().code(), StatusCode::kOutOfRange);
  auto trim0 = h.ftl().Trim(0, 0, 0);
  EXPECT_EQ(trim0.status().code(), StatusCode::kOutOfRange);
}

TEST(FtlBasicTest, TrimUnmapsRange) {
  FtlHarness h(SmallConfig());
  for (uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_OK(h.Write(lba, 7));
  }
  ASSERT_OK(h.Trim(2, 5));
  for (uint64_t lba = 0; lba < 10; ++lba) {
    const bool trimmed = lba >= 2 && lba < 7;
    EXPECT_EQ(h.ftl().IsMapped(lba), !trimmed) << lba;
    EXPECT_TRUE(h.CheckLba(kPrimaryView, lba, trimmed ? 0 : 7));
  }
  EXPECT_EQ(h.ftl().stats().user_trims, 1u);
}

TEST(FtlBasicTest, TrimOfUnmappedRangeIsHarmless) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Trim(100, 10));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 100, 0));
}

TEST(FtlBasicTest, LatencyIncludesHostAndDeviceTime) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  const auto data = PageData(config.nand.page_size_bytes, 0, 1);
  ASSERT_OK_AND_ASSIGN(IoResult io, h.ftl().Write(0, data, 0));
  // At minimum: program + bus + map costs (first write also pays a segment erase).
  EXPECT_GE(io.LatencyNs(), config.nand.program_ns);
  EXPECT_GE(io.host_ns, config.host_map_lookup_ns + config.host_map_update_ns);
}

TEST(FtlBasicTest, SustainedOverwriteTriggersCleaningAndPreservesData) {
  // Write far more than the device capacity over a small LBA working set: the cleaner
  // must run (inline or paced) and the latest contents must survive.
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  const uint64_t lba_space = 64;
  std::map<uint64_t, uint64_t> latest;
  uint64_t version = 0;
  Rng rng(5);
  const uint64_t total_pages = config.nand.TotalPages();
  for (uint64_t i = 0; i < total_pages * 3; ++i) {
    const uint64_t lba = rng.NextBelow(lba_space);
    ++version;
    ASSERT_OK(h.Write(lba, version));
    latest[lba] = version;
    h.ftl().PumpBackground(h.now());
  }
  // A small hot working set leaves most victim segments fully invalid, so cleaning may
  // not need to copy anything — but it must have cleaned, and content must be intact.
  EXPECT_GT(h.ftl().stats().gc_segments_cleaned, 0u);
  EXPECT_TRUE(h.CheckView(kPrimaryView, latest, lba_space));
}

TEST(FtlBasicTest, DeviceFullReportedWhenLbaSpaceExceedsCapacity) {
  // With every LBA holding live data and no overwrites, the cleaner cannot reclaim
  // anything once the log is full; the device must fail cleanly, not livelock.
  FtlConfig config = TinyConfig();
  config.overprovision = 0.0;  // LBA space == physical capacity: guaranteed to jam.
  FtlHarness h(config);
  Status status = OkStatus();
  for (uint64_t lba = 0; lba < h.ftl().LbaCount(); ++lba) {
    status = h.Write(lba, 1);
    if (!status.ok()) {
      break;
    }
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(FtlBasicTest, WriteAmplificationIsBoundedUnderUniformOverwrite) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  const uint64_t lba_space = h.ftl().LbaCount() / 2;
  Rng rng(11);
  const uint64_t writes = config.nand.TotalPages() * 2;
  for (uint64_t i = 0; i < writes; ++i) {
    ASSERT_OK(h.Write(rng.NextBelow(lba_space), i + 1));
    h.ftl().PumpBackground(h.now());
  }
  const FtlStats& stats = h.ftl().stats();
  const double wa = static_cast<double>(stats.total_pages_programmed) /
                    static_cast<double>(stats.user_writes);
  EXPECT_GE(wa, 1.0);
  EXPECT_LT(wa, 4.0);
}

TEST(FtlBasicTest, ClosedFtlRejectsOperations) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(1, 1));
  ASSERT_OK(h.ftl().CheckpointAndClose(h.now()));
  EXPECT_EQ(h.ftl().Write(1, {}, h.now()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.ftl().Read(1, h.now(), nullptr).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.ftl().CheckpointAndClose(h.now()).code(), StatusCode::kFailedPrecondition);
}

TEST(FtlBasicTest, VanillaModeRejectsSnapshotOps) {
  FtlConfig config = SmallConfig();
  config.snapshots_enabled = false;
  FtlHarness h(config);
  ASSERT_OK(h.Write(1, 1));
  EXPECT_EQ(h.ftl().CreateSnapshot("x", h.now()).status().code(),
            StatusCode::kUnimplemented);
}

TEST(FtlBasicTest, ViewApiRejectsUnknownViews) {
  FtlHarness h(SmallConfig());
  EXPECT_EQ(h.ftl().ReadView(42, 0, 0, nullptr).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(h.ftl().WriteView(42, 0, {}, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(h.ftl().Deactivate(42, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(h.ftl().Deactivate(kPrimaryView, 0).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace iosnap
