// Multi-queue submission equivalence (src/core/io_queue):
//
//   1. queues=1, iodepth=1 is bit-identical to the vectored WriteV/ReadV/TrimV path —
//      same stats, same forward map, same virtual clock, same drain time — across GC
//      pressure, snapshot churn, a crash recovery, and a checkpoint restart.
//   2. Any (queues, iodepth) combination produces the same *logical* state as a
//      brute-force reference model applied in submission order: commit order is
//      submission order, out-of-orderness only reorders completion delivery.
//   3. A mid-run device crash under multi-queue load recovers to a state that is
//      exactly a submission-order prefix of the write stream (log replay).
//
// Sharding rides along: every Ftl here uses the default map_shards=4, and one
// parameterization turns on map_update_threads so the parallel per-shard InsertBatch
// path runs under the sanitizer jobs.

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "src/core/io_queue.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

struct Step {
  enum Kind { kWrite, kRead, kTrim, kSnapshot, kDeleteSnapshot, kCrash, kRestart };
  Kind kind = kWrite;
  uint64_t lba = 0;
  uint64_t count = 1;
  uint64_t version = 0;
};

std::vector<Step> MakeScript(uint64_t lba_space, uint64_t seed) {
  std::vector<Step> script;
  Rng rng(seed);
  const uint64_t hot_space = lba_space / 2;
  uint64_t version = 0;
  auto data_ops = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const uint64_t roll = rng.Next() % 10;
      Step step;
      if (roll < 6) {
        step.kind = Step::kWrite;
        step.lba = rng.Next() % hot_space;
        step.version = ++version;
      } else if (roll < 9) {
        step.kind = Step::kRead;
        step.lba = rng.Next() % hot_space;
      } else {
        step.kind = Step::kTrim;
        step.lba = rng.Next() % hot_space;
        step.count = 1 + rng.Next() % std::min<uint64_t>(8, hot_space - step.lba);
      }
      script.push_back(step);
    }
  };
  data_ops(350);
  script.push_back({Step::kSnapshot});
  data_ops(250);
  script.push_back({Step::kCrash});
  data_ops(200);
  script.push_back({Step::kDeleteSnapshot});
  data_ops(100);
  script.push_back({Step::kRestart});
  data_ops(200);
  return script;
}

// Drives a script against one Ftl. Data-op groups of up to `group` steps go either
// through the vectored calls directly or through an IoQueueLayer at queues=1,
// iodepth=1; everything else (snapshots, restarts) runs identically in both modes.
class Driver {
 public:
  Driver(const FtlConfig& config, size_t group, bool queued)
      : config_(config), group_(group), queued_(queued) {
    auto ftl_or = Ftl::Create(config);
    IOSNAP_CHECK(ftl_or.ok());
    ftl_ = std::move(ftl_or).value();
  }

  ::testing::AssertionResult Run(const std::vector<Step>& script) {
    size_t i = 0;
    while (i < script.size()) {
      const Step& step = script[i];
      if (step.kind == Step::kWrite || step.kind == Step::kRead ||
          step.kind == Step::kTrim) {
        size_t j = i;
        while (j < script.size() && j - i < group_ &&
               (script[j].kind == Step::kWrite || script[j].kind == Step::kRead ||
                script[j].kind == Step::kTrim)) {
          ++j;
        }
        auto result = queued_ ? RunGroupQueued(script.data() + i, j - i)
                              : RunGroupVectored(script.data() + i, j - i);
        if (!result) {
          return result;
        }
        i = j;
        continue;
      }
      switch (step.kind) {
        case Step::kSnapshot: {
          auto result =
              ftl_->CreateSnapshot("s" + std::to_string(snap_ids_.size()), now_);
          if (!result.ok()) {
            return ::testing::AssertionFailure() << result.status().ToString();
          }
          snap_ids_.push_back(result->snap_id);
          now_ = std::max(now_, result->io.CompletionNs());
          break;
        }
        case Step::kDeleteSnapshot: {
          IOSNAP_CHECK(!snap_ids_.empty());
          const uint32_t id = snap_ids_.front();
          snap_ids_.erase(snap_ids_.begin());
          auto result = ftl_->DeleteSnapshot(id, now_);
          if (!result.ok()) {
            return ::testing::AssertionFailure() << result.status().ToString();
          }
          now_ = std::max(now_, result->CompletionNs());
          break;
        }
        case Step::kCrash:
        case Step::kRestart: {
          if (step.kind == Step::kRestart) {
            Status closed = ftl_->CheckpointAndClose(now_);
            if (!closed.ok()) {
              return ::testing::AssertionFailure() << closed.ToString();
            }
          }
          std::unique_ptr<NandDevice> device = ftl_->ReleaseDevice();
          uint64_t finish = now_;
          auto reopened = Ftl::Open(config_, std::move(device), now_, &finish);
          if (!reopened.ok()) {
            return ::testing::AssertionFailure() << reopened.status().ToString();
          }
          ftl_ = std::move(reopened).value();
          now_ = std::max(now_, finish);
          break;
        }
        default:
          break;
      }
      ++i;
    }
    return ::testing::AssertionSuccess();
  }

  const Ftl& ftl() const { return *ftl_; }
  uint64_t now() const { return now_; }
  const std::vector<uint32_t>& snap_ids() const { return snap_ids_; }

 private:
  ::testing::AssertionResult RunGroupVectored(const Step* steps, size_t n) {
    const uint64_t t = now_;
    ftl_->PumpBackground(t);
    uint64_t group_end = t;
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j < n && steps[j].kind == steps[i].kind) {
        ++j;
      }
      switch (steps[i].kind) {
        case Step::kWrite: {
          std::vector<std::vector<uint8_t>> payloads;
          std::vector<WriteRequest> requests;
          for (size_t k = i; k < j; ++k) {
            payloads.push_back(
                PageData(config_.nand.page_size_bytes, steps[k].lba, steps[k].version));
          }
          for (size_t k = i; k < j; ++k) {
            requests.push_back({steps[k].lba, payloads[k - i]});
          }
          auto ios = ftl_->WriteV(requests, t);
          if (!ios.ok()) {
            return ::testing::AssertionFailure() << ios.status().ToString();
          }
          for (const IoResult& io : *ios) {
            group_end = std::max(group_end, io.CompletionNs());
          }
          break;
        }
        case Step::kRead: {
          std::vector<uint64_t> lbas;
          for (size_t k = i; k < j; ++k) {
            lbas.push_back(steps[k].lba);
          }
          auto ios = ftl_->ReadV(lbas, t, nullptr);
          if (!ios.ok()) {
            return ::testing::AssertionFailure() << ios.status().ToString();
          }
          for (const IoResult& io : *ios) {
            group_end = std::max(group_end, io.CompletionNs());
          }
          break;
        }
        case Step::kTrim: {
          std::vector<TrimRequest> requests;
          for (size_t k = i; k < j; ++k) {
            requests.push_back({steps[k].lba, steps[k].count});
          }
          auto ios = ftl_->TrimV(requests, t);
          if (!ios.ok()) {
            return ::testing::AssertionFailure() << ios.status().ToString();
          }
          for (const IoResult& io : *ios) {
            group_end = std::max(group_end, io.CompletionNs());
          }
          break;
        }
        default:
          break;
      }
      i = j;
    }
    now_ = std::max(now_, group_end);
    return ::testing::AssertionSuccess();
  }

  ::testing::AssertionResult RunGroupQueued(const Step* steps, size_t n) {
    const uint64_t t = now_;
    ftl_->PumpBackground(t);
    // A fresh layer per group: iodepth=1 drains fully between groups anyway, and the
    // Ftl instance changes across restart boundaries.
    IoQueueLayer layer(ftl_.get(), {.queues = 1, .iodepth = 1});
    std::vector<std::vector<uint8_t>> payloads;
    std::vector<QueueOp> ops;
    for (size_t k = 0; k < n; ++k) {
      QueueOp op;
      switch (steps[k].kind) {
        case Step::kWrite:
          op.kind = QueueOpKind::kWrite;
          payloads.push_back(
              PageData(config_.nand.page_size_bytes, steps[k].lba, steps[k].version));
          break;
        case Step::kRead:
          op.kind = QueueOpKind::kRead;
          break;
        case Step::kTrim:
          op.kind = QueueOpKind::kTrim;
          op.count = steps[k].count;
          break;
        default:
          break;
      }
      op.lba = steps[k].lba;
      ops.push_back(op);
    }
    // Attach payload spans after the payload vector stopped reallocating.
    size_t p = 0;
    for (size_t k = 0; k < n; ++k) {
      if (ops[k].kind == QueueOpKind::kWrite) {
        ops[k].data = payloads[p++];
      }
    }
    auto sub = layer.Submit(0, ops, t);
    if (!sub.ok()) {
      return ::testing::AssertionFailure() << sub.status().ToString();
    }
    uint64_t group_end = t;
    for (const IoCompletion& c : layer.Drain()) {
      if (!c.status.ok()) {
        return ::testing::AssertionFailure() << c.status.ToString();
      }
      group_end = std::max(group_end, c.CompletionNs());
    }
    now_ = std::max(now_, group_end);
    return ::testing::AssertionSuccess();
  }

  FtlConfig config_;
  size_t group_;
  bool queued_;
  std::unique_ptr<Ftl> ftl_;
  uint64_t now_ = 0;
  std::vector<uint32_t> snap_ids_;
};

class QueueBitIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(QueueBitIdentityTest, SingleQueueDepthOneMatchesVectoredBitForBit) {
  const size_t group = GetParam();
  FtlConfig config = SmallConfig();
  const std::vector<Step> script = MakeScript(config.LbaCount(), 2014);

  Driver vectored(config, group, /*queued=*/false);
  Driver queued(config, group, /*queued=*/true);
  ASSERT_TRUE(vectored.Run(script));
  ASSERT_TRUE(queued.Run(script));

  EXPECT_EQ(vectored.now(), queued.now());
  EXPECT_EQ(vectored.ftl().device().DrainTimeNs(), queued.ftl().device().DrainTimeNs());
  const FtlStats& a = vectored.ftl().stats();
  const FtlStats& b = queued.ftl().stats();
  EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(FtlStats)));
  const NandStats& na = vectored.ftl().device().stats();
  const NandStats& nb = queued.ftl().device().stats();
  EXPECT_EQ(0, std::memcmp(&na, &nb, sizeof(NandStats)));
  auto map_a = vectored.ftl().ViewMapEntries(kPrimaryView);
  auto map_b = queued.ftl().ViewMapEntries(kPrimaryView);
  ASSERT_OK(map_a.status());
  ASSERT_OK(map_b.status());
  EXPECT_EQ(*map_a, *map_b);
  EXPECT_EQ(vectored.snap_ids(), queued.snap_ids());
}

INSTANTIATE_TEST_SUITE_P(Groups, QueueBitIdentityTest,
                         ::testing::Values<size_t>(1, 8, 32));

// (queues, iodepth, map_update_threads)
class MultiQueueModelTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(MultiQueueModelTest, LogicalStateMatchesSubmissionOrderModel) {
  const auto [queues, iodepth, map_threads] = GetParam();
  FtlConfig config = SmallConfig();
  config.map_update_threads = map_threads;
  auto ftl_or = Ftl::Create(config);
  ASSERT_OK(ftl_or.status());
  std::unique_ptr<Ftl> ftl = std::move(ftl_or).value();

  IoQueueLayer layer(ftl.get(), {.queues = queues, .iodepth = iodepth});
  const uint64_t lba_space = config.LbaCount() / 2;
  constexpr uint64_t kTotalOps = 3000;
  constexpr uint64_t kBatch = 8;

  ReferenceModel model;
  // model state *at submission time* of each read op, keyed by global op id (dense,
  // assigned in submission order — mirror it with our own counter).
  std::vector<std::optional<uint64_t>> expected_read(kTotalOps);
  Rng rng(4242);
  uint64_t submitted = 0;
  uint64_t version = 0;
  uint64_t now = 0;
  uint64_t delivered = 0;

  std::vector<std::vector<uint8_t>> payloads;  // Alive until Submit copies them.
  std::vector<QueueOp> ops;
  while (submitted < kTotalOps || layer.InflightOps() > 0) {
    if (submitted < kTotalOps) {
      ftl->PumpBackground(now);
    }
    for (uint32_t q = 0; q < queues && submitted < kTotalOps; ++q) {
      while (layer.CanSubmit(q) && submitted < kTotalOps) {
        payloads.clear();
        ops.clear();
        const uint64_t n = std::min(kBatch, kTotalOps - submitted);
        for (uint64_t k = 0; k < n; ++k) {
          const uint64_t op_id = submitted + k;
          const uint64_t roll = rng.Next() % 10;
          QueueOp op;
          if (roll < 6) {
            op.kind = QueueOpKind::kWrite;
            op.lba = rng.Next() % lba_space;
            payloads.push_back(
                PageData(config.nand.page_size_bytes, op.lba, ++version));
            model.Write(op.lba, version);
          } else if (roll < 9) {
            op.kind = QueueOpKind::kRead;
            op.lba = rng.Next() % lba_space;
            expected_read[op_id] = model.Current(op.lba);
          } else {
            op.kind = QueueOpKind::kTrim;
            op.lba = rng.Next() % lba_space;
            op.count = 1 + rng.Next() % std::min<uint64_t>(4, lba_space - op.lba);
            model.Trim(op.lba, op.count);
          }
          ops.push_back(op);
        }
        size_t p = 0;
        for (QueueOp& op : ops) {
          if (op.kind == QueueOpKind::kWrite) {
            op.data = payloads[p++];
          }
        }
        ASSERT_OK(layer.Submit(q, ops, now).status());
        submitted += n;
      }
    }
    const std::optional<uint64_t> next = layer.NextCompletionNs();
    if (!next.has_value()) {
      break;
    }
    now = std::max(now, *next);
    for (const IoCompletion& c : layer.PollCompletions(now)) {
      ASSERT_OK(c.status);
      ++delivered;
      if (c.kind == QueueOpKind::kRead) {
        // The read must observe the model state at its *submission* point: commit
        // order is submission order even when delivery is not.
        ASSERT_LT(c.op_id, kTotalOps);
        const uint64_t v = expected_read[c.op_id].value_or(0);
        const std::vector<uint8_t> expected =
            v == 0 ? std::vector<uint8_t>(config.nand.page_size_bytes, 0)
                   : PageData(config.nand.page_size_bytes, c.lba, v);
        ASSERT_EQ(c.data, expected) << "op " << c.op_id << " lba " << c.lba;
      }
    }
  }
  EXPECT_EQ(delivered, kTotalOps);
  EXPECT_EQ(layer.InflightOps(), 0u);
  EXPECT_GE(layer.stats().merged_runs, layer.stats().flushes);

  // Final volume == model, via scalar reads outside the layer.
  for (uint64_t lba = 0; lba < lba_space; ++lba) {
    std::vector<uint8_t> data;
    auto io = ftl->Read(lba, now, &data);
    ASSERT_OK(io.status());
    now = std::max(now, io->CompletionNs());
    const uint64_t v = model.Current(lba);
    const std::vector<uint8_t> expected =
        v == 0 ? std::vector<uint8_t>(config.nand.page_size_bytes, 0)
               : PageData(config.nand.page_size_bytes, lba, v);
    ASSERT_EQ(data, expected) << "lba " << lba;
  }
  EXPECT_TRUE(ftl->validity().VerifyCounters());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiQueueModelTest,
    ::testing::Values(std::make_tuple(1u, 8u, 0u), std::make_tuple(2u, 8u, 0u),
                      std::make_tuple(2u, 32u, 2u), std::make_tuple(4u, 8u, 2u),
                      std::make_tuple(4u, 32u, 0u)));

// Crash mid-run under multi-queue load; recovery must land on an exact
// submission-order prefix of the write stream (single-page programs are atomic, runs
// commit in submission order, so the durable set is ops [0, C) for some C).
TEST(QueueCrashTest, RecoversToSubmissionOrderPrefix) {
  constexpr uint64_t kLbaSpace = 48;
  constexpr uint64_t kWrites = 400;
  for (const uint64_t crash_after : {5ull, 17ull, 64ull, 150ull, 333ull}) {
    SCOPED_TRACE("crash_after_op=" + std::to_string(crash_after));
    FtlConfig config = SmallConfig();
    FaultPlan plan;
    plan.crash_after_op = crash_after;
    plan.ApplyTo(&config);
    FtlHarness h(config);

    {
      IoQueueLayer layer(&h.ftl(), {.queues = 4, .iodepth = 4});
      std::vector<std::vector<uint8_t>> payloads;
      std::vector<QueueOp> ops;
      uint64_t submitted = 0;
      uint64_t now = h.now();
      bool dead = false;
      while (!dead && (submitted < kWrites || layer.InflightOps() > 0)) {
        for (uint32_t q = 0; q < 4 && submitted < kWrites; ++q) {
          while (layer.CanSubmit(q) && submitted < kWrites) {
            payloads.clear();
            ops.clear();
            const uint64_t n = std::min<uint64_t>(8, kWrites - submitted);
            for (uint64_t k = 0; k < n; ++k) {
              const uint64_t i = submitted + k;
              QueueOp op;
              op.kind = QueueOpKind::kWrite;
              op.lba = i % kLbaSpace;  // Round-robin; op i writes version i+1.
              payloads.push_back(
                  PageData(config.nand.page_size_bytes, op.lba, i + 1));
              ops.push_back(op);
            }
            size_t p = 0;
            for (QueueOp& op : ops) {
              op.data = payloads[p++];
            }
            ASSERT_OK(layer.Submit(q, ops, now).status());
            submitted += n;
          }
        }
        const std::optional<uint64_t> next = layer.NextCompletionNs();
        if (!next.has_value()) {
          break;
        }
        now = std::max(now, *next);
        for (const IoCompletion& c : layer.PollCompletions(now)) {
          if (!c.status.ok()) {
            dead = true;  // Device went offline; stop admitting, drain the rest.
          }
        }
      }
      layer.Drain();
      ASSERT_TRUE(dead || !h.ftl().device().fault().crashed());
      h.AdvanceTo(now);
    }

    ASSERT_OK(h.CrashAndReopen(/*clear_faults=*/true));
    ASSERT_TRUE(h.ftl().validity().VerifyCounters());

    // Recover each LBA's version: op i (version i+1) wrote lba i % kLbaSpace, so the
    // candidates for `lba` are {lba+1, lba+1+kLbaSpace, ...} plus "never written".
    std::vector<uint64_t> recovered(kLbaSpace, 0);
    for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
      std::vector<uint8_t> data;
      auto io = h.ftl().Read(lba, h.now(), &data);
      ASSERT_OK(io.status());
      h.AdvanceTo(io->CompletionNs());
      bool matched =
          data == std::vector<uint8_t>(config.nand.page_size_bytes, 0);
      for (uint64_t v = lba + 1; !matched && v <= kWrites; v += kLbaSpace) {
        if (data == PageData(config.nand.page_size_bytes, lba, v)) {
          recovered[lba] = v;
          matched = true;
        }
      }
      ASSERT_TRUE(matched) << "lba " << lba << " holds a never-submitted payload";
    }

    // Prefix property: with C = max recovered version, every LBA must hold exactly
    // the last version the first C submitted ops gave it.
    const uint64_t c = *std::max_element(recovered.begin(), recovered.end());
    for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
      uint64_t expect = 0;
      if (c >= lba + 1) {
        expect = c - ((c - (lba + 1)) % kLbaSpace);
      }
      ASSERT_EQ(recovered[lba], expect) << "lba " << lba << " prefix C=" << c;
    }

    // The recovered device is usable.
    ASSERT_OK(h.Write(0, 9999));
    ASSERT_TRUE(h.CheckLba(kPrimaryView, 0, 9999));
  }
}

}  // namespace
}  // namespace iosnap
