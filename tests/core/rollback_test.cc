// In-place rollback of the primary volume to a snapshot, and per-snapshot space
// accounting — administrative surfaces built on the same epoch machinery.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

TEST(RollbackTest, RestoresExactSnapshotState) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  for (uint64_t lba = 0; lba < 30; ++lba) {
    ASSERT_OK(h.Write(lba, lba + 1));
    model.Write(lba, lba + 1);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("good"));
  model.Snapshot(snap);

  // Diverge badly: overwrites, new blocks, trims.
  for (uint64_t lba = 0; lba < 40; ++lba) {
    ASSERT_OK(h.Write(lba, 777));
  }
  ASSERT_OK(h.Trim(0, 5));

  ASSERT_OK_AND_ASSIGN(uint64_t finish, h.ftl().RollbackToSnapshot(snap, h.now()));
  h.AdvanceTo(finish);
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.snapshot_state(snap), 40));
  EXPECT_EQ(h.ftl().stats().rollbacks, 1u);

  // The volume keeps working and can diverge again.
  ASSERT_OK(h.Write(2, 999));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 2, 999));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, 3, 4));
}

TEST(RollbackTest, SnapshotSurvivesAndSupportsRepeatRollback) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  ASSERT_OK(h.Write(1, 10));
  model.Write(1, 10);
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("base"));
  model.Snapshot(snap);

  for (int round = 0; round < 3; ++round) {
    ASSERT_OK(h.Write(1, 100 + static_cast<uint64_t>(round)));
    ASSERT_OK_AND_ASSIGN(uint64_t finish, h.ftl().RollbackToSnapshot(snap, h.now()));
    h.AdvanceTo(finish);
    ASSERT_TRUE(h.CheckLba(kPrimaryView, 1, 10)) << "round " << round;
  }
}

TEST(RollbackTest, RejectsBadTargets) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  EXPECT_EQ(h.ftl().RollbackToSnapshot(42, h.now()).status().code(),
            StatusCode::kNotFound);

  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK(h.Delete(snap));
  EXPECT_EQ(h.ftl().RollbackToSnapshot(snap, h.now()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RollbackTest, RefusedWhileViewsActive) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_EQ(h.ftl().RollbackToSnapshot(snap, h.now()).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  EXPECT_OK(h.ftl().RollbackToSnapshot(snap, h.now()).status());
}

TEST(RollbackTest, SurvivesCrashAfterRollback) {
  FtlHarness h(SmallConfig());
  ReferenceModel model;
  for (uint64_t lba = 0; lba < 20; ++lba) {
    ASSERT_OK(h.Write(lba, lba + 1));
    model.Write(lba, lba + 1);
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("pre"));
  model.Snapshot(snap);
  for (uint64_t lba = 0; lba < 20; ++lba) {
    ASSERT_OK(h.Write(lba, 500 + lba));
  }
  ASSERT_OK_AND_ASSIGN(uint64_t finish, h.ftl().RollbackToSnapshot(snap, h.now()));
  h.AdvanceTo(finish);
  // Post-rollback writes, then a crash: the rollback note must re-parent the active
  // lineage during recovery, or these writes would resurrect pre-rollback state.
  ASSERT_OK(h.Write(3, 12345));
  model.Snapshot(snap);  // (Unchanged; just for clarity.)

  ASSERT_OK(h.CrashAndReopen());
  auto expected = model.snapshot_state(snap);
  expected[3] = 12345;
  EXPECT_TRUE(h.CheckView(kPrimaryView, expected, 20));
}

TEST(RollbackTest, RolledBackGarbageIsReclaimable) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(h.Write(rng.NextBelow(40), static_cast<uint64_t>(i + 1)));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  // A device worth of post-snapshot churn, then rollback: all of it must be garbage.
  for (uint64_t i = 0; i < config.nand.TotalPages(); ++i) {
    ASSERT_OK(h.Write(rng.NextBelow(40), 1000 + i));
    h.ftl().PumpBackground(h.now());
  }
  ASSERT_OK_AND_ASSIGN(uint64_t finish, h.ftl().RollbackToSnapshot(snap, h.now()));
  h.AdvanceTo(finish);
  // The cleaner can reclaim everything the abandoned epoch wrote: keep writing a full
  // device pass without running out of space.
  for (uint64_t i = 0; i < config.nand.TotalPages(); ++i) {
    ASSERT_OK(h.Write(rng.NextBelow(40), 5000 + i)) << "post-rollback write " << i;
    h.ftl().PumpBackground(h.now());
  }
}

TEST(SnapshotSpaceTest, ReportsReferencedAndExclusivePages) {
  FtlHarness h(SmallConfig());
  for (uint64_t lba = 0; lba < 20; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));

  // Right after the create, every page is shared with the active view.
  ASSERT_OK_AND_ASSIGN(Ftl::SnapshotSpace space, h.ftl().SnapshotSpaceReport(snap));
  EXPECT_EQ(space.referenced_pages, 20u);
  EXPECT_EQ(space.exclusive_pages, 0u);

  // Overwrite 8 blocks: the snapshot now exclusively retains their old versions.
  for (uint64_t lba = 0; lba < 8; ++lba) {
    ASSERT_OK(h.Write(lba, 2));
  }
  ASSERT_OK_AND_ASSIGN(space, h.ftl().SnapshotSpaceReport(snap));
  EXPECT_EQ(space.referenced_pages, 20u);
  EXPECT_EQ(space.exclusive_pages, 8u);

  EXPECT_EQ(h.ftl().SnapshotSpaceReport(99).status().code(), StatusCode::kNotFound);
}

TEST(SnapshotSpaceTest, ChainedSnapshotsShareExclusivity) {
  FtlHarness h(SmallConfig());
  ASSERT_OK(h.Write(0, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t s1, h.Snapshot("s1"));
  ASSERT_OK_AND_ASSIGN(uint32_t s2, h.Snapshot("s2"));
  ASSERT_OK(h.Write(0, 2));

  // Block 0's old version is held by BOTH snapshots: exclusive to neither.
  ASSERT_OK_AND_ASSIGN(Ftl::SnapshotSpace sp1, h.ftl().SnapshotSpaceReport(s1));
  ASSERT_OK_AND_ASSIGN(Ftl::SnapshotSpace sp2, h.ftl().SnapshotSpaceReport(s2));
  EXPECT_EQ(sp1.exclusive_pages, 0u);
  EXPECT_EQ(sp2.exclusive_pages, 0u);

  // Deleting s1 makes it exclusive to s2.
  ASSERT_OK(h.Delete(s1));
  ASSERT_OK_AND_ASSIGN(sp2, h.ftl().SnapshotSpaceReport(s2));
  EXPECT_EQ(sp2.exclusive_pages, 1u);
}

}  // namespace
}  // namespace iosnap
