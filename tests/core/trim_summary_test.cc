#include "src/core/trim_summary.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace iosnap {
namespace {

TEST(TrimSummaryTest, RoundTrip) {
  std::vector<TrimEntry> entries = {
      {10, 2, 0, 100},
      {500, 1, 3, 2000},
      {~uint64_t{0} - 5, 4, 7, ~uint64_t{0}},
  };
  const std::vector<uint8_t> payload = EncodeTrimSummary(entries, 0, entries.size());
  ASSERT_OK_AND_ASSIGN(std::vector<TrimEntry> decoded, DecodeTrimSummary(payload));
  EXPECT_EQ(decoded, entries);
}

TEST(TrimSummaryTest, SubrangeEncoding) {
  std::vector<TrimEntry> entries;
  for (uint32_t i = 0; i < 10; ++i) {
    entries.push_back({i, 1, 0, i});
  }
  const std::vector<uint8_t> payload = EncodeTrimSummary(entries, 4, 3);
  ASSERT_OK_AND_ASSIGN(std::vector<TrimEntry> decoded, DecodeTrimSummary(payload));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].lba, 4u);
  EXPECT_EQ(decoded[2].lba, 6u);
}

TEST(TrimSummaryTest, EmptyAndTruncated) {
  const std::vector<uint8_t> payload = EncodeTrimSummary({}, 0, 0);
  ASSERT_OK_AND_ASSIGN(std::vector<TrimEntry> decoded, DecodeTrimSummary(payload));
  EXPECT_TRUE(decoded.empty());

  std::vector<uint8_t> truncated = EncodeTrimSummary({{1, 1, 1, 1}}, 0, 1);
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(DecodeTrimSummary(truncated).ok());
}

TEST(TrimSummaryTest, EntriesPerPageLeavesRoomForHeader) {
  EXPECT_EQ(TrimEntriesPerPage(4096), (4096u - 4) / 24);
  EXPECT_GT(TrimEntriesPerPage(512), 20u);
}

}  // namespace
}  // namespace iosnap
