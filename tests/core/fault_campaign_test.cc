// Systematic fault-injection campaign: equivalence of the disabled fault layer,
// a crash-consistency sweep over every scheduled device-op boundary, and a
// random-fault soak with bad-block retirement.
//
// The sweep replays one deterministic snapshot-heavy script against a fresh
// device per crash point K (the device goes offline after its Kth op), then
// recovers and checks the forward map, validity counters, snapshot set, and
// snapshot contents against a brute-force reference model. Single-page writes,
// trims, and snapshot notes are atomic (one program op), so their effects are
// all-or-nothing; only vectored writes may land a torn prefix.

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/fsck.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

constexpr uint64_t kLbaSpace = 36;

struct OpSpec {
  enum Kind { kWrite, kWriteV, kTrim, kSnap, kDelete, kClean } kind;
  uint64_t lba = 0;
  uint64_t count = 0;
  uint64_t version = 0;
  size_t snap_slot = 0;  // 1-based creation order for kDelete.
};

// One snapshot-heavy script: overwrites across snapshots, trims, vectored
// batches (torn-prefix candidates), and forced cleans (mid-copy-forward
// candidates). Small enough that a full sweep over every device op is cheap.
std::vector<OpSpec> BuildScript() {
  std::vector<OpSpec> script;
  const auto writes = [&](uint64_t lo, uint64_t hi, uint64_t version) {
    for (uint64_t lba = lo; lba < hi; ++lba) {
      script.push_back({OpSpec::kWrite, lba, 0, version, 0});
    }
  };
  script.push_back({OpSpec::kWriteV, 0, 12, 1, 0});
  script.push_back({OpSpec::kWriteV, 12, 12, 1, 0});
  script.push_back({OpSpec::kWriteV, 24, 12, 1, 0});
  script.push_back({OpSpec::kSnap});
  writes(0, 24, 2);
  script.push_back({OpSpec::kTrim, 30, 6, 0, 0});
  script.push_back({OpSpec::kSnap});
  script.push_back({OpSpec::kWriteV, 0, 8, 3, 0});
  script.push_back({OpSpec::kWriteV, 8, 8, 3, 0});
  script.push_back({OpSpec::kDelete, 0, 0, 0, 1});
  writes(0, 20, 4);
  script.push_back({OpSpec::kClean});
  script.push_back({OpSpec::kSnap});
  writes(8, 28, 5);
  script.push_back({OpSpec::kClean});
  script.push_back({OpSpec::kTrim, 0, 4, 0, 0});
  script.push_back({OpSpec::kWriteV, 4, 12, 6, 0});
  writes(16, 24, 7);
  script.push_back({OpSpec::kWriteV, 0, 12, 8, 0});
  script.push_back({OpSpec::kWriteV, 12, 12, 8, 0});
  script.push_back({OpSpec::kWriteV, 24, 12, 8, 0});
  script.push_back({OpSpec::kDelete, 0, 0, 0, 2});
  script.push_back({OpSpec::kSnap});
  writes(0, 30, 9);
  script.push_back({OpSpec::kClean});
  writes(10, 30, 10);
  script.push_back({OpSpec::kTrim, 32, 4, 0, 0});
  writes(0, 12, 11);
  return script;
}

// Effects the op in flight at the crash may or may not have made durable.
struct PendingEffect {
  bool stopped = false;                          // Replay hit a failing op.
  std::map<uint64_t, uint64_t> maybe_writes;     // lba -> version (torn WriteV prefix).
};

// Runs `script` against `h`, mirroring every *successful* op into `model`.
// Returns the pending effect of the first failing op (replay stops there).
PendingEffect Replay(FtlHarness* h, const FtlConfig& config,
                     const std::vector<OpSpec>& script, ReferenceModel* model,
                     std::vector<uint32_t>* snap_ids) {
  PendingEffect pending;
  for (const OpSpec& op : script) {
    switch (op.kind) {
      case OpSpec::kWrite: {
        if (!h->Write(op.lba, op.version).ok()) {
          pending.stopped = true;  // Atomic: not durable.
          return pending;
        }
        model->Write(op.lba, op.version);
        break;
      }
      case OpSpec::kWriteV: {
        std::vector<std::vector<uint8_t>> bufs;
        std::vector<WriteRequest> reqs;
        bufs.reserve(op.count);
        for (uint64_t i = 0; i < op.count; ++i) {
          bufs.push_back(
              PageData(config.nand.page_size_bytes, op.lba + i, op.version));
          reqs.push_back({op.lba + i, bufs.back()});
        }
        auto result = h->ftl().WriteV(reqs, h->now());
        if (!result.ok()) {
          pending.stopped = true;
          // An unknown prefix of the batch is durable.
          for (uint64_t i = 0; i < op.count; ++i) {
            pending.maybe_writes[op.lba + i] = op.version;
          }
          return pending;
        }
        for (const IoResult& io : *result) {
          h->AdvanceTo(io.CompletionNs());
        }
        for (uint64_t i = 0; i < op.count; ++i) {
          model->Write(op.lba + i, op.version);
        }
        break;
      }
      case OpSpec::kTrim: {
        if (!h->Trim(op.lba, op.count).ok()) {
          pending.stopped = true;  // One trim note: atomic.
          return pending;
        }
        model->Trim(op.lba, op.count);
        break;
      }
      case OpSpec::kSnap: {
        auto snap = h->Snapshot("sweep-" + std::to_string(snap_ids->size() + 1));
        if (!snap.ok()) {
          pending.stopped = true;  // One create note: atomic.
          return pending;
        }
        snap_ids->push_back(*snap);
        model->Snapshot(*snap);
        break;
      }
      case OpSpec::kDelete: {
        const uint32_t snap_id = (*snap_ids)[op.snap_slot - 1];
        if (!h->Delete(snap_id).ok()) {
          pending.stopped = true;  // One delete note: atomic.
          return pending;
        }
        model->DeleteSnapshot(snap_id);
        break;
      }
      case OpSpec::kClean: {
        auto finish = h->ftl().ForceCleanSegment(h->now());
        if (!finish.ok()) {
          pending.stopped = true;  // Copy-forward preserves logical state.
          return pending;
        }
        h->AdvanceTo(*finish);
        break;
      }
    }
  }
  return pending;
}

// Checks `lba` against the model, accepting the pending torn-prefix version too.
::testing::AssertionResult CheckLbaWithPending(FtlHarness* h, uint64_t lba,
                                               const ReferenceModel& model,
                                               const PendingEffect& pending) {
  const uint64_t before = model.Current(lba);
  auto check = h->CheckLba(kPrimaryView, lba, before);
  if (check) {
    return check;
  }
  auto it = pending.maybe_writes.find(lba);
  if (it != pending.maybe_writes.end()) {
    auto alt = h->CheckLba(kPrimaryView, lba, it->second);
    if (alt) {
      return alt;
    }
  }
  return ::testing::AssertionFailure()
         << "lba " << lba << " matches neither pre-crash version " << before
         << " nor a pending in-flight write";
}

TEST(FaultCampaign, NoFaultEquivalenceWhenDisabled) {
  // A fault config with every rate at zero must be bit-identical to the default
  // build, regardless of seed: no RNG draw may happen on the hot path.
  FtlConfig plain = TinyConfig();
  FtlConfig armed = TinyConfig();
  FaultPlan zero;
  zero.seed = 0xDEADBEEFCAFEF00DULL;
  zero.read_disturb_ppm_per_k_reads = 0;  // Wear knobs at zero are also covered
  zero.retention_ppm_per_sec = 0;         // by the bit-identity guarantee.
  zero.ApplyTo(&armed);

  FtlHarness a(plain);
  FtlHarness b(armed);
  ReferenceModel model_a;
  ReferenceModel model_b;
  std::vector<uint32_t> snaps_a;
  std::vector<uint32_t> snaps_b;
  const std::vector<OpSpec> script = BuildScript();
  ASSERT_FALSE(Replay(&a, plain, script, &model_a, &snaps_a).stopped);
  ASSERT_FALSE(Replay(&b, armed, script, &model_b, &snaps_b).stopped);

  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.ftl().device().fault().ops(), b.ftl().device().fault().ops());
  const FtlStats& fa = a.ftl().stats();
  const FtlStats& fb = b.ftl().stats();
  EXPECT_EQ(0, std::memcmp(&fa, &fb, sizeof(FtlStats)));
  const NandStats& na = a.ftl().device().stats();
  const NandStats& nb = b.ftl().device().stats();
  EXPECT_EQ(0, std::memcmp(&na, &nb, sizeof(NandStats)));
  EXPECT_EQ(na.program_failures + na.erase_failures + na.read_failures +
                na.crc_errors + na.pages_corrupted,
            0u);

  auto entries_a = a.ftl().ViewMapEntries(kPrimaryView);
  auto entries_b = b.ftl().ViewMapEntries(kPrimaryView);
  ASSERT_OK(entries_a.status());
  ASSERT_OK(entries_b.status());
  EXPECT_EQ(*entries_a, *entries_b);
  EXPECT_EQ(a.ftl().snapshot_tree().LiveSnapshotIds(),
            b.ftl().snapshot_tree().LiveSnapshotIds());

  // Content identical as well (same snapshot hashes, by construction of PageData).
  for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
    EXPECT_TRUE(a.CheckLba(kPrimaryView, lba, model_a.Current(lba)));
    EXPECT_TRUE(b.CheckLba(kPrimaryView, lba, model_b.Current(lba)));
  }
}

TEST(FaultCampaign, CrashConsistencySweep) {
  const std::vector<OpSpec> script = BuildScript();

  // Baseline: run to completion on a healthy device to learn the op horizon.
  FtlConfig base_config = TinyConfig();
  uint64_t total_ops = 0;
  {
    FtlHarness h(base_config);
    ReferenceModel model;
    std::vector<uint32_t> snaps;
    ASSERT_FALSE(Replay(&h, base_config, script, &model, &snaps).stopped);
    total_ops = h.ftl().device().fault().ops();
  }
  ASSERT_GT(total_ops, 200u) << "script too small for a meaningful sweep";

  const uint64_t stride = std::max<uint64_t>(1, total_ops / 400);
  uint64_t points = 0;
  for (uint64_t k = 1; k < total_ops; k += stride) {
    ++points;
    SCOPED_TRACE("crash_after_op=" + std::to_string(k));

    FtlConfig config = TinyConfig();
    FaultPlan plan;
    plan.crash_after_op = k;
    plan.ApplyTo(&config);
    FtlHarness h(config);
    ReferenceModel model;
    std::vector<uint32_t> snaps;
    const PendingEffect pending = Replay(&h, config, script, &model, &snaps);
    if (pending.stopped) {
      ASSERT_TRUE(h.ftl().device().fault().crashed());
    }
    // Else the crash landed in the tail (e.g. inside a swallowed paced-GC
    // step): the full script is durable and the model is complete.

    // Power-cycle: the device comes back, the injection schedule does not.
    ASSERT_OK(h.CrashAndReopen(/*clear_faults=*/true));

    // Invariant: validity utilization counters reconstruct exactly.
    ASSERT_TRUE(h.ftl().validity().VerifyCounters());

    // Invariant: primary contents are the pre-crash state plus possibly the
    // in-flight op's torn prefix.
    for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
      ASSERT_TRUE(CheckLbaWithPending(&h, lba, model, pending));
    }

    // Invariant: exactly the durably-created, not-durably-deleted snapshots
    // survive, with their captured contents intact.
    std::vector<uint32_t> live = h.ftl().snapshot_tree().LiveSnapshotIds();
    std::set<uint32_t> live_set(live.begin(), live.end());
    std::set<uint32_t> expected;
    for (uint32_t id : snaps) {
      if (model.HasSnapshot(id)) {
        expected.insert(id);
      }
    }
    EXPECT_EQ(live_set, expected);
    for (uint32_t id : live) {
      auto view = h.Activate(id);
      ASSERT_OK(view.status());
      ASSERT_TRUE(h.CheckView(*view, model.snapshot_state(id), kLbaSpace));
      ASSERT_OK(h.ftl().Deactivate(*view, h.now()));
    }

    // The recovered device is usable: a fresh write sticks.
    ASSERT_OK(h.Write(0, 1000 + k));
    ASSERT_TRUE(h.CheckLba(kPrimaryView, 0, 1000 + k));
  }
  EXPECT_GE(points, 200u);
}

// The same crash sweep with XOR parity armed: every crash point now also lands
// around parity emissions and segment closes (where EmitParityIfDue programs one or
// two extra pages), and recovery must treat a torn stripe — members durable, parity
// not — as ordinary unprotected data, never as corruption. Each recovered image must
// also pass the offline checker with the stripe width inferred from the media.
TEST(FaultCampaign, CrashConsistencySweepWithParity) {
  const std::vector<OpSpec> script = BuildScript();

  FtlConfig base_config = TinyConfig();
  base_config.parity_stripe = 3;
  uint64_t total_ops = 0;
  {
    FtlHarness h(base_config);
    ReferenceModel model;
    std::vector<uint32_t> snaps;
    ASSERT_FALSE(Replay(&h, base_config, script, &model, &snaps).stopped);
    total_ops = h.ftl().device().fault().ops();
    ASSERT_GT(h.ftl().log_manager().stats().parity_pages_written, 0u);
  }

  const uint64_t stride = std::max<uint64_t>(1, total_ops / 150);
  for (uint64_t k = 1; k < total_ops; k += stride) {
    SCOPED_TRACE("crash_after_op=" + std::to_string(k));
    FtlConfig config = TinyConfig();
    config.parity_stripe = 3;
    FaultPlan plan;
    plan.crash_after_op = k;
    plan.ApplyTo(&config);
    FtlHarness h(config);
    ReferenceModel model;
    std::vector<uint32_t> snaps;
    const PendingEffect pending = Replay(&h, config, script, &model, &snaps);
    if (pending.stopped) {
      ASSERT_TRUE(h.ftl().device().fault().crashed());
    }
    ASSERT_OK(h.CrashAndReopen(/*clear_faults=*/true));
    ASSERT_TRUE(h.ftl().validity().VerifyCounters());
    for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
      ASSERT_TRUE(CheckLbaWithPending(&h, lba, model, pending));
    }
    std::vector<uint32_t> live = h.ftl().snapshot_tree().LiveSnapshotIds();
    std::set<uint32_t> live_set(live.begin(), live.end());
    std::set<uint32_t> expected;
    for (uint32_t id : snaps) {
      if (model.HasSnapshot(id)) {
        expected.insert(id);
      }
    }
    EXPECT_EQ(live_set, expected);
    // No crash point may leave a half-trusted stripe: the media always checks clean.
    ASSERT_OK_AND_ASSIGN(FsckReport report,
                         FsckDevice(&h.ftl().MutableDeviceForTesting()));
    EXPECT_TRUE(report.Clean()) << FormatFsckReport(report);
    // The recovered log keeps striping where it left off: fresh writes still land
    // behind parity and read back.
    ASSERT_OK(h.Write(0, 1000 + k));
    ASSERT_TRUE(h.CheckLba(kPrimaryView, 0, 1000 + k));
  }
}

TEST(FaultCampaign, RandomFaultSoak) {
  FtlConfig config = SmallConfig();
  FaultPlan plan;
  plan.seed = 7;
  plan.program_fail_ppm = 400;
  plan.erase_fail_ppm = 800;
  plan.read_fail_ppm = 2500;
  plan.bad_block_schedule = {{5, 1}};  // Segment 5 dies on its first erase.
  plan.ApplyTo(&config);

  FtlHarness h(config);
  ReferenceModel model;
  std::map<uint64_t, uint64_t> version;
  std::vector<uint32_t> live_snaps;
  constexpr uint64_t kSoakLbaSpace = 400;
  for (uint64_t i = 0; i < 6000; ++i) {
    const uint64_t lba = (i * 37) % kSoakLbaSpace;
    const uint64_t v = ++version[lba];
    if (h.Write(lba, v).ok()) {
      model.Write(lba, v);
    } else {
      --version[lba];  // Failed single write is not durable.
    }
    if (i % 997 == 499) {
      const uint64_t t = (i * 13) % (kSoakLbaSpace - 5);
      if (h.Trim(t, 5).ok()) {
        model.Trim(t, 5);
      }
    }
    if (i % 500 == 250) {
      while (live_snaps.size() >= 3) {
        if (!h.Delete(live_snaps.front()).ok()) {
          break;
        }
        model.DeleteSnapshot(live_snaps.front());
        live_snaps.erase(live_snaps.begin());
      }
      auto snap = h.Snapshot("soak-" + std::to_string(i));
      if (snap.ok()) {
        live_snaps.push_back(*snap);
        model.Snapshot(*snap);
      }
    }
  }

  const NandStats& n = h.ftl().device().stats();
  const LogStats& l = h.ftl().log_manager().stats();
  EXPECT_GT(n.read_retries, 0u);
  EXPECT_GT(n.program_failures + n.erase_failures + n.read_failures, 0u);
  EXPECT_GE(l.segments_retired, 1u);
  EXPECT_TRUE(h.ftl().device().IsBadSegment(5));
  EXPECT_TRUE(h.ftl().validity().VerifyCounters());

  // Everything the model says succeeded must read back (transient read faults
  // are absorbed by bounded retry).
  for (const auto& [lba, v] : model.current_state()) {
    ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, v));
  }

  // Survives a crash on the damaged media.
  ASSERT_OK(h.CrashAndReopen(/*clear_faults=*/true));
  ASSERT_TRUE(h.ftl().validity().VerifyCounters());
  for (const auto& [lba, v] : model.current_state()) {
    ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, v));
  }
  std::vector<uint32_t> live = h.ftl().snapshot_tree().LiveSnapshotIds();
  std::set<uint32_t> live_set(live.begin(), live.end());
  std::set<uint32_t> expected(live_snaps.begin(), live_snaps.end());
  EXPECT_EQ(live_set, expected);
}

// With GC copy-forward routed through on-die copyback, the host DMA that normally
// verifies CRCs never happens — scrub-on-copyback is what stands between a silently
// corrupted page and its unverified relocation. Corrupt one live page in place, force
// the clean, and check the scrub drops exactly that page while every other live page
// relocates via copyback.
TEST(FaultCampaign, CopybackScrubDropsCorruptSourceDuringClean) {
  FtlConfig config = TinyConfig();
  config.gc_copyback = true;  // copyback_scrub defaults on.
  FtlHarness h(config);

  // Version 1 everywhere, then version 2 everywhere except lba 3: the v1 segment(s)
  // end up nearly empty of live data, so greedy victim selection reaches them first,
  // and lba 3's v1 page is the lone live (and corrupt) survivor.
  for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
    if (lba != 3) {
      ASSERT_OK(h.Write(lba, 2));
    }
  }
  ASSERT_OK_AND_ASSIGN(auto entries, h.ftl().ViewMapEntries(kPrimaryView));
  uint64_t victim_paddr = ~uint64_t{0};
  for (const auto& [lba, paddr] : entries) {
    if (lba == 3) {
      victim_paddr = paddr;
    }
  }
  ASSERT_NE(victim_paddr, ~uint64_t{0});
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(victim_paddr);

  for (int round = 0; round < 8 && h.ftl().device().stats().crc_errors == 0; ++round) {
    auto finish = h.ftl().ForceCleanSegment(h.now());
    if (!finish.ok()) {
      break;  // No eligible victim left; the EXPECTs below report what was missed.
    }
    h.AdvanceTo(*finish);
  }
  const NandStats& n = h.ftl().device().stats();
  EXPECT_GE(n.crc_errors, 1u);  // The scrub fired.
  // Keep cleaning until a victim with healthy live pages comes up: those relocate
  // via copyback (the corrupt page's victim may have held no other live data).
  for (int round = 0; round < 8 && n.copyback_pages == 0; ++round) {
    auto finish = h.ftl().ForceCleanSegment(h.now());
    if (!finish.ok()) {
      break;
    }
    h.AdvanceTo(*finish);
  }
  EXPECT_GT(n.copyback_pages, 0u);
  // The corrupt page was dropped, not relocated: lba 3 no longer serves version 1.
  EXPECT_FALSE(h.CheckLba(kPrimaryView, 3, 1));
  // Everything else survived the copyback clean intact.
  for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
    if (lba != 3) {
      ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, 2));
    }
  }
  ASSERT_TRUE(h.ftl().validity().VerifyCounters());
  ASSERT_OK(h.Write(3, 5));
  ASSERT_TRUE(h.CheckLba(kPrimaryView, 3, 5));
}

// A propagating error mid-clean (here: the device goes offline, so every copyback
// fails kUnavailable until retries are exhausted) must not lose the data entry the
// copyback loop was processing: a channel queue pops an entry only after its
// relocation succeeds, so the interrupted entry is retried when cleaning resumes.
// A no-fault baseline run finds an op count inside the forced clean; the replay
// schedules the crash gate there, disarms it, finishes the clean, and checks that
// every live page still reads back.
TEST(FaultCampaign, CopybackCleanRetriesEntriesAfterMidCleanError) {
  FtlConfig config = TinyConfig();
  config.gc_copyback = true;

  auto setup = [](FtlHarness& h) {
    for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
      ASSERT_OK(h.Write(lba, 1));
    }
    // Overwrite every other lba so victims hold a mix of live and dead pages.
    for (uint64_t lba = 0; lba < kLbaSpace; lba += 2) {
      ASSERT_OK(h.Write(lba, 2));
    }
  };

  uint64_t ops_before = 0;
  uint64_t ops_after = 0;
  {
    FtlHarness h(config);
    setup(h);
    ops_before = h.ftl().device().fault().ops();
    ASSERT_OK_AND_ASSIGN(uint64_t finish, h.ftl().ForceCleanSegment(h.now()));
    h.AdvanceTo(finish);
    ops_after = h.ftl().device().fault().ops();
  }
  ASSERT_GT(ops_after, ops_before + 2);  // The clean performed real device work.

  config.nand.fault.crash_after_op = ops_before + (ops_after - ops_before) / 2;
  FtlHarness h(config);
  setup(h);
  auto interrupted = h.ftl().ForceCleanSegment(h.now());
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kUnavailable);

  // Power restored: the same victim resumes and every entry — including the one the
  // error interrupted — must relocate.
  h.ftl().MutableDeviceForTesting().ClearFaults();
  ASSERT_OK_AND_ASSIGN(uint64_t finish, h.ftl().ForceCleanSegment(h.now()));
  h.AdvanceTo(finish);
  EXPECT_GT(h.ftl().stats().gc_segments_cleaned, 0u);
  EXPECT_EQ(h.ftl().stats().gc_pages_lost, 0u);
  for (uint64_t lba = 0; lba < kLbaSpace; ++lba) {
    ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, lba % 2 == 0 ? 2 : 1));
  }
  ASSERT_TRUE(h.ftl().validity().VerifyCounters());
}

// The RandomFaultSoak invariants must hold unchanged when GC relocates via copyback
// on a multi-bus device: program failures reroute copyback appends, transient read
// failures retry the internal read leg, and retired segments stay off the free list.
TEST(FaultCampaign, CopybackRandomFaultSoak) {
  FtlConfig config = SmallConfig();
  config.gc_copyback = true;
  config.nand.buses = 2;
  FaultPlan plan;
  plan.seed = 7;
  plan.program_fail_ppm = 400;
  plan.erase_fail_ppm = 800;
  plan.read_fail_ppm = 2500;
  plan.bad_block_schedule = {{5, 1}};
  plan.ApplyTo(&config);

  FtlHarness h(config);
  ReferenceModel model;
  std::map<uint64_t, uint64_t> version;
  constexpr uint64_t kSoakLbaSpace = 400;
  // Random (not striding) overwrites: victims then hold a mix of live and dead
  // pages, so every clean exercises copyback relocation rather than pure drops.
  Rng rng(123);
  for (uint64_t i = 0; i < 6000; ++i) {
    const uint64_t lba = rng.NextBelow(kSoakLbaSpace);
    const uint64_t v = ++version[lba];
    if (h.Write(lba, v).ok()) {
      model.Write(lba, v);
    } else {
      --version[lba];
    }
    if (i % 997 == 499) {
      const uint64_t t = (i * 13) % (kSoakLbaSpace - 5);
      if (h.Trim(t, 5).ok()) {
        model.Trim(t, 5);
      }
    }
  }

  const NandStats& n = h.ftl().device().stats();
  EXPECT_GT(n.copyback_pages, 0u);
  EXPECT_GT(n.program_failures + n.erase_failures + n.read_failures, 0u);
  EXPECT_TRUE(h.ftl().device().IsBadSegment(5));
  EXPECT_TRUE(h.ftl().validity().VerifyCounters());
  for (const auto& [lba, v] : model.current_state()) {
    ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, v));
  }

  ASSERT_OK(h.CrashAndReopen(/*clear_faults=*/true));
  ASSERT_TRUE(h.ftl().validity().VerifyCounters());
  for (const auto& [lba, v] : model.current_state()) {
    ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, v));
  }
}

// Crash-mid-patrol regression: the device goes offline while the patrol scrubber
// is rewriting pages (an aggressive refresh threshold turns every scanned live
// page into a rewrite). A patrol rewrite is a GC-style copy-forward — the old copy
// stays valid until the new program lands — so a crash at *any* point inside the
// sweep must recover to exactly the pre-patrol logical state, and the recovered
// media must pass the offline checker.
TEST(FaultCampaign, CrashMidPatrolRecoversConsistently) {
  constexpr uint64_t kPatrolLbas = 180;
  FtlConfig base = SmallConfig();
  base.patrol_enabled = true;
  base.patrol_pages_per_step = 64;
  base.patrol_sleep_ms = 0;
  base.patrol_refresh_reads = 1;  // Everything scanned is "due": maximal rewrites.

  // Learn the op horizon: how many device ops the write phase takes, and how many
  // more a patrol-heavy pump phase adds.
  uint64_t ops_before_patrol = 0;
  uint64_t ops_after_patrol = 0;
  {
    FtlHarness h(base);
    for (uint64_t lba = 0; lba < kPatrolLbas; ++lba) {
      ASSERT_OK(h.Write(lba, 1));
    }
    // One read per LBA arms the read-count trigger.
    for (uint64_t lba = 0; lba < kPatrolLbas; ++lba) {
      ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, 1));
    }
    ops_before_patrol = h.ftl().device().fault().ops();
    for (int i = 0; i < 12; ++i) {
      h.AdvanceTo(h.now() + 1000000);
      h.ftl().PumpBackground(h.now());
    }
    ops_after_patrol = h.ftl().device().fault().ops();
    ASSERT_GT(h.ftl().stats().patrol_pages_rewritten, 0u);
    ASSERT_GT(ops_after_patrol, ops_before_patrol);
  }

  // Sweep crash points across the patrol phase (strided to keep runtime sane).
  const uint64_t span = ops_after_patrol - ops_before_patrol;
  const uint64_t stride = std::max<uint64_t>(1, span / 24);
  for (uint64_t k = ops_before_patrol + 1; k <= ops_after_patrol; k += stride) {
    FtlConfig config = base;
    FaultPlan plan;
    plan.crash_after_op = k;
    plan.ApplyTo(&config);
    FtlHarness h(config);
    for (uint64_t lba = 0; lba < kPatrolLbas; ++lba) {
      ASSERT_OK(h.Write(lba, 1));
    }
    for (uint64_t lba = 0; lba < kPatrolLbas; ++lba) {
      ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, 1));
    }
    // Patrol runs until the injected crash takes the device offline; Step errors
    // are swallowed by PumpBackground (logged, not fatal).
    for (int i = 0; i < 12; ++i) {
      h.AdvanceTo(h.now() + 1000000);
      h.ftl().PumpBackground(h.now());
    }
    ASSERT_OK(h.CrashAndReopen(/*clear_faults=*/true)) << "crash at op " << k;
    ASSERT_TRUE(h.ftl().validity().VerifyCounters()) << "crash at op " << k;
    for (uint64_t lba = 0; lba < kPatrolLbas; ++lba) {
      ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, 1)) << "crash at op " << k;
    }
    ASSERT_OK_AND_ASSIGN(FsckReport report,
                         FsckDevice(&h.ftl().MutableDeviceForTesting()));
    EXPECT_TRUE(report.Clean())
        << "crash at op " << k << "\n" << FormatFsckReport(report);
  }
}

// Wear-model determinism at FTL level: two identical runs with the same seed and
// live disturb/retention rates end in bit-identical device and FTL state — the
// property the media-reliability campaign (and any bug repro) depends on.
TEST(FaultCampaign, WearCampaignIsReproducible) {
  auto run = []() {
    FtlConfig config = SmallConfig();
    FaultPlan plan;
    plan.seed = 99;
    plan.read_disturb_ppm_per_k_reads = 1000000;
    plan.retention_ppm_per_sec = 2000;
    plan.ApplyTo(&config);
    auto h = std::make_unique<FtlHarness>(config);
    constexpr uint64_t kWearLbas = 160;
    for (uint64_t lba = 0; lba < kWearLbas; ++lba) {
      IOSNAP_CHECK(h->Write(lba, 1).ok());
    }
    uint64_t failed_reads = 0;
    for (int round = 0; round < 20; ++round) {
      for (uint64_t lba = 0; lba < kWearLbas; ++lba) {
        std::vector<uint8_t> data;
        auto result = h->ftl().ReadView(kPrimaryView, lba, h->now(), &data);
        if (result.ok()) {
          h->AdvanceTo(result->CompletionNs());
        } else {
          IOSNAP_CHECK(result.status().code() == StatusCode::kDataLoss);
          ++failed_reads;
        }
      }
    }
    return std::make_tuple(std::move(h), failed_reads);
  };
  auto [a, fails_a] = run();
  auto [b, fails_b] = run();
  EXPECT_EQ(fails_a, fails_b);
  EXPECT_GT(fails_a, 0u);  // The campaign actually bit something.
  EXPECT_EQ(a->now(), b->now());
  const NandStats& na = a->ftl().device().stats();
  const NandStats& nb = b->ftl().device().stats();
  EXPECT_EQ(0, std::memcmp(&na, &nb, sizeof(NandStats)));
  const FtlStats& fa = a->ftl().stats();
  const FtlStats& fb = b->ftl().stats();
  EXPECT_EQ(0, std::memcmp(&fa, &fb, sizeof(FtlStats)));
  auto entries_a = a->ftl().ViewMapEntries(kPrimaryView);
  auto entries_b = b->ftl().ViewMapEntries(kPrimaryView);
  ASSERT_OK(entries_a.status());
  ASSERT_OK(entries_b.status());
  EXPECT_EQ(*entries_a, *entries_b);
}

}  // namespace
}  // namespace iosnap
