// Invariant tests for the incremental utilization accounting (per-segment merged and
// per-epoch valid-page counters) and the cached merge planes in ValidityMap.
//
// The counters are updated inside every SetValid/ClearValid/MoveBit/ForkEpoch/DropEpoch;
// these tests drive randomized write/trim/snapshot/GC/rollback sequences through the full
// FTL and cross-check every counter against a from-scratch CountValidInRange recount,
// plus restart tests proving the counters rebuild identically through a checkpointed
// close and through crash recovery.

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

// Cross-checks every incremental structure against brute force: the registered epoch set
// vs LiveEpochs, per-range merged and per-epoch counters vs CountValidInRange, MergedTest
// vs TestAny, and ValidityMap's own internal audit.
::testing::AssertionResult CheckCounters(Ftl& ftl) {
  const ValidityMap& validity = ftl.validity();
  const std::vector<uint32_t> live = ftl.LiveEpochs();

  // The counters cover the map's registered epoch set; the cleaner treats its counter
  // reads as "merged over live epochs", which is only sound if the sets coincide.
  if (validity.Epochs() != live) {
    return ::testing::AssertionFailure() << "validity epoch set != LiveEpochs()";
  }

  const uint64_t range_pages = validity.range_pages();
  if (range_pages != ftl.config().nand.pages_per_segment) {
    return ::testing::AssertionFailure() << "counter ranges are not segment-sized";
  }
  for (uint64_t r = 0; r < validity.NumRanges(); ++r) {
    const uint64_t begin = r * range_pages;
    const uint64_t end = std::min(begin + range_pages, validity.total_pages());
    const uint64_t expect = validity.CountValidInRange(live, begin, end);
    if (validity.MergedValidCount(r) != expect) {
      return ::testing::AssertionFailure()
             << "segment " << r << ": merged counter " << validity.MergedValidCount(r)
             << " != recount " << expect;
    }
    for (uint32_t epoch : live) {
      const uint64_t epoch_expect = validity.CountValidInRange(epoch, begin, end);
      if (validity.EpochValidCount(epoch, r) != epoch_expect) {
        return ::testing::AssertionFailure()
               << "segment " << r << " epoch " << epoch << ": counter "
               << validity.EpochValidCount(epoch, r) << " != recount " << epoch_expect;
      }
    }
  }

  for (uint64_t paddr = 0; paddr < validity.total_pages(); ++paddr) {
    if (validity.MergedTest(paddr) != validity.TestAny(live, paddr)) {
      return ::testing::AssertionFailure()
             << "paddr " << paddr << ": MergedTest disagrees with TestAny over live epochs";
    }
  }

  if (!validity.VerifyCounters()) {
    return ::testing::AssertionFailure() << "ValidityMap::VerifyCounters failed";
  }
  return ::testing::AssertionSuccess();
}

TEST(UtilizationTest, CountersMatchRecountAfterRandomizedOps) {
  FtlHarness h(SmallConfig());
  // A quarter of the LBA space: up to three divergent snapshot generations plus the
  // active set must fit the 2048-page device with room for GC headway.
  const uint64_t lba_space = h.ftl().LbaCount() / 4;
  std::mt19937 rng(1234);
  std::vector<uint32_t> snaps;
  uint64_t version = 1;

  for (int step = 0; step < 60; ++step) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 55) {
      // A burst of writes (also drives paced/inline GC under space pressure).
      const int count = 10 + static_cast<int>(rng() % 40);
      for (int i = 0; i < count; ++i) {
        ASSERT_OK(h.Write(rng() % lba_space, version++));
      }
    } else if (op < 70) {
      const uint64_t lba = rng() % lba_space;
      ASSERT_OK(h.Trim(lba, 1 + rng() % std::min<uint64_t>(8, lba_space - lba)));
    } else if (op < 80 && snaps.size() < 3) {
      uint32_t id = 0;
      ASSERT_OK_AND_ASSIGN(id, h.Snapshot("s" + std::to_string(step)));
      snaps.push_back(id);
    } else if (op < 88 && !snaps.empty()) {
      const size_t pick = rng() % snaps.size();
      ASSERT_OK(h.Delete(snaps[pick]));
      snaps.erase(snaps.begin() + pick);
    } else if (op < 94) {
      auto finish = h.ftl().ForceCleanSegment(h.now());
      ASSERT_OK(finish.status());
      h.AdvanceTo(*finish);
    } else if (!snaps.empty()) {
      auto finish = h.ftl().RollbackToSnapshot(snaps[rng() % snaps.size()], h.now());
      ASSERT_OK(finish.status());
      h.AdvanceTo(*finish);
    }
    ASSERT_TRUE(CheckCounters(h.ftl())) << "after step " << step;
  }
}

TEST(UtilizationTest, CountersTrackActivatedViews) {
  FtlHarness h(SmallConfig());
  const uint64_t lba_space = h.ftl().LbaCount() / 2;
  uint64_t version = 1;
  for (uint64_t lba = 0; lba < lba_space; ++lba) {
    ASSERT_OK(h.Write(lba, version++));
  }
  uint32_t snap = 0;
  ASSERT_OK_AND_ASSIGN(snap, h.Snapshot("base"));
  for (uint64_t lba = 0; lba < lba_space; lba += 2) {
    ASSERT_OK(h.Write(lba, version++));
  }

  // A writable view adds a forked epoch to the set; its writes must land in the view
  // epoch's counters.
  uint32_t view = 0;
  ASSERT_OK_AND_ASSIGN(view, h.Activate(snap, /*writable=*/true));
  ASSERT_TRUE(CheckCounters(h.ftl()));
  for (uint64_t lba = 1; lba < lba_space; lba += 4) {
    auto io = h.ftl().WriteView(view, lba, PageData(4096, lba, version), h.now());
    ASSERT_OK(io.status());
    h.AdvanceTo(io->CompletionNs());
    ++version;
  }
  ASSERT_TRUE(CheckCounters(h.ftl()));
  ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  ASSERT_TRUE(CheckCounters(h.ftl()));
}

// Shared state builder for the restart tests: several snapshots with churn between them,
// a deleted snapshot, and forced cleaning so validity bits have moved segments.
void BuildRestartState(FtlHarness* h, uint64_t lba_space) {
  uint64_t version = 1;
  std::mt19937 rng(99);
  std::vector<uint32_t> snaps;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 150; ++i) {
      ASSERT_OK(h->Write(rng() % lba_space, version++));
    }
    ASSERT_OK(h->Trim(rng() % (lba_space - 4), 4));
    uint32_t id = 0;
    ASSERT_OK_AND_ASSIGN(id, h->Snapshot("r" + std::to_string(round)));
    snaps.push_back(id);
  }
  ASSERT_OK(h->Delete(snaps[1]));
  for (int i = 0; i < 2; ++i) {
    auto finish = h->ftl().ForceCleanSegment(h->now());
    ASSERT_OK(finish.status());
    h->AdvanceTo(*finish);
  }
  ASSERT_TRUE(CheckCounters(h->ftl()));
}

// Captures every counter the cleaner consumes, for before/after comparison.
std::vector<std::vector<uint64_t>> CounterSnapshot(Ftl& ftl) {
  const ValidityMap& validity = ftl.validity();
  std::vector<std::vector<uint64_t>> out;
  std::vector<uint64_t> merged;
  for (uint64_t r = 0; r < validity.NumRanges(); ++r) {
    merged.push_back(validity.MergedValidCount(r));
  }
  out.push_back(std::move(merged));
  for (uint32_t epoch : ftl.LiveEpochs()) {
    std::vector<uint64_t> per_epoch{epoch};
    for (uint64_t r = 0; r < validity.NumRanges(); ++r) {
      per_epoch.push_back(validity.EpochValidCount(epoch, r));
    }
    out.push_back(std::move(per_epoch));
  }
  return out;
}

TEST(UtilizationTest, CountersRebuildAcrossCheckpointRestart) {
  FtlHarness h(SmallConfig());
  BuildRestartState(&h, h.ftl().LbaCount() / 2);
  const auto before = CounterSnapshot(h.ftl());
  ASSERT_OK(h.CleanRestart());
  ASSERT_TRUE(CheckCounters(h.ftl()));
  EXPECT_EQ(before, CounterSnapshot(h.ftl()));
}

TEST(UtilizationTest, CountersRebuildAcrossCrashRecovery) {
  FtlHarness h(SmallConfig());
  BuildRestartState(&h, h.ftl().LbaCount() / 2);
  const auto before = CounterSnapshot(h.ftl());
  ASSERT_OK(h.CrashAndReopen());
  ASSERT_TRUE(CheckCounters(h.ftl()));
  EXPECT_EQ(before, CounterSnapshot(h.ftl()));
}

}  // namespace
}  // namespace iosnap
