// Snapshot-aware segment cleaning (§5.4): snapshot data must survive cleaning, deleted
// snapshots must be reclaimed, notes must be preserved, and all selection policies must
// stay correct.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/ftl.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

// Fills the log enough to give the cleaner real work.
void Churn(FtlHarness* h, uint64_t lba_space, uint64_t writes, uint64_t* version,
           ReferenceModel* model, uint64_t seed) {
  Rng rng(seed);
  for (uint64_t i = 0; i < writes; ++i) {
    const uint64_t lba = rng.NextBelow(lba_space);
    ++(*version);
    ASSERT_OK(h->Write(lba, *version));
    if (model != nullptr) {
      model->Write(lba, *version);
    }
    h->ftl().PumpBackground(h->now());
  }
}

TEST(CleanerTest, SnapshotDataSurvivesAggressiveCleaning) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  const uint64_t lba_space = 48;

  Churn(&h, lba_space, 200, &version, &model, 1);
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  model.Snapshot(snap);

  // Overwrite heavily: several device-capacities worth of churn.
  Churn(&h, lba_space, config.nand.TotalPages() * 2, &version, &model, 2);
  ASSERT_GT(h.ftl().stats().gc_segments_cleaned, 0u);

  // The snapshot must still activate to its exact point-in-time state even though every
  // original segment has long been cleaned.
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), lba_space));
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space));
}

TEST(CleanerTest, DeletedSnapshotSpaceIsReclaimed) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  uint64_t version = 0;
  const uint64_t lba_space = 48;

  Churn(&h, lba_space, 100, &version, nullptr, 3);
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  // Overwrite everything so the snapshot's blocks are dead in the active view.
  for (uint64_t lba = 0; lba < lba_space; ++lba) {
    ++version;
    ASSERT_OK(h.Write(lba, version));
  }

  // With the snapshot live, cleaning a segment holding its data copies those pages.
  ASSERT_OK(h.Delete(snap));
  const uint64_t copied_before = h.ftl().stats().gc_pages_copied;
  // Force-clean everything closed: deleted-snapshot pages must NOT be copied forward
  // (merge excludes the deleted epoch, Fig 6C) beyond live active data.
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(h.ftl().ForceCleanSegment(h.now()).status());
  }
  const uint64_t copied = h.ftl().stats().gc_pages_copied - copied_before;
  // The active view holds lba_space live pages; cleaning can move each at most a few
  // times. If deleted-snapshot data were still copied, this would be far larger.
  EXPECT_LE(copied, lba_space * 3);

  for (uint64_t lba = 0; lba < lba_space; ++lba) {
    ASSERT_TRUE(h.ftl().IsMapped(lba));
  }
}

TEST(CleanerTest, CleaningPreservesActiveContentExactly) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  Churn(&h, 40, 150, &version, &model, 4);

  uint64_t cleaned = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t finish, h.ftl().ForceCleanSegment(h.now()));
    h.AdvanceTo(finish);
    ++cleaned;
  }
  EXPECT_GE(h.ftl().stats().gc_segments_cleaned, cleaned > 0 ? 1u : 0u);
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 40));
}

TEST(CleanerTest, NotesSurviveCleaning) {
  // Snapshot notes must be copied forward, or crash recovery after cleaning would lose
  // the epoch tree. Verified end-to-end: churn, clean, crash, recover, check snapshot.
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  const uint64_t lba_space = 32;

  Churn(&h, lba_space, 80, &version, &model, 5);
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  model.Snapshot(snap);
  Churn(&h, lba_space, config.nand.TotalPages(), &version, &model, 6);
  ASSERT_GT(h.ftl().stats().gc_segments_cleaned, 0u);

  ASSERT_OK(h.CrashAndReopen());
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), lba_space));
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space));
}

class CleanerPolicyTest : public ::testing::TestWithParam<CleanerPolicy> {};

TEST_P(CleanerPolicyTest, PolicyPreservesSemanticsUnderChurn) {
  FtlConfig config = SmallConfig();
  config.cleaner_policy = GetParam();
  if (GetParam() == CleanerPolicy::kEpochColocate) {
    config.gc_reserve_segments = 6;  // Multiple colocation heads need more headroom.
    config.gc_low_free_segments = 8;
    config.gc_high_free_segments = 10;
  }
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  const uint64_t lba_space = 40;

  std::vector<uint32_t> snaps;
  for (int round = 0; round < 3; ++round) {
    Churn(&h, lba_space, config.nand.TotalPages() / 2, &version, &model, 7 + round);
    ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
    model.Snapshot(snap);
    snaps.push_back(snap);
  }
  Churn(&h, lba_space, config.nand.TotalPages(), &version, &model, 20);
  EXPECT_GT(h.ftl().stats().gc_segments_cleaned, 0u);

  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space));
  for (uint32_t snap : snaps) {
    ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
    EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), lba_space))
        << "snapshot " << snap;
    ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CleanerPolicyTest,
                         ::testing::Values(CleanerPolicy::kGreedy,
                                           CleanerPolicy::kCostBenefit,
                                           CleanerPolicy::kEpochColocate),
                         [](const ::testing::TestParamInfo<CleanerPolicy>& param_info) {
                           switch (param_info.param) {
                             case CleanerPolicy::kGreedy:
                               return std::string("Greedy");
                             case CleanerPolicy::kCostBenefit:
                               return std::string("CostBenefit");
                             case CleanerPolicy::kEpochColocate:
                               return std::string("EpochColocate");
                           }
                           return std::string("Unknown");
                         });

TEST(CleanerTest, ForceCleanOnEmptyDeviceIsNoop) {
  FtlHarness h(SmallConfig());
  ASSERT_OK_AND_ASSIGN(uint64_t finish, h.ftl().ForceCleanSegment(0));
  EXPECT_EQ(finish, 0u);
  EXPECT_EQ(h.ftl().stats().gc_segments_cleaned, 0u);
}

TEST(CleanerTest, NoteConsolidationPreventsMetadataSnowball) {
  // Regression: snapshot notes must not accumulate forever on the log. Without tree
  // summaries, thousands of create/delete notes ping-pong through the cleaner until the
  // device jams ("RESOURCE_EXHAUSTED") even though barely any user data is live.
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  std::vector<uint32_t> live;
  Rng rng(21);
  for (int round = 0; round < 120; ++round) {
    for (int i = 0; i < 16; ++i) {
      const uint64_t lba = rng.NextBelow(32);
      ++version;
      ASSERT_OK(h.Write(lba, version)) << "round " << round;
      model.Write(lba, version);
      h.ftl().PumpBackground(h.now());
    }
    ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("cycle"));
    model.Snapshot(snap);
    live.push_back(snap);
    while (live.size() > 3) {
      ASSERT_OK(h.Delete(live.front()));
      model.DeleteSnapshot(live.front());
      live.erase(live.begin());
    }
  }
  // The cleaner consolidated notes instead of copying them forever.
  EXPECT_GT(h.ftl().stats().gc_summaries_written, 0u);
  EXPECT_GT(h.ftl().stats().gc_notes_dropped, 0u);
  // Snapshots still recover correctly through summaries after a crash.
  ASSERT_OK(h.CrashAndReopen());
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), 32));
  for (uint32_t snap : live) {
    ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
    EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), 32)) << "snap " << snap;
    ASSERT_OK(h.ftl().Deactivate(view, h.now()));
  }
}

TEST(CleanerTest, TrimCompactionPreventsTrimNoteSnowball) {
  // Regression: discard-heavy workloads (e.g. a filesystem mounted with online discard)
  // generate one trim note per range. Copying them forward 1:1 forever recycles all-note
  // segments through the cleaner until the device jams; compaction batches them into
  // dense kTrimSummary pages and retires the ones no surviving data depends on.
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  Rng rng(31);
  const uint64_t lba_space = 48;
  for (int round = 0; round < 400; ++round) {
    for (int i = 0; i < 6; ++i) {
      const uint64_t lba = rng.NextBelow(lba_space);
      ++version;
      ASSERT_OK(h.Write(lba, version)) << "round " << round;
      model.Write(lba, version);
    }
    const uint64_t lba = rng.NextBelow(lba_space - 2);
    ASSERT_OK(h.Trim(lba, 2)) << "round " << round;
    model.Trim(lba, 2);
    h.ftl().PumpBackground(h.now());
  }
  EXPECT_GT(h.ftl().stats().gc_notes_dropped, 0u);
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space));

  // Trim effects survive a crash even after heavy compaction.
  ASSERT_OK(h.CrashAndReopen());
  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space));
}

TEST(CleanerTest, VanillaRatePolicyStillCorrectJustSlower) {
  // Fig 10's vanilla rate policy mispaces but must never corrupt.
  FtlConfig config = SmallConfig();
  config.snapshot_aware_gc_rate = false;
  FtlHarness h(config);
  ReferenceModel model;
  uint64_t version = 0;
  const uint64_t lba_space = 40;
  Churn(&h, lba_space, 100, &version, &model, 8);
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("s"));
  model.Snapshot(snap);
  Churn(&h, lba_space, config.nand.TotalPages() * 2, &version, &model, 9);

  EXPECT_TRUE(h.CheckView(kPrimaryView, model.current_state(), lba_space));
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  EXPECT_TRUE(h.CheckView(view, model.snapshot_state(snap), lba_space));
}

}  // namespace
}  // namespace iosnap
