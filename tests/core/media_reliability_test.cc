// Media-reliability integration campaign: the patrol scrubber (preemptive refresh,
// corrupt-page expungement), the offline checker (detect -> repair -> clean), the
// at-rest image round trip, degraded read-only mode, and the patrol-vs-control
// comparison under a live read-disturb wear model.
//
// Determinism note: the read-disturb effective rate is
//   rate * (segment_reads_since_erase / 1000)
// with *integer* division, so segments under 1000 reads draw at exactly zero ppm and
// a max-rate segment corrupts with certainty on its 1000th read. The campaign leans
// on that cliff: a patrol refresh threshold far below 1000 keeps every segment's read
// count cold (zero corruption, deterministically), while the patrol-less control is
// guaranteed to decay once its hot segments cross the line.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fsck.h"
#include "src/core/ftl.h"
#include "src/nand/nand_image.h"
#include "tests/test_util.h"

namespace iosnap {
namespace {

// Pumps background work (idle GC + patrol) `times` times, advancing the harness
// clock by `step_ns` before each pump so rate limiters make progress.
void Pump(FtlHarness* h, int times, uint64_t step_ns = 1000000) {
  for (int i = 0; i < times; ++i) {
    h->AdvanceTo(h->now() + step_ns);
    h->ftl().PumpBackground(h->now());
  }
}

// Physical address currently backing `lba` in the primary view.
uint64_t PaddrOf(Ftl* ftl, uint64_t lba) {
  auto entries = ftl->ViewMapEntries(kPrimaryView);
  IOSNAP_CHECK(entries.ok());
  for (const auto& [entry_lba, paddr] : *entries) {
    if (entry_lba == lba) {
      return paddr;
    }
  }
  IOSNAP_CHECK(false);
  return 0;
}

// Some LBA whose backing page sits in a *closed* segment (the patrol's beat).
uint64_t LbaInClosedSegment(Ftl* ftl) {
  auto entries = ftl->ViewMapEntries(kPrimaryView);
  IOSNAP_CHECK(entries.ok());
  for (const auto& [lba, paddr] : *entries) {
    const uint64_t segment = ftl->device().SegmentOf(paddr);
    if (ftl->log_manager().segment_info(segment).state == SegmentState::kClosed) {
      return lba;
    }
  }
  IOSNAP_CHECK(false);
  return 0;
}

TEST(PatrolScrubberTest, RefreshRewritesHotPagesWithoutDataChange) {
  FtlConfig config = SmallConfig();
  config.patrol_enabled = true;
  config.patrol_pages_per_step = 4096;  // A pump sweeps everything.
  config.patrol_sleep_ms = 0;
  config.patrol_refresh_reads = 50;
  FtlHarness h(config);

  const uint64_t kLbas = 128;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  // Heat the segments past the refresh threshold with plain reads.
  for (int round = 0; round < 60; ++round) {
    for (uint64_t lba = 0; lba < kLbas; ++lba) {
      ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, 1));
    }
  }
  Pump(&h, 4);
  EXPECT_GT(h.ftl().stats().patrol_pages_rewritten, 0u);
  EXPECT_EQ(h.ftl().stats().patrol_pages_dropped, 0u);
  // Refresh is invisible to the host: every LBA still reads its version.
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, 1));
  }
}

TEST(PatrolScrubberTest, BackgroundSweepExpungesCorruptPage) {
  FtlConfig config = SmallConfig();
  config.patrol_enabled = true;
  config.patrol_pages_per_step = 4096;
  config.patrol_sleep_ms = 0;
  FtlHarness h(config);

  const uint64_t kLbas = 256;  // Spans several segments; most end up closed.
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  const uint64_t victim_lba = LbaInClosedSegment(&h.ftl());
  const uint64_t victim_paddr = PaddrOf(&h.ftl(), victim_lba);
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(victim_paddr);

  Pump(&h, 8);
  const FtlStats& s = h.ftl().stats();
  EXPECT_EQ(s.patrol_pages_dropped, 1u);
  EXPECT_GE(s.patrol_segments_evacuated, 1u);
  // The damage is gone from the media, not just unmapped: fsck agrees.
  ASSERT_OK_AND_ASSIGN(FsckReport report,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(report.Clean()) << FormatFsckReport(report);
  EXPECT_EQ(report.crc_failures, 0u);
  // The lost LBA now reads as unmapped; its neighbors are untouched.
  EXPECT_TRUE(h.CheckLba(kPrimaryView, victim_lba, 0));
  EXPECT_TRUE(h.CheckLba(kPrimaryView, (victim_lba + 1) % kLbas, 1));
}

// Regression: with store_data off, corruption flips a bit of the stored header's
// *lba* field — so the drop path cannot trust the header to name the right map
// entry. Before the paddr-keyed map sweep, the real lba's entry survived the
// evacuation erase and a later read hit an unprogrammed page
// (FAILED_PRECONDITION) instead of reading back as unmapped.
TEST(PatrolScrubberTest, DropWithCorruptHeaderDetachesForwardMap) {
  FtlConfig config = SmallConfig();
  config.nand.store_data = false;  // Header-only media: the flip lands in header.lba.
  config.patrol_enabled = true;
  config.patrol_pages_per_step = 4096;
  config.patrol_sleep_ms = 0;
  FtlHarness h(config);

  const uint64_t kLbas = 256;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  const uint64_t victim_lba = LbaInClosedSegment(&h.ftl());
  const uint64_t victim_paddr = PaddrOf(&h.ftl(), victim_lba);
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(victim_paddr);

  Pump(&h, 8);
  const FtlStats& s = h.ftl().stats();
  EXPECT_EQ(s.patrol_pages_dropped, 1u);
  EXPECT_GE(s.patrol_segments_evacuated, 1u);
  // The victim lba must read as unmapped zeroes — a dangling map entry into the
  // erased segment would surface here as a typed read failure.
  std::vector<uint8_t> data;
  ASSERT_OK(h.ftl().ReadView(kPrimaryView, victim_lba, h.now(), &data).status());
  EXPECT_TRUE(std::all_of(data.begin(), data.end(),
                          [](uint8_t b) { return b == 0; }));
}

TEST(FsckTest, DetectsLostDataThenScrubRepairs) {
  FtlConfig config = SmallConfig();  // Patrol *disabled*: nothing heals on its own.
  FtlHarness h(config);
  const uint64_t kLbas = 200;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  const uint64_t victim_lba = LbaInClosedSegment(&h.ftl());
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(PaddrOf(&h.ftl(), victim_lba));

  ASSERT_OK_AND_ASSIGN(FsckReport dirty,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  EXPECT_FALSE(dirty.Clean());
  EXPECT_EQ(dirty.crc_failures, 1u);
  EXPECT_EQ(dirty.lost_data_pages, 1u);
  EXPECT_TRUE(dirty.recovery_ok);
  EXPECT_FALSE(dirty.errors.empty());

  // ScrubAllBlocking works with patrol_enabled off — it is the fsck --repair hook.
  ASSERT_OK(h.ftl().ScrubAllBlocking(h.now()).status());
  ASSERT_OK_AND_ASSIGN(FsckReport clean,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(clean.Clean()) << FormatFsckReport(clean);
  EXPECT_EQ(clean.crc_failures, 0u);
  EXPECT_EQ(h.ftl().stats().patrol_pages_dropped, 1u);
}

TEST(FsckTest, SupersededCorruptionIsNotAnError) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  for (uint64_t lba = 0; lba < 200; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  const uint64_t victim_lba = LbaInClosedSegment(&h.ftl());
  const uint64_t old_paddr = PaddrOf(&h.ftl(), victim_lba);
  // Overwrite first, then corrupt the now-stale copy: a higher intact seq for the
  // same (epoch, lba) exists on media, so nothing was lost.
  ASSERT_OK(h.Write(victim_lba, 2));
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(old_paddr);

  ASSERT_OK_AND_ASSIGN(FsckReport report,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(report.Clean()) << FormatFsckReport(report);
  EXPECT_EQ(report.crc_failures, 1u);
  EXPECT_EQ(report.superseded_corrupt_pages, 1u);
  EXPECT_EQ(report.lost_data_pages, 0u);
}

TEST(FsckTest, ImageRoundTripPreservesLatentCorruption) {
  FtlConfig config = SmallConfig();
  FtlHarness h(config);
  for (uint64_t lba = 0; lba < 150; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("pinned"));
  (void)snap;
  for (uint64_t lba = 0; lba < 50; ++lba) {
    ASSERT_OK(h.Write(lba, 2));
  }
  const uint64_t victim_lba = LbaInClosedSegment(&h.ftl());
  h.ftl().MutableDeviceForTesting().CorruptPageForTesting(PaddrOf(&h.ftl(), victim_lba));

  ASSERT_OK_AND_ASSIGN(FsckReport before,
                       FsckDevice(&h.ftl().MutableDeviceForTesting()));
  std::unique_ptr<NandDevice> device = h.ftl().ReleaseDevice();
  const std::string path = ::testing::TempDir() + "/media_reliability_roundtrip.img";
  ASSERT_OK(SaveNandImage(*device, path));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<NandDevice> loaded, LoadNandImage(path));
  std::remove(path.c_str());

  EXPECT_EQ(loaded->config().page_size_bytes, config.nand.page_size_bytes);
  EXPECT_EQ(loaded->config().num_segments, config.nand.num_segments);
  ASSERT_OK_AND_ASSIGN(FsckReport after, FsckDevice(loaded.get()));
  // The image is byte-faithful: the checker sees the identical picture, latent
  // CRC failure included.
  EXPECT_EQ(after.pages_scanned, before.pages_scanned);
  EXPECT_EQ(after.crc_failures, before.crc_failures);
  EXPECT_EQ(after.lost_data_pages, before.lost_data_pages);
  EXPECT_EQ(after.superseded_corrupt_pages, before.superseded_corrupt_pages);
  EXPECT_EQ(after.dangling_validity_refs, before.dangling_validity_refs);
  EXPECT_EQ(after.map_mismatches, before.map_mismatches);
  EXPECT_EQ(after.doubly_claimed_pages, before.doubly_claimed_pages);
  EXPECT_EQ(after.orphaned_pages, before.orphaned_pages);
  EXPECT_EQ(after.epochs_checked, before.epochs_checked);
  EXPECT_EQ(after.crc_failures, 1u);
}

TEST(DegradedModeTest, ExhaustionEntersReadOnlyAndReclaimExits) {
  FtlConfig config = SmallConfig();
  config.degraded_free_floor = 3;  // Below gc_low: only unreclaimable pressure trips it.
  config.degraded_exit_free = 6;   // == gc_high, so idle GC can actually get us out.
  FtlHarness h(config);
  const uint64_t lba_count = config.LbaCount();

  // Fill the primary, pin it all under a snapshot, then keep writing fresh
  // versions: every page is live somewhere, so the cleaner has nothing to reclaim
  // and the free pool drains to the floor.
  for (uint64_t lba = 0; lba < lba_count; ++lba) {
    ASSERT_OK(h.Write(lba, 1));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t snap, h.Snapshot("pin"));
  uint64_t next_lba = 0;
  Status write_status = OkStatus();
  for (uint64_t i = 0; i < 2 * lba_count; ++i) {
    write_status = h.Write(next_lba, 2);
    if (!write_status.ok()) {
      break;
    }
    next_lba = (next_lba + 1) % lba_count;
  }
  ASSERT_EQ(write_status.code(), StatusCode::kResourceExhausted)
      << "device never exhausted: " << write_status.ToString();
  EXPECT_TRUE(h.ftl().degraded());
  const FtlStats& s = h.ftl().stats();
  EXPECT_GE(s.degraded_entries, 1u);
  EXPECT_GE(s.degraded_writes_rejected, 1u);

  // Read-only means exactly that: writes and trims bounce, but every live epoch
  // stays fully readable — the primary at its newest versions and the snapshot
  // at the pinned ones.
  EXPECT_EQ(h.Write(0, 3).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(h.Trim(0, 4).code(), StatusCode::kResourceExhausted);
  for (uint64_t lba = 0; lba < 16; ++lba) {
    const uint64_t version = lba < next_lba ? 2 : 1;
    ASSERT_TRUE(h.CheckLba(kPrimaryView, lba, version));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t view, h.Activate(snap));
  for (uint64_t lba = 0; lba < 16; ++lba) {
    ASSERT_TRUE(h.CheckLba(view, lba, 1));
  }
  ASSERT_OK(h.ftl().Deactivate(view, h.now()));

  // Snapshot deletion is the escape hatch and must work while degraded. Dropping
  // the pin turns the stale copies into garbage; idle GC reclaims past the exit
  // threshold and the FTL lifts read-only mode on its own.
  ASSERT_OK(h.Delete(snap));
  for (int i = 0; i < 2000 && h.ftl().degraded(); ++i) {
    Pump(&h, 1);
  }
  EXPECT_FALSE(h.ftl().degraded());
  EXPECT_GE(h.ftl().stats().degraded_exits, 1u);
  ASSERT_OK(h.Write(0, 4));
  ASSERT_TRUE(h.CheckLba(kPrimaryView, 0, 4));
}

TEST(DegradedModeTest, RetiredFloorTripsPermanently) {
  FtlConfig config = SmallConfig();
  config.degraded_retired_floor = 1;
  FaultPlan faults;
  faults.erase_fail_ppm = 1000000;  // First erase retires its segment.
  faults.ApplyTo(&config);
  FtlHarness h(config);

  // Write until the cleaner has to erase something; the failed erase retires the
  // segment and trips the floor.
  Status status = OkStatus();
  for (uint64_t i = 0; i < 8 * config.LbaCount() && status.ok(); ++i) {
    status = h.Write(i % config.LbaCount(), 1 + i / config.LbaCount());
  }
  ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
  ASSERT_GE(h.ftl().log_manager().stats().segments_retired, 1u);
  EXPECT_TRUE(h.ftl().degraded());
  // Retirement never reverses, so neither does the degraded state.
  Pump(&h, 50);
  EXPECT_TRUE(h.ftl().degraded());
  EXPECT_EQ(h.ftl().stats().degraded_exits, 0u);
}

TEST(MediaReliabilityCampaign, PatrolKeepsWearInCheckWhereControlDecays) {
  // Same seeded wear model, same workload. The control (no patrol) lets segment
  // read counts cross the disturb cliff and accumulates unrepaired CRC failures;
  // the patrol run refreshes hot pages early enough that the media ends clean.
  const uint64_t kLbas = 256;
  const int kRounds = 24;
  auto run = [](bool patrol) {
    FtlConfig config = SmallConfig();
    config.patrol_enabled = patrol;
    config.patrol_pages_per_step = 8192;
    config.patrol_sleep_ms = 0;
    config.patrol_refresh_reads = 200;  // Far below the 1000-read disturb cliff.
    FaultPlan faults;
    faults.read_disturb_ppm_per_k_reads = 1000000;
    faults.ApplyTo(&config);
    auto h = std::make_unique<FtlHarness>(config);
    for (uint64_t lba = 0; lba < kLbas; ++lba) {
      IOSNAP_CHECK(h->Write(lba, 1).ok());
    }
    uint64_t read_errors = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (uint64_t lba = 0; lba < kLbas; ++lba) {
        std::vector<uint8_t> data;
        auto result = h->ftl().ReadView(kPrimaryView, lba, h->now(), &data);
        if (result.ok()) {
          h->AdvanceTo(result->CompletionNs());
        } else {
          IOSNAP_CHECK(result.status().code() == StatusCode::kDataLoss);
          ++read_errors;
        }
      }
      Pump(h.get(), 2);
    }
    // Let the patrol settle: sweep until a full pass finds nothing to do.
    if (patrol) {
      for (int i = 0; i < 64; ++i) {
        const FtlStats before = h->ftl().stats();
        Pump(h.get(), 2);
        const FtlStats& after = h->ftl().stats();
        if (after.patrol_pages_rewritten == before.patrol_pages_rewritten &&
            after.patrol_pages_dropped == before.patrol_pages_dropped &&
            after.patrol_sweeps > before.patrol_sweeps) {
          break;
        }
      }
    }
    return std::make_pair(std::move(h), read_errors);
  };

  auto [control, control_errors] = run(false);
  ASSERT_OK_AND_ASSIGN(FsckReport control_report,
                       FsckDevice(&control->ftl().MutableDeviceForTesting()));
  EXPECT_GT(control_report.crc_failures, 0u);
  EXPECT_FALSE(control_report.Clean());
  EXPECT_GT(control_errors, 0u);

  auto [patrolled, patrol_errors] = run(true);
  ASSERT_OK_AND_ASSIGN(FsckReport patrol_report,
                       FsckDevice(&patrolled->ftl().MutableDeviceForTesting()));
  EXPECT_TRUE(patrol_report.Clean()) << FormatFsckReport(patrol_report);
  EXPECT_EQ(patrol_report.crc_failures, 0u);
  EXPECT_EQ(patrol_errors, 0u) << "patrol failed to stay ahead of the wear cliff";
  EXPECT_GT(patrolled->ftl().stats().patrol_pages_rewritten, 0u);
  // And the patrol run lost nothing: every LBA still reads version 1.
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_TRUE(patrolled->CheckLba(kPrimaryView, lba, 1));
  }
}

}  // namespace
}  // namespace iosnap
